# Developer checks for the microbank simulator. `make check` is the
# gate every change should pass: the race detector guards the
# worker-pool experiment layer, the bench smoke keeps the engine's
# zero-alloc hot path honest, and the protocol gate runs every shipped
# configuration under the DRAM timing sanitizer (internal/check).

GO ?= go

.PHONY: check build vet test race bench bench-smoke bench-json bench-compare \
	alloc-guard check-protocol check-policies fuzz-smoke resilience-smoke \
	serve-smoke crash-smoke batched-equality update-golden fmt all-quick

check: build vet race alloc-guard bench-smoke check-protocol

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Hard zero-alloc gate: fails (not just reports) if the engine's
# schedule/step/cancel paths or the controller's eval path (enqueue,
# batch formation, selection, issue, retirement — with and without an
# attached obs tracer) allocate in steady state.
alloc-guard:
	$(GO) test -run 'ZeroAllocGuard' -count=1 ./internal/sim/ ./internal/memctrl/

# Fast allocation regression check: the engine hot paths must stay at
# 0 allocs/op (see EXPERIMENTS.md for recorded baselines).
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkEngine' -benchmem -benchtime=100x ./internal/sim/

# Protocol gate: every shipped configuration, page-policy/scheduler
# combination, interleaving, and a multicore run must produce zero
# DRAM timing-protocol violations under the sanitizer. Failures are
# also written to internal/check/protocol-violations.log.
check-protocol:
	$(GO) test -run 'TestProtocol' -count=1 ./internal/check/

# QoS policy gate: the scheduler × SALP × bandwidth-regulator matrix
# under the sanitizer (QOS_MATRIX_FULL=1 widens it to every shipped
# configuration — CI's qos-matrix job does), the map-reference
# scheduler cross-check across the same variants, and the analytic
# worst-case bound property tests, both under the race detector.
check-policies:
	$(GO) test -run 'TestPolicyMatrix' -count=1 ./internal/check/
	$(GO) test -race -run 'TestSchedulerMatchesMapReference' -count=1 ./internal/memctrl/
	$(GO) test -race -count=1 ./internal/qos/

# Resilience smoke: a sweep with an injected panicking cell must
# complete under -fail-mode=degrade with exactly one recorded panic
# failure in the report (see the Resilience section of EXPERIMENTS.md).
resilience-smoke:
	$(GO) run ./cmd/microbank -exp headline -quick -instr 4000 \
		-fail-mode degrade -inject panic:1 -report /tmp/resilience-smoke.json
	@grep -c '"kind": "panic"' /tmp/resilience-smoke.json | grep -qx 1
	@echo "resilience smoke: 1 injected panic recorded, sweep degraded cleanly"

# Live-observability smoke: a served headline sweep (-j 4, -j-intra 2)
# must expose well-formed OpenMetrics with the sim_windows and
# sweep_failures series, /status JSON, an SSE stream, and pprof.
serve-smoke:
	sh scripts/serve_smoke.sh

# Durability smoke: a campaign SIGKILLed mid-sweep must resume from the
# -store to a byte-identical report, SIGINT/SIGTERM must checkpoint and
# flush valid aborted artifacts, and a corrupted store entry must be
# quarantined and re-simulated (see "Durability & crash recovery" in
# EXPERIMENTS.md).
crash-smoke:
	sh scripts/crash_smoke.sh

# Batched-sweep equality gate: the variant-batched engine must
# reproduce the committed golden fixtures at widths 4 and 8 (width 1 is
# the plain shipped-report test), and a CLI sweep must be
# byte-identical with batching on and off (only the wall-clock
# "(elapsed ...)" line may differ).
batched-equality:
	$(GO) test -count=1 -run 'TestGoldenShippedRunReports|TestGoldenBatchedWidths' ./internal/check/golden/
	$(GO) run ./cmd/microbank -exp qos -quick -instr 4000 | grep -v '^(elapsed' > /tmp/batch-off.txt
	$(GO) run ./cmd/microbank -exp qos -quick -instr 4000 -batch 8 | grep -v '^(elapsed' > /tmp/batch-on.txt
	cmp /tmp/batch-off.txt /tmp/batch-on.txt
	@echo "batched equality: qos sweep byte-identical at -batch 0 and 8"

# Short randomized-config fuzz of the sanitizer (CI runs this as a
# smoke; drop -fuzztime for an open-ended session).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz 'FuzzTimingConfig' -fuzztime 20s ./internal/check/

# Deliberately regenerate the golden run-report fixtures after a
# change that intentionally alters simulation results (see
# EXPERIMENTS.md for the review protocol).
update-golden:
	UPDATE_GOLDEN=1 $(GO) test -count=1 ./internal/check/golden/

# Full benchmark sweep (figures + substrates), as recorded in EXPERIMENTS.md.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/sim/ ./internal/system/ .

# Machine-readable perf snapshot: runs the scheduler/engine
# microbenchmarks plus the end-to-end headline run and writes
# BENCH_<rev>.json (ns/op, allocs/op, simulated-seconds per
# wall-second) for the current git revision. CI runs this with
# BENCHTIME=1x as a smoke; use the default for a real baseline.
bench-json:
	$(GO) run ./cmd/benchjson $(if $(BENCHTIME),-benchtime $(BENCHTIME),)

# Compare two recorded benchmark snapshots (per-benchmark ns/op delta
# and speedup): make bench-compare OLD=BENCH_a.json NEW=BENCH_b.json
bench-compare:
	@test -n "$(OLD)" && test -n "$(NEW)" || \
		{ echo "usage: make bench-compare OLD=BENCH_a.json NEW=BENCH_b.json"; exit 2; }
	$(GO) run ./cmd/benchjson -diff $(OLD) $(NEW)

fmt:
	gofmt -l -w .

# Regenerate every paper table/figure at reduced fidelity.
all-quick:
	$(GO) run ./cmd/microbank -exp all -quick
