# Developer checks for the microbank simulator. `make check` is the
# gate every change should pass: the race detector guards the
# worker-pool experiment layer, and the bench smoke keeps the engine's
# zero-alloc hot path honest.

GO ?= go

.PHONY: check build vet test race bench bench-smoke alloc-guard fmt all-quick

check: build vet race alloc-guard bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Hard zero-alloc gate: fails (not just reports) if the engine's
# schedule/step or schedule/cancel paths allocate with observability
# disabled.
alloc-guard:
	$(GO) test -run 'ZeroAllocGuard' -count=1 ./internal/sim/

# Fast allocation regression check: the engine hot paths must stay at
# 0 allocs/op (see EXPERIMENTS.md for recorded baselines).
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkEngine' -benchmem -benchtime=100x ./internal/sim/

# Full benchmark sweep (figures + substrates), as recorded in EXPERIMENTS.md.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/sim/ ./internal/system/ .

fmt:
	gofmt -l -w .

# Regenerate every paper table/figure at reduced fidelity.
all-quick:
	$(GO) run ./cmd/microbank -exp all -quick
