// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus microbenchmarks of the core substrates. Each Fig*/
// Table* benchmark runs its experiment at reduced (Quick) fidelity and
// reports the figure's key quantity as a custom metric, so
// `go test -bench=. -benchmem` both exercises the harness and prints
// the reproduced results. Full-fidelity numbers are produced by
// `go run ./cmd/microbank -exp all` and recorded in EXPERIMENTS.md.
package microbank_test

import (
	"context"
	"testing"
	"time"

	"microbank"
	"microbank/internal/addr"
	"microbank/internal/config"
	"microbank/internal/dram"
	"microbank/internal/experiments"
	"microbank/internal/memctrl"
	"microbank/internal/sim"
	"microbank/internal/system"
	"microbank/internal/workload"
)

// benchOpts keeps figure benchmarks fast enough for -bench=.
var benchOpts = experiments.Options{Quick: true, Instr: 16000, Cores: 8, Seed: 42}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table1().NumRows() == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table2().NumRows() == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig1EnergyBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig1(1.0, 8)
		if t.NumRows() != 3 {
			b.Fatal("bad fig1")
		}
	}
}

func BenchmarkFig6aArea(b *testing.B) {
	var v float64
	for i := 0; i < b.N; i++ {
		g := experiments.Fig6a()
		v = g.At(16, 16)
	}
	b.ReportMetric(v, "relArea(16,16)")
}

func BenchmarkFig6bEnergy(b *testing.B) {
	var v float64
	for i := 0; i < b.N; i++ {
		g := experiments.Fig6b(1.0)
		v = g.At(16, 1)
	}
	b.ReportMetric(v, "relEnergy(16,1)")
}

func BenchmarkFig8IPCGrid(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		grids, err := experiments.Fig8(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		_, _, best = grids[0].Best()
	}
	b.ReportMetric(best, "mcf-best-relIPC")
}

func BenchmarkFig9EDPGrid(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		grids, err := experiments.Fig9(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		_, _, best = grids[0].Best()
	}
	b.ReportMetric(best, "mcf-best-relInvEDP")
}

func BenchmarkFig10Representative(b *testing.B) {
	var rel float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Workload == "spec-high" && r.NW == 2 && r.NB == 8 {
				rel = r.RelIPC
			}
		}
	}
	b.ReportMetric(rel, "spec-high(2,8)-relIPC")
}

func BenchmarkFig11Interleaving(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Fig11().NumRows() != 2 {
			b.Fatal("bad fig11")
		}
	}
}

func BenchmarkFig12PagePolicyXInterleave(b *testing.B) {
	var rel float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig12(benchOpts, "spec-high")
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.NW == 2 && r.NB == 8 && r.Policy == config.OpenPage && r.IB == 12 {
				rel = r.RelIPC
			}
		}
	}
	b.ReportMetric(rel, "open-iB12-relIPC")
}

func BenchmarkFig13Predictors(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig13(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		var open, perf float64
		for _, r := range rows {
			if r.Workload == "429.mcf" && r.NW == 2 && r.NB == 8 {
				switch r.Policy {
				case config.OpenPage:
					open = r.RelIPC
				case config.PredPerfect:
					perf = r.RelIPC
				}
			}
		}
		gap = perf / open
	}
	b.ReportMetric(gap, "perfect/open-mcf(2,8)")
}

func BenchmarkFig14Interfaces(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig14(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Workload == "RADIX" && r.Interface == config.LPDDRTSI {
				gain = r.RelInvEDP
			}
		}
	}
	b.ReportMetric(gain, "RADIX-LPDDR-relInvEDP")
}

func BenchmarkHeadline(b *testing.B) {
	var h experiments.HeadlineResult
	for i := 0; i < b.N; i++ {
		var err error
		h, err = experiments.Headline(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(h.IPCGain, "IPCgain")
	b.ReportMetric(h.InvEDPGain, "invEDPgain")
}

// BenchmarkHeadlineRun is the perf-trajectory anchor recorded by
// `make bench-json`: one multicore headline-class run (the paper's
// LPDDR-TSI 2×8 configuration under a mixed SPEC profile) timed end to
// end. It reports simulated-time-per-wall-time so BENCH_<rev>.json can
// track simulator throughput, not just ns/op.
func BenchmarkHeadlineRun(b *testing.B) {
	var simPS sim.Time
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := config.DefaultSystem(config.MemPreset(config.LPDDRTSI, 2, 8))
		sys.Cores = 16
		profs := make([]workload.Profile, sys.Cores)
		for c := range profs {
			profs[c] = workload.MustGet([]string{"429.mcf", "470.lbm", "433.milc", "462.libquantum"}[c%4])
		}
		spec := system.Spec{Sys: sys, Profiles: profs, InstrPerCore: 8000,
			WarmupInstr: 4000, Seed: 42}
		res, err := system.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		simPS += res.RuntimePS
	}
	b.StopTimer()
	wall := b.Elapsed().Seconds()
	if wall > 0 {
		b.ReportMetric(float64(simPS)*1e-12/wall, "sim_s/wall_s")
	}
}

// BenchmarkHeadlineRunIntra8 is BenchmarkHeadlineRun on the windowed
// parallel engine at 8 intra-run workers (results are bit-identical;
// TestIntraMatchesSequential and the golden width tests prove it). The
// speedup over BenchmarkHeadlineRun is the intra-parallelism headline
// number; `make bench-compare` prints it from two BENCH_<rev>.json
// snapshots. On hosts with fewer cores the shared worker budget grants
// fewer threads and the run degrades toward sequential speed.
func BenchmarkHeadlineRunIntra8(b *testing.B) {
	var simPS sim.Time
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := config.DefaultSystem(config.MemPreset(config.LPDDRTSI, 2, 8))
		sys.Cores = 16
		profs := make([]workload.Profile, sys.Cores)
		for c := range profs {
			profs[c] = workload.MustGet([]string{"429.mcf", "470.lbm", "433.milc", "462.libquantum"}[c%4])
		}
		spec := system.Spec{Sys: sys, Profiles: profs, InstrPerCore: 8000,
			WarmupInstr: 4000, Seed: 42, IntraParallelism: 8}
		res, err := system.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		simPS += res.RuntimePS
	}
	b.StopTimer()
	wall := b.Elapsed().Seconds()
	if wall > 0 {
		b.ReportMetric(float64(simPS)*1e-12/wall, "sim_s/wall_s")
	}
}

// BenchmarkHeadlineRunLimits is BenchmarkHeadlineRun with the full
// watchdog armed (context, generous deadline, event budget, livelock
// detector): comparing the two proves the armed watchdog costs no
// allocations and under 2% runtime (EXPERIMENTS.md records the
// measured overhead).
func BenchmarkHeadlineRunLimits(b *testing.B) {
	lim := &system.Limits{
		Ctx:          context.Background(),
		WallClock:    time.Hour,
		EventBudget:  1 << 40,
		StallWindows: 4,
	}
	var simPS sim.Time
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := config.DefaultSystem(config.MemPreset(config.LPDDRTSI, 2, 8))
		sys.Cores = 16
		profs := make([]workload.Profile, sys.Cores)
		for c := range profs {
			profs[c] = workload.MustGet([]string{"429.mcf", "470.lbm", "433.milc", "462.libquantum"}[c%4])
		}
		spec := system.Spec{Sys: sys, Profiles: profs, InstrPerCore: 8000,
			WarmupInstr: 4000, Seed: 42, Limits: lim}
		res, err := system.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		simPS += res.RuntimePS
	}
	b.StopTimer()
	wall := b.Elapsed().Seconds()
	if wall > 0 {
		b.ReportMetric(float64(simPS)*1e-12/wall, "sim_s/wall_s")
	}
}

// BenchmarkHeadlineRunIntraAuto is BenchmarkHeadlineRun with -j-intra
// auto: the width resolver estimates the per-domain window occupancy at
// partition time and must pick the sequential engine whenever the
// windowed one cannot win, so this benchmark may never be slower than
// BenchmarkHeadlineRun beyond noise.
func BenchmarkHeadlineRunIntraAuto(b *testing.B) {
	var simPS sim.Time
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := config.DefaultSystem(config.MemPreset(config.LPDDRTSI, 2, 8))
		sys.Cores = 16
		profs := make([]workload.Profile, sys.Cores)
		for c := range profs {
			profs[c] = workload.MustGet([]string{"429.mcf", "470.lbm", "433.milc", "462.libquantum"}[c%4])
		}
		spec := system.Spec{Sys: sys, Profiles: profs, InstrPerCore: 8000,
			WarmupInstr: 4000, Seed: 42, IntraParallelism: system.IntraAuto}
		res, err := system.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		simPS += res.RuntimePS
	}
	b.StopTimer()
	wall := b.Elapsed().Seconds()
	if wall > 0 {
		b.ReportMetric(float64(simPS)*1e-12/wall, "sim_s/wall_s")
	}
}

// --- Batched sweep benchmarks ---
//
// The BenchmarkSweepBatched family measures sweep throughput in sweep
// cells completed per second, the batched engine's headline metric
// (`benchjson -diff` gates it against regressions). Each pair runs the
// same sweep with batching off (B1) and at width 8 (B8); results are
// byte-identical at every width, so the pair isolates the batching
// machinery itself: shared workload front-end, contiguous bank-state
// arenas, pooled engines.

// benchSweepCells times fn (one whole sweep of `cells` runs) and
// reports cells/sec.
func benchSweepCells(b *testing.B, cells int, fn func() error) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fn(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if wall := b.Elapsed().Seconds(); wall > 0 {
		b.ReportMetric(float64(cells*b.N)/wall, "cells/sec")
	}
}

// fig8SweepCells is the quick Fig. 8 population: 5 workloads (429.mcf,
// the 3-member spec-high quick set, TPC-H) × the 25-cell (nW,nB) grid.
const fig8SweepCells = 125

func benchSweepFig8(b *testing.B, batch int) {
	o := benchOpts
	o.Batch = batch
	benchSweepCells(b, fig8SweepCells, func() error {
		_, err := experiments.Fig8(o)
		return err
	})
}

func BenchmarkSweepBatchedFig8B1(b *testing.B) { benchSweepFig8(b, 1) }
func BenchmarkSweepBatchedFig8B8(b *testing.B) { benchSweepFig8(b, 8) }

// qosSweepCells is the QoS matrix population: 3 organizations × 3
// policies, each a multicore run.
const qosSweepCells = 9

func benchSweepQoS(b *testing.B, batch int) {
	o := benchOpts
	o.Batch = batch
	benchSweepCells(b, qosSweepCells, func() error {
		_, err := experiments.QoSSweep(o)
		return err
	})
}

func BenchmarkSweepBatchedQoSB1(b *testing.B) { benchSweepQoS(b, 1) }
func BenchmarkSweepBatchedQoSB8(b *testing.B) { benchSweepQoS(b, 8) }

// --- Substrate microbenchmarks ---

func BenchmarkSimEngine(b *testing.B) {
	eng := sim.NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Schedule(eng.Now()+1, func(*sim.Engine) {})
		eng.Step()
	}
}

func BenchmarkAddrMap(b *testing.B) {
	m := addr.MustMapper(config.MemPreset(config.LPDDRTSI, 2, 8).Org, 10)
	var l addr.Loc
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l = m.Map(uint64(i) * 64)
	}
	_ = l
}

func BenchmarkDRAMChannelRandom(b *testing.B) {
	mem := config.MemPreset(config.LPDDRTSI, 2, 8)
	mem.Timing.TREFI = 0
	ch := dram.NewChannel(mem)
	now := sim.Time(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bank := i % ch.NumBanks()
		if open, row := ch.Open(bank); open {
			if row == uint32(i%16) {
				now = ch.EarliestCol(bank, false, now)
				ch.IssueRD(bank, now)
				continue
			}
			now = ch.EarliestPRE(bank, now)
			ch.IssuePRE(bank, now)
		}
		now = ch.EarliestACT(bank, now)
		ch.IssueACT(bank, uint32(i%16), now)
	}
}

func BenchmarkMemControllerStream(b *testing.B) {
	mem := config.MemPreset(config.LPDDRTSI, 2, 8)
	mem.Org.Channels = 1
	eng := sim.NewEngine()
	ctl := memctrl.New(eng, mem, config.DefaultCtrl(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctl.Enqueue(&memctrl.Request{Addr: uint64(i) * 64})
		eng.Run()
	}
}

func BenchmarkFullSystemMcf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := config.SingleCore(config.MemPreset(config.LPDDRTSI, 2, 8))
		spec := system.UniformSpec(sys, workload.MustGet("429.mcf"), 20000, 42)
		spec.WarmupInstr = 5000
		if _, err := system.Run(spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPublicAPIQuickstart(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mem := microbank.MemPreset(microbank.LPDDRTSI, 2, 8)
		spec := microbank.UniformSpec(microbank.SingleCore(mem), microbank.Workload("470.lbm"), 15000, 1)
		spec.WarmupInstr = 5000
		res, err := microbank.Run(spec)
		if err != nil || res.IPC <= 0 {
			b.Fatalf("run failed: %v", err)
		}
	}
}

func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Ablations(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRelatedWork(b *testing.B) {
	var hmc float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RelatedWork(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		hmc = rows[len(rows)-1].RelInvEDP
	}
	b.ReportMetric(hmc, "HMC-relInvEDP")
}
