// Command benchjson runs the simulator's perf-trajectory benchmark set
// (engine churn, controller candidate selection, end-to-end headline
// run) and writes the parsed results — ns/op, B/op, allocs/op, and any
// custom metrics such as sim_s/wall_s — to BENCH_<rev>.json, so the
// repository accumulates a machine-readable performance history that
// future changes can be compared against (`make bench-json`).
//
// With -diff, it instead compares two recorded snapshots and prints a
// per-benchmark ns/op delta and speedup table (`make bench-compare`):
//
//	benchjson -diff BENCH_old.json BENCH_new.json
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// benchPattern selects the trajectory set: every engine microbenchmark,
// the controller's best/eval/formBatch loops, the end-to-end headline
// run anchor, and the batched-sweep throughput family.
const benchPattern = "BenchmarkEngine|BenchmarkBest|BenchmarkEval|BenchmarkFormBatch|BenchmarkHeadlineRun|BenchmarkSweep"

var benchPackages = []string{"./internal/sim", "./internal/memctrl", "."}

// Result is one parsed benchmark line.
type Result struct {
	Name     string             `json:"name"`
	Iters    int64              `json:"iters"`
	NsPerOp  float64            `json:"ns_op"`
	BytesOp  float64            `json:"bytes_op"`
	AllocsOp float64            `json:"allocs_op"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
}

// File is the BENCH_<rev>.json schema. Batch and JIntra record the
// -batch / -j-intra settings the recorded benchmark set exercised, so a
// snapshot states which engine configurations its numbers cover.
type File struct {
	Rev        string   `json:"rev"`
	Dirty      bool     `json:"dirty"`
	Generated  string   `json:"generated"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	BenchTime  string   `json:"benchtime"`
	Batch      string   `json:"batch,omitempty"`
	JIntra     string   `json:"j_intra,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	benchtime := flag.String("benchtime", "", "go test -benchtime value (empty = go default; CI uses 1x)")
	rev := flag.String("rev", "", "revision label for the output file (default: git short HEAD)")
	out := flag.String("o", "", "output path (default BENCH_<rev>.json)")
	diff := flag.Bool("diff", false, "compare two snapshots: benchjson -diff OLD.json NEW.json")
	allowMissing := flag.Bool("allow-missing", false, "with -diff: benchmarks dropped from NEW are reported but do not fail the comparison")
	maxRegress := flag.Float64("max-regress", 0, "with -diff: fail if a gated benchmark regresses by more than this percent (0 = report only)")
	gateMetric := flag.String("gate-metric", "ns", "with -diff -max-regress: metric to gate on: ns | allocs | cells (cells/sec; a decrease is the regression)")
	batchHdr := flag.String("batch", "1,8", "-batch widths the recorded benchmark set exercises (snapshot header only)")
	jIntraHdr := flag.String("j-intra", "0,8,auto", "-j-intra widths the recorded benchmark set exercises (snapshot header only)")
	gateMatch := flag.String("gate-match", "", "with -diff -max-regress: regexp of benchmark names to gate (empty = all)")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -diff [-allow-missing] [-max-regress PCT [-gate-metric ns|allocs] [-gate-match RE]] OLD.json NEW.json")
			os.Exit(2)
		}
		gate, err := buildGate(*maxRegress, *gateMetric, *gateMatch)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		os.Exit(runDiff(flag.Arg(0), flag.Arg(1), *allowMissing, gate))
	}

	r, dirty := *rev, false
	if r == "" {
		r, dirty = gitRev()
	}

	args := []string{"test", "-run", "^$", "-bench", benchPattern, "-benchmem"}
	if *benchtime != "" {
		args = append(args, "-benchtime", *benchtime)
	}
	args = append(args, benchPackages...)
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	fmt.Fprintf(os.Stderr, "benchjson: go %s\n", strings.Join(args, " "))
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: benchmarks failed: %v\n", err)
		os.Exit(1)
	}
	os.Stderr.Write(buf.Bytes())

	f := File{
		Rev:        r,
		Dirty:      dirty,
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		BenchTime:  *benchtime,
		Batch:      *batchHdr,
		JIntra:     *jIntraHdr,
		Benchmarks: parse(&buf),
	}
	if len(f.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines parsed")
		os.Exit(1)
	}
	path := *out
	if path == "" {
		path = "BENCH_" + r + ".json"
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d benchmarks)\n", path, len(f.Benchmarks))
}

// gate is the -max-regress policy: which benchmarks to hold to which
// metric, and how much relative growth fails the diff. A nil *gate
// means report-only.
type gate struct {
	maxPct float64
	metric string // "ns" | "allocs"
	match  *regexp.Regexp
}

// buildGate validates the gating flags. maxPct 0 disables the gate.
func buildGate(maxPct float64, metric, match string) (*gate, error) {
	if maxPct <= 0 {
		return nil, nil
	}
	if metric != "ns" && metric != "allocs" && metric != "cells" {
		return nil, fmt.Errorf("unknown -gate-metric %q (ns | allocs | cells)", metric)
	}
	re, err := regexp.Compile(match)
	if err != nil {
		return nil, fmt.Errorf("-gate-match: %w", err)
	}
	return &gate{maxPct: maxPct, metric: metric, match: re}, nil
}

// value extracts the gated metric from one result.
func (g *gate) value(r Result) float64 {
	switch g.metric {
	case "allocs":
		return r.AllocsOp
	case "cells":
		return r.Metrics["cells/sec"]
	}
	return r.NsPerOp
}

// check returns a failure description when the old→new transition
// regresses past the threshold, or "" when it passes. For ns and
// allocs, growth is the regression, and a metric that was zero and
// became nonzero regresses unconditionally (allocs appearing on a
// zero-alloc path has no finite percentage). For cells, throughput
// shrinking is the regression, and a benchmark that stopped reporting
// cells/sec regresses unconditionally.
func (g *gate) check(or, nr Result) string {
	if !g.match.MatchString(nr.Name) {
		return ""
	}
	ov, nv := g.value(or), g.value(nr)
	if g.metric == "cells" {
		switch {
		case ov == 0:
			return "" // not in the old baseline: nothing to hold it to
		case nv == 0:
			return fmt.Sprintf("%s: cells/sec disappeared (%g -> 0)", nr.Name, ov)
		default:
			if pct := 100 * (ov - nv) / ov; pct > g.maxPct {
				return fmt.Sprintf("%s: cells/sec regressed %+.1f%% (%g -> %g, limit %+.1f%%)",
					nr.Name, pct, ov, nv, g.maxPct)
			}
		}
		return ""
	}
	switch {
	case ov == 0 && nv > 0:
		return fmt.Sprintf("%s: %s/op grew from 0 to %g", nr.Name, g.metric, nv)
	case ov > 0:
		if pct := 100 * (nv - ov) / ov; pct > g.maxPct {
			return fmt.Sprintf("%s: %s/op regressed %+.1f%% (%g -> %g, limit %+.1f%%)",
				nr.Name, g.metric, pct, ov, nv, g.maxPct)
		}
	}
	return ""
}

// runDiff loads two BENCH_<rev>.json snapshots and prints one table row
// per benchmark present in the new file: ns/op of both sides, the
// relative delta, and the old/new speedup factor (>1 means the new
// revision is faster). Benchmarks present on only one side are marked
// MISSING in the table and summarized by name afterwards, and a
// benchmark that the old snapshot has but the new one dropped fails the
// comparison (exit 1) unless -allow-missing — a snapshot comparison
// must not be able to hide a benchmark that stopped running. A non-nil
// gate additionally fails the diff when a matched benchmark's gated
// metric regresses past the threshold.
func runDiff(oldPath, newPath string, allowMissing bool, g *gate) int {
	oldF, err := loadSnapshot(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	newF, err := loadSnapshot(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	oldBy := make(map[string]Result, len(oldF.Benchmarks))
	for _, r := range oldF.Benchmarks {
		oldBy[r.Name] = r
	}
	fmt.Printf("benchjson diff: %s -> %s\n", oldF.Rev, newF.Rev)
	fmt.Printf("%-36s %14s %14s %9s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta", "speedup")
	seen := make(map[string]bool, len(newF.Benchmarks))
	var added, dropped, regressed []string
	for _, nr := range newF.Benchmarks {
		seen[nr.Name] = true
		or, ok := oldBy[nr.Name]
		if !ok {
			added = append(added, nr.Name)
			fmt.Printf("%-36s %14s %14.0f %9s %9s\n", nr.Name, "MISSING", nr.NsPerOp, "-", "-")
			continue
		}
		if g != nil {
			if msg := g.check(or, nr); msg != "" {
				regressed = append(regressed, msg)
			}
		}
		delta := "-"
		speedup := "-"
		if or.NsPerOp > 0 && nr.NsPerOp > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(nr.NsPerOp-or.NsPerOp)/or.NsPerOp)
			speedup = fmt.Sprintf("%.2fx", or.NsPerOp/nr.NsPerOp)
		}
		fmt.Printf("%-36s %14.0f %14.0f %9s %9s\n", nr.Name, or.NsPerOp, nr.NsPerOp, delta, speedup)
	}
	for _, or := range oldF.Benchmarks {
		if !seen[or.Name] {
			dropped = append(dropped, or.Name)
			fmt.Printf("%-36s %14.0f %14s %9s %9s\n", or.Name, or.NsPerOp, "MISSING", "-", "-")
		}
	}
	if len(added) > 0 {
		fmt.Printf("benchjson: %d benchmark(s) only in %s (new): %s\n",
			len(added), newF.Rev, strings.Join(added, ", "))
	}
	if len(dropped) > 0 {
		fmt.Printf("benchjson: %d benchmark(s) missing from %s (present in %s): %s\n",
			len(dropped), newF.Rev, oldF.Rev, strings.Join(dropped, ", "))
		if !allowMissing {
			fmt.Fprintln(os.Stderr, "benchjson: missing benchmarks fail the diff (use -allow-missing to tolerate)")
			return 1
		}
	}
	if len(regressed) > 0 {
		for _, msg := range regressed {
			fmt.Fprintln(os.Stderr, "benchjson: REGRESSION "+msg)
		}
		return 1
	}
	return 0
}

// loadSnapshot reads and validates one BENCH_<rev>.json file.
func loadSnapshot(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks recorded", path)
	}
	return &f, nil
}

// gitRev returns the short HEAD hash and whether the worktree is dirty;
// outside a git checkout it falls back to "dev".
func gitRev() (rev string, dirty bool) {
	h, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "dev", false
	}
	s, err := exec.Command("git", "status", "--porcelain").Output()
	return strings.TrimSpace(string(h)), err == nil && len(bytes.TrimSpace(s)) > 0
}

// parse extracts benchmark result lines from `go test -bench` output.
// A line looks like:
//
//	BenchmarkBest/PARBS-8  216446  5392 ns/op  2186 B/op  24 allocs/op
//
// with optional custom metrics interleaved as "<value> <unit>" pairs.
func parse(r *bytes.Buffer) []Result {
	var results []Result
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: trimCPUSuffix(fields[0]), Iters: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesOp = v
			case "allocs/op":
				res.AllocsOp = v
			default:
				if res.Metrics == nil {
					res.Metrics = map[string]float64{}
				}
				res.Metrics[unit] = v
			}
		}
		results = append(results, res)
	}
	return results
}

// trimCPUSuffix drops the trailing -<GOMAXPROCS> go test appends to
// benchmark names, so results compare across machines.
func trimCPUSuffix(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}
