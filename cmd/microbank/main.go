// Command microbank regenerates the paper's tables and figures and
// runs ad-hoc simulations of the μbank memory system.
//
// Usage:
//
//	microbank -exp fig8                 # regenerate Fig. 8 (relative IPC grids)
//	microbank -exp all -quick           # every experiment, reduced fidelity
//	microbank -exp run -workload 429.mcf -nw 2 -nb 8 -policy open
//	microbank -exp run -workload 429.mcf -trace out.trace.json -metrics-out out.csv
//	microbank -exp run -workload 429.mcf -check collect   # DRAM timing-protocol sanitizer
//	microbank -exp list                 # list experiments and workloads
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"microbank/internal/check"
	"microbank/internal/config"
	"microbank/internal/experiments"
	"microbank/internal/obs"
	"microbank/internal/obs/serve"
	"microbank/internal/parallel"
	"microbank/internal/sim"
	"microbank/internal/stats"
	"microbank/internal/store"
	"microbank/internal/system"
	"microbank/internal/workload"
)

func main() {
	var (
		exp    = flag.String("exp", "list", "experiment id: fig1 table1 fig6a fig6b fig8 fig9 fig10 fig11 fig12 fig13 fig14 table2 headline ablations qos related all run list")
		instr  = flag.Uint64("instr", 0, "per-core instruction budget (0 = default)")
		cores  = flag.Int("cores", 0, "cores for multicore workloads (0 = default)")
		quick  = flag.Bool("quick", false, "reduced workload sets and budgets")
		seed   = flag.Int64("seed", 42, "simulation seed")
		jobs   = flag.Int("j", 0, "parallel simulations per sweep (0 = all cores); output is identical at any -j")
		jIntra = flag.String("j-intra", "0", "worker threads inside each eligible simulation (windowed parallel engine), or 'auto' to pick per run; output is identical at any width")
		batch  = flag.Int("batch", 0, "advance up to B compatible sweep cells as one variant-batched lockstep run; results are byte-identical at any width (<=1 = off)")
		beta   = flag.Float64("beta", 1.0, "activates per column access for fig1/fig6b")
		wl     = flag.String("workload", "429.mcf", "workload for -exp run")
		nw     = flag.Int("nw", 1, "wordline partitions for -exp run")
		nb     = flag.Int("nb", 1, "bitline partitions for -exp run")
		iface  = flag.String("interface", "LPDDR-TSI", "DDR3-PCB | DDR3-TSI | LPDDR-TSI")
		policy = flag.String("policy", "open", "page policy: open close minimalist local global tournament perfect")
		ibit   = flag.Int("ib", 13, "interleave base bit (6 = cache line, 13 = row)")
		sched  = flag.String("sched", "parbs", "memory scheduler for -exp run: frfcfs parbs fcfs")
		salp   = flag.Int("salp", 0, "SALP subarrays per bank for -exp run (0 = off, power of two)")
		budget = flag.Int("bank-budget", 0, "per-(thread,bank) column-access budget per regulator epoch for -exp run (0 = regulator off)")
		svgOut = flag.String("svg", "", "also write grid experiments (fig6a/fig6b/fig8/fig9) as SVG heatmaps with this filename prefix")

		serveAddr   = flag.String("serve", "", "serve live observability on this address (e.g. :8080): /metrics OpenMetrics, /events SSE, /status JSON, /debug/pprof/")
		serveLinger = flag.Duration("serve-linger", 0, "keep the -serve endpoints up this long after the run finishes, so final state can be scraped")

		checkFlag  = flag.String("check", "off", "timing-protocol sanitizer for -exp run: off | collect | fatal")
		traceOut   = flag.String("trace", "", "write DRAM commands of -exp run as Chrome trace-event JSON (open in Perfetto)")
		metricsOut = flag.String("metrics-out", "", "write epoch time-series metrics of -exp run to this file (.json, or CSV otherwise)")
		epochCyc   = flag.Uint64("epoch", 2500, "epoch length for -metrics-out sampling, in core cycles")
		pprofOut   = flag.String("pprof", "", "write a CPU profile of the whole invocation to this file")
		reportOut  = flag.String("report", "", "write a machine-readable JSON run report to this file")
		progress   = flag.Bool("progress", false, "print a sweep progress heartbeat to stderr")

		timeout     = flag.Duration("timeout", 0, "per-run wall-clock deadline (0 = none); exceeded runs fail with a diagnostic snapshot")
		eventBudget = flag.Uint64("event-budget", 0, "per-run simulation event budget (0 = none)")
		retries     = flag.Int("retries", 0, "retry budget per sweep cell for transient failures (deadline trips)")
		failMode    = flag.String("fail-mode", "fail-fast", "sweep reaction to a failed cell: fail-fast | collect | degrade")
		journalPath = flag.String("journal", "", "checkpoint completed sweep cells to this JSONL file")
		storeDir    = flag.String("store", "", "content-addressed result store directory: completed sweep cells are committed to it (checksummed, atomic) and replayed from it, shared across campaigns and resumes")
		resume      = flag.Bool("resume", false, "resume the campaign from -journal and/or -store: completed cells replay from disk, byte-identically")
		injectSpec  = flag.String("inject", "", "deterministic fault injection for testing, e.g. panic:1,timeout:3 (kinds: panic error timeout budget flaky)")
	)
	flag.Parse()

	intraWidth, err := parseJIntra(*jIntra)
	if err != nil {
		fmt.Fprintln(os.Stderr, "microbank:", err)
		os.Exit(1)
	}
	o := experiments.Options{Instr: *instr, Cores: *cores, Quick: *quick, Seed: *seed,
		Parallelism: *jobs, IntraParallelism: intraWidth, Batch: *batch, Exp: *exp}
	if *progress {
		o.Progress = heartbeat()
	}
	svgPrefix = *svgOut

	// Graceful shutdown: the first SIGINT/SIGTERM cancels the campaign
	// context — sweep workers stop taking cells, in-flight runs abort at
	// their next watchdog check, and the run exits through the normal
	// error path (journal and store keep every completed cell; report/
	// trace/metrics artifacts flush as valid JSON marked aborted). A
	// second signal force-quits.
	ctx, stopRun := context.WithCancel(context.Background())
	o.Ctx = ctx
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigc
		fmt.Fprintf(os.Stderr, "microbank: %s: checkpointing and flushing aborted artifacts (signal again to force quit)\n", s)
		stopRun()
		s = <-sigc
		fmt.Fprintf(os.Stderr, "microbank: %s: forced exit\n", s)
		os.Exit(130)
	}()

	var (
		agg *obs.Aggregator
		srv *serve.Server
	)
	if *serveAddr != "" {
		agg = obs.NewAggregator(*exp)
		s, err := serve.New(*serveAddr, agg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "microbank:", err)
			os.Exit(1)
		}
		srv = s
		o.Agg = agg
		fmt.Fprintf(os.Stderr, "microbank: serving observability on http://%s (/metrics /events /status /debug/pprof/)\n", srv.Addr())
	}

	res, closeJournal, err := buildResilience(*exp, o, *failMode, *retries,
		*timeout, *eventBudget, *journalPath, *storeDir, *resume, *injectSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "microbank:", err)
		os.Exit(1)
	}
	o.Res = res
	if agg != nil && res != nil && res.Store != nil {
		s := res.Store
		agg.SetStoreStats(func() (uint64, uint64, uint64) {
			st := s.Stats()
			return st.Hits, st.Misses, st.Quarantined
		})
	}

	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "microbank:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "microbank:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	var report *experiments.Report
	if *reportOut != "" {
		report = experiments.NewReport(*exp, o)
	}
	oflags := obsFlags{trace: *traceOut, metrics: *metricsOut, epochCycles: *epochCyc, check: *checkFlag}
	rflags := runFlags{wl: *wl, nw: *nw, nb: *nb, iface: *iface, policy: *policy,
		ibit: *ibit, sched: *sched, salp: *salp, budget: *budget}

	start := time.Now()
	err = dispatch(*exp, o, report, oflags, *beta, rflags)
	if res != nil {
		if report != nil {
			report.AddFailures(res.Log)
		}
		summarizeFailures(res)
		if res.Journal != nil {
			fmt.Fprintf(os.Stderr, "microbank: journal: %d cell(s) replayed, %d checkpointed\n",
				res.Journal.Hits(), res.Journal.Cells())
		}
		if res.Store != nil {
			st := res.Store.Stats()
			fmt.Fprintf(os.Stderr, "microbank: store: %d hit(s), %d miss(es), %d new entr(y/ies), %d quarantined\n",
				st.Hits, st.Misses, st.Puts, st.Quarantined)
		}
	}
	if report != nil {
		// A failed run still flushes its report as valid JSON, marked
		// aborted, so post-mortems and live consumers can load partial
		// results. Collect-mode cell failures are not an abort: that run
		// completed (degraded) and its report carries Failures instead.
		if err != nil {
			report.Aborted = err.Error()
		}
		if werr := report.WriteFile(*reportOut); werr != nil {
			if err == nil {
				err = werr
			}
		} else if err == nil {
			fmt.Println("wrote", *reportOut)
		} else {
			// stdout carries only deterministic output; abort notices go
			// to stderr.
			fmt.Fprintf(os.Stderr, "microbank: wrote %s (aborted)\n", *reportOut)
		}
	}
	if err == nil {
		err = res.Err() // collect mode: failures mean a nonzero exit
	}
	if cerr := closeJournal(); cerr != nil && err == nil {
		err = cerr
	}
	if agg != nil {
		agg.Finish(err)
	}
	if srv != nil {
		if *serveLinger > 0 {
			fmt.Fprintf(os.Stderr, "microbank: -serve lingering %s on http://%s\n",
				*serveLinger, srv.Addr())
			// Interruptible: a signal during the linger (the run itself is
			// over) tears the endpoints down instead of holding the port.
			select {
			case <-time.After(*serveLinger):
			case <-ctx.Done():
			}
		}
		srv.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "microbank:", err)
		if *pprofOut != "" {
			pprof.StopCPUProfile()
		}
		os.Exit(1)
	}
	fmt.Printf("(elapsed %s)\n", time.Since(start).Round(time.Millisecond))
}

// buildResilience turns the resilience flags into an armed
// *experiments.Resilience (nil when no flag asks for one, keeping the
// zero-overhead fail-fast path) plus a journal-close function.
// parseJIntra resolves the -j-intra flag: a numeric width, or "auto"
// to let each run estimate whether the windowed engine can beat the
// sequential one (system.IntraAuto).
func parseJIntra(s string) (int, error) {
	if s == "auto" {
		return system.IntraAuto, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("invalid -j-intra %q: want a width or 'auto'", s)
	}
	return n, nil
}

func buildResilience(exp string, o experiments.Options, failMode string, retries int,
	timeout time.Duration, eventBudget uint64, journalPath, storeDir string, resume bool,
	inject string) (*experiments.Resilience, func() error, error) {
	noop := func() error { return nil }
	if resume && journalPath == "" && storeDir == "" {
		return nil, nil, fmt.Errorf("-resume needs -journal or -store")
	}
	armed := failMode != "fail-fast" || retries > 0 || timeout > 0 || eventBudget > 0 ||
		journalPath != "" || storeDir != "" || inject != ""
	if !armed {
		return nil, noop, nil
	}
	mode, err := parallel.ParseFailMode(failMode)
	if err != nil {
		return nil, nil, err
	}
	res := &experiments.Resilience{Mode: mode, Retries: retries,
		Timeout: timeout, EventBudget: eventBudget}
	if err := res.SetInject(inject); err != nil {
		return nil, nil, err
	}
	key := experiments.CampaignKey(exp, o)
	if storeDir != "" {
		s, err := store.Open(storeDir, nil)
		if err != nil {
			return nil, nil, err
		}
		res.Store = s
		res.StoreKey = key
		if st := s.Stats(); st.Quarantined > 0 {
			fmt.Fprintf(os.Stderr, "microbank: store: recovery quarantined %d corrupt entr(y/ies); they will be re-simulated\n",
				st.Quarantined)
		}
	}
	if journalPath == "" {
		return res, noop, nil
	}
	j, err := experiments.OpenJournal(journalPath, key, resume)
	if err != nil {
		return nil, nil, err
	}
	res.Journal = j
	// A journal written before the store existed seeds it on open, so
	// both checkpoint layers agree before the first sweep starts.
	res.MigrateJournal()
	return res, j.Close, nil
}

// summarizeFailures prints the campaign's failure records to stderr
// (stdout stays reserved for the deterministic tables).
func summarizeFailures(res *experiments.Resilience) {
	if res.Log == nil {
		return
	}
	fails := res.Log.Failures()
	if len(fails) == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "microbank: %d sweep cell(s) failed (%d retries):\n",
		len(fails), res.Log.Retries())
	for _, f := range fails {
		fmt.Fprintf(os.Stderr, "microbank:   sweep %d cell %d [%s] %s: %s\n",
			f.Sweep, f.Cell, f.Kind, f.Digest, f.Error)
	}
}

// heartbeat returns a Progress callback that prints a rate-limited
// completion count to stderr (stdout stays reserved for tables). The
// ~10 Hz cap keeps large fast sweeps from emitting thousands of lines;
// each sweep's final 100% line always prints.
func heartbeat() func(done, total int) {
	return experiments.ThrottleProgress(100*time.Millisecond, func(done, total int) {
		fmt.Fprintf(os.Stderr, "microbank: %d/%d runs\n", done, total)
	})
}

// obsFlags carries the -exp run observability options.
type obsFlags struct {
	trace       string
	metrics     string
	epochCycles uint64
	check       string
}

// runFlags carries the -exp run configuration options.
type runFlags struct {
	wl     string
	nw, nb int
	iface  string
	policy string
	ibit   int
	sched  string // frfcfs | parbs | fcfs
	salp   int    // SALP subarrays per bank (0 = off)
	budget int    // regulator per-(thread,bank) budget (0 = off)
}

// svgPrefix, when set, makes grid experiments also emit SVG heatmaps.
var svgPrefix string

// emit prints a table and mirrors it into the report when one is open.
func emit(report *experiments.Report, t *stats.Table) {
	fmt.Println(t)
	if report != nil {
		report.AddTable(t)
	}
}

// emitGrid prints a grid table, mirrors grid and table into the report,
// and optionally writes the SVG heatmap.
func emitGrid(report *experiments.Report, g *experiments.GridData, name, title string) error {
	emit(report, g.Table(title))
	if report != nil {
		report.AddGrid(g)
	}
	if svgPrefix == "" {
		return nil
	}
	path := svgPrefix + name + ".svg"
	if err := os.WriteFile(path, []byte(g.SVG(title)), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	if report != nil {
		report.Artifact("svg:"+name, path)
	}
	return nil
}

func dispatch(exp string, o experiments.Options, report *experiments.Report, of obsFlags,
	beta float64, rf runFlags) error {
	switch exp {
	case "list":
		fmt.Println("experiments: fig1 table1 fig6a fig6b fig8 fig9 fig10 fig11 fig12 fig13 fig14 table2 headline ablations qos related all run")
		fmt.Println("workloads:", strings.Join(workload.Names(), " "))
		fmt.Println("workload sets: spec-high spec-all mix-high mix-blend")
		return nil
	case "table1":
		emit(report, experiments.Table1())
	case "table2":
		emit(report, experiments.Table2())
	case "fig1":
		emit(report, experiments.Fig1(beta, 8))
	case "fig6a":
		if err := emitGrid(report, experiments.Fig6a(), "fig6a", "Fig. 6a: relative DRAM die area"); err != nil {
			return err
		}
	case "fig6b":
		emit(report, experiments.Fig6b(beta).Table(fmt.Sprintf("Fig. 6b: relative energy per read, beta=%.1f", beta)))
		emit(report, experiments.Fig6b(0.1).Table("Fig. 6b: relative energy per read, beta=0.1"))
	case "fig8", "fig9":
		ipc, edp, err := experiments.Fig8And9(o)
		if err != nil {
			return err
		}
		for i := range ipc {
			if exp == "fig8" {
				if err := emitGrid(report, ipc[i], "fig8-"+ipc[i].Workload, "Fig. 8: relative IPC, "+ipc[i].Workload); err != nil {
					return err
				}
			} else {
				if err := emitGrid(report, edp[i], "fig9-"+edp[i].Workload, "Fig. 9: relative 1/EDP, "+edp[i].Workload); err != nil {
					return err
				}
			}
		}
	case "fig10":
		rows, err := experiments.Fig10(o)
		if err != nil {
			return err
		}
		emit(report, experiments.Fig10Table(rows))
	case "fig11":
		emit(report, experiments.Fig11())
	case "fig12":
		rows, err := experiments.Fig12(o)
		if err != nil {
			return err
		}
		emit(report, experiments.Fig12Table(rows))
	case "fig13":
		rows, err := experiments.Fig13(o)
		if err != nil {
			return err
		}
		emit(report, experiments.Fig13Table(rows))
	case "fig14":
		rows, err := experiments.Fig14(o)
		if err != nil {
			return err
		}
		emit(report, experiments.Fig14Table(rows))
	case "headline":
		h, err := experiments.Headline(o)
		if err != nil {
			return err
		}
		emit(report, experiments.HeadlineTable(h))
	case "ablations":
		tb, err := experiments.Ablations(o)
		if err != nil {
			return err
		}
		emit(report, tb)
	case "qos":
		rows, err := experiments.QoSSweep(o)
		if err != nil {
			return err
		}
		emit(report, experiments.QoSTable(rows))
	case "related":
		rows, err := experiments.RelatedWork(o)
		if err != nil {
			return err
		}
		emit(report, experiments.RelatedWorkTable(rows))
	case "all":
		for _, id := range []string{"table1", "table2", "fig1", "fig6a", "fig6b", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "headline", "ablations", "qos", "related"} {
			if err := dispatch(id, o, report, of, beta, rf); err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
		}
	case "run":
		return runCustom(o, report, of, rf)
	default:
		return fmt.Errorf("unknown experiment %q (try -exp list)", exp)
	}
	return nil
}

// runGuarded converts the sanitizer's fatal-mode panic into the typed
// error it carries, so a timing violation under -check fatal reports
// cleanly and exits through main's single error path. Any other panic
// propagates — a crash of the simulator itself should still dump its
// stack.
func runGuarded(spec system.Spec) (res system.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			fv, ok := r.(*check.FatalViolation)
			if !ok {
				panic(r)
			}
			err = fv
		}
	}()
	return system.Run(spec)
}

// runCustom executes one ad-hoc configuration and prints a summary,
// attaching the observability layer when -trace / -metrics-out ask
// for it.
func runCustom(o experiments.Options, report *experiments.Report, of obsFlags, rf runFlags) error {
	var iface config.Interface
	switch rf.iface {
	case "DDR3-PCB":
		iface = config.DDR3PCB
	case "DDR3-TSI":
		iface = config.DDR3TSI
	case "LPDDR-TSI":
		iface = config.LPDDRTSI
	default:
		return fmt.Errorf("unknown interface %q", rf.iface)
	}
	policies := map[string]config.PagePolicy{
		"open": config.OpenPage, "close": config.ClosePage, "minimalist": config.MinimalistOpen,
		"local": config.PredLocal, "global": config.PredGlobal,
		"tournament": config.PredTournament, "perfect": config.PredPerfect,
	}
	pol, ok := policies[rf.policy]
	if !ok {
		return fmt.Errorf("unknown policy %q", rf.policy)
	}
	scheds := map[string]config.Scheduler{
		"frfcfs": config.SchedFRFCFS, "parbs": config.SchedPARBS, "fcfs": config.SchedFCFS,
	}
	schedVal, ok := scheds[rf.sched]
	if !ok {
		return fmt.Errorf("unknown scheduler %q (frfcfs | parbs | fcfs)", rf.sched)
	}
	prof, err := workload.Get(rf.wl)
	if err != nil {
		return err
	}
	if o.Instr == 0 {
		o.Instr = 240000
	}
	sys := config.SingleCore(config.MemPreset(iface, rf.nw, rf.nb))
	sys.Ctrl.PagePolicy = pol
	sys.Ctrl.InterleaveBit = rf.ibit
	sys.Ctrl.Scheduler = schedVal
	sys.Ctrl.BankBudget = rf.budget
	sys.Mem.Org.SubarraysPerBank = rf.salp
	if err := sys.Validate(); err != nil {
		return err
	}
	spec := system.UniformSpec(sys, prof, o.Instr, o.Seed)
	spec.WarmupInstr = o.Instr / 2
	spec.Limits = o.Res.RunLimits(o.Ctx)
	spec.IntraParallelism = o.IntraParallelism

	agg := o.Agg
	var (
		observer *obs.Observer
		sampler  *obs.Sampler
		tracer   *obs.ChromeTracer
		winTrace bool
		checker  *check.Checker
	)
	// A sampler or DRAM-command tracer attaches to the simulation loop
	// and forces the windowed engine's sequential fallback, so the
	// -serve live epoch stream only enables sampling when the run is
	// sequential anyway (-j-intra <= 1, or -metrics-out / -check already
	// forced the fallback).
	sequentialObs := of.metrics != "" || of.check != "off" || spec.IntraParallelism <= 1
	if of.trace != "" || of.metrics != "" || of.check != "off" || agg != nil {
		observer = obs.NewObserver()
		if of.metrics != "" || (agg != nil && sequentialObs) {
			if of.epochCycles == 0 {
				return fmt.Errorf("-epoch must be positive")
			}
			sampler = observer.EnableSampling(sim.Time(of.epochCycles) * sys.CoreClock().Period())
		}
		if of.trace != "" {
			if sequentialObs {
				tracer = observer.EnableChromeTrace()
			} else {
				// Parallel run: a DRAM-command tracer would force the
				// sequential fallback, so the same artifact records the
				// windowed engine instead — per-window spans per domain
				// plus barrier spans. -j-intra 1 restores command traces.
				tracer = obs.NewChromeTracer()
				spec.WinTrace = tracer
				winTrace = true
			}
		}
		switch of.check {
		case "off":
		case "collect":
			checker = check.New(sys.Mem, check.ModeCollect)
			observer.AddTracer(checker)
		case "fatal":
			checker = check.New(sys.Mem, check.ModeFatal)
			observer.AddTracer(checker)
		default:
			return fmt.Errorf("unknown -check mode %q (off | collect | fatal)", of.check)
		}
		spec.Obs = observer
		if o.Res != nil {
			o.Res.RegisterMetrics(observer.Registry)
		}
	}

	aggSweep := -1
	if agg != nil {
		aggSweep = agg.BeginSweep(1)
		agg.CellStarted(aggSweep, 0)
		if sampler != nil {
			sweep := aggSweep
			sampler.OnSample = func(at sim.Time, names []string, row []float64) {
				agg.PublishEpoch(sweep, 0, uint64(at), names, row)
			}
		} else {
			fmt.Fprintln(os.Stderr, "microbank: -serve: live epoch stream off"+
				" (-j-intra > 1 keeps the run parallel); watchdog diagnostics"+
				" and final metrics still served")
		}
		// OnDiag alone arms only the watchdog's reporting cadence — it
		// cannot trip a limit, so serving a run never fails it.
		if spec.Limits == nil {
			spec.Limits = &system.Limits{}
		}
		spec.Limits.OnDiag = func(d system.Diag) { agg.SetDiag(d) }
	}

	res, err := runGuarded(spec)
	if err != nil {
		flushAborted(err, agg, aggSweep, tracer, sampler, of, report)
		return err
	}
	if agg != nil {
		agg.CellDone(aggSweep, 0, observer.Registry.Gather())
	}
	t := stats.NewTable(fmt.Sprintf("%s on %s (%d,%d), %s page, iB=%d",
		rf.wl, rf.iface, rf.nw, rf.nb, rf.policy, rf.ibit), "Metric", "Value")
	t.AddRow("IPC", res.IPC)
	t.AddRow("MAPKI", res.MAPKI)
	t.AddRow("Row-buffer hit rate", res.RowHitRate)
	t.AddRow("Avg read latency (ns)", res.AvgReadLatencyNS)
	t.AddRow("L1 / L2 hit rate", fmt.Sprintf("%.3f / %.3f", res.L1HitRate, res.L2HitRate))
	t.AddRow("Predictor hit rate", res.PredHitRate)
	t.AddRow("Processor power (W)", res.Breakdown.ProcessorW())
	t.AddRow("ACT/PRE power (W)", res.Breakdown.ActPreW())
	t.AddRow("DRAM static power (W)", res.Breakdown.DRAMStaticW())
	t.AddRow("RD/WR power (W)", res.Breakdown.RdWrW())
	t.AddRow("I/O power (W)", res.Breakdown.IOW())
	t.AddRow("EDP (J·s)", fmt.Sprintf("%.3e", res.Breakdown.EDPJs()))
	// QoS rows only when a QoS knob is active, so default output is
	// unchanged.
	if rf.salp > 0 || rf.budget > 0 {
		t.AddRow("p99 latency (ns, whole run)", res.LatP99NS)
		t.AddRow("Max latency (ns, whole run)", res.LatMaxNS)
	}
	emit(report, t)

	if report != nil {
		report.SetMetric("ipc", res.IPC)
		report.SetMetric("mapki", res.MAPKI)
		report.SetMetric("row_hit_rate", res.RowHitRate)
		report.SetMetric("avg_read_latency_ns", res.AvgReadLatencyNS)
		report.SetMetric("pred_hit_rate", res.PredHitRate)
		report.SetMetric("edp_js", res.Breakdown.EDPJs())
	}

	if tracer != nil {
		n, werr := writeTrace(tracer, of.trace, report)
		if werr != nil {
			return werr
		}
		what := "DRAM commands"
		if winTrace {
			what = "window spans"
		}
		fmt.Printf("wrote %s (%d %s, %d bytes)\n", of.trace, tracer.Len(), what, n)
	}
	if sampler != nil && of.metrics != "" {
		if werr := writeMetricsFile(sampler, of.metrics, report); werr != nil {
			return werr
		}
		fmt.Printf("wrote %s (%d epochs, %d series)\n", of.metrics, sampler.Epochs(), len(sampler.Names()))
	}
	// Checker results go to the console only, never into the report:
	// reports must stay byte-identical with and without observability.
	if checker != nil {
		if err := checker.Err(); err != nil {
			for _, v := range checker.Violations() {
				fmt.Fprintln(os.Stderr, "microbank:", v)
			}
			return err
		}
		fmt.Printf("protocol check: %d DRAM commands, 0 violations\n", checker.Commands())
	}
	return nil
}

// writeTrace writes the Chrome trace artifact and records it in the
// report, returning the byte count for the caller's status line.
func writeTrace(tracer *obs.ChromeTracer, path string, report *experiments.Report) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	n, werr := tracer.WriteTo(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return n, fmt.Errorf("writing %s: %w", path, werr)
	}
	if report != nil {
		report.Artifact("trace", path)
	}
	return n, nil
}

// writeMetricsFile writes the sampler's epoch time series (.json, or
// CSV otherwise) and records it in the report.
func writeMetricsFile(sampler *obs.Sampler, path string, report *experiments.Report) error {
	var data []byte
	if strings.HasSuffix(path, ".json") {
		b, err := sampler.JSON()
		if err != nil {
			return err
		}
		data = b
	} else {
		data = []byte(sampler.CSV())
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	if report != nil {
		report.Artifact("metrics", path)
	}
	return nil
}

// flushAborted finalizes the partial artifacts of a run killed by a
// panic, tripped limit, or fatal protocol violation: the Chrome trace
// and epoch metrics collected so far are still written — the trace as
// valid JSON carrying an "aborted" marker — and the failure is recorded
// with the campaign aggregator. Notices go to stderr; stdout stays
// reserved for the output of completed runs.
func flushAborted(err error, agg *obs.Aggregator, aggSweep int, tracer *obs.ChromeTracer,
	sampler *obs.Sampler, of obsFlags, report *experiments.Report) {
	if tracer != nil {
		tracer.Aborted = err.Error()
		if _, werr := writeTrace(tracer, of.trace, report); werr != nil {
			fmt.Fprintln(os.Stderr, "microbank:", werr)
		} else {
			fmt.Fprintf(os.Stderr, "microbank: wrote %s (aborted, %d events)\n",
				of.trace, tracer.Len())
		}
	}
	if sampler != nil && of.metrics != "" {
		if werr := writeMetricsFile(sampler, of.metrics, report); werr != nil {
			fmt.Fprintln(os.Stderr, "microbank:", werr)
		} else {
			fmt.Fprintf(os.Stderr, "microbank: wrote %s (aborted, %d epochs)\n",
				of.metrics, sampler.Epochs())
		}
	}
	if agg != nil {
		f := obs.CellFailure{Sweep: aggSweep, Cell: 0, Kind: failKind(err),
			Error: err.Error(), Attempts: 1}
		var le *system.LimitError
		if errors.As(err, &le) {
			f.Diag = le.Diag
		}
		agg.CellFailed(f)
	}
}

// failKind classifies an ad-hoc run failure with the sweep taxonomy.
func failKind(err error) string {
	var le *system.LimitError
	if errors.As(err, &le) {
		return le.Kind
	}
	var fv *check.FatalViolation
	if errors.As(err, &fv) {
		return experiments.FailKindProtocol
	}
	return experiments.FailKindError
}
