// Command microbank regenerates the paper's tables and figures and
// runs ad-hoc simulations of the μbank memory system.
//
// Usage:
//
//	microbank -exp fig8                 # regenerate Fig. 8 (relative IPC grids)
//	microbank -exp all -quick           # every experiment, reduced fidelity
//	microbank -exp run -workload 429.mcf -nw 2 -nb 8 -policy open
//	microbank -exp run -workload 429.mcf -trace out.trace.json -metrics-out out.csv
//	microbank -exp run -workload 429.mcf -check collect   # DRAM timing-protocol sanitizer
//	microbank -exp list                 # list experiments and workloads
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"microbank/internal/check"
	"microbank/internal/config"
	"microbank/internal/experiments"
	"microbank/internal/obs"
	"microbank/internal/parallel"
	"microbank/internal/sim"
	"microbank/internal/stats"
	"microbank/internal/system"
	"microbank/internal/workload"
)

func main() {
	var (
		exp    = flag.String("exp", "list", "experiment id: fig1 table1 fig6a fig6b fig8 fig9 fig10 fig11 fig12 fig13 fig14 table2 headline ablations related all run list")
		instr  = flag.Uint64("instr", 0, "per-core instruction budget (0 = default)")
		cores  = flag.Int("cores", 0, "cores for multicore workloads (0 = default)")
		quick  = flag.Bool("quick", false, "reduced workload sets and budgets")
		seed   = flag.Int64("seed", 42, "simulation seed")
		jobs   = flag.Int("j", 0, "parallel simulations per sweep (0 = all cores); output is identical at any -j")
		jIntra = flag.Int("j-intra", 0, "worker threads inside each eligible simulation (windowed parallel engine); output is identical at any width")
		beta   = flag.Float64("beta", 1.0, "activates per column access for fig1/fig6b")
		wl     = flag.String("workload", "429.mcf", "workload for -exp run")
		nw     = flag.Int("nw", 1, "wordline partitions for -exp run")
		nb     = flag.Int("nb", 1, "bitline partitions for -exp run")
		iface  = flag.String("interface", "LPDDR-TSI", "DDR3-PCB | DDR3-TSI | LPDDR-TSI")
		policy = flag.String("policy", "open", "page policy: open close minimalist local global tournament perfect")
		ibit   = flag.Int("ib", 13, "interleave base bit (6 = cache line, 13 = row)")
		svgOut = flag.String("svg", "", "also write grid experiments (fig6a/fig6b/fig8/fig9) as SVG heatmaps with this filename prefix")

		checkFlag  = flag.String("check", "off", "timing-protocol sanitizer for -exp run: off | collect | fatal")
		traceOut   = flag.String("trace", "", "write DRAM commands of -exp run as Chrome trace-event JSON (open in Perfetto)")
		metricsOut = flag.String("metrics-out", "", "write epoch time-series metrics of -exp run to this file (.json, or CSV otherwise)")
		epochCyc   = flag.Uint64("epoch", 2500, "epoch length for -metrics-out sampling, in core cycles")
		pprofOut   = flag.String("pprof", "", "write a CPU profile of the whole invocation to this file")
		reportOut  = flag.String("report", "", "write a machine-readable JSON run report to this file")
		progress   = flag.Bool("progress", false, "print a sweep progress heartbeat to stderr")

		timeout     = flag.Duration("timeout", 0, "per-run wall-clock deadline (0 = none); exceeded runs fail with a diagnostic snapshot")
		eventBudget = flag.Uint64("event-budget", 0, "per-run simulation event budget (0 = none)")
		retries     = flag.Int("retries", 0, "retry budget per sweep cell for transient failures (deadline trips)")
		failMode    = flag.String("fail-mode", "fail-fast", "sweep reaction to a failed cell: fail-fast | collect | degrade")
		journalPath = flag.String("journal", "", "checkpoint completed sweep cells to this JSONL file")
		resume      = flag.Bool("resume", false, "resume the -journal campaign: completed cells replay from disk, byte-identically")
		injectSpec  = flag.String("inject", "", "deterministic fault injection for testing, e.g. panic:1,timeout:3 (kinds: panic error timeout budget flaky)")
	)
	flag.Parse()

	o := experiments.Options{Instr: *instr, Cores: *cores, Quick: *quick, Seed: *seed,
		Parallelism: *jobs, IntraParallelism: *jIntra}
	if *progress {
		o.Progress = heartbeat()
	}
	svgPrefix = *svgOut

	res, closeJournal, err := buildResilience(*exp, o, *failMode, *retries,
		*timeout, *eventBudget, *journalPath, *resume, *injectSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "microbank:", err)
		os.Exit(1)
	}
	o.Res = res

	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "microbank:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "microbank:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	var report *experiments.Report
	if *reportOut != "" {
		report = experiments.NewReport(*exp, o)
	}
	oflags := obsFlags{trace: *traceOut, metrics: *metricsOut, epochCycles: *epochCyc, check: *checkFlag}

	start := time.Now()
	err = dispatch(*exp, o, report, oflags, *beta, *wl, *nw, *nb, *iface, *policy, *ibit)
	if res != nil {
		if report != nil {
			report.AddFailures(res.Log)
		}
		summarizeFailures(res)
		if res.Journal != nil {
			fmt.Fprintf(os.Stderr, "microbank: journal: %d cell(s) replayed, %d checkpointed\n",
				res.Journal.Hits(), res.Journal.Cells())
		}
	}
	if err == nil && report != nil {
		err = report.WriteFile(*reportOut)
		if err == nil {
			fmt.Println("wrote", *reportOut)
		}
	}
	if err == nil {
		err = res.Err() // collect mode: failures mean a nonzero exit
	}
	if cerr := closeJournal(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "microbank:", err)
		if *pprofOut != "" {
			pprof.StopCPUProfile()
		}
		os.Exit(1)
	}
	fmt.Printf("(elapsed %s)\n", time.Since(start).Round(time.Millisecond))
}

// buildResilience turns the resilience flags into an armed
// *experiments.Resilience (nil when no flag asks for one, keeping the
// zero-overhead fail-fast path) plus a journal-close function.
func buildResilience(exp string, o experiments.Options, failMode string, retries int,
	timeout time.Duration, eventBudget uint64, journalPath string, resume bool,
	inject string) (*experiments.Resilience, func() error, error) {
	noop := func() error { return nil }
	if resume && journalPath == "" {
		return nil, nil, fmt.Errorf("-resume needs -journal")
	}
	armed := failMode != "fail-fast" || retries > 0 || timeout > 0 || eventBudget > 0 ||
		journalPath != "" || inject != ""
	if !armed {
		return nil, noop, nil
	}
	mode, err := parallel.ParseFailMode(failMode)
	if err != nil {
		return nil, nil, err
	}
	res := &experiments.Resilience{Mode: mode, Retries: retries,
		Timeout: timeout, EventBudget: eventBudget}
	if err := res.SetInject(inject); err != nil {
		return nil, nil, err
	}
	if journalPath == "" {
		return res, noop, nil
	}
	j, err := experiments.OpenJournal(journalPath, experiments.CampaignKey(exp, o), resume)
	if err != nil {
		return nil, nil, err
	}
	res.Journal = j
	return res, j.Close, nil
}

// summarizeFailures prints the campaign's failure records to stderr
// (stdout stays reserved for the deterministic tables).
func summarizeFailures(res *experiments.Resilience) {
	if res.Log == nil {
		return
	}
	fails := res.Log.Failures()
	if len(fails) == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "microbank: %d sweep cell(s) failed (%d retries):\n",
		len(fails), res.Log.Retries())
	for _, f := range fails {
		fmt.Fprintf(os.Stderr, "microbank:   sweep %d cell %d [%s] %s: %s\n",
			f.Sweep, f.Cell, f.Kind, f.Digest, f.Error)
	}
}

// heartbeat returns a Progress callback that prints a throttled
// completion count to stderr (stdout stays reserved for tables).
func heartbeat() func(done, total int) {
	var mu sync.Mutex
	var last time.Time
	return func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		now := time.Now()
		if done != total && now.Sub(last) < time.Second {
			return
		}
		last = now
		fmt.Fprintf(os.Stderr, "microbank: %d/%d runs\n", done, total)
	}
}

// obsFlags carries the -exp run observability options.
type obsFlags struct {
	trace       string
	metrics     string
	epochCycles uint64
	check       string
}

// svgPrefix, when set, makes grid experiments also emit SVG heatmaps.
var svgPrefix string

// emit prints a table and mirrors it into the report when one is open.
func emit(report *experiments.Report, t *stats.Table) {
	fmt.Println(t)
	if report != nil {
		report.AddTable(t)
	}
}

// emitGrid prints a grid table, mirrors grid and table into the report,
// and optionally writes the SVG heatmap.
func emitGrid(report *experiments.Report, g *experiments.GridData, name, title string) error {
	emit(report, g.Table(title))
	if report != nil {
		report.AddGrid(g)
	}
	if svgPrefix == "" {
		return nil
	}
	path := svgPrefix + name + ".svg"
	if err := os.WriteFile(path, []byte(g.SVG(title)), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	if report != nil {
		report.Artifact("svg:"+name, path)
	}
	return nil
}

func dispatch(exp string, o experiments.Options, report *experiments.Report, of obsFlags,
	beta float64, wl string, nw, nb int, ifaceName, policyName string, ibit int) error {
	switch exp {
	case "list":
		fmt.Println("experiments: fig1 table1 fig6a fig6b fig8 fig9 fig10 fig11 fig12 fig13 fig14 table2 headline all run")
		fmt.Println("workloads:", strings.Join(workload.Names(), " "))
		fmt.Println("workload sets: spec-high spec-all mix-high mix-blend")
		return nil
	case "table1":
		emit(report, experiments.Table1())
	case "table2":
		emit(report, experiments.Table2())
	case "fig1":
		emit(report, experiments.Fig1(beta, 8))
	case "fig6a":
		if err := emitGrid(report, experiments.Fig6a(), "fig6a", "Fig. 6a: relative DRAM die area"); err != nil {
			return err
		}
	case "fig6b":
		emit(report, experiments.Fig6b(beta).Table(fmt.Sprintf("Fig. 6b: relative energy per read, beta=%.1f", beta)))
		emit(report, experiments.Fig6b(0.1).Table("Fig. 6b: relative energy per read, beta=0.1"))
	case "fig8", "fig9":
		ipc, edp, err := experiments.Fig8And9(o)
		if err != nil {
			return err
		}
		for i := range ipc {
			if exp == "fig8" {
				if err := emitGrid(report, ipc[i], "fig8-"+ipc[i].Workload, "Fig. 8: relative IPC, "+ipc[i].Workload); err != nil {
					return err
				}
			} else {
				if err := emitGrid(report, edp[i], "fig9-"+edp[i].Workload, "Fig. 9: relative 1/EDP, "+edp[i].Workload); err != nil {
					return err
				}
			}
		}
	case "fig10":
		rows, err := experiments.Fig10(o)
		if err != nil {
			return err
		}
		emit(report, experiments.Fig10Table(rows))
	case "fig11":
		emit(report, experiments.Fig11())
	case "fig12":
		rows, err := experiments.Fig12(o)
		if err != nil {
			return err
		}
		emit(report, experiments.Fig12Table(rows))
	case "fig13":
		rows, err := experiments.Fig13(o)
		if err != nil {
			return err
		}
		emit(report, experiments.Fig13Table(rows))
	case "fig14":
		rows, err := experiments.Fig14(o)
		if err != nil {
			return err
		}
		emit(report, experiments.Fig14Table(rows))
	case "headline":
		h, err := experiments.Headline(o)
		if err != nil {
			return err
		}
		emit(report, experiments.HeadlineTable(h))
	case "ablations":
		tb, err := experiments.Ablations(o)
		if err != nil {
			return err
		}
		emit(report, tb)
	case "related":
		rows, err := experiments.RelatedWork(o)
		if err != nil {
			return err
		}
		emit(report, experiments.RelatedWorkTable(rows))
	case "all":
		for _, id := range []string{"table1", "table2", "fig1", "fig6a", "fig6b", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "headline", "ablations", "related"} {
			if err := dispatch(id, o, report, of, beta, wl, nw, nb, ifaceName, policyName, ibit); err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
		}
	case "run":
		return runCustom(o, report, of, wl, nw, nb, ifaceName, policyName, ibit)
	default:
		return fmt.Errorf("unknown experiment %q (try -exp list)", exp)
	}
	return nil
}

// runGuarded converts the sanitizer's fatal-mode panic into the typed
// error it carries, so a timing violation under -check fatal reports
// cleanly and exits through main's single error path. Any other panic
// propagates — a crash of the simulator itself should still dump its
// stack.
func runGuarded(spec system.Spec) (res system.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			fv, ok := r.(*check.FatalViolation)
			if !ok {
				panic(r)
			}
			err = fv
		}
	}()
	return system.Run(spec)
}

// runCustom executes one ad-hoc configuration and prints a summary,
// attaching the observability layer when -trace / -metrics-out ask
// for it.
func runCustom(o experiments.Options, report *experiments.Report, of obsFlags,
	wl string, nw, nb int, ifaceName, policyName string, ibit int) error {
	var iface config.Interface
	switch ifaceName {
	case "DDR3-PCB":
		iface = config.DDR3PCB
	case "DDR3-TSI":
		iface = config.DDR3TSI
	case "LPDDR-TSI":
		iface = config.LPDDRTSI
	default:
		return fmt.Errorf("unknown interface %q", ifaceName)
	}
	policies := map[string]config.PagePolicy{
		"open": config.OpenPage, "close": config.ClosePage, "minimalist": config.MinimalistOpen,
		"local": config.PredLocal, "global": config.PredGlobal,
		"tournament": config.PredTournament, "perfect": config.PredPerfect,
	}
	pol, ok := policies[policyName]
	if !ok {
		return fmt.Errorf("unknown policy %q", policyName)
	}
	prof, err := workload.Get(wl)
	if err != nil {
		return err
	}
	if o.Instr == 0 {
		o.Instr = 240000
	}
	sys := config.SingleCore(config.MemPreset(iface, nw, nb))
	sys.Ctrl.PagePolicy = pol
	sys.Ctrl.InterleaveBit = ibit
	spec := system.UniformSpec(sys, prof, o.Instr, o.Seed)
	spec.WarmupInstr = o.Instr / 2
	spec.Limits = o.Res.RunLimits()
	spec.IntraParallelism = o.IntraParallelism

	var (
		observer *obs.Observer
		sampler  *obs.Sampler
		tracer   *obs.ChromeTracer
		checker  *check.Checker
	)
	if of.trace != "" || of.metrics != "" || of.check != "off" {
		observer = obs.NewObserver()
		if of.metrics != "" {
			if of.epochCycles == 0 {
				return fmt.Errorf("-epoch must be positive")
			}
			sampler = observer.EnableSampling(sim.Time(of.epochCycles) * sys.CoreClock().Period())
		}
		if of.trace != "" {
			tracer = observer.EnableChromeTrace()
		}
		switch of.check {
		case "off":
		case "collect":
			checker = check.New(sys.Mem, check.ModeCollect)
			observer.AddTracer(checker)
		case "fatal":
			checker = check.New(sys.Mem, check.ModeFatal)
			observer.AddTracer(checker)
		default:
			return fmt.Errorf("unknown -check mode %q (off | collect | fatal)", of.check)
		}
		spec.Obs = observer
		if o.Res != nil {
			o.Res.RegisterMetrics(observer.Registry)
		}
	}

	res, err := runGuarded(spec)
	if err != nil {
		return err
	}
	t := stats.NewTable(fmt.Sprintf("%s on %s (%d,%d), %s page, iB=%d",
		wl, ifaceName, nw, nb, policyName, ibit), "Metric", "Value")
	t.AddRow("IPC", res.IPC)
	t.AddRow("MAPKI", res.MAPKI)
	t.AddRow("Row-buffer hit rate", res.RowHitRate)
	t.AddRow("Avg read latency (ns)", res.AvgReadLatencyNS)
	t.AddRow("L1 / L2 hit rate", fmt.Sprintf("%.3f / %.3f", res.L1HitRate, res.L2HitRate))
	t.AddRow("Predictor hit rate", res.PredHitRate)
	t.AddRow("Processor power (W)", res.Breakdown.ProcessorW())
	t.AddRow("ACT/PRE power (W)", res.Breakdown.ActPreW())
	t.AddRow("DRAM static power (W)", res.Breakdown.DRAMStaticW())
	t.AddRow("RD/WR power (W)", res.Breakdown.RdWrW())
	t.AddRow("I/O power (W)", res.Breakdown.IOW())
	t.AddRow("EDP (J·s)", fmt.Sprintf("%.3e", res.Breakdown.EDPJs()))
	emit(report, t)

	if report != nil {
		report.SetMetric("ipc", res.IPC)
		report.SetMetric("mapki", res.MAPKI)
		report.SetMetric("row_hit_rate", res.RowHitRate)
		report.SetMetric("avg_read_latency_ns", res.AvgReadLatencyNS)
		report.SetMetric("pred_hit_rate", res.PredHitRate)
		report.SetMetric("edp_js", res.Breakdown.EDPJs())
	}

	if tracer != nil {
		f, cerr := os.Create(of.trace)
		if cerr != nil {
			return cerr
		}
		n, werr := tracer.WriteTo(f)
		if err := f.Close(); werr == nil {
			werr = err
		}
		if werr != nil {
			return fmt.Errorf("writing %s: %w", of.trace, werr)
		}
		fmt.Printf("wrote %s (%d DRAM commands, %d bytes)\n", of.trace, tracer.Len(), n)
		if report != nil {
			report.Artifact("trace", of.trace)
		}
	}
	if sampler != nil {
		var data []byte
		if strings.HasSuffix(of.metrics, ".json") {
			b, merr := sampler.JSON()
			if merr != nil {
				return merr
			}
			data = b
		} else {
			data = []byte(sampler.CSV())
		}
		if werr := os.WriteFile(of.metrics, data, 0o644); werr != nil {
			return werr
		}
		fmt.Printf("wrote %s (%d epochs, %d series)\n", of.metrics, sampler.Epochs(), len(sampler.Names()))
		if report != nil {
			report.Artifact("metrics", of.metrics)
		}
	}
	// Checker results go to the console only, never into the report:
	// reports must stay byte-identical with and without observability.
	if checker != nil {
		if err := checker.Err(); err != nil {
			for _, v := range checker.Violations() {
				fmt.Fprintln(os.Stderr, "microbank:", v)
			}
			return err
		}
		fmt.Printf("protocol check: %d DRAM commands, 0 violations\n", checker.Commands())
	}
	return nil
}
