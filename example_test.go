package microbank_test

import (
	"fmt"

	"microbank"
)

// ExampleRelativeArea reproduces the Fig. 6(a) anchor values of the
// μbank die-area model.
func ExampleRelativeArea() {
	fmt.Printf("(1,1):  %.3f\n", microbank.RelativeArea(1, 1))
	fmt.Printf("(2,8):  %.3f\n", microbank.RelativeArea(2, 8))
	fmt.Printf("(16,16): %.3f\n", microbank.RelativeArea(16, 16))
	// Output:
	// (1,1):  1.000
	// (2,8):  1.018
	// (16,16): 1.267
}

// ExampleEnergyPerRead shows how wordline partitioning divides the
// activate/precharge energy of a 64 B read (β = 1: an activate per
// column access).
func ExampleEnergyPerRead() {
	base := microbank.EnergyPerRead(1, 1, 1.0)
	ub := microbank.EnergyPerRead(8, 1, 1.0)
	fmt.Printf("baseline: %.1f nJ\n", base/1000)
	fmt.Printf("nW=8:     %.1f nJ\n", ub/1000)
	// Output:
	// baseline: 34.1 nJ
	// nW=8:     7.8 nJ
}

// ExampleRun simulates a short memory-intensive run on a μbank device
// and prints whether the row-buffer hit rate improved over the
// conventional organization.
func ExampleRun() {
	run := func(nW, nB int) microbank.Result {
		mem := microbank.MemPreset(microbank.LPDDRTSI, nW, nB)
		spec := microbank.UniformSpec(microbank.SingleCore(mem),
			microbank.Workload("470.lbm"), 40_000, 7)
		spec.WarmupInstr = 20_000
		res, err := microbank.Run(spec)
		if err != nil {
			panic(err)
		}
		return res
	}
	base := run(1, 1)
	ub := run(2, 8)
	fmt.Println("IPC improves:", ub.IPC > base.IPC)
	fmt.Println("row hits improve:", ub.RowHitRate > base.RowHitRate)
	fmt.Println("ACT/PRE energy falls:", ub.Breakdown.ActPrePJ < base.Breakdown.ActPrePJ)
	// Output:
	// IPC improves: true
	// row hits improve: true
	// ACT/PRE energy falls: true
}
