// Interface study (the §III / Fig. 14 question): what do TSI packaging
// and a low-power PHY buy before any device-level changes?
//
// Runs a bandwidth-hungry multithreaded workload on a multicore system
// over the three processor-memory interfaces — DDR3 over PCB (8
// pin-limited channels), DDR3 dies on a silicon interposer (16
// channels), and LPDDR-style dies on an interposer (16 channels, no
// ODT/DLL) — and prints the power breakdown that motivates μbank: once
// I/O energy collapses, activate/precharge dominates memory power.
//
// Run with:
//
//	go run ./examples/interfaces
package main

import (
	"fmt"
	"log"

	"microbank"
)

func main() {
	const cores = 32
	prof := microbank.Workload("RADIX")

	fmt.Printf("RADIX × %d cores\n\n", cores)
	fmt.Printf("%-10s %8s %9s %9s %9s %9s %9s %14s\n",
		"interface", "IPC", "proc(W)", "actpre(W)", "static(W)", "rdwr(W)", "io(W)", "ACT/PRE share")
	var baseEDP float64
	for _, iface := range []microbank.Interface{microbank.DDR3PCB, microbank.DDR3TSI, microbank.LPDDRTSI} {
		mem := microbank.MemPreset(iface, 1, 1)
		sys := microbank.DefaultSystem(mem)
		sys.Cores = cores
		spec := microbank.UniformSpec(sys, prof, 40_000, 11)
		spec.WarmupInstr = 20_000
		res, err := microbank.Run(spec)
		if err != nil {
			log.Fatal(err)
		}
		b := res.Breakdown
		fmt.Printf("%-10s %8.2f %9.2f %9.2f %9.2f %9.2f %9.2f %13.1f%%\n",
			iface, res.IPC, b.ProcessorW(), b.ActPreW(), b.DRAMStaticW(),
			b.RdWrW(), b.IOW(), 100*b.ActPreShareOfMemory())
		if iface == microbank.DDR3PCB {
			baseEDP = b.EDPJs()
		} else {
			fmt.Printf("%10s relative 1/EDP vs DDR3-PCB: %.2fx\n", "", baseEDP/b.EDPJs())
		}
	}
	fmt.Println("\nTSI cuts I/O power; the LPDDR PHY cuts it further — leaving")
	fmt.Println("ACT/PRE as the dominant memory power term. That imbalance is")
	fmt.Println("exactly what the μbank device organization attacks.")
}
