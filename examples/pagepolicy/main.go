// Page-policy study (the §V / Fig. 13 question): with a massive number
// of μbank row buffers, does a complex prediction-based page-management
// policy still pay off over plain open-page?
//
// This example sweeps all seven policies over a conventional and a
// μbank device for a low-locality (429.mcf) and a high-locality
// (canneal) workload.
//
// Run with:
//
//	go run ./examples/pagepolicy
package main

import (
	"fmt"
	"log"

	"microbank"
)

func main() {
	policies := []microbank.PagePolicy{
		microbank.ClosePage, microbank.OpenPage, microbank.MinimalistOpen,
		microbank.PredLocal, microbank.PredGlobal, microbank.PredTournament,
		microbank.PredPerfect,
	}
	workloads := []string{"429.mcf", "canneal"}
	configs := [][2]int{{1, 1}, {2, 8}}

	for _, wl := range workloads {
		prof := microbank.Workload(wl)
		for _, cfg := range configs {
			fmt.Printf("\n%s on (nW,nB) = (%d,%d)\n", wl, cfg[0], cfg[1])
			fmt.Printf("%-12s %8s %10s %10s\n", "policy", "IPC", "rowHit", "predHit")
			for _, pol := range policies {
				mem := microbank.MemPreset(microbank.LPDDRTSI, cfg[0], cfg[1])
				sys := microbank.SingleCore(mem)
				sys.Ctrl.PagePolicy = pol
				spec := microbank.UniformSpec(sys, prof, 160_000, 7)
				spec.WarmupInstr = 80_000
				res, err := microbank.Run(spec)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("%-12v %8.3f %10.3f %10.3f\n",
					pol, res.IPC, res.RowHitRate, res.PredHitRate)
			}
		}
	}
	fmt.Println("\nWith μbanks the spread between open-page and the perfect")
	fmt.Println("predictor collapses — the paper's argument that μbank")
	fmt.Println("obviates complex page-management hardware.")
}
