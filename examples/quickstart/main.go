// Quickstart: simulate one memory-intensive SPEC workload on the
// baseline DRAM organization and on a μbank-partitioned device, and
// print the paper's headline metrics side by side.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"microbank"
)

func main() {
	const (
		instr  = 200_000
		warmup = 100_000
		seed   = 42
	)
	prof := microbank.Workload("429.mcf")

	run := func(nW, nB int) microbank.Result {
		mem := microbank.MemPreset(microbank.LPDDRTSI, nW, nB)
		sys := microbank.SingleCore(mem)
		spec := microbank.UniformSpec(sys, prof, instr, seed)
		spec.WarmupInstr = warmup
		res, err := microbank.Run(spec)
		if err != nil {
			log.Fatalf("simulation failed: %v", err)
		}
		return res
	}

	base := run(1, 1) // conventional banks
	ub := run(4, 4)   // 16 μbanks per bank, <2% die-area overhead

	fmt.Println("429.mcf on LPDDR-TSI, conventional banks vs (4,4) μbanks")
	fmt.Printf("%-28s %12s %12s\n", "metric", "(1,1)", "(4,4)")
	row := func(name string, a, b float64) {
		fmt.Printf("%-28s %12.3f %12.3f\n", name, a, b)
	}
	row("IPC", base.IPC, ub.IPC)
	row("row-buffer hit rate", base.RowHitRate, ub.RowHitRate)
	row("avg read latency (ns)", base.AvgReadLatencyNS, ub.AvgReadLatencyNS)
	row("ACT/PRE power (W)", base.Breakdown.ActPreW(), ub.Breakdown.ActPreW())
	row("total power (W)", base.Breakdown.TotalW(), ub.Breakdown.TotalW())
	fmt.Printf("%-28s %12.3f %12.3f\n", "EDP (normalized)",
		1.0, ub.Breakdown.EDPJs()/base.Breakdown.EDPJs())
	fmt.Printf("\nμbank speedup: %.2fx IPC, %.2fx 1/EDP, at %.1f%% die-area overhead\n",
		ub.IPC/base.IPC,
		base.Breakdown.EDPJs()/ub.Breakdown.EDPJs(),
		100*(microbank.RelativeArea(4, 4)-1))
}
