// Trace record & replay: capture a synthetic workload's memory-access
// stream to the portable text trace format, reload it, and drive the
// full simulator from the replayed trace — the workflow for bringing
// externally-captured traces (Pin, DynamoRIO, perf mem) into this
// simulator.
//
// Run with:
//
//	go run ./examples/tracereplay
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"

	"microbank"
	"microbank/internal/system"
	"microbank/internal/workload"
)

func main() {
	const instr = 60_000
	prof := microbank.Workload("433.milc")

	// 1. Record the generator's stream to the text format.
	var buf bytes.Buffer
	gen := workload.NewSynthetic(prof, 0, 2024)
	if err := workload.Record(&buf, gen, instr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d accesses (%d bytes); first lines:\n", instr, buf.Len())
	for i, line := range strings.SplitN(buf.String(), "\n", 5)[:4] {
		fmt.Printf("  %d: %s\n", i, line)
	}

	// 2. Reload and replay through the full system.
	tr, err := workload.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	sys := microbank.SingleCore(microbank.MemPreset(microbank.LPDDRTSI, 2, 8))
	spec := microbank.UniformSpec(sys, prof, instr, 2024)
	spec.WarmupInstr = instr / 2
	spec.GeneratorFor = func(core int) workload.Generator { return tr }
	res, err := system.Run(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreplayed through LPDDR-TSI (2,8): IPC=%.3f MAPKI=%.1f rowHit=%.3f\n",
		res.IPC, res.MAPKI, res.RowHitRate)
	fmt.Println("\nAny tool that emits `<gap> <hex addr> <R|W>` lines can drive")
	fmt.Println("the simulator the same way via Spec.GeneratorFor.")
}
