// μbank design-space sweep (the §IV / Fig. 6+8 question): how should a
// bank be partitioned between the wordline (nW) and bitline (nB)
// directions under a die-area budget?
//
// For every (nW, nB) on the paper's grid this example combines the
// analytic area model with a simulated IPC/EDP measurement of a
// database workload and reports the best configuration under a 3%
// area-overhead constraint — the paper's representative-configuration
// selection process.
//
// Run with:
//
//	go run ./examples/ubanksweep
package main

import (
	"fmt"
	"log"

	"microbank"
)

func main() {
	axis := []int{1, 2, 4, 8, 16}
	prof := microbank.Workload("TPC-H")

	type point struct {
		nW, nB int
		area   float64
		ipc    float64
		edp    float64
	}
	var pts []point
	var base point

	for _, nB := range axis {
		for _, nW := range axis {
			mem := microbank.MemPreset(microbank.LPDDRTSI, nW, nB)
			sys := microbank.SingleCore(mem)
			spec := microbank.UniformSpec(sys, prof, 120_000, 3)
			spec.WarmupInstr = 60_000
			res, err := microbank.Run(spec)
			if err != nil {
				log.Fatal(err)
			}
			p := point{nW: nW, nB: nB, area: microbank.RelativeArea(nW, nB),
				ipc: res.IPC, edp: res.Breakdown.EDPJs()}
			if nW == 1 && nB == 1 {
				base = p
			}
			pts = append(pts, p)
		}
	}

	fmt.Println("TPC-H design space: relative IPC / relative 1/EDP / area overhead")
	fmt.Printf("%8s", "nB\\nW")
	for _, w := range axis {
		fmt.Printf(" %18d", w)
	}
	fmt.Println()
	i := 0
	for range axis {
		fmt.Printf("%8d", pts[i].nB)
		for range axis {
			p := pts[i]
			fmt.Printf("  %.2f/%.2f/%4.1f%%", p.ipc/base.ipc, base.edp/p.edp, 100*(p.area-1))
			i++
		}
		fmt.Println()
	}

	best := base
	for _, p := range pts {
		if p.area-1 < 0.03 && base.edp/p.edp > base.edp/best.edp {
			best = p
		}
	}
	fmt.Printf("\nBest <3%%-area configuration: (nW,nB) = (%d,%d): %.2fx IPC, %.2fx 1/EDP, %.1f%% area\n",
		best.nW, best.nB, best.ipc/base.ipc, base.edp/best.edp, 100*(best.area-1))
}
