module microbank

go 1.22
