// Package addr maps physical addresses to DRAM locations
// (channel/rank/bank/μbank/row/column) under the configurable
// interleaving of Fig. 11 of the paper.
//
// The layout, from the least-significant bit:
//
//	[0, 6)            byte offset within a 64 B cache line
//	[6, iB)           low column bits (lines within the μbank row)
//	[iB, iB+f)        interleave field: channel, then bank, then μbank
//	[iB+f, ...)       remaining column bits, rank, row (MSB)
//
// iB is the "interleaving base bit". iB = 6 interleaves consecutive
// cache lines across channels/banks (cache-line interleaving); iB =
// log2(μbank row bytes) places the whole row in one μbank before moving
// to the next (DRAM-row interleaving). For the unpartitioned 8 KB row
// that maximum is 13, matching the paper's iB range of 6–13.
package addr

import (
	"fmt"
	"math/bits"

	"microbank/internal/config"
)

// Loc is a fully decoded DRAM location.
type Loc struct {
	Channel int
	Rank    int
	Bank    int    // conventional bank within the rank
	Micro   int    // μbank index within the bank, in [0, nW*nB)
	Row     uint32 // row within the μbank
	Col     uint32 // cache-line index within the μbank row
}

// BankID flattens (Channel,Rank,Bank,Micro) into a dense global index.
type BankID int

// Mapper decodes physical addresses for one memory organization.
// Construct with NewMapper; the zero value is unusable.
type Mapper struct {
	org config.Org
	iB  int
	xor bool

	lineBits    int
	lowColBits  int
	chanBits    int
	bankBits    int
	microBits   int
	highColBits int
	rankBits    int
	rowBits     int
}

// NewMapper validates and builds a Mapper. iB must lie in
// [6, log2(μbank row bytes)].
func NewMapper(org config.Org, iB int) (*Mapper, error) {
	return NewMapperHashed(org, iB, false)
}

// NewMapperHashed is NewMapper with optional XOR bank hashing
// (permutation-based interleaving): the bank/μbank field is XORed with
// the low row bits, so strided access patterns that would alias onto
// one bank spread across all of them. The channel field is left
// unhashed so controller load balance is unchanged.
func NewMapperHashed(org config.Org, iB int, xorHash bool) (*Mapper, error) {
	if err := org.Validate(); err != nil {
		return nil, err
	}
	lineBits := log2(org.CacheLineBytes)
	maxIB := log2(org.MicroRowBytes())
	if iB < lineBits || iB > maxIB {
		return nil, fmt.Errorf("addr: iB=%d out of range [%d,%d] for μrow of %d B",
			iB, lineBits, maxIB, org.MicroRowBytes())
	}
	m := &Mapper{
		org:        org,
		iB:         iB,
		xor:        xorHash,
		lineBits:   lineBits,
		lowColBits: iB - lineBits,
		chanBits:   log2(org.Channels),
		bankBits:   log2(org.BanksPerRank),
		microBits:  log2(org.NW * org.NB),
		rankBits:   log2(org.RanksPerChan),
	}
	totalColBits := log2(org.LinesPerRow())
	m.highColBits = totalColBits - m.lowColBits
	// Rows fill the remaining capacity.
	totalBytes := uint64(org.CapacityGB) << 30
	used := m.lineBits + totalColBits + m.chanBits + m.bankBits + m.microBits + m.rankBits
	m.rowBits = int(bits.Len64(totalBytes>>used)) - 1
	if m.rowBits < 1 {
		m.rowBits = 1
	}
	return m, nil
}

// MustMapper is NewMapper that panics on error, for tests and tables.
func MustMapper(org config.Org, iB int) *Mapper {
	m, err := NewMapper(org, iB)
	if err != nil {
		panic(err)
	}
	return m
}

// InterleaveBit returns iB.
func (m *Mapper) InterleaveBit() int { return m.iB }

// Org returns the organization this mapper was built for.
func (m *Mapper) Org() config.Org { return m.org }

// Banks returns the total number of independently schedulable (μ)banks.
func (m *Mapper) Banks() int { return m.org.TotalRowBuffers() }

// BanksPerChannel returns the number of (μ)banks behind one controller.
func (m *Mapper) BanksPerChannel() int {
	return m.org.RanksPerChan * m.org.BanksPerRank * m.org.NW * m.org.NB
}

func take(a uint64, shift, width int) (field uint64, rest uint64) {
	if width == 0 {
		return 0, a
	}
	return (a >> shift) & ((1 << width) - 1), a
}

// hashBankMicro XORs the combined (μbank,bank) index with the low row
// bits. The operation is an involution, so Map and Unmap share it.
func (m *Mapper) hashBankMicro(bank, micro int, row uint32) (int, int) {
	if !m.xor {
		return bank, micro
	}
	width := m.bankBits + m.microBits
	combined := micro<<m.bankBits | bank
	combined ^= int(row) & (1<<width - 1)
	return combined & (1<<m.bankBits - 1), combined >> m.bankBits
}

// Map decodes a physical byte address.
func (m *Mapper) Map(pa uint64) Loc {
	shift := m.lineBits
	lowCol, _ := take(pa, shift, m.lowColBits)
	shift += m.lowColBits
	ch, _ := take(pa, shift, m.chanBits)
	shift += m.chanBits
	bank, _ := take(pa, shift, m.bankBits)
	shift += m.bankBits
	micro, _ := take(pa, shift, m.microBits)
	shift += m.microBits
	highCol, _ := take(pa, shift, m.highColBits)
	shift += m.highColBits
	rank, _ := take(pa, shift, m.rankBits)
	shift += m.rankBits
	row := pa >> shift
	b, mi := m.hashBankMicro(int(bank), int(micro), uint32(row))
	return Loc{
		Channel: int(ch),
		Rank:    int(rank),
		Bank:    b,
		Micro:   mi,
		Row:     uint32(row),
		Col:     uint32(highCol<<m.lowColBits | lowCol),
	}
}

// Unmap re-encodes a location into a physical address (inverse of Map
// for in-range fields). Used by tests and trace synthesis.
func (m *Mapper) Unmap(l Loc) uint64 {
	// Undo the bank hash (it is an involution).
	b, mi := m.hashBankMicro(l.Bank, l.Micro, l.Row)
	l.Bank, l.Micro = b, mi
	lowCol := uint64(l.Col) & ((1 << m.lowColBits) - 1)
	highCol := uint64(l.Col) >> m.lowColBits
	var pa uint64
	shift := m.lineBits
	pa |= lowCol << shift
	shift += m.lowColBits
	pa |= uint64(l.Channel) << shift
	shift += m.chanBits
	pa |= uint64(l.Bank) << shift
	shift += m.bankBits
	pa |= uint64(l.Micro) << shift
	shift += m.microBits
	pa |= highCol << shift
	shift += m.highColBits
	pa |= uint64(l.Rank) << shift
	shift += m.rankBits
	pa |= uint64(l.Row) << shift
	return pa
}

// GlobalBank returns a dense index over all (μ)banks in the system,
// suitable for per-bank state arrays.
func (m *Mapper) GlobalBank(l Loc) BankID {
	per := m.BanksPerChannel()
	within := (l.Rank*m.org.BanksPerRank+l.Bank)*m.org.NW*m.org.NB + l.Micro
	return BankID(l.Channel*per + within)
}

// LocalBank returns a dense index of the (μ)bank within its channel.
func (m *Mapper) LocalBank(l Loc) int {
	return (l.Rank*m.org.BanksPerRank+l.Bank)*m.org.NW*m.org.NB + l.Micro
}

// RowBits and ColBits expose field widths for diagnostics.
func (m *Mapper) RowBits() int { return m.rowBits }

// ColBits returns the number of column (line-index) bits.
func (m *Mapper) ColBits() int { return m.lowColBits + m.highColBits }

// Layout returns a human-readable description of the bit layout, used
// by the Fig. 11 experiment printer.
func (m *Mapper) Layout() string {
	type field struct {
		name  string
		width int
	}
	fields := []field{
		{"line", m.lineBits},
		{"col.lo", m.lowColBits},
		{"chan", m.chanBits},
		{"bank", m.bankBits},
		{"ubank", m.microBits},
		{"col.hi", m.highColBits},
		{"rank", m.rankBits},
		{"row", m.rowBits},
	}
	out := ""
	bit := 0
	for _, f := range fields {
		if f.width == 0 {
			continue
		}
		if out != "" {
			out += " | "
		}
		out += fmt.Sprintf("%s[%d:%d]", f.name, bit, bit+f.width-1)
		bit += f.width
	}
	return out
}

func log2(v int) int {
	if v <= 0 || v&(v-1) != 0 {
		panic(fmt.Sprintf("addr: log2 of non-power-of-two %d", v))
	}
	return bits.TrailingZeros(uint(v))
}
