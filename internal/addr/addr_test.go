package addr

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"microbank/internal/config"
)

func org(nW, nB int) config.Org {
	return config.MemPreset(config.LPDDRTSI, nW, nB).Org
}

func TestNewMapperIBRange(t *testing.T) {
	o := org(1, 1) // 8 KB μrow ⇒ iB ∈ [6,13]
	for iB := 6; iB <= 13; iB++ {
		if _, err := NewMapper(o, iB); err != nil {
			t.Errorf("iB=%d rejected: %v", iB, err)
		}
	}
	for _, iB := range []int{5, 14, 0, -1} {
		if _, err := NewMapper(o, iB); err == nil {
			t.Errorf("iB=%d accepted", iB)
		}
	}
	// (2,8): μrow = 4 KB ⇒ max iB = 12, matching Fig. 12's x-axis.
	o28 := org(2, 8)
	if _, err := NewMapper(o28, 12); err != nil {
		t.Errorf("(2,8) iB=12 rejected: %v", err)
	}
	if _, err := NewMapper(o28, 13); err == nil {
		t.Error("(2,8) iB=13 accepted; μrow is only 4 KB")
	}
	// (8,2): μrow = 1 KB ⇒ max iB = 10.
	if _, err := NewMapper(org(8, 2), 11); err == nil {
		t.Error("(8,2) iB=11 accepted")
	}
}

func TestMapperRejectsBadOrg(t *testing.T) {
	o := org(1, 1)
	o.NW = 3
	if _, err := NewMapper(o, 6); err == nil {
		t.Fatal("bad org accepted")
	}
}

func TestMustMapperPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustMapper did not panic")
		}
	}()
	MustMapper(org(1, 1), 99)
}

func TestMapUnmapRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, cfg := range [][2]int{{1, 1}, {2, 8}, {4, 4}, {8, 2}, {16, 16}} {
		o := org(cfg[0], cfg[1])
		maxIB := 13 - trailing(cfg[0])
		for iB := 6; iB <= maxIB; iB++ {
			m := MustMapper(o, iB)
			for i := 0; i < 200; i++ {
				pa := rng.Uint64() % (uint64(o.CapacityGB) << 30)
				pa &^= 63 // line aligned
				l := m.Map(pa)
				if got := m.Unmap(l); got != pa {
					t.Fatalf("(%d,%d) iB=%d: Unmap(Map(%#x)) = %#x", cfg[0], cfg[1], iB, pa, got)
				}
			}
		}
	}
}

func trailing(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

func TestFieldRanges(t *testing.T) {
	o := org(4, 4)
	m := MustMapper(o, 8)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		pa := rng.Uint64() % (uint64(o.CapacityGB) << 30)
		l := m.Map(pa)
		if l.Channel < 0 || l.Channel >= o.Channels {
			t.Fatalf("channel %d out of range", l.Channel)
		}
		if l.Rank < 0 || l.Rank >= o.RanksPerChan {
			t.Fatalf("rank %d out of range", l.Rank)
		}
		if l.Bank < 0 || l.Bank >= o.BanksPerRank {
			t.Fatalf("bank %d out of range", l.Bank)
		}
		if l.Micro < 0 || l.Micro >= o.NW*o.NB {
			t.Fatalf("micro %d out of range", l.Micro)
		}
		if int(l.Col) >= o.LinesPerRow() {
			t.Fatalf("col %d out of range (%d lines/row)", l.Col, o.LinesPerRow())
		}
	}
}

func TestCacheLineInterleavingSpreadsChannels(t *testing.T) {
	o := org(1, 1)
	m := MustMapper(o, 6)
	// Consecutive cache lines must land on consecutive channels.
	for i := 0; i < 64; i++ {
		pa := uint64(i) * 64
		l := m.Map(pa)
		if l.Channel != i%o.Channels {
			t.Fatalf("line %d on channel %d, want %d", i, l.Channel, i%o.Channels)
		}
	}
}

func TestRowInterleavingKeepsRowTogether(t *testing.T) {
	o := org(1, 1)
	m := MustMapper(o, 13) // 8 KB row interleaving
	base := m.Map(uint64(0))
	for i := 0; i < 128; i++ { // all 128 lines of an 8 KB row
		l := m.Map(uint64(i) * 64)
		if l.Channel != base.Channel || l.Bank != base.Bank || l.Row != base.Row || l.Micro != base.Micro {
			t.Fatalf("line %d left the row: %+v vs %+v", i, l, base)
		}
		if l.Col != uint32(i) {
			t.Fatalf("line %d col = %d", i, l.Col)
		}
	}
	// The next 8 KB chunk must land elsewhere.
	next := m.Map(uint64(8192))
	if next.Channel == base.Channel && next.Bank == base.Bank && next.Micro == base.Micro && next.Row == base.Row {
		t.Fatal("next row chunk did not move")
	}
}

func TestGlobalBankDenseAndStable(t *testing.T) {
	o := org(2, 2)
	m := MustMapper(o, 6)
	seen := map[BankID]Loc{}
	total := m.Banks()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		pa := rng.Uint64() % (uint64(o.CapacityGB) << 30)
		l := m.Map(pa)
		id := m.GlobalBank(l)
		if int(id) < 0 || int(id) >= total {
			t.Fatalf("bank id %d out of [0,%d)", id, total)
		}
		prev, ok := seen[id]
		if ok && (prev.Channel != l.Channel || prev.Rank != l.Rank || prev.Bank != l.Bank || prev.Micro != l.Micro) {
			t.Fatalf("bank id %d collides: %+v vs %+v", id, prev, l)
		}
		key := l
		key.Row, key.Col = 0, 0
		seen[id] = key
	}
	if m.BanksPerChannel()*o.Channels != total {
		t.Fatalf("BanksPerChannel inconsistent: %d*%d != %d", m.BanksPerChannel(), o.Channels, total)
	}
}

func TestLocalBankWithinChannel(t *testing.T) {
	o := org(4, 2)
	m := MustMapper(o, 6)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		pa := rng.Uint64() % (uint64(o.CapacityGB) << 30)
		l := m.Map(pa)
		lb := m.LocalBank(l)
		if lb < 0 || lb >= m.BanksPerChannel() {
			t.Fatalf("local bank %d out of range", lb)
		}
		if int(m.GlobalBank(l)) != l.Channel*m.BanksPerChannel()+lb {
			t.Fatal("GlobalBank and LocalBank disagree")
		}
	}
}

func TestLayoutMentionsFields(t *testing.T) {
	m := MustMapper(org(2, 8), 8)
	lay := m.Layout()
	for _, f := range []string{"line", "chan", "bank", "ubank", "row"} {
		if !strings.Contains(lay, f) {
			t.Errorf("layout %q missing %q", lay, f)
		}
	}
	// iB=6 has no low column bits.
	lay6 := MustMapper(org(2, 8), 6).Layout()
	if strings.Contains(lay6, "col.lo") {
		t.Errorf("iB=6 layout should have no low column bits: %q", lay6)
	}
}

// Property: round-trip holds for arbitrary line-aligned addresses and
// all decoded fields stay in range.
func TestMapProperty(t *testing.T) {
	o := org(2, 8)
	m := MustMapper(o, 10)
	f := func(raw uint64) bool {
		pa := (raw % (uint64(o.CapacityGB) << 30)) &^ 63
		l := m.Map(pa)
		return m.Unmap(l) == pa &&
			l.Channel < o.Channels && l.Bank < o.BanksPerRank &&
			l.Micro < o.NW*o.NB && int(l.Col) < o.LinesPerRow()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: two addresses that differ only above the row field map to
// the same channel/bank/μbank but different rows.
func TestRowFieldIsolationProperty(t *testing.T) {
	o := org(4, 4)
	m := MustMapper(o, 9)
	f := func(raw uint64, delta uint16) bool {
		pa := (raw % (uint64(o.CapacityGB) << 31)) &^ 63
		l1 := m.Map(pa)
		l2 := l1
		l2.Row = l1.Row + uint32(delta%128) + 1
		pa2 := m.Unmap(l2)
		l3 := m.Map(pa2)
		return l3.Channel == l1.Channel && l3.Bank == l1.Bank &&
			l3.Micro == l1.Micro && l3.Col == l1.Col && l3.Row == l2.Row
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestXORHashRoundTrip(t *testing.T) {
	o := org(2, 8)
	m, err := NewMapperHashed(o, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 5000; i++ {
		pa := (rng.Uint64() % (uint64(o.CapacityGB) << 30)) &^ 63
		l := m.Map(pa)
		if got := m.Unmap(l); got != pa {
			t.Fatalf("hashed Unmap(Map(%#x)) = %#x", pa, got)
		}
		if l.Bank >= o.BanksPerRank || l.Micro >= o.NW*o.NB {
			t.Fatalf("hashed fields out of range: %+v", l)
		}
	}
}

func TestXORHashBreaksRowAliasing(t *testing.T) {
	// Addresses one row apart land on the same bank without hashing
	// only when their row bits collide mod the bank field; a stride of
	// exactly banks*rows' period aliases. With hashing, consecutive
	// same-bank rows spread out.
	o := org(1, 1)
	plain := MustMapper(o, 13)
	hashed, _ := NewMapperHashed(o, 13, true)
	// Stride chosen to alias on the plain mapping: one full bank
	// rotation (banks × 8 KB × channels).
	stride := uint64(o.Channels*o.BanksPerRank) * 8192
	plainBanks := map[int]bool{}
	hashedBanks := map[int]bool{}
	for i := 0; i < 64; i++ {
		pa := uint64(i) * stride
		pl := plain.Map(pa)
		hl := hashed.Map(pa)
		plainBanks[pl.Bank] = true
		hashedBanks[hl.Bank*100+hl.Micro] = true
	}
	if len(plainBanks) != 1 {
		t.Fatalf("plain mapping should alias to one bank, got %d", len(plainBanks))
	}
	if len(hashedBanks) < 4 {
		t.Fatalf("hashed mapping spread over %d banks, want >= 4", len(hashedBanks))
	}
}
