// Package cache implements the on-chip memory hierarchy substrates of
// the simulated CMP (§VI-A): set-associative write-back caches with
// LRU replacement and MSHR-based miss handling, plus a MESI reverse
// directory that tracks which cluster L2 holds each line.
//
// Timing model: a hit completes after the cache's access latency; a
// miss allocates an MSHR (merging same-line requests), fetches the line
// from the next level, and releases all merged waiters when the fill
// arrives. Dirty victims generate write-backs down the hierarchy.
package cache

import (
	"fmt"
	"math/bits"

	"microbank/internal/config"
	"microbank/internal/sim"
)

// State is a MESI coherence state.
type State uint8

// MESI states.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String returns the one-letter MESI name.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// FillFunc fetches a cache line from the next level. done must be
// invoked exactly once with the fill completion time.
type FillFunc func(blockAddr uint64, write bool, thread int, done func(at sim.Time))

// WritebackFunc accepts an evicted dirty line (posted; no completion).
type WritebackFunc func(blockAddr uint64, thread int)

// Stats counts cache activity.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	MergedMiss uint64 // requests merged into an in-flight MSHR
	Writebacks uint64
	MSHRStall  uint64 // rejected because all MSHRs were busy
	Evictions  uint64
}

// HitRate returns hits/accesses.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// line packs a cache way into 16 bytes so the lookup scan stays within
// one or two cache lines per set: key folds the validity bit into the
// tag (tag<<1|1 when valid, 0 when invalid — a single compare tests
// both), and meta folds the MESI state into the LRU tick
// (lastUse<<2|state).
type line struct {
	key  uint64
	meta uint64
}

func (l *line) valid() bool  { return l.key&1 != 0 }
func (l *line) tag() uint64  { return l.key >> 1 }
func (l *line) state() State { return State(l.meta & 3) }
func (l *line) lastUse() uint64 {
	return l.meta >> 2
}
func (l *line) setState(s State) { l.meta = l.meta&^3 | uint64(s) }

type mshr struct {
	block   uint64
	write   bool
	thread  int
	waiters []func(at sim.Time)
	// fillCb is this record's next-level completion callback, created
	// once when the record is first allocated; because records are
	// pooled, steady-state misses reuse it instead of closing over the
	// record again.
	fillCb func(at sim.Time)
}

// Cache is one set-associative cache level. Construct with New.
type Cache struct {
	eng     *sim.Engine
	geom    config.CacheGeom
	latency sim.Time
	next    FillFunc
	wb      WritebackFunc

	sets      [][]line
	setShift  uint
	setMask   uint64
	lineShift uint

	// mshrs holds the busy miss registers (at most geom.MSHRs, so a
	// linear scan beats a map and allocates nothing); mshrFree pools
	// retired records for reuse.
	mshrs    []*mshr
	mshrFree []*mshr

	// OnEvict, when set, is called for every line leaving this cache
	// (capacity eviction or external invalidation) — used for inclusive
	// back-invalidation of upper levels.
	OnEvict func(blockAddr uint64)
	// OnMSHRFree, when set, is called whenever an MSHR retires so
	// stalled requesters can retry.
	OnMSHRFree func()

	useTick uint64
	stats   Stats
}

// New builds a cache level. clockPeriod converts the geometry's cycle
// latency to time; next supplies misses; wb absorbs dirty evictions.
func New(eng *sim.Engine, geom config.CacheGeom, clockPeriod sim.Time, next FillFunc, wb WritebackFunc) *Cache {
	nLines := geom.SizeBytes / geom.LineBytes
	nSets := nLines / geom.Assoc
	if nSets <= 0 || nSets&(nSets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a positive power of two", nSets))
	}
	c := &Cache{
		eng:       eng,
		geom:      geom,
		latency:   sim.Time(geom.LatencyCy) * clockPeriod,
		next:      next,
		wb:        wb,
		sets:      make([][]line, nSets),
		lineShift: uint(bits.TrailingZeros(uint(geom.LineBytes))),
		setMask:   uint64(nSets - 1),
		mshrs:     make([]*mshr, 0, geom.MSHRs),
	}
	c.setShift = c.lineShift
	// One flat backing array for every set: construction cost is two
	// allocations instead of nSets, and the sets are contiguous.
	lines := make([]line, nSets*geom.Assoc)
	for i := range c.sets {
		c.sets[i] = lines[i*geom.Assoc : (i+1)*geom.Assoc : (i+1)*geom.Assoc]
	}
	return c
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// callDone invokes a completion callback carried as a ScheduleArg
// payload. Func values convert to `any` without boxing, so completions
// scheduled through it allocate nothing.
var callDone = func(e *sim.Engine, arg any) { arg.(func(at sim.Time))(e.Now()) }

// findMSHR returns the busy register tracking block, or nil. The busy
// population is bounded by geom.MSHRs (typically ≤16), so a linear scan
// is cheaper than a map lookup and allocates nothing.
func (c *Cache) findMSHR(block uint64) *mshr {
	for _, m := range c.mshrs {
		if m.block == block {
			return m
		}
	}
	return nil
}

// allocMSHR returns a pooled or fresh record. A fresh record gets its
// fillCb wired once; pooled reuse keeps steady-state misses closure-free.
func (c *Cache) allocMSHR() *mshr {
	if n := len(c.mshrFree); n > 0 {
		m := c.mshrFree[n-1]
		c.mshrFree[n-1] = nil
		c.mshrFree = c.mshrFree[:n-1]
		return m
	}
	m := &mshr{}
	m.fillCb = func(at sim.Time) { c.fill(m, at) }
	return m
}

// Block returns addr truncated to its cache-line base.
func (c *Cache) Block(addr uint64) uint64 { return addr &^ (uint64(c.geom.LineBytes) - 1) }

func (c *Cache) index(block uint64) (set int, tag uint64) {
	idx := (block >> c.setShift) & c.setMask
	return int(idx), block >> c.setShift
}

func (c *Cache) lookup(block uint64) *line {
	set, tag := c.index(block)
	ways := c.sets[set]
	want := tag<<1 | 1
	for i := range ways {
		if ways[i].key == want {
			// Transpose one step toward the front. Position within a set
			// carries no semantics — replacement uses the unique LRU
			// ticks and any invalid slot is as good as another — so this
			// is free to migrate hot lines to the head of the scan.
			if i > 0 {
				ways[i], ways[i-1] = ways[i-1], ways[i]
				return &ways[i-1]
			}
			return &ways[0]
		}
	}
	return nil
}

// Probe reports the line's current state without touching LRU order.
func (c *Cache) Probe(addr uint64) State {
	if l := c.lookup(c.Block(addr)); l != nil {
		return l.state()
	}
	return Invalid
}

// Access attempts a load (write=false) or store (write=true). On a hit
// done is scheduled after the access latency; on a miss the line is
// fetched. It returns false — without consuming the request — when all
// MSHRs are busy; the caller must retry (OnMSHRFree signals when).
func (c *Cache) Access(addr uint64, write bool, thread int, done func(at sim.Time)) bool {
	block := c.Block(addr)
	now := c.eng.Now()
	if l := c.lookup(block); l != nil {
		c.stats.Accesses++
		c.stats.Hits++
		c.useTick++
		st := l.meta & 3
		if write {
			st = uint64(Modified)
		}
		l.meta = c.useTick<<2 | st
		if done != nil {
			c.eng.ScheduleArg(now+c.latency, callDone, done)
		}
		return true
	}
	// Miss: merge into an in-flight MSHR when possible.
	if m := c.findMSHR(block); m != nil {
		c.stats.Accesses++
		c.stats.Misses++
		c.stats.MergedMiss++
		m.write = m.write || write
		if done != nil {
			m.waiters = append(m.waiters, done)
		}
		return true
	}
	if len(c.mshrs) >= c.geom.MSHRs {
		c.stats.MSHRStall++
		return false
	}
	c.stats.Accesses++
	c.stats.Misses++
	m := c.allocMSHR()
	m.block, m.write, m.thread = block, write, thread
	if done != nil {
		m.waiters = append(m.waiters, done)
	}
	c.mshrs = append(c.mshrs, m)
	c.next(block, write, thread, m.fillCb)
	return true
}

// fill installs the fetched line, releases waiters, and retires the
// MSHR back to the pool.
func (c *Cache) fill(m *mshr, at sim.Time) {
	for i, b := range c.mshrs {
		if b == m {
			last := len(c.mshrs) - 1
			c.mshrs[i] = c.mshrs[last]
			c.mshrs[last] = nil
			c.mshrs = c.mshrs[:last]
			break
		}
	}
	c.install(m.block, m.write, m.thread)
	end := at + c.latency
	for i, w := range m.waiters {
		c.eng.ScheduleArg(end, callDone, w)
		m.waiters[i] = nil
	}
	m.waiters = m.waiters[:0]
	c.mshrFree = append(c.mshrFree, m)
	if c.OnMSHRFree != nil {
		c.OnMSHRFree()
	}
}

// install places the block, evicting the LRU victim if needed.
func (c *Cache) install(block uint64, write bool, thread int) {
	set, tag := c.index(block)
	victim := -1
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if !l.valid() {
			victim = i
			break
		}
		if victim < 0 || l.lastUse() < c.sets[set][victim].lastUse() {
			victim = i
		}
	}
	v := &c.sets[set][victim]
	if v.valid() {
		c.evictLine(set, v)
	}
	c.useTick++
	st := Exclusive
	if write {
		st = Modified
	}
	c.sets[set][victim] = line{key: tag<<1 | 1, meta: c.useTick<<2 | uint64(st)}
	_ = thread
}

func (c *Cache) evictLine(set int, v *line) {
	blockAddr := (v.tag() << c.setShift)
	c.stats.Evictions++
	if v.state() == Modified && c.wb != nil {
		c.stats.Writebacks++
		c.wb(blockAddr, 0)
	}
	if c.OnEvict != nil {
		c.OnEvict(blockAddr)
	}
	v.key = 0
	v.setState(Invalid)
}

// Invalidate removes the block if present (external coherence action),
// returning its previous state. Dirty data is written back.
func (c *Cache) Invalidate(addr uint64) State {
	block := c.Block(addr)
	set, _ := c.index(block)
	l := c.lookup(block)
	if l == nil {
		return Invalid
	}
	prev := l.state()
	c.evictLine(set, l)
	return prev
}

// Downgrade moves an M/E line to S (coherence read by another node),
// writing back dirty data. It returns the previous state.
func (c *Cache) Downgrade(addr uint64) State {
	l := c.lookup(c.Block(addr))
	if l == nil {
		return Invalid
	}
	prev := l.state()
	if prev == Modified && c.wb != nil {
		c.stats.Writebacks++
		c.wb(c.Block(addr), 0)
	}
	if prev == Modified || prev == Exclusive {
		l.setState(Shared)
	}
	return prev
}

// InflightMisses returns the number of busy MSHRs.
func (c *Cache) InflightMisses() int { return len(c.mshrs) }
