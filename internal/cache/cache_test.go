package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"microbank/internal/config"
	"microbank/internal/sim"
)

func geom() config.CacheGeom {
	return config.CacheGeom{SizeBytes: 4096, Assoc: 4, LineBytes: 64, LatencyCy: 2, MSHRs: 4, Banks: 1}
}

// memBackend is a fixed-latency next level recording traffic.
type memBackend struct {
	eng     *sim.Engine
	latency sim.Time
	fills   []uint64
	writes  []uint64
}

func (m *memBackend) fill(block uint64, write bool, thread int, done func(at sim.Time)) {
	m.fills = append(m.fills, block)
	at := m.eng.Now() + m.latency
	m.eng.Schedule(at, func(*sim.Engine) { done(at) })
}

func (m *memBackend) writeback(block uint64, thread int) {
	m.writes = append(m.writes, block)
}

func newTestCache(eng *sim.Engine) (*Cache, *memBackend) {
	b := &memBackend{eng: eng, latency: 100 * sim.Nanosecond}
	c := New(eng, geom(), 500, b.fill, b.writeback)
	return c, b
}

func TestMissThenHit(t *testing.T) {
	eng := sim.NewEngine()
	c, b := newTestCache(eng)
	var missAt, hitAt sim.Time
	eng.Schedule(0, func(*sim.Engine) {
		if !c.Access(0x1000, false, 0, func(at sim.Time) { missAt = at }) {
			t.Error("first access rejected")
		}
	})
	eng.Run()
	// Miss: 100ns fill + 2-cycle (1ns) latency.
	if missAt != 101*sim.Nanosecond {
		t.Fatalf("miss completed at %d", missAt)
	}
	eng.Schedule(eng.Now(), func(*sim.Engine) {
		c.Access(0x1000, false, 0, func(at sim.Time) { hitAt = at })
	})
	eng.Run()
	if hitAt != missAt+1*sim.Nanosecond {
		t.Fatalf("hit completed at %d, want %d", hitAt, missAt+1*sim.Nanosecond)
	}
	if len(b.fills) != 1 {
		t.Fatalf("fills = %d, want 1", len(b.fills))
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Accesses != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSameLineDifferentOffsetHits(t *testing.T) {
	eng := sim.NewEngine()
	c, _ := newTestCache(eng)
	eng.Schedule(0, func(*sim.Engine) { c.Access(0x1000, false, 0, nil) })
	eng.Run()
	hits := 0
	eng.Schedule(eng.Now(), func(*sim.Engine) {
		for off := uint64(0); off < 64; off += 8 {
			c.Access(0x1000+off, false, 0, func(sim.Time) { hits++ })
		}
	})
	eng.Run()
	if hits != 8 {
		t.Fatalf("hits = %d, want 8", hits)
	}
}

func TestMSHRMerging(t *testing.T) {
	eng := sim.NewEngine()
	c, b := newTestCache(eng)
	done := 0
	eng.Schedule(0, func(*sim.Engine) {
		for i := 0; i < 5; i++ {
			if !c.Access(0x2000, false, 0, func(sim.Time) { done++ }) {
				t.Error("merged access rejected")
			}
		}
	})
	eng.Run()
	if len(b.fills) != 1 {
		t.Fatalf("fills = %d, want 1 (merged)", len(b.fills))
	}
	if done != 5 {
		t.Fatalf("done = %d, want 5", done)
	}
	if st := c.Stats(); st.MergedMiss != 4 {
		t.Fatalf("MergedMiss = %d, want 4", st.MergedMiss)
	}
}

func TestMSHRLimitAndRetry(t *testing.T) {
	eng := sim.NewEngine()
	c, _ := newTestCache(eng)
	freed := 0
	c.OnMSHRFree = func() { freed++ }
	rejected := false
	eng.Schedule(0, func(*sim.Engine) {
		for i := 0; i < 4; i++ {
			c.Access(uint64(i)*0x10000, false, 0, nil)
		}
		if c.InflightMisses() != 4 {
			t.Errorf("inflight = %d", c.InflightMisses())
		}
		rejected = !c.Access(0x90000, false, 0, nil)
	})
	eng.Run()
	if !rejected {
		t.Fatal("5th concurrent miss accepted despite 4 MSHRs")
	}
	if freed != 4 {
		t.Fatalf("OnMSHRFree fired %d times, want 4", freed)
	}
	if c.Stats().MSHRStall != 1 {
		t.Fatalf("MSHRStall = %d", c.Stats().MSHRStall)
	}
}

func TestLRUEvictionAndWriteback(t *testing.T) {
	eng := sim.NewEngine()
	c, b := newTestCache(eng)
	// 4096/64/4 = 16 sets; same set every 16 lines (stride 1024).
	addrs := func(i int) uint64 { return uint64(i) * 1024 }
	eng.Schedule(0, func(*sim.Engine) {
		c.Access(addrs(0), true, 0, nil) // dirty
	})
	eng.Run()
	for i := 1; i <= 4; i++ { // fill remaining ways + one eviction
		i := i
		eng.Schedule(eng.Now(), func(*sim.Engine) { c.Access(addrs(i), false, 0, nil) })
		eng.Run()
	}
	if len(b.writes) != 1 || b.writes[0] != addrs(0) {
		t.Fatalf("writebacks = %v, want [0]", b.writes)
	}
	if c.Probe(addrs(0)) != Invalid {
		t.Fatal("victim still present")
	}
	if c.Probe(addrs(4)) == Invalid {
		t.Fatal("newest line missing")
	}
}

func TestLRUKeepsRecentlyUsed(t *testing.T) {
	eng := sim.NewEngine()
	c, _ := newTestCache(eng)
	addrs := func(i int) uint64 { return uint64(i) * 1024 }
	for i := 0; i < 4; i++ {
		i := i
		eng.Schedule(eng.Now(), func(*sim.Engine) { c.Access(addrs(i), false, 0, nil) })
		eng.Run()
	}
	// Touch line 0 so line 1 becomes LRU.
	eng.Schedule(eng.Now(), func(*sim.Engine) { c.Access(addrs(0), false, 0, nil) })
	eng.Run()
	eng.Schedule(eng.Now(), func(*sim.Engine) { c.Access(addrs(9), false, 0, nil) })
	eng.Run()
	if c.Probe(addrs(0)) == Invalid {
		t.Fatal("recently used line evicted")
	}
	if c.Probe(addrs(1)) != Invalid {
		t.Fatal("LRU line survived")
	}
}

func TestWriteSetsModified(t *testing.T) {
	eng := sim.NewEngine()
	c, _ := newTestCache(eng)
	eng.Schedule(0, func(*sim.Engine) { c.Access(0x40, false, 0, nil) })
	eng.Run()
	if c.Probe(0x40) != Exclusive {
		t.Fatalf("read fill state = %v, want E", c.Probe(0x40))
	}
	eng.Schedule(eng.Now(), func(*sim.Engine) { c.Access(0x40, true, 0, nil) })
	eng.Run()
	if c.Probe(0x40) != Modified {
		t.Fatalf("state after write = %v, want M", c.Probe(0x40))
	}
	// Write miss installs M directly.
	eng.Schedule(eng.Now(), func(*sim.Engine) { c.Access(0x8000, true, 0, nil) })
	eng.Run()
	if c.Probe(0x8000) != Modified {
		t.Fatal("write-miss fill not Modified")
	}
}

func TestInvalidateAndDowngrade(t *testing.T) {
	eng := sim.NewEngine()
	c, b := newTestCache(eng)
	eng.Schedule(0, func(*sim.Engine) { c.Access(0x40, true, 0, nil) })
	eng.Run()
	evicted := []uint64{}
	c.OnEvict = func(a uint64) { evicted = append(evicted, a) }
	if st := c.Downgrade(0x40); st != Modified {
		t.Fatalf("Downgrade returned %v", st)
	}
	if len(b.writes) != 1 {
		t.Fatal("downgrade of M did not write back")
	}
	if c.Probe(0x40) != Shared {
		t.Fatal("downgraded line not Shared")
	}
	if st := c.Invalidate(0x40); st != Shared {
		t.Fatalf("Invalidate returned %v", st)
	}
	if c.Probe(0x40) != Invalid {
		t.Fatal("line survived invalidation")
	}
	if len(evicted) != 1 {
		t.Fatal("OnEvict not fired for invalidation")
	}
	if c.Invalidate(0x9999000) != Invalid {
		t.Fatal("invalidating absent line should return Invalid")
	}
	if c.Downgrade(0x9999000) != Invalid {
		t.Fatal("downgrading absent line should return Invalid")
	}
}

// Property: after any random access sequence, the number of distinct
// resident lines never exceeds capacity, and every completion fires
// exactly once.
func TestCacheBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine()
		c, _ := newTestCache(eng)
		want, got := 0, 0
		for i := 0; i < 300; i++ {
			addr := uint64(rng.Intn(64)) * 64 * uint64(1+rng.Intn(32))
			wr := rng.Intn(3) == 0
			eng.Schedule(eng.Now(), func(*sim.Engine) {
				if c.Access(addr, wr, 0, func(sim.Time) { got++ }) {
					want++
				}
			})
			eng.Run()
		}
		resident := 0
		for s := 0; s < 16; s++ {
			for w := 0; w < 4; w++ {
				if c.sets[s][w].state() != Invalid {
					resident++
				}
			}
		}
		return got == want && resident <= 64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M", State(7): "State(7)"} {
		if s.String() != want {
			t.Errorf("%d = %q, want %q", s, s.String(), want)
		}
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	g := geom()
	g.SizeBytes = 4096 * 3 // 48 sets, not a power of two
	New(sim.NewEngine(), g, 500, nil, nil)
}

func TestHitRateStat(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Fatal("empty hit rate")
	}
	s.Accesses, s.Hits = 10, 9
	if s.HitRate() != 0.9 {
		t.Fatal("hit rate")
	}
}
