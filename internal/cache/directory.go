package cache

// Directory is the reverse directory associated with each memory
// controller (§VI-A): it tracks, per cache line, which cluster L2s hold
// the line and in what aggregate state, and computes the coherence
// actions an L2 miss triggers.
//
// It is a full-map directory over up to 64 nodes (the paper's 16
// clusters fit comfortably). The directory returns *what must happen*
// (memory fetch needed? how many extra coherence hops?); the system
// layer converts hops into NoC latency and performs the invalidations
// on the victim caches.

// DirStats counts directory activity.
type DirStats struct {
	Lookups       uint64
	Invalidations uint64 // sharer copies invalidated by writes
	Forwards      uint64 // dirty cache-to-cache transfers
	MemFetches    uint64
}

type dirEntry struct {
	sharers uint64 // bitmap of nodes with the line
	owner   int8   // node holding M/E, or -1
}

// Directory tracks L2-level sharers of memory lines.
type Directory struct {
	nodes   int
	entries map[uint64]dirEntry
	stats   DirStats
}

// NewDirectory creates a directory for n nodes (1..64).
func NewDirectory(n int) *Directory {
	if n <= 0 || n > 64 {
		panic("cache: directory supports 1..64 nodes")
	}
	return &Directory{nodes: n, entries: map[uint64]dirEntry{}}
}

// Stats returns a snapshot.
func (d *Directory) Stats() DirStats { return d.stats }

// Outcome describes the coherence work for one L2 fill.
type Outcome struct {
	// NeedMem is true when the line must be fetched from main memory
	// (no dirty owner forwards it).
	NeedMem bool
	// ExtraHops is the number of additional directory↔node message
	// legs beyond the basic request/response pair.
	ExtraHops int
	// Invalidate lists the nodes whose copies must be invalidated
	// (write requests) or downgraded (read requests finding an owner).
	Invalidate []int
	Downgrade  []int
}

// Fill records that node is fetching the line (write = store miss or
// upgrade) and returns the required coherence actions.
func (d *Directory) Fill(block uint64, node int, write bool) Outcome {
	d.checkNode(node)
	d.stats.Lookups++
	e, present := d.entries[block]
	var out Outcome
	bit := uint64(1) << uint(node)

	if !present || e.sharers == 0 {
		// Cold: grant E to the requester; fetch from memory.
		d.entries[block] = dirEntry{sharers: bit, owner: int8(node)}
		out.NeedMem = true
		d.stats.MemFetches++
		return out
	}

	if write {
		// Invalidate every other copy.
		for n := 0; n < d.nodes; n++ {
			if n == node {
				continue
			}
			if e.sharers&(1<<uint(n)) != 0 {
				out.Invalidate = append(out.Invalidate, n)
				d.stats.Invalidations++
			}
		}
		if e.owner >= 0 && int(e.owner) != node {
			// Dirty owner forwards the line instead of memory.
			out.NeedMem = false
			out.ExtraHops = 2
			d.stats.Forwards++
		} else {
			out.NeedMem = e.sharers&bit == 0 // upgrade of own copy needs no fetch
			if out.NeedMem {
				d.stats.MemFetches++
			}
			if len(out.Invalidate) > 0 {
				out.ExtraHops = 1
			}
		}
		d.entries[block] = dirEntry{sharers: bit, owner: int8(node)}
		return out
	}

	// Read miss.
	if e.owner >= 0 && int(e.owner) != node {
		// Owner may be dirty: downgrade and forward.
		out.Downgrade = append(out.Downgrade, int(e.owner))
		out.NeedMem = false
		out.ExtraHops = 2
		d.stats.Forwards++
		e.owner = -1
	} else {
		out.NeedMem = true
		d.stats.MemFetches++
	}
	e.sharers |= bit
	if e.sharers == bit {
		e.owner = int8(node)
	}
	d.entries[block] = e
	return out
}

// Evict records that node dropped its copy (L2 eviction).
func (d *Directory) Evict(block uint64, node int) {
	d.checkNode(node)
	e, ok := d.entries[block]
	if !ok {
		return
	}
	e.sharers &^= uint64(1) << uint(node)
	if int(e.owner) == node {
		e.owner = -1
	}
	if e.sharers == 0 {
		delete(d.entries, block)
		return
	}
	d.entries[block] = e
}

// Sharers returns the number of nodes currently holding the line.
func (d *Directory) Sharers(block uint64) int {
	e, ok := d.entries[block]
	if !ok {
		return 0
	}
	n := 0
	for s := e.sharers; s != 0; s &= s - 1 {
		n++
	}
	return n
}

func (d *Directory) checkNode(node int) {
	if node < 0 || node >= d.nodes {
		panic("cache: directory node out of range")
	}
}
