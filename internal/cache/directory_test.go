package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDirectoryColdFill(t *testing.T) {
	d := NewDirectory(16)
	out := d.Fill(0x1000, 3, false)
	if !out.NeedMem || out.ExtraHops != 0 || len(out.Invalidate) != 0 {
		t.Fatalf("cold fill outcome = %+v", out)
	}
	if d.Sharers(0x1000) != 1 {
		t.Fatalf("sharers = %d", d.Sharers(0x1000))
	}
}

func TestDirectoryReadSharing(t *testing.T) {
	d := NewDirectory(16)
	d.Fill(0x1000, 0, false)
	out := d.Fill(0x1000, 1, false)
	// Node 0 holds E: it must be downgraded and forwards the line.
	if out.NeedMem {
		t.Fatal("owner present; memory fetch should be avoided")
	}
	if len(out.Downgrade) != 1 || out.Downgrade[0] != 0 {
		t.Fatalf("downgrade = %v", out.Downgrade)
	}
	if out.ExtraHops != 2 {
		t.Fatalf("hops = %d", out.ExtraHops)
	}
	// Third reader: plain shared fetch from memory.
	out = d.Fill(0x1000, 2, false)
	if !out.NeedMem || len(out.Downgrade) != 0 {
		t.Fatalf("shared read outcome = %+v", out)
	}
	if d.Sharers(0x1000) != 3 {
		t.Fatalf("sharers = %d", d.Sharers(0x1000))
	}
}

func TestDirectoryWriteInvalidatesSharers(t *testing.T) {
	d := NewDirectory(16)
	d.Fill(0x40, 0, false)
	d.Fill(0x40, 1, false)
	d.Fill(0x40, 2, false)
	out := d.Fill(0x40, 3, true)
	if len(out.Invalidate) != 3 {
		t.Fatalf("invalidations = %v", out.Invalidate)
	}
	if d.Sharers(0x40) != 1 {
		t.Fatalf("sharers after write = %d", d.Sharers(0x40))
	}
	if out.ExtraHops == 0 {
		t.Fatal("invalidation should cost hops")
	}
	st := d.Stats()
	if st.Invalidations != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDirectoryWriteToOwnedLineForwards(t *testing.T) {
	d := NewDirectory(8)
	d.Fill(0x40, 0, true) // node 0 owns M
	out := d.Fill(0x40, 1, true)
	if out.NeedMem {
		t.Fatal("dirty owner should forward, not fetch memory")
	}
	if len(out.Invalidate) != 1 || out.Invalidate[0] != 0 {
		t.Fatalf("invalidate = %v", out.Invalidate)
	}
	if d.Stats().Forwards != 1 {
		t.Fatal("forward not counted")
	}
}

func TestDirectoryUpgradeOwnCopy(t *testing.T) {
	d := NewDirectory(8)
	d.Fill(0x40, 0, false)
	d.Fill(0x40, 1, false)
	// Node 0 upgrades its S copy: no memory fetch, one invalidation.
	out := d.Fill(0x40, 0, true)
	if out.NeedMem {
		t.Fatal("upgrade should not refetch")
	}
	if len(out.Invalidate) != 1 || out.Invalidate[0] != 1 {
		t.Fatalf("invalidate = %v", out.Invalidate)
	}
}

func TestDirectoryEvict(t *testing.T) {
	d := NewDirectory(8)
	d.Fill(0x40, 0, false)
	d.Fill(0x40, 1, false)
	d.Evict(0x40, 0)
	if d.Sharers(0x40) != 1 {
		t.Fatalf("sharers = %d", d.Sharers(0x40))
	}
	d.Evict(0x40, 1)
	if d.Sharers(0x40) != 0 {
		t.Fatal("entry not reclaimed")
	}
	d.Evict(0x40, 1) // absent: no-op
	// After full eviction a new fill is cold again.
	out := d.Fill(0x40, 2, false)
	if !out.NeedMem || out.ExtraHops != 0 {
		t.Fatalf("post-evict fill = %+v", out)
	}
}

func TestDirectoryBounds(t *testing.T) {
	for _, n := range []int{0, 65, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewDirectory(%d) did not panic", n)
				}
			}()
			NewDirectory(n)
		}()
	}
	d := NewDirectory(4)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range node did not panic")
		}
	}()
	d.Fill(0, 4, false)
}

// Property: the sharer count equals the number of distinct nodes that
// filled since the last write or full eviction, and a write always
// collapses it to one.
func TestDirectoryInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewDirectory(8)
		block := uint64(0x80)
		present := map[int]bool{}
		for i := 0; i < 200; i++ {
			node := rng.Intn(8)
			switch rng.Intn(3) {
			case 0: // read fill
				d.Fill(block, node, false)
				present[node] = true
			case 1: // write fill
				d.Fill(block, node, true)
				present = map[int]bool{node: true}
			default: // evict
				d.Evict(block, node)
				delete(present, node)
			}
			if d.Sharers(block) != len(present) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
