// Package check implements a runtime DRAM protocol sanitizer: a
// Checker attaches to the simulator's obs.Tracer seam and re-validates
// every issued command against the configured timing constraints,
// independently of the dram package's own bookkeeping. It is the
// correctness floor under the paper's results — the μbank energy and
// parallelism claims only hold if the command stream actually honors
// JEDEC-style timing, including the activation-window scaling that
// partitioned devices are entitled to.
//
// Checked constraint classes (per traced command, derived only from
// config.Mem and the stream of issue timestamps):
//
//   - tRCD:  ACT → RD/WR to the same bank
//   - tRAS:  ACT → PRE to the same bank (also enforced for the implicit
//     precharge-all of an all-bank refresh)
//   - tRP:   PRE → next ACT to the same bank
//   - tWR:   WR data end → PRE (write recovery)
//   - tRTP:  RD → PRE
//   - tRRD:  ACT → ACT on the same rank, using the effective tRRD
//     (μbank activation-size scaling with the 1 ns command-slot floor)
//   - tFAW:  at most 4×scale ACTs per rank per tFAW window
//   - tRFC:  no ACT to a bank inside a refresh blackout
//   - refresh cadence: a REF must not issue before its due time (the
//     model may postpone refreshes under load, so lateness is not
//     flagged; early refreshes would silently under-bill energy)
//   - state: no column command to a closed bank or to a row other than
//     the open one, no ACT to an open bank, no PRE to a closed bank
//   - subarray: with SALP enabled (Org.SubarraysPerBank > 1) the shadow
//     state expands to one slot per (bank, subarray) pseudo-bank, and an
//     ACT must address the pseudo-bank its row maps to (row%S)
//
// Bus-occupancy constraints (tCCD, tWTR, tRTRS, data-bus slots) are
// deliberately out of scope: they are not bank-state hazards and the
// trace does not carry data-bus reservations.
//
// The checker is strictly read-only with respect to the simulation; in
// ModeCollect it records violations (up to MaxViolations) for later
// inspection, in ModeFatal it panics on the first violation so fuzzers
// and CI stop at the exact offending command.
package check

import (
	"fmt"
	"strings"

	"microbank/internal/config"
	"microbank/internal/obs"
	"microbank/internal/sim"
)

// CheckMode selects how the Checker reacts to a violation.
type CheckMode int

const (
	// ModeCollect records violations for inspection via Violations/Err.
	ModeCollect CheckMode = iota
	// ModeFatal panics on the first violation, stopping the simulation
	// at the offending command.
	ModeFatal
)

// String names the mode as accepted by the CLI -check flag.
func (m CheckMode) String() string {
	switch m {
	case ModeCollect:
		return "collect"
	case ModeFatal:
		return "fatal"
	default:
		return fmt.Sprintf("CheckMode(%d)", int(m))
	}
}

// Rule identifies one checked constraint class.
type Rule int

// Checked constraint classes.
const (
	RuleTRCD Rule = iota
	RuleTRAS
	RuleTRP
	RuleTWR
	RuleTRTP
	RuleTRRD
	RuleTFAW
	RuleTRFC
	RuleRefEarly
	RuleClosedRow
	RuleOpenACT
	RuleClosedPRE
	RuleBadBank
	RuleSubarray
)

// String returns the rule's short name.
func (r Rule) String() string {
	switch r {
	case RuleTRCD:
		return "tRCD"
	case RuleTRAS:
		return "tRAS"
	case RuleTRP:
		return "tRP"
	case RuleTWR:
		return "tWR"
	case RuleTRTP:
		return "tRTP"
	case RuleTRRD:
		return "tRRD-eff"
	case RuleTFAW:
		return "tFAW"
	case RuleTRFC:
		return "tRFC"
	case RuleRefEarly:
		return "refresh-early"
	case RuleClosedRow:
		return "closed-row-column"
	case RuleOpenACT:
		return "act-to-open-bank"
	case RuleClosedPRE:
		return "pre-to-closed-bank"
	case RuleBadBank:
		return "bad-bank-index"
	case RuleSubarray:
		return "row-subarray-mismatch"
	default:
		return fmt.Sprintf("Rule(%d)", int(r))
	}
}

// Violation describes one protocol breach: the offending command, when
// it issued, and the earliest instant the violated constraint would
// have allowed it (with the anchoring prior-command time in Ref).
type Violation struct {
	Rule     Rule
	Channel  int
	Bank     int
	Cmd      obs.CmdKind
	Row      uint32
	At       sim.Time // offending command's issue time
	Earliest sim.Time // earliest legal issue under the violated rule
	Ref      sim.Time // prior command the constraint is anchored to
}

// String renders the violation for logs and panics.
func (v Violation) String() string {
	return fmt.Sprintf("ch%d bank%d %s row %d at %dps violates %s: earliest legal %dps (anchor %dps, short by %dps)",
		v.Channel, v.Bank, v.Cmd, v.Row, uint64(v.At), v.Rule,
		uint64(v.Earliest), uint64(v.Ref), uint64(v.Earliest-v.At))
}

// FatalViolation is the typed value a ModeFatal checker panics with —
// an error, so a sweep supervisor that recovers worker panics can
// classify it (errors.As) and report the protocol violation as a
// structured cell failure instead of tearing down sibling cells; only
// the CLI's top level turns it into a process exit.
type FatalViolation struct {
	V Violation
}

// Error renders the violation.
func (e *FatalViolation) Error() string { return "check: " + e.V.String() }

// bankCk is the checker's shadow state for one (μ)bank.
type bankCk struct {
	open bool
	row  uint32

	colEarliest sim.Time // last ACT + tRCD
	preTRAS     sim.Time // last ACT + tRAS
	preTWR      sim.Time // last WR data end + tWR
	preTRTP     sim.Time // last RD + tRTP
	actTRP      sim.Time // last PRE + tRP
	actRef      sim.Time // refresh blackout end
	refAnchor   sim.Time // issue time of the blacking-out REF
	preAnchor   sim.Time // issue time of the last PRE
	actAnchor   sim.Time // issue time of the last ACT
	rdAnchor    sim.Time // issue time of the last RD
	wrAnchor    sim.Time // issue time of the last WR
}

// rankCk mirrors the rank-level activation window.
type rankCk struct {
	window  []sim.Time // ring of the last 4×scale ACT issue times
	head    int
	count   uint64
	lastAct sim.Time
	haveAct bool
}

// chanState is the shadow state for one channel.
type chanState struct {
	banks  []bankCk
	ranks  []rankCk
	refDue sim.Time // next refresh must not issue before this
}

// Checker validates a traced DRAM command stream against a memory
// configuration. It implements obs.Tracer; attach it with
// obs.Observer.AddTracer (alongside the Chrome tracer) or directly via
// memctrl's AddTracer. A Checker is not safe for concurrent use; give
// each simulation its own.
type Checker struct {
	// MaxViolations bounds the collected slice in ModeCollect; further
	// violations are still counted in Total. Zero means DefaultMaxViolations.
	MaxViolations int

	cfg     config.Mem
	mode    CheckMode
	scale   int
	trrdEff sim.Time
	subs    int // SALP subarrays per (μ)bank (1 = off)
	perBank int // pseudo-banks refreshed per per-bank REF (nW*nB*subs)
	rankDiv int // pseudo-banks per rank (BanksPerRank*nW*nB*subs)

	chans      map[int]*chanState
	violations []Violation
	total      uint64
	cmds       uint64
}

// DefaultMaxViolations bounds collected violations (~70 B each).
const DefaultMaxViolations = 4096

// New builds a checker for cfg. The configuration must validate; the
// checker derives the effective activation-window constraints (tRRD
// scaling, 4×scale tFAW window, per-bank refresh cadence) exactly as
// the device model does, from the shared config helpers.
func New(cfg config.Mem, mode CheckMode) *Checker {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("check: invalid config: %v", err))
	}
	subs := cfg.Org.Subarrays()
	return &Checker{
		cfg:     cfg,
		mode:    mode,
		scale:   cfg.ActWindowScale(),
		trrdEff: cfg.EffectiveTRRD(),
		subs:    subs,
		perBank: cfg.Org.NW * cfg.Org.NB * subs,
		rankDiv: cfg.Org.BanksPerRank * cfg.Org.NW * cfg.Org.NB * subs,
		chans:   make(map[int]*chanState),
	}
}

// Mode returns the checker's reaction mode.
func (c *Checker) Mode() CheckMode { return c.mode }

// Commands returns how many commands have been checked.
func (c *Checker) Commands() uint64 { return c.cmds }

// Total returns the number of violations seen, including any beyond
// the MaxViolations collection cap.
func (c *Checker) Total() uint64 { return c.total }

// Violations returns the collected violations (ModeCollect).
func (c *Checker) Violations() []Violation { return c.violations }

// Err returns nil when the stream was clean, or an error summarizing
// the violations (first few spelled out).
func (c *Checker) Err() error {
	if c.total == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "check: %d protocol violation(s) in %d commands", c.total, c.cmds)
	for i, v := range c.violations {
		if i == 5 {
			fmt.Fprintf(&b, "\n  ... and %d more", c.total-5)
			break
		}
		fmt.Fprintf(&b, "\n  %s", v)
	}
	return fmt.Errorf("%s", b.String())
}

func (c *Checker) channel(id int) *chanState {
	if cs, ok := c.chans[id]; ok {
		return cs
	}
	o := c.cfg.Org
	cs := &chanState{
		banks: make([]bankCk, o.RanksPerChan*o.BanksPerRank*o.NW*o.NB*c.subs),
		ranks: make([]rankCk, o.RanksPerChan),
	}
	for r := range cs.ranks {
		cs.ranks[r].window = make([]sim.Time, 4*c.scale)
	}
	if c.cfg.Timing.TREFI > 0 {
		cs.refDue = c.cfg.Timing.TREFI
	} else {
		cs.refDue = sim.Never
	}
	c.chans[id] = cs
	return cs
}

func (c *Checker) report(v Violation) {
	c.total++
	if c.mode == ModeFatal {
		panic(&FatalViolation{V: v})
	}
	max := c.MaxViolations
	if max == 0 {
		max = DefaultMaxViolations
	}
	if len(c.violations) < max {
		c.violations = append(c.violations, v)
	}
}

// violate builds and reports a violation.
func (c *Checker) violate(rule Rule, ch, bank int, cmd obs.CmdKind, row uint32, at, earliest, ref sim.Time) {
	c.report(Violation{Rule: rule, Channel: ch, Bank: bank, Cmd: cmd, Row: row,
		At: at, Earliest: earliest, Ref: ref})
}

// TraceCmd implements obs.Tracer. Only issue timestamps feed the
// shadow state — the complete timestamp is informational, so a buggy
// model cannot vouch for itself.
func (c *Checker) TraceCmd(channel, bank int, kind obs.CmdKind, row uint32, issue, complete sim.Time) {
	c.cmds++
	cs := c.channel(channel)
	if kind == obs.CmdREF {
		c.checkREF(cs, channel, bank, issue)
		return
	}
	if bank < 0 || bank >= len(cs.banks) {
		c.violate(RuleBadBank, channel, bank, kind, row, issue, issue, issue)
		return
	}
	b := &cs.banks[bank]
	switch kind {
	case obs.CmdACT:
		c.checkACT(cs, b, channel, bank, row, issue)
	case obs.CmdRD, obs.CmdWR:
		c.checkCol(b, channel, bank, kind, row, issue)
	case obs.CmdPRE:
		c.checkPRE(b, channel, bank, row, issue)
	}
}

func (c *Checker) checkACT(cs *chanState, b *bankCk, ch, bank int, row uint32, issue sim.Time) {
	tm := c.cfg.Timing
	if b.open {
		c.violate(RuleOpenACT, ch, bank, obs.CmdACT, row, issue, issue, b.actAnchor)
	}
	if c.subs > 1 && int(row)%c.subs != bank%c.subs {
		// SALP: a row must activate in the subarray slot it maps to.
		c.violate(RuleSubarray, ch, bank, obs.CmdACT, row, issue, issue, issue)
	}
	if issue < b.actTRP {
		c.violate(RuleTRP, ch, bank, obs.CmdACT, row, issue, b.actTRP, b.preAnchor)
	}
	if issue < b.actRef {
		c.violate(RuleTRFC, ch, bank, obs.CmdACT, row, issue, b.actRef, b.refAnchor)
	}
	r := &cs.ranks[bank/c.rankDiv]
	if r.haveAct && issue < r.lastAct+c.trrdEff {
		c.violate(RuleTRRD, ch, bank, obs.CmdACT, row, issue, r.lastAct+c.trrdEff, r.lastAct)
	}
	if r.count >= uint64(len(r.window)) {
		if oldest := r.window[r.head]; issue < oldest+tm.TFAW {
			c.violate(RuleTFAW, ch, bank, obs.CmdACT, row, issue, oldest+tm.TFAW, oldest)
		}
	}
	r.window[r.head] = issue
	r.head = (r.head + 1) % len(r.window)
	r.count++
	r.lastAct = issue
	r.haveAct = true

	b.open = true
	b.row = row
	b.actAnchor = issue
	b.colEarliest = issue + tm.TRCD
	b.preTRAS = issue + tm.TRAS
	b.preTWR = 0
	b.preTRTP = 0
}

func (c *Checker) checkCol(b *bankCk, ch, bank int, kind obs.CmdKind, row uint32, issue sim.Time) {
	tm := c.cfg.Timing
	if !b.open || b.row != row {
		c.violate(RuleClosedRow, ch, bank, kind, row, issue, issue, b.actAnchor)
		// Keep going with the traced row so follow-on constraints still
		// anchor somewhere sensible.
	}
	if issue < b.colEarliest {
		c.violate(RuleTRCD, ch, bank, kind, row, issue, b.colEarliest, b.actAnchor)
	}
	if kind == obs.CmdWR {
		b.wrAnchor = issue
		if end := issue + tm.TAA + tm.TBL + tm.TWR; end > b.preTWR {
			b.preTWR = end
		}
	} else {
		b.rdAnchor = issue
		if end := issue + tm.TRTP; end > b.preTRTP {
			b.preTRTP = end
		}
	}
}

func (c *Checker) checkPRE(b *bankCk, ch, bank int, row uint32, issue sim.Time) {
	if !b.open {
		c.violate(RuleClosedPRE, ch, bank, obs.CmdPRE, row, issue, issue, b.preAnchor)
	}
	c.checkPreTimings(b, ch, bank, obs.CmdPRE, issue)
	b.open = false
	b.preAnchor = issue
	b.actTRP = issue + c.cfg.Timing.TRP
}

// checkPreTimings validates the constraints that gate closing a row:
// tRAS since the ACT, write recovery, and read-to-precharge. They also
// apply to the implicit precharge-all of a refresh.
func (c *Checker) checkPreTimings(b *bankCk, ch, bank int, cmd obs.CmdKind, issue sim.Time) {
	if b.open && issue < b.preTRAS {
		c.violate(RuleTRAS, ch, bank, cmd, b.row, issue, b.preTRAS, b.actAnchor)
	}
	if issue < b.preTWR {
		c.violate(RuleTWR, ch, bank, cmd, b.row, issue, b.preTWR, b.wrAnchor)
	}
	if issue < b.preTRTP {
		c.violate(RuleTRTP, ch, bank, cmd, b.row, issue, b.preTRTP, b.rdAnchor)
	}
}

// checkREF validates a refresh. bank == -1 is an all-bank refresh;
// bank >= 0 labels the first μbank of the refreshed conventional-bank
// group (LPDDR-style REFpb).
func (c *Checker) checkREF(cs *chanState, ch, bank int, issue sim.Time) {
	tm := c.cfg.Timing
	if cs.refDue == sim.Never {
		// Refresh disabled but a REF appeared: treat as early.
		c.violate(RuleRefEarly, ch, bank, obs.CmdREF, 0, issue, sim.Never, issue)
		return
	}
	if issue < cs.refDue {
		c.violate(RuleRefEarly, ch, bank, obs.CmdREF, 0, issue, cs.refDue, cs.refDue-tm.TREFI)
	}
	nb := c.cfg.Org.BanksPerRank * c.cfg.Org.RanksPerChan
	if bank < 0 {
		// All-bank: implicit precharge of every open bank, then a tRFC
		// blackout across the channel.
		for i := range cs.banks {
			b := &cs.banks[i]
			c.checkPreTimings(b, ch, i, obs.CmdREF, issue)
			b.open = false
			b.refAnchor = issue
			b.actRef = issue + tm.TRFC
		}
		cs.refDue += tm.TREFI
		return
	}
	if bank >= len(cs.banks) || bank+c.perBank > len(cs.banks) {
		c.violate(RuleBadBank, ch, bank, obs.CmdREF, 0, issue, issue, issue)
		return
	}
	per := tm.TRFC / sim.Time(nb)
	if per < sim.Nanosecond {
		per = sim.Nanosecond
	}
	for i := bank; i < bank+c.perBank; i++ {
		b := &cs.banks[i]
		c.checkPreTimings(b, ch, i, obs.CmdREF, issue)
		b.open = false
		b.refAnchor = issue
		b.actRef = issue + per
	}
	// Per-bank refreshes run banks× as often to cover the device.
	cs.refDue += tm.TREFI / sim.Time(nb)
}
