package check_test

// Seeded-violation tests: each constraint class is exercised with a
// hand-crafted command stream that breaks exactly that constraint
// (plus a control stream one picosecond later that must pass), proving
// the sanitizer detects what it claims to. Integration tests then run
// the real simulator against a deliberately corrupted checker
// configuration to show detection works end-to-end through the
// obs.Tracer seam.

import (
	"strings"
	"testing"

	"microbank/internal/check"
	"microbank/internal/config"
	"microbank/internal/obs"
	"microbank/internal/sim"
	"microbank/internal/system"
	"microbank/internal/workload"
)

const ns = sim.Nanosecond

// cmd replays one command into the checker; complete timestamps are
// informational only, so tests pass issue for both.
func cmd(c *check.Checker, bank int, kind obs.CmdKind, row uint32, at sim.Time) {
	c.TraceCmd(0, bank, kind, row, at, at)
}

// rules returns the distinct violated rules in order of first report.
func rules(c *check.Checker) []check.Rule {
	var out []check.Rule
	seen := map[check.Rule]bool{}
	for _, v := range c.Violations() {
		if !seen[v.Rule] {
			seen[v.Rule] = true
			out = append(out, v.Rule)
		}
	}
	return out
}

func wantOnly(t *testing.T, c *check.Checker, want check.Rule) {
	t.Helper()
	got := rules(c)
	if len(got) != 1 || got[0] != want {
		t.Fatalf("violated rules = %v, want exactly [%v]\nviolations: %v", got, want, c.Violations())
	}
}

func wantClean(t *testing.T, c *check.Checker) {
	t.Helper()
	if err := c.Err(); err != nil {
		t.Fatalf("expected clean stream, got: %v", err)
	}
}

func pcbMem() config.Mem { return config.MemPreset(config.DDR3PCB, 1, 1) }

func TestCleanSequencePasses(t *testing.T) {
	m := pcbMem()
	tm := m.Timing
	c := check.New(m, check.ModeCollect)
	cmd(c, 0, obs.CmdACT, 7, 0)
	cmd(c, 0, obs.CmdRD, 7, tm.TRCD)
	cmd(c, 0, obs.CmdWR, 7, tm.TRCD+tm.TCCD)
	wrEnd := tm.TRCD + tm.TCCD + tm.TAA + tm.TBL + tm.TWR
	pre := maxTime(tm.TRAS, wrEnd)
	cmd(c, 0, obs.CmdPRE, 7, pre)
	cmd(c, 0, obs.CmdACT, 9, pre+tm.TRP)
	wantClean(t, c)
	if c.Commands() != 5 {
		t.Fatalf("Commands() = %d, want 5", c.Commands())
	}
}

// TestSeededSubarrayMismatch proves the SALP mapping rule fires: with
// S subarrays per bank, an ACT whose row does not belong to the
// pseudo-bank's subarray slot (row % S != bank % S) is flagged, and
// the correctly mapped row one slot over passes.
func TestSeededSubarrayMismatch(t *testing.T) {
	m := pcbMem()
	m.Org.SubarraysPerBank = 4
	c := check.New(m, check.ModeCollect)
	cmd(c, 1, obs.CmdACT, 4, 0) // row 4 belongs to subarray 0, not slot 1
	wantOnly(t, c, check.RuleSubarray)

	c = check.New(m, check.ModeCollect)
	cmd(c, 1, obs.CmdACT, 5, 0) // row 5 -> subarray 1 == slot 1
	wantClean(t, c)
}

func TestSeededTRCD(t *testing.T) {
	m := pcbMem()
	c := check.New(m, check.ModeCollect)
	cmd(c, 0, obs.CmdACT, 5, 0)
	cmd(c, 0, obs.CmdRD, 5, m.Timing.TRCD-1)
	wantOnly(t, c, check.RuleTRCD)

	c = check.New(m, check.ModeCollect)
	cmd(c, 0, obs.CmdACT, 5, 0)
	cmd(c, 0, obs.CmdRD, 5, m.Timing.TRCD)
	wantClean(t, c)
}

func TestSeededTRAS(t *testing.T) {
	m := pcbMem()
	c := check.New(m, check.ModeCollect)
	cmd(c, 0, obs.CmdACT, 5, 0)
	cmd(c, 0, obs.CmdPRE, 5, m.Timing.TRAS-1)
	wantOnly(t, c, check.RuleTRAS)
}

func TestSeededTRP(t *testing.T) {
	m := pcbMem()
	tm := m.Timing
	c := check.New(m, check.ModeCollect)
	cmd(c, 0, obs.CmdACT, 5, 0)
	cmd(c, 0, obs.CmdPRE, 5, tm.TRAS)
	cmd(c, 0, obs.CmdACT, 6, tm.TRAS+tm.TRP-1)
	wantOnly(t, c, check.RuleTRP)
}

func TestSeededTWR(t *testing.T) {
	m := pcbMem()
	tm := m.Timing
	c := check.New(m, check.ModeCollect)
	cmd(c, 0, obs.CmdACT, 5, 0)
	cmd(c, 0, obs.CmdWR, 5, tm.TRCD)
	// Write data lands at tRCD+tAA+tBL; recovery ends tWR later (47 ns,
	// past the 35 ns tRAS), so a 40 ns PRE breaks only write recovery.
	cmd(c, 0, obs.CmdPRE, 5, 40*ns)
	wantOnly(t, c, check.RuleTWR)
}

func TestSeededTRTP(t *testing.T) {
	m := pcbMem()
	c := check.New(m, check.ModeCollect)
	cmd(c, 0, obs.CmdACT, 5, 0)
	// A late read pushes read-to-precharge past tRAS, isolating tRTP.
	cmd(c, 0, obs.CmdRD, 5, 40*ns)
	cmd(c, 0, obs.CmdPRE, 5, 40*ns+m.Timing.TRTP-1)
	wantOnly(t, c, check.RuleTRTP)
}

func TestSeededTRRD(t *testing.T) {
	m := pcbMem() // nW=1: effective tRRD is the full 6 ns
	c := check.New(m, check.ModeCollect)
	cmd(c, 0, obs.CmdACT, 1, 0)
	cmd(c, 1, obs.CmdACT, 1, m.EffectiveTRRD()-1)
	wantOnly(t, c, check.RuleTRRD)

	c = check.New(m, check.ModeCollect)
	cmd(c, 0, obs.CmdACT, 1, 0)
	cmd(c, 1, obs.CmdACT, 1, m.EffectiveTRRD())
	wantClean(t, c)
}

func TestSeededTRRDMicrobankScaling(t *testing.T) {
	// nW=2 halves tRRD (4 ns → 2 ns on LPDDR-TSI).
	m := config.MemPreset(config.LPDDRTSI, 2, 1)
	if got := m.EffectiveTRRD(); got != 2*ns {
		t.Fatalf("EffectiveTRRD = %d, want %d", got, 2*ns)
	}
	c := check.New(m, check.ModeCollect)
	cmd(c, 0, obs.CmdACT, 1, 0)
	cmd(c, 1, obs.CmdACT, 1, 2*ns-1)
	wantOnly(t, c, check.RuleTRRD)

	c = check.New(m, check.ModeCollect)
	cmd(c, 0, obs.CmdACT, 1, 0)
	cmd(c, 1, obs.CmdACT, 1, 2*ns)
	wantClean(t, c)
}

func TestSeededTRRDFloor(t *testing.T) {
	// nW=16 would scale 4 ns tRRD to 250 ps; the 1 ns command-slot
	// floor must hold instead.
	m := config.MemPreset(config.LPDDRTSI, 16, 1)
	if got := m.EffectiveTRRD(); got != ns {
		t.Fatalf("EffectiveTRRD = %d, want %d (floored)", got, ns)
	}
	c := check.New(m, check.ModeCollect)
	cmd(c, 0, obs.CmdACT, 1, 0)
	cmd(c, 1, obs.CmdACT, 1, ns-1)
	wantOnly(t, c, check.RuleTRRD)

	c = check.New(m, check.ModeCollect)
	cmd(c, 0, obs.CmdACT, 1, 0)
	cmd(c, 1, obs.CmdACT, 1, ns)
	wantClean(t, c)
}

func TestSeededTFAW(t *testing.T) {
	m := pcbMem() // window: 4 ACTs per 30 ns
	tm := m.Timing
	c := check.New(m, check.ModeCollect)
	for i := 0; i < 4; i++ {
		cmd(c, i, obs.CmdACT, 1, sim.Time(i)*tm.TRRD)
	}
	cmd(c, 4, obs.CmdACT, 1, tm.TFAW-1)
	wantOnly(t, c, check.RuleTFAW)

	c = check.New(m, check.ModeCollect)
	for i := 0; i < 4; i++ {
		cmd(c, i, obs.CmdACT, 1, sim.Time(i)*tm.TRRD)
	}
	cmd(c, 4, obs.CmdACT, 1, tm.TFAW)
	wantClean(t, c)
}

func TestSeededTFAWWindowScalesWithNW(t *testing.T) {
	// nW=2 widens the window to 8 ACTs per tFAW. Stretch tFAW so it can
	// bind despite the relaxed effective tRRD, then verify ACTs 5..8 are
	// legal (a conventional checker would flag the 5th) and the 9th
	// inside the window is what trips.
	m := config.MemPreset(config.LPDDRTSI, 2, 1)
	m.Timing.TFAW = 64 * ns
	c := check.New(m, check.ModeCollect)
	for i := 0; i < 8; i++ {
		cmd(c, i, obs.CmdACT, 1, sim.Time(i)*m.EffectiveTRRD())
	}
	wantClean(t, c)
	cmd(c, 8, obs.CmdACT, 1, 20*ns) // inside [0, 64 ns) window
	wantOnly(t, c, check.RuleTFAW)

	c = check.New(m, check.ModeCollect)
	for i := 0; i < 8; i++ {
		cmd(c, i, obs.CmdACT, 1, sim.Time(i)*m.EffectiveTRRD())
	}
	cmd(c, 8, obs.CmdACT, 1, 64*ns)
	wantClean(t, c)
}

func TestSeededTRFC(t *testing.T) {
	m := pcbMem()
	tm := m.Timing
	c := check.New(m, check.ModeCollect)
	cmd(c, -1, obs.CmdREF, 0, tm.TREFI)
	cmd(c, 0, obs.CmdACT, 1, tm.TREFI+tm.TRFC-1)
	wantOnly(t, c, check.RuleTRFC)

	c = check.New(m, check.ModeCollect)
	cmd(c, -1, obs.CmdREF, 0, tm.TREFI)
	cmd(c, 0, obs.CmdACT, 1, tm.TREFI+tm.TRFC)
	wantClean(t, c)
}

func TestSeededRefreshEarly(t *testing.T) {
	m := pcbMem()
	c := check.New(m, check.ModeCollect)
	cmd(c, -1, obs.CmdREF, 0, m.Timing.TREFI-1)
	wantOnly(t, c, check.RuleRefEarly)
}

func TestSeededPerBankRefresh(t *testing.T) {
	m := config.MemPreset(config.LPDDRTSI, 2, 2)
	m.Timing.PerBankRefresh = true
	tm := m.Timing
	nb := m.Org.BanksPerRank * m.Org.RanksPerChan
	per := tm.TRFC / sim.Time(nb)
	group := m.Org.NW * m.Org.NB

	// ACT inside the refreshed group's blackout trips tRFC ...
	c := check.New(m, check.ModeCollect)
	cmd(c, 0, obs.CmdREF, 0, tm.TREFI)
	cmd(c, 0, obs.CmdACT, 1, tm.TREFI+per-1)
	wantOnly(t, c, check.RuleTRFC)

	// ... while the next conventional bank's group is untouched and may
	// activate at the same instant.
	c = check.New(m, check.ModeCollect)
	cmd(c, 0, obs.CmdREF, 0, tm.TREFI)
	cmd(c, group, obs.CmdACT, 1, tm.TREFI+per-1)
	wantClean(t, c)

	// Per-bank refreshes come nb× as often: the next REF is due
	// tREFI/nb later, not tREFI later.
	c = check.New(m, check.ModeCollect)
	cmd(c, 0, obs.CmdREF, 0, tm.TREFI)
	cmd(c, group, obs.CmdREF, 0, tm.TREFI+tm.TREFI/sim.Time(nb))
	wantClean(t, c)
	c = check.New(m, check.ModeCollect)
	cmd(c, 0, obs.CmdREF, 0, tm.TREFI)
	cmd(c, group, obs.CmdREF, 0, tm.TREFI+tm.TREFI/sim.Time(nb)-1)
	wantOnly(t, c, check.RuleRefEarly)
}

func TestSeededClosedRowColumn(t *testing.T) {
	m := pcbMem()
	c := check.New(m, check.ModeCollect)
	cmd(c, 0, obs.CmdRD, 5, 20*ns) // no ACT ever issued
	wantOnly(t, c, check.RuleClosedRow)

	// Column to the wrong open row.
	c = check.New(m, check.ModeCollect)
	cmd(c, 0, obs.CmdACT, 5, 0)
	cmd(c, 0, obs.CmdRD, 6, m.Timing.TRCD)
	wantOnly(t, c, check.RuleClosedRow)

	// Column to a bank closed by refresh.
	c = check.New(m, check.ModeCollect)
	cmd(c, 0, obs.CmdACT, 5, 0)
	cmd(c, 0, obs.CmdRD, 5, m.Timing.TRCD)
	cmd(c, -1, obs.CmdREF, 0, m.Timing.TREFI)
	cmd(c, 0, obs.CmdRD, 5, m.Timing.TREFI+m.Timing.TRFC)
	wantOnly(t, c, check.RuleClosedRow)
}

func TestSeededStateRules(t *testing.T) {
	m := pcbMem()
	c := check.New(m, check.ModeCollect)
	cmd(c, 0, obs.CmdACT, 5, 0)
	cmd(c, 0, obs.CmdACT, 6, 40*ns)
	wantOnly(t, c, check.RuleOpenACT)

	c = check.New(m, check.ModeCollect)
	cmd(c, 0, obs.CmdPRE, 0, 10*ns)
	wantOnly(t, c, check.RuleClosedPRE)

	c = check.New(m, check.ModeCollect)
	cmd(c, 512, obs.CmdACT, 0, 0) // way past the 16 banks of a PCB channel
	wantOnly(t, c, check.RuleBadBank)
}

func TestFatalModePanics(t *testing.T) {
	m := pcbMem()
	c := check.New(m, check.ModeFatal)
	cmd(c, 0, obs.CmdACT, 5, 0)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic in ModeFatal")
		}
		// The panic value is a typed error so sweep supervisors can
		// classify recovered violations; see FatalViolation.
		fv, ok := r.(*check.FatalViolation)
		if !ok {
			t.Fatalf("panic = %v (%T), want *check.FatalViolation", r, r)
		}
		if fv.V.Rule != check.RuleTRCD || !strings.Contains(fv.Error(), "tRCD") {
			t.Fatalf("violation = %v, want one naming tRCD", fv)
		}
	}()
	cmd(c, 0, obs.CmdRD, 5, m.Timing.TRCD-1)
}

func TestViolationCapAndErr(t *testing.T) {
	m := pcbMem()
	c := check.New(m, check.ModeCollect)
	c.MaxViolations = 2
	for i := 0; i < 5; i++ {
		cmd(c, 0, obs.CmdRD, 5, sim.Time(i)*40*ns) // bank never opened
	}
	if got := len(c.Violations()); got != 2 {
		t.Fatalf("collected %d violations, want cap of 2", got)
	}
	if c.Total() != 5 {
		t.Fatalf("Total() = %d, want 5", c.Total())
	}
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "5 protocol violation(s)") {
		t.Fatalf("Err() = %v, want summary of 5 violations", err)
	}
}

// runWithChecker runs a short single-core simulation with ck attached
// through the observer seam. The device model uses mem; the checker
// may be configured with different (corrupted) constraints.
func runWithChecker(t *testing.T, mem config.Mem, ck *check.Checker) {
	t.Helper()
	sys := config.SingleCore(mem)
	// Close page maximizes ACT/PRE traffic so every activation-window
	// constraint gets exercised.
	sys.Ctrl.PagePolicy = config.ClosePage
	spec := system.UniformSpec(sys, workload.MustGet("429.mcf"), 24000, 42)
	spec.WarmupInstr = 12000
	o := obs.NewObserver()
	o.AddTracer(ck)
	spec.Obs = o
	if _, err := system.Run(spec); err != nil {
		t.Fatalf("run: %v", err)
	}
	if ck.Commands() == 0 {
		t.Fatalf("checker observed no commands; tracer not wired")
	}
}

// TestCorruptedTimingsDetected proves end-to-end detection: the device
// model runs with its real timings while the checker is configured
// with tightened constraints, so the legal stream must violate the
// checker's view of each corrupted parameter.
func TestCorruptedTimingsDetected(t *testing.T) {
	corruptions := []struct {
		name    string
		corrupt func(*config.Mem)
		want    check.Rule
	}{
		{"tRCD", func(m *config.Mem) { m.Timing.TRCD += ns }, check.RuleTRCD},
		{"tRAS", func(m *config.Mem) { m.Timing.TRAS += 2 * ns }, check.RuleTRAS},
		{"tRP", func(m *config.Mem) { m.Timing.TRP += 2 * ns }, check.RuleTRP},
		{"tRRD-eff", func(m *config.Mem) { m.Timing.TRRD += 8 * ns }, check.RuleTRRD},
		{"tFAW", func(m *config.Mem) { m.Timing.TFAW += 400 * ns }, check.RuleTFAW},
		{"tRFC", func(m *config.Mem) { m.Timing.TRFC += 100 * ns }, check.RuleTRFC},
		{"refresh-early", func(m *config.Mem) { m.Timing.TREFI += 400 * ns }, check.RuleRefEarly},
		// Disabling window scaling in the checker only: a (4,1) device
		// legally issues μbank ACTs faster than a conventional bank
		// may, which the unscaled checker must flag.
		{"act-window-scaling", func(m *config.Mem) { m.Timing.NoActWindowScaling = true }, check.RuleTRRD},
	}
	for _, tc := range corruptions {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			mem := config.MemPreset(config.LPDDRTSI, 4, 1)
			ckCfg := mem
			tc.corrupt(&ckCfg)
			ck := check.New(ckCfg, check.ModeCollect)
			ck.MaxViolations = 64
			runWithChecker(t, mem, ck)
			found := false
			for _, r := range rules(ck) {
				if r == tc.want {
					found = true
				}
			}
			if !found {
				t.Fatalf("corrupting %s produced rules %v, want %v present (total %d violations)",
					tc.name, rules(ck), tc.want, ck.Total())
			}
		})
	}
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}
