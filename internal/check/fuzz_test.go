package check_test

// FuzzTimingConfig drives randomized memory-system configurations
// (interface × nW×nB × page policy × scheduler × interleaving ×
// refresh mode) through short simulations with the sanitizer fatal, so
// the fuzzer halts at the exact first command that breaks a timing
// constraint. CI runs a short -fuzz smoke on top of the seed corpus;
// `go test` alone replays the seeds as regular regression cases.

import (
	"testing"

	"microbank/internal/check"
	"microbank/internal/config"
	"microbank/internal/obs"
	"microbank/internal/system"
	"microbank/internal/workload"
)

func FuzzTimingConfig(f *testing.F) {
	// Seed corpus: the shipped defaults plus the historically tricky
	// corners (per-bank refresh, perfect policy's retroactive PRE,
	// unscaled windows, extreme partitioning, line interleaving).
	f.Add(uint8(2), uint8(1), uint8(3), uint8(0), uint8(1), uint8(13), false, false, false, int64(42))
	f.Add(uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(6), false, false, false, int64(1))
	f.Add(uint8(2), uint8(4), uint8(0), uint8(6), uint8(2), uint8(10), true, true, false, int64(7))
	f.Add(uint8(1), uint8(2), uint8(2), uint8(2), uint8(0), uint8(11), false, false, true, int64(3))
	f.Add(uint8(2), uint8(3), uint8(1), uint8(1), uint8(1), uint8(8), true, false, false, int64(9))

	workloads := []string{"429.mcf", "470.lbm", "453.povray"}

	f.Fuzz(func(t *testing.T, ifaceB, nwExp, nbExp, polB, schB, ibB uint8,
		perBank, xor, noScale bool, seed int64) {
		iface := config.Interfaces()[int(ifaceB)%3]
		nW := 1 << (int(nwExp) % 5) // 1..16
		nB := 1 << (int(nbExp) % 5)
		pol := config.PagePolicy(int(polB) % 7)
		sch := config.Scheduler(int(schB) % 3)

		mem := config.MemPreset(iface, nW, nB)
		mem.Timing.PerBankRefresh = perBank
		mem.Timing.NoActWindowScaling = noScale
		if mem.Validate() != nil {
			t.Skip("invalid fuzzed organization")
		}
		sys := config.SingleCore(mem)
		sys.Ctrl.PagePolicy = pol
		sys.Ctrl.Scheduler = sch
		// Interleave bit in [6, 13]; memctrl clamps to the μbank row.
		sys.Ctrl.InterleaveBit = 6 + int(ibB)%8
		sys.Ctrl.XORBankHash = xor

		wl := workloads[uint64(seed)%uint64(len(workloads))]
		spec := system.UniformSpec(sys, workload.MustGet(wl), 6000, seed)
		spec.WarmupInstr = 3000

		// Fatal mode: any protocol violation panics at the offending
		// command, which the fuzzer reports with this input.
		ck := check.New(sys.Mem, check.ModeFatal)
		o := obs.NewObserver()
		o.AddTracer(ck)
		spec.Obs = o
		if _, err := system.Run(spec); err != nil {
			t.Fatalf("run failed: %v", err)
		}
		if ck.Commands() == 0 {
			t.Fatalf("checker observed no commands")
		}
	})
}
