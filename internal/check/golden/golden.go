// Package golden is a byte-exact fixture harness for the simulator's
// machine-readable run reports. Tests render a report to JSON and
// Check it against a committed file under testdata/; any drift —
// metric values, table formatting, schema — fails with a line diff.
// Because every simulation is deterministic (explicit seeds, ordered
// reductions at any parallelism, read-only observability), a golden
// mismatch means the change altered simulation results, not noise.
//
// Regenerate fixtures deliberately with UPDATE_GOLDEN=1 (see
// EXPERIMENTS.md); on mismatch the observed bytes are written next to
// the fixture as <name>.got.json so CI can upload them as artifacts.
package golden

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// UpdateEnv is the environment variable that switches Check from
// comparing fixtures to rewriting them.
const UpdateEnv = "UPDATE_GOLDEN"

// Update reports whether fixtures should be regenerated.
func Update() bool { return os.Getenv(UpdateEnv) == "1" }

// Check compares got against the fixture at path (relative to the
// test's working directory, conventionally "testdata/<name>.json").
// With UPDATE_GOLDEN=1 it (re)writes the fixture instead and logs the
// action. On mismatch it writes got to <path minus .json>.got.json and
// fails the test with a focused line diff.
func Check(t *testing.T, path string, got []byte) {
	t.Helper()
	if Update() {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("golden: %v", err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("golden: %v", err)
		}
		t.Logf("golden: wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden: missing fixture %s (regenerate with %s=1 go test ./...): %v",
			path, UpdateEnv, err)
	}
	if bytes.Equal(want, got) {
		return
	}
	gotPath := strings.TrimSuffix(path, ".json") + ".got.json"
	if werr := os.WriteFile(gotPath, got, 0o644); werr == nil {
		t.Logf("golden: observed output written to %s", gotPath)
	}
	t.Errorf("golden: %s drifted from fixture:\n%s\nIf the change is intended, regenerate with %s=1 go test ./...",
		path, Diff(want, got), UpdateEnv)
}

// Diff renders a compact line-oriented diff: the first differing line
// with up to three lines of shared context before it and up to four
// differing/following lines from each side, plus a summary of total
// line counts. It is meant for test logs, not patching.
func Diff(want, got []byte) string {
	wl := strings.Split(string(want), "\n")
	gl := strings.Split(string(got), "\n")
	i := 0
	for i < len(wl) && i < len(gl) && wl[i] == gl[i] {
		i++
	}
	if i == len(wl) && i == len(gl) {
		return "(contents equal)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "first difference at line %d (fixture %d lines, got %d lines)\n",
		i+1, len(wl), len(gl))
	for c := max(0, i-3); c < i; c++ {
		fmt.Fprintf(&b, "  %4d   %s\n", c+1, wl[c])
	}
	for c := i; c < min(len(wl), i+4); c++ {
		fmt.Fprintf(&b, "  %4d - %s\n", c+1, wl[c])
	}
	for c := i; c < min(len(gl), i+4); c++ {
		fmt.Fprintf(&b, "  %4d + %s\n", c+1, gl[c])
	}
	return strings.TrimRight(b.String(), "\n")
}
