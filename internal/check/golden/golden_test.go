package golden_test

// Golden regression fixtures over the machine-readable run reports:
// one fixture per shipped memory configuration, one for the headline
// experiment at quick fidelity, and one Fig. 10 representative
// configuration. Each fixture pins the exact report bytes — metrics at
// full float precision plus the rendered summary table — so any change
// to simulation results, energy accounting, or report formatting shows
// up as a reviewed diff instead of silent drift. Runs execute under
// the fatal protocol checker, so the fixtures double as a protocol
// gate; byte-stability across -j widths and observed/unobserved runs
// is asserted explicitly.

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"microbank/internal/check"
	"microbank/internal/check/golden"
	"microbank/internal/config"
	"microbank/internal/experiments"
	"microbank/internal/obs"
	"microbank/internal/stats"
	"microbank/internal/system"
	"microbank/internal/workload"
)

// goldenInstr is the fixture budget: small enough that the whole
// matrix runs in about a second, large enough to exercise refresh
// (the 30 k-instruction runs span several tREFI).
const goldenInstr = 30000

// runShipped simulates one shipped configuration and returns its
// result. With observed, the run additionally carries a fatal protocol
// checker, a Chrome tracer, and an epoch sampler — all read-only, so
// results must be bit-identical either way.
func runShipped(t *testing.T, sc experiments.ShippedConfig, observed bool) system.Result {
	t.Helper()
	sys := config.SingleCore(sc.Mem())
	spec := system.UniformSpec(sys, workload.MustGet("429.mcf"), goldenInstr, 42)
	spec.WarmupInstr = goldenInstr / 2
	if observed {
		o := obs.NewObserver()
		o.AddTracer(check.New(sys.Mem, check.ModeFatal))
		o.EnableChromeTrace()
		o.EnableSampling(sys.CoreClock().Period() * 2500)
		spec.Obs = o
	}
	res, err := system.Run(spec)
	if err != nil {
		t.Fatalf("%s: %v", sc.Name(), err)
	}
	return res
}

// reportBytes renders the canonical run report for one result: the
// same summary table and metric set `microbank -exp run -report` emits.
func reportBytes(t *testing.T, title string, res system.Result) []byte {
	t.Helper()
	r := experiments.NewReport("golden", experiments.Options{Quick: true, Seed: 42, Instr: goldenInstr})
	tb := stats.NewTable(title, "Metric", "Value")
	tb.AddRow("IPC", res.IPC)
	tb.AddRow("MAPKI", res.MAPKI)
	tb.AddRow("Row-buffer hit rate", res.RowHitRate)
	tb.AddRow("Avg read latency (ns)", res.AvgReadLatencyNS)
	tb.AddRow("EDP (J·s)", fmt.Sprintf("%.3e", res.Breakdown.EDPJs()))
	r.AddTable(tb)
	r.SetMetric("ipc", res.IPC)
	r.SetMetric("mapki", res.MAPKI)
	r.SetMetric("row_hit_rate", res.RowHitRate)
	r.SetMetric("avg_read_latency_ns", res.AvgReadLatencyNS)
	r.SetMetric("pred_hit_rate", res.PredHitRate)
	r.SetMetric("edp_js", res.Breakdown.EDPJs())
	b, err := r.JSON()
	if err != nil {
		t.Fatalf("report: %v", err)
	}
	return b
}

// TestGoldenShippedRunReports pins one run report per shipped
// configuration. The runs execute under the fatal checker, so a
// timing-protocol regression fails here even before the diff.
func TestGoldenShippedRunReports(t *testing.T) {
	for _, sc := range experiments.ShippedConfigs() {
		sc := sc
		t.Run(sc.Name(), func(t *testing.T) {
			t.Parallel()
			res := runShipped(t, sc, true)
			got := reportBytes(t, "golden run: "+sc.Name(), res)
			golden.Check(t, "testdata/run_"+sc.Name()+".json", got)
		})
	}
}

// TestGoldenObservedMatchesUnobserved asserts the observability layer
// (checker included) never perturbs results: the report bytes of an
// observed and an unobserved run are identical.
func TestGoldenObservedMatchesUnobserved(t *testing.T) {
	t.Parallel()
	sc := experiments.ShippedConfig{Interface: config.LPDDRTSI, NW: 2, NB: 8}
	plain := reportBytes(t, "golden run: "+sc.Name(), runShipped(t, sc, false))
	observed := reportBytes(t, "golden run: "+sc.Name(), runShipped(t, sc, true))
	if !bytes.Equal(plain, observed) {
		t.Fatalf("observed run drifted from unobserved run:\n%s", golden.Diff(plain, observed))
	}
}

// TestGoldenIntraParallelWidths asserts the windowed parallel engine
// reproduces every shipped configuration's committed fixture bytes at
// several intra-run widths — the bit-exactness acceptance gate. The
// runs are unobserved (a tracer forces the sequential fallback);
// TestGoldenObservedMatchesUnobserved legitimizes comparing them
// against the observed-run fixtures.
func TestGoldenIntraParallelWidths(t *testing.T) {
	widths := []int{1, 2, 4, runtime.NumCPU()}
	for _, sc := range experiments.ShippedConfigs() {
		sc := sc
		t.Run(sc.Name(), func(t *testing.T) {
			t.Parallel()
			for _, w := range widths {
				sys := config.SingleCore(sc.Mem())
				spec := system.UniformSpec(sys, workload.MustGet("429.mcf"), goldenInstr, 42)
				spec.WarmupInstr = goldenInstr / 2
				spec.IntraParallelism = w
				res, err := system.Run(spec)
				if err != nil {
					t.Fatalf("%s width %d: %v", sc.Name(), w, err)
				}
				got := reportBytes(t, "golden run: "+sc.Name(), res)
				golden.Check(t, "testdata/run_"+sc.Name()+".json", got)
			}
		})
	}
}

// TestGoldenBatchedWidths asserts the variant-batched engine
// reproduces every shipped configuration's committed fixture bytes at
// batch widths 4 and 8 — the batched bit-exactness acceptance gate.
// The shipped configurations all share one workload definition
// (429.mcf, seed 42, the golden budget), so they are exactly the kind
// of sweep cells -batch groups. Like the intra-parallel gate, the runs
// are unobserved and lean on TestGoldenObservedMatchesUnobserved to
// compare against the observed-run fixtures.
func TestGoldenBatchedWidths(t *testing.T) {
	t.Parallel()
	shipped := experiments.ShippedConfigs()
	for _, width := range []int{4, 8} {
		for lo := 0; lo < len(shipped); lo += width {
			hi := lo + width
			if hi > len(shipped) {
				hi = len(shipped)
			}
			specs := make([]system.Spec, 0, hi-lo)
			for _, sc := range shipped[lo:hi] {
				sys := config.SingleCore(sc.Mem())
				spec := system.UniformSpec(sys, workload.MustGet("429.mcf"), goldenInstr, 42)
				spec.WarmupInstr = goldenInstr / 2
				specs = append(specs, spec)
			}
			for m, br := range system.RunBatch(specs) {
				sc := shipped[lo+m]
				if br.Panic != nil {
					t.Fatalf("B=%d %s: batched run panicked: %v", width, sc.Name(), br.Panic)
				}
				if br.Err != nil {
					t.Fatalf("B=%d %s: %v", width, sc.Name(), br.Err)
				}
				got := reportBytes(t, "golden run: "+sc.Name(), br.Res)
				golden.Check(t, "testdata/run_"+sc.Name()+".json", got)
			}
		}
	}
}

// TestGoldenQoSPolicies pins run reports for the QoS scenario pack:
// SALP pseudo-banks, the bandwidth regulator, and their composition on
// a multiprogrammed 4-core mix, each under the fatal protocol checker
// (which shadows the row-to-subarray mapping). The reports carry the
// tail-latency and fairness metrics, so a change to the subarray
// model, the regulator's admission, or the histogram plumbing shows up
// here as a reviewed diff. The pre-existing fixtures must NOT move:
// these scenarios are additive and the S=1/budget=0 paths stay
// byte-identical.
func TestGoldenQoSPolicies(t *testing.T) {
	cases := []struct {
		name   string
		sched  config.Scheduler
		salp   int
		budget int
	}{
		{"frfcfs_salp4", config.SchedFRFCFS, 4, 0},
		{"parbs_reg", config.SchedPARBS, 0, 2},
		{"fcfs_salp4_reg", config.SchedFCFS, 4, 2},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			sys := config.DefaultSystem(config.MemPreset(config.LPDDRTSI, 2, 8))
			sys.Cores = 4
			sys.Mem.Org.SubarraysPerBank = tc.salp
			sys.Ctrl.Scheduler = tc.sched
			sys.Ctrl.BankBudget = tc.budget
			spec := system.MixSpec(sys, workload.MixHigh(), 8000, 42)
			spec.WarmupInstr = 4000
			obsv := obs.NewObserver()
			obsv.AddTracer(check.New(sys.Mem, check.ModeFatal))
			spec.Obs = obsv
			res, err := system.Run(spec)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			o := experiments.Options{Quick: true, Seed: 42, Instr: 8000}
			r := experiments.NewReport("qos", o)
			tb := stats.NewTable("golden QoS run: "+tc.name, "Metric", "Value")
			tb.AddRow("IPC", res.IPC)
			tb.AddRow("p50 latency (ns)", res.LatP50NS)
			tb.AddRow("p99 latency (ns)", res.LatP99NS)
			tb.AddRow("Max latency (ns)", res.LatMaxNS)
			tb.AddRow("Max slowdown", res.MaxSlowdown)
			tb.AddRow("Fairness index", res.FairnessIndex)
			r.AddTable(tb)
			r.SetMetric("ipc", res.IPC)
			r.SetMetric("lat_p50_ns", res.LatP50NS)
			r.SetMetric("lat_p99_ns", res.LatP99NS)
			r.SetMetric("lat_max_ns", res.LatMaxNS)
			r.SetMetric("max_slowdown", res.MaxSlowdown)
			r.SetMetric("fairness_index", res.FairnessIndex)
			b, err := r.JSON()
			if err != nil {
				t.Fatalf("report: %v", err)
			}
			golden.Check(t, "testdata/qos_"+tc.name+".json", b)
		})
	}
}

// headlineReport runs the headline experiment at the given parallelism
// and renders its report with the parallelism echo normalized, so the
// bytes are comparable across -j widths.
func headlineReport(t *testing.T, jobs int) []byte {
	t.Helper()
	o := experiments.Options{Quick: true, Seed: 42, Parallelism: jobs}
	h, err := experiments.Headline(o)
	if err != nil {
		t.Fatalf("headline: %v", err)
	}
	r := experiments.NewReport("headline", o)
	r.Parallelism = 0 // normalize the echo: results are -j-invariant
	r.AddTable(experiments.HeadlineTable(h))
	b, err := r.JSON()
	if err != nil {
		t.Fatalf("report: %v", err)
	}
	return b
}

// TestGoldenHeadlineQuick pins `-exp headline -quick` and proves the
// harness is byte-stable at any -j.
func TestGoldenHeadlineQuick(t *testing.T) {
	t.Parallel()
	serial := headlineReport(t, 1)
	wide := headlineReport(t, runtime.GOMAXPROCS(0))
	if !bytes.Equal(serial, wide) {
		t.Fatalf("headline report differs between -j1 and -j%d:\n%s",
			runtime.GOMAXPROCS(0), golden.Diff(serial, wide))
	}
	golden.Check(t, "testdata/headline_quick.json", serial)
}

// TestGoldenFig10Config pins one Fig. 10 representative configuration:
// 450.soplex on LPDDR-TSI (2,8) normalized to its own (1,1) baseline,
// the per-workload convention of the figure.
func TestGoldenFig10Config(t *testing.T) {
	t.Parallel()
	run := func(nW, nB int) system.Result {
		return runShipped(t, experiments.ShippedConfig{Interface: config.LPDDRTSI, NW: nW, NB: nB}, true)
	}
	o := experiments.Options{Quick: true, Seed: 42, Instr: goldenInstr}
	base, err := system.Run(fig10Spec(o, 1, 1))
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	ub, err := system.Run(fig10Spec(o, 2, 8))
	if err != nil {
		t.Fatalf("ubank: %v", err)
	}
	_ = run // runShipped covers the absolute fixtures; here we pin ratios
	r := experiments.NewReport("fig10", o)
	tb := stats.NewTable("golden Fig. 10 point: 450.soplex, LPDDR-TSI (2,8) vs (1,1)",
		"Metric", "Value")
	tb.AddRow("RelIPC", ub.IPC/base.IPC)
	tb.AddRow("Rel1/EDP", base.Breakdown.EDPJs()/ub.Breakdown.EDPJs())
	tb.AddRow("RowHit", ub.RowHitRate)
	tb.AddRow("ACT/PRE (W)", ub.Breakdown.ActPreW())
	r.AddTable(tb)
	r.SetMetric("rel_ipc", ub.IPC/base.IPC)
	r.SetMetric("rel_inv_edp", base.Breakdown.EDPJs()/ub.Breakdown.EDPJs())
	r.SetMetric("row_hit_rate", ub.RowHitRate)
	b, err := r.JSON()
	if err != nil {
		t.Fatalf("report: %v", err)
	}
	golden.Check(t, "testdata/fig10_lpddr-tsi_2x8_450.soplex.json", b)
}

// fig10Spec builds the Fig. 10 single-core spec for 450.soplex with a
// fatal checker attached.
func fig10Spec(o experiments.Options, nW, nB int) system.Spec {
	sys := config.SingleCore(config.MemPreset(config.LPDDRTSI, nW, nB))
	spec := system.UniformSpec(sys, workload.MustGet("450.soplex"), o.Instr, o.Seed)
	spec.WarmupInstr = o.Instr / 2
	obsv := obs.NewObserver()
	obsv.AddTracer(check.New(sys.Mem, check.ModeFatal))
	spec.Obs = obsv
	return spec
}
