package check_test

// The protocol gate behind `make check-protocol`: every shipped memory
// configuration (all three interfaces × representative μbank points ×
// both refresh modes), plus a page-policy/scheduler sweep and a
// multicore multi-channel run, executes under the sanitizer and must
// produce zero violations. On failure the violations are also written
// to protocol-violations.log so CI can upload them as an artifact.

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"microbank/internal/check"
	"microbank/internal/config"
	"microbank/internal/experiments"
	"microbank/internal/obs"
	"microbank/internal/system"
	"microbank/internal/workload"
)

// violationLog accumulates failures across parallel subtests for the
// CI artifact.
var violationLog struct {
	mu    sync.Mutex
	lines []string
}

func logViolations(name string, ck *check.Checker) {
	violationLog.mu.Lock()
	defer violationLog.mu.Unlock()
	violationLog.lines = append(violationLog.lines,
		fmt.Sprintf("== %s: %d violation(s) in %d commands", name, ck.Total(), ck.Commands()))
	for _, v := range ck.Violations() {
		violationLog.lines = append(violationLog.lines, "  "+v.String())
	}
}

func TestMain(m *testing.M) {
	code := m.Run()
	if len(violationLog.lines) > 0 {
		var b []byte
		for _, l := range violationLog.lines {
			b = append(b, l...)
			b = append(b, '\n')
		}
		os.WriteFile("protocol-violations.log", b, 0o644)
	} else {
		os.Remove("protocol-violations.log")
	}
	os.Exit(code)
}

// checkedRun simulates spec with a collect-mode checker attached and
// fails the test on any violation.
func checkedRun(t *testing.T, name string, sys config.System, spec system.Spec) {
	t.Helper()
	ck := check.New(sys.Mem, check.ModeCollect)
	o := obs.NewObserver()
	o.AddTracer(ck)
	spec.Obs = o
	if _, err := system.Run(spec); err != nil {
		t.Fatalf("run: %v", err)
	}
	if ck.Commands() == 0 {
		t.Fatalf("checker observed no commands; tracer not wired")
	}
	if err := ck.Err(); err != nil {
		logViolations(name, ck)
		t.Errorf("%v", err)
	}
}

// TestProtocolShippedConfigs is the matrix the Makefile's
// check-protocol target enforces.
func TestProtocolShippedConfigs(t *testing.T) {
	for _, sc := range experiments.ShippedConfigs() {
		sc := sc
		t.Run(sc.Name(), func(t *testing.T) {
			t.Parallel()
			sys := config.SingleCore(sc.Mem())
			spec := system.UniformSpec(sys, workload.MustGet("429.mcf"), 30000, 42)
			spec.WarmupInstr = 15000
			checkedRun(t, sc.Name(), sys, spec)
		})
	}
}

// TestProtocolPoliciesAndSchedulers sweeps every page policy (including
// the perfect oracle, whose retroactively stamped precharges are the
// trickiest trace ordering) and scheduler on one μbank configuration.
func TestProtocolPoliciesAndSchedulers(t *testing.T) {
	policies := []config.PagePolicy{
		config.OpenPage, config.ClosePage, config.MinimalistOpen,
		config.PredLocal, config.PredGlobal, config.PredTournament, config.PredPerfect,
	}
	scheds := []config.Scheduler{config.SchedFRFCFS, config.SchedPARBS, config.SchedFCFS}
	for _, pol := range policies {
		for _, sch := range scheds {
			pol, sch := pol, sch
			t.Run(fmt.Sprintf("%s_%s", pol, sch), func(t *testing.T) {
				t.Parallel()
				sys := config.SingleCore(config.MemPreset(config.LPDDRTSI, 2, 8))
				sys.Ctrl.PagePolicy = pol
				sys.Ctrl.Scheduler = sch
				spec := system.UniformSpec(sys, workload.MustGet("429.mcf"), 24000, 42)
				spec.WarmupInstr = 12000
				checkedRun(t, fmt.Sprintf("policy %s / %s", pol, sch), sys, spec)
			})
		}
	}
}

// TestProtocolInterleavings covers cache-line interleaving and the XOR
// bank hash, which reshape the bank access pattern the windows see.
func TestProtocolInterleavings(t *testing.T) {
	for _, tc := range []struct {
		name string
		ib   int
		xor  bool
	}{{"line_ib6", 6, false}, {"row_ib13_xor", 13, true}} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			sys := config.SingleCore(config.MemPreset(config.DDR3PCB, 4, 4))
			sys.Ctrl.InterleaveBit = tc.ib
			sys.Ctrl.XORBankHash = tc.xor
			spec := system.UniformSpec(sys, workload.MustGet("470.lbm"), 24000, 42)
			spec.WarmupInstr = 12000
			checkedRun(t, tc.name, sys, spec)
		})
	}
}

// TestPolicyMatrix is the QoS gate behind `make check-policies`: every
// scheduler × {SALP on/off} × {bandwidth regulator on/off} runs a
// multiprogrammed mix under the sanitizer, whose shadow state includes
// the row-to-subarray mapping rule. By default one shipped
// configuration per interface (plus a REFpb variant) keeps the matrix
// proportionate to the other protocol gates; QOS_MATRIX_FULL=1 — set
// by CI's qos-matrix job — widens it to every shipped configuration.
func TestPolicyMatrix(t *testing.T) {
	cfgs := experiments.ShippedConfigs()
	if os.Getenv("QOS_MATRIX_FULL") == "" {
		var kept []experiments.ShippedConfig
		for _, sc := range cfgs {
			if sc.NW == 2 && sc.NB == 8 {
				kept = append(kept, sc)
			}
		}
		cfgs = kept
	}
	scheds := []config.Scheduler{config.SchedFRFCFS, config.SchedPARBS, config.SchedFCFS}
	variants := []struct {
		name   string
		salp   int
		budget int
	}{
		{"base", 0, 0},
		{"salp4", 4, 0},
		{"reg", 0, 2},
		{"salp4-reg", 4, 2},
	}
	if testing.Short() {
		scheds = scheds[:2]
		variants = variants[2:]
	}
	for _, sc := range cfgs {
		for _, sch := range scheds {
			for _, va := range variants {
				sc, sch, va := sc, sch, va
				name := fmt.Sprintf("%s/%s_%s", sc.Name(), sch, va.name)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					sys := config.DefaultSystem(sc.Mem())
					sys.Cores = 4
					sys.Mem.Org.SubarraysPerBank = va.salp
					sys.Ctrl.Scheduler = sch
					sys.Ctrl.BankBudget = va.budget
					spec := system.MixSpec(sys, workload.MixHigh(), 6000, 42)
					spec.WarmupInstr = 3000
					checkedRun(t, "policy-matrix "+name, sys, spec)
				})
			}
		}
	}
}

// TestProtocolMulticore drives every channel of the full 16-channel
// machine through one checker, exercising the per-channel shadow
// state and multi-rank DDR3-PCB.
func TestProtocolMulticore(t *testing.T) {
	t.Parallel()
	for _, iface := range []config.Interface{config.DDR3PCB, config.LPDDRTSI} {
		iface := iface
		t.Run(iface.String(), func(t *testing.T) {
			t.Parallel()
			sys := config.DefaultSystem(config.MemPreset(iface, 2, 8))
			sys.Cores = 16
			spec := system.MixSpec(sys, workload.MixHigh(), 8000, 42)
			spec.WarmupInstr = 4000
			checkedRun(t, "multicore "+iface.String(), sys, spec)
		})
	}
}
