// Package config defines every tunable parameter of the microbank
// simulator: DRAM device organization (including μbank partitioning),
// timing, energy (Table I of the paper), processor-memory interface
// presets (DDR3-PCB, DDR3-TSI, LPDDR-TSI), and whole-system shape
// (cores, caches, NoC, memory controllers).
//
// All durations are sim.Time picoseconds. All energies are picojoules
// unless a field name says otherwise.
package config

import (
	"fmt"

	"microbank/internal/sim"
)

// Interface identifies a processor-memory interface technology.
type Interface int

const (
	// DDR3PCB is the baseline: DDR3 modules on a printed circuit board.
	DDR3PCB Interface = iota
	// DDR3TSI stacks DDR3-type dies on a silicon interposer without
	// changing the physical layer (ODT/DLL still present).
	DDR3TSI
	// LPDDRTSI stacks LPDDR-type dies on a silicon interposer; the short
	// in-package channel removes ODT/DLL and cuts I/O energy to 4 pJ/b.
	LPDDRTSI
	// HMCSerial models a Hybrid-Memory-Cube-style stack reached over
	// high-speed serial links (§VII related work): SerDes adds latency
	// and the always-on clock-data-recovery circuitry adds static
	// power, so for single-socket systems it is less energy-efficient
	// than TSI — the comparison the paper leaves as future work.
	HMCSerial
)

// String returns the paper's name for the interface.
func (i Interface) String() string {
	switch i {
	case DDR3PCB:
		return "DDR3-PCB"
	case DDR3TSI:
		return "DDR3-TSI"
	case LPDDRTSI:
		return "LPDDR-TSI"
	case HMCSerial:
		return "HMC-serial"
	default:
		return fmt.Sprintf("Interface(%d)", int(i))
	}
}

// Interfaces lists all modeled processor-memory interfaces in paper order.
func Interfaces() []Interface { return []Interface{DDR3PCB, DDR3TSI, LPDDRTSI} }

// Timing holds DRAM timing constraints (Table I plus the standard
// secondary constraints the paper inherits from DDR3/LPDDR datasheets).
type Timing struct {
	TRCD  sim.Time // activate to read/write delay
	TAA   sim.Time // read command to first data
	TRAS  sim.Time // activate to precharge (row restore)
	TRP   sim.Time // precharge command period
	TBL   sim.Time // data burst occupancy of the channel per cache line
	TCCD  sim.Time // column command to column command, same channel
	TRRD  sim.Time // activate to activate, different banks
	TFAW  sim.Time // four-activate window (full-row activations)
	TRTRS sim.Time // rank-to-rank data-bus switch penalty
	TWR   sim.Time // write recovery before precharge
	TWTR  sim.Time // write-to-read turnaround
	TRTP  sim.Time // read-to-precharge
	TREFI sim.Time // refresh interval (0 disables refresh)
	TRFC  sim.Time // refresh cycle time
	// NoActWindowScaling disables the model's default behaviour of
	// widening tRRD/tFAW with nW (activation current ∝ activated bits).
	// Used by the act-window ablation to quantify that design choice.
	NoActWindowScaling bool
	// PerBankRefresh selects LPDDR-style REFpb: each refresh blocks one
	// bank for TRFC/BanksPerRank instead of stalling the whole rank,
	// trading refresh-command rate for availability.
	PerBankRefresh bool
}

// TRC returns the bank cycle time tRAS+tRP.
func (t Timing) TRC() sim.Time { return t.TRAS + t.TRP }

// Validate checks internal consistency of the timing set.
func (t Timing) Validate() error {
	if t.TRCD == 0 || t.TRAS == 0 || t.TRP == 0 || t.TAA == 0 {
		return fmt.Errorf("config: core timing parameter is zero: %+v", t)
	}
	if t.TBL == 0 || t.TCCD == 0 {
		return fmt.Errorf("config: column timing parameter is zero: %+v", t)
	}
	if t.TRAS < t.TRCD {
		return fmt.Errorf("config: tRAS (%d) < tRCD (%d)", t.TRAS, t.TRCD)
	}
	if t.TREFI != 0 && t.TRFC == 0 {
		return fmt.Errorf("config: refresh enabled but tRFC is zero")
	}
	return nil
}

// Energy holds DRAM access energy parameters (Table I).
type Energy struct {
	IOPJPerBit   float64 // inter-die I/O energy, pJ/b
	RDWRPJPerBit float64 // array-to-transceiver datapath energy, pJ/b
	ActPre8KBPJ  float64 // ACT+PRE energy for a full 8 KB row, pJ
	// StaticMWPerRank is background power (DLL, charge pumps,
	// peripheral leakage) per rank in milliwatts.
	StaticMWPerRank float64
	// LatchPJ is the energy to update one μbank row-address latch set.
	// It is negligible next to the array energy (paper §IV-B) but
	// modeled so the overhead is visible in sweeps.
	LatchPJ float64
}

// Org describes the DRAM device organization including μbank
// partitioning.
type Org struct {
	Channels       int // memory channels (one controller each)
	RanksPerChan   int // dies per channel (LPDDR-TSI: one die per rank)
	BanksPerRank   int // conventional banks per rank
	NW             int // μbank partitions in the wordline direction
	NB             int // μbank partitions in the bitline direction
	RowBytes       int // DRAM row (page) size per rank, full-bank, bytes
	CacheLineBytes int // unit of data transfer
	// ChannelGBs is the per-channel data bandwidth in GB/s (excluding
	// ECC); 16 GB/s moves one 64 B line every 4 ns.
	ChannelGBs float64
	// CapacityGB is total main-memory capacity (used for address-space
	// sizing and refresh accounting).
	CapacityGB int
	// SubarraysPerBank enables a SALP-style subarray model (Kim et al.,
	// ISCA'12, MASA-lite): each (μ)bank exposes this many independently
	// schedulable subarrays, each with its own open row, sharing the
	// bank's I/O. A row maps to subarray row%S. Unlike μbank
	// partitioning (nW), subarrays keep full-row activation energy and
	// unscaled tRRD/tFAW — parallelism without the activation-size
	// savings. 0 or 1 disables the model (byte-identical to no knob).
	SubarraysPerBank int
}

// MicrobanksPerBank returns nW*nB.
func (o Org) MicrobanksPerBank() int { return o.NW * o.NB }

// TotalRowBuffers returns the number of independently open rows the
// whole memory system can hold.
func (o Org) TotalRowBuffers() int {
	return o.Channels * o.RanksPerChan * o.BanksPerRank * o.NW * o.NB
}

// Subarrays returns the effective subarrays per (μ)bank: at least 1.
// It multiplies the number of schedulable row buffers but not the
// address-visible bank count (subarray selection is row-derived), so
// the address mapper is unaffected.
func (o Org) Subarrays() int {
	if o.SubarraysPerBank < 1 {
		return 1
	}
	return o.SubarraysPerBank
}

// MicroRowBytes returns the row-buffer size of one μbank: partitioning
// in the wordline direction shrinks the activated row to RowBytes/nW.
func (o Org) MicroRowBytes() int { return o.RowBytes / o.NW }

// LinesPerRow returns cache lines per μbank row.
func (o Org) LinesPerRow() int { return o.MicroRowBytes() / o.CacheLineBytes }

// Validate checks that the organization is well-formed.
func (o Org) Validate() error {
	if o.Channels <= 0 || o.RanksPerChan <= 0 || o.BanksPerRank <= 0 {
		return fmt.Errorf("config: non-positive channel/rank/bank count: %+v", o)
	}
	if !isPow2(o.NW) || !isPow2(o.NB) {
		return fmt.Errorf("config: nW=%d nB=%d must be powers of two", o.NW, o.NB)
	}
	if !isPow2(o.BanksPerRank) || !isPow2(o.Channels) || !isPow2(o.RanksPerChan) {
		return fmt.Errorf("config: channels/ranks/banks must be powers of two: %+v", o)
	}
	if o.RowBytes <= 0 || o.CacheLineBytes <= 0 || !isPow2(o.RowBytes) || !isPow2(o.CacheLineBytes) {
		return fmt.Errorf("config: row/line sizes must be positive powers of two: %+v", o)
	}
	if o.MicroRowBytes() < o.CacheLineBytes {
		return fmt.Errorf("config: μbank row (%d B) smaller than a cache line (%d B); nW too large",
			o.MicroRowBytes(), o.CacheLineBytes)
	}
	if o.ChannelGBs <= 0 {
		return fmt.Errorf("config: non-positive channel bandwidth")
	}
	if o.SubarraysPerBank != 0 && (!isPow2(o.SubarraysPerBank) || o.SubarraysPerBank > 128) {
		return fmt.Errorf("config: subarrays per bank %d must be a power of two <= 128", o.SubarraysPerBank)
	}
	return nil
}

func isPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

// Mem bundles everything describing one main-memory configuration.
type Mem struct {
	Interface Interface
	Org       Org
	Timing    Timing
	Energy    Energy
}

// Validate checks the whole memory configuration.
func (m Mem) Validate() error {
	if err := m.Org.Validate(); err != nil {
		return err
	}
	return m.Timing.Validate()
}

// ActWindowScale returns the activation-window widening factor: μbank
// activations open 1/nW of a full row, so power-delivery windows admit
// nW× as many of them (unless the ablation flag disables scaling).
// Both the device model (dram) and the protocol sanitizer (check)
// derive their tRRD/tFAW handling from this single definition.
func (m Mem) ActWindowScale() int {
	if m.Timing.NoActWindowScaling {
		return 1
	}
	return m.Org.NW
}

// EffectiveTRRD returns the same-rank ACT→ACT spacing the model
// enforces: tRRD scaled down by the activation size, floored at a 1 ns
// command slot.
func (m Mem) EffectiveTRRD() sim.Time {
	t := m.Timing.TRRD / sim.Time(m.ActWindowScale())
	if t < sim.Nanosecond {
		t = sim.Nanosecond
	}
	return t
}

// LineTransferTime returns how long one cache line occupies the channel
// data bus.
func (m Mem) LineTransferTime() sim.Time {
	bytesPerPS := m.Org.ChannelGBs / 1000.0 // GB/s == bytes/ns == 1e-3 bytes/ps
	return sim.Time(float64(m.Org.CacheLineBytes)/bytesPerPS + 0.5)
}

// Table I anchor values.
const (
	ioPJDDR3PCB   = 20.0
	ioPJLPDDRTSI  = 4.0
	rdwrPJDDR3    = 13.0
	rdwrPJLPDDR   = 4.0
	actPre8KBnJ   = 30.0 // nJ for a full 8 KB row
	rowBytes8KB   = 8 * 1024
	cacheLine     = 64
	defaultChanGB = 16.0
)

// baseTiming returns the Table I timing set; tAA differs per interface.
// TSI stacks power one die per rank through TSVs, which supports a
// higher sustained activation rate than a PCB DIMM: tRRD/tFAW relax to
// the column-command cadence (they stop being the binding constraint),
// while DDR3-PCB keeps the classic 6 ns / 30 ns limits.
func baseTiming(tsi bool) Timing {
	ns := sim.Nanosecond
	tAA := 14 * ns
	tRRD := 6 * ns
	tFAW := 30 * ns
	if tsi {
		tAA = 12 * ns
		tRRD = 4 * ns
		tFAW = 16 * ns
	}
	return Timing{
		TRCD:  14 * ns,
		TAA:   tAA,
		TRAS:  35 * ns,
		TRP:   14 * ns,
		TBL:   4 * ns, // 64 B at 16 GB/s
		TCCD:  4 * ns,
		TRTRS: 2 * ns,
		TRRD:  tRRD,
		TFAW:  tFAW,
		TWR:   15 * ns,
		TWTR:  8 * ns,
		TRTP:  8 * ns,
		TREFI: 7800 * ns,
		TRFC:  260 * ns,
	}
}

// MemPreset returns the paper's memory configuration for the given
// interface with the given μbank partitioning. DDR3-PCB keeps eight
// controllers (pin-limited, §VI-D); the TSI variants use sixteen.
func MemPreset(iface Interface, nW, nB int) Mem {
	org := Org{
		Channels:       16,
		RanksPerChan:   1,
		BanksPerRank:   8, // 8 banks per channel (§IV-B: 16 banks, 2 channels per die)
		NW:             nW,
		NB:             nB,
		RowBytes:       rowBytes8KB,
		CacheLineBytes: cacheLine,
		ChannelGBs:     defaultChanGB,
		CapacityGB:     64,
	}
	var tm Timing
	var en Energy
	switch iface {
	case DDR3PCB:
		org.Channels = 8
		org.RanksPerChan = 2
		tm = baseTiming(false)
		en = Energy{
			IOPJPerBit:      ioPJDDR3PCB,
			RDWRPJPerBit:    rdwrPJDDR3,
			ActPre8KBPJ:     actPre8KBnJ * 1000,
			StaticMWPerRank: 150, // ODT + DLL + peripheral
			LatchPJ:         0.2,
		}
	case DDR3TSI:
		tm = baseTiming(true)
		// The DDR3 PHY is kept unchanged on the interposer (§III-B), so
		// the read latency stays at DDR3's tAA; only the channel count
		// and I/O energy benefit from TSI.
		tm.TAA = 14 * sim.Nanosecond
		en = Energy{
			IOPJPerBit:      8, // TSI channel, but DDR3 PHY keeps ODT/DLL overhead
			RDWRPJPerBit:    rdwrPJDDR3,
			ActPre8KBPJ:     actPre8KBnJ * 1000,
			StaticMWPerRank: 120,
			LatchPJ:         0.2,
		}
	case LPDDRTSI:
		tm = baseTiming(true)
		en = Energy{
			IOPJPerBit:      ioPJLPDDRTSI,
			RDWRPJPerBit:    rdwrPJLPDDR,
			ActPre8KBPJ:     actPre8KBnJ * 1000,
			StaticMWPerRank: 35, // no ODT, no DLL
			LatchPJ:         0.2,
		}
	case HMCSerial:
		tm = baseTiming(true)
		// SerDes + packetization adds ~8 ns to the read path.
		tm.TAA += 8 * sim.Nanosecond
		en = Energy{
			IOPJPerBit:   6, // serial links are efficient per bit...
			RDWRPJPerBit: rdwrPJLPDDR,
			ActPre8KBPJ:  actPre8KBnJ * 1000,
			// ...but clock-data recovery burns power regardless of
			// traffic (§II footnote 2, §VII).
			StaticMWPerRank: 400,
			LatchPJ:         0.2,
		}
	default:
		panic(fmt.Sprintf("config: unknown interface %d", iface))
	}
	return Mem{Interface: iface, Org: org, Timing: tm, Energy: en}
}

// PagePolicy selects the controller's row-buffer management scheme.
type PagePolicy int

const (
	// OpenPage leaves a row open after column accesses.
	OpenPage PagePolicy = iota
	// ClosePage precharges as soon as no pending request hits the row.
	ClosePage
	// MinimalistOpen keeps a row open for a fixed interval (~tRC) after
	// the last access, then closes it (Kaseridis et al., MICRO'11).
	MinimalistOpen
	// PredLocal adapts open/close per bank with a 2-bit bimodal
	// predictor keyed by bank (§V).
	PredLocal
	// PredGlobal adapts open/close with a 2-bit bimodal predictor keyed
	// by requesting thread.
	PredGlobal
	// PredTournament selects among {open, close, local, global} with a
	// bimodal chooser per bank.
	PredTournament
	// PredPerfect consults an oracle hint carried by each request that
	// says whether the next access to this (μ)bank hits the same row.
	PredPerfect
)

// String returns the short name used in the paper's figures.
func (p PagePolicy) String() string {
	switch p {
	case OpenPage:
		return "open"
	case ClosePage:
		return "close"
	case MinimalistOpen:
		return "minimalist"
	case PredLocal:
		return "local"
	case PredGlobal:
		return "global"
	case PredTournament:
		return "tournament"
	case PredPerfect:
		return "perfect"
	default:
		return fmt.Sprintf("PagePolicy(%d)", int(p))
	}
}

// Scheduler selects the memory-access scheduling algorithm.
type Scheduler int

const (
	// SchedFRFCFS is first-ready, first-come-first-served.
	SchedFRFCFS Scheduler = iota
	// SchedPARBS is parallelism-aware batch scheduling (Mutlu &
	// Moscibroda, ISCA'08), the paper's default.
	SchedPARBS
	// SchedFCFS is strict arrival order (baseline for ablations).
	SchedFCFS
)

// String returns the scheduler's conventional name.
func (s Scheduler) String() string {
	switch s {
	case SchedFRFCFS:
		return "FR-FCFS"
	case SchedPARBS:
		return "PAR-BS"
	case SchedFCFS:
		return "FCFS"
	default:
		return fmt.Sprintf("Scheduler(%d)", int(s))
	}
}

// Ctrl holds memory-controller parameters.
type Ctrl struct {
	QueueDepth int // request queue entries per controller (default 32)
	Scheduler  Scheduler
	PagePolicy PagePolicy
	// InterleaveBit is iB from Fig. 11: the lowest address bit of the
	// channel/bank interleaving field. 6 = cache-line interleaving,
	// 13 = DRAM-row (8 KB) interleaving.
	InterleaveBit int
	// BatchCap is PAR-BS's per-thread marking cap.
	BatchCap int
	// XORBankHash enables permutation-based interleaving: the bank and
	// μbank index is XORed with low row bits so power-of-two strides do
	// not alias onto a single bank.
	XORBankHash bool
	// BankBudget enables a MemGuard-style per-bank bandwidth regulator
	// (Yun et al.): each thread may be granted at most this many column
	// accesses per (μ)bank per replenishment epoch; further requests
	// from that thread to that bank are held back by the scheduler's
	// admission filter until the next epoch. 0 disables the regulator.
	BankBudget int
	// RegEpoch is the regulator's replenishment epoch in picoseconds;
	// 0 with BankBudget > 0 selects DefaultRegEpoch.
	RegEpoch sim.Time
}

// DefaultRegEpoch is the regulator's replenishment epoch when
// Ctrl.BankBudget is set but Ctrl.RegEpoch is left zero: 1 μs, a few
// bank cycles — long enough to amortize budget bookkeeping, short
// enough that a throttled thread is never stalled perceptibly.
const DefaultRegEpoch = 1000 * sim.Nanosecond

// DefaultCtrl returns the paper's controller defaults: 32-entry queue,
// PAR-BS, open page, row interleaving.
func DefaultCtrl() Ctrl {
	return Ctrl{QueueDepth: 32, Scheduler: SchedPARBS, PagePolicy: OpenPage, InterleaveBit: 13, BatchCap: 5}
}

// Core holds processor core parameters (§VI-A).
type Core struct {
	FreqMHz     int // 2000
	IssueWidth  int // 2
	ROBEntries  int // 32
	CommitWidth int
}

// CacheGeom describes one cache level.
type CacheGeom struct {
	SizeBytes int
	Assoc     int
	LineBytes int
	LatencyCy int // access latency in core cycles
	MSHRs     int
	Banks     int
}

// System is the whole simulated machine.
type System struct {
	Cores      int // populated cores
	CoresPerL2 int // cluster size (4)
	Core       Core
	L1D        CacheGeom
	L1I        CacheGeom
	L2         CacheGeom
	Mem        Mem
	Ctrl       Ctrl
	// NoCHopPS is the per-hop router+link latency; MeshDim the mesh side.
	NoCHopPS sim.Time
	MeshDim  int
	// CoreEnergyPJPerOp is the McPAT-derived core energy (§III-B).
	CoreEnergyPJPerOp float64
}

// CoreClock returns the core clock.
func (s System) CoreClock() sim.Clock {
	return sim.NewClock(sim.Time(1e6 / float64(s.Core.FreqMHz)))
}

// Validate checks the whole system configuration.
func (s System) Validate() error {
	if s.Cores <= 0 || s.CoresPerL2 <= 0 {
		return fmt.Errorf("config: non-positive core counts")
	}
	if s.Core.IssueWidth <= 0 || s.Core.ROBEntries <= 0 || s.Core.FreqMHz <= 0 {
		return fmt.Errorf("config: bad core parameters: %+v", s.Core)
	}
	for _, g := range []CacheGeom{s.L1D, s.L1I, s.L2} {
		if g.SizeBytes <= 0 || g.Assoc <= 0 || g.LineBytes <= 0 {
			return fmt.Errorf("config: bad cache geometry: %+v", g)
		}
		if g.SizeBytes%(g.Assoc*g.LineBytes) != 0 {
			return fmt.Errorf("config: cache size %d not divisible by assoc*line", g.SizeBytes)
		}
	}
	if s.Ctrl.QueueDepth <= 0 {
		return fmt.Errorf("config: non-positive queue depth")
	}
	if s.Ctrl.InterleaveBit < 6 {
		return fmt.Errorf("config: interleave bit %d below cache-line bits", s.Ctrl.InterleaveBit)
	}
	if s.Ctrl.BankBudget < 0 {
		return fmt.Errorf("config: negative bank budget %d", s.Ctrl.BankBudget)
	}
	if s.Ctrl.RegEpoch < 0 {
		return fmt.Errorf("config: negative regulation epoch %d", s.Ctrl.RegEpoch)
	}
	return s.Mem.Validate()
}

// DefaultSystem returns the paper's 64-core CMP (§VI-A) over the given
// memory configuration. Single-threaded experiments populate one core
// and one memory controller via Scale.
func DefaultSystem(mem Mem) System {
	return System{
		Cores:             64,
		CoresPerL2:        4,
		Core:              Core{FreqMHz: 2000, IssueWidth: 2, ROBEntries: 32, CommitWidth: 2},
		L1D:               CacheGeom{SizeBytes: 16 << 10, Assoc: 4, LineBytes: 64, LatencyCy: 2, MSHRs: 8, Banks: 4},
		L1I:               CacheGeom{SizeBytes: 16 << 10, Assoc: 4, LineBytes: 64, LatencyCy: 1, MSHRs: 4, Banks: 4},
		L2:                CacheGeom{SizeBytes: 2 << 20, Assoc: 16, LineBytes: 64, LatencyCy: 12, MSHRs: 32, Banks: 4},
		Mem:               mem,
		Ctrl:              DefaultCtrl(),
		NoCHopPS:          2 * sim.Nanosecond,
		MeshDim:           4,
		CoreEnergyPJPerOp: 200,
	}
}

// SingleCore reduces the system to one populated core and one memory
// controller, the paper's setup for single-threaded SPEC runs ("we
// populated only one memory controller ... to stress the main memory
// bandwidth").
func SingleCore(mem Mem) System {
	s := DefaultSystem(mem)
	s.Cores = 1
	s.Mem.Org.Channels = 1
	return s
}
