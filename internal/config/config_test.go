package config

import (
	"strings"
	"testing"
	"testing/quick"

	"microbank/internal/sim"
)

func TestInterfaceString(t *testing.T) {
	cases := map[Interface]string{
		DDR3PCB:      "DDR3-PCB",
		DDR3TSI:      "DDR3-TSI",
		LPDDRTSI:     "LPDDR-TSI",
		Interface(9): "Interface(9)",
	}
	for iface, want := range cases {
		if got := iface.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(iface), got, want)
		}
	}
	if len(Interfaces()) != 3 {
		t.Fatalf("Interfaces() = %v", Interfaces())
	}
}

func TestMemPresetTableI(t *testing.T) {
	pcb := MemPreset(DDR3PCB, 1, 1)
	if pcb.Energy.IOPJPerBit != 20 {
		t.Errorf("DDR3-PCB I/O energy = %v pJ/b, want 20 (Table I)", pcb.Energy.IOPJPerBit)
	}
	if pcb.Energy.RDWRPJPerBit != 13 {
		t.Errorf("DDR3-PCB RD/WR energy = %v pJ/b, want 13", pcb.Energy.RDWRPJPerBit)
	}
	if pcb.Timing.TAA != 14*sim.Nanosecond {
		t.Errorf("DDR3 tAA = %v, want 14ns", pcb.Timing.TAA)
	}
	lp := MemPreset(LPDDRTSI, 1, 1)
	if lp.Energy.IOPJPerBit != 4 || lp.Energy.RDWRPJPerBit != 4 {
		t.Errorf("LPDDR-TSI energies = %v/%v pJ/b, want 4/4", lp.Energy.IOPJPerBit, lp.Energy.RDWRPJPerBit)
	}
	if lp.Timing.TAA != 12*sim.Nanosecond {
		t.Errorf("TSI tAA = %v, want 12ns", lp.Timing.TAA)
	}
	if lp.Energy.ActPre8KBPJ != 30000 {
		t.Errorf("ACT+PRE energy = %v pJ, want 30000 (30 nJ)", lp.Energy.ActPre8KBPJ)
	}
	for _, m := range []Mem{pcb, MemPreset(DDR3TSI, 1, 1), lp} {
		if err := m.Validate(); err != nil {
			t.Errorf("%v preset invalid: %v", m.Interface, err)
		}
		if m.Timing.TRCD != 14*sim.Nanosecond || m.Timing.TRAS != 35*sim.Nanosecond || m.Timing.TRP != 14*sim.Nanosecond {
			t.Errorf("%v core timing mismatch with Table I: %+v", m.Interface, m.Timing)
		}
	}
	// The paper keeps DDR3-PCB at 8 controllers (pin limited).
	if pcb.Org.Channels != 8 {
		t.Errorf("DDR3-PCB channels = %d, want 8", pcb.Org.Channels)
	}
	if lp.Org.Channels != 16 {
		t.Errorf("LPDDR-TSI channels = %d, want 16", lp.Org.Channels)
	}
}

func TestMemPresetUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown interface did not panic")
		}
	}()
	MemPreset(Interface(42), 1, 1)
}

func TestOrgDerived(t *testing.T) {
	m := MemPreset(LPDDRTSI, 4, 2)
	o := m.Org
	if o.MicrobanksPerBank() != 8 {
		t.Errorf("MicrobanksPerBank = %d, want 8", o.MicrobanksPerBank())
	}
	if o.MicroRowBytes() != 2048 {
		t.Errorf("MicroRowBytes = %d, want 2048 (8KB/4)", o.MicroRowBytes())
	}
	if o.LinesPerRow() != 32 {
		t.Errorf("LinesPerRow = %d, want 32", o.LinesPerRow())
	}
	want := o.Channels * o.RanksPerChan * o.BanksPerRank * 8
	if o.TotalRowBuffers() != want {
		t.Errorf("TotalRowBuffers = %d, want %d", o.TotalRowBuffers(), want)
	}
}

func TestOrgValidateRejectsBadShapes(t *testing.T) {
	base := MemPreset(LPDDRTSI, 1, 1).Org
	mut := func(f func(*Org)) Org { o := base; f(&o); return o }
	bad := []Org{
		mut(func(o *Org) { o.NW = 3 }),
		mut(func(o *Org) { o.NB = 0 }),
		mut(func(o *Org) { o.Channels = 0 }),
		mut(func(o *Org) { o.BanksPerRank = 6 }),
		mut(func(o *Org) { o.RowBytes = 1000 }),
		mut(func(o *Org) { o.NW = 256 }), // μbank row smaller than a line
		mut(func(o *Org) { o.ChannelGBs = 0 }),
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted bad org %+v", i, o)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("base org rejected: %v", err)
	}
}

func TestTimingValidate(t *testing.T) {
	tm := baseTiming(true)
	if err := tm.Validate(); err != nil {
		t.Fatalf("base timing invalid: %v", err)
	}
	if tm.TRC() != 49*sim.Nanosecond {
		t.Errorf("tRC = %v, want 49ns", tm.TRC())
	}
	bad := tm
	bad.TRAS = 10 * sim.Nanosecond // < tRCD
	if err := bad.Validate(); err == nil {
		t.Error("tRAS < tRCD accepted")
	}
	bad = tm
	bad.TRCD = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero tRCD accepted")
	}
	bad = tm
	bad.TRFC = 0
	if err := bad.Validate(); err == nil {
		t.Error("refresh without tRFC accepted")
	}
}

func TestLineTransferTime(t *testing.T) {
	m := MemPreset(LPDDRTSI, 1, 1)
	// 64 B at 16 GB/s = 4 ns.
	if got := m.LineTransferTime(); got != 4*sim.Nanosecond {
		t.Errorf("LineTransferTime = %v ps, want 4000", got)
	}
}

func TestPolicyAndSchedulerStrings(t *testing.T) {
	for _, p := range []PagePolicy{OpenPage, ClosePage, MinimalistOpen, PredLocal, PredGlobal, PredTournament, PredPerfect} {
		if s := p.String(); strings.HasPrefix(s, "PagePolicy(") {
			t.Errorf("policy %d missing name", int(p))
		}
	}
	if PagePolicy(99).String() != "PagePolicy(99)" {
		t.Error("unknown policy string")
	}
	for _, s := range []Scheduler{SchedFRFCFS, SchedPARBS, SchedFCFS} {
		if str := s.String(); strings.HasPrefix(str, "Scheduler(") {
			t.Errorf("scheduler %d missing name", int(s))
		}
	}
	if Scheduler(99).String() != "Scheduler(99)" {
		t.Error("unknown scheduler string")
	}
}

func TestDefaultSystemMatchesPaper(t *testing.T) {
	s := DefaultSystem(MemPreset(LPDDRTSI, 2, 8))
	if err := s.Validate(); err != nil {
		t.Fatalf("default system invalid: %v", err)
	}
	if s.Cores != 64 || s.CoresPerL2 != 4 {
		t.Errorf("cores = %d/%d, want 64 clusters of 4", s.Cores, s.CoresPerL2)
	}
	if s.Core.IssueWidth != 2 || s.Core.ROBEntries != 32 || s.Core.FreqMHz != 2000 {
		t.Errorf("core = %+v, want 2-issue 32-ROB 2GHz", s.Core)
	}
	if s.L1D.SizeBytes != 16<<10 || s.L1D.Assoc != 4 {
		t.Errorf("L1D = %+v, want 16KB 4-way", s.L1D)
	}
	if s.L2.SizeBytes != 2<<20 || s.L2.Assoc != 16 {
		t.Errorf("L2 = %+v, want 2MB 16-way", s.L2)
	}
	if s.Ctrl.QueueDepth != 32 || s.Ctrl.Scheduler != SchedPARBS {
		t.Errorf("ctrl = %+v, want 32-entry PAR-BS", s.Ctrl)
	}
	if got := s.CoreClock().Period(); got != 500 {
		t.Errorf("core period = %d ps, want 500", got)
	}
}

func TestSingleCore(t *testing.T) {
	s := SingleCore(MemPreset(LPDDRTSI, 1, 1))
	if s.Cores != 1 || s.Mem.Org.Channels != 1 {
		t.Fatalf("SingleCore = %d cores %d channels, want 1/1", s.Cores, s.Mem.Org.Channels)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("single-core system invalid: %v", err)
	}
}

func TestSystemValidateRejectsBad(t *testing.T) {
	good := DefaultSystem(MemPreset(LPDDRTSI, 1, 1))
	mut := func(f func(*System)) System { s := good; f(&s); return s }
	bad := []System{
		mut(func(s *System) { s.Cores = 0 }),
		mut(func(s *System) { s.Core.IssueWidth = 0 }),
		mut(func(s *System) { s.L2.SizeBytes = 3000 }), // not divisible
		mut(func(s *System) { s.Ctrl.QueueDepth = 0 }),
		mut(func(s *System) { s.Ctrl.InterleaveBit = 3 }),
		mut(func(s *System) { s.Mem.Org.NW = 5 }),
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// Property: for every power-of-two partitioning that keeps the μbank
// row at least one cache line, presets validate and derived quantities
// are consistent.
func TestOrgPartitionProperty(t *testing.T) {
	f := func(wExp, bExp uint8) bool {
		nW := 1 << (wExp % 8) // up to 128
		nB := 1 << (bExp % 6) // up to 32
		m := MemPreset(LPDDRTSI, nW, nB)
		err := m.Validate()
		if m.Org.RowBytes/nW < m.Org.CacheLineBytes {
			return err != nil
		}
		if err != nil {
			return false
		}
		return m.Org.MicrobanksPerBank() == nW*nB &&
			m.Org.MicroRowBytes()*nW == m.Org.RowBytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
