// Package cpu models the chip's out-of-order cores (§VI-A: 2 GHz,
// dual-issue, 32-entry ROB, 2-wide commit) as trace-driven analytic
// pipelines: instruction issue and commit are computed arithmetically
// and only memory accesses create simulation events, so a 64-core run
// costs events proportional to its memory traffic, not its instruction
// count.
//
// The model captures what the paper's results depend on:
//
//   - ROB-limited memory-level parallelism: a core keeps issuing past
//     outstanding loads until the 32-entry window wraps, so the number
//     of concurrent DRAM requests — the quantity μbank parallelism
//     feeds on — emerges from window size, access gap, and latency.
//   - Issue/commit bandwidth: at most IssueWidth instructions enter and
//     CommitWidth leave the window per cycle, bounding peak IPC.
//   - Load dependencies: a configurable fraction of accesses must wait
//     for the previous load (pointer chasing à la 429.mcf), throttling
//     MLP exactly where the paper's low-locality benchmarks do.
package cpu

import (
	"fmt"
	"math/bits"
	"math/rand"

	"microbank/internal/sim"
	"microbank/internal/workload"
)

// AccessFunc submits a cache access. It returns false when the cache
// cannot accept the request (MSHR full); the core then waits for Kick.
// done may be nil for posted stores.
type AccessFunc func(addr uint64, write bool, done func(at sim.Time)) bool

// Params configures one core.
type Params struct {
	ID          int
	FreqMHz     int
	IssueWidth  int
	CommitWidth int
	ROB         int
	// DepFrac is the probability a load depends on the previous load.
	DepFrac float64
	// Budget is the number of instructions to execute.
	Budget uint64
	// Warmup marks the first Warmup instructions as cache/DRAM warm-up;
	// OnWarm fires when the core crosses it. Must be < Budget.
	Warmup uint64
	Seed   int64
}

// Stats reports a finished core's execution.
type Stats struct {
	Instructions uint64
	Loads        uint64
	Stores       uint64
	FinishAt     sim.Time
	StallRetry   uint64 // cache-reject stalls
	DepStalls    uint64 // dependent-load issue stalls
	// WarmAt/WarmInstr record when the warm-up boundary was crossed;
	// zero when no warm-up was configured.
	WarmAt    sim.Time
	WarmInstr uint64
}

// IPC returns retired instructions per core cycle over the measured
// (post-warm-up) region.
func (s Stats) IPC(period sim.Time) float64 {
	if s.FinishAt <= s.WarmAt {
		return 0
	}
	cycles := float64(s.FinishAt-s.WarmAt) / float64(period)
	return float64(s.Instructions-s.WarmInstr) / cycles
}

// Core is one simulated out-of-order core.
type Core struct {
	eng    *sim.Engine
	p      Params
	period sim.Time
	gen    workload.Generator
	access AccessFunc
	rng    *rand.Rand
	// runCb is allocated once so the per-cycle continuation reschedule
	// does not allocate a closure per event.
	runCb func(*sim.Engine)
	// loadDone[s] resolves the instruction occupying ring slot s; the
	// ROB-many callbacks are allocated once at construction so issuing a
	// load does not allocate a fresh completion closure.
	loadDone []func(at sim.Time)

	// Per-instruction rings, indexed by instruction number % ROB.
	complete []sim.Time // completion time; sim.Never while unresolved
	commit   []sim.Time // assigned commit time
	// robMask is ROB-1 when ROB is a power of two, letting the
	// per-instruction ring indexing use a mask instead of a 64-bit
	// modulo; zero otherwise (slot falls back to %).
	robMask uint64
	// periodInv is floor(2^64/period), letting the two per-instruction
	// time→cycle conversions use a 128-bit multiply instead of a 64-bit
	// divide; zero when period is 1 (cycles returns t directly).
	periodInv uint64

	issued uint64 // instructions issued so far
	cursor uint64 // next instruction to receive a commit time

	issueCycle uint64 // cycle of the last issue slot
	issueCnt   int
	comCycle   uint64
	comCnt     int

	pendGap  int
	pendAcc  workload.Access
	havePend bool

	lastLoadIdx   uint64 // instruction index of most recent load
	haveLoad      bool
	waitDep       bool
	waitRetry     bool
	finished      bool
	warmed        bool
	onFinish      func(Stats)
	contScheduled bool

	// OnWarm, when set, fires once when the core crosses its warm-up
	// instruction count.
	OnWarm func()

	stats Stats
}

// New builds a core. onFinish fires once when the instruction budget
// has fully committed.
func New(eng *sim.Engine, p Params, gen workload.Generator, access AccessFunc, onFinish func(Stats)) *Core {
	if p.IssueWidth <= 0 || p.CommitWidth <= 0 || p.ROB <= 0 || p.Budget == 0 || p.FreqMHz <= 0 {
		panic(fmt.Sprintf("cpu: bad params %+v", p))
	}
	if p.Warmup >= p.Budget {
		panic(fmt.Sprintf("cpu: warmup %d >= budget %d", p.Warmup, p.Budget))
	}
	c := &Core{
		eng:      eng,
		p:        p,
		period:   sim.Time(1e6 / float64(p.FreqMHz)),
		gen:      gen,
		access:   access,
		rng:      rand.New(rand.NewSource(p.Seed ^ int64(p.ID)*7919)),
		complete: make([]sim.Time, p.ROB),
		commit:   make([]sim.Time, p.ROB),
		onFinish: onFinish,
	}
	if p.ROB&(p.ROB-1) == 0 {
		c.robMask = uint64(p.ROB - 1)
	}
	if c.period > 1 {
		c.periodInv, _ = bits.Div64(1, 0, uint64(c.period))
	}
	c.runCb = func(e *sim.Engine) { c.run(e.Now()) }
	// A slot index fully identifies the in-flight load it resolves: the
	// window admits at most ROB instructions, so slot s can only belong
	// to one unresolved instruction at a time.
	c.loadDone = make([]func(at sim.Time), p.ROB)
	for s := range c.loadDone {
		c.loadDone[s] = func(at sim.Time) {
			c.complete[s] = at
			c.haveLoadResolved()
		}
	}
	return c
}

// Start begins execution at the current simulation time.
func (c *Core) Start() {
	c.eng.Schedule(c.eng.Now(), c.runCb)
}

// Kick resumes a core stalled on a cache rejection. The system layer
// calls it when MSHRs free up.
func (c *Core) Kick() {
	if c.waitRetry && !c.finished {
		c.waitRetry = false
		c.eng.Schedule(c.eng.Now(), c.runCb)
	}
}

// Stats returns the core's statistics (final once finished).
func (c *Core) Stats() Stats { return c.stats }

// Finished reports whether the budget has fully committed.
func (c *Core) Finished() bool { return c.finished }

// slot maps an instruction number to its ring index.
func (c *Core) slot(idx uint64) uint64 {
	if c.robMask != 0 {
		return idx & c.robMask
	}
	return idx % uint64(c.p.ROB)
}

// cycles returns t/period. periodInv underestimates 2^64/period, so
// the multiply-high quotient can fall short by a step or two; the
// remainder loop restores the exact floor for every input.
func (c *Core) cycles(t sim.Time) uint64 {
	if c.periodInv == 0 {
		return uint64(t)
	}
	q, _ := bits.Mul64(uint64(t), c.periodInv)
	for r := uint64(t) - q*uint64(c.period); r >= uint64(c.period); r -= uint64(c.period) {
		q++
	}
	return q
}

// assignCommits assigns commit times to all resolved instructions in
// order, honoring commit width.
func (c *Core) assignCommits() {
	for c.cursor < c.issued {
		comp := c.complete[c.slot(c.cursor)]
		if comp == sim.Never {
			return
		}
		ct := comp
		cyc := c.cycles(ct)
		if cyc < c.comCycle {
			cyc = c.comCycle
		}
		if cyc == c.comCycle {
			if c.comCnt >= c.p.CommitWidth {
				cyc++
				c.comCnt = 0
			}
		} else {
			c.comCnt = 0
		}
		c.comCycle = cyc
		c.comCnt++
		c.commit[c.slot(c.cursor)] = sim.Time(cyc) * c.period
		c.cursor++
	}
}

// issueConstraint returns the earliest issue time for the next
// instruction, or ok=false when it depends on an unresolved commit.
func (c *Core) issueConstraint() (sim.Time, bool) {
	var t sim.Time
	if c.issued >= uint64(c.p.ROB) {
		oldest := c.issued - uint64(c.p.ROB)
		if c.cursor <= oldest {
			c.assignCommits()
			if c.cursor <= oldest {
				return 0, false // window blocked on an unresolved load
			}
		}
		t = c.commit[c.slot(oldest)]
	}
	return t, true
}

// nextIssue computes (without reserving) the slot the next instruction
// would issue in, given earliest time t.
func (c *Core) nextIssue(t sim.Time) (at sim.Time, cyc uint64, cnt int) {
	cyc = c.cycles(t)
	cnt = c.issueCnt
	if cyc < c.issueCycle {
		cyc = c.issueCycle
	}
	if cyc == c.issueCycle {
		if cnt >= c.p.IssueWidth {
			cyc++
			cnt = 0
		}
	} else {
		cnt = 0
	}
	return sim.Time(cyc) * c.period, cyc, cnt
}

// reserveIssue commits a slot returned by nextIssue.
func (c *Core) reserveIssue(cyc uint64, cnt int) {
	c.issueCycle = cyc
	c.issueCnt = cnt + 1
}

// issueAt reserves an issue slot at or after t and returns its time.
func (c *Core) issueAt(t sim.Time) sim.Time {
	at, cyc, cnt := c.nextIssue(t)
	c.reserveIssue(cyc, cnt)
	return at
}

// push records instruction issue with the given completion time.
func (c *Core) push(complete sim.Time) uint64 {
	idx := c.issued
	c.complete[c.slot(idx)] = complete
	c.commit[c.slot(idx)] = sim.Never
	c.issued++
	c.stats.Instructions++
	return idx
}

// run advances the core until it blocks or finishes. now is the engine
// time; instruction issue may run ahead of it virtually, but memory
// accesses are re-entered at their own issue instant.
func (c *Core) run(now sim.Time) {
	c.contScheduled = false
	for !c.finished {
		if !c.warmed && c.p.Warmup > 0 && c.issued >= c.p.Warmup {
			c.markWarm(now)
		}
		if c.issued >= c.p.Budget {
			c.tryFinish()
			return
		}
		if !c.havePend {
			gap, acc := c.gen.Next()
			c.pendGap, c.pendAcc, c.havePend = gap, acc, true
			// Clamp so the budget is exact.
			if rem := c.p.Budget - c.issued; uint64(c.pendGap) >= rem {
				c.pendGap = int(rem) - 1
				if c.pendGap < 0 {
					c.pendGap = 0
				}
			}
		}
		// Bulk-issue the non-memory gap instructions.
		for c.pendGap > 0 {
			t, ok := c.issueConstraint()
			if !ok {
				return // a load resolution will re-run us
			}
			it := c.issueAt(t)
			c.push(it + c.period)
			c.pendGap--
		}
		if c.issued >= c.p.Budget {
			c.havePend = false
			c.tryFinish()
			return
		}
		// The memory access.
		t, ok := c.issueConstraint()
		if !ok {
			return
		}
		// Dependent load: wait for the previous load's data.
		if c.haveLoad && !c.pendAcc.Write && c.rng.Float64() < c.p.DepFrac {
			prev := c.complete[c.slot(c.lastLoadIdx)]
			if prev == sim.Never && c.lastLoadInWindow() {
				c.stats.DepStalls++
				c.waitDep = true
				return // resolution re-runs us
			}
			if prev != sim.Never && prev > t {
				t = prev
			}
		}
		it, cyc, cnt := c.nextIssue(t)
		if it > now {
			// The access belongs to a future instant: hand control back
			// to the engine (without consuming the issue slot) so
			// arrival order stays causal.
			c.scheduleRun(it)
			return
		}
		c.reserveIssue(cyc, cnt)
		if c.pendAcc.Write {
			if !c.access(c.pendAcc.Addr, true, nil) {
				c.stats.StallRetry++
				c.waitRetry = true
				c.unissue(it)
				return
			}
			c.push(it + c.period)
			c.stats.Stores++
			c.havePend = false
			continue
		}
		// Try the access before pushing: a push would clobber the ring
		// slot of the oldest in-flight instruction, which we must keep
		// if the cache rejects us. Completion callbacks are always
		// asynchronous, so capturing the index early is safe.
		idx := c.issued
		accepted := c.access(c.pendAcc.Addr, false, c.loadDone[c.slot(idx)])
		if !accepted {
			c.stats.StallRetry++
			c.waitRetry = true
			c.unissue(it)
			return
		}
		c.push(sim.Never)
		c.stats.Loads++
		c.lastLoadIdx = idx
		c.haveLoad = true
		c.havePend = false
	}
}

// lastLoadInWindow reports whether the last load's ring slot still
// belongs to that load (it may have been overwritten after commit).
func (c *Core) lastLoadInWindow() bool {
	return c.issued-c.lastLoadIdx <= uint64(c.p.ROB)
}

// haveLoadResolved re-enters the core after a load completes.
func (c *Core) haveLoadResolved() {
	c.waitDep = false
	if !c.finished {
		c.scheduleRun(c.eng.Now())
	}
}

func (c *Core) scheduleRun(at sim.Time) {
	if c.contScheduled {
		return
	}
	c.contScheduled = true
	c.eng.Schedule(at, c.runCb)
}

// unissue rolls back an issue-slot reservation after a rejected access.
func (c *Core) unissue(sim.Time) {
	if c.issueCnt > 0 {
		c.issueCnt--
	}
}

// markWarm records the warm-up crossing at the core's current virtual
// issue time and notifies the system.
func (c *Core) markWarm(now sim.Time) {
	c.warmed = true
	at := sim.Time(c.issueCycle) * c.period
	if at < now {
		at = now
	}
	c.stats.WarmAt = at
	c.stats.WarmInstr = c.issued
	if c.OnWarm != nil {
		c.OnWarm()
	}
}

// tryFinish completes the core once every instruction has committed.
func (c *Core) tryFinish() {
	c.assignCommits()
	if c.cursor < c.issued {
		return // outstanding loads; resolutions will re-enter
	}
	if c.finished {
		return
	}
	c.finished = true
	last := sim.Time(0)
	if c.issued > 0 {
		last = c.commit[c.slot(c.issued-1)]
	}
	c.stats.FinishAt = last
	if c.onFinish != nil {
		c.onFinish(c.stats)
	}
}
