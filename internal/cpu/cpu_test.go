package cpu

import (
	"math/bits"
	"math/rand"
	"testing"

	"microbank/internal/sim"
	"microbank/internal/workload"
)

const ns = sim.Nanosecond

func params(budget uint64) Params {
	return Params{ID: 0, FreqMHz: 2000, IssueWidth: 2, CommitWidth: 2, ROB: 32, Budget: budget, Seed: 1}
}

// fixedMem services loads with constant latency.
type fixedMem struct {
	eng      *sim.Engine
	latency  sim.Time
	accesses int
	inflight int
	maxInfl  int
	rejects  int // number of initial rejects to simulate
}

func (m *fixedMem) access(addr uint64, write bool, done func(at sim.Time)) bool {
	if m.rejects > 0 {
		m.rejects--
		return false
	}
	m.accesses++
	if done != nil {
		m.inflight++
		if m.inflight > m.maxInfl {
			m.maxInfl = m.inflight
		}
		at := m.eng.Now() + m.latency
		m.eng.Schedule(at, func(*sim.Engine) {
			m.inflight--
			done(at)
		})
	}
	return true
}

func runCore(t *testing.T, p Params, gen workload.Generator, mem *fixedMem) Stats {
	t.Helper()
	eng := sim.NewEngine()
	mem.eng = eng
	var out Stats
	finished := false
	c := New(eng, p, gen, mem.access, func(s Stats) { out = s; finished = true })
	c.Start()
	eng.Run()
	if !finished {
		t.Fatalf("core did not finish: issued=%d budget=%d inflight=%d", c.issued, p.Budget, mem.inflight)
	}
	if !c.Finished() {
		t.Fatal("Finished() false after onFinish")
	}
	return out
}

func TestComputeBoundIPCNearIssueWidth(t *testing.T) {
	// 1 access per 100 instructions, zero-latency hits.
	gen := &workload.Fixed{Gap: 99, Accs: []workload.Access{{Addr: 0}}}
	mem := &fixedMem{latency: 1 * ns}
	st := runCore(t, params(10000), gen, mem)
	ipc := st.IPC(500)
	if ipc < 1.8 || ipc > 2.0 {
		t.Fatalf("compute-bound IPC = %v, want ~2", ipc)
	}
	if st.Instructions != 10000 {
		t.Fatalf("instructions = %d", st.Instructions)
	}
}

func TestDependentLoadsSerialize(t *testing.T) {
	gen := &workload.Fixed{Gap: 0, Accs: []workload.Access{{Addr: 0}}}
	p := params(100)
	p.DepFrac = 1.0
	mem := &fixedMem{latency: 100 * ns}
	st := runCore(t, p, gen, mem)
	// Every load waits for the previous: ≈ budget × latency.
	minTime := sim.Time(90) * 100 * ns
	if st.FinishAt < minTime {
		t.Fatalf("dependent chain finished at %d, want >= %d", st.FinishAt, minTime)
	}
	if mem.maxInfl > 2 {
		t.Fatalf("dependent chain reached MLP %d, want ~1", mem.maxInfl)
	}
}

func TestIndependentLoadsOverlap(t *testing.T) {
	gen := &workload.Fixed{Gap: 0, Accs: []workload.Access{{Addr: 0}}}
	p := params(200)
	p.DepFrac = 0
	mem := &fixedMem{latency: 100 * ns}
	st := runCore(t, p, gen, mem)
	if mem.maxInfl < 8 {
		t.Fatalf("independent loads reached MLP %d, want >= 8 (ROB-limited)", mem.maxInfl)
	}
	if mem.maxInfl > 32 {
		t.Fatalf("MLP %d exceeds ROB", mem.maxInfl)
	}
	// Overlap must beat the serial bound by a wide margin.
	serial := sim.Time(200) * 100 * ns
	if st.FinishAt > serial/4 {
		t.Fatalf("overlapped run took %d, serial bound %d", st.FinishAt, serial)
	}
}

func TestROBLimitsMLP(t *testing.T) {
	gen := &workload.Fixed{Gap: 0, Accs: []workload.Access{{Addr: 0}}}
	mlpFor := func(rob int) int {
		p := params(300)
		p.ROB = rob
		mem := &fixedMem{latency: 200 * ns}
		runCore(t, p, gen, mem)
		return mem.maxInfl
	}
	small, large := mlpFor(8), mlpFor(32)
	if large <= small {
		t.Fatalf("MLP did not grow with ROB: %d vs %d", small, large)
	}
	if small > 8 {
		t.Fatalf("ROB=8 allowed MLP %d", small)
	}
}

func TestStoresArePosted(t *testing.T) {
	gen := &workload.Fixed{Gap: 0, Accs: []workload.Access{{Addr: 0, Write: true}}}
	mem := &fixedMem{latency: 100 * ns}
	st := runCore(t, params(100), gen, mem)
	// Stores never wait for memory: IPC stays near issue width.
	if ipc := st.IPC(500); ipc < 1.5 {
		t.Fatalf("store-only IPC = %v, want near 2", ipc)
	}
	if st.Stores != 100 {
		t.Fatalf("stores = %d", st.Stores)
	}
}

func TestMixedCounts(t *testing.T) {
	gen := &workload.Fixed{Gap: 3, Accs: []workload.Access{{Addr: 0}, {Addr: 64, Write: true}}}
	mem := &fixedMem{latency: 10 * ns}
	st := runCore(t, params(400), gen, mem)
	if st.Instructions != 400 {
		t.Fatalf("instructions = %d", st.Instructions)
	}
	if st.Loads == 0 || st.Stores == 0 {
		t.Fatalf("loads/stores = %d/%d", st.Loads, st.Stores)
	}
	if st.Loads+st.Stores > 110 {
		t.Fatalf("too many accesses: %d", st.Loads+st.Stores)
	}
}

func TestRetryAfterReject(t *testing.T) {
	gen := &workload.Fixed{Gap: 0, Accs: []workload.Access{{Addr: 0}}}
	eng := sim.NewEngine()
	mem := &fixedMem{eng: eng, latency: 10 * ns, rejects: 1}
	var done bool
	c := New(eng, params(10), gen, mem.access, func(Stats) { done = true })
	c.Start()
	eng.Run()
	if done {
		t.Fatal("core finished despite a stuck rejection without Kick")
	}
	if c.Stats().StallRetry != 1 {
		t.Fatalf("StallRetry = %d", c.Stats().StallRetry)
	}
	// Kick resumes it.
	c.Kick()
	eng.Run()
	if !done {
		t.Fatal("core did not finish after Kick")
	}
}

func TestSyntheticWorkloadDrives(t *testing.T) {
	p := params(20000)
	p.DepFrac = 0.3
	gen := workload.NewSynthetic(workload.MustGet("429.mcf"), 0, 5)
	mem := &fixedMem{latency: 50 * ns}
	st := runCore(t, p, gen, mem)
	if st.Instructions != 20000 {
		t.Fatalf("instructions = %d", st.Instructions)
	}
	ipc := st.IPC(500)
	if ipc <= 0 || ipc > 2 {
		t.Fatalf("IPC = %v out of (0,2]", ipc)
	}
	if st.Loads == 0 {
		t.Fatal("no loads generated")
	}
}

func TestLatencySensitivity(t *testing.T) {
	// Higher memory latency must reduce IPC (the whole premise of the
	// paper's IPC experiments).
	gen := func() workload.Generator {
		return workload.NewSynthetic(workload.MustGet("429.mcf"), 0, 5)
	}
	p := params(10000)
	p.DepFrac = 0.5
	fast := runCore(t, p, gen(), &fixedMem{latency: 20 * ns})
	slow := runCore(t, p, gen(), &fixedMem{latency: 200 * ns})
	if fast.IPC(500) <= slow.IPC(500) {
		t.Fatalf("IPC fast %v <= slow %v", fast.IPC(500), slow.IPC(500))
	}
}

func TestBadParamsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(sim.NewEngine(), Params{}, nil, nil, nil)
}

func TestIPCZeroFinish(t *testing.T) {
	var s Stats
	if s.IPC(500) != 0 {
		t.Fatal("IPC of unfinished core should be 0")
	}
}

// TestCyclesMatchesDivision pins the reciprocal-multiply time→cycle
// conversion to exact integer division across period values and the
// boundary-adjacent timestamps where an off-by-one would first appear.
func TestCyclesMatchesDivision(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, period := range []sim.Time{1, 2, 3, 499, 500, 501, 625, 1000, 4000, 7919} {
		c := &Core{period: period, p: Params{ROB: 32}}
		if period > 1 {
			c.periodInv, _ = bits.Div64(1, 0, uint64(period))
		}
		check := func(v sim.Time) {
			if got, want := c.cycles(v), uint64(v/period); got != want {
				t.Fatalf("period %d: cycles(%d) = %d, want %d", period, v, got, want)
			}
		}
		for i := 0; i < 2000; i++ {
			v := sim.Time(rng.Uint64())
			check(v)
			// Exercise exact multiples and their neighbors.
			k := sim.Time(rng.Uint64() % (1 << 40))
			base := k * period
			check(base)
			check(base + 1)
			if base > 0 {
				check(base - 1)
			}
		}
		check(0)
		check(sim.Time(^uint64(0)))
	}
}
