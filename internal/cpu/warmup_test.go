package cpu

import (
	"testing"

	"microbank/internal/sim"
	"microbank/internal/workload"
)

func TestWarmupCrossingRecorded(t *testing.T) {
	gen := &workload.Fixed{Gap: 9, Accs: []workload.Access{{Addr: 0}}}
	p := params(1000)
	p.Warmup = 400
	mem := &fixedMem{latency: 20 * ns}
	warmFired := 0
	eng := sim.NewEngine()
	mem.eng = eng
	var out Stats
	c := New(eng, p, gen, mem.access, func(s Stats) { out = s })
	c.OnWarm = func() { warmFired++ }
	c.Start()
	eng.Run()
	if warmFired != 1 {
		t.Fatalf("OnWarm fired %d times", warmFired)
	}
	if out.WarmInstr < 400 || out.WarmInstr > 420 {
		t.Fatalf("WarmInstr = %d, want ~400", out.WarmInstr)
	}
	if out.WarmAt == 0 || out.WarmAt >= out.FinishAt {
		t.Fatalf("WarmAt = %d, FinishAt = %d", out.WarmAt, out.FinishAt)
	}
	// IPC uses the measured region only.
	full := float64(out.Instructions) / (float64(out.FinishAt) / 500)
	measured := out.IPC(500)
	if measured <= 0 || measured > 2 {
		t.Fatalf("measured IPC = %v", measured)
	}
	// For a steady workload the two are close but not identical.
	if measured == full && out.WarmAt > 0 {
		t.Log("measured equals full-run IPC (steady workload) — acceptable")
	}
}

func TestWarmupGEQBudgetPanics(t *testing.T) {
	p := params(100)
	p.Warmup = 100
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(sim.NewEngine(), p, nil, nil, nil)
}

func TestNoWarmupNoCallback(t *testing.T) {
	gen := &workload.Fixed{Gap: 4, Accs: []workload.Access{{Addr: 0}}}
	mem := &fixedMem{latency: 10 * ns}
	eng := sim.NewEngine()
	mem.eng = eng
	fired := false
	c := New(eng, params(200), gen, mem.access, func(Stats) {})
	c.OnWarm = func() { fired = true }
	c.Start()
	eng.Run()
	if fired {
		t.Fatal("OnWarm fired without Warmup configured")
	}
	if c.Stats().WarmAt != 0 || c.Stats().WarmInstr != 0 {
		t.Fatal("warm stats set without warmup")
	}
}
