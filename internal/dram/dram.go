// Package dram models a DRAM channel at command granularity: per-μbank
// row-buffer state machines, bank/rank/channel timing constraints
// (tRCD, tRAS, tRP, tAA, tCCD, tRRD, tFAW, tWR, tWTR, tRTP, refresh),
// shared data-bus occupancy, and per-command energy accounting.
//
// A μbank behaves exactly like a conventional bank (independent ACT /
// RD / WR / PRE) except that
//
//   - its row buffer holds RowBytes/nW bytes, so activate/precharge
//     energy scales down by nW, and
//   - power-delivery windows (tRRD, tFAW) constrain *activated bits*,
//     not activate commands: a μbank activation counts 1/nW of a full
//     row, so nW-partitioned devices may issue proportionally more
//     activates per window. This follows the paper's premise that
//     activation cost is proportional to the number of opened mats.
//
// When config.Org.SubarraysPerBank > 1 (SALP / MASA-lite, Kim et al.
// ISCA'12), every (μ)bank is expanded into that many pseudo-banks, one
// per subarray: each keeps its own open row and row-state timings, so
// the scheduler sees S independently schedulable row buffers per bank.
// A row lives in subarray row%S. Unlike μbank partitioning, subarrays
// share the bank's sense-amp I/O and power delivery, so activation
// energy stays at the full (μ)row cost and the tRRD/tFAW activation
// windows are NOT widened — parallelism without the activation-size
// savings. The shared column/data-bus serialization already models the
// "one active I/O per channel at a time" constraint.
//
// The memory controller (package memctrl) owns command selection; this
// package answers "when could command X issue?" and applies its effects.
package dram

import (
	"fmt"

	"microbank/internal/config"
	"microbank/internal/obs"
	"microbank/internal/sim"
)

// Cmd enumerates DRAM commands.
type Cmd int

// DRAM command kinds.
const (
	CmdACT Cmd = iota
	CmdRD
	CmdWR
	CmdPRE
	CmdREF
)

// String returns the conventional mnemonic.
func (c Cmd) String() string {
	switch c {
	case CmdACT:
		return "ACT"
	case CmdRD:
		return "RD"
	case CmdWR:
		return "WR"
	case CmdPRE:
		return "PRE"
	case CmdREF:
		return "REF"
	default:
		return fmt.Sprintf("Cmd(%d)", int(c))
	}
}

// Energy accumulates DRAM energy by the paper's breakdown categories
// (Figs. 1, 10, 14). All values in picojoules; counts are commands.
type Energy struct {
	ActPrePJ  float64
	RdWrPJ    float64
	IOPJ      float64
	RefreshPJ float64
	LatchPJ   float64

	Acts      uint64
	Reads     uint64
	Writes    uint64
	Pres      uint64
	Refreshes uint64
}

// TotalPJ returns the total dynamic DRAM energy.
func (e Energy) TotalPJ() float64 {
	return e.ActPrePJ + e.RdWrPJ + e.IOPJ + e.RefreshPJ + e.LatchPJ
}

type bankState struct {
	open bool
	row  uint32

	actReady sim.Time // earliest ACT (after PRE/refresh)
	colReady sim.Time // earliest RD/WR (after ACT + tRCD)
	preReady sim.Time // earliest PRE (tRAS, tRTP, tWR)
}

type rankState struct {
	// actWindow holds the issue times of recent activates for the
	// four-activate window; capacity 4*nW because each μbank ACT opens
	// 1/nW of a full row.
	actWindow []sim.Time
	actHead   int
	actCount  uint64
	lastAct   sim.Time
	haveAct   bool
}

// Channel models one memory channel: all its ranks, banks and μbanks,
// plus the shared command/data buses.
type Channel struct {
	cfg   config.Mem
	banks []bankState
	ranks []rankState

	busFreeAt   sim.Time // end of the last reserved data-bus slot
	lastRdCmd   sim.Time
	lastWrCmd   sim.Time
	lastColRank int
	haveRd      bool
	haveWr      bool
	nextRefresh sim.Time

	tRRDEff sim.Time

	// subs is SubarraysPerBank (>=1); rankDiv the pseudo-banks per rank.
	subs    int
	rankDiv int

	// refBank rotates over conventional banks for per-bank refresh.
	refBank int

	energy Energy

	// tracer, when non-nil, receives one callback per issued command
	// (obs.Tracer); chanID labels the events. The nil check is the
	// entire disabled-path cost.
	tracer obs.Tracer
	chanID int

	// Row-buffer outcome counters (per paper's hit-rate metrics).
	RowHits      uint64
	RowMisses    uint64 // closed bank, plain activate
	RowConflicts uint64 // open row had to be closed first
}

// BanksPerChannel returns the number of bank-state slots NewChannel
// allocates for cfg: independently schedulable row buffers, i.e.
// (μ)banks times subarrays. Batched builds use it to size an Arena.
func BanksPerChannel(cfg config.Mem) int {
	return cfg.Org.RanksPerChan * cfg.Org.BanksPerRank * cfg.Org.NW * cfg.Org.NB * cfg.Org.Subarrays()
}

// Arena is a contiguous backing slab for the bank-state arrays of a
// batch of variant channels. Carving every variant's banks out of one
// allocation lays the batch's hottest per-bank state out
// variant-major — `[variant][bank]` — so the lockstep driver sweeps
// adjacent memory instead of pointer-chasing B separately allocated
// heaps. Size it with BanksPerChannel summed over every channel of
// every variant; an undersized arena stays correct (overflow slices
// fall back to private allocations) but loses contiguity.
type Arena struct {
	banks []bankState
	used  int
}

// NewArena reserves bankSlots bank-state records.
func NewArena(bankSlots int) *Arena {
	return &Arena{banks: make([]bankState, bankSlots)}
}

// take carves n zeroed records. Arenas are built per batch and never
// recycled, so the slab is zero-valued by construction.
func (a *Arena) take(n int) []bankState {
	if a == nil || a.used+n > len(a.banks) {
		return make([]bankState, n)
	}
	s := a.banks[a.used : a.used+n : a.used+n]
	a.used += n
	return s
}

// NewChannel builds a channel for the given memory configuration.
func NewChannel(cfg config.Mem) *Channel { return NewChannelWith(cfg, nil) }

// NewChannelWith is NewChannel with the bank-state array carved from
// arena (nil behaves exactly like NewChannel).
func NewChannelWith(cfg config.Mem, arena *Arena) *Channel {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("dram: invalid config: %v", err))
	}
	subs := cfg.Org.Subarrays()
	nBanks := cfg.Org.RanksPerChan * cfg.Org.BanksPerRank * cfg.Org.NW * cfg.Org.NB * subs
	c := &Channel{
		cfg:     cfg,
		banks:   arena.take(nBanks),
		ranks:   make([]rankState, cfg.Org.RanksPerChan),
		subs:    subs,
		rankDiv: cfg.Org.BanksPerRank * cfg.Org.NW * cfg.Org.NB * subs,
	}
	// The activation-window scaling (tRRD/tFAW over activated bits, not
	// commands) is shared with the protocol sanitizer via config.
	scale := cfg.ActWindowScale()
	for r := range c.ranks {
		c.ranks[r].actWindow = make([]sim.Time, 4*scale)
	}
	c.tRRDEff = cfg.EffectiveTRRD()
	if cfg.Timing.TREFI > 0 {
		c.nextRefresh = cfg.Timing.TREFI
	} else {
		c.nextRefresh = sim.Never
	}
	return c
}

// Config returns the channel's memory configuration.
func (c *Channel) Config() config.Mem { return c.cfg }

// NumBanks returns the number of independently schedulable row buffers:
// (μ)banks times subarrays per bank in SALP mode.
func (c *Channel) NumBanks() int { return len(c.banks) }

// Subarrays returns the subarrays per (μ)bank (1 when SALP is off).
func (c *Channel) Subarrays() int { return c.subs }

// Energy returns a snapshot of accumulated energy.
func (c *Channel) Energy() Energy { return c.energy }

// SetTracer attaches a command tracer; events are labelled with the
// given channel index. A nil tracer disables tracing.
func (c *Channel) SetTracer(t obs.Tracer, channel int) {
	c.tracer = t
	c.chanID = channel
}

// AddTracer attaches one more tracer, fanning out with any tracer
// already set (obs.MultiTracer). Adding nil changes nothing.
func (c *Channel) AddTracer(t obs.Tracer, channel int) {
	c.tracer = obs.CombineTracers(c.tracer, t)
	c.chanID = channel
}

// Tracer returns the currently attached tracer (nil when tracing is
// off; possibly an obs.MultiTracer after AddTracer).
func (c *Channel) Tracer() obs.Tracer { return c.tracer }

// OpenBanks returns the number of banks currently holding an open row.
func (c *Channel) OpenBanks() int {
	n := 0
	for i := range c.banks {
		if c.banks[i].open {
			n++
		}
	}
	return n
}

// Open reports whether the bank's row buffer holds a row, and which.
func (c *Channel) Open(bank int) (bool, uint32) {
	b := &c.banks[bank]
	return b.open, b.row
}

func (c *Channel) rankOf(bank int) int {
	return bank / c.rankDiv
}

// actPrePJ returns the ACT+PRE pair energy for one μbank activation:
// the full-row energy scaled by the activated fraction 1/nW, plus the
// μbank latch update.
func (c *Channel) actPrePJ() float64 {
	return c.cfg.Energy.ActPre8KBPJ/float64(c.cfg.Org.NW) + c.cfg.Energy.LatchPJ
}

func (c *Channel) colPJ() (array, io float64) {
	bits := float64(c.cfg.Org.CacheLineBytes * 8)
	return bits * c.cfg.Energy.RDWRPJPerBit, bits * c.cfg.Energy.IOPJPerBit
}

// RefreshDue reports whether a refresh is pending at or before now.
func (c *Channel) RefreshDue(now sim.Time) bool { return now >= c.nextRefresh }

// MaybeRefresh performs a refresh if one is due. In the default
// all-bank mode every open bank must be allowed to precharge and the
// whole channel stalls for tRFC; in per-bank mode (LPDDR REFpb) a
// single conventional bank's μbanks are refreshed for tRFC/banks, and
// the refresh counter advances proportionally faster. It returns true
// if a refresh was performed. The controller calls this before
// scheduling commands.
func (c *Channel) MaybeRefresh(now sim.Time) bool {
	if now < c.nextRefresh {
		return false
	}
	if c.cfg.Timing.PerBankRefresh {
		return c.perBankRefresh(now)
	}
	for i := range c.banks {
		b := &c.banks[i]
		if b.open && now < b.preReady {
			return false // retry once the row may close
		}
	}
	for i := range c.banks {
		b := &c.banks[i]
		b.open = false
		b.actReady = maxT(b.actReady, now+c.cfg.Timing.TRFC)
	}
	c.energy.Refreshes++
	// One REF refreshes several rows in every bank; approximate its
	// energy as one full-row ACT/PRE per conventional bank.
	c.energy.RefreshPJ += c.cfg.Energy.ActPre8KBPJ * float64(c.cfg.Org.BanksPerRank)
	c.nextRefresh += c.cfg.Timing.TREFI
	if c.tracer != nil {
		// All-bank refresh addresses the whole channel: bank -1.
		c.tracer.TraceCmd(c.chanID, -1, obs.CmdREF, 0, now, now+c.cfg.Timing.TRFC)
	}
	return true
}

// perBankRefresh refreshes the μbanks of one conventional bank.
func (c *Channel) perBankRefresh(now sim.Time) bool {
	nb := c.cfg.Org.BanksPerRank * c.cfg.Org.RanksPerChan
	micro := c.cfg.Org.NW * c.cfg.Org.NB * c.subs
	lo := c.refBank * micro
	hi := lo + micro
	for i := lo; i < hi; i++ {
		b := &c.banks[i]
		if b.open && now < b.preReady {
			return false
		}
	}
	per := c.cfg.Timing.TRFC / sim.Time(nb)
	if per < sim.Nanosecond {
		per = sim.Nanosecond
	}
	for i := lo; i < hi; i++ {
		b := &c.banks[i]
		b.open = false
		b.actReady = maxT(b.actReady, now+per)
	}
	c.energy.Refreshes++
	c.energy.RefreshPJ += c.cfg.Energy.ActPre8KBPJ
	// Per-bank refreshes must run banks× as often to cover the device.
	c.nextRefresh += c.cfg.Timing.TREFI / sim.Time(nb)
	if c.tracer != nil {
		// Label the event with the first refreshed μbank of the group.
		c.tracer.TraceCmd(c.chanID, lo, obs.CmdREF, 0, now, now+per)
	}
	c.refBank = (c.refBank + 1) % nb
	return true
}

// NextRefreshAt returns the next refresh due time (sim.Never when
// refresh is disabled).
func (c *Channel) NextRefreshAt() sim.Time { return c.nextRefresh }

// EarliestACT returns the first instant >= now at which ACT may issue
// to the bank. The bank must be closed.
func (c *Channel) EarliestACT(bank int, now sim.Time) sim.Time {
	b := &c.banks[bank]
	if b.open {
		panic("dram: ACT to open bank")
	}
	t := maxT(now, b.actReady)
	r := &c.ranks[c.rankOf(bank)]
	if r.haveAct {
		t = maxT(t, r.lastAct+c.tRRDEff)
	}
	// Four-activate window, widened to 4*nW entries (see package doc).
	if r.actCount >= uint64(len(r.actWindow)) {
		t = maxT(t, r.actWindow[r.actHead]+c.cfg.Timing.TFAW)
	}
	return t
}

// IssueACT opens the row at time t (which must satisfy EarliestACT).
func (c *Channel) IssueACT(bank int, row uint32, t sim.Time) {
	b := &c.banks[bank]
	if e := c.EarliestACT(bank, t); t < e {
		panic(fmt.Sprintf("dram: ACT at %d before earliest %d", t, e))
	}
	if c.subs > 1 && int(row)%c.subs != bank%c.subs {
		panic(fmt.Sprintf("dram: ACT row %d to subarray slot %d (want %d)",
			row, bank%c.subs, int(row)%c.subs))
	}
	b.open = true
	b.row = row
	b.colReady = t + c.cfg.Timing.TRCD
	b.preReady = t + c.cfg.Timing.TRAS
	r := &c.ranks[c.rankOf(bank)]
	r.lastAct = t
	r.haveAct = true
	r.actWindow[r.actHead] = t
	r.actHead = (r.actHead + 1) % len(r.actWindow)
	r.actCount++
	c.energy.Acts++
	c.energy.ActPrePJ += c.actPrePJ()
	if c.tracer != nil {
		c.tracer.TraceCmd(c.chanID, bank, obs.CmdACT, row, t, t+c.cfg.Timing.TRCD)
	}
}

// EarliestPRE returns the first instant >= now at which the open bank
// may precharge.
func (c *Channel) EarliestPRE(bank int, now sim.Time) sim.Time {
	b := &c.banks[bank]
	if !b.open {
		panic("dram: PRE to closed bank")
	}
	return maxT(now, b.preReady)
}

// IssuePRE closes the bank's row at time t.
func (c *Channel) IssuePRE(bank int, t sim.Time) {
	b := &c.banks[bank]
	if e := c.EarliestPRE(bank, t); t < e {
		panic(fmt.Sprintf("dram: PRE at %d before earliest %d", t, e))
	}
	row := b.row
	b.open = false
	b.actReady = t + c.cfg.Timing.TRP
	c.energy.Pres++
	// ACT+PRE energy was charged at activate time (pair accounting).
	if c.tracer != nil {
		c.tracer.TraceCmd(c.chanID, bank, obs.CmdPRE, row, t, t+c.cfg.Timing.TRP)
	}
}

// EarliestCol returns the first instant >= now at which a column
// command (RD if !write, WR if write) may issue to the bank. The bank
// must be open; the caller is responsible for row-match checks.
func (c *Channel) EarliestCol(bank int, write bool, now sim.Time) sim.Time {
	b := &c.banks[bank]
	if !b.open {
		panic("dram: column command to closed bank")
	}
	tm := c.cfg.Timing
	t := maxT(now, b.colReady)
	// Command spacing on the shared command/column bus.
	if c.haveRd {
		t = maxT(t, c.lastRdCmd+tm.TCCD)
	}
	if c.haveWr {
		t = maxT(t, c.lastWrCmd+tm.TCCD)
	}
	// Bus turnaround penalties.
	if write {
		if c.haveRd {
			t = maxT(t, c.lastRdCmd+tm.TCCD+2*sim.Nanosecond) // RD→WR
		}
	} else if c.haveWr {
		t = maxT(t, c.lastWrCmd+tm.TCCD+tm.TWTR) // WR→RD
	}
	// Rank-to-rank data-bus switch: consecutive column accesses to
	// different ranks need a bus gap (multi-rank DIMMs only).
	if (c.haveRd || c.haveWr) && c.rankOf(bank) != c.lastColRank {
		last := c.lastRdCmd
		if c.lastWrCmd > last {
			last = c.lastWrCmd
		}
		t = maxT(t, last+tm.TCCD+tm.TRTRS)
	}
	// Data-bus slot: data occupies [t+tAA, t+tAA+tBL).
	if c.busFreeAt > t+tm.TAA {
		t = c.busFreeAt - tm.TAA
	}
	return t
}

// IssueRD issues a read at time t and returns when the cache line has
// fully arrived at the controller.
func (c *Channel) IssueRD(bank int, t sim.Time) (dataDone sim.Time) {
	if e := c.EarliestCol(bank, false, t); t < e {
		panic(fmt.Sprintf("dram: RD at %d before earliest %d", t, e))
	}
	b := &c.banks[bank]
	tm := c.cfg.Timing
	c.lastRdCmd = t
	c.haveRd = true
	c.lastColRank = c.rankOf(bank)
	c.busFreeAt = t + tm.TAA + tm.TBL
	b.preReady = maxT(b.preReady, t+tm.TRTP)
	c.energy.Reads++
	array, io := c.colPJ()
	c.energy.RdWrPJ += array
	c.energy.IOPJ += io
	if c.tracer != nil {
		c.tracer.TraceCmd(c.chanID, bank, obs.CmdRD, b.row, t, t+tm.TAA+tm.TBL)
	}
	return t + tm.TAA + tm.TBL
}

// IssueWR issues a write at time t and returns when the write data has
// been absorbed by the array (the controller may retire the request
// earlier; writes are posted).
func (c *Channel) IssueWR(bank int, t sim.Time) (done sim.Time) {
	if e := c.EarliestCol(bank, true, t); t < e {
		panic(fmt.Sprintf("dram: WR at %d before earliest %d", t, e))
	}
	b := &c.banks[bank]
	tm := c.cfg.Timing
	c.lastWrCmd = t
	c.haveWr = true
	c.lastColRank = c.rankOf(bank)
	c.busFreeAt = t + tm.TAA + tm.TBL
	b.preReady = maxT(b.preReady, t+tm.TAA+tm.TBL+tm.TWR)
	c.energy.Writes++
	array, io := c.colPJ()
	c.energy.RdWrPJ += array
	c.energy.IOPJ += io
	if c.tracer != nil {
		c.tracer.TraceCmd(c.chanID, bank, obs.CmdWR, b.row, t, t+tm.TAA+tm.TBL)
	}
	return t + tm.TAA + tm.TBL
}

// CountRowOutcome records the row-buffer outcome for one request: hit
// (open row matches), miss (bank closed), or conflict (other row open).
func (c *Channel) CountRowOutcome(bank int, row uint32) {
	b := &c.banks[bank]
	switch {
	case b.open && b.row == row:
		c.RowHits++
	case !b.open:
		c.RowMisses++
	default:
		c.RowConflicts++
	}
}

// BusFreeAt returns the end of the last data-bus reservation.
func (c *Channel) BusFreeAt() sim.Time { return c.busFreeAt }

func maxT(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}
