package dram

import (
	"testing"

	"microbank/internal/config"
	"microbank/internal/sim"
)

func TestNoActWindowScaling(t *testing.T) {
	m := mem(8, 1)
	m.Timing.NoActWindowScaling = true
	c := NewChannel(m)
	// Without scaling, μbank activates obey the full 6→4ns... the TSI
	// preset's tRRD applies unscaled.
	c.IssueACT(0, 1, 0)
	want := m.Timing.TRRD
	if got := c.EarliestACT(1, 0); got != want {
		t.Fatalf("unscaled ACT spacing = %d, want tRRD=%d", got, want)
	}
	// And the four-activate window stays at 4 entries.
	var at sim.Time
	c2 := NewChannel(m)
	for i := 0; i < 4; i++ {
		at = c2.EarliestACT(i, at)
		c2.IssueACT(i, 1, at)
	}
	if fifth := c2.EarliestACT(4, at); fifth < m.Timing.TFAW {
		t.Fatalf("5th ACT at %d despite unscaled window (tFAW=%d)", fifth, m.Timing.TFAW)
	}
}

func TestRankToRankSwitchPenalty(t *testing.T) {
	m := config.MemPreset(config.DDR3PCB, 1, 1) // 2 ranks
	m.Org.Channels = 1
	m.Timing.TREFI = 0
	m.Timing.TRFC = 0
	c := NewChannel(m)
	tm := m.Timing
	// Bank 0 is rank 0; bank 8 is rank 1 (8 banks per rank).
	c.IssueACT(0, 1, 0)
	c.IssueACT(8, 1, c.EarliestACT(8, 0))
	rd0 := c.EarliestCol(0, false, 0)
	c.IssueRD(0, rd0)
	// Same-rank follow-up: limited by tCCD (plus bus).
	same := c.EarliestCol(0, false, rd0)
	// Cross-rank follow-up: must additionally pay tRTRS.
	cross := c.EarliestCol(8, false, rd0)
	if cross < same+tm.TRTRS {
		t.Fatalf("cross-rank RD at %d, same-rank at %d; want ≥ +tRTRS (%d)",
			cross, same, tm.TRTRS)
	}
	// Single-rank devices never pay the penalty.
	m1 := mem(1, 1)
	c1 := NewChannel(m1)
	c1.IssueACT(0, 1, 0)
	c1.IssueACT(1, 1, c1.EarliestACT(1, 0))
	r0 := c1.EarliestCol(0, false, 0)
	c1.IssueRD(0, r0)
	if got := c1.EarliestCol(1, false, r0); got != r0+m1.Timing.TCCD {
		t.Fatalf("single-rank spacing = %d, want tCCD only (%d)", got-r0, m1.Timing.TCCD)
	}
}

func TestTSIPresetsRelaxActWindows(t *testing.T) {
	pcb := config.MemPreset(config.DDR3PCB, 1, 1).Timing
	tsi := config.MemPreset(config.LPDDRTSI, 1, 1).Timing
	if tsi.TRRD >= pcb.TRRD || tsi.TFAW >= pcb.TFAW {
		t.Fatalf("TSI activation windows not relaxed: tRRD %d vs %d, tFAW %d vs %d",
			tsi.TRRD, pcb.TRRD, tsi.TFAW, pcb.TFAW)
	}
}

func TestPerBankRefresh(t *testing.T) {
	m := config.MemPreset(config.LPDDRTSI, 2, 2)
	m.Timing.PerBankRefresh = true
	c := NewChannel(m)
	tm := m.Timing
	// First per-bank refresh fires at tREFI and blocks only bank 0's
	// μbanks, for tRFC/banks.
	if c.MaybeRefresh(tm.TREFI - 1) {
		t.Fatal("early refresh")
	}
	if !c.MaybeRefresh(tm.TREFI) {
		t.Fatal("refresh did not fire")
	}
	per := tm.TRFC / 8
	if got := c.EarliestACT(0, tm.TREFI); got != tm.TREFI+per {
		t.Fatalf("bank 0 ACT = %d, want +tRFC/8 = %d", got, tm.TREFI+per)
	}
	// μbanks of other conventional banks are unaffected.
	micro := m.Org.NW * m.Org.NB
	if got := c.EarliestACT(micro, tm.TREFI); got != tm.TREFI+c.tRRDEff*0 {
		if got > tm.TREFI {
			t.Fatalf("bank 1 blocked by bank-0 refresh: %d", got)
		}
	}
	// The next refresh is due tREFI/banks later (rotating bank 1).
	want := tm.TREFI + tm.TREFI/8
	if c.NextRefreshAt() != want {
		t.Fatalf("next refresh = %d, want %d", c.NextRefreshAt(), want)
	}
	if !c.MaybeRefresh(want) {
		t.Fatal("second per-bank refresh did not fire")
	}
	if got := c.EarliestACT(micro, want); got != want+per {
		t.Fatalf("bank 1 ACT after its refresh = %d, want %d", got, want+per)
	}
}
