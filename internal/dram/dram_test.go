package dram

import (
	"math/rand"
	"testing"
	"testing/quick"

	"microbank/internal/config"
	"microbank/internal/sim"
)

func mem(nW, nB int) config.Mem {
	m := config.MemPreset(config.LPDDRTSI, nW, nB)
	m.Timing.TREFI = 0 // most tests disable refresh for determinism
	m.Timing.TRFC = 0
	return m
}

const ns = sim.Nanosecond

func TestCmdString(t *testing.T) {
	for c, want := range map[Cmd]string{CmdACT: "ACT", CmdRD: "RD", CmdWR: "WR", CmdPRE: "PRE", CmdREF: "REF", Cmd(9): "Cmd(9)"} {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(c), got, want)
		}
	}
}

func TestChannelShape(t *testing.T) {
	c := NewChannel(mem(2, 4))
	want := 1 * 8 * 2 * 4 // ranks * banks * nW * nB
	if c.NumBanks() != want {
		t.Fatalf("NumBanks = %d, want %d", c.NumBanks(), want)
	}
}

func TestNewChannelRejectsInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config accepted")
		}
	}()
	m := mem(1, 1)
	m.Org.NW = 3
	NewChannel(m)
}

func TestActivateReadPrechargeTiming(t *testing.T) {
	c := NewChannel(mem(1, 1))
	tm := c.Config().Timing

	if got := c.EarliestACT(0, 0); got != 0 {
		t.Fatalf("fresh bank EarliestACT = %d, want 0", got)
	}
	c.IssueACT(0, 42, 0)
	open, row := c.Open(0)
	if !open || row != 42 {
		t.Fatalf("bank not open at row 42: %v %d", open, row)
	}
	// Column command must wait tRCD.
	if got := c.EarliestCol(0, false, 0); got != tm.TRCD {
		t.Fatalf("EarliestCol = %d, want tRCD=%d", got, tm.TRCD)
	}
	done := c.IssueRD(0, tm.TRCD)
	if want := tm.TRCD + tm.TAA + tm.TBL; done != want {
		t.Fatalf("read data done = %d, want %d", done, want)
	}
	// PRE must wait tRAS from ACT.
	if got := c.EarliestPRE(0, 0); got != tm.TRAS {
		t.Fatalf("EarliestPRE = %d, want tRAS=%d", got, tm.TRAS)
	}
	c.IssuePRE(0, tm.TRAS)
	if open, _ := c.Open(0); open {
		t.Fatal("bank still open after PRE")
	}
	// Next ACT waits tRP.
	if got := c.EarliestACT(0, tm.TRAS); got != tm.TRAS+tm.TRP {
		t.Fatalf("re-ACT = %d, want tRAS+tRP=%d", got, tm.TRAS+tm.TRP)
	}
}

func TestLateReadExtendsPrecharge(t *testing.T) {
	c := NewChannel(mem(1, 1))
	tm := c.Config().Timing
	c.IssueACT(0, 1, 0)
	// Read issued just before tRAS expiry extends preReady via tRTP.
	rdAt := tm.TRAS - 2*ns
	c.IssueRD(0, rdAt)
	if got := c.EarliestPRE(0, rdAt); got != rdAt+tm.TRTP {
		t.Fatalf("EarliestPRE = %d, want rd+tRTP=%d", got, rdAt+tm.TRTP)
	}
}

func TestWriteRecovery(t *testing.T) {
	c := NewChannel(mem(1, 1))
	tm := c.Config().Timing
	c.IssueACT(0, 1, 0)
	wrAt := c.EarliestCol(0, true, 0)
	c.IssueWR(0, wrAt)
	wantPre := wrAt + tm.TAA + tm.TBL + tm.TWR
	if got := c.EarliestPRE(0, wrAt); got != wantPre {
		t.Fatalf("EarliestPRE after WR = %d, want %d", got, wantPre)
	}
}

func TestDataBusSerializesReads(t *testing.T) {
	c := NewChannel(mem(1, 1))
	tm := c.Config().Timing
	c.IssueACT(0, 1, 0)
	c.IssueACT(1, 1, c.EarliestACT(1, 0))
	t1 := c.EarliestCol(0, false, 0)
	d1 := c.IssueRD(0, t1)
	t2 := c.EarliestCol(1, false, t1)
	if t2 < t1+tm.TCCD {
		t.Fatalf("second RD at %d violates tCCD after %d", t2, t1)
	}
	d2 := c.IssueRD(1, t2)
	if d2 < d1+tm.TBL {
		t.Fatalf("data bursts overlap: %d then %d (tBL=%d)", d1, d2, tm.TBL)
	}
}

func TestWriteToReadTurnaround(t *testing.T) {
	c := NewChannel(mem(1, 1))
	tm := c.Config().Timing
	c.IssueACT(0, 1, 0)
	wrAt := c.EarliestCol(0, true, 0)
	c.IssueWR(0, wrAt)
	rdAt := c.EarliestCol(0, false, wrAt)
	if rdAt < wrAt+tm.TCCD+tm.TWTR {
		t.Fatalf("WR→RD at %d, want >= %d", rdAt, wrAt+tm.TCCD+tm.TWTR)
	}
}

func TestColToClosedBankPanics(t *testing.T) {
	c := NewChannel(mem(1, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.EarliestCol(0, false, 0)
}

func TestActToOpenBankPanics(t *testing.T) {
	c := NewChannel(mem(1, 1))
	c.IssueACT(0, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.EarliestACT(0, 0)
}

func TestEarlyIssuePanics(t *testing.T) {
	c := NewChannel(mem(1, 1))
	c.IssueACT(0, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.IssueRD(0, 0) // before tRCD
}

func TestTRRDBetweenBanks(t *testing.T) {
	c := NewChannel(mem(1, 1))
	tm := c.Config().Timing
	c.IssueACT(0, 1, 0)
	if got := c.EarliestACT(1, 0); got != tm.TRRD {
		t.Fatalf("second ACT = %d, want tRRD=%d", got, tm.TRRD)
	}
}

func TestTRRDScalesWithNW(t *testing.T) {
	c := NewChannel(mem(8, 1))
	c.IssueACT(0, 1, 0)
	// tRRD 6ns / 8 floors at 1ns.
	if got := c.EarliestACT(1, 0); got != 1*ns {
		t.Fatalf("μbank ACT spacing = %d, want 1ns floor", got)
	}
}

func TestFourActivateWindow(t *testing.T) {
	c := NewChannel(mem(1, 1))
	tm := c.Config().Timing
	var at sim.Time
	for i := 0; i < 4; i++ {
		at = c.EarliestACT(i, at)
		c.IssueACT(i, 1, at)
	}
	fifth := c.EarliestACT(4, at)
	if fifth < tm.TFAW {
		t.Fatalf("5th ACT at %d, want >= tFAW=%d", fifth, tm.TFAW)
	}
}

func TestFAWWidensWithNW(t *testing.T) {
	// With nW=4 each activation opens a quarter row, so 16 activates
	// fit in one window.
	c := NewChannel(mem(4, 4))
	tm := c.Config().Timing
	var at sim.Time
	for i := 0; i < 16; i++ {
		at = c.EarliestACT(i, at)
		c.IssueACT(i, 1, at)
	}
	if at >= tm.TFAW {
		t.Fatalf("16 μbank ACTs took %d, should fit within tFAW=%d", at, tm.TFAW)
	}
	next := c.EarliestACT(16, at)
	if next < tm.TFAW {
		t.Fatalf("17th ACT at %d, want >= tFAW", next)
	}
}

func TestEnergyAccounting(t *testing.T) {
	c := NewChannel(mem(1, 1))
	c.IssueACT(0, 1, 0)
	c.IssueRD(0, c.EarliestCol(0, false, 0))
	e := c.Energy()
	if e.Acts != 1 || e.Reads != 1 {
		t.Fatalf("counts = %+v", e)
	}
	// Full 8 KB row: 30 nJ = 30000 pJ (+latch).
	if e.ActPrePJ < 30000 || e.ActPrePJ > 30001 {
		t.Fatalf("ActPrePJ = %v, want ~30000", e.ActPrePJ)
	}
	// 64 B line: 512 b × 4 pJ/b = 2048 pJ each for array and I/O.
	if e.RdWrPJ != 2048 || e.IOPJ != 2048 {
		t.Fatalf("RdWr/IO = %v/%v, want 2048/2048", e.RdWrPJ, e.IOPJ)
	}
	if tot := e.TotalPJ(); tot <= e.ActPrePJ {
		t.Fatalf("TotalPJ = %v", tot)
	}
}

func TestActEnergyScalesWithNW(t *testing.T) {
	for _, nW := range []int{1, 2, 4, 8, 16} {
		c := NewChannel(mem(nW, 1))
		c.IssueACT(0, 1, 0)
		e := c.Energy()
		want := 30000.0/float64(nW) + c.Config().Energy.LatchPJ
		if diff := e.ActPrePJ - want; diff < -0.01 || diff > 0.01 {
			t.Errorf("nW=%d: ActPrePJ = %v, want %v", nW, e.ActPrePJ, want)
		}
	}
}

func TestRowOutcomeCounters(t *testing.T) {
	c := NewChannel(mem(1, 1))
	c.CountRowOutcome(0, 5) // closed → miss
	c.IssueACT(0, 5, 0)
	c.CountRowOutcome(0, 5) // open same → hit
	c.CountRowOutcome(0, 9) // open other → conflict
	if c.RowMisses != 1 || c.RowHits != 1 || c.RowConflicts != 1 {
		t.Fatalf("outcomes = %d/%d/%d", c.RowHits, c.RowMisses, c.RowConflicts)
	}
}

func TestRefresh(t *testing.T) {
	m := config.MemPreset(config.LPDDRTSI, 1, 1)
	c := NewChannel(m)
	tm := m.Timing
	if c.MaybeRefresh(0) {
		t.Fatal("refresh fired before tREFI")
	}
	if c.RefreshDue(tm.TREFI - 1) {
		t.Fatal("RefreshDue early")
	}
	if !c.MaybeRefresh(tm.TREFI) {
		t.Fatal("refresh did not fire at tREFI")
	}
	if got := c.EarliestACT(0, tm.TREFI); got != tm.TREFI+tm.TRFC {
		t.Fatalf("post-refresh ACT = %d, want +tRFC = %d", got, tm.TREFI+tm.TRFC)
	}
	if c.Energy().Refreshes != 1 {
		t.Fatal("refresh not counted")
	}
	if c.NextRefreshAt() != 2*tm.TREFI {
		t.Fatalf("next refresh = %d", c.NextRefreshAt())
	}
}

func TestRefreshWaitsForOpenRow(t *testing.T) {
	m := config.MemPreset(config.LPDDRTSI, 1, 1)
	c := NewChannel(m)
	tm := m.Timing
	// Open a row just before refresh is due; tRAS hasn't elapsed, so
	// the refresh must be deferred.
	c.IssueACT(0, 1, tm.TREFI-1*ns)
	if c.MaybeRefresh(tm.TREFI) {
		t.Fatal("refresh fired while a row could not be precharged")
	}
	// After tRAS the refresh can proceed and closes the row.
	at := tm.TREFI - 1*ns + tm.TRAS
	if !c.MaybeRefresh(at) {
		t.Fatal("refresh still blocked after tRAS")
	}
	if open, _ := c.Open(0); open {
		t.Fatal("refresh left a row open")
	}
}

// Property: for random command sequences the channel never lets two
// data bursts overlap and row state stays consistent with issued
// commands.
func TestRandomCommandSequenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewChannel(mem(2, 2))
		type busSlot struct{ start, end sim.Time }
		var slots []busSlot
		now := sim.Time(0)
		tm := c.Config().Timing
		for step := 0; step < 300; step++ {
			bank := rng.Intn(c.NumBanks())
			open, _ := c.Open(bank)
			if !open {
				at := c.EarliestACT(bank, now)
				c.IssueACT(bank, uint32(rng.Intn(64)), at)
				now = at
				continue
			}
			switch rng.Intn(3) {
			case 0:
				at := c.EarliestCol(bank, false, now)
				done := c.IssueRD(bank, at)
				slots = append(slots, busSlot{at + tm.TAA, done})
				now = at
			case 1:
				at := c.EarliestCol(bank, true, now)
				done := c.IssueWR(bank, at)
				slots = append(slots, busSlot{at + tm.TAA, done})
				now = at
			default:
				at := c.EarliestPRE(bank, now)
				c.IssuePRE(bank, at)
				now = at
			}
		}
		for i := 1; i < len(slots); i++ {
			if slots[i].start < slots[i-1].end {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: earliest-issue times are monotone in `now`.
func TestEarliestMonotoneProperty(t *testing.T) {
	f := func(seed int64, d1, d2 uint32) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewChannel(mem(1, 2))
		c.IssueACT(0, 1, 0)
		c.IssueRD(0, c.EarliestCol(0, false, 0))
		a := sim.Time(d1 % 100000)
		b := a + sim.Time(d2%100000)
		_ = rng
		return c.EarliestCol(0, false, a) <= c.EarliestCol(0, false, b) &&
			c.EarliestPRE(0, a) <= c.EarliestPRE(0, b) &&
			c.EarliestACT(1, a) <= c.EarliestACT(1, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
