// Package dramarea is the analytic DRAM die area and access-energy
// model for μbank partitioning, reproducing Fig. 6 of the paper.
//
// The paper derives its area numbers from a modified CACTI-3DD with a
// 28 nm process, 3 metal layers, 0.5 μm global wire pitch, an 8 Gb /
// 80 mm² die, 16 banks in 2 channels, and 512 Mb banks laid out as
// 64×32 arrays of 512×512-cell mats. We rebuild the same structural
// cost terms:
//
//   - Row-address latches: partitioning a bank into nW×nB μbanks needs
//     one latch set per μbank between the global row predecoder and the
//     local row decoders (Fig. 4a), so latch area grows with nW·nB.
//   - Global-dataline multiplexers: each wordline-direction partition
//     adds a set of multiplexers that steer one μbank's global
//     datalines onto the shared global-dataline sense amplifiers
//     (Fig. 4b), growing with nW.
//   - A fixed mux stage between pairs of global datalines and each
//     sense amplifier appears as soon as nW > 1 (§IV-B: a column select
//     line picks 8 bitlines and a 2:1 mux feeds the GDSA).
//
// The three coefficients below are the calibrated area fractions of
// those structures relative to a 512 Mb bank; with them the model
// reproduces all 25 published grid cells of Fig. 6(a) to within ±0.001.
package dramarea

import (
	"fmt"

	"microbank/internal/config"
)

// Die geometry constants from §III-B and §IV-B of the paper.
const (
	DieGb          = 8    // die capacity, gigabits
	DieAreaMM2     = 80.0 // baseline die area
	BanksPerDie    = 16
	ChannelsPerDie = 2
	MatsPerBank    = 2048 // 64 × 32
	MatRows        = 512
	MatCols        = 512
	RowBytes       = 8 * 1024 // full-bank DRAM row (page)
	LineBytes      = 64
)

// Calibrated structural area fractions (relative to one bank).
const (
	// latchAreaFrac is the area of one μbank's row-address latch set.
	latchAreaFrac = 0.00098
	// muxAreaFrac is the per-wordline-partition global-dataline
	// multiplexer column.
	muxAreaFrac = 0.00102
	// wlMuxFixedFrac is the one-time 2:1 mux stage between global
	// datalines and the global-dataline sense amplifiers, needed as
	// soon as the wordline direction is partitioned.
	wlMuxFixedFrac = 0.002
)

// SSAAreaFactor is the relative die area of the single-subarray (SSA)
// configuration from §IV-A: activating one mat per cache line needs 512
// local datalines per mat and blows the die up 3.8× — the paper's
// argument for grouping mats into μbanks instead.
const SSAAreaFactor = 3.8

// RelativeArea returns the DRAM die area of an (nW, nB) μbank
// configuration relative to the unpartitioned (1,1) baseline
// (Fig. 6a). It panics if nW or nB is not a positive power of two.
func RelativeArea(nW, nB int) float64 {
	checkPartition(nW, nB)
	over := latchAreaFrac * float64(nW*nB-1)
	over += muxAreaFrac * float64(nW-1)
	if nW > 1 {
		over += wlMuxFixedFrac
	}
	return 1 + over
}

// AreaOverhead returns RelativeArea minus one (the fractional die-area
// cost of partitioning).
func AreaOverhead(nW, nB int) float64 { return RelativeArea(nW, nB) - 1 }

// DieAreaMM2For returns the absolute die area for a configuration.
func DieAreaMM2For(nW, nB int) float64 { return DieAreaMM2 * RelativeArea(nW, nB) }

// EnergyParams selects the interface energies used by the Fig. 6(b)
// energy-per-read model.
type EnergyParams struct {
	ActPre8KBPJ  float64 // full-row ACT+PRE energy, pJ
	RDWRPJPerBit float64
	IOPJPerBit   float64
	LatchPJ      float64 // per-activation latch update energy
}

// ParamsFrom extracts energy parameters from a memory configuration.
func ParamsFrom(m config.Mem) EnergyParams {
	return EnergyParams{
		ActPre8KBPJ:  m.Energy.ActPre8KBPJ,
		RDWRPJPerBit: m.Energy.RDWRPJPerBit,
		IOPJPerBit:   m.Energy.IOPJPerBit,
		LatchPJ:      m.Energy.LatchPJ,
	}
}

// DefaultEnergyParams returns the LPDDR-TSI Table I values the paper
// uses for Fig. 6(b).
func DefaultEnergyParams() EnergyParams {
	return ParamsFrom(config.MemPreset(config.LPDDRTSI, 1, 1))
}

// EnergyPerReadPJ returns the absolute energy of one 64 B read in an
// (nW, nB) configuration when the activate-to-column-command ratio is
// beta (β=1: every read pays a full ACT/PRE; β=0.1: the row is reused
// for ten column accesses).
//
// Wordline partitioning divides the activated row (and hence ACT/PRE
// energy) by nW. Bitline partitioning leaves the activated row size
// unchanged but multiplies latch state; the latch energy term models
// that second-order cost (§IV-B: "more latches dissipate power, but
// their impact on the overall energy is negligible").
func (p EnergyParams) EnergyPerReadPJ(nW, nB int, beta float64) float64 {
	checkPartition(nW, nB)
	if beta < 0 {
		panic("dramarea: negative beta")
	}
	bits := float64(LineBytes * 8)
	actPre := p.ActPre8KBPJ / float64(nW)
	latch := p.LatchPJ * float64(nW*nB)
	col := bits * (p.RDWRPJPerBit + p.IOPJPerBit)
	return beta*(actPre+latch) + col
}

// RelativeEnergy returns EnergyPerReadPJ normalized to the (1,1)
// configuration at the same β (Fig. 6b).
func (p EnergyParams) RelativeEnergy(nW, nB int, beta float64) float64 {
	return p.EnergyPerReadPJ(nW, nB, beta) / p.EnergyPerReadPJ(1, 1, beta)
}

// Breakdown is a per-bit energy decomposition for Fig. 1.
type Breakdown struct {
	CorePJb  float64 // ACT/PRE amortized per transferred bit
	RDWRPJb  float64
	IOPJb    float64
	TotalPJb float64
	Label    string
}

// Fig1Breakdown computes the pJ/b energy breakdown of one 64 B cache
// line transfer for the three systems of Fig. 1: the DDR3-PCB baseline,
// LPDDR-TSI without μbanks, and LPDDR-TSI with an (nW,nB) μbank
// configuration. beta is the activates-per-column-access ratio.
func Fig1Breakdown(m config.Mem, nW int, beta float64, label string) Breakdown {
	bits := float64(LineBytes * 8)
	actPrePerBit := beta * (m.Energy.ActPre8KBPJ / float64(nW)) / bits
	b := Breakdown{
		CorePJb: actPrePerBit,
		RDWRPJb: m.Energy.RDWRPJPerBit,
		IOPJb:   m.Energy.IOPJPerBit,
		Label:   label,
	}
	b.TotalPJb = b.CorePJb + b.RDWRPJb + b.IOPJb
	return b
}

// StandardPartitions returns the {1,2,4,8,16} axis used by Fig. 6,
// Fig. 8, and Fig. 9.
func StandardPartitions() []int { return []int{1, 2, 4, 8, 16} }

// RepresentativeConfigs returns the <3%-area-overhead configurations
// highlighted in Fig. 10/12/13: (1,1), (2,8), (4,4), (8,2).
func RepresentativeConfigs() [][2]int {
	return [][2]int{{1, 1}, {2, 8}, {4, 4}, {8, 2}}
}

func checkPartition(nW, nB int) {
	if !pow2(nW) || !pow2(nB) {
		panic(fmt.Sprintf("dramarea: nW=%d nB=%d must be positive powers of two", nW, nB))
	}
	if nW > MatRows || nB > MatCols {
		panic(fmt.Sprintf("dramarea: partitioning (%d,%d) exceeds mat grid", nW, nB))
	}
}

func pow2(v int) bool { return v > 0 && v&(v-1) == 0 }
