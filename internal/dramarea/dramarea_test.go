package dramarea

import (
	"math"
	"testing"
	"testing/quick"

	"microbank/internal/config"
)

// paperFig6a is the published relative-area grid, indexed
// [nB-index][nW-index] over the axis {1,2,4,8,16}.
var paperFig6a = [5][5]float64{
	{1.000, 1.004, 1.008, 1.015, 1.031},
	{1.001, 1.006, 1.012, 1.023, 1.047},
	{1.003, 1.010, 1.019, 1.039, 1.078},
	{1.007, 1.017, 1.035, 1.070, 1.142},
	{1.014, 1.033, 1.066, 1.132, 1.268},
}

func TestRelativeAreaMatchesPaperGrid(t *testing.T) {
	axis := StandardPartitions()
	for bi, nB := range axis {
		for wi, nW := range axis {
			got := RelativeArea(nW, nB)
			want := paperFig6a[bi][wi]
			if math.Abs(got-want) > 0.002 {
				t.Errorf("RelativeArea(%d,%d) = %.4f, paper %.3f", nW, nB, got, want)
			}
		}
	}
}

func TestAreaAnchors(t *testing.T) {
	if RelativeArea(1, 1) != 1.0 {
		t.Error("baseline not exactly 1")
	}
	// §IV-B: (16,16) costs 26.8%.
	if got := AreaOverhead(16, 16); math.Abs(got-0.268) > 0.003 {
		t.Errorf("(16,16) overhead = %.4f, want ~0.268", got)
	}
	// "for most of the other μbank configurations (nW·nB < 64) the
	// area overhead is under 5%".
	for _, nW := range StandardPartitions() {
		for _, nB := range StandardPartitions() {
			if nW*nB < 64 && AreaOverhead(nW, nB) >= 0.05 {
				t.Errorf("(%d,%d): overhead %.3f >= 5%% despite nW*nB<64", nW, nB, AreaOverhead(nW, nB))
			}
		}
	}
	// Representative configs of Fig. 10 were chosen for <3% overhead.
	for _, cfgPair := range RepresentativeConfigs() {
		if ov := AreaOverhead(cfgPair[0], cfgPair[1]); ov >= 0.03 {
			t.Errorf("representative (%d,%d) overhead %.3f >= 3%%", cfgPair[0], cfgPair[1], ov)
		}
	}
}

func TestAreaMonotone(t *testing.T) {
	axis := StandardPartitions()
	for _, nB := range axis {
		prev := 0.0
		for _, nW := range axis {
			a := RelativeArea(nW, nB)
			if a < prev {
				t.Errorf("area not monotone in nW at (%d,%d)", nW, nB)
			}
			prev = a
		}
	}
	for _, nW := range axis {
		prev := 0.0
		for _, nB := range axis {
			a := RelativeArea(nW, nB)
			if a < prev {
				t.Errorf("area not monotone in nB at (%d,%d)", nW, nB)
			}
			prev = a
		}
	}
}

func TestWordlinePartitionCostsMoreThanBitline(t *testing.T) {
	// At equal partition count, nW-partitioning costs extra routing.
	for _, n := range []int{2, 4, 8, 16} {
		if RelativeArea(n, 1) <= RelativeArea(1, n) {
			t.Errorf("area(%d,1)=%.4f should exceed area(1,%d)=%.4f",
				n, RelativeArea(n, 1), n, RelativeArea(1, n))
		}
	}
}

func TestSSAIsInfeasiblyLarge(t *testing.T) {
	// Sanity: all modeled μbank configs stay far below the 3.8× SSA.
	if RelativeArea(16, 16) >= SSAAreaFactor {
		t.Error("μbank area exceeds SSA")
	}
}

func TestPartitionValidation(t *testing.T) {
	for _, bad := range [][2]int{{3, 1}, {0, 1}, {1, -2}, {1024, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RelativeArea(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			RelativeArea(bad[0], bad[1])
		}()
	}
}

func TestEnergyPerRead(t *testing.T) {
	p := DefaultEnergyParams()
	// β=1, (1,1): 30 nJ ACT/PRE + 512 b × 8 pJ/b = 34096 pJ + latch.
	got := p.EnergyPerReadPJ(1, 1, 1.0)
	if math.Abs(got-34096.2) > 1 {
		t.Errorf("E(1,1,β=1) = %v pJ, want ~34096", got)
	}
	// nW=16 divides the ACT/PRE term by 16.
	got16 := p.EnergyPerReadPJ(16, 1, 1.0)
	want := 30000.0/16 + 4096
	if math.Abs(got16-want) > 10 {
		t.Errorf("E(16,1,β=1) = %v, want ~%v", got16, want)
	}
}

func TestRelativeEnergyShape(t *testing.T) {
	p := DefaultEnergyParams()
	// Energy decreases with nW...
	prev := math.Inf(1)
	for _, nW := range StandardPartitions() {
		e := p.RelativeEnergy(nW, 1, 1.0)
		if e >= prev {
			t.Errorf("relative energy not decreasing in nW: %v at nW=%d", e, nW)
		}
		prev = e
	}
	// ...is nearly flat in nB (latch-only growth)...
	delta := p.RelativeEnergy(1, 16, 1.0) - p.RelativeEnergy(1, 1, 1.0)
	if delta < 0 || delta > 0.01 {
		t.Errorf("nB sweep moved energy by %v, want tiny positive", delta)
	}
	// ...and the nW saving is larger at β=1 than at β=0.1 (§IV-B).
	savingHi := 1 - p.RelativeEnergy(16, 1, 1.0)
	savingLo := 1 - p.RelativeEnergy(16, 1, 0.1)
	if savingHi <= savingLo {
		t.Errorf("β=1 saving %v should exceed β=0.1 saving %v", savingHi, savingLo)
	}
	if p.RelativeEnergy(1, 1, 0.5) != 1 {
		t.Error("baseline relative energy != 1")
	}
}

func TestEnergyNegativeBetaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	DefaultEnergyParams().EnergyPerReadPJ(1, 1, -1)
}

func TestFig1Breakdown(t *testing.T) {
	pcb := Fig1Breakdown(config.MemPreset(config.DDR3PCB, 1, 1), 1, 1.0, "PCB (baseline)")
	tsi := Fig1Breakdown(config.MemPreset(config.LPDDRTSI, 1, 1), 1, 1.0, "TSI")
	ub := Fig1Breakdown(config.MemPreset(config.LPDDRTSI, 8, 1), 8, 1.0, "TSI+ubanks")

	// Fig. 1 anchor: PCB total is ~90-110 pJ/b (I/O 20 + RD 13 + core ~59).
	if pcb.IOPJb != 20 || pcb.RDWRPJb != 13 {
		t.Errorf("PCB I/O+RDWR = %v+%v, want 20+13", pcb.IOPJb, pcb.RDWRPJb)
	}
	if pcb.CorePJb < 50 || pcb.CorePJb > 70 {
		t.Errorf("PCB core pJ/b = %v, want ~58.6 (30nJ over 512b)", pcb.CorePJb)
	}
	// TSI cuts I/O to 4 pJ/b; core term then dominates the total.
	if tsi.IOPJb != 4 {
		t.Errorf("TSI I/O = %v", tsi.IOPJb)
	}
	if tsi.CorePJb/tsi.TotalPJb < 0.7 {
		t.Errorf("TSI core fraction = %v, want dominant (>0.7)", tsi.CorePJb/tsi.TotalPJb)
	}
	// μbanks re-balance: total drops well below TSI's.
	if ub.TotalPJb >= tsi.TotalPJb/2 {
		t.Errorf("μbank total %v not far below TSI total %v", ub.TotalPJb, tsi.TotalPJb)
	}
	if pcb.TotalPJb <= tsi.TotalPJb || tsi.TotalPJb <= ub.TotalPJb {
		t.Error("Fig. 1 ordering PCB > TSI > TSI+μbank violated")
	}
}

func TestDieAreaAbsolute(t *testing.T) {
	if DieAreaMM2For(1, 1) != 80.0 {
		t.Errorf("baseline die = %v mm², want 80", DieAreaMM2For(1, 1))
	}
	if got := DieAreaMM2For(16, 16); math.Abs(got-80*1.268) > 0.3 {
		t.Errorf("(16,16) die = %v mm², want ~101.4", got)
	}
}

// Property: area overhead is nonnegative, and energy is positive and
// ≤ baseline for any valid partitioning at any β ∈ [0,2].
func TestModelSanityProperty(t *testing.T) {
	p := DefaultEnergyParams()
	f := func(wExp, bExp uint8, betaRaw uint8) bool {
		nW := 1 << (wExp % 5)
		nB := 1 << (bExp % 5)
		beta := float64(betaRaw%200) / 100.0
		if AreaOverhead(nW, nB) < 0 {
			return false
		}
		e := p.EnergyPerReadPJ(nW, nB, beta)
		base := p.EnergyPerReadPJ(1, nB, beta)
		return e > 0 && e <= base+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
