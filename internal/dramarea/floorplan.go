package dramarea

// Floorplan-level accounting for the μbank organization (§IV-B). The
// top-level RelativeArea model charges three calibrated cost terms;
// this file derives the underlying structure counts — mats, wordline
// segments, global datalines, column select lines, and latch bits — so
// the cost terms can be cross-checked against the device geometry the
// paper specifies (512 Mb bank = 64×32 mats of 512×512 cells, 8 KB row,
// 64 B line, 3 metal layers, 0.5 μm global wire pitch).

import "fmt"

// Bank layout constants (§IV-B).
const (
	// MatRowsPerBank × MatColsPerBank = 2048 mats per 512 Mb bank.
	MatRowsPerBank = 64 // rows of mats along the bitline direction
	MatColsPerBank = 32 // columns of mats along the wordline direction
	// RowMats is how many mats one full 8 KB row activation spans: the
	// row provides 8 KB = 65536 bits; with 512 bits of a row in each
	// mat, 128 mats activate together — two physical mat rows.
	RowMats = RowBytes * 8 / MatCols
	// GlobalDatalinesPerBankBase is the baseline global dataline count:
	// a 64 B transfer moves 512 bits, each on its own global dataline,
	// and a column select line picks 8 bitlines per mat (§IV-B).
	GlobalDatalinesPerBankBase = LineBytes * 8
)

// Floorplan describes the per-bank structure counts of one (nW, nB)
// μbank configuration.
type Floorplan struct {
	NW, NB int

	// MicrobanksPerBank = nW × nB.
	MicrobanksPerBank int
	// MatsPerMicrobank is the mat count of one μbank tile.
	MatsPerMicrobank int
	// MicroRowMats is how many mats activate per μbank row (the paper's
	// energy argument: activation energy scales with this).
	MicroRowMats int
	// GlobalDatalines is the total global dataline count per bank: the
	// per-μbank dataline bundle is fixed at the column width, so the
	// total grows with nW (each wordline partition carries its own
	// bundle to the shared sense amplifiers).
	GlobalDatalines int
	// ColumnSelectLines per mat column: the number of selectable line
	// positions within one μbank row; it shrinks as rows shrink, which
	// is why the paper notes GDL+CSL wiring stays roughly constant
	// until nW = 16.
	ColumnSelectLines int
	// LatchBits is the row-address latch storage added per bank: one
	// latch set per μbank, wide enough to name a local wordline within
	// the μbank (the Fig. 4a structure).
	LatchBits int
}

// NewFloorplan computes the structure counts for a partitioning.
func NewFloorplan(nW, nB int) Floorplan {
	checkPartition(nW, nB)
	if nW > MatColsPerBank || nB > MatRowsPerBank {
		panic(fmt.Sprintf("dramarea: (%d,%d) partitions exceed the %d×%d mat grid",
			nW, nB, MatColsPerBank, MatRowsPerBank))
	}
	f := Floorplan{NW: nW, NB: nB}
	f.MicrobanksPerBank = nW * nB
	f.MatsPerMicrobank = MatsPerBank / f.MicrobanksPerBank
	f.MicroRowMats = RowMats / nW
	f.GlobalDatalines = GlobalDatalinesPerBankBase * nW
	// Lines per μbank row, selectable 8 bitlines at a time per mat.
	linesPerMicroRow := (RowBytes / nW) / LineBytes
	f.ColumnSelectLines = linesPerMicroRow
	// Rows per μbank: bank rows divided across nB partitions; the latch
	// must name one of them.
	rowsPerBank := MatRowsPerBank / 2 * MatRows // two mat-rows activate per row
	rowsPerMicro := rowsPerBank / nB
	f.LatchBits = f.MicrobanksPerBank * ceilLog2(rowsPerMicro)
	return f
}

// WirePerBankUnits returns the combined global-dataline and
// column-select wiring per bank in baseline units; §IV-B argues this
// sum stays roughly flat as nW grows (datalines grow, CSLs shrink)
// until the 16-way point.
func (f Floorplan) WirePerBankUnits() int {
	return f.GlobalDatalines + f.ColumnSelectLines*4 // CSL pitch ≈ 4× GDL pitch share
}

// ActivatedCellsPerACT returns how many DRAM cells one activate opens —
// the quantity ACT/PRE energy is proportional to.
func (f Floorplan) ActivatedCellsPerACT() int {
	return f.MicroRowMats * MatCols // one local wordline per activated mat
}

// SSA describes the single-subarray alternative the paper rejects
// (§IV-A): one mat supplies a whole cache line, needing 512 local
// datalines per mat and blowing up the die 3.8×.
type SSA struct {
	LocalDatalinesPerMat int
	AreaFactor           float64
}

// SSAConfig returns the rejected single-subarray design point.
func SSAConfig() SSA {
	return SSA{LocalDatalinesPerMat: LineBytes * 8, AreaFactor: SSAAreaFactor}
}

func ceilLog2(v int) int {
	if v <= 1 {
		return 0
	}
	n := 0
	for x := v - 1; x > 0; x >>= 1 {
		n++
	}
	return n
}
