package dramarea

import (
	"testing"
	"testing/quick"
)

func TestFloorplanBaseline(t *testing.T) {
	f := NewFloorplan(1, 1)
	if f.MicrobanksPerBank != 1 || f.MatsPerMicrobank != 2048 {
		t.Fatalf("baseline tile = %+v", f)
	}
	// A full 8 KB row spans 128 mats (two mat rows), per §IV-B.
	if f.MicroRowMats != 128 {
		t.Fatalf("row mats = %d, want 128", f.MicroRowMats)
	}
	if RowMats != 128 {
		t.Fatalf("RowMats constant = %d", RowMats)
	}
	// 512 global datalines move one 64 B line.
	if f.GlobalDatalines != 512 {
		t.Fatalf("GDLs = %d", f.GlobalDatalines)
	}
	// 128 selectable lines per 8 KB row.
	if f.ColumnSelectLines != 128 {
		t.Fatalf("CSLs = %d", f.ColumnSelectLines)
	}
}

func TestFloorplanPartitioning(t *testing.T) {
	f := NewFloorplan(4, 2)
	if f.MicrobanksPerBank != 8 || f.MatsPerMicrobank != 256 {
		t.Fatalf("(4,2) = %+v", f)
	}
	// nW=4 quarters the activated mats.
	if f.MicroRowMats != 32 {
		t.Fatalf("activated mats = %d, want 32", f.MicroRowMats)
	}
	// Datalines scale with nW; CSLs shrink with nW.
	if f.GlobalDatalines != 2048 {
		t.Fatalf("GDLs = %d", f.GlobalDatalines)
	}
	if f.ColumnSelectLines != 32 {
		t.Fatalf("CSLs = %d", f.ColumnSelectLines)
	}
	if f.LatchBits == 0 {
		t.Fatal("no latch bits")
	}
}

func TestActivatedCellsDriveEnergyModel(t *testing.T) {
	// The floorplan's activated-cell count must scale exactly like the
	// energy model's ACT/PRE term: ∝ 1/nW, independent of nB.
	base := NewFloorplan(1, 1).ActivatedCellsPerACT()
	for _, nW := range StandardPartitions() {
		for _, nB := range []int{1, 4, 16} {
			got := NewFloorplan(nW, nB).ActivatedCellsPerACT()
			if got*nW != base {
				t.Errorf("(%d,%d): activated cells %d × nW != baseline %d", nW, nB, got, base)
			}
		}
	}
}

func TestWirePerBankRoughlyFlatUntil16(t *testing.T) {
	// §IV-B: the GDL+CSL sum per bank "does not increase ... until 16"
	// — CSL reduction compensates dataline growth at small nW.
	base := NewFloorplan(1, 1).WirePerBankUnits()
	for _, nW := range []int{2, 4} {
		w := NewFloorplan(nW, 1).WirePerBankUnits()
		if w > base*3 {
			t.Errorf("nW=%d wiring %d far above baseline %d", nW, w, base)
		}
	}
	w16 := NewFloorplan(16, 1).WirePerBankUnits()
	if w16 <= NewFloorplan(4, 1).WirePerBankUnits() {
		t.Error("wiring should grow by nW=16")
	}
}

func TestLatchBitsGrowWithPartitioning(t *testing.T) {
	prev := 0
	for _, n := range StandardPartitions() {
		f := NewFloorplan(n, n)
		if f.LatchBits <= prev {
			t.Fatalf("latch bits not growing: %d at (%d,%d)", f.LatchBits, n, n)
		}
		prev = f.LatchBits
	}
}

func TestFloorplanBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for oversize partitioning")
		}
	}()
	NewFloorplan(64, 1) // only 32 mat columns
}

func TestSSAConfig(t *testing.T) {
	s := SSAConfig()
	if s.LocalDatalinesPerMat != 512 {
		t.Fatalf("SSA datalines = %d, want 512 (§IV-A)", s.LocalDatalinesPerMat)
	}
	if s.AreaFactor != 3.8 {
		t.Fatalf("SSA area = %v, want 3.8", s.AreaFactor)
	}
}

// Property: tile decomposition conserves mats and cells for all valid
// partitionings.
func TestFloorplanConservationProperty(t *testing.T) {
	f := func(wExp, bExp uint8) bool {
		nW := 1 << (wExp % 6) // up to 32
		nB := 1 << (bExp % 7) // up to 64
		fp := NewFloorplan(nW, nB)
		return fp.MatsPerMicrobank*fp.MicrobanksPerBank == MatsPerBank &&
			fp.ActivatedCellsPerACT()*nW == RowMats*MatCols
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for in, want := range cases {
		if got := ceilLog2(in); got != want {
			t.Errorf("ceilLog2(%d) = %d, want %d", in, got, want)
		}
	}
}
