// Package energy aggregates system energy the way the paper's
// evaluation reports it (Figs. 1, 10, 14): a power breakdown over
// {Processor, ACT/PRE, DRAM static, RD/WR, I/O} plus the energy-delay
// product used for every 1/EDP figure.
package energy

import (
	"microbank/internal/dram"
	"microbank/internal/sim"
)

// Breakdown is the paper's power decomposition for one run.
type Breakdown struct {
	RuntimePS float64

	ProcessorPJ  float64
	ActPrePJ     float64 // includes refresh energy (activation class)
	DRAMStaticPJ float64
	RdWrPJ       float64
	IOPJ         float64
}

// Compute builds a breakdown from run outputs.
//
//	instructions — total committed instructions (all cores)
//	corePJPerOp  — McPAT-derived core energy per operation (§III-B)
//	dramTotals   — summed channel energy counters
//	staticMW     — DRAM background power across all ranks, milliwatts
//	runtime      — simulated wall time
func Compute(instructions uint64, corePJPerOp float64, dramTotals dram.Energy,
	staticMW float64, runtime sim.Time) Breakdown {
	rt := float64(runtime)
	return Breakdown{
		RuntimePS:    rt,
		ProcessorPJ:  float64(instructions) * corePJPerOp,
		ActPrePJ:     dramTotals.ActPrePJ + dramTotals.RefreshPJ + dramTotals.LatchPJ,
		DRAMStaticPJ: staticMW * 1e-3 * rt, // mW × ps = 1e-3 pJ/ps × ps
		RdWrPJ:       dramTotals.RdWrPJ,
		IOPJ:         dramTotals.IOPJ,
	}
}

// TotalPJ returns total system energy.
func (b Breakdown) TotalPJ() float64 {
	return b.ProcessorPJ + b.ActPrePJ + b.DRAMStaticPJ + b.RdWrPJ + b.IOPJ
}

// MemoryPJ returns main-memory energy only.
func (b Breakdown) MemoryPJ() float64 {
	return b.ActPrePJ + b.DRAMStaticPJ + b.RdWrPJ + b.IOPJ
}

// watts converts an energy share to average power over the runtime.
func (b Breakdown) watts(pj float64) float64 {
	if b.RuntimePS == 0 {
		return 0
	}
	return pj / b.RuntimePS // pJ / ps == W
}

// ProcessorW returns average processor power.
func (b Breakdown) ProcessorW() float64 { return b.watts(b.ProcessorPJ) }

// ActPreW returns average activate/precharge power.
func (b Breakdown) ActPreW() float64 { return b.watts(b.ActPrePJ) }

// DRAMStaticW returns average DRAM background power.
func (b Breakdown) DRAMStaticW() float64 { return b.watts(b.DRAMStaticPJ) }

// RdWrW returns average DRAM array read/write power.
func (b Breakdown) RdWrW() float64 { return b.watts(b.RdWrPJ) }

// IOW returns average interface I/O power.
func (b Breakdown) IOW() float64 { return b.watts(b.IOPJ) }

// TotalW returns average total power.
func (b Breakdown) TotalW() float64 { return b.watts(b.TotalPJ()) }

// ActPreShareOfMemory returns ACT/PRE power as a fraction of memory
// power (the §VI-D "76.2% for mix-high" metric).
func (b Breakdown) ActPreShareOfMemory() float64 {
	m := b.MemoryPJ()
	if m == 0 {
		return 0
	}
	return b.ActPrePJ / m
}

// EDPJs returns the energy-delay product in joule-seconds.
func (b Breakdown) EDPJs() float64 {
	return b.TotalPJ() * 1e-12 * b.RuntimePS * 1e-12
}

// RelInvEDP returns this run's 1/EDP relative to a baseline (higher is
// better, matching Figs. 9, 10, 12, 14).
func RelInvEDP(baseline, b Breakdown) float64 {
	e := b.EDPJs()
	if e == 0 {
		return 0
	}
	return baseline.EDPJs() / e
}
