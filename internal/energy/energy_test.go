package energy

import (
	"math"
	"testing"
	"testing/quick"

	"microbank/internal/dram"
	"microbank/internal/sim"
)

func sample() Breakdown {
	d := dram.Energy{ActPrePJ: 3_000_000, RdWrPJ: 1_000_000, IOPJ: 1_000_000, RefreshPJ: 100_000, LatchPJ: 1_000}
	return Compute(1_000_000, 200, d, 100, sim.Time(1e9)) // 1 ms runtime, 100 mW static
}

func TestComputeBreakdown(t *testing.T) {
	b := sample()
	if b.ProcessorPJ != 200_000_000 {
		t.Errorf("processor = %v pJ", b.ProcessorPJ)
	}
	if b.ActPrePJ != 3_101_000 {
		t.Errorf("actpre = %v pJ (refresh+latch folded in)", b.ActPrePJ)
	}
	// 100 mW × 1e9 ps = 0.1 W × 1 ms = 0.1 mJ = 1e8 pJ.
	if math.Abs(b.DRAMStaticPJ-1e8) > 1 {
		t.Errorf("static = %v pJ, want 1e8", b.DRAMStaticPJ)
	}
	total := b.ProcessorPJ + b.ActPrePJ + b.DRAMStaticPJ + b.RdWrPJ + b.IOPJ
	if math.Abs(b.TotalPJ()-total) > 1e-6 {
		t.Error("TotalPJ mismatch")
	}
	if b.MemoryPJ() >= b.TotalPJ() {
		t.Error("memory should be less than total")
	}
}

func TestPowerConversions(t *testing.T) {
	b := sample()
	// 2e8 pJ over 1e9 ps = 0.2 W.
	if math.Abs(b.ProcessorW()-0.2) > 1e-9 {
		t.Errorf("ProcessorW = %v, want 0.2", b.ProcessorW())
	}
	if math.Abs(b.DRAMStaticW()-0.1) > 1e-9 {
		t.Errorf("DRAMStaticW = %v", b.DRAMStaticW())
	}
	sum := b.ProcessorW() + b.ActPreW() + b.DRAMStaticW() + b.RdWrW() + b.IOW()
	if math.Abs(sum-b.TotalW()) > 1e-9 {
		t.Error("component watts do not sum to TotalW")
	}
	var zero Breakdown
	if zero.TotalW() != 0 {
		t.Error("zero runtime should give zero power")
	}
}

func TestEDP(t *testing.T) {
	b := sample()
	// E ≈ 3.052e8 pJ = 3.052e-4 J; D = 1e-3 s → EDP ≈ 3.05e-7 Js.
	e := b.TotalPJ() * 1e-12
	want := e * 1e-3
	if math.Abs(b.EDPJs()-want)/want > 1e-9 {
		t.Errorf("EDP = %v, want %v", b.EDPJs(), want)
	}
}

func TestRelInvEDP(t *testing.T) {
	base := sample()
	// Same energy, half the runtime → half the EDP → 2× 1/EDP... but
	// energy scales with static power too; construct directly:
	better := base
	better.RuntimePS = base.RuntimePS / 2
	got := RelInvEDP(base, better)
	if got <= 1.9 || got >= 2.1 {
		t.Fatalf("RelInvEDP = %v, want ~2", got)
	}
	if RelInvEDP(base, base) != 1 {
		t.Fatal("self-relative EDP != 1")
	}
	if RelInvEDP(base, Breakdown{}) != 0 {
		t.Fatal("zero breakdown should yield 0")
	}
}

func TestActPreShare(t *testing.T) {
	b := sample()
	want := b.ActPrePJ / b.MemoryPJ()
	if b.ActPreShareOfMemory() != want {
		t.Fatal("share mismatch")
	}
	var zero Breakdown
	if zero.ActPreShareOfMemory() != 0 {
		t.Fatal("zero share")
	}
}

// Property: the breakdown is linear in its inputs — doubling every
// energy input doubles total energy, and EDP scales accordingly.
func TestLinearityProperty(t *testing.T) {
	f := func(instrRaw uint32, actRaw, rdRaw, ioRaw uint32, rtRaw uint32) bool {
		instr := uint64(instrRaw)
		rt := sim.Time(rtRaw) + 1
		d := dram.Energy{ActPrePJ: float64(actRaw), RdWrPJ: float64(rdRaw), IOPJ: float64(ioRaw)}
		b1 := Compute(instr, 200, d, 50, rt)
		d2 := dram.Energy{ActPrePJ: 2 * d.ActPrePJ, RdWrPJ: 2 * d.RdWrPJ, IOPJ: 2 * d.IOPJ}
		b2 := Compute(2*instr, 200, d2, 100, rt)
		return math.Abs(b2.TotalPJ()-2*b1.TotalPJ()) < 1e-6*(1+b1.TotalPJ())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
