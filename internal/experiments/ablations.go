package experiments

// Ablation studies for the design choices DESIGN.md calls out beyond
// the paper's own figures:
//
//   - scheduler: FCFS vs FR-FCFS vs PAR-BS under multiprogrammed
//     interference (the paper always uses PAR-BS);
//   - queue depth: §V argues μbanks drain the request queue so far
//     that queue-inspecting policies lose their information — this
//     ablation measures average queue occupancy directly;
//   - activation-window scaling: this model widens tRRD/tFAW with nW
//     (activation current ∝ activated bits); the ablation quantifies
//     how much of the nW benefit depends on that assumption;
//   - refresh: all-bank vs LPDDR-style per-bank refresh vs none,
//     with and without μbanks.

import (
	"fmt"

	"microbank/internal/config"
	"microbank/internal/stats"
	"microbank/internal/system"
	"microbank/internal/workload"
)

// AblationRow is one variant measurement.
type AblationRow struct {
	Study   string
	Variant string
	IPC     float64
	RelIPC  float64 // vs the study's first variant
	Extra   float64 // study-specific metric (see Table header)
}

// AblationScheduler compares the three memory schedulers on a
// multiprogrammed mix over one busy channel.
func AblationScheduler(o Options) ([]AblationRow, error) {
	o = o.withDefaults()
	scheds := []config.Scheduler{config.SchedFCFS, config.SchedFRFCFS, config.SchedPARBS}
	results, failed, err := mapRuns(o, scheds, func(env runEnv, sched config.Scheduler) (system.Result, error) {
		return runMulti(workload.MixHigh().ForCore, config.LPDDRTSI, 1, 1,
			func(s *config.System) {
				s.Ctrl.Scheduler = sched
				s.Mem.Org.Channels = 2 // concentrate interference
			}, o, env)
	})
	if err != nil {
		return nil, err
	}
	if err := partialUnsupported("ablation-scheduler", failed); err != nil {
		return nil, err
	}
	var rows []AblationRow
	var base float64
	for i, sched := range scheds {
		res := results[i]
		if base == 0 {
			base = res.IPC
		}
		rows = append(rows, AblationRow{
			Study: "scheduler", Variant: sched.String(),
			IPC: res.IPC, RelIPC: res.IPC / base,
			Extra: res.AvgReadLatencyNS,
		})
	}
	return rows, nil
}

// AblationQueueDepth sweeps the controller queue depth on TPC-H for
// the baseline and a μbank device, reporting mean queue occupancy —
// the §V observation that μbanks starve queue-inspecting policies.
func AblationQueueDepth(o Options) ([]AblationRow, error) {
	o = o.withDefaults()
	type job struct {
		cfg   [2]int
		depth int
	}
	var jobs []job
	for _, cfg := range [][2]int{{1, 1}, {2, 8}} {
		for _, depth := range []int{8, 16, 32, 64} {
			jobs = append(jobs, job{cfg, depth})
		}
	}
	results, failed, err := mapRuns(o, jobs, func(env runEnv, j job) (system.Result, error) {
		return runSingle("TPC-H", config.LPDDRTSI, j.cfg[0], j.cfg[1],
			func(s *config.System) { s.Ctrl.QueueDepth = j.depth }, o, env)
	})
	if err != nil {
		return nil, err
	}
	if err := partialUnsupported("ablation-queue-depth", failed); err != nil {
		return nil, err
	}
	var rows []AblationRow
	var base float64
	for i, j := range jobs {
		res := results[i]
		if base == 0 {
			base = res.IPC
		}
		occ := 0.0
		if res.RuntimePS > 0 {
			occ = res.Mem.QueueOccIntegral / float64(res.RuntimePS)
		}
		rows = append(rows, AblationRow{
			Study:   "queue-depth",
			Variant: fmt.Sprintf("(%d,%d) depth=%d", j.cfg[0], j.cfg[1], j.depth),
			IPC:     res.IPC, RelIPC: res.IPC / base,
			Extra: occ,
		})
	}
	return rows, nil
}

// AblationActWindow quantifies the tRRD/tFAW-scaling assumption at a
// wordline-heavy configuration on 429.mcf.
func AblationActWindow(o Options) ([]AblationRow, error) {
	o = o.withDefaults()
	variants := []bool{false, true}
	results, failed, err := mapRuns(o, variants, func(env runEnv, noScale bool) (system.Result, error) {
		return runSingle("429.mcf", config.LPDDRTSI, 16, 1,
			func(s *config.System) { s.Mem.Timing.NoActWindowScaling = noScale }, o, env)
	})
	if err != nil {
		return nil, err
	}
	if err := partialUnsupported("ablation-act-window", failed); err != nil {
		return nil, err
	}
	var rows []AblationRow
	var base float64
	for i, noScale := range variants {
		res := results[i]
		name := "tRRD/tFAW scaled by nW (default)"
		if noScale {
			name = "unscaled activation windows"
		}
		if base == 0 {
			base = res.IPC
		}
		rows = append(rows, AblationRow{
			Study: "act-window", Variant: name,
			IPC: res.IPC, RelIPC: res.IPC / base,
			Extra: res.AvgReadLatencyNS,
		})
	}
	return rows, nil
}

// AblationBankHash measures XOR bank hashing (permutation-based
// interleaving) on a stream-heavy workload: power-of-two array strides
// that alias onto one bank under plain row interleaving spread out
// under the hash.
func AblationBankHash(o Options) ([]AblationRow, error) {
	o = o.withDefaults()
	type job struct {
		cfg  [2]int
		hash bool
	}
	var jobs []job
	for _, cfg := range [][2]int{{1, 1}, {2, 8}} {
		for _, hash := range []bool{false, true} {
			jobs = append(jobs, job{cfg, hash})
		}
	}
	results, failed, err := mapRuns(o, jobs, func(env runEnv, j job) (system.Result, error) {
		return runSingle("TPC-H", config.LPDDRTSI, j.cfg[0], j.cfg[1],
			func(s *config.System) { s.Ctrl.XORBankHash = j.hash }, o, env)
	})
	if err != nil {
		return nil, err
	}
	if err := partialUnsupported("ablation-bank-hash", failed); err != nil {
		return nil, err
	}
	var rows []AblationRow
	var base float64
	for i, j := range jobs {
		res := results[i]
		if base == 0 {
			base = res.IPC
		}
		rows = append(rows, AblationRow{
			Study: "bank-hash", Variant: fmt.Sprintf("(%d,%d) xor=%v", j.cfg[0], j.cfg[1], j.hash),
			IPC: res.IPC, RelIPC: res.IPC / base,
			Extra: res.RowHitRate,
		})
	}
	return rows, nil
}

// AblationRefresh measures the refresh overhead with and without
// μbanks.
func AblationRefresh(o Options) ([]AblationRow, error) {
	o = o.withDefaults()
	type job struct {
		cfg  [2]int
		mode string
	}
	var jobs []job
	for _, cfg := range [][2]int{{1, 1}, {4, 4}} {
		for _, mode := range []string{"all-bank", "per-bank", "off"} {
			jobs = append(jobs, job{cfg, mode})
		}
	}
	results, failed, err := mapRuns(o, jobs, func(env runEnv, j job) (system.Result, error) {
		return runSingle("470.lbm", config.LPDDRTSI, j.cfg[0], j.cfg[1],
			func(s *config.System) {
				switch j.mode {
				case "off":
					s.Mem.Timing.TREFI = 0
					s.Mem.Timing.TRFC = 0
				case "per-bank":
					s.Mem.Timing.PerBankRefresh = true
				}
			}, o, env)
	})
	if err != nil {
		return nil, err
	}
	if err := partialUnsupported("ablation-refresh", failed); err != nil {
		return nil, err
	}
	var rows []AblationRow
	var base float64
	for i, j := range jobs {
		res := results[i]
		if base == 0 {
			base = res.IPC
		}
		rows = append(rows, AblationRow{
			Study: "refresh", Variant: fmt.Sprintf("(%d,%d) refresh=%s", j.cfg[0], j.cfg[1], j.mode),
			IPC: res.IPC, RelIPC: res.IPC / base,
			Extra: float64(res.Mem.Energy.Refreshes),
		})
	}
	return rows, nil
}

// Ablations runs every ablation study and renders one table.
func Ablations(o Options) (*stats.Table, error) {
	t := stats.NewTable("Ablations (DESIGN.md §6)",
		"Study", "Variant", "IPC", "RelIPC", "Extra (lat ns / occupancy / refreshes)")
	studies := []func(Options) ([]AblationRow, error){
		AblationScheduler, AblationQueueDepth, AblationActWindow,
		AblationBankHash, AblationRefresh,
	}
	for i, f := range studies {
		rows, err := f(o)
		if err != nil {
			return nil, err
		}
		if i > 0 {
			t.AddSeparator()
		}
		for _, r := range rows {
			t.AddRow(r.Study, r.Variant, r.IPC, r.RelIPC, r.Extra)
		}
	}
	return t, nil
}
