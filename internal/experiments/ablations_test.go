package experiments

import (
	"strings"
	"testing"
)

func TestAblationScheduler(t *testing.T) {
	rows, err := AblationScheduler(qo)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Variant] = r
	}
	// Reordering schedulers must not lose to strict FCFS.
	if byName["FR-FCFS"].IPC < byName["FCFS"].IPC*0.98 {
		t.Errorf("FR-FCFS (%v) below FCFS (%v)", byName["FR-FCFS"].IPC, byName["FCFS"].IPC)
	}
	if byName["PAR-BS"].IPC < byName["FCFS"].IPC*0.98 {
		t.Errorf("PAR-BS (%v) below FCFS (%v)", byName["PAR-BS"].IPC, byName["FCFS"].IPC)
	}
}

func TestAblationQueueDepth(t *testing.T) {
	rows, err := AblationQueueDepth(qo)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	// §V: μbanks reduce average queue occupancy at equal depth.
	occ := map[string]float64{}
	for _, r := range rows {
		occ[r.Variant] = r.Extra
	}
	if occ["(2,8) depth=32"] >= occ["(1,1) depth=32"] {
		t.Errorf("μbank occupancy %v not below baseline %v",
			occ["(2,8) depth=32"], occ["(1,1) depth=32"])
	}
}

func TestAblationActWindow(t *testing.T) {
	rows, err := AblationActWindow(qo)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Disabling the scaling can only hurt (or not change) nW=16 IPC.
	if rows[1].IPC > rows[0].IPC*1.02 {
		t.Errorf("unscaled windows improved IPC: %v vs %v", rows[1].IPC, rows[0].IPC)
	}
}

func TestAblationRefresh(t *testing.T) {
	rows, err := AblationRefresh(qo)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		off := strings.Contains(r.Variant, "refresh=off")
		if !off && r.Extra == 0 {
			t.Errorf("%s: no refreshes counted", r.Variant)
		}
		if off && r.Extra != 0 {
			t.Errorf("%s: refreshes counted with refresh off", r.Variant)
		}
	}
	// Per-bank refreshes are issued more often than all-bank ones.
	byVariant := map[string]float64{}
	for _, r := range rows {
		byVariant[r.Variant] = r.Extra
	}
	if byVariant["(1,1) refresh=per-bank"] <= byVariant["(1,1) refresh=all-bank"] {
		t.Errorf("per-bank count %v not above all-bank %v",
			byVariant["(1,1) refresh=per-bank"], byVariant["(1,1) refresh=all-bank"])
	}
}

func TestAblationsTable(t *testing.T) {
	tb, err := Ablations(qo)
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	for _, want := range []string{"scheduler", "queue-depth", "act-window", "refresh"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation table missing %q", want)
		}
	}
}

func TestRelatedWork(t *testing.T) {
	rows, err := RelatedWork(qo)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]RelatedRow{}
	for _, r := range rows {
		byName[r.Design] = r
	}
	ub := byName["ubank (2,8)"]
	salp := byName["SALP-like (subarray parallelism)"]
	half := byName["Half-DRAM-like (half row)"]
	hmc := byName["HMC-serial (1,1)"]
	rs := byName["rank-subset-like (1/4 rank)"]
	// Rank subsetting buys activation energy but pays bus occupancy:
	// its 1/EDP gain must trail the equal-energy μbank/Half-DRAM route
	// per activated-row size... it beats baseline but not the (2,8) μbank.
	if rs.RelInvEDP <= 1.0 || rs.RelInvEDP >= ub.RelInvEDP+0.5 {
		t.Errorf("rank-subset 1/EDP = %v (μbank %v), want in (1, μbank+0.5)", rs.RelInvEDP, ub.RelInvEDP)
	}
	// μbank subsumes both partial designs: at least as good on 1/EDP.
	if ub.RelInvEDP < salp.RelInvEDP || ub.RelInvEDP < half.RelInvEDP {
		t.Errorf("μbank 1/EDP %v below SALP %v or Half-DRAM %v",
			ub.RelInvEDP, salp.RelInvEDP, half.RelInvEDP)
	}
	// Half-DRAM halves activation energy → 1/EDP gain without much IPC.
	if half.RelInvEDP <= 1.1 {
		t.Errorf("Half-DRAM 1/EDP = %v, want energy gain", half.RelInvEDP)
	}
	// §VII: HMC-style serial links are less energy-efficient than TSI
	// at this system size (higher latency and static power).
	if hmc.RelInvEDP >= 1.0 {
		t.Errorf("HMC 1/EDP = %v, want below TSI baseline", hmc.RelInvEDP)
	}
	if hmc.RelIPC >= 1.0 {
		t.Errorf("HMC relIPC = %v, want below baseline (SerDes latency)", hmc.RelIPC)
	}
	if !strings.Contains(RelatedWorkTable(rows).String(), "HMC") {
		t.Fatal("table render")
	}
}

func TestAblationBankHash(t *testing.T) {
	rows, err := AblationBankHash(qo)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.IPC <= 0 {
			t.Fatalf("%s: IPC %v", r.Variant, r.IPC)
		}
	}
}
