package experiments

// Tests for the campaign-aggregator wiring in mapRuns: cell lifecycle
// events, per-cell registry merging, failure/retry accounting, and the
// invariant that attaching an aggregator changes no result.

import (
	"errors"
	"reflect"
	"testing"

	"microbank/internal/obs"
	"microbank/internal/parallel"
	"microbank/internal/system"
)

func aggValue(t *testing.T, agg *obs.Aggregator, name string) float64 {
	t.Helper()
	for _, s := range agg.Gather() {
		if s.Name == name {
			return s.Value
		}
	}
	t.Fatalf("aggregator did not gather %q", name)
	return 0
}

func TestMapRunsFeedsAggregator(t *testing.T) {
	agg := obs.NewAggregator("test")
	o := Options{Quick: true, Instr: 6000, Parallelism: 2, Agg: agg}
	jobs := []int{10, 20, 30}
	results, failed, err := mapRuns(o, jobs, func(env runEnv, j int) (system.Result, error) {
		if env.obs == nil {
			t.Error("aggregated sweep cell ran without an observer")
		} else {
			env.obs.Registry.Counter("test.units").Add(uint64(j))
		}
		return system.Result{IPC: float64(j)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 0 { // fail-fast path: no failure mask
		t.Fatalf("failed mask = %v, want none", failed)
	}
	for i, r := range results {
		if r.IPC != float64(jobs[i]) {
			t.Fatalf("cell %d: result=%+v", i, r)
		}
	}
	if v := aggValue(t, agg, "sweep.done"); v != 3 {
		t.Fatalf("sweep.done = %v, want 3", v)
	}
	if v := aggValue(t, agg, "sweep.inflight"); v != 0 {
		t.Fatalf("sweep.inflight = %v, want 0", v)
	}
	// Per-cell snapshots merge by summation: 10+20+30.
	if v := aggValue(t, agg, "test.units"); v != 60 {
		t.Fatalf("merged test.units = %v, want 60", v)
	}
}

func TestMapRunsAggregatorFailures(t *testing.T) {
	agg := obs.NewAggregator("test")
	res := &Resilience{Mode: parallel.FailDegrade, Retries: 1}
	o := Options{Quick: true, Instr: 6000, Parallelism: 2, Res: res, Agg: agg}
	attempt := 0
	_, failed, err := mapRuns(o, []int{0, 1}, func(_ runEnv, j int) (system.Result, error) {
		if j == 1 {
			attempt++
			return system.Result{}, errors.New("hard failure")
		}
		return system.Result{IPC: 1}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !failed[1] || failed[0] {
		t.Fatalf("failed mask = %v", failed)
	}
	if v := aggValue(t, agg, "sweep.failures"); v != 1 {
		t.Fatalf("sweep.failures = %v, want 1", v)
	}
	if v := aggValue(t, agg, "sweep.failures{kind=error}"); v != 1 {
		t.Fatalf("failure kind taxonomy = %v, want 1", v)
	}
	if v := aggValue(t, agg, "sweep.done"); v != 2 { // 1 done + 1 failed
		t.Fatalf("sweep.done = %v, want 2", v)
	}
}

// TestAggregatorDoesNotPerturbSweep: the same real sweep with and
// without an aggregator attached must produce identical tables — the
// observability plane is read-only.
func TestAggregatorDoesNotPerturbSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("real sweep")
	}
	o := Options{Quick: true, Instr: 6000, Parallelism: 2}
	plain, err := Headline(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Agg = obs.NewAggregator("headline")
	observed, err := Headline(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(observed, plain) {
		t.Errorf("aggregated sweep diverged:\n got: %+v\nwant: %+v", observed, plain)
	}
	if v := aggValue(t, o.Agg, "sweep.done"); v == 0 {
		t.Error("aggregator saw no cells during the headline sweep")
	}
	// Real per-cell registries merged: the memory-controller series must
	// be present in the campaign view.
	if v := aggValue(t, o.Agg, "cpu.instr_retired"); v <= 0 {
		t.Errorf("merged cpu.instr_retired = %v, want > 0", v)
	}
}
