package experiments

// Analytic (model-only) experiments: Fig. 1, Table I, Fig. 6(a)/(b),
// Fig. 11, and Table II. These need no simulation runs.

import (
	"fmt"

	"microbank/internal/addr"
	"microbank/internal/config"
	"microbank/internal/dramarea"
	"microbank/internal/sim"
	"microbank/internal/stats"
	"microbank/internal/workload"
)

// Fig1 reproduces the energy-breakdown bars (pJ/b) of Fig. 1 for the
// PCB baseline, TSI, and TSI+μbank systems. beta is the
// activate-per-column-access ratio; the paper's Fig. 1 corresponds to
// low access locality (β = 1). nW is the μbank wordline partitioning
// of the third bar.
func Fig1(beta float64, nW int) *stats.Table {
	rows := []dramarea.Breakdown{
		dramarea.Fig1Breakdown(config.MemPreset(config.DDR3PCB, 1, 1), 1, beta, "PCB (baseline)"),
		dramarea.Fig1Breakdown(config.MemPreset(config.LPDDRTSI, 1, 1), 1, beta, "TSI"),
		dramarea.Fig1Breakdown(config.MemPreset(config.LPDDRTSI, nW, 1), nW, beta, "TSI+ubanks"),
	}
	t := stats.NewTable(
		fmt.Sprintf("Fig. 1: energy breakdown (pJ/b), beta=%.1f", beta),
		"System", "Core ACT/PRE", "RD/WR", "I/O", "Total")
	for _, b := range rows {
		t.AddRow(b.Label, b.CorePJb, b.RDWRPJb, b.IOPJb, b.TotalPJb)
	}
	return t
}

// Table1 prints the modeled DRAM energy and timing parameters and
// must match the paper's Table I by construction.
func Table1() *stats.Table {
	pcb := config.MemPreset(config.DDR3PCB, 1, 1)
	tsi := config.MemPreset(config.LPDDRTSI, 1, 1)
	t := stats.NewTable("Table I: DRAM energy and timing parameters", "Parameter", "Value")
	t.AddRow("I/O energy (DDR3-PCB)", fmt.Sprintf("%gpJ/b", pcb.Energy.IOPJPerBit))
	t.AddRow("I/O energy (LPDDR-TSI)", fmt.Sprintf("%gpJ/b", tsi.Energy.IOPJPerBit))
	t.AddRow("RD/WR energy w/o I/O (DDR3-PCB)", fmt.Sprintf("%gpJ/b", pcb.Energy.RDWRPJPerBit))
	t.AddRow("RD/WR energy w/o I/O (LPDDR-TSI)", fmt.Sprintf("%gpJ/b", tsi.Energy.RDWRPJPerBit))
	t.AddRow("ACT+PRE energy (8KB DRAM page)", fmt.Sprintf("%gnJ", tsi.Energy.ActPre8KBPJ/1000))
	t.AddSeparator()
	ns := func(d sim.Time) string { return fmt.Sprintf("%dns", d/sim.Nanosecond) }
	t.AddRow("tRCD", ns(tsi.Timing.TRCD))
	t.AddRow("tAA (DDR3)", ns(pcb.Timing.TAA))
	t.AddRow("tAA (TSI)", ns(tsi.Timing.TAA))
	t.AddRow("tRAS", ns(tsi.Timing.TRAS))
	t.AddRow("tRP", ns(tsi.Timing.TRP))
	return t
}

// Fig6a returns the relative DRAM die area over the (nW, nB) grid.
func Fig6a() *GridData {
	g := &GridData{Workload: "-", Metric: "relative area", Rel: map[[2]int]float64{}}
	for _, nB := range Axis {
		for _, nW := range Axis {
			g.Rel[[2]int{nW, nB}] = dramarea.RelativeArea(nW, nB)
		}
	}
	return g
}

// Fig6b returns the relative DRAM energy per read at the given β.
func Fig6b(beta float64) *GridData {
	p := dramarea.DefaultEnergyParams()
	g := &GridData{Workload: "-", Metric: fmt.Sprintf("relative energy (beta=%.1f)", beta),
		Rel: map[[2]int]float64{}}
	for _, nB := range Axis {
		for _, nW := range Axis {
			g.Rel[[2]int{nW, nB}] = p.RelativeEnergy(nW, nB, beta)
		}
	}
	return g
}

// Fig11 prints the address-interleaving bit layouts of Fig. 11 for the
// (2,8) configuration at both a cache-line base bit (iB=6) and a
// DRAM-row base bit (iB=12).
func Fig11() *stats.Table {
	org := config.MemPreset(config.LPDDRTSI, 2, 8).Org
	t := stats.NewTable("Fig. 11: address interleaving, (nW,nB) = (2,8)", "iB", "Layout (LSB first)")
	for _, iB := range []int{6, 12} {
		m := addr.MustMapper(org, iB)
		t.AddRow(fmt.Sprint(iB), m.Layout())
	}
	return t
}

// Table2 prints the SPEC CPU2006 MAPKI grouping (Table II), restricted
// to the benchmarks modeled in package workload.
func Table2() *stats.Table {
	t := stats.NewTable("Table II: SPEC CPU2006 groups by MAPKI", "Group", "Modeled applications")
	for _, c := range []workload.MAPKIClass{workload.SpecHigh, workload.SpecMed, workload.SpecLow} {
		names := workload.Group(c)
		t.AddRow(c.String(), fmt.Sprint(names))
	}
	return t
}
