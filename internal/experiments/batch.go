package experiments

// Variant-batched sweep execution: mapSpecRuns is the spec-expressible
// twin of mapRuns. Sweeps that can state each cell as a system.Spec up
// front (the partition grids, the QoS matrix) route through it, and
// with Options.Batch > 1 consecutive cells are advanced as one
// lockstep batch (system.RunBatch): one shared workload front-end, one
// contiguous bank-state arena, engines recycled through a pool.
// Results are byte-identical to the unbatched path — same digests,
// same journal keys, same reduction order, same error bytes — because
// system.RunBatch reproduces each member's standalone event sequence
// exactly and everything else here is plumbing.
//
// Composition rules, chosen to keep the resilient machinery intact:
//
//   - Groups are consecutive index ranges of width Batch. Each group is
//     simulated at most once, memoized under a mutex, on whichever
//     worker touches it first; with -j > 1 the effective sweep
//     parallelism is ceil(cells/Batch) groups.
//   - Per-cell limits still come from Options.limitsFor keyed by the
//     campaign-global index, so fault injection lands on the same cells.
//     Campaign-wide wall-clock budgets are scaled by the group width
//     (lockstep members share wall time); injected limit faults
//     (CheckEvents set) pass through untouched and still trip.
//   - A cell consumed from a group is removed from the memo, so a
//     MapPolicy retry of a failed/panicked cell re-runs it standalone —
//     retries never replay a stale batched outcome.
//   - Journal-resumed cells never invoke the run callback; their group
//     may simulate them redundantly when a sibling cell needs the
//     batch, producing identical (discarded) results.
//   - A member panic recovered by system.RunBatch is re-raised in the
//     owning cell's callback, preserving MapPolicy's per-cell panic
//     attribution and digests.

import (
	"sync"
	"time"

	"microbank/internal/system"
)

// mapSpecRuns fans the jobs out like mapRuns, but takes the cells as
// specs so eligible neighbors can share one variant-batched run. wrap
// (optional) decorates a failed cell's error exactly as the unbatched
// callback did, keeping failure-record bytes identical. Batching is
// disabled — the classic per-cell path runs verbatim — when Batch <= 1,
// when a campaign aggregator is attached (its per-cell observers are
// incompatible with the shared front-end), or for single-cell sweeps.
func mapSpecRuns[J any](o Options, jobs []J, specOf func(j J) system.Spec,
	wrap func(j J, err error) error) ([]system.Result, []bool, error) {
	if wrap == nil {
		wrap = func(_ J, err error) error { return err }
	}
	if o.Batch <= 1 || o.Agg != nil || len(jobs) <= 1 {
		return mapRunsIdx(o, jobs, func(env runEnv, _ int, j J) (system.Result, error) {
			spec := specOf(j)
			spec.Limits = env.lim
			spec.Obs = env.obs
			res, err := system.Run(spec)
			if err != nil {
				return system.Result{}, wrap(j, err)
			}
			return res, nil
		})
	}

	specs := make([]system.Spec, len(jobs))
	for i, j := range jobs {
		specs[i] = specOf(j)
	}
	groups := make([]*batchGroup, len(jobs))
	for lo := 0; lo < len(jobs); lo += o.Batch {
		hi := lo + o.Batch
		if hi > len(jobs) {
			hi = len(jobs)
		}
		g := &batchGroup{lo: lo, hi: hi, res: map[int]system.BatchResult{}}
		for i := lo; i < hi; i++ {
			groups[i] = g
		}
	}
	return mapRunsIdx(o, jobs, func(env runEnv, i int, j J) (system.Result, error) {
		// env.cell = sweepBase + i, so sweepBase aligns group members
		// with their campaign-global limit/injection indices.
		br, ok := groups[i].take(i, env.cell-i, specs, o)
		if !ok {
			// Already consumed once (this is a retry): standalone.
			spec := specs[i]
			spec.Limits = env.lim
			br.Res, br.Err = system.Run(spec)
		}
		if br.Panic != nil {
			panic(br.Panic)
		}
		if br.Err != nil {
			return system.Result{}, wrap(j, br.Err)
		}
		return br.Res, nil
	})
}

// batchGroup memoizes one lockstep batch over cells [lo, hi).
type batchGroup struct {
	lo, hi int
	mu     sync.Mutex
	done   bool
	res    map[int]system.BatchResult
}

// take returns cell i's batched outcome, simulating the whole group on
// first touch. sweepBase is the campaign-global index of cell 0 of the
// sweep. The entry is removed on consumption so a later retry of the
// same cell falls back to a standalone run (ok=false).
func (g *batchGroup) take(i, sweepBase int, specs []system.Spec, o Options) (system.BatchResult, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.done {
		g.done = true
		width := g.hi - g.lo
		sps := make([]system.Spec, width)
		for m := range sps {
			sps[m] = specs[g.lo+m]
			sps[m].Limits = batchLimitsFor(o, sweepBase+g.lo+m, width)
		}
		for m, br := range system.RunBatch(sps) {
			g.res[g.lo+m] = br
		}
	}
	br, ok := g.res[i]
	delete(g.res, i)
	return br, ok
}

// batchLimitsFor derives a batched member's limits from the campaign
// policy for global cell g. Campaign-wide wall-clock budgets (the -run-
// timeout watchdog, CheckEvents zero) are scaled by the group width
// because lockstep members share wall time — without scaling, a batch
// of B healthy members would trip a per-run deadline B× too early.
// Injected limit faults carry a CheckEvents marker and are meant to
// trip; they pass through unscaled.
func batchLimitsFor(o Options, g, width int) *system.Limits {
	lim := o.limitsFor(g)
	if lim == nil || lim.WallClock <= 0 || lim.CheckEvents != 0 || width <= 1 {
		return lim
	}
	scaled := *lim
	scaled.WallClock *= time.Duration(width)
	return &scaled
}
