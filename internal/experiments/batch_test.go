package experiments

import (
	"reflect"
	"testing"

	"microbank/internal/parallel"
)

// TestBatchedGridMatchesPlain: the fig8-style partition grid must
// produce identical cells with batching off and at several widths,
// including widths that do not divide the 25-cell sweep.
func TestBatchedGridMatchesPlain(t *testing.T) {
	base := Options{Quick: true, Instr: 4000, Seed: 42}
	want, wantFailed, err := runGridCells("429.mcf", base)
	if err != nil {
		t.Fatal(err)
	}
	if wantFailed != nil {
		t.Fatalf("plain sweep reported failures: %v", wantFailed)
	}
	for _, B := range []int{3, 8} {
		o := base
		o.Batch = B
		o.Parallelism = 2
		got, failed, err := runGridCells("429.mcf", o)
		if err != nil {
			t.Fatalf("B=%d: %v", B, err)
		}
		if failed != nil {
			t.Fatalf("B=%d: batched sweep reported failures: %v", B, failed)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("B=%d: batched grid differs from plain sweep", B)
		}
	}
}

// TestBatchedQoSMatchesPlain covers the multicore spec path (specMulti)
// end to end through the public sweep.
func TestBatchedQoSMatchesPlain(t *testing.T) {
	base := Options{Quick: true, Instr: 8000, Cores: 4, Seed: 42}
	want, err := QoSSweep(base)
	if err != nil {
		t.Fatal(err)
	}
	o := base
	o.Batch = 4
	got, err := QoSSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("batched QoS sweep differs from plain:\nbatched: %+v\nplain:   %+v", got, want)
	}
}

// TestBatchedResilientSweep: batching under the resilient machinery —
// injected faults land on the same campaign cells, failed cells retry
// standalone (the memo-miss path), and healthy cells stay identical.
func TestBatchedResilientSweep(t *testing.T) {
	mkRes := func() *Resilience {
		r := &Resilience{Mode: parallel.FailDegrade, Retries: 1}
		if err := r.SetInject("timeout:3,error:5"); err != nil {
			t.Fatal(err)
		}
		return r
	}
	base := Options{Quick: true, Instr: 4000, Seed: 42}

	plain := base
	plain.Res = mkRes()
	want, wantFailed, err := runGridCells("429.mcf", plain)
	if err != nil {
		t.Fatal(err)
	}

	batched := base
	batched.Res = mkRes()
	batched.Batch = 4
	batched.Parallelism = 2
	got, failed, err := runGridCells("429.mcf", batched)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(failed, wantFailed) {
		t.Fatalf("failed-cell masks differ: batched %v, plain %v", failed, wantFailed)
	}
	if len(wantFailed) == 0 {
		t.Fatal("injection did not fail any cell; test is vacuous")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("batched resilient sweep differs from plain on healthy cells")
	}
}
