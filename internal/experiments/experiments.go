// Package experiments regenerates every table and figure of the
// paper's evaluation (§III-B, §IV-B, §VI): each Fig*/Table* function
// runs the required simulations (or analytic models) and returns both
// structured data and a formatted table matching the paper's layout.
//
// Absolute numbers differ from the paper — the substrate is this
// repository's simulator and synthetic workloads, not McSimA+ with
// SimPoint traces — but the comparisons each figure makes (who wins,
// by roughly what factor, where the crossovers fall) are preserved;
// EXPERIMENTS.md records paper-vs-measured for each.
package experiments

import (
	"context"
	"fmt"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync/atomic"

	"microbank/internal/config"
	"microbank/internal/obs"
	"microbank/internal/parallel"
	"microbank/internal/stats"
	"microbank/internal/system"
	"microbank/internal/workload"
)

// Options sets the fidelity/cost tradeoff for simulation-backed
// experiments.
type Options struct {
	// Ctx, when non-nil, cancels the campaign: sweep workers stop
	// picking up cells when it is done, and in-flight cells abort at
	// their next watchdog check (system.Limits.Ctx). The CLI wires its
	// SIGINT/SIGTERM handler here so an interrupted campaign exits
	// through the normal error path — journal and store keep every
	// completed cell, and artifacts flush marked aborted. Nil means
	// uncancellable, with no watchdog armed on otherwise-unbounded runs.
	Ctx context.Context
	// Instr is the per-core instruction budget (half of it is cache
	// warm-up). Zero selects the default (30k quick, 240k full).
	Instr uint64
	// Cores is the populated core count for multiprogrammed and
	// multithreaded workloads. Zero selects 16 (quick) or 64 (full).
	Cores int
	// Quick selects reduced workload sets (one representative per
	// group) for fast runs such as benchmarks.
	Quick bool
	Seed  int64
	// Parallelism bounds how many independent simulations run
	// concurrently (the -j flag). Zero or negative selects
	// runtime.GOMAXPROCS(0). Every run takes an explicit seed and
	// results are reduced in job order, so output is byte-identical
	// at every width.
	Parallelism int
	// IntraParallelism requests the windowed parallel engine inside
	// each eligible simulation (the -j-intra flag): results are
	// bit-identical to sequential runs at any width. Extra workers are
	// borrowed from a process-wide budget shared with the sweep pool,
	// so -j and -j-intra compose without oversubscribing the host.
	IntraParallelism int
	// Progress, when non-nil, is invoked after each completed
	// simulation of a sweep with the number done so far and the sweep
	// total (the -progress heartbeat). It is called from worker
	// goroutines and must be safe for concurrent use; it must not
	// write to stdout, which carries the deterministic tables.
	Progress func(done, total int)
	// Res, when non-nil, arms resilient sweep execution: panic
	// isolation, per-run limits, retries, failure collection, and
	// journaled resume. Nil selects the original fail-fast path with
	// zero overhead.
	Res *Resilience
	// Batch groups up to this many compatible sweep cells into one
	// variant-batched lockstep run (the -batch flag): members share one
	// deterministic workload front-end and a contiguous bank-state
	// arena while every member's Result stays byte-identical to its
	// standalone sequential run. Cells the batch engine cannot cover
	// (custom observers, intra-parallel-eligible runs, incompatible
	// neighbors) fall back to standalone runs inside the group. Batch
	// composes with Parallelism — each worker advances one group — and
	// with the journal, which stays keyed per cell. Zero or one
	// disables batching. Sweeps that are not spec-expressible (agg
	// observation, bespoke reductions) ignore it.
	Batch int
	// Exp names the running experiment for profiling: every sweep cell
	// executes under runtime/pprof labels (exp, cell, variant) so CPU
	// profiles of a sweep attribute samples to individual cells.
	Exp string
	// Agg, when non-nil, feeds the live observability plane (-serve):
	// every sweep cell runs with its own registry-only observer whose
	// snapshot merges into the aggregator at the cell boundary, and
	// progress/failure/retry events stream to it as they happen.
	// Observation is read-only and per-cell registries stay
	// registry-only (no sampler/tracer), so results — and intra-parallel
	// eligibility — are untouched. Nil costs nothing.
	Agg *obs.Aggregator
}

// ctx returns the campaign context, never nil.
func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

func (o Options) withDefaults() Options {
	if o.Instr == 0 {
		if o.Quick {
			o.Instr = 30000
		} else {
			o.Instr = 240000
		}
	}
	if o.Cores == 0 {
		if o.Quick {
			o.Cores = 16
		} else {
			o.Cores = 64
		}
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// Axis is the partition-count axis used by Figs. 6, 8, and 9.
var Axis = []int{1, 2, 4, 8, 16}

// RepresentativeConfigs are the <3%-area-overhead (nW,nB) points used
// by Figs. 10, 12, and 13.
var RepresentativeConfigs = [][2]int{{1, 1}, {2, 8}, {4, 4}, {8, 2}}

// runEnv is the per-cell execution environment mapRuns hands its run
// callback: the cell's limits (resilient sweeps), when a campaign
// aggregator is attached the cell's registry-only observer, and the
// cell's campaign-global index (sweep base + cell — what limitsFor and
// fault injection key on). The zero value reproduces the
// pre-observability behavior exactly.
type runEnv struct {
	lim  *system.Limits
	obs  *obs.Observer
	cell int
}

// specSingle builds the spec for a single-core, single-channel run
// (the paper's setup for single-threaded SPEC and DB workloads).
// Everything that determines results is set here; the per-cell
// environment (limits, observer) is layered on by the caller.
func specSingle(name string, iface config.Interface, nW, nB int,
	mut func(*config.System), o Options) system.Spec {
	sys := config.SingleCore(config.MemPreset(iface, nW, nB))
	if mut != nil {
		mut(&sys)
	}
	spec := system.UniformSpec(sys, workload.MustGet(name), o.Instr, o.Seed)
	spec.WarmupInstr = o.Instr / 2
	spec.IntraParallelism = o.IntraParallelism
	return spec
}

// runSingle executes specSingle under the cell's environment (watchdog
// deadline / event budget / cancellation, optional observer).
func runSingle(name string, iface config.Interface, nW, nB int,
	mut func(*config.System), o Options, env runEnv) (system.Result, error) {
	spec := specSingle(name, iface, nW, nB, mut, o)
	spec.Limits = env.lim
	spec.Obs = env.obs
	return system.Run(spec)
}

// specMulti builds the spec for a multicore run with the full channel
// population.
func specMulti(profileFor func(core int) workload.Profile, iface config.Interface,
	nW, nB int, mut func(*config.System), o Options) system.Spec {
	sys := config.DefaultSystem(config.MemPreset(iface, nW, nB))
	sys.Cores = o.Cores
	if mut != nil {
		mut(&sys)
	}
	profs := make([]workload.Profile, sys.Cores)
	for i := range profs {
		profs[i] = profileFor(i)
	}
	// Multicore runs halve the per-core budget (wall time still grows
	// with the core count, but refresh and warm-up effects stay evenly
	// amortized across configurations).
	instr := o.Instr / 2
	if instr < 4000 {
		instr = 4000
	}
	return system.Spec{Sys: sys, Profiles: profs, InstrPerCore: instr,
		WarmupInstr: instr / 2, Seed: o.Seed,
		IntraParallelism: o.IntraParallelism}
}

// runMulti executes specMulti under the cell's environment.
func runMulti(profileFor func(core int) workload.Profile, iface config.Interface,
	nW, nB int, mut func(*config.System), o Options, env runEnv) (system.Result, error) {
	spec := specMulti(profileFor, iface, nW, nB, mut, o)
	spec.Limits = env.lim
	spec.Obs = env.obs
	return system.Run(spec)
}

// specGroup returns the benchmark names evaluated for a named workload
// set, honoring Quick mode.
func specGroup(set string, quick bool) []string {
	switch set {
	case "spec-high":
		if quick {
			return []string{"429.mcf", "470.lbm", "462.libquantum"}
		}
		return workload.Group(workload.SpecHigh)
	case "spec-all":
		if quick {
			return []string{"429.mcf", "470.lbm", "403.gcc", "453.povray"}
		}
		return workload.SpecAll()
	default:
		return []string{set}
	}
}

// GridData holds one workload's metric over the (nW,nB) grid,
// normalized to the (1,1) cell.
type GridData struct {
	Workload string
	Metric   string // "IPC" or "1/EDP"
	Rel      map[[2]int]float64
	// Missing marks cells excluded from a degraded reduction (every
	// contributing run failed under -fail-mode=collect|degrade). Nil on
	// healthy sweeps.
	Missing map[[2]int]bool
}

// At returns the normalized value at (nW, nB).
func (g *GridData) At(nW, nB int) float64 { return g.Rel[[2]int{nW, nB}] }

// Best returns the grid point with the highest value. Cells are
// scanned in fixed Axis order, so ties resolve to the smallest
// (nB, nW) deterministically rather than by map iteration order.
func (g *GridData) Best() (nW, nB int, val float64) {
	for _, b := range Axis {
		for _, w := range Axis {
			if v := g.At(w, b); v > val {
				nW, nB, val = w, b, v
			}
		}
	}
	return
}

// Table renders the grid in the paper's layout (nW across, nB down).
func (g *GridData) Table(title string) *stats.Table {
	header := []string{"nB\\nW"}
	for _, w := range Axis {
		header = append(header, fmt.Sprint(w))
	}
	t := stats.NewTable(title, header...)
	for _, b := range Axis {
		row := []any{fmt.Sprint(b)}
		for _, w := range Axis {
			if g.Missing[[2]int{w, b}] {
				row = append(row, "FAIL")
			} else {
				row = append(row, g.At(w, b))
			}
		}
		t.AddRow(row...)
	}
	return t
}

// CSV renders the grid as comma-separated values with an nB row header
// and nW column header, for plotting tools.
func (g *GridData) CSV() string {
	var out strings.Builder
	out.WriteString("nB\\nW")
	for _, w := range Axis {
		fmt.Fprintf(&out, ",%d", w)
	}
	out.WriteByte('\n')
	for _, b := range Axis {
		fmt.Fprintf(&out, "%d", b)
		for _, w := range Axis {
			fmt.Fprintf(&out, ",%.4f", g.At(w, b))
		}
		out.WriteByte('\n')
	}
	return out.String()
}

// cellMetrics captures the per-run values grids are built from.
type cellMetrics struct {
	ipc    float64
	edpJs  float64
	result system.Result
}

// mapRuns fans independent simulation runs out over o.Parallelism
// workers. Results come back in job order, so callers reduce them with
// the exact arithmetic order of the serial loops this layer replaced —
// parallel output stays byte-identical to serial. The optional
// Progress callback observes completions (in completion order, which
// is schedule-dependent); it never influences results.
//
// With o.Res nil, the sweep is fail-fast with no overhead and the
// returned mask is nil. With o.Res armed, the sweep runs resiliently:
// each cell is one sweep cell under parallel.MapPolicy (panic
// isolation, retries, per-run limits via the lim argument, journal
// lookup/record, fault injection), failures are logged as report
// records, and under collect/degrade the sweep completes with failed
// cells marked true in the mask (their Result is the zero value).
func mapRuns[J any](o Options, jobs []J, run func(env runEnv, j J) (system.Result, error)) ([]system.Result, []bool, error) {
	return mapRunsIdx(o, jobs, func(env runEnv, _ int, j J) (system.Result, error) {
		return run(env, j)
	})
}

// mapRunsIdx is mapRuns with the cell index handed to the callback —
// the batched sweep path (mapSpecRuns) needs it to locate the cell's
// lockstep group. Everything observable (digests, journal keys, error
// bytes, reduction order) is identical to mapRuns.
func mapRunsIdx[J any](o Options, jobs []J, run func(env runEnv, i int, j J) (system.Result, error)) ([]system.Result, []bool, error) {
	total := len(jobs)
	var done atomic.Int64
	note := func() {
		if o.Progress != nil {
			o.Progress(int(done.Add(1)), total)
		}
	}
	agg := o.Agg
	aggSweep := -1
	if agg != nil {
		aggSweep = agg.BeginSweep(total)
	}
	// cellRun wraps run with the aggregator's cell lifecycle: a fresh
	// registry-only observer per cell (observation is read-only and
	// keeps intra-parallel eligibility), with the boundary snapshot
	// merged on success. With no aggregator the env is zero and this is
	// the old call verbatim. g is the campaign-global cell index. Every
	// cell executes under pprof labels so a CPU profile of a sweep
	// attributes samples to individual cells and variants.
	cellRun := func(lim *system.Limits, g, i int, j J) (res system.Result, err error) {
		env := runEnv{lim: lim, cell: g}
		if agg != nil {
			env.obs = obs.NewObserver()
			agg.CellStarted(aggSweep, i)
		}
		pprof.Do(context.Background(), pprof.Labels(
			"exp", o.Exp, "cell", strconv.Itoa(g), "variant", fmt.Sprintf("%+v", j)),
			func(context.Context) { res, err = run(env, i, j) })
		if agg != nil && err == nil {
			agg.CellDone(aggSweep, i, env.obs.Registry.Gather())
		}
		return res, err
	}
	idx := make([]int, total)
	for i := range idx {
		idx[i] = i
	}
	if o.Res == nil {
		res, err := parallel.Map(o.ctx(), o.Parallelism, idx,
			func(_ context.Context, i int) (system.Result, error) {
				r, err := cellRun(o.limitsFor(i), i, i, jobs[i])
				if err == nil {
					note()
				}
				return r, err
			})
		return res, nil, err
	}

	r := o.Res
	base, sweep := r.beginSweep(total)
	// Collect is degrade at sweep level: every sweep completes with its
	// failures logged, and the campaign-level verdict (Resilience.Err)
	// turns the log into a nonzero exit.
	mode := parallel.FailDegrade
	if r.Mode == parallel.FailFast {
		mode = parallel.FailFast
	}
	pol := parallel.Policy{
		Mode:      mode,
		Retries:   r.Retries,
		Backoff:   r.Backoff,
		Retryable: retryable,
		Digest: func(i int) string {
			return fmt.Sprintf("sweep %d cell %d/%d: %+v", sweep, i, total, jobs[i])
		},
		OnRetry: func(int, int, error) {
			r.Log.NoteRetry()
			if agg != nil {
				agg.NoteRetry()
			}
		},
	}
	results, fails, err := parallel.MapPolicy(o.ctx(), o.Parallelism, idx, pol,
		func(_ context.Context, i int) (system.Result, error) {
			// Checkpoint lookups precede injection: a replayed cell is not
			// re-run, so it cannot re-fire an injected fault. The store is
			// consulted before the journal — it is the cross-campaign
			// authority; the journal covers cells the store lost (or was
			// never given).
			if res, ok := r.storeLookup(sweep, i); ok {
				// Keep the journal self-contained: a store-served cell is
				// journaled too (skipped if already there), so the journal
				// alone can still resume this campaign.
				r.journalCheckpoint(sweep, i, res)
				if agg != nil {
					agg.CellReplayed(aggSweep, i)
				}
				note()
				return res, nil
			}
			if res, ok := r.journalLookup(sweep, i); ok {
				// Heal the store: the entry was missing or quarantined.
				r.storeCheckpoint(sweep, i, res)
				if agg != nil {
					agg.CellReplayed(aggSweep, i)
				}
				note()
				return res, nil
			}
			g := base + i
			switch r.injectionAt(g) {
			case "panic":
				panic(fmt.Sprintf("injected panic at campaign cell %d", g))
			case "error":
				return system.Result{}, fmt.Errorf("injected error at campaign cell %d", g)
			case "flaky":
				if r.firstAttempt(g) {
					return system.Result{}, errInjectedTransient
				}
			}
			res, rerr := cellRun(o.limitsFor(g), g, i, jobs[i])
			if rerr != nil {
				return system.Result{}, rerr
			}
			// Only healthy cells are checkpointed; failed cells re-run (and
			// re-fail identically) on resume. A checkpoint that cannot
			// persist degrades — one warning, persistence disabled — and
			// never fails the healthy cell it was recording.
			r.checkpoint(sweep, i, res)
			note()
			return res, nil
		})
	for _, te := range fails {
		f := failureRecord(sweep, te)
		r.Log.add(f)
		if agg != nil {
			agg.CellFailed(obs.CellFailure{Sweep: aggSweep, Cell: f.Cell,
				Kind: f.Kind, Error: f.Error, Digest: f.Digest,
				Attempts: f.Attempts, Diag: f.Diag})
		}
	}
	if err != nil {
		return nil, nil, err
	}
	if len(fails) == 0 {
		return results, nil, nil
	}
	failed := make([]bool, total)
	for _, te := range fails {
		failed[te.Index] = true
	}
	return results, failed, nil
}

// runGridCells runs one workload over the full partition grid, fanning
// the 25 independent cells out over the worker pool. Failed cells
// (resilient sweeps under collect/degrade) are absent from the map and
// listed in the second return value.
func runGridCells(name string, o Options) (map[[2]int]cellMetrics, map[[2]int]bool, error) {
	jobs := make([][2]int, 0, len(Axis)*len(Axis))
	for _, nB := range Axis {
		for _, nW := range Axis {
			jobs = append(jobs, [2]int{nW, nB})
		}
	}
	results, failed, err := mapSpecRuns(o, jobs,
		func(cfg [2]int) system.Spec {
			return specSingle(name, config.LPDDRTSI, cfg[0], cfg[1], nil, o)
		},
		func(cfg [2]int, rerr error) error {
			return fmt.Errorf("%s (%d,%d): %w", name, cfg[0], cfg[1], rerr)
		})
	if err != nil {
		return nil, nil, err
	}
	cells := make(map[[2]int]cellMetrics, len(jobs))
	var failedCells map[[2]int]bool
	for i, cfg := range jobs {
		if failed != nil && failed[i] {
			if failedCells == nil {
				failedCells = map[[2]int]bool{}
			}
			failedCells[cfg] = true
			continue
		}
		cells[cfg] = cellMetrics{
			ipc:    results[i].IPC,
			edpJs:  results[i].Breakdown.EDPJs(),
			result: results[i],
		}
	}
	return cells, failedCells, nil
}

// gridsFor computes the relative-IPC and relative-1/EDP grids for a
// workload set, averaging per-benchmark normalized values (the paper's
// per-app-normalize-then-average convention).
//
// Healthy sweeps take the original reduction verbatim, so their grids
// stay byte-identical to the pre-resilience code. When cells failed
// under collect/degrade, the reduction degrades: each grid point
// averages over the benchmarks that measured it (a benchmark whose
// (1,1) base failed contributes nothing), and points with no healthy
// contributor are marked Missing.
func gridsFor(set string, o Options) (ipc, invEDP *GridData, err error) {
	names := specGroup(set, o.Quick)
	ipc = &GridData{Workload: set, Metric: "IPC", Rel: map[[2]int]float64{}}
	invEDP = &GridData{Workload: set, Metric: "1/EDP", Rel: map[[2]int]float64{}}
	type benchCells struct {
		cells map[[2]int]cellMetrics
	}
	all := make([]benchCells, 0, len(names))
	degraded := false
	for _, name := range names {
		cells, failedCells, cerr := runGridCells(name, o)
		if cerr != nil {
			return nil, nil, cerr
		}
		if len(failedCells) > 0 {
			degraded = true
		}
		all = append(all, benchCells{cells})
	}
	if !degraded {
		for _, bc := range all {
			base := bc.cells[[2]int{1, 1}]
			for k, c := range bc.cells {
				ipc.Rel[k] += c.ipc / base.ipc / float64(len(names))
				invEDP.Rel[k] += base.edpJs / c.edpJs / float64(len(names))
			}
		}
		return ipc, invEDP, nil
	}
	ipcSum := map[[2]int]float64{}
	edpSum := map[[2]int]float64{}
	cnt := map[[2]int]int{}
	for _, bc := range all {
		base, ok := bc.cells[[2]int{1, 1}]
		if !ok {
			continue // base failed: nothing to normalize against
		}
		for _, b := range Axis {
			for _, w := range Axis {
				k := [2]int{w, b}
				c, ok := bc.cells[k]
				if !ok {
					continue
				}
				ipcSum[k] += c.ipc / base.ipc
				edpSum[k] += base.edpJs / c.edpJs
				cnt[k]++
			}
		}
	}
	for _, b := range Axis {
		for _, w := range Axis {
			k := [2]int{w, b}
			if cnt[k] == 0 {
				if ipc.Missing == nil {
					ipc.Missing = map[[2]int]bool{}
					invEDP.Missing = map[[2]int]bool{}
				}
				ipc.Missing[k] = true
				invEDP.Missing[k] = true
				continue
			}
			ipc.Rel[k] = ipcSum[k] / float64(cnt[k])
			invEDP.Rel[k] = edpSum[k] / float64(cnt[k])
		}
	}
	return ipc, invEDP, nil
}
