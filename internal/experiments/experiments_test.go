package experiments

import (
	"strings"
	"testing"

	"microbank/internal/config"
)

// qo is the reduced-fidelity option set used throughout these tests.
var qo = Options{Quick: true, Instr: 24000, Cores: 16, Seed: 42}

func TestTable1ContainsAnchors(t *testing.T) {
	out := Table1().String()
	for _, want := range []string{"20pJ/b", "4pJ/b", "30nJ", "14ns", "12ns", "35ns"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestTable2ListsGroups(t *testing.T) {
	out := Table2().String()
	for _, want := range []string{"spec-high", "spec-med", "spec-low", "429.mcf"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II missing %q", want)
		}
	}
}

func TestFig1Ordering(t *testing.T) {
	tb := Fig1(1.0, 8)
	if tb.NumRows() != 3 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	// Totals must strictly decrease: PCB > TSI > TSI+μbank.
	get := func(r int) string { return tb.Cell(r, 4) }
	if !(get(0) > get(1) && get(1) > get(2)) { // lexicographic works: 91.x > 66.x > 15.x
		t.Fatalf("Fig. 1 totals not decreasing: %s %s %s", get(0), get(1), get(2))
	}
}

func TestFig6Grids(t *testing.T) {
	a := Fig6a()
	if v := a.At(1, 1); v != 1.0 {
		t.Fatalf("area baseline = %v", v)
	}
	if v := a.At(16, 16); v < 1.25 || v > 1.29 {
		t.Fatalf("area(16,16) = %v, want ~1.268", v)
	}
	b1 := Fig6b(1.0)
	b01 := Fig6b(0.1)
	if b1.At(16, 1) >= b1.At(1, 1) {
		t.Fatal("energy should fall with nW")
	}
	// β=1 saving exceeds β=0.1 saving.
	if (1 - b1.At(16, 1)) <= (1 - b01.At(16, 1)) {
		t.Fatal("β sensitivity inverted")
	}
	if !strings.Contains(a.Table("x").String(), "1.000") {
		t.Fatal("table render")
	}
}

func TestFig11Layouts(t *testing.T) {
	out := Fig11().String()
	for _, want := range []string{"ubank", "chan", "row"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig. 11 missing %q:\n%s", want, out)
		}
	}
}

func TestFig8And9Shapes(t *testing.T) {
	ipc, edp, err := Fig8And9(qo)
	if err != nil {
		t.Fatal(err)
	}
	if len(ipc) != 3 || len(edp) != 3 {
		t.Fatalf("panels = %d/%d", len(ipc), len(edp))
	}
	byName := map[string]*GridData{}
	for _, g := range ipc {
		byName[g.Workload] = g
	}
	mcf, high, tpch := byName["429.mcf"], byName["spec-high"], byName["TPC-H"]

	// Every grid is normalized at (1,1) and improves with partitioning.
	for _, g := range append(ipc, edp...) {
		if g.At(1, 1) != 1.0 {
			t.Errorf("%s %s: baseline cell = %v", g.Workload, g.Metric, g.At(1, 1))
		}
		if _, _, best := g.Best(); best <= 1.05 {
			t.Errorf("%s %s: μbanks gave no benefit (best %v)", g.Workload, g.Metric, best)
		}
	}
	// mcf gains substantially at full partitioning (§VI-B: +54.8%).
	if mcf.At(16, 16) < 1.2 {
		t.Errorf("mcf (16,16) = %v, want > 1.2", mcf.At(16, 16))
	}
	// TPC-H is more sensitive to nB than nW (§VI-B).
	if tpch.At(1, 16) <= tpch.At(16, 1) {
		t.Errorf("TPC-H nB sensitivity inverted: (1,16)=%v (16,1)=%v",
			tpch.At(1, 16), tpch.At(16, 1))
	}
	// spec-high gains are more modest than mcf's at (16,16).
	if high.At(16, 16) >= mcf.At(16, 16)+0.15 {
		t.Errorf("spec-high (16,16)=%v should not far exceed mcf %v",
			high.At(16, 16), mcf.At(16, 16))
	}
	// 1/EDP gains exceed IPC gains (energy also falls).
	for i := range ipc {
		_, _, bi := ipc[i].Best()
		_, _, be := edp[i].Best()
		if be <= bi {
			t.Errorf("%s: EDP best %v <= IPC best %v", ipc[i].Workload, be, bi)
		}
	}
}

func TestFig10Rows(t *testing.T) {
	rows, err := Fig10(qo)
	if err != nil {
		t.Fatal(err)
	}
	want := (len(fig10Single) + len(fig10Multi)) * len(RepresentativeConfigs)
	if len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.NW == 1 && r.NB == 1 {
			if r.RelIPC != 1 || r.RelInvEDP != 1 {
				t.Errorf("%s baseline not normalized: %+v", r.Workload, r)
			}
			continue
		}
		if r.RelIPC < 0.9 {
			t.Errorf("%s (%d,%d): relIPC %v", r.Workload, r.NW, r.NB, r.RelIPC)
		}
	}
	// Wordline-heavy config (8,2) must dissipate less ACT/PRE power
	// than (1,1) for a memory-bound set (§VI-B).
	var base, w8 Fig10Row
	for _, r := range rows {
		if r.Workload == "spec-high" && r.NW == 1 && r.NB == 1 {
			base = r
		}
		if r.Workload == "spec-high" && r.NW == 8 && r.NB == 2 {
			w8 = r
		}
	}
	if w8.ActPreW >= base.ActPreW {
		t.Errorf("(8,2) ACT/PRE power %v not below (1,1) %v", w8.ActPreW, base.ActPreW)
	}
	if !strings.Contains(Fig10Table(rows).String(), "spec-high") {
		t.Fatal("table render")
	}
}

func TestFig12OpenPageWinsWithMicrobanks(t *testing.T) {
	rows, err := Fig12(qo, "spec-high")
	if err != nil {
		t.Fatal(err)
	}
	// Find (2,8): open-page at max iB vs close-page at iB=6.
	var openRow, closeRow, openLine Fig12Row
	for _, r := range rows {
		if r.NW == 2 && r.NB == 8 {
			if r.Policy == config.OpenPage && r.IB == 12 {
				openRow = r
			}
			if r.Policy == config.ClosePage && r.IB == 6 {
				closeRow = r
			}
			if r.Policy == config.OpenPage && r.IB == 6 {
				openLine = r
			}
		}
	}
	if openRow.RelIPC == 0 || closeRow.RelIPC == 0 {
		t.Fatalf("missing rows: %+v %+v", openRow, closeRow)
	}
	// §VI-C: with many active rows, open-page + page interleaving
	// clearly outperforms close-page.
	if openRow.RelIPC <= closeRow.RelIPC {
		t.Errorf("open@iB=12 (%v) not above close@iB=6 (%v)", openRow.RelIPC, closeRow.RelIPC)
	}
	// Page interleaving beats cache-line interleaving under open page.
	if openRow.RelIPC <= openLine.RelIPC*0.98 {
		t.Errorf("row interleaving (%v) worse than line interleaving (%v)",
			openRow.RelIPC, openLine.RelIPC)
	}
	if !strings.Contains(Fig12Table(rows).String(), "open") {
		t.Fatal("table render")
	}
}

func TestFig13PerfectAndOpen(t *testing.T) {
	rows, err := Fig13(qo)
	if err != nil {
		t.Fatal(err)
	}
	get := func(w string, nw, nb int, p config.PagePolicy) Fig13Row {
		for _, r := range rows {
			if r.Workload == w && r.NW == nw && r.NB == nb && r.Policy == p {
				return r
			}
		}
		t.Fatalf("row %s (%d,%d) %v missing", w, nw, nb, p)
		return Fig13Row{}
	}
	// The perfect predictor's hit rate is 1 by construction.
	for _, cfg := range fig13Configs {
		r := get("429.mcf", cfg[0], cfg[1], config.PredPerfect)
		if r.HitRate < 0.999 {
			t.Errorf("perfect hit rate at (%d,%d) = %v", cfg[0], cfg[1], r.HitRate)
		}
	}
	// §VI-C: 429.mcf is the outlier where prediction helps most (the
	// paper reports up to 11.2%% at (2,8)); the gap must exist but stay
	// bounded.
	open := get("429.mcf", 2, 8, config.OpenPage)
	perf := get("429.mcf", 2, 8, config.PredPerfect)
	if open.RelIPC < perf.RelIPC*0.75 {
		t.Errorf("open-page %v more than 25%% behind perfect %v at (2,8)",
			open.RelIPC, perf.RelIPC)
	}
	// On a high-spatial-locality workload open-page tracks the oracle
	// closely (the paper's "simple open-page is sufficient" claim).
	openC := get("canneal", 2, 8, config.OpenPage)
	perfC := get("canneal", 2, 8, config.PredPerfect)
	if openC.RelIPC < perfC.RelIPC*0.90 {
		t.Errorf("canneal: open %v more than 10%% behind perfect %v",
			openC.RelIPC, perfC.RelIPC)
	}
	if !strings.Contains(Fig13Table(rows).String(), "perfect") {
		t.Fatal("table render")
	}
}

func TestFig14InterfaceOrdering(t *testing.T) {
	rows, err := Fig14(qo)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Fig14Row{}
	for _, r := range rows {
		byKey[r.Workload+"/"+r.Interface.String()] = r
	}
	for _, w := range fig14Workloads(true) {
		pcb := byKey[w+"/DDR3-PCB"]
		lpddr := byKey[w+"/LPDDR-TSI"]
		// At quick fidelity (16 cores) the PCB's 8 channels are not yet
		// saturated, so IPC shows rough parity while the energy win is
		// already decisive; the full 64-core runs used for
		// EXPERIMENTS.md reproduce Fig. 14's IPC gap too.
		if lpddr.RelIPC <= 0.9 {
			t.Errorf("%s: LPDDR-TSI relIPC = %v, want near or above PCB", w, lpddr.RelIPC)
		}
		if lpddr.RelInvEDP <= 1.2 {
			t.Errorf("%s: LPDDR-TSI 1/EDP gain = %v, want > 1.2", w, lpddr.RelInvEDP)
		}
		// §VI-D: ACT/PRE share of memory power grows under LPDDR-TSI.
		if lpddr.ActPreShare <= pcb.ActPreShare {
			t.Errorf("%s: ACT/PRE share did not grow: %v vs %v",
				w, lpddr.ActPreShare, pcb.ActPreShare)
		}
	}
	if !strings.Contains(Fig14Table(rows).String(), "LPDDR-TSI") {
		t.Fatal("table render")
	}
}

func TestHeadlineGains(t *testing.T) {
	h, err := Headline(qo)
	if err != nil {
		t.Fatal(err)
	}
	if h.IPCGain <= 1.1 {
		t.Errorf("IPC gain = %v, want well above 1 (paper: 1.62)", h.IPCGain)
	}
	if h.InvEDPGain <= h.IPCGain {
		t.Errorf("EDP gain %v should exceed IPC gain %v (paper: 4.80 vs 1.62)",
			h.InvEDPGain, h.IPCGain)
	}
	if !strings.Contains(HeadlineTable(h).String(), "1.62") {
		t.Fatal("table render")
	}
}

func TestOptionsDefaults(t *testing.T) {
	full := Options{}.withDefaults()
	if full.Instr != 240000 || full.Cores != 64 || full.Seed != 42 {
		t.Fatalf("full defaults = %+v", full)
	}
	quick := Options{Quick: true}.withDefaults()
	if quick.Instr != 30000 || quick.Cores != 16 {
		t.Fatalf("quick defaults = %+v", quick)
	}
}

func TestSpecGroupSelection(t *testing.T) {
	if len(specGroup("spec-high", false)) != 9 {
		t.Fatal("full spec-high")
	}
	if len(specGroup("spec-high", true)) >= 9 {
		t.Fatal("quick spec-high not reduced")
	}
	if got := specGroup("429.mcf", false); len(got) != 1 || got[0] != "429.mcf" {
		t.Fatalf("single workload = %v", got)
	}
}

func TestGridCSV(t *testing.T) {
	csv := Fig6a().CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 6 {
		t.Fatalf("csv lines = %d, want 6", len(lines))
	}
	if !strings.HasPrefix(lines[0], "nB\\nW,1,2,4,8,16") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "1.0000") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestGridSVG(t *testing.T) {
	svg := Fig6a().SVG("Fig. 6a <area>")
	for _, want := range []string{"<svg", "</svg>", "&lt;area&gt;", "1.267", "rect"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if n := strings.Count(svg, "<rect"); n != 25 {
		t.Errorf("cells = %d, want 25", n)
	}
	// Degenerate grid (all equal) must not divide by zero.
	g := &GridData{Metric: "x", Rel: map[[2]int]float64{}}
	for _, b := range Axis {
		for _, w := range Axis {
			g.Rel[[2]int{w, b}] = 1.0
		}
	}
	if out := g.SVG("flat"); !strings.Contains(out, "1.000") {
		t.Error("flat grid render")
	}
}
