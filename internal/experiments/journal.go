package experiments

// On-disk sweep journal: an append-only JSONL checkpoint of completed
// campaign cells. Line 1 is a header binding the journal to a campaign
// key (experiment + fidelity options + report schema version); each
// further line is one completed cell's full system.Result. On resume,
// journaled cells are returned without re-simulation — and because Go's
// JSON encoding round-trips float64 exactly, a resumed campaign's
// arithmetic (and therefore its final report) is byte-identical to an
// uninterrupted run. Failed cells are never journaled, so a resumed
// campaign re-attempts exactly its missing and failed cells.
//
// All disk traffic goes through store.FS, so journal durability is
// testable under the same injectable fault layer as the result store.
// A mid-campaign write failure breaks the journal sticky — record keeps
// returning the failure so the supervisor can warn once and disable
// checkpointing — but never fails a healthy cell (the campaign
// continues un-journaled; see Resilience.checkpoint).

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"microbank/internal/store"
	"microbank/internal/system"
)

const (
	journalMagic   = "microbank-sweep-journal"
	journalVersion = 1
)

type journalHeader struct {
	Journal string `json:"journal"`
	Version int    `json:"version"`
	Key     string `json:"key"`
}

type journalCell struct {
	Sweep  int           `json:"sweep"`
	Cell   int           `json:"cell"`
	Result system.Result `json:"result"`
}

// CampaignKey identifies a campaign for journal binding: experiment
// name plus every option that influences results, plus the report
// schema version (a schema bump invalidates old checkpoints).
// Parallelism is deliberately excluded — results are identical at any
// -j width.
func CampaignKey(experiment string, o Options) string {
	o = o.withDefaults()
	return fmt.Sprintf("%s|schema=%d|quick=%v|instr=%d|cores=%d|seed=%d",
		experiment, reportSchemaVersion, o.Quick, o.Instr, o.Cores, o.Seed)
}

// Journal is a resumable sweep checkpoint. Safe for concurrent use by
// sweep workers.
type Journal struct {
	mu     sync.Mutex
	f      store.File
	w      *bufio.Writer
	cells  map[[2]int]system.Result
	hits   int
	broken error // sticky write error; surfaces on the next record
}

// OpenJournal opens a sweep journal at path for the campaign named by
// key, on the real filesystem.
func OpenJournal(path, key string, resume bool) (*Journal, error) {
	return OpenJournalFS(path, key, resume, nil)
}

// OpenJournalFS is OpenJournal on an explicit filesystem (store.OS when
// nil) — the seam fault-injection tests use. With resume set and an
// existing journal present, previously completed cells are loaded (a
// key mismatch is an error — the journal belongs to a different
// campaign or code version, and replaying it would silently mix
// results); a trailing line truncated by a crash is tolerated and
// dropped. Without resume, any existing file is truncated and a fresh
// journal started.
func OpenJournalFS(path, key string, resume bool, fsys store.FS) (*Journal, error) {
	if fsys == nil {
		fsys = store.OS
	}
	j := &Journal{cells: map[[2]int]system.Result{}}
	if resume {
		if err := j.load(path, key, fsys); err != nil {
			return nil, err
		}
	}
	if j.f == nil { // fresh journal (no resume, or nothing to resume)
		f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return nil, fmt.Errorf("journal: %w", err)
		}
		j.f = f
		j.w = bufio.NewWriter(f)
		hdr, _ := json.Marshal(journalHeader{Journal: journalMagic, Version: journalVersion, Key: key})
		if _, err := j.w.Write(append(hdr, '\n')); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: %w", err)
		}
		if err := j.flush(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return j, nil
}

// load reads an existing journal and reopens it for appending. Leaves
// j.f nil when the file does not exist (resume of a fresh campaign).
func (j *Journal) load(path, key string, fsys store.FS) error {
	data, err := fsys.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	lines := bytes.Split(data, []byte{'\n'})
	if len(lines) == 0 || len(bytes.TrimSpace(lines[0])) == 0 {
		return nil // empty file: treat as fresh
	}
	var hdr journalHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil || hdr.Journal != journalMagic {
		return fmt.Errorf("journal: %s is not a sweep journal", path)
	}
	if hdr.Version != journalVersion {
		return fmt.Errorf("journal: %s has version %d, this build writes %d", path, hdr.Version, journalVersion)
	}
	if hdr.Key != key {
		return fmt.Errorf("journal: %s belongs to campaign %q, not %q — results would not be comparable (use a fresh -journal path)",
			path, hdr.Key, key)
	}
	for _, line := range lines[1:] {
		var c journalCell
		if err := json.Unmarshal(line, &c); err != nil {
			break // truncated tail from an interrupted run: drop it
		}
		j.cells[[2]int{c.Sweep, c.Cell}] = c.Result
	}
	af, err := fsys.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.f = af
	j.w = bufio.NewWriter(af)
	return nil
}

// lookup returns the journaled result of a cell, counting the hit.
func (j *Journal) lookup(sweep, cell int) (system.Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	res, ok := j.cells[[2]int{sweep, cell}]
	if ok {
		j.hits++
	}
	return res, ok
}

// has reports whether a cell is already journaled, without counting a
// replay hit — the checkpoint path uses it to avoid re-appending cells
// served from the result store.
func (j *Journal) has(sweep, cell int) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	_, ok := j.cells[[2]int{sweep, cell}]
	return ok
}

// record appends a completed cell and flushes it to disk, so a kill at
// any instant loses at most the in-flight line. The first write failure
// breaks the journal sticky: every later record returns the same error
// without touching the file again, and Close stops reporting it (the
// supervisor has already surfaced it once).
func (j *Journal) record(sweep, cell int, res system.Result) error {
	line, err := json.Marshal(journalCell{Sweep: sweep, Cell: cell, Result: res})
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.broken != nil {
		return j.broken
	}
	j.cells[[2]int{sweep, cell}] = res
	if _, err := j.w.Write(append(line, '\n')); err != nil {
		j.broken = fmt.Errorf("journal: %w", err)
		return j.broken
	}
	return j.flushLocked()
}

// Hits reports how many cells were served from the journal.
func (j *Journal) Hits() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.hits
}

// Cells reports how many completed cells the journal holds.
func (j *Journal) Cells() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.cells)
}

// Snapshot returns a copy of every journaled cell, keyed by
// (sweep, cell) — the migration feed for the result store.
func (j *Journal) Snapshot() map[[2]int]system.Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[[2]int]system.Result, len(j.cells))
	for k, v := range j.cells {
		out[k] = v
	}
	return out
}

func (j *Journal) flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.flushLocked()
}

func (j *Journal) flushLocked() error {
	if err := j.w.Flush(); err != nil {
		j.broken = fmt.Errorf("journal: %w", err)
		return j.broken
	}
	return nil
}

// Close flushes and closes the journal file. A journal already broken
// by a mid-campaign write failure closes silently: the failure was
// surfaced when it happened (record's sticky error → the supervisor's
// one-line warning), and failing the whole campaign at exit for a
// checkpoint that was already reported lost would punish healthy
// results.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.broken != nil {
		j.f.Close()
		return nil
	}
	ferr := j.w.Flush()
	cerr := j.f.Close()
	if ferr != nil {
		return fmt.Errorf("journal: %w", ferr)
	}
	if cerr != nil {
		return fmt.Errorf("journal: %w", cerr)
	}
	return nil
}
