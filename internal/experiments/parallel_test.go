package experiments

import (
	"reflect"
	"testing"
)

// TestFig8ParallelDeterminism asserts the tentpole invariant of the
// worker-pool rewiring: a sweep's output is deeply equal at every
// parallelism width, because runs are seeded explicitly and reduced in
// job order regardless of completion schedule.
func TestFig8ParallelDeterminism(t *testing.T) {
	small := Options{Quick: true, Instr: 8000, Cores: 8, Seed: 7}
	serial := small
	serial.Parallelism = 1
	wide := small
	wide.Parallelism = 8

	ipc1, edp1, err := Fig8And9(serial)
	if err != nil {
		t.Fatal(err)
	}
	ipc8, edp8, err := Fig8And9(wide)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ipc1, ipc8) {
		t.Errorf("IPC grids differ between -j 1 and -j 8:\n%+v\n%+v", ipc1, ipc8)
	}
	if !reflect.DeepEqual(edp1, edp8) {
		t.Errorf("1/EDP grids differ between -j 1 and -j 8:\n%+v\n%+v", edp1, edp8)
	}
}

// TestHeadlineParallelDeterminism covers the paired-run reduction
// (baseline and μbank runs of one benchmark land at different indexes).
func TestHeadlineParallelDeterminism(t *testing.T) {
	small := Options{Quick: true, Instr: 8000, Cores: 8, Seed: 7}
	serial := small
	serial.Parallelism = 1
	wide := small
	wide.Parallelism = 8

	h1, err := Headline(serial)
	if err != nil {
		t.Fatal(err)
	}
	h8, err := Headline(wide)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h8 {
		t.Errorf("headline differs between -j 1 and -j 8: %+v vs %+v", h1, h8)
	}
}

// TestBestDeterministicOnTies pins the fixed-axis-order scan: with two
// equal maxima the smallest (nB, nW) in Axis order must win, not
// whichever a map iteration happens to visit first.
func TestBestDeterministicOnTies(t *testing.T) {
	g := &GridData{Metric: "IPC", Rel: map[[2]int]float64{}}
	for _, b := range Axis {
		for _, w := range Axis {
			g.Rel[[2]int{w, b}] = 1.0
		}
	}
	g.Rel[[2]int{4, 2}] = 2.0
	g.Rel[[2]int{2, 4}] = 2.0 // tied; (nB=2, nW=4) comes first in Axis order
	for i := 0; i < 20; i++ {
		nW, nB, val := g.Best()
		if nW != 4 || nB != 2 || val != 2.0 {
			t.Fatalf("Best() = (%d,%d,%v), want (4,2,2) deterministically", nW, nB, val)
		}
	}
}
