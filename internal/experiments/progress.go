package experiments

// Progress-callback rate limiting for the -progress stderr heartbeat:
// large fast sweeps can complete hundreds of cells per second, and an
// unthrottled heartbeat emits one line per cell. ThrottleProgress caps
// the cadence by wall time while guaranteeing the terminal 100% lines
// still appear.

import (
	"sync"
	"time"
)

// ThrottleProgress wraps a Progress callback with a time-based rate
// limit: at most one delivery per min interval, except that a terminal
// update (done == total) is always delivered — every sweep's final
// 100% line survives throttling. Safe for concurrent use from worker
// goroutines, like the callback it wraps.
func ThrottleProgress(min time.Duration, fn func(done, total int)) func(done, total int) {
	return throttleProgress(min, fn, time.Now)
}

// throttleProgress is the testable core with an injectable clock.
func throttleProgress(min time.Duration, fn func(done, total int), now func() time.Time) func(done, total int) {
	if min <= 0 {
		return fn
	}
	var mu sync.Mutex
	var last time.Time
	return func(done, total int) {
		mu.Lock()
		t := now()
		if done != total && !last.IsZero() && t.Sub(last) < min {
			mu.Unlock()
			return
		}
		last = t
		mu.Unlock()
		fn(done, total)
	}
}
