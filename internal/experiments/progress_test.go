package experiments

import (
	"sync"
	"testing"
	"time"
)

func TestThrottleProgress(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	var got [][2]int
	fn := throttleProgress(100*time.Millisecond, func(done, total int) {
		got = append(got, [2]int{done, total})
	}, clock)

	// A fast sweep: 50 updates inside one throttle window. Only the
	// first and the terminal one may pass.
	for i := 1; i <= 50; i++ {
		fn(i, 50)
	}
	if len(got) != 2 || got[0] != [2]int{1, 50} || got[1] != [2]int{50, 50} {
		t.Fatalf("deliveries = %v, want [[1 50] [50 50]]", got)
	}

	// Time advancing past the interval re-opens the gate.
	got = nil
	now = now.Add(150 * time.Millisecond)
	fn(3, 10)
	fn(4, 10) // same instant: suppressed
	now = now.Add(99 * time.Millisecond)
	fn(5, 10) // inside the window: suppressed
	now = now.Add(1 * time.Millisecond)
	fn(6, 10) // window over: delivered
	if len(got) != 2 || got[0] != [2]int{3, 10} || got[1] != [2]int{6, 10} {
		t.Fatalf("deliveries = %v, want [[3 10] [6 10]]", got)
	}

	// Terminal updates always pass, even back-to-back (one per sweep of
	// a multi-sweep campaign).
	got = nil
	fn(10, 10)
	fn(8, 8)
	if len(got) != 2 {
		t.Fatalf("terminal deliveries = %v, want both", got)
	}
}

func TestThrottleProgressZeroInterval(t *testing.T) {
	calls := 0
	fn := ThrottleProgress(0, func(done, total int) { calls++ })
	fn(1, 3)
	fn(2, 3)
	if calls != 2 {
		t.Fatalf("zero interval must not throttle; calls = %d", calls)
	}
}

// TestThrottleProgressConcurrent: the wrapper must stay safe under the
// concurrent delivery the sweep pool produces (race detector checks).
func TestThrottleProgressConcurrent(t *testing.T) {
	var mu sync.Mutex
	seen := 0
	fn := ThrottleProgress(time.Millisecond, func(done, total int) {
		mu.Lock()
		seen++
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				fn(i*100+j, 100000)
			}
		}(i)
	}
	wg.Wait()
	fn(100000, 100000)
	mu.Lock()
	defer mu.Unlock()
	if seen == 0 {
		t.Fatal("no deliveries at all")
	}
}
