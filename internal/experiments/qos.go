package experiments

// QoS & scheduling sweep: tail latency and fairness across the three
// ways this model can multiply row buffers or police them —
//
//   - SALP-style subarray parallelism (Kim et al., ISCA 2012; see
//     PAPERS.md), which splits each bank into pseudo-banks that share
//     the bank's I/O but keep private row buffers;
//   - the paper's μbank partitioning, which genuinely multiplies
//     banks (and pays the area/energy for it);
//   - a MemGuard-style per-(thread, bank) bandwidth regulator
//     (Yun et al., 2013/2014; see PAPERS.md) composed under the
//     scheduler.
//
// Where the paper's figures report throughput means, this sweep
// reports the distribution tail: p50/p95/p99/max request latency,
// worst-thread slowdown, and Jain's fairness index, on the
// multiprogrammed high-MAPKI mix over two busy channels. The
// analytic worst-case counterpart to the regulated rows lives in
// internal/qos.

import (
	"fmt"

	"microbank/internal/config"
	"microbank/internal/stats"
	"microbank/internal/system"
	"microbank/internal/workload"
)

// QoSRow is one (organization, policy) measurement.
type QoSRow struct {
	Org    string
	Policy string
	IPC    float64
	// Whole-run request-latency quantiles in nanoseconds (histograms
	// cannot be warm-subtracted, so unlike IPC these include warm-up).
	P50NS, P95NS, P99NS, MaxNS float64
	MaxSlowdown                float64
	Fairness                   float64
}

// QoSSweep measures the organization × policy matrix: conventional,
// SALP-16 (same row-buffer count as the μbank point, none of its bank
// parallelism), and the (2,8) μbank device, each under FR-FCFS,
// PAR-BS, and PAR-BS with the bandwidth regulator.
func QoSSweep(o Options) ([]QoSRow, error) {
	o = o.withDefaults()
	orgs := []struct {
		name   string
		nw, nb int
		subs   int
	}{
		{"conventional (1,1)", 1, 1, 0},
		{"SALP-16 (1,1)", 1, 1, 16},
		{"ubank (2,8)", 2, 8, 0},
	}
	policies := []struct {
		name   string
		sched  config.Scheduler
		budget int
	}{
		{"FR-FCFS", config.SchedFRFCFS, 0},
		{"PAR-BS", config.SchedPARBS, 0},
		{"PAR-BS+reg", config.SchedPARBS, 4},
	}
	type job struct {
		org int
		pol int
	}
	var jobs []job
	for oi := range orgs {
		for pi := range policies {
			jobs = append(jobs, job{oi, pi})
		}
	}
	results, failed, err := mapSpecRuns(o, jobs, func(j job) system.Spec {
		org, pol := orgs[j.org], policies[j.pol]
		return specMulti(workload.MixHigh().ForCore, config.LPDDRTSI, org.nw, org.nb,
			func(s *config.System) {
				s.Mem.Org.Channels = 2 // concentrate interference
				s.Mem.Org.SubarraysPerBank = org.subs
				s.Ctrl.Scheduler = pol.sched
				s.Ctrl.BankBudget = pol.budget
			}, o)
	}, nil)
	if err != nil {
		return nil, err
	}
	if err := partialUnsupported("qos", failed); err != nil {
		return nil, err
	}
	var rows []QoSRow
	for i, j := range jobs {
		res := results[i]
		rows = append(rows, QoSRow{
			Org: orgs[j.org].name, Policy: policies[j.pol].name,
			IPC:   res.IPC,
			P50NS: res.LatP50NS, P95NS: res.LatP95NS,
			P99NS: res.LatP99NS, MaxNS: res.LatMaxNS,
			MaxSlowdown: res.MaxSlowdown,
			Fairness:    res.FairnessIndex,
		})
	}
	return rows, nil
}

// QoSTable renders the sweep with separators between organizations.
func QoSTable(rows []QoSRow) *stats.Table {
	t := stats.NewTable("QoS & scheduling: tail latency and fairness (mix-high, 2 channels)",
		"Organization", "Policy", "IPC", "p50 ns", "p95 ns", "p99 ns", "max ns", "MaxSlowdown", "Fairness")
	prev := ""
	for _, r := range rows {
		if prev != "" && r.Org != prev {
			t.AddSeparator()
		}
		prev = r.Org
		t.AddRow(r.Org, r.Policy, r.IPC,
			fmt.Sprintf("%.1f", r.P50NS), fmt.Sprintf("%.1f", r.P95NS),
			fmt.Sprintf("%.1f", r.P99NS), fmt.Sprintf("%.1f", r.MaxNS),
			fmt.Sprintf("%.3f", r.MaxSlowdown), fmt.Sprintf("%.3f", r.Fairness))
	}
	return t
}
