package experiments

// Related-work comparisons (§VII):
//
//   - SALP (Kim et al., ISCA'12) exposes subarray-level parallelism:
//     more independent row buffers per bank without shrinking the row —
//     the μbank design subsumes it as a bitline-only partitioning
//     (nW=1, nB>1).
//   - Half-DRAM (Zhang et al., ISCA'14) halves the activated row —
//     subsumed as a wordline-only partitioning (nW=2, nB=1).
//   - Rank subsetting (mini-rank / Multicore-DIMM / BOOM) activates a
//     subset of the chips in a rank: the activated row shrinks like a
//     wordline partition, but each transfer needs proportionally more
//     bus beats — subsumed as nW-partitioning plus a longer burst.
//   - HMC (Pawlowski, Hot Chips'11) reaches a DRAM stack over serial
//     links; the paper argues (and leaves as future work to quantify)
//     that its SerDes latency and static power make it less
//     energy-efficient than TSI at single-socket scale.
//
// RelatedWork measures all of them against the μbank configuration on
// the same workload set.

import (
	"fmt"

	"microbank/internal/config"
	"microbank/internal/dramarea"
	"microbank/internal/sim"
	"microbank/internal/stats"
	"microbank/internal/system"
)

// RelatedRow is one design point of the related-work comparison.
type RelatedRow struct {
	Design    string
	Interface config.Interface
	NW, NB    int
	RelIPC    float64 // vs the conventional LPDDR-TSI baseline
	RelInvEDP float64
	AreaOver  float64 // die-area overhead of the partitioning
	// rankSubset > 1 models mini-rank-style chip subsetting: the burst
	// occupies the bus rankSubset× longer (narrower effective datapath).
	rankSubset int
}

// RelatedWork compares SALP-like, Half-DRAM-like, μbank, and HMC-serial
// design points over the spec-high group (single-core runs, per the
// paper's single-threaded methodology).
func RelatedWork(o Options) ([]RelatedRow, error) {
	o = o.withDefaults()
	points := []RelatedRow{
		{Design: "conventional (baseline)", Interface: config.LPDDRTSI, NW: 1, NB: 1},
		{Design: "SALP-like (subarray parallelism)", Interface: config.LPDDRTSI, NW: 1, NB: 8},
		{Design: "Half-DRAM-like (half row)", Interface: config.LPDDRTSI, NW: 2, NB: 1},
		{Design: "rank-subset-like (1/4 rank)", Interface: config.LPDDRTSI, NW: 4, NB: 1, rankSubset: 4},
		{Design: "ubank (2,8)", Interface: config.LPDDRTSI, NW: 2, NB: 8},
		{Design: "HMC-serial (1,1)", Interface: config.HMCSerial, NW: 1, NB: 1},
	}
	names := specGroup("spec-high", o.Quick)
	// One job per (benchmark, design point), enumerated benchmark-outer
	// to match the serial reduction order.
	type job struct {
		name string
		pt   RelatedRow
	}
	var jobs []job
	for _, name := range names {
		for _, pt := range points {
			jobs = append(jobs, job{name, pt})
		}
	}
	results, failed, err := mapRuns(o, jobs, func(env runEnv, j job) (system.Result, error) {
		mut := func(*config.System) {}
		if k := j.pt.rankSubset; k > 1 {
			mut = func(s *config.System) {
				s.Mem.Timing.TBL *= sim.Time(k)
				s.Mem.Timing.TCCD *= sim.Time(k)
			}
		}
		return runSingle(j.name, j.pt.Interface, j.pt.NW, j.pt.NB, mut, o, env)
	})
	if err != nil {
		return nil, err
	}
	if err := partialUnsupported("related-work", failed); err != nil {
		return nil, err
	}
	type agg struct{ ipc, edp float64 }
	sums := make([]agg, len(points))
	for ni := range names {
		var base agg
		for i := range points {
			res := results[ni*len(points)+i]
			if i == 0 {
				base = agg{ipc: res.IPC, edp: res.Breakdown.EDPJs()}
			}
			sums[i].ipc += res.IPC / base.ipc / float64(len(names))
			sums[i].edp += base.edp / res.Breakdown.EDPJs() / float64(len(names))
		}
	}
	out := make([]RelatedRow, len(points))
	for i, pt := range points {
		pt.RelIPC = sums[i].ipc
		pt.RelInvEDP = sums[i].edp
		pt.AreaOver = dramarea.RelativeArea(pt.NW, pt.NB) - 1
		out[i] = pt
	}
	return out, nil
}

// RelatedWorkTable renders the comparison.
func RelatedWorkTable(rows []RelatedRow) *stats.Table {
	t := stats.NewTable("Related work mapped onto the μbank design space (spec-high)",
		"Design", "Interface", "(nW,nB)", "RelIPC", "Rel1/EDP", "Area overhead")
	for _, r := range rows {
		t.AddRow(r.Design, r.Interface.String(),
			formatCfg(r.NW, r.NB), r.RelIPC, r.RelInvEDP, r.AreaOver)
	}
	return t
}

func formatCfg(nW, nB int) string { return fmt.Sprintf("(%d,%d)", nW, nB) }
