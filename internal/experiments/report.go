package experiments

// Machine-readable run reports: every experiment's tables and grids,
// plus ad-hoc run metrics and pointers to emitted artifacts (trace
// files, epoch CSVs), serialized as one JSON document. The report is a
// faithful structured mirror of the text tables printed on stdout —
// same cells, same formatting — so downstream tooling never has to
// scrape fixed-width text.

import (
	"encoding/json"
	"os"
	"sort"

	"microbank/internal/stats"
	"microbank/internal/system"
)

// reportSchemaVersion bumps when the JSON layout changes incompatibly.
const reportSchemaVersion = 1

// Report is one invocation's machine-readable output.
type Report struct {
	Tool          string `json:"tool"`
	SchemaVersion int    `json:"schema_version"`
	Experiment    string `json:"experiment"`

	// Echo of the fidelity options the run used.
	Quick       bool   `json:"quick"`
	Instr       uint64 `json:"instr"`
	Cores       int    `json:"cores"`
	Seed        int64  `json:"seed"`
	Parallelism int    `json:"parallelism"`

	Tables    []ReportTable      `json:"tables,omitempty"`
	Grids     []ReportGrid       `json:"grids,omitempty"`
	Metrics   map[string]float64 `json:"metrics,omitempty"`
	Artifacts map[string]string  `json:"artifacts,omitempty"`

	// Failures lists cells that failed under -fail-mode=collect|degrade,
	// with enough structure (kind taxonomy, digest, stack, machine
	// diagnostic) to debug without rerunning. Absent on healthy runs, so
	// their reports are byte-identical to pre-resilience output.
	Failures []ReportFailure `json:"failures,omitempty"`

	// Aborted carries the terminal error of a run that was killed
	// mid-flight (panic, tripped limit, protocol violation): the report
	// is still flushed as valid JSON so partial artifacts load, and this
	// marker tells consumers it is not a completed run. Absent — and the
	// report byte-identical to before the field existed — on success.
	Aborted string `json:"aborted,omitempty"`
}

// ReportFailure is one failed sweep cell. Kind is one of panic,
// protocol, error, or a system limit kind (deadline, event-budget,
// livelock, cancelled, stall). Records contain no wall-clock values —
// a resumed campaign reproduces them byte-for-byte.
type ReportFailure struct {
	Sweep    int          `json:"sweep"`
	Cell     int          `json:"cell"`
	Kind     string       `json:"kind"`
	Digest   string       `json:"digest,omitempty"`
	Attempts int          `json:"attempts"`
	Error    string       `json:"error"`
	Stack    string       `json:"stack,omitempty"`
	Diag     *system.Diag `json:"diag,omitempty"`
}

// ReportTable mirrors one stats.Table.
type ReportTable struct {
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// ReportGrid mirrors one GridData over the (nW, nB) axes.
type ReportGrid struct {
	Workload string       `json:"workload"`
	Metric   string       `json:"metric"`
	Axis     []int        `json:"axis"`
	Cells    []ReportCell `json:"cells"`
}

// ReportCell is one grid point. Failed marks cells excluded from a
// degraded reduction (their Value is zero, not a measurement).
type ReportCell struct {
	NW     int     `json:"nw"`
	NB     int     `json:"nb"`
	Value  float64 `json:"value"`
	Failed bool    `json:"failed,omitempty"`
}

// NewReport starts a report for the named experiment with the given
// options (defaults applied, so the echo reflects what actually ran).
func NewReport(experiment string, o Options) *Report {
	o = o.withDefaults()
	return &Report{
		Tool:          "microbank",
		SchemaVersion: reportSchemaVersion,
		Experiment:    experiment,
		Quick:         o.Quick,
		Instr:         o.Instr,
		Cores:         o.Cores,
		Seed:          o.Seed,
		Parallelism:   o.Parallelism,
	}
}

// AddTable appends a structured copy of t.
func (r *Report) AddTable(t *stats.Table) {
	rt := ReportTable{
		Title:  t.Title,
		Header: append([]string(nil), t.Header...),
	}
	for i := 0; i < t.NumRows(); i++ {
		rt.Rows = append(rt.Rows, t.Row(i))
	}
	r.Tables = append(r.Tables, rt)
}

// AddGrid appends a structured copy of g, cells in fixed Axis order.
func (r *Report) AddGrid(g *GridData) {
	rg := ReportGrid{
		Workload: g.Workload,
		Metric:   g.Metric,
		Axis:     append([]int(nil), Axis...),
	}
	for _, b := range Axis {
		for _, w := range Axis {
			rg.Cells = append(rg.Cells, ReportCell{NW: w, NB: b, Value: g.At(w, b),
				Failed: g.Missing[[2]int{w, b}]})
		}
	}
	r.Grids = append(r.Grids, rg)
}

// AddFailures copies the campaign's failure records into the report.
func (r *Report) AddFailures(log *FailureLog) {
	if log == nil {
		return
	}
	if fails := log.Failures(); len(fails) > 0 {
		r.Failures = fails
	}
}

// SetMetric records one named scalar (ad-hoc run summaries).
func (r *Report) SetMetric(name string, v float64) {
	if r.Metrics == nil {
		r.Metrics = map[string]float64{}
	}
	r.Metrics[name] = v
}

// Artifact records the path of an emitted side file (trace, epoch CSV,
// SVG) under a short kind key.
func (r *Report) Artifact(kind, path string) {
	if r.Artifacts == nil {
		r.Artifacts = map[string]string{}
	}
	r.Artifacts[kind] = path
}

// MetricNames returns the recorded metric names, sorted.
func (r *Report) MetricNames() []string {
	names := make([]string, 0, len(r.Metrics))
	for n := range r.Metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// JSON serializes the report (indented, trailing newline).
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", " ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile writes the report JSON to path.
func (r *Report) WriteFile(path string) error {
	b, err := r.JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
