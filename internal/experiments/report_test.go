package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"microbank/internal/stats"
)

func TestReportRoundTrip(t *testing.T) {
	r := NewReport("fig8", Options{Quick: true, Seed: 7})
	tb := stats.NewTable("demo", "A", "B")
	tb.AddRow("x", 1.5)
	tb.AddRow("y", 2)
	r.AddTable(tb)

	g := &GridData{Workload: "429.mcf", Metric: "IPC", Rel: map[[2]int]float64{}}
	for _, b := range Axis {
		for _, w := range Axis {
			g.Rel[[2]int{w, b}] = float64(w * b)
		}
	}
	r.AddGrid(g)
	r.SetMetric("ipc", 0.42)
	r.Artifact("trace", "out.trace.json")

	b, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("report JSON does not parse: %v", err)
	}
	if back.Tool != "microbank" || back.Experiment != "fig8" || !back.Quick {
		t.Fatalf("header fields lost: %+v", back)
	}
	// Defaults were applied in the echo.
	if back.Instr == 0 || back.Cores == 0 || back.Seed != 7 {
		t.Fatalf("option echo missing defaults: %+v", back)
	}
	if len(back.Tables) != 1 || len(back.Tables[0].Rows) != 2 ||
		back.Tables[0].Rows[0][1] != "1.500" {
		t.Fatalf("table did not round-trip: %+v", back.Tables)
	}
	if len(back.Grids) != 1 || len(back.Grids[0].Cells) != len(Axis)*len(Axis) {
		t.Fatalf("grid did not round-trip: %+v", back.Grids)
	}
	if back.Grids[0].Cells[0] != (ReportCell{NW: 1, NB: 1, Value: 1}) {
		t.Fatalf("first grid cell = %+v, want (1,1,1)", back.Grids[0].Cells[0])
	}
	if back.Metrics["ipc"] != 0.42 || back.Artifacts["trace"] != "out.trace.json" {
		t.Fatalf("metrics/artifacts lost: %+v %+v", back.Metrics, back.Artifacts)
	}
	if got := r.MetricNames(); !reflect.DeepEqual(got, []string{"ipc"}) {
		t.Fatalf("MetricNames = %v", got)
	}
}

func TestReportWriteFile(t *testing.T) {
	r := NewReport("run", Options{})
	path := filepath.Join(t.TempDir(), "report.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var back Report
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.SchemaVersion != reportSchemaVersion {
		t.Fatalf("schema version = %d, want %d", back.SchemaVersion, reportSchemaVersion)
	}
}

// TestProgressCallbackDeterminism is the heartbeat half of the
// observability determinism invariant: wiring a Progress callback into
// a sweep must not change its results at any parallelism width, and the
// callback must see exactly one call per run with a final done == total.
func TestProgressCallbackDeterminism(t *testing.T) {
	base := Options{Quick: true, Instr: 8000, Cores: 8, Seed: 7, Parallelism: 1}

	quiet, _, err := Fig8And9(base)
	if err != nil {
		t.Fatal(err)
	}

	for _, width := range []int{1, 8} {
		var mu sync.Mutex
		calls, lastDone, lastTotal := 0, 0, 0
		o := base
		o.Parallelism = width
		o.Progress = func(done, total int) {
			mu.Lock()
			calls++
			if done > lastDone {
				lastDone = done
			}
			lastTotal = total
			mu.Unlock()
		}
		noisy, _, err := Fig8And9(o)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(quiet, noisy) {
			t.Errorf("-j %d: Progress callback changed the sweep results", width)
		}
		if calls == 0 {
			t.Errorf("-j %d: Progress never invoked", width)
		}
		if lastDone != lastTotal || lastTotal == 0 {
			t.Errorf("-j %d: final progress %d/%d, want done == total > 0", width, lastDone, lastTotal)
		}
	}
}
