package experiments

// Sweep resilience: Options.Res arms the resilient execution path of
// mapRuns — per-cell panic isolation and retries (parallel.MapPolicy),
// per-run limits (system.Limits), a structured failure log that flows
// into the Report's failures section, and an on-disk journal that lets
// an interrupted or partially failed campaign resume from its completed
// cells. Cells are addressed as (sweep, cell): experiments begin their
// sweeps serially in deterministic order, so the addressing — and
// therefore the journal and the failure log — is stable across runs
// and across -j widths.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"microbank/internal/check"
	"microbank/internal/obs"
	"microbank/internal/parallel"
	"microbank/internal/store"
	"microbank/internal/system"
)

// Failure kinds beyond the limit taxonomy of system.LimitError (whose
// Kind strings — deadline, event-budget, livelock, cancelled, stall —
// are reported verbatim).
const (
	FailKindPanic    = "panic"    // cell panicked (stack recorded)
	FailKindProtocol = "protocol" // DRAM timing sanitizer fatal violation
	FailKindError    = "error"    // ordinary error return
)

// injectCheckEvents is the watchdog period used for injected limit
// faults: small enough that the injected limit trips at the very first
// check, making the trip point — and the whole failure record —
// deterministic.
const injectCheckEvents = 256

// Resilience configures sweep survival for one experiment campaign.
// The zero value of each field is the conservative default; a nil
// *Resilience in Options selects the original fail-fast path with no
// overhead.
type Resilience struct {
	// Mode decides what a failed cell does to the campaign: FailFast
	// aborts at the first failure; FailCollect and FailDegrade both run
	// every cell and report failures in the log (collect additionally
	// makes Err() non-nil so the CLI exits nonzero).
	Mode parallel.FailMode
	// Retries/Backoff bound re-attempts of transient failures
	// (wall-clock deadline trips; everything else in a deterministic
	// simulator fails identically on retry).
	Retries int
	Backoff time.Duration
	// Timeout and EventBudget bound every run of the campaign
	// (system.Limits.WallClock / EventBudget).
	Timeout     time.Duration
	EventBudget uint64
	// Journal, when non-nil, checkpoints completed cells so the
	// campaign can resume.
	Journal *Journal
	// Store, when non-nil, is the cross-campaign content-addressed
	// result store: completed cells are committed to it and looked up
	// before the journal, so identical cells are never simulated twice —
	// across resumes, across processes, across campaigns sharing the
	// directory. StoreKey is this campaign's key within it
	// (CampaignKey), binding entries to everything that influences
	// results.
	Store    *store.Store
	StoreKey string
	// OnDegrade, when non-nil, receives the one-line warning emitted
	// when a persistence path degrades mid-campaign (journal or store
	// write failure). Nil prints to stderr. Each path warns at most
	// once; the campaign itself never fails because its checkpoints
	// cannot persist.
	OnDegrade func(msg string)
	// Log accumulates structured failure records across the campaign's
	// sweeps (created on first use if nil).
	Log *FailureLog

	inject map[int]string // campaign cell index -> injected fault kind
	flaky  sync.Map       // cells whose injected transient already fired

	journalWarn, storeWarn sync.Once

	mu     sync.Mutex
	sweeps int
	cells  int
}

// SetInject arms deterministic fault injection from a CLI spec like
// "panic:1,timeout:3": a comma-separated list of kind:cell pairs,
// where cell counts campaign cells (across sweeps, in enumeration
// order) and kind is one of panic, error, timeout, budget, flaky
// (fails the first attempt with a retryable error, then succeeds).
func (r *Resilience) SetInject(spec string) error {
	if spec == "" {
		return nil
	}
	r.inject = map[int]string{}
	for _, part := range strings.Split(spec, ",") {
		kind, cellStr, ok := strings.Cut(part, ":")
		if !ok {
			return fmt.Errorf("bad inject spec %q (want kind:cell)", part)
		}
		cell, err := strconv.Atoi(cellStr)
		if err != nil || cell < 0 {
			return fmt.Errorf("bad inject cell in %q", part)
		}
		switch kind {
		case "panic", "error", "timeout", "budget", "flaky":
		default:
			return fmt.Errorf("unknown inject kind %q (panic | error | timeout | budget | flaky)", kind)
		}
		r.inject[cell] = kind
	}
	return nil
}

// injectionAt returns the armed fault kind for a campaign cell.
func (r *Resilience) injectionAt(g int) string { return r.inject[g] }

// firstAttempt reports (once) that the flaky injection at campaign
// cell g has not fired yet.
func (r *Resilience) firstAttempt(g int) bool {
	_, loaded := r.flaky.LoadOrStore(g, true)
	return !loaded
}

// beginSweep assigns the next sweep id and the campaign-cell base
// index for a sweep of the given size. Sweeps begin serially (each
// mapRuns call completes before the next starts), so ids and bases are
// deterministic.
func (r *Resilience) beginSweep(total int) (base, sweep int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.Log == nil {
		r.Log = &FailureLog{}
	}
	base, sweep = r.cells, r.sweeps
	r.sweeps++
	r.cells += total
	return base, sweep
}

// journalLookup consults the journal, if any.
func (r *Resilience) journalLookup(sweep, cell int) (system.Result, bool) {
	if r.Journal == nil {
		return system.Result{}, false
	}
	return r.Journal.lookup(sweep, cell)
}

// storeCellAddr is the cell's address within the result store. It is
// derivable from (sweep, cell) alone — no job description — so journal
// migration and lookup agree on it before any sweep enumerates its
// jobs.
func storeCellAddr(sweep, cell int) string {
	return fmt.Sprintf("sweep %d cell %d", sweep, cell)
}

// storeLookup consults the result store, if any. The store verifies
// checksums on read and quarantines anything invalid, so an ok result
// is exactly the bytes a completed run committed — and JSON round-trips
// float64 exactly, so the decoded Result is bit-identical to the
// original.
func (r *Resilience) storeLookup(sweep, cell int) (system.Result, bool) {
	if r.Store == nil {
		return system.Result{}, false
	}
	data, ok := r.Store.Get(r.StoreKey, storeCellAddr(sweep, cell))
	if !ok {
		return system.Result{}, false
	}
	var res system.Result
	if err := json.Unmarshal(data, &res); err != nil {
		// Checksummed payloads do not fail to decode unless the schema
		// moved underneath them; treat as a miss and re-simulate.
		return system.Result{}, false
	}
	return res, true
}

// degrade surfaces a persistence warning: OnDegrade when set, stderr
// otherwise.
func (r *Resilience) degrade(msg string) {
	if r.OnDegrade != nil {
		r.OnDegrade(msg)
		return
	}
	fmt.Fprintln(os.Stderr, "microbank: "+msg)
}

// journalCheckpoint records a completed cell in the journal, degrading
// on failure: the first write error (disk full, permissions, torn
// device) produces a single warning and disables further journaling —
// it never fails the cell, whose simulation result is healthy. Cells
// the journal already holds (store-served replays) are not re-appended.
func (r *Resilience) journalCheckpoint(sweep, cell int, res system.Result) {
	if r.Journal == nil || r.Journal.has(sweep, cell) {
		return
	}
	if err := r.Journal.record(sweep, cell, res); err != nil {
		r.journalWarn.Do(func() {
			r.degrade(fmt.Sprintf("warning: %v — journaling disabled, campaign continues without checkpoints", err))
		})
	}
}

// storeCheckpoint commits a completed cell to the result store,
// degrading on failure with the store's own sticky write-disable.
func (r *Resilience) storeCheckpoint(sweep, cell int, res system.Result) {
	if r.Store == nil {
		return
	}
	payload, err := json.Marshal(res)
	if err != nil {
		return
	}
	if err := r.Store.Put(r.StoreKey, storeCellAddr(sweep, cell), payload); err != nil {
		r.storeWarn.Do(func() {
			r.degrade("warning: " + err.Error())
		})
	}
}

// checkpoint persists a freshly simulated cell everywhere the campaign
// checkpoints — journal and store — with degrade-don't-fail semantics
// on both.
func (r *Resilience) checkpoint(sweep, cell int, res system.Result) {
	r.journalCheckpoint(sweep, cell, res)
	r.storeCheckpoint(sweep, cell, res)
}

// MigrateJournal seeds the result store with every cell the journal
// already holds, so a campaign resumed from a journal written before
// the store existed — or pointed at a fresh store directory — shares
// its completed work immediately. Cells the store already has are
// skipped without touching the hit/miss counters.
func (r *Resilience) MigrateJournal() {
	if r == nil || r.Store == nil || r.Journal == nil {
		return
	}
	for k, res := range r.Journal.Snapshot() {
		if r.Store.Has(r.StoreKey, storeCellAddr(k[0], k[1])) {
			continue
		}
		r.storeCheckpoint(k[0], k[1], res)
		if r.Store.WriteErr() != nil {
			return // store degraded; the warning already fired
		}
	}
}

// Err returns the campaign-level verdict once every sweep has run:
// non-nil in collect mode when failures were recorded. Degrade mode
// returns nil — partial results are the contract — and fail-fast
// campaigns never reach this point with failures.
func (r *Resilience) Err() error {
	if r == nil || r.Log == nil {
		return nil
	}
	if n := r.Log.Len(); n > 0 && r.Mode == parallel.FailCollect {
		return fmt.Errorf("sweep: %d cell(s) failed (failure records in the report)", n)
	}
	return nil
}

// RegisterMetrics exports the campaign's failure/retry counters into
// an obs registry as sweep.failures and sweep.retries gauges.
func (r *Resilience) RegisterMetrics(reg *obs.Registry) {
	r.mu.Lock()
	if r.Log == nil {
		r.Log = &FailureLog{}
	}
	log := r.Log
	r.mu.Unlock()
	reg.GaugeFunc("sweep.failures", func() float64 { return float64(log.Len()) })
	reg.GaugeFunc("sweep.retries", func() float64 { return float64(log.Retries()) })
	if s := r.Store; s != nil {
		reg.GaugeFunc("store.hits", func() float64 { return float64(s.Stats().Hits) })
		reg.GaugeFunc("store.misses", func() float64 { return float64(s.Stats().Misses) })
		reg.GaugeFunc("store.quarantined", func() float64 { return float64(s.Stats().Quarantined) })
	}
}

// limitsFor builds the per-run limits for campaign cell g: the
// campaign-wide timeout/event budget, or an injected limit fault that
// deterministically trips at the first watchdog check. A caller
// context (Options.Ctx — the CLI's signal handler) rides along so an
// interrupt cancels in-flight cells at the next watchdog check; the
// armed watchdog is read-only and never perturbs results.
func (o Options) limitsFor(g int) *system.Limits {
	r := o.Res
	if r == nil {
		if o.Ctx != nil {
			return &system.Limits{Ctx: o.Ctx}
		}
		return nil
	}
	switch r.injectionAt(g) {
	case "timeout":
		return &system.Limits{WallClock: time.Nanosecond, CheckEvents: injectCheckEvents}
	case "budget":
		return &system.Limits{EventBudget: 1, CheckEvents: injectCheckEvents}
	}
	if r.Timeout <= 0 && r.EventBudget == 0 {
		if o.Ctx != nil {
			return &system.Limits{Ctx: o.Ctx}
		}
		return nil
	}
	return &system.Limits{Ctx: o.Ctx, WallClock: r.Timeout, EventBudget: r.EventBudget}
}

// RunLimits returns the limits a single ad-hoc run (-exp run) inherits
// from the campaign flags: the wall-clock deadline and event budget,
// or nil when unbounded. ctx (which may be nil) threads the caller's
// cancellation — the CLI's signal handler — into the run's watchdog.
func (r *Resilience) RunLimits(ctx context.Context) *system.Limits {
	if r == nil || (r.Timeout <= 0 && r.EventBudget == 0) {
		if ctx != nil {
			return &system.Limits{Ctx: ctx}
		}
		return nil
	}
	return &system.Limits{Ctx: ctx, WallClock: r.Timeout, EventBudget: r.EventBudget}
}

// errInjectedTransient is the retryable error the flaky injection
// produces on a cell's first attempt.
var errInjectedTransient = errors.New("injected transient failure")

// retryable classifies a cell failure as worth re-attempting. Only
// wall-clock deadline trips qualify (host contention can clear); every
// other failure of a deterministic simulation repeats identically.
func retryable(err error) bool {
	if errors.Is(err, errInjectedTransient) {
		return true
	}
	var le *system.LimitError
	return errors.As(err, &le) && le.Kind == system.LimitDeadline
}

// FailureLog accumulates structured failure records and retry counts
// across every sweep of a campaign. Safe for concurrent use.
type FailureLog struct {
	mu      sync.Mutex
	fails   []ReportFailure
	retries uint64
}

func (l *FailureLog) add(f ReportFailure) {
	l.mu.Lock()
	l.fails = append(l.fails, f)
	l.mu.Unlock()
}

// NoteRetry counts one retry attempt.
func (l *FailureLog) NoteRetry() {
	l.mu.Lock()
	l.retries++
	l.mu.Unlock()
}

// Len returns the number of recorded failures.
func (l *FailureLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.fails)
}

// Retries returns the total retry count.
func (l *FailureLog) Retries() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.retries
}

// Failures returns a copy of the recorded failures, in (sweep, cell)
// order of recording (sweeps are serial; within a sweep, records are
// added sorted by cell).
func (l *FailureLog) Failures() []ReportFailure {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]ReportFailure(nil), l.fails...)
}

// failureRecord converts a task failure into its report form,
// classifying the error: protocol (sanitizer fatal violation), a limit
// kind (deadline/event-budget/livelock/cancelled/stall, with the
// machine diagnostic attached), panic (cleaned stack attached), or
// plain error. Elapsed time is deliberately dropped — failure records
// must be byte-identical across runs for journaled resume.
func failureRecord(sweep int, te *parallel.TaskError) ReportFailure {
	f := ReportFailure{
		Sweep:    sweep,
		Cell:     te.Index,
		Kind:     FailKindError,
		Digest:   te.Digest,
		Attempts: te.Attempts,
		Error:    te.Err.Error(),
	}
	var fv *check.FatalViolation
	var le *system.LimitError
	switch {
	case errors.As(te.Err, &fv):
		f.Kind = FailKindProtocol
	case errors.As(te.Err, &le):
		f.Kind = le.Kind
		d := le.Diag
		f.Diag = &d
	case te.Panicked:
		f.Kind = FailKindPanic
	}
	if te.Panicked {
		f.Stack = te.CleanStack()
	}
	return f
}

// partialUnsupported is the error an experiment returns when cells
// failed under collect/degrade but its reduction has no degraded form.
func partialUnsupported(exp string, failed []bool) error {
	n := 0
	for _, f := range failed {
		if f {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	return fmt.Errorf("%s: %d cell(s) failed and this experiment's reduction has no degraded form; fix the failures and -resume, or rerun with -fail-mode=fail-fast", exp, n)
}
