package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"microbank/internal/check"
	"microbank/internal/check/golden"
	"microbank/internal/obs"
	"microbank/internal/parallel"
	"microbank/internal/system"
)

// resOpts is the small, fast campaign all resilience tests use: the
// quick headline sweep (3 benchmarks × 2 runs = 6 cells).
func resOpts(r *Resilience) Options {
	return Options{Quick: true, Instr: 6000, Parallelism: 2, Res: r}
}

// headlineReport runs the headline experiment and renders the report
// the CLI would write, failures included.
func headlineReport(t *testing.T, o Options) []byte {
	t.Helper()
	h, err := Headline(o)
	if err != nil {
		t.Fatalf("Headline: %v", err)
	}
	rep := NewReport("headline", o)
	rep.SetMetric("ipc_gain", h.IPCGain)
	rep.SetMetric("inv_edp_gain", h.InvEDPGain)
	if o.Res != nil {
		rep.AddFailures(o.Res.Log)
	}
	b, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestIntraParallelSweepResilience drives the windowed parallel engine
// through the fault-injection sweep: sweep-level workers and intra-run
// workers share the host worker budget while an injected limit trips.
// The degraded report — healthy gains plus the failure record with its
// diagnostic snapshot — must be byte-identical across intra widths
// (barriers are the watchdog granularity and the window sequence is
// width-independent, so the trip point is too). Under -race this is
// the windowed engine's CI concurrency exercise.
func TestIntraParallelSweepResilience(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
	mk := func(intra int) []byte {
		res := &Resilience{Mode: parallel.FailDegrade}
		if err := res.SetInject("timeout:3"); err != nil {
			t.Fatal(err)
		}
		o := resOpts(res)
		o.IntraParallelism = intra
		return headlineReport(t, o)
	}
	want := mk(2)
	for _, w := range []int{4, runtime.NumCPU() + 1} {
		if got := mk(w); !bytes.Equal(got, want) {
			t.Fatalf("intra width %d report drifted from width 2:\n%s", w, golden.Diff(want, got))
		}
	}
}

// TestDegradedSweepAcceptance is the issue's acceptance scenario: a
// sweep with one injected panicking cell and one deadline-exceeding
// cell completes under degrade, returns the healthy results, and
// records both failures with their diagnostics.
func TestDegradedSweepAcceptance(t *testing.T) {
	res := &Resilience{Mode: parallel.FailDegrade}
	if err := res.SetInject("panic:1,timeout:3"); err != nil {
		t.Fatal(err)
	}
	o := resOpts(res)
	h, err := Headline(o)
	if err != nil {
		t.Fatalf("degraded sweep did not complete: %v", err)
	}
	if h.IPCGain <= 0 || h.InvEDPGain <= 0 {
		t.Fatalf("healthy pair produced no result: %+v", h)
	}
	fails := res.Log.Failures()
	if len(fails) != 2 {
		t.Fatalf("recorded %d failures, want 2: %+v", len(fails), fails)
	}
	pan, dl := fails[0], fails[1]
	if pan.Kind != FailKindPanic || pan.Cell != 1 {
		t.Fatalf("failure 0 = %+v, want panic at cell 1", pan)
	}
	if pan.Stack == "" || strings.Contains(pan.Stack, " +0x") || strings.Contains(pan.Stack, "goroutine ") {
		t.Fatalf("panic stack missing or not cleaned:\n%s", pan.Stack)
	}
	if dl.Kind != system.LimitDeadline || dl.Cell != 3 {
		t.Fatalf("failure 1 = %+v, want deadline at cell 3", dl)
	}
	if dl.Diag == nil || dl.Diag.Events == 0 {
		t.Fatalf("deadline failure carries no diagnostic snapshot: %+v", dl)
	}
	if pan.Digest == "" || dl.Digest == "" {
		t.Fatalf("failures missing config digests: %+v", fails)
	}
}

// TestResumeByteIdenticalReport interrupts a journaled campaign
// (truncating the journal to a prefix plus a torn trailing line), then
// resumes it and requires the final report — gains, failure records,
// everything — to be byte-identical to an uninterrupted run's.
func TestResumeByteIdenticalReport(t *testing.T) {
	dir := t.TempDir()
	inject := "panic:1,timeout:3"
	newRes := func(j *Journal) *Resilience {
		r := &Resilience{Mode: parallel.FailDegrade, Journal: j}
		if err := r.SetInject(inject); err != nil {
			t.Fatal(err)
		}
		return r
	}
	key := CampaignKey("headline", resOpts(nil))

	// Reference: uninterrupted journaled run.
	jA, err := OpenJournal(filepath.Join(dir, "a.journal"), key, false)
	if err != nil {
		t.Fatal(err)
	}
	want := headlineReport(t, resOpts(newRes(jA)))
	if err := jA.Close(); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: complete once, then cut the journal down to the
	// header plus two cells and a torn half-written line.
	pathB := filepath.Join(dir, "b.journal")
	jB, err := OpenJournal(pathB, key, false)
	if err != nil {
		t.Fatal(err)
	}
	headlineReport(t, resOpts(newRes(jB)))
	if err := jB.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(pathB)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(raw), "\n")
	if len(lines) < 4 {
		t.Fatalf("journal too short to truncate: %d lines", len(lines))
	}
	cut := strings.Join(lines[:3], "") + `{"sweep":0,"cel`
	if err := os.WriteFile(pathB, []byte(cut), 0o644); err != nil {
		t.Fatal(err)
	}

	// Resume from the truncated journal.
	jB2, err := OpenJournal(pathB, key, true)
	if err != nil {
		t.Fatal(err)
	}
	if jB2.Cells() != 2 {
		t.Fatalf("resumed journal holds %d cells, want the 2 surviving ones", jB2.Cells())
	}
	got := headlineReport(t, resOpts(newRes(jB2)))
	if jB2.Hits() != 2 {
		t.Fatalf("resume served %d cells from the journal, want 2", jB2.Hits())
	}
	if err := jB2.Close(); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("resumed report differs from uninterrupted run:\n%s", golden.Diff(want, got))
	}
}

// TestProtocolViolationIsolated runs a sweep where one cell panics with
// the sanitizer's fatal-mode violation: siblings must complete and the
// failure must be classified as a protocol violation.
func TestProtocolViolationIsolated(t *testing.T) {
	res := &Resilience{Mode: parallel.FailDegrade}
	o := resOpts(res)
	jobs := []int{0, 1, 2, 3}
	results, failed, err := mapRuns(o, jobs, func(_ runEnv, j int) (system.Result, error) {
		if j == 2 {
			panic(&check.FatalViolation{V: check.Violation{
				Rule: check.RuleTRCD, Cmd: obs.CmdRD, At: 100, Earliest: 200}})
		}
		return system.Result{IPC: float64(j) + 1}, nil
	})
	if err != nil {
		t.Fatalf("degraded sweep errored: %v", err)
	}
	for i, r := range results {
		if i != 2 && r.IPC != float64(i)+1 {
			t.Fatalf("sibling %d lost its result: %+v", i, r)
		}
	}
	if !failed[2] || failed[0] || failed[1] || failed[3] {
		t.Fatalf("failed mask = %v, want only cell 2", failed)
	}
	fails := res.Log.Failures()
	if len(fails) != 1 || fails[0].Kind != FailKindProtocol {
		t.Fatalf("failures = %+v, want one protocol violation", fails)
	}
	if !strings.Contains(fails[0].Error, "tRCD") {
		t.Fatalf("protocol failure lost the violation text: %q", fails[0].Error)
	}
}

// TestFlakyCellRetries injects a transient first-attempt failure and
// verifies the retry budget absorbs it.
func TestFlakyCellRetries(t *testing.T) {
	res := &Resilience{Mode: parallel.FailDegrade, Retries: 1}
	if err := res.SetInject("flaky:0"); err != nil {
		t.Fatal(err)
	}
	o := resOpts(res)
	if _, err := Headline(o); err != nil {
		t.Fatalf("Headline: %v", err)
	}
	if n := res.Log.Len(); n != 0 {
		t.Fatalf("flaky cell recorded %d failures despite retry budget", n)
	}
	if res.Log.Retries() != 1 {
		t.Fatalf("retries = %d, want 1", res.Log.Retries())
	}
}

// TestCollectModeFailsCampaign: collect runs everything like degrade
// but the campaign-level verdict is an error.
func TestCollectModeFailsCampaign(t *testing.T) {
	res := &Resilience{Mode: parallel.FailCollect}
	if err := res.SetInject("error:0"); err != nil {
		t.Fatal(err)
	}
	o := resOpts(res)
	if _, err := Headline(o); err != nil {
		t.Fatalf("collect-mode sweep must still complete: %v", err)
	}
	if err := res.Err(); err == nil || !strings.Contains(err.Error(), "1 cell(s) failed") {
		t.Fatalf("campaign verdict = %v, want collect-mode failure", err)
	}
	res2 := &Resilience{Mode: parallel.FailDegrade}
	if err := res2.SetInject("error:0"); err != nil {
		t.Fatal(err)
	}
	if _, err := Headline(resOpts(res2)); err != nil {
		t.Fatal(err)
	}
	if err := res2.Err(); err != nil {
		t.Fatalf("degrade-mode verdict = %v, want nil", err)
	}
}

func TestSetInjectErrors(t *testing.T) {
	for _, bad := range []string{"panic", "frob:1", "panic:-1", "panic:x", "panic:1,"} {
		r := &Resilience{}
		if err := r.SetInject(bad); err == nil {
			t.Errorf("SetInject(%q) accepted", bad)
		}
	}
	r := &Resilience{}
	if err := r.SetInject("panic:1,timeout:3,flaky:0"); err != nil {
		t.Fatalf("SetInject rejected a valid spec: %v", err)
	}
	if r.injectionAt(3) != "timeout" || r.injectionAt(2) != "" {
		t.Fatalf("inject map wrong: %+v", r.inject)
	}
}

func TestCampaignKey(t *testing.T) {
	a := CampaignKey("headline", Options{Quick: true, Instr: 6000, Parallelism: 2})
	b := CampaignKey("headline", Options{Quick: true, Instr: 6000, Parallelism: 8})
	if a != b {
		t.Fatalf("parallelism leaked into the campaign key: %q vs %q", a, b)
	}
	c := CampaignKey("headline", Options{Quick: true, Instr: 7000, Parallelism: 2})
	if a == c {
		t.Fatalf("instruction budget not in the campaign key: %q", a)
	}
	want := "headline|schema=1|quick=true|instr=6000|cores=16|seed=42"
	if a != want {
		t.Fatalf("CampaignKey = %q, want %q", a, want)
	}
}

func TestJournalKeyMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	j, err := OpenJournal(path, "campaign-a", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.record(0, 0, system.Result{IPC: 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path, "campaign-b", true); err == nil ||
		!strings.Contains(err.Error(), "campaign-a") {
		t.Fatalf("resume with wrong key = %v, want key-mismatch error", err)
	}
	// The right key resumes fine.
	j2, err := OpenJournal(path, "campaign-a", true)
	if err != nil {
		t.Fatal(err)
	}
	if res, ok := j2.lookup(0, 0); !ok || res.IPC != 1 {
		t.Fatalf("resumed cell = %+v/%v, want the recorded result", res, ok)
	}
	j2.Close()
}

func TestJournalNotAJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	if err := os.WriteFile(path, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path, "k", true); err == nil {
		t.Fatal("resume from a non-journal file succeeded")
	}
}

func TestJournalResumeFresh(t *testing.T) {
	// -resume with no existing journal starts a fresh campaign.
	path := filepath.Join(t.TempDir(), "j.journal")
	j, err := OpenJournal(path, "k", true)
	if err != nil {
		t.Fatal(err)
	}
	if j.Cells() != 0 {
		t.Fatalf("fresh journal holds %d cells", j.Cells())
	}
	j.Close()
}

// TestResilientHealthySweepByteIdentical: arming resilience (with
// generous limits) must not change a healthy campaign's results.
func TestResilientHealthySweepByteIdentical(t *testing.T) {
	plain := headlineReport(t, resOpts(nil))
	res := &Resilience{Mode: parallel.FailDegrade, Retries: 2,
		Timeout: time.Hour, EventBudget: 1 << 40}
	armed := headlineReport(t, resOpts(res))
	// The reports echo identical options either way; only the failures
	// section could differ, and a healthy run must not have one.
	var a, b map[string]json.RawMessage
	if err := json.Unmarshal(plain, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(armed, &b); err != nil {
		t.Fatal(err)
	}
	if _, ok := b["failures"]; ok {
		t.Fatal("healthy armed run emitted a failures section")
	}
	if string(plain) != string(armed) {
		t.Fatalf("resilience perturbed a healthy campaign:\n--- plain\n%s\n--- armed\n%s", plain, armed)
	}
}
