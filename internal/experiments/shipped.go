package experiments

// Shipped configurations: the memory-system points CI's protocol gate
// (make check-protocol) and the golden regression harness cover. They
// span every modeled processor-memory interface crossed with the
// paper's representative μbank partitionings, plus LPDDR per-bank
// refresh variants so both refresh modes stay under the sanitizer.

import (
	"fmt"
	"strings"

	"microbank/internal/config"
)

// ShippedConfig identifies one supported memory configuration.
type ShippedConfig struct {
	Interface      config.Interface
	NW, NB         int
	PerBankRefresh bool
}

// Name returns a stable slug used for golden fixture filenames and
// subtest names, e.g. "lpddr-tsi_2x8_refpb".
func (s ShippedConfig) Name() string {
	name := fmt.Sprintf("%s_%dx%d", strings.ToLower(s.Interface.String()), s.NW, s.NB)
	if s.PerBankRefresh {
		name += "_refpb"
	}
	return name
}

// Mem builds the configuration's full memory description.
func (s ShippedConfig) Mem() config.Mem {
	m := config.MemPreset(s.Interface, s.NW, s.NB)
	m.Timing.PerBankRefresh = s.PerBankRefresh
	return m
}

// ShippedConfigs enumerates every shipped configuration: all three
// interfaces × the representative (nW,nB) points of Figs. 10/12/13,
// plus two REFpb variants. Order is fixed (interfaces in paper order,
// then refresh variants) so sweeps and fixtures stay deterministic.
func ShippedConfigs() []ShippedConfig {
	var out []ShippedConfig
	for _, iface := range config.Interfaces() {
		for _, cfg := range RepresentativeConfigs {
			out = append(out, ShippedConfig{Interface: iface, NW: cfg[0], NB: cfg[1]})
		}
	}
	out = append(out,
		ShippedConfig{Interface: config.LPDDRTSI, NW: 2, NB: 8, PerBankRefresh: true},
		ShippedConfig{Interface: config.LPDDRTSI, NW: 8, NB: 2, PerBankRefresh: true},
	)
	return out
}
