package experiments

// Simulation-backed experiments: Figs. 8, 9, 10, 12, 13, 14 and the
// paper's headline result.

import (
	"fmt"

	"microbank/internal/config"
	"microbank/internal/stats"
	"microbank/internal/system"
	"microbank/internal/workload"
)

// Fig8Workloads are the three panels of Fig. 8/9.
var Fig8Workloads = []string{"429.mcf", "spec-high", "TPC-H"}

// Fig8 computes the relative-IPC grids of Fig. 8 (one GridData per
// panel: 429.mcf, spec-high average, TPC-H).
func Fig8(o Options) ([]*GridData, error) {
	ipc, _, err := Fig8And9(o)
	return ipc, err
}

// Fig9 computes the relative-1/EDP grids of Fig. 9.
func Fig9(o Options) ([]*GridData, error) {
	_, edp, err := Fig8And9(o)
	return edp, err
}

// Fig8And9 runs the shared partition-grid sweep once and returns both
// metric sets.
func Fig8And9(o Options) (ipc, invEDP []*GridData, err error) {
	o = o.withDefaults()
	for _, w := range Fig8Workloads {
		gi, ge, gerr := gridsFor(w, o)
		if gerr != nil {
			return nil, nil, gerr
		}
		ipc = append(ipc, gi)
		invEDP = append(invEDP, ge)
	}
	return ipc, invEDP, nil
}

// Fig10Row is one bar-group of Fig. 10.
type Fig10Row struct {
	Workload   string
	NW, NB     int
	RelIPC     float64
	RelInvEDP  float64
	ProcW      float64
	ActPreW    float64
	StaticW    float64
	RdWrW      float64
	IOW        float64
	RowHitRate float64
}

// Fig10Workloads lists the single-threaded panel then the
// multiprogrammed/multithreaded panel of Fig. 10.
var fig10Single = []string{"429.mcf", "450.soplex", "spec-high", "spec-all"}
var fig10Multi = []string{"mix-high", "mix-blend", "RADIX", "FFT"}

// fig10Job is one simulation of the Fig. 10 sweep: a single-core
// benchmark run when name is set, otherwise a multicore set run.
type fig10Job struct {
	set  string
	name string
	cfg  [2]int
}

func (j fig10Job) run(o Options, env runEnv) (system.Result, error) {
	if j.name == "" {
		return runMulti(multiProfile(j.set), config.LPDDRTSI, j.cfg[0], j.cfg[1], nil, o, env)
	}
	return runSingle(j.name, config.LPDDRTSI, j.cfg[0], j.cfg[1], nil, o, env)
}

// Fig10 evaluates the representative μbank configurations on the
// paper's Fig. 10 workloads, reporting relative IPC/EDP and the power
// breakdown; each workload is normalized to its own (1,1) run. All
// runs fan out over the worker pool; the reduction consumes them in
// enumeration order so the arithmetic matches the serial loops.
func Fig10(o Options) ([]Fig10Row, error) {
	o = o.withDefaults()
	var jobs []fig10Job
	for _, set := range fig10Single {
		for _, name := range specGroup(set, o.Quick) {
			jobs = append(jobs, fig10Job{set: set, name: name, cfg: [2]int{1, 1}})
			for _, cfg := range RepresentativeConfigs {
				if cfg != [2]int{1, 1} {
					jobs = append(jobs, fig10Job{set: set, name: name, cfg: cfg})
				}
			}
		}
	}
	for _, set := range fig10Multi {
		for _, cfg := range RepresentativeConfigs {
			jobs = append(jobs, fig10Job{set: set, cfg: cfg})
		}
	}
	results, failed, err := mapRuns(o, jobs,
		func(env runEnv, j fig10Job) (system.Result, error) { return j.run(o, env) })
	if err != nil {
		return nil, err
	}
	if err := partialUnsupported("fig10", failed); err != nil {
		return nil, err
	}

	next := 0
	take := func() system.Result { r := results[next]; next++; return r }
	var rows []Fig10Row
	for _, set := range fig10Single {
		names := specGroup(set, o.Quick)
		// Per-config accumulators (normalized per app, then averaged).
		type acc struct {
			ipc, invEDP                         float64
			proc, actpre, static, rdwr, io, hit float64
		}
		sums := map[[2]int]*acc{}
		for _, cfg := range RepresentativeConfigs {
			sums[cfg] = &acc{}
		}
		for range names {
			base := take()
			for _, cfg := range RepresentativeConfigs {
				res := base
				if cfg != [2]int{1, 1} {
					res = take()
				}
				a := sums[cfg]
				n := float64(len(names))
				a.ipc += res.IPC / base.IPC / n
				a.invEDP += base.Breakdown.EDPJs() / res.Breakdown.EDPJs() / n
				a.proc += res.Breakdown.ProcessorW() / n
				a.actpre += res.Breakdown.ActPreW() / n
				a.static += res.Breakdown.DRAMStaticW() / n
				a.rdwr += res.Breakdown.RdWrW() / n
				a.io += res.Breakdown.IOW() / n
				a.hit += res.RowHitRate / n
			}
		}
		for _, cfg := range RepresentativeConfigs {
			a := sums[cfg]
			rows = append(rows, Fig10Row{
				Workload: set, NW: cfg[0], NB: cfg[1],
				RelIPC: a.ipc, RelInvEDP: a.invEDP,
				ProcW: a.proc, ActPreW: a.actpre, StaticW: a.static,
				RdWrW: a.rdwr, IOW: a.io, RowHitRate: a.hit,
			})
		}
	}

	for _, set := range fig10Multi {
		var base system.Result
		for _, cfg := range RepresentativeConfigs {
			res := take()
			if cfg == [2]int{1, 1} {
				base = res
			}
			rows = append(rows, Fig10Row{
				Workload: set, NW: cfg[0], NB: cfg[1],
				RelIPC:     res.IPC / base.IPC,
				RelInvEDP:  base.Breakdown.EDPJs() / res.Breakdown.EDPJs(),
				ProcW:      res.Breakdown.ProcessorW(),
				ActPreW:    res.Breakdown.ActPreW(),
				StaticW:    res.Breakdown.DRAMStaticW(),
				RdWrW:      res.Breakdown.RdWrW(),
				IOW:        res.Breakdown.IOW(),
				RowHitRate: res.RowHitRate,
			})
		}
	}
	return rows, nil
}

// multiProfile maps a multicore workload set to a per-core profile
// assignment.
func multiProfile(set string) func(core int) workload.Profile {
	switch set {
	case "mix-high":
		m := workload.MixHigh()
		return m.ForCore
	case "mix-blend":
		m := workload.MixBlend()
		return m.ForCore
	default: // multithreaded: same profile on every core
		p := workload.MustGet(set)
		return func(int) workload.Profile { return p }
	}
}

// Fig10Table renders Fig10 rows.
func Fig10Table(rows []Fig10Row) *stats.Table {
	t := stats.NewTable("Fig. 10: representative μbank configurations",
		"Workload", "(nW,nB)", "RelIPC", "Rel1/EDP", "Proc(W)", "ACT/PRE(W)", "Static(W)", "RD/WR(W)", "I/O(W)", "RowHit")
	last := ""
	for _, r := range rows {
		if last != "" && r.Workload != last {
			t.AddSeparator()
		}
		last = r.Workload
		t.AddRow(r.Workload, fmt.Sprintf("(%d,%d)", r.NW, r.NB), r.RelIPC, r.RelInvEDP,
			r.ProcW, r.ActPreW, r.StaticW, r.RdWrW, r.IOW, r.RowHitRate)
	}
	return t
}

// Fig12Row is one (config, iB, policy) point of Fig. 12.
type Fig12Row struct {
	Set       string
	NW, NB    int
	IB        int
	Policy    config.PagePolicy
	RelIPC    float64
	RelInvEDP float64
}

// fig12IBs returns the iB sweep for a configuration, matching the
// paper's per-config axes (the top value is the μbank-row boundary).
func fig12IBs(nW, nB int, quick bool) []int {
	maxIB := 13
	for v := nW; v > 1; v >>= 1 {
		maxIB--
	}
	all := []int{}
	for _, iB := range []int{6, 8, 10, 11, 12, 13} {
		if iB < maxIB && (iB == 6 || iB == 8 || iB == 10) {
			all = append(all, iB)
		}
	}
	all = append(all, maxIB)
	if quick {
		return []int{6, maxIB}
	}
	return all
}

// Fig12 sweeps page policy {open, close} × interleaving base bit over
// the representative configurations. Values are normalized to the
// paper's baseline: (1,1), open page, row interleaving (iB=13).
func Fig12(o Options, sets ...string) ([]Fig12Row, error) {
	o = o.withDefaults()
	if len(sets) == 0 {
		sets = []string{"spec-all", "spec-high"}
	}
	// One job per (benchmark, config, iB, policy) point plus one
	// baseline job per benchmark, enumerated in serial-loop order.
	type fig12Job struct {
		name string
		cfg  [2]int
		iB   int
		pol  config.PagePolicy
		base bool
	}
	var jobs []fig12Job
	for _, set := range sets {
		for _, name := range specGroup(set, o.Quick) {
			jobs = append(jobs, fig12Job{name: name, base: true})
			for _, cfg := range RepresentativeConfigs {
				for _, iB := range fig12IBs(cfg[0], cfg[1], o.Quick) {
					for _, pol := range []config.PagePolicy{config.OpenPage, config.ClosePage} {
						jobs = append(jobs, fig12Job{name: name, cfg: cfg, iB: iB, pol: pol})
					}
				}
			}
		}
	}
	results, failed, err := mapRuns(o, jobs, func(env runEnv, j fig12Job) (system.Result, error) {
		if j.base {
			return runSingle(j.name, config.LPDDRTSI, 1, 1, func(s *config.System) {
				s.Ctrl.PagePolicy = config.OpenPage
				s.Ctrl.InterleaveBit = 13
			}, o, env)
		}
		return runSingle(j.name, config.LPDDRTSI, j.cfg[0], j.cfg[1],
			func(s *config.System) {
				s.Ctrl.PagePolicy = j.pol
				s.Ctrl.InterleaveBit = j.iB
			}, o, env)
	})
	if err != nil {
		return nil, err
	}
	if err := partialUnsupported("fig12", failed); err != nil {
		return nil, err
	}

	next := 0
	take := func() system.Result { r := results[next]; next++; return r }
	var rows []Fig12Row
	for _, set := range sets {
		names := specGroup(set, o.Quick)
		type key struct {
			cfg [2]int
			iB  int
			pol config.PagePolicy
		}
		sums := map[key]*[2]float64{} // {relIPC, relInvEDP}
		for range names {
			base := take()
			for _, cfg := range RepresentativeConfigs {
				for _, iB := range fig12IBs(cfg[0], cfg[1], o.Quick) {
					for _, pol := range []config.PagePolicy{config.OpenPage, config.ClosePage} {
						res := take()
						k := key{cfg, iB, pol}
						if sums[k] == nil {
							sums[k] = &[2]float64{}
						}
						sums[k][0] += res.IPC / base.IPC / float64(len(names))
						sums[k][1] += base.Breakdown.EDPJs() / res.Breakdown.EDPJs() / float64(len(names))
					}
				}
			}
		}
		for _, cfg := range RepresentativeConfigs {
			for _, iB := range fig12IBs(cfg[0], cfg[1], o.Quick) {
				for _, pol := range []config.PagePolicy{config.OpenPage, config.ClosePage} {
					v := sums[key{cfg, iB, pol}]
					rows = append(rows, Fig12Row{
						Set: set, NW: cfg[0], NB: cfg[1], IB: iB, Policy: pol,
						RelIPC: v[0], RelInvEDP: v[1],
					})
				}
			}
		}
	}
	return rows, nil
}

// Fig12Table renders Fig12 rows.
func Fig12Table(rows []Fig12Row) *stats.Table {
	t := stats.NewTable("Fig. 12: page policy × interleaving base bit",
		"Set", "(nW,nB)", "iB", "Policy", "RelIPC", "Rel1/EDP")
	last := ""
	for _, r := range rows {
		k := fmt.Sprintf("%s(%d,%d)", r.Set, r.NW, r.NB)
		if last != "" && k != last {
			t.AddSeparator()
		}
		last = k
		t.AddRow(r.Set, fmt.Sprintf("(%d,%d)", r.NW, r.NB), r.IB, r.Policy.String(), r.RelIPC, r.RelInvEDP)
	}
	return t
}

// Fig13Policies are the page-management schemes compared in Fig. 13:
// close, open, local predictor, tournament predictor, perfect.
var Fig13Policies = []config.PagePolicy{
	config.ClosePage, config.OpenPage, config.PredLocal, config.PredTournament, config.PredPerfect,
}

// Fig13Row is one (workload, config, policy) bar of Fig. 13.
type Fig13Row struct {
	Workload string
	NW, NB   int
	Policy   config.PagePolicy
	RelIPC   float64 // normalized to the close policy at the same config
	HitRate  float64 // predictor hit rate (decision accuracy)
}

// fig13Configs are the partitions shown in Fig. 13.
var fig13Configs = [][2]int{{1, 1}, {2, 8}, {4, 4}}

// Fig13Workloads match the paper's panels (471 = 471.omnetpp,
// 429 = 429.mcf).
func fig13Workloads(quick bool) []string {
	if quick {
		return []string{"429.mcf", "canneal"}
	}
	return []string{"471.omnetpp", "429.mcf", "spec-high", "canneal", "RADIX", "mix-high", "mix-blend"}
}

// Fig13 compares the page-management schemes. Multithreaded and mixed
// workloads run on the multicore system; SPEC sets on a single core.
func Fig13(o Options) ([]Fig13Row, error) {
	o = o.withDefaults()
	// One job per (workload, config, policy) multicore run, or per
	// member benchmark for the single-core SPEC sets.
	type fig13Job struct {
		w    string
		name string // single benchmark; "" selects a multicore run
		cfg  [2]int
		pol  config.PagePolicy
	}
	fig13Multi := func(w string) bool {
		return w == "canneal" || w == "RADIX" || w == "mix-high" || w == "mix-blend"
	}
	var jobs []fig13Job
	for _, w := range fig13Workloads(o.Quick) {
		for _, cfg := range fig13Configs {
			for _, pol := range Fig13Policies {
				if fig13Multi(w) {
					jobs = append(jobs, fig13Job{w: w, cfg: cfg, pol: pol})
					continue
				}
				for _, name := range specGroup(w, o.Quick) {
					jobs = append(jobs, fig13Job{w: w, name: name, cfg: cfg, pol: pol})
				}
			}
		}
	}
	results, failed, err := mapRuns(o, jobs, func(env runEnv, j fig13Job) (system.Result, error) {
		mut := func(s *config.System) { s.Ctrl.PagePolicy = j.pol }
		if j.name == "" {
			return runMulti(multiProfile(j.w), config.LPDDRTSI, j.cfg[0], j.cfg[1], mut, o, env)
		}
		return runSingle(j.name, config.LPDDRTSI, j.cfg[0], j.cfg[1], mut, o, env)
	})
	if err != nil {
		return nil, err
	}
	if err := partialUnsupported("fig13", failed); err != nil {
		return nil, err
	}

	next := 0
	take := func() system.Result { r := results[next]; next++; return r }
	var rows []Fig13Row
	for _, w := range fig13Workloads(o.Quick) {
		for _, cfg := range fig13Configs {
			var baseIPC float64
			for _, pol := range Fig13Policies {
				var ipc, hit float64
				if fig13Multi(w) {
					res := take()
					ipc, hit = res.IPC, res.PredHitRate
				} else {
					names := specGroup(w, o.Quick)
					for range names {
						res := take()
						ipc += res.IPC / float64(len(names))
						hit += res.PredHitRate / float64(len(names))
					}
				}
				if pol == config.ClosePage {
					baseIPC = ipc
				}
				rows = append(rows, Fig13Row{
					Workload: w, NW: cfg[0], NB: cfg[1], Policy: pol,
					RelIPC: ipc / baseIPC, HitRate: hit,
				})
			}
		}
	}
	return rows, nil
}

// Fig13Table renders Fig13 rows.
func Fig13Table(rows []Fig13Row) *stats.Table {
	t := stats.NewTable("Fig. 13: page-management schemes (IPC relative to close-page)",
		"Workload", "(nW,nB)", "Policy", "RelIPC", "PredHitRate")
	last := ""
	for _, r := range rows {
		k := fmt.Sprintf("%s(%d,%d)", r.Workload, r.NW, r.NB)
		if last != "" && k != last {
			t.AddSeparator()
		}
		last = k
		t.AddRow(r.Workload, fmt.Sprintf("(%d,%d)", r.NW, r.NB), r.Policy.String(), r.RelIPC, r.HitRate)
	}
	return t
}

// Fig14Row is one (workload, interface) group of Fig. 14.
type Fig14Row struct {
	Workload  string
	Interface config.Interface
	IPC       float64
	RelIPC    float64 // vs DDR3-PCB
	RelInvEDP float64 // vs DDR3-PCB
	ProcW     float64
	ActPreW   float64
	StaticW   float64
	RdWrW     float64
	IOW       float64
	// ActPreShare is ACT/PRE power over total memory power (§VI-D).
	ActPreShare float64
}

func fig14Workloads(quick bool) []string {
	if quick {
		return []string{"spec-high", "RADIX"}
	}
	return []string{"spec-high", "mix-high", "mix-blend", "canneal", "FFT", "RADIX"}
}

// Fig14 compares the three processor-memory interfaces without μbanks.
func Fig14(o Options) ([]Fig14Row, error) {
	o = o.withDefaults()
	// One job per (workload, interface) multicore run, or per member
	// benchmark for the single-core spec-high panel.
	type fig14Job struct {
		w     string
		name  string // single benchmark; "" selects a multicore run
		iface config.Interface
	}
	var jobs []fig14Job
	for _, w := range fig14Workloads(o.Quick) {
		for _, iface := range config.Interfaces() {
			if w != "spec-high" {
				jobs = append(jobs, fig14Job{w: w, iface: iface})
				continue
			}
			for _, name := range specGroup(w, o.Quick) {
				jobs = append(jobs, fig14Job{w: w, name: name, iface: iface})
			}
		}
	}
	results, failed, err := mapRuns(o, jobs, func(env runEnv, j fig14Job) (system.Result, error) {
		if j.name == "" {
			return runMulti(multiProfile(j.w), j.iface, 1, 1, nil, o, env)
		}
		return runSingle(j.name, j.iface, 1, 1, nil, o, env)
	})
	if err != nil {
		return nil, err
	}
	if err := partialUnsupported("fig14", failed); err != nil {
		return nil, err
	}

	next := 0
	take := func() system.Result { r := results[next]; next++; return r }
	var rows []Fig14Row
	for _, w := range fig14Workloads(o.Quick) {
		multi := w != "spec-high"
		var base Fig14Row
		for _, iface := range config.Interfaces() {
			var row Fig14Row
			row.Workload, row.Interface = w, iface
			if multi {
				res := take()
				row.IPC = res.IPC
				row.ProcW, row.ActPreW, row.StaticW, row.RdWrW, row.IOW =
					res.Breakdown.ProcessorW(), res.Breakdown.ActPreW(),
					res.Breakdown.DRAMStaticW(), res.Breakdown.RdWrW(), res.Breakdown.IOW()
				row.ActPreShare = res.Breakdown.ActPreShareOfMemory()
				if iface == config.DDR3PCB {
					base = row
					base.RelInvEDP = res.Breakdown.EDPJs()
				}
				row.RelIPC = row.IPC / base.IPC
				row.RelInvEDP = base.RelInvEDP / res.Breakdown.EDPJs()
			} else {
				names := specGroup(w, o.Quick)
				var edp float64
				for range names {
					res := take()
					n := float64(len(names))
					row.IPC += res.IPC / n
					row.ProcW += res.Breakdown.ProcessorW() / n
					row.ActPreW += res.Breakdown.ActPreW() / n
					row.StaticW += res.Breakdown.DRAMStaticW() / n
					row.RdWrW += res.Breakdown.RdWrW() / n
					row.IOW += res.Breakdown.IOW() / n
					row.ActPreShare += res.Breakdown.ActPreShareOfMemory() / n
					edp += res.Breakdown.EDPJs() / n
				}
				if iface == config.DDR3PCB {
					base = row
					base.RelInvEDP = edp
				}
				row.RelIPC = row.IPC / base.IPC
				row.RelInvEDP = base.RelInvEDP / edp
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Fig14Table renders Fig14 rows.
func Fig14Table(rows []Fig14Row) *stats.Table {
	t := stats.NewTable("Fig. 14: processor-memory interfaces (no μbanks)",
		"Workload", "Interface", "IPC", "RelIPC", "Rel1/EDP",
		"Proc(W)", "ACT/PRE(W)", "Static(W)", "RD/WR(W)", "I/O(W)", "ACT/PRE mem share")
	last := ""
	for _, r := range rows {
		if last != "" && r.Workload != last {
			t.AddSeparator()
		}
		last = r.Workload
		t.AddRow(r.Workload, r.Interface.String(), r.IPC, r.RelIPC, r.RelInvEDP,
			r.ProcW, r.ActPreW, r.StaticW, r.RdWrW, r.IOW, r.ActPreShare)
	}
	return t
}

// HeadlineResult is the paper's abstract claim: TSI+μbank over
// DDR3-PCB on memory-intensive SPEC.
type HeadlineResult struct {
	IPCGain    float64 // paper: 1.62×
	InvEDPGain float64 // paper: 4.80×
}

// Headline compares DDR3-PCB (1,1) against LPDDR-TSI with the (2,8)
// μbank configuration over the spec-high group.
func Headline(o Options) (HeadlineResult, error) {
	o = o.withDefaults()
	names := specGroup("spec-high", o.Quick)
	// Two jobs per benchmark: the DDR3-PCB baseline and the μbank run.
	type headlineJob struct {
		name  string
		ubank bool
	}
	var jobs []headlineJob
	for _, name := range names {
		jobs = append(jobs, headlineJob{name: name}, headlineJob{name: name, ubank: true})
	}
	results, failed, err := mapRuns(o, jobs, func(env runEnv, j headlineJob) (system.Result, error) {
		if j.ubank {
			return runSingle(j.name, config.LPDDRTSI, 2, 8, nil, o, env)
		}
		return runSingle(j.name, config.DDR3PCB, 1, 1, nil, o, env)
	})
	var out HeadlineResult
	if err != nil {
		return out, err
	}
	if failed == nil {
		for i := range names {
			base, ub := results[2*i], results[2*i+1]
			n := float64(len(names))
			out.IPCGain += ub.IPC / base.IPC / n
			out.InvEDPGain += base.Breakdown.EDPJs() / ub.Breakdown.EDPJs() / n
		}
		return out, nil
	}
	// Degraded reduction: a pair with either run failed contributes
	// nothing; the gains average over the healthy pairs.
	pairOK := func(i int) bool { return !failed[2*i] && !failed[2*i+1] }
	healthy := 0
	for i := range names {
		if pairOK(i) {
			healthy++
		}
	}
	if healthy == 0 {
		return out, fmt.Errorf("headline: every benchmark pair failed (failure records in the report)")
	}
	for i := range names {
		if !pairOK(i) {
			continue
		}
		base, ub := results[2*i], results[2*i+1]
		n := float64(healthy)
		out.IPCGain += ub.IPC / base.IPC / n
		out.InvEDPGain += base.Breakdown.EDPJs() / ub.Breakdown.EDPJs() / n
	}
	return out, nil
}

// HeadlineTable renders the headline comparison.
func HeadlineTable(h HeadlineResult) *stats.Table {
	t := stats.NewTable("Headline: TSI+μbank (2,8) vs DDR3-PCB, spec-high",
		"Metric", "Measured", "Paper")
	t.AddRow("IPC gain", h.IPCGain, 1.62)
	t.AddRow("1/EDP gain", h.InvEDPGain, 4.80)
	return t
}
