package experiments

// Integration tests for the content-addressed result store under the
// campaign layer: byte-identity with the store on and off, cross-
// campaign sharing, corruption healing, journal migration, and the
// degrade-don't-fail contract for checkpoint write failures (the
// journalRecord regression the fault-injecting FS makes testable).

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"microbank/internal/check/golden"
	"microbank/internal/parallel"
	"microbank/internal/store"
)

// storeRes builds a degrade-mode Resilience checkpointing into a store
// at dir, collecting degrade warnings instead of printing them.
func storeRes(t *testing.T, dir string, fsys store.FS, warns *[]string) *Resilience {
	t.Helper()
	s, err := store.Open(dir, fsys)
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	r := &Resilience{Mode: parallel.FailDegrade, Store: s}
	r.StoreKey = CampaignKey("headline", resOpts(r))
	if warns != nil {
		r.OnDegrade = func(msg string) { *warns = append(*warns, msg) }
	}
	return r
}

// TestStoreSweepByteIdenticalAndShared is the tentpole acceptance
// test: a store-backed campaign's report is byte-identical to a plain
// one, and a second campaign over the same store simulates nothing —
// every cell replays from disk.
func TestStoreSweepByteIdenticalAndShared(t *testing.T) {
	plain := headlineReport(t, resOpts(&Resilience{Mode: parallel.FailDegrade}))

	dir := t.TempDir()
	r1 := storeRes(t, dir, nil, nil)
	first := headlineReport(t, resOpts(r1))
	if !bytes.Equal(first, plain) {
		t.Fatalf("store-backed report drifted from plain run:\n%s", golden.Diff(plain, first))
	}
	st := r1.Store.Stats()
	if st.Puts == 0 || st.Hits != 0 {
		t.Fatalf("first campaign stats = %+v, want puts > 0 and no hits", st)
	}

	// A different process (modeled as a fresh handle over the same
	// directory) re-running the same campaign: all cells replay.
	r2 := storeRes(t, dir, nil, nil)
	second := headlineReport(t, resOpts(r2))
	if !bytes.Equal(second, plain) {
		t.Fatalf("replayed report drifted:\n%s", golden.Diff(plain, second))
	}
	st2 := r2.Store.Stats()
	if st2.Puts != 0 || st2.Hits == 0 || st2.Misses != 0 {
		t.Fatalf("replay campaign stats = %+v, want hits only", st2)
	}
}

// TestStoreCorruptEntryResimulated flips bytes in a committed entry:
// the next campaign must quarantine it, re-simulate that one cell, and
// still produce a byte-identical report — degrade, never a crash or a
// silently wrong result.
func TestStoreCorruptEntryResimulated(t *testing.T) {
	plain := headlineReport(t, resOpts(&Resilience{Mode: parallel.FailDegrade}))
	dir := t.TempDir()
	headlineReport(t, resOpts(storeRes(t, dir, nil, nil)))

	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := 0
	for _, de := range des {
		if de.IsDir() || filepath.Ext(de.Name()) != ".res" {
			continue
		}
		p := filepath.Join(dir, de.Name())
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-2] ^= 0xff
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		corrupted++
		break // one poisoned entry is the scenario
	}
	if corrupted == 0 {
		t.Fatal("no store entries found to corrupt")
	}

	r := storeRes(t, dir, nil, nil)
	got := headlineReport(t, resOpts(r))
	if !bytes.Equal(got, plain) {
		t.Fatalf("post-corruption report drifted:\n%s", golden.Diff(plain, got))
	}
	st := r.Store.Stats()
	if st.Quarantined == 0 {
		t.Fatalf("corrupt entry was not quarantined: %+v", st)
	}
	if st.Puts == 0 {
		t.Fatalf("re-simulated cell was not re-committed: %+v", st)
	}
	if des, err := os.ReadDir(filepath.Join(dir, "quarantine")); err != nil || len(des) == 0 {
		t.Fatalf("quarantine directory empty (%v) after corruption", err)
	}
}

// TestJournalMigratesIntoStore opens a journal-only campaign, then
// attaches a store: MigrateJournal must seed it with every journaled
// cell, and the next campaign replays entirely from the store.
func TestJournalMigratesIntoStore(t *testing.T) {
	tmp := t.TempDir()
	jpath := filepath.Join(tmp, "campaign.journal")

	rj := &Resilience{Mode: parallel.FailDegrade}
	key := CampaignKey("headline", resOpts(rj))
	j, err := OpenJournal(jpath, key, false)
	if err != nil {
		t.Fatal(err)
	}
	rj.Journal = j
	plain := headlineReport(t, resOpts(rj))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	cells := rj.Journal.Cells()
	if cells == 0 {
		t.Fatal("journal-only campaign checkpointed nothing")
	}

	// Resume with a store attached: migration seeds it before any sweep.
	r := storeRes(t, filepath.Join(tmp, "store"), nil, nil)
	j2, err := OpenJournal(jpath, key, true)
	if err != nil {
		t.Fatal(err)
	}
	r.Journal = j2
	r.MigrateJournal()
	if got := r.Store.Entries(); got != cells {
		t.Fatalf("migration seeded %d entries, journal holds %d", got, cells)
	}
	// Migration is idempotent: a second pass writes nothing new.
	puts := r.Store.Stats().Puts
	r.MigrateJournal()
	if got := r.Store.Stats().Puts; got != puts {
		t.Fatalf("second migration wrote %d new entries", got-puts)
	}
	got := headlineReport(t, resOpts(r))
	if !bytes.Equal(got, plain) {
		t.Fatalf("migrated campaign report drifted:\n%s", golden.Diff(plain, got))
	}
	if st := r.Store.Stats(); st.Hits == 0 {
		t.Fatalf("migrated campaign did not replay from the store: %+v", st)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestJournalWriteFailureDegrades is the satellite-1 regression test:
// a mid-campaign journal write failure (disk full) must not fail the
// healthy cells it was checkpointing — the campaign completes with
// zero failure records, one warning fires, and journaling is disabled.
func TestJournalWriteFailureDegrades(t *testing.T) {
	efs := store.NewErrFS(nil)
	jpath := filepath.Join(t.TempDir(), "campaign.journal")
	r := &Resilience{Mode: parallel.FailDegrade}
	var warns []string
	r.OnDegrade = func(msg string) { warns = append(warns, msg) }
	j, err := OpenJournalFS(jpath, CampaignKey("headline", resOpts(r)), false, efs)
	if err != nil {
		t.Fatal(err)
	}
	r.Journal = j
	// Every write after the header fails: the first cell checkpoint
	// breaks the journal, and the sticky error must stay a warning.
	efs.Inject(store.Fault{Op: store.OpWrite, Match: "campaign.journal",
		Skip: 1, Count: 1 << 20, Err: store.ErrNoSpace})

	plain := headlineReport(t, resOpts(&Resilience{Mode: parallel.FailDegrade}))
	got := headlineReport(t, resOpts(r))
	if !bytes.Equal(got, plain) {
		t.Fatalf("journal-degraded report drifted from plain run:\n%s", golden.Diff(plain, got))
	}
	if n := r.Log.Len(); n != 0 {
		t.Fatalf("journal write failure produced %d cell failures: %+v", n, r.Log.Failures())
	}
	if len(warns) != 1 {
		t.Fatalf("got %d degrade warnings, want exactly 1: %q", len(warns), warns)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close of a degraded-and-warned journal = %v, want nil", err)
	}
}

// TestStoreWriteFailureDegrades: same contract on the store side —
// ENOSPC on every staged write disables store commits with a single
// warning while the campaign's results stay byte-identical.
func TestStoreWriteFailureDegrades(t *testing.T) {
	efs := store.NewErrFS(nil)
	var warns []string
	r := storeRes(t, t.TempDir(), efs, &warns)
	efs.Inject(store.Fault{Op: store.OpWrite, Match: "tmp",
		Count: 1 << 20, Err: store.ErrNoSpace})

	plain := headlineReport(t, resOpts(&Resilience{Mode: parallel.FailDegrade}))
	got := headlineReport(t, resOpts(r))
	if !bytes.Equal(got, plain) {
		t.Fatalf("store-degraded report drifted from plain run:\n%s", golden.Diff(plain, got))
	}
	if n := r.Log.Len(); n != 0 {
		t.Fatalf("store write failure produced %d cell failures: %+v", n, r.Log.Failures())
	}
	if len(warns) != 1 {
		t.Fatalf("got %d degrade warnings, want exactly 1: %q", len(warns), warns)
	}
	if r.Store.WriteErr() == nil {
		t.Fatal("store writes not disabled after injected ENOSPC")
	}
}
