package experiments

// SVG rendering for grid experiments: produces a Fig. 6/8/9-style
// heatmap (nW across, nB down, one colored cell per configuration)
// using only the standard library, for people who want the figures and
// not just the tables.

import (
	"fmt"
	"math"
	"strings"
)

const (
	svgCell   = 72
	svgMargin = 56
)

// SVG renders the grid as a standalone heatmap image. Cells are
// colored on a white→steel-blue ramp from the grid minimum to maximum
// and labeled with their values.
func (g *GridData) SVG(title string) string {
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range g.Rel {
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	if math.IsInf(min, 1) {
		min, max = 0, 1
	}
	span := max - min
	if span == 0 {
		span = 1
	}

	w := svgMargin + len(Axis)*svgCell + 16
	h := svgMargin + len(Axis)*svgCell + 40
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n", w, h)
	fmt.Fprintf(&b, `<text x="%d" y="20" font-size="14" font-weight="bold">%s</text>`+"\n", svgMargin, escape(title))
	fmt.Fprintf(&b, `<text x="%d" y="38" font-size="11">nW →   (nB ↓)</text>`+"\n", svgMargin)

	for wi, nW := range Axis {
		x := svgMargin + wi*svgCell
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" text-anchor="middle">%d</text>`+"\n",
			x+svgCell/2, svgMargin-4, nW)
	}
	for bi, nB := range Axis {
		y := svgMargin + bi*svgCell
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" text-anchor="end">%d</text>`+"\n",
			svgMargin-6, y+svgCell/2+4, nB)
		for wi, nW := range Axis {
			x := svgMargin + wi*svgCell
			v := g.At(nW, nB)
			t := (v - min) / span
			r, gr, bl := rampColor(t)
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="rgb(%d,%d,%d)" stroke="white"/>`+"\n",
				x, y, svgCell, svgCell, r, gr, bl)
			txt := "black"
			if t > 0.6 {
				txt = "white"
			}
			fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12" text-anchor="middle" fill="%s">%.3f</text>`+"\n",
				x+svgCell/2, y+svgCell/2+4, txt, v)
		}
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" fill="#555">%s: %.3f – %.3f</text>`+"\n",
		svgMargin, h-10, escape(g.Metric), min, max)
	b.WriteString("</svg>\n")
	return b.String()
}

// rampColor maps t ∈ [0,1] onto a white→steel-blue ramp.
func rampColor(t float64) (r, g, b int) {
	t = math.Max(0, math.Min(1, t))
	r = int(255 - t*185)
	g = int(255 - t*125)
	b = int(255 - t*75)
	return
}

func escape(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	return strings.ReplaceAll(s, ">", "&gt;")
}
