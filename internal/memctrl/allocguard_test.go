package memctrl

// Zero-allocation guards for the controller's steady-state hot paths,
// the memctrl half of `make alloc-guard`. A regression here (a map
// rebuilt per pass, a closure per retirement, an interface box on the
// tracer seam) fails loudly instead of silently shifting the benchmark
// baselines in BENCH_<rev>.json.

import (
	"testing"

	"microbank/internal/config"
	"microbank/internal/obs"
	"microbank/internal/sim"
)

// nopTracer is an attached-but-inert DRAM command tracer: it proves the
// tracer seam itself (interface call per issued command) is free of
// allocation, per the obs layer's "observation is read-only" contract.
type nopTracer struct{}

func (nopTracer) TraceCmd(channel, bank int, kind obs.CmdKind, row uint32, issue, complete sim.Time) {
}

// TestEvalZeroAllocGuard drains a full request pool through enqueue,
// batch formation, candidate selection, DRAM issue, and retirement, and
// requires zero allocations per cycle — with and without a tracer
// attached.
//
// Skipped under the race detector, whose instrumentation allocates.
func TestEvalZeroAllocGuard(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is not meaningful under -race")
	}
	run := func(t *testing.T, trace bool) {
		eng, c, reqs := benchController(config.SchedPARBS, 64)
		if trace {
			c.SetTracer(nopTracer{}, 0)
		}
		// Warm cycle: grows the queue backing array, the engine free
		// list, and the selection scratch to steady-state size.
		for _, r := range reqs {
			c.Enqueue(r)
		}
		eng.Run()
		if avg := testing.AllocsPerRun(100, func() {
			resetRequests(reqs)
			for _, r := range reqs {
				c.Enqueue(r)
			}
			eng.Run()
		}); avg != 0 {
			t.Errorf("eval drain cycle allocates %.2f allocs/op, want 0", avg)
		}
	}
	t.Run("noTracer", func(t *testing.T) { run(t, false) })
	t.Run("tracer", func(t *testing.T) { run(t, true) })
}

// TestFormBatchZeroAllocGuard pins the single-thread PAR-BS batch
// formation path, which used to allocate a struct-keyed map entry per
// (thread, bank) pair per formation.
func TestFormBatchZeroAllocGuard(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is not meaningful under -race")
	}
	_, c, reqs := benchController(config.SchedPARBS, 32)
	for _, r := range reqs {
		r.Thread = 0 // single-thread path
		c.Enqueue(r)
	}
	c.formBatch() // warm the scratch
	if avg := testing.AllocsPerRun(100, func() {
		for _, r := range reqs {
			r.marked = false
		}
		for i := range c.markedPerThread {
			c.markedPerThread[i] = 0
		}
		c.batchLive = 0
		c.formBatch()
	}); avg != 0 {
		t.Errorf("formBatch allocates %.2f allocs/op, want 0", avg)
	}
}
