package memctrl

// Microbenchmarks of the controller's per-eval hot path: candidate
// selection (best), the full enqueue→drain churn (eval), and PAR-BS
// batch formation. These are the loops that dominate wall-clock in
// 64-core sweep runs, so they carry the zero-alloc contract asserted
// by TestEvalZeroAllocGuard and recorded in BENCH_<rev>.json.

import (
	"math/rand"
	"testing"

	"microbank/internal/config"
	"microbank/internal/sim"
)

// benchController builds a PAR-BS/open-page controller over the
// headline LPDDR-TSI (2,8) part with refresh off, plus a deterministic
// pool of reusable requests spread over banks, rows, and threads.
func benchController(sched config.Scheduler, nreq int) (*sim.Engine, *Controller, []*Request) {
	mem := config.MemPreset(config.LPDDRTSI, 2, 8)
	mem.Org.Channels = 1
	mem.Timing.TREFI = 0
	mem.Timing.TRFC = 0
	ctl := config.DefaultCtrl()
	ctl.Scheduler = sched
	eng := sim.NewEngine()
	c := New(eng, mem, ctl, 8)
	rng := rand.New(rand.NewSource(7))
	reqs := make([]*Request, nreq)
	for i := range reqs {
		reqs[i] = &Request{
			Addr:   (rng.Uint64() % (1 << 28)) &^ 63,
			Write:  i%5 == 4,
			Thread: i % 8,
		}
	}
	return eng, c, reqs
}

// resetRequests clears the per-run scheduling state so the pool can be
// re-enqueued without allocating fresh Request records.
func resetRequests(reqs []*Request) {
	for _, r := range reqs {
		r.marked = false
		r.ownMiss = false
	}
}

// BenchmarkBest measures one candidate-selection pass over a full
// 32-entry scheduling window, per scheduler. The queue is loaded once;
// best() itself mutates nothing, so every iteration sees an identical
// window.
func BenchmarkBest(b *testing.B) {
	for _, sc := range []struct {
		name string
		s    config.Scheduler
	}{{"FCFS", config.SchedFCFS}, {"FRFCFS", config.SchedFRFCFS}, {"PARBS", config.SchedPARBS}} {
		b.Run(sc.name, func(b *testing.B) {
			eng, c, reqs := benchController(sc.s, 32)
			// Load the window without running the engine (so nothing
			// drains), then form the PAR-BS batch the way eval would.
			for _, r := range reqs {
				c.Enqueue(r)
			}
			if sc.s == config.SchedPARBS {
				c.formBatch()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.best(eng.Now())
			}
		})
	}
}

// BenchmarkEval measures the full steady-state churn: enqueue a pool
// of requests and drain it through command selection, DRAM issue, and
// retirement. ns/op is per drained batch of 64 requests.
func BenchmarkEval(b *testing.B) {
	eng, c, reqs := benchController(config.SchedPARBS, 64)
	// Warm one full cycle so queue capacity, engine free lists, and
	// bank state reach steady state before measuring.
	for _, r := range reqs {
		c.Enqueue(r)
	}
	eng.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resetRequests(reqs)
		for _, r := range reqs {
			c.Enqueue(r)
		}
		eng.Run()
	}
}

// BenchmarkFormBatch measures PAR-BS batch formation over a full
// 32-entry window. The single-thread shape is the one that used to
// allocate a struct-keyed map entry per (thread, bank) pair per
// formation; both shapes must report 0 allocs/op
// (TestFormBatchZeroAllocGuard asserts it).
func BenchmarkFormBatch(b *testing.B) {
	for _, tc := range []struct {
		name    string
		threads int
	}{{"1thread", 1}, {"8threads", 8}} {
		b.Run(tc.name, func(b *testing.B) {
			_, c, reqs := benchController(config.SchedPARBS, 32)
			for i, r := range reqs {
				r.Thread = i % tc.threads
				c.Enqueue(r)
			}
			c.formBatch() // warm the scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, r := range reqs {
					r.marked = false
				}
				for t := range c.markedPerThread {
					c.markedPerThread[t] = 0
				}
				c.batchLive = 0
				c.formBatch()
			}
		})
	}
}
