// Package memctrl implements the memory controller: a request queue
// with FCFS / FR-FCFS / PAR-BS scheduling, DRAM command generation
// against package dram's timing model, configurable address
// interleaving (package addr), and the page-management policies of §V —
// open, close, minimalist-open, local/global bimodal predictors, a
// tournament predictor, and a perfect (oracle) policy.
//
// The perfect policy needs no lookahead: when a decision point leaves a
// row open and the *next* request to that bank wants a different row,
// the controller retroactively issues the precharge stamped at the
// earliest instant it could have issued — exact oracle timing because
// the bank was idle in between.
package memctrl

import (
	"fmt"

	"microbank/internal/addr"
	"microbank/internal/config"
	"microbank/internal/dram"
	"microbank/internal/obs"
	"microbank/internal/sim"
	"microbank/internal/stats"
)

// Request is one cache-line memory transaction presented to a
// controller.
type Request struct {
	Addr   uint64
	Write  bool
	Thread int // requesting hardware thread, for PAR-BS and the global predictor
	// Done is invoked exactly once when the request is serviced: for
	// reads when the line has arrived, for writes when the write has
	// been accepted by the DRAM (posted).
	Done func(at sim.Time)
	// Owner is an opaque caller field carried through the request's
	// lifetime. The OnRetire hook can use it to map a retiring request
	// back to the caller's transaction record (e.g. to recycle pooled
	// write requests, which have no Done callback).
	Owner any

	arrive  sim.Time
	loc     addr.Loc
	bank    int // local bank index within the channel
	marked  bool
	ownMiss bool // an ACT/PRE was issued on this request's behalf
	hit     bool // row-hit status, cached once per selection pass
	seq     uint64
}

// decision records a speculative open/close choice awaiting resolution.
type decision struct {
	pending       bool
	predictedOpen bool
	row           uint32
	thread        int
	at            sim.Time // decision instant (column access issue)
	preReady      sim.Time // earliest legal PRE at decision time
}

type bankCtl struct {
	idx       int  // this bank's index, for payload-carrying callbacks
	wantClose bool // close decided; PRE is a schedulable candidate
	dec       decision
	minEvent  sim.Event // pending minimalist-open timeout
	lastUse   sim.Time
}

// Stats is a snapshot of one controller's activity.
type Stats struct {
	Reads, Writes            uint64
	RowHits                  uint64 // column access without own ACT
	RowOpens                 uint64 // requests that triggered ACT
	RowConflictPres          uint64 // requests that had to close another row
	Retired                  uint64
	QueueOccIntegral         float64 // occupancy × ps
	ReadLatencyIntegralPS    float64
	PredDecisions, PredRight uint64
	// RegDeferred counts selection-pass deferrals by the bandwidth
	// regulator: one per request held out of one scheduling pass
	// because its thread had exhausted its per-bank budget for the
	// epoch (so a request stalled across many passes counts many
	// times — it is an activity gauge, not a request count).
	RegDeferred uint64
	Energy      dram.Energy
}

// RowHitRate returns serviced-from-open-row fraction.
func (s Stats) RowHitRate() float64 {
	tot := s.Reads + s.Writes
	if tot == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(tot)
}

// AvgReadLatencyNS returns the mean read service latency in ns.
func (s Stats) AvgReadLatencyNS() float64 {
	if s.Reads == 0 {
		return 0
	}
	return s.ReadLatencyIntegralPS / float64(s.Reads) / 1000.0
}

// PredictorHitRate returns the resolved page-decision accuracy.
func (s Stats) PredictorHitRate() float64 {
	if s.PredDecisions == 0 {
		return 0
	}
	return float64(s.PredRight) / float64(s.PredDecisions)
}

// Controller schedules requests for one memory channel.
type Controller struct {
	eng    *sim.Engine
	ch     *dram.Channel
	mapper *addr.Mapper
	cfg    config.Ctrl

	queue []*Request // arrival order; scheduling window = cfg.QueueDepth
	banks []bankCtl
	// closePending lists banks with a policy-decided precharge
	// outstanding (wantClose set), compacted lazily during eval.
	closePending []int
	pred         *pagePredictor

	// PAR-BS batch state.
	batchLive int // marked requests still queued

	seq           uint64
	evalScheduled bool
	wake          sim.Event
	// kickCb/wakeCb/minCb are allocated once in New so the hot
	// kick/wake/timeout paths schedule without a fresh closure per
	// event (minCb receives its bank through sim.ScheduleArg).
	kickCb func(*sim.Engine)
	wakeCb func(*sim.Engine)
	minCb  func(*sim.Engine, any)
	trc    sim.Time // cached tRC for the minimalist-open timeout

	// Candidate-selection scratch, pre-sized in New so the per-eval
	// hot path (best/formBatch) never allocates. winners holds, per
	// bank, the window index of the highest-priority queued request
	// during one selection pass (-1 = none; indices rather than
	// pointers keep the pass free of GC write barriers); passBanks
	// lists the banks touched this pass in first-seen window order
	// (the determinism order), and both are cleared on the way out of
	// best.
	winners   []int32
	passBanks []int
	// passRow caches each touched bank's open row for the duration of
	// one selection pass (-1 = closed; valid only for banks in
	// passBanks): bank state cannot change mid-pass, so the channel is
	// asked once per bank instead of once per window entry.
	passRow []int64
	// markedPerThread counts live PAR-BS-marked requests per thread —
	// the "shortest job first" ranking input — maintained
	// incrementally at batch formation and retirement instead of
	// being rebuilt (as a map) on every selection pass. Marked
	// requests always sit inside the scheduling window (queue
	// positions only ever decrease), so this equals the old
	// windowed count.
	markedPerThread []int
	// batchScratch is formBatch's per-(thread,bank) counting space:
	// at most one entry per window slot, reused across formations.
	batchScratch []tbCount

	// subs is Org.Subarrays(): SALP pseudo-banks per local bank. The
	// channel's bank array is expanded by this factor, and Enqueue
	// spreads requests over the pseudo-banks by row%subs, so all the
	// selection machinery above runs at subarray granularity unchanged.
	subs int

	// MemGuard-style bandwidth regulator (cfg.BankBudget > 0): regUsed
	// counts serviced column accesses per (thread, pseudo-bank) in the
	// current replenishment epoch, thread-major (thread*nbanks + bank),
	// cleared on epoch rollover. regFiltered notes that best held a
	// request back this eval, so an epoch-boundary wake is scheduled.
	regOn       bool
	regBudget   int32
	regEpoch    sim.Time
	regEpochIdx int64
	regUsed     []int32
	regFiltered bool

	// latHists holds one request-latency histogram per hardware thread
	// (picoseconds, arrival to data completion, reads and writes) for
	// the tail-latency and fairness metrics.
	latHists []stats.Histogram

	stats        Stats
	lastOccCheck sim.Time

	// bankOccScratch backs BankOccupancy; nil until first observed.
	bankOccScratch []uint16

	// OnRetire, when set, is called after a request has fully retired:
	// column access issued, queue slot released, page decision made.
	// Writes are posted (no Done callback), so this is the only
	// completion signal a caller can use to recycle write records. For
	// reads the Done event may still be in flight when OnRetire fires —
	// callers must not reuse a read record until Done has run.
	OnRetire func(*Request)
}

// Arena is the batched-build backing store for per-variant controller
// and DRAM bank state: one contiguous bankCtl slab (variant-major,
// `[variant][bank]`, mirroring dram.Arena) plus the DRAM arena the
// channels carve from. Size bankSlots as dram.BanksPerChannel summed
// over every channel of every batch variant.
type Arena struct {
	dram  *dram.Arena
	banks []bankCtl
	used  int
}

// NewArena reserves bankSlots controller-bank and DRAM-bank records.
func NewArena(bankSlots int) *Arena {
	return &Arena{dram: dram.NewArena(bankSlots), banks: make([]bankCtl, bankSlots)}
}

// take carves n zeroed bankCtl records; overflow (an undersized
// reservation) falls back to a private allocation and only costs
// contiguity. Arenas are per-batch and never recycled, so slab records
// are zero-valued by construction.
func (a *Arena) take(n int) []bankCtl {
	if a == nil || a.used+n > len(a.banks) {
		return make([]bankCtl, n)
	}
	s := a.banks[a.used : a.used+n : a.used+n]
	a.used += n
	return s
}

func (a *Arena) dramArena() *dram.Arena {
	if a == nil {
		return nil
	}
	return a.dram
}

// New builds a controller over a fresh DRAM channel. threads sizes the
// global predictor table.
func New(eng *sim.Engine, mem config.Mem, ctl config.Ctrl, threads int) *Controller {
	return NewWith(eng, mem, ctl, threads, nil)
}

// NewWith is New with the controller's and channel's bank-state arrays
// carved from arena (nil behaves exactly like New).
func NewWith(eng *sim.Engine, mem config.Mem, ctl config.Ctrl, threads int, arena *Arena) *Controller {
	if threads <= 0 {
		threads = 1
	}
	// Clamp the interleave base bit to the μbank row size: iB beyond
	// the row is "page interleaving" whatever the row size (this is why
	// Fig. 12's iB axis tops out at 12/11/10 for the partitioned
	// configurations).
	if maxIB := ctlMaxIB(mem.Org); ctl.InterleaveBit > maxIB {
		ctl.InterleaveBit = maxIB
	}
	mapper, err := addr.NewMapperHashed(mem.Org, ctl.InterleaveBit, ctl.XORBankHash)
	if err != nil {
		panic(fmt.Sprintf("memctrl: %v", err))
	}
	ch := dram.NewChannelWith(mem, arena.dramArena())
	c := &Controller{
		eng:             eng,
		ch:              ch,
		mapper:          mapper,
		cfg:             ctl,
		banks:           arena.take(ch.NumBanks()),
		pred:            newPagePredictor(ch.NumBanks(), threads),
		winners:         newWinners(ch.NumBanks()),
		passBanks:       make([]int, 0, ctl.QueueDepth),
		passRow:         make([]int64, ch.NumBanks()),
		markedPerThread: make([]int, threads),
		batchScratch:    make([]tbCount, 0, ctl.QueueDepth),
		trc:             ch.Config().Timing.TRC(),
		subs:            ch.Subarrays(),
		latHists:        make([]stats.Histogram, threads),
	}
	if ctl.BankBudget > 0 {
		c.regOn = true
		c.regBudget = int32(ctl.BankBudget)
		c.regEpoch = ctl.RegEpoch
		if c.regEpoch <= 0 {
			c.regEpoch = config.DefaultRegEpoch
		}
		c.regUsed = make([]int32, threads*ch.NumBanks())
	}
	for i := range c.banks {
		c.banks[i].idx = i
	}
	c.kickCb = func(e *sim.Engine) {
		c.evalScheduled = false
		c.eval(e.Now())
	}
	c.wakeCb = func(e *sim.Engine) {
		c.wake = sim.Event{}
		c.eval(e.Now())
	}
	c.minCb = func(e *sim.Engine, arg any) {
		b := arg.(*bankCtl)
		b.minEvent = sim.Event{}
		if open, _ := c.ch.Open(b.idx); open && b.lastUse <= e.Now()-c.trc {
			c.markClose(b.idx)
			c.kick()
		}
	}
	return c
}

// Mapper exposes the controller's address mapper.
func (c *Controller) Mapper() *addr.Mapper { return c.mapper }

// Channel exposes the underlying DRAM channel (read-only use).
func (c *Controller) Channel() *dram.Channel { return c.ch }

// QueueLen returns the number of queued (unserviced) requests.
func (c *Controller) QueueLen() int { return len(c.queue) }

// SetTracer threads a DRAM command tracer through to the channel;
// events are labelled with the given channel index. It replaces any
// tracer already attached; use AddTracer to fan out instead.
func (c *Controller) SetTracer(t obs.Tracer, channel int) {
	c.ch.SetTracer(t, channel)
}

// AddTracer attaches one more DRAM command tracer alongside any tracer
// already threaded through (obs.MultiTracer fan-out), so Chrome tracing
// and the protocol checker can observe the same run.
func (c *Controller) AddTracer(t obs.Tracer, channel int) {
	c.ch.AddTracer(t, channel)
}

// BankOccupancy summarizes how queued requests spread over banks:
// busy is the number of distinct banks with at least one queued
// request, maxQ the deepest per-bank backlog. The scratch slice is
// lazily allocated, so unobserved runs never pay for it.
func (c *Controller) BankOccupancy() (busy, maxQ int) {
	if len(c.queue) == 0 {
		return 0, 0
	}
	if c.bankOccScratch == nil {
		c.bankOccScratch = make([]uint16, len(c.banks))
	}
	occ := c.bankOccScratch
	for i := range occ {
		occ[i] = 0
	}
	for _, r := range c.queue {
		occ[r.bank]++
	}
	for _, n := range occ {
		if n > 0 {
			busy++
		}
		if int(n) > maxQ {
			maxQ = int(n)
		}
	}
	return busy, maxQ
}

// Stats returns a snapshot including DRAM energy so far.
func (c *Controller) Stats() Stats {
	s := c.stats
	s.Energy = c.ch.Energy()
	s.PredDecisions = c.pred.Decisions
	s.PredRight = c.pred.Correct
	return s
}

// Enqueue accepts a request at the current simulation time. The
// request queue is modeled as unbounded with a scheduling window of
// cfg.QueueDepth entries (occupancy statistics reflect true occupancy);
// callers bound outstanding requests through cache MSHRs.
func (c *Controller) Enqueue(r *Request) {
	now := c.eng.Now()
	c.accountOcc(now)
	r.arrive = now
	r.loc = c.mapper.Map(r.Addr)
	r.bank = c.mapper.LocalBank(r.loc)
	if c.subs > 1 {
		// SALP: the row selects the subarray; pseudo-banks are laid out
		// subarray-minor so bank%subs is the subarray index.
		r.bank = r.bank*c.subs + int(r.loc.Row)%c.subs
	}
	c.ensureThread(r.Thread)
	r.seq = c.seq
	c.seq++
	c.resolveDecision(r.bank, r.loc.Row, now)
	c.queue = append(c.queue, r)
	c.ch.CountRowOutcome(r.bank, r.loc.Row)
	c.kick()
}

// resolveDecision trains the predictor when a bank with a pending
// speculative decision sees its next request, and applies retroactive
// precharge semantics for the perfect policy.
func (c *Controller) resolveDecision(bank int, row uint32, now sim.Time) {
	b := &c.banks[bank]
	if !b.dec.pending {
		return
	}
	openWasRight := row == b.dec.row
	if c.cfg.PagePolicy == config.PredPerfect {
		// The oracle "predicted" whatever turned out right.
		c.pred.train(bank, b.dec.thread, openWasRight, openWasRight)
		// It would have closed the row iff the next access misses.
		// Retroactively issue the precharge at the earliest legal
		// instant; the bank has been idle since the decision.
		if open, cur := c.ch.Open(bank); open && cur == b.dec.row && !openWasRight {
			c.ch.IssuePRE(bank, b.dec.preReady)
		}
		b.dec.pending = false
		return
	}
	c.pred.train(bank, b.dec.thread, b.dec.predictedOpen, openWasRight)
	if !b.dec.predictedOpen && !openWasRight {
		// A close prediction that proved right: ensure the close
		// actually happens even if no conflicting request forces it.
		c.markClose(bank)
	}
	b.dec.pending = false
}

func (c *Controller) accountOcc(now sim.Time) {
	dt := float64(now - c.lastOccCheck)
	c.stats.QueueOccIntegral += dt * float64(len(c.queue))
	c.lastOccCheck = now
}

// kick schedules an evaluation pass at the current instant (priority 2,
// after same-instant arrivals).
func (c *Controller) kick() {
	if c.evalScheduled {
		return
	}
	c.evalScheduled = true
	c.eng.ScheduleP(c.eng.Now(), 2, c.kickCb)
}

// window returns the scheduling window (oldest QueueDepth requests).
func (c *Controller) window() []*Request {
	if len(c.queue) <= c.cfg.QueueDepth {
		return c.queue
	}
	return c.queue[:c.cfg.QueueDepth]
}

// candidate describes the next command needed by one bank.
type candidate struct {
	req      *Request // nil for policy-driven precharges
	bank     int
	cmd      dram.Cmd
	earliest sim.Time
	rowHit   bool
	marked   bool
	rank     int // PAR-BS thread rank (lower = higher priority)
}

// eval issues every command that can issue now, then schedules a wakeup
// at the earliest future candidate.
func (c *Controller) eval(now sim.Time) {
	c.eng.Cancel(c.wake)
	c.wake = sim.Event{}
	if c.regOn {
		c.regSync(now)
	}
	for {
		// Catch up any overdue refreshes (cheap no-op when none due).
		for c.ch.MaybeRefresh(now) {
		}
		if c.cfg.Scheduler == config.SchedPARBS {
			c.formBatch()
		}
		cand, ok := c.best(now)
		if !ok {
			break
		}
		if cand.earliest > now {
			c.scheduleWake(cand.earliest)
			break
		}
		c.issue(cand, now)
	}
	// A due-but-blocked refresh only needs polling while work is
	// pending; when idle it is caught up lazily at the next enqueue.
	if len(c.queue) > 0 && c.ch.RefreshDue(now) {
		c.scheduleWake(now + sim.Nanosecond)
	}
	// A regulator-deferred request becomes schedulable when budgets
	// replenish: wake at the next epoch boundary.
	if c.regFiltered {
		c.regFiltered = false
		c.scheduleWake(sim.Time(c.regEpochIdx+1) * c.regEpoch)
	}
}

// regSync rolls the regulator over to the epoch containing now,
// replenishing every (thread, bank) budget. eval runs at one instant,
// so the O(threads·banks) clear happens at most once per epoch
// boundary actually visited, not per pass.
func (c *Controller) regSync(now sim.Time) {
	e := int64(now / c.regEpoch)
	if e == c.regEpochIdx {
		return
	}
	c.regEpochIdx = e
	for i := range c.regUsed {
		c.regUsed[i] = 0
	}
}

// regAdmit reports whether the regulator lets r compete in this
// selection pass: its thread must still hold budget for its (pseudo-)
// bank in the current epoch.
func (c *Controller) regAdmit(r *Request) bool {
	return c.regUsed[r.Thread*len(c.banks)+r.bank] < c.regBudget
}

// ensureThread grows the per-thread tables when a request arrives from
// a thread id beyond the size the controller was constructed with.
func (c *Controller) ensureThread(t int) {
	if t >= len(c.latHists) {
		grown := make([]stats.Histogram, t+1)
		copy(grown, c.latHists)
		c.latHists = grown
	}
	if c.regOn && (t+1)*len(c.banks) > len(c.regUsed) {
		grown := make([]int32, (t+1)*len(c.banks))
		copy(grown, c.regUsed)
		c.regUsed = grown
	}
}

// ThreadLatencies exposes the per-thread request-latency histograms
// (picoseconds, arrival to data completion; reads and writes). The
// slice is live controller state — read it only between events, and
// do not mutate it while the run advances.
func (c *Controller) ThreadLatencies() []stats.Histogram { return c.latHists }

func (c *Controller) scheduleWake(at sim.Time) {
	if at <= c.eng.Now() {
		at = c.eng.Now() + 1
	}
	if c.wake.Pending() && c.wake.When() <= at {
		return
	}
	c.eng.Cancel(c.wake)
	c.wake = c.eng.ScheduleP(at, 2, c.wakeCb)
}

// Test-only cross-check hooks. When non-nil (installed by the property
// tests), schedHookBest receives every selection best makes and
// schedHookBatch every newly formed PAR-BS batch, so the map-based
// reference implementations in reference_test.go can be compared
// against the dense-array fast path on live controller state. The nil
// checks cost nothing measurable on the hot path.
var (
	schedHookBatch func(c *Controller)
	schedHookBest  func(c *Controller, now sim.Time, chosen candidate, found bool)
)

// newWinners returns a per-bank winner table with every entry empty.
func newWinners(nbanks int) []int32 {
	w := make([]int32, nbanks)
	for i := range w {
		w[i] = -1
	}
	return w
}

// tbCount is one (thread, bank) tally used during PAR-BS batch
// formation; the scratch slice holds at most one entry per window slot.
type tbCount struct{ thread, bank, n int }

// formBatch marks a new PAR-BS batch when the previous one drained:
// the oldest BatchCap requests per (thread, bank) are marked. The
// window holds at most QueueDepth requests, so a linear scan over the
// distinct (thread, bank) pairs seen so far beats a map both in time
// and in allocation (zero).
func (c *Controller) formBatch() {
	if c.batchLive > 0 {
		return
	}
	cnt := c.batchScratch[:0]
	for _, r := range c.window() {
		idx := -1
		for i := range cnt {
			if cnt[i].thread == r.Thread && cnt[i].bank == r.bank {
				idx = i
				break
			}
		}
		if idx < 0 {
			cnt = append(cnt, tbCount{thread: r.Thread, bank: r.bank})
			idx = len(cnt) - 1
		}
		if cnt[idx].n < c.cfg.BatchCap {
			cnt[idx].n++
			r.marked = true
			c.batchLive++
			c.addMarked(r.Thread, 1)
		}
	}
	c.batchScratch = cnt
	if schedHookBatch != nil {
		schedHookBatch(c)
	}
}

// addMarked adjusts the per-thread live marked-request count, growing
// the table on first sight of a thread id beyond the constructed size.
func (c *Controller) addMarked(thread, delta int) {
	if thread >= len(c.markedPerThread) {
		grown := make([]int, thread+1)
		copy(grown, c.markedPerThread)
		c.markedPerThread = grown
	}
	c.markedPerThread[thread] += delta
}

// beats reports whether a takes scheduling priority over b (both
// target the same bank; row-hit status is cached on the requests by
// best). It is the former per-pass `order` closure, hoisted so the
// selection loop carries no captured state.
func (c *Controller) beats(a, b *Request) bool {
	switch c.cfg.Scheduler {
	case config.SchedFCFS:
		return a.seq < b.seq
	case config.SchedPARBS:
		if a.marked != b.marked {
			return a.marked
		}
		if a.hit != b.hit {
			return a.hit
		}
		if a.marked && b.marked {
			la, lb := c.markedPerThread[a.Thread], c.markedPerThread[b.Thread]
			if la != lb {
				return la < lb
			}
		}
		return a.seq < b.seq
	default: // FR-FCFS
		if a.hit != b.hit {
			return a.hit
		}
		return a.seq < b.seq
	}
}

// best selects the highest-priority issuable candidate. The selection
// pass is allocation-free: per-bank winners live in the pre-sized
// winners array (passBanks records which entries are live, in the
// first-seen window order that fixes determinism), and each request's
// row-hit status is computed once per pass — bank state cannot change
// mid-pass — instead of per comparison.
func (c *Controller) best(now sim.Time) (candidate, bool) {
	win := c.window()
	banks := c.passBanks[:0]
	for wi, r := range win {
		if c.regOn && !c.regAdmit(r) {
			// Over budget this epoch: the request sits out the pass
			// entirely (it neither wins its bank nor blocks others).
			c.regFiltered = true
			c.stats.RegDeferred++
			continue
		}
		if cur := c.winners[r.bank]; cur < 0 {
			open, row := c.ch.Open(r.bank)
			or := int64(-1)
			if open {
				or = int64(row)
			}
			c.passRow[r.bank] = or
			r.hit = or == int64(r.loc.Row)
			c.winners[r.bank] = int32(wi)
			banks = append(banks, r.bank)
		} else {
			r.hit = c.passRow[r.bank] == int64(r.loc.Row)
			if c.beats(r, win[cur]) {
				c.winners[r.bank] = int32(wi)
			}
		}
	}
	c.passBanks = banks
	var bestC candidate
	found := false
	consider := func(cd candidate) {
		if !found {
			bestC, found = cd, true
			return
		}
		// Prefer issuable-now; then scheduler priority; then earliest.
		cdNow, bestNow := cd.earliest <= now, bestC.earliest <= now
		if cdNow != bestNow {
			if cdNow {
				bestC = cd
			}
			return
		}
		if cdNow {
			if cd.marked != bestC.marked {
				if cd.marked {
					bestC = cd
				}
				return
			}
			if cd.rowHit != bestC.rowHit {
				if cd.rowHit {
					bestC = cd
				}
				return
			}
			if cd.req != nil && bestC.req != nil && cd.req.seq < bestC.req.seq {
				bestC = cd
			}
			return
		}
		if cd.earliest < bestC.earliest {
			bestC = cd
		}
	}
	for _, bank := range banks {
		cd := c.commandForRow(bank, win[c.winners[bank]], c.passRow[bank], now)
		consider(cd)
	}
	// Policy-driven precharges for banks without queued requests,
	// compacting stale entries as we go.
	kept := c.closePending[:0]
	for _, bank := range c.closePending {
		b := &c.banks[bank]
		if !b.wantClose {
			continue
		}
		if open, _ := c.ch.Open(bank); !open {
			b.wantClose = false
			continue
		}
		kept = append(kept, bank)
		if c.winners[bank] >= 0 {
			continue
		}
		consider(candidate{bank: bank, cmd: dram.CmdPRE, earliest: c.ch.EarliestPRE(bank, now)})
	}
	c.closePending = kept
	// Clear the winners entries touched this pass; passBanks is reused
	// next pass via the retained backing array.
	for _, bank := range banks {
		c.winners[bank] = -1
	}
	if schedHookBest != nil {
		schedHookBest(c, now, bestC, found)
	}
	return bestC, found
}

func (c *Controller) isRowHit(r *Request) bool {
	open, row := c.ch.Open(r.bank)
	return open && row == r.loc.Row
}

// commandFor computes the next command the bank needs to serve r.
func (c *Controller) commandFor(bank int, r *Request, now sim.Time) candidate {
	openRow := int64(-1)
	if open, row := c.ch.Open(bank); open {
		openRow = int64(row)
	}
	return c.commandForRow(bank, r, openRow, now)
}

// commandForRow is commandFor with the bank's open row (-1 = closed)
// already known — best's selection loop has it cached per pass.
func (c *Controller) commandForRow(bank int, r *Request, openRow int64, now sim.Time) candidate {
	open := openRow >= 0
	row := uint32(openRow)
	cd := candidate{req: r, bank: bank, marked: r.marked}
	switch {
	case open && row == r.loc.Row:
		cd.cmd = dram.CmdRD
		if r.Write {
			cd.cmd = dram.CmdWR
		}
		cd.rowHit = true
		cd.earliest = c.ch.EarliestCol(bank, r.Write, now)
	case open:
		cd.cmd = dram.CmdPRE
		cd.earliest = c.ch.EarliestPRE(bank, now)
	default:
		cd.cmd = dram.CmdACT
		cd.earliest = c.ch.EarliestACT(bank, now)
	}
	return cd
}

// issue applies one candidate command at time now.
func (c *Controller) issue(cd candidate, now sim.Time) {
	b := &c.banks[cd.bank]
	switch cd.cmd {
	case dram.CmdACT:
		c.ch.IssueACT(cd.bank, cd.req.loc.Row, now)
		c.stats.RowOpens++
		cd.req.ownMiss = true
		b.wantClose = false
		c.cancelMinimalist(cd.bank)
	case dram.CmdPRE:
		c.ch.IssuePRE(cd.bank, now)
		b.wantClose = false
		c.cancelMinimalist(cd.bank)
		if cd.req != nil {
			c.stats.RowConflictPres++
			cd.req.ownMiss = true
		}
	case dram.CmdRD, dram.CmdWR:
		c.serviceColumn(cd, now)
	}
}

// serviceColumn issues the column access for cd.req, retires it, and
// runs the page-management decision.
func (c *Controller) serviceColumn(cd candidate, now sim.Time) {
	r := cd.req
	b := &c.banks[cd.bank]
	// Defensive: a pending speculative decision on this bank is
	// resolved by this very access (normally impossible after the
	// whole-queue scan in pageDecision, but kept as a safety net).
	if b.dec.pending {
		c.resolveDecision(cd.bank, r.loc.Row, now)
	}
	var doneAt sim.Time
	if r.Write {
		doneAt = c.ch.IssueWR(cd.bank, now)
		c.stats.Writes++
	} else {
		doneAt = c.ch.IssueRD(cd.bank, now)
		c.stats.Reads++
		c.stats.ReadLatencyIntegralPS += float64(doneAt - r.arrive)
	}
	if c.regOn {
		c.regUsed[r.Thread*len(c.banks)+r.bank]++
	}
	c.latHists[r.Thread].Observe(uint64(doneAt - r.arrive))
	if !r.ownMiss {
		c.stats.RowHits++
	}
	c.removeRequest(r)
	c.stats.Retired++
	if r.marked {
		c.batchLive--
		r.marked = false
		c.addMarked(r.Thread, -1)
	}
	b.lastUse = now
	if r.Done != nil {
		// The shared doneCb reads r.Done at fire time (the event fires
		// exactly at doneAt, so Now() is the completion instant); no
		// per-request closure needed.
		c.eng.ScheduleArg(doneAt, doneCb, r)
	}
	c.pageDecision(cd.bank, r, now)
	if c.OnRetire != nil {
		c.OnRetire(r)
	}
}

// doneCb delivers a request's completion callback; it is shared across
// all requests, receiving the request through the event payload.
var doneCb = func(e *sim.Engine, arg any) {
	r := arg.(*Request)
	r.Done(e.Now())
}

// removeRequest deletes r from the queue, preserving order.
func (c *Controller) removeRequest(r *Request) {
	c.accountOcc(c.eng.Now())
	for i, q := range c.queue {
		if q == r {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			return
		}
	}
	panic("memctrl: retiring request not in queue")
}

// pageDecision decides, after a column access to bank, whether to keep
// the row open. With pending same-bank work the queue dictates the
// choice (§V); otherwise the configured policy predicts.
func (c *Controller) pageDecision(bank int, r *Request, now sim.Time) {
	b := &c.banks[bank]
	_, row := c.ch.Open(bank)
	// Queue knowledge first: any same-bank request pending? Scan the
	// WHOLE queue, not just the scheduling window — a same-bank request
	// beyond the window would otherwise be serviced while a speculative
	// decision is pending, invalidating its recorded precharge point.
	var sameBank, sameRow bool
	for _, q := range c.queue {
		if q.bank == bank {
			sameBank = true
			if q.loc.Row == row {
				sameRow = true
				break
			}
		}
	}
	if sameRow {
		return // keep open: a queued hit will use it
	}
	if sameBank {
		// Queued conflict: close as soon as legal (the conflicting
		// request's own PRE candidate handles it; mark intent anyway).
		c.markClose(bank)
		return
	}
	// Speculative decision territory.
	var predictOpen bool
	switch c.cfg.PagePolicy {
	case config.OpenPage:
		predictOpen = true
	case config.ClosePage:
		predictOpen = false
	case config.MinimalistOpen:
		// Keep open for ~tRC, then close. Model as open prediction with
		// a timed close.
		predictOpen = true
		c.armMinimalist(bank, now)
	case config.PredLocal:
		predictOpen = c.pred.local[bank].predictOpen()
	case config.PredGlobal:
		predictOpen = c.pred.global[r.Thread].predictOpen()
	case config.PredTournament:
		predictOpen = c.pred.predictTournament(bank, r.Thread)
	case config.PredPerfect:
		// Defer: resolveDecision applies the oracle retroactively.
		predictOpen = true
	}
	b.dec = decision{
		pending:       true,
		predictedOpen: predictOpen,
		row:           row,
		thread:        r.Thread,
		at:            now,
		preReady:      c.ch.EarliestPRE(bank, now),
	}
	if !predictOpen && c.cfg.PagePolicy != config.PredPerfect {
		c.markClose(bank)
	}
}

func (c *Controller) armMinimalist(bank int, now sim.Time) {
	c.cancelMinimalist(bank)
	b := &c.banks[bank]
	b.minEvent = c.eng.ScheduleArg(now+c.trc, c.minCb, b)
}

// markClose flags a bank for a policy-driven precharge.
func (c *Controller) markClose(bank int) {
	b := &c.banks[bank]
	if !b.wantClose {
		b.wantClose = true
		c.closePending = append(c.closePending, bank)
	}
}

func (c *Controller) cancelMinimalist(bank int) {
	b := &c.banks[bank]
	c.eng.Cancel(b.minEvent)
	b.minEvent = sim.Event{}
}

// Drained reports whether no requests remain queued.
func (c *Controller) Drained() bool { return len(c.queue) == 0 }

// ctlMaxIB returns the largest legal interleave base bit: the byte
// width of one μbank row.
func ctlMaxIB(o config.Org) int {
	b := 0
	for v := o.MicroRowBytes(); v > 1; v >>= 1 {
		b++
	}
	return b
}
