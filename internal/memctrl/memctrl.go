// Package memctrl implements the memory controller: a request queue
// with FCFS / FR-FCFS / PAR-BS scheduling, DRAM command generation
// against package dram's timing model, configurable address
// interleaving (package addr), and the page-management policies of §V —
// open, close, minimalist-open, local/global bimodal predictors, a
// tournament predictor, and a perfect (oracle) policy.
//
// The perfect policy needs no lookahead: when a decision point leaves a
// row open and the *next* request to that bank wants a different row,
// the controller retroactively issues the precharge stamped at the
// earliest instant it could have issued — exact oracle timing because
// the bank was idle in between.
package memctrl

import (
	"fmt"

	"microbank/internal/addr"
	"microbank/internal/config"
	"microbank/internal/dram"
	"microbank/internal/obs"
	"microbank/internal/sim"
)

// Request is one cache-line memory transaction presented to a
// controller.
type Request struct {
	Addr   uint64
	Write  bool
	Thread int // requesting hardware thread, for PAR-BS and the global predictor
	// Done is invoked exactly once when the request is serviced: for
	// reads when the line has arrived, for writes when the write has
	// been accepted by the DRAM (posted).
	Done func(at sim.Time)

	arrive  sim.Time
	loc     addr.Loc
	bank    int // local bank index within the channel
	marked  bool
	ownMiss bool // an ACT/PRE was issued on this request's behalf
	seq     uint64
}

// decision records a speculative open/close choice awaiting resolution.
type decision struct {
	pending       bool
	predictedOpen bool
	row           uint32
	thread        int
	at            sim.Time // decision instant (column access issue)
	preReady      sim.Time // earliest legal PRE at decision time
}

type bankCtl struct {
	wantClose bool // close decided; PRE is a schedulable candidate
	dec       decision
	minEvent  sim.Event // pending minimalist-open timeout
	lastUse   sim.Time
}

// Stats is a snapshot of one controller's activity.
type Stats struct {
	Reads, Writes            uint64
	RowHits                  uint64 // column access without own ACT
	RowOpens                 uint64 // requests that triggered ACT
	RowConflictPres          uint64 // requests that had to close another row
	Retired                  uint64
	QueueOccIntegral         float64 // occupancy × ps
	ReadLatencyIntegralPS    float64
	PredDecisions, PredRight uint64
	Energy                   dram.Energy
}

// RowHitRate returns serviced-from-open-row fraction.
func (s Stats) RowHitRate() float64 {
	tot := s.Reads + s.Writes
	if tot == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(tot)
}

// AvgReadLatencyNS returns the mean read service latency in ns.
func (s Stats) AvgReadLatencyNS() float64 {
	if s.Reads == 0 {
		return 0
	}
	return s.ReadLatencyIntegralPS / float64(s.Reads) / 1000.0
}

// PredictorHitRate returns the resolved page-decision accuracy.
func (s Stats) PredictorHitRate() float64 {
	if s.PredDecisions == 0 {
		return 0
	}
	return float64(s.PredRight) / float64(s.PredDecisions)
}

// Controller schedules requests for one memory channel.
type Controller struct {
	eng    *sim.Engine
	ch     *dram.Channel
	mapper *addr.Mapper
	cfg    config.Ctrl

	queue []*Request // arrival order; scheduling window = cfg.QueueDepth
	banks []bankCtl
	// closePending lists banks with a policy-decided precharge
	// outstanding (wantClose set), compacted lazily during eval.
	closePending []int
	pred         *pagePredictor

	// PAR-BS batch state.
	batchLive int // marked requests still queued

	seq           uint64
	evalScheduled bool
	wake          sim.Event
	// kickCb/wakeCb are allocated once in New so the hot kick/wake
	// paths schedule without a fresh closure per event.
	kickCb func(*sim.Engine)
	wakeCb func(*sim.Engine)

	stats        Stats
	lastOccCheck sim.Time

	// bankOccScratch backs BankOccupancy; nil until first observed.
	bankOccScratch []uint16
}

// New builds a controller over a fresh DRAM channel. threads sizes the
// global predictor table.
func New(eng *sim.Engine, mem config.Mem, ctl config.Ctrl, threads int) *Controller {
	if threads <= 0 {
		threads = 1
	}
	// Clamp the interleave base bit to the μbank row size: iB beyond
	// the row is "page interleaving" whatever the row size (this is why
	// Fig. 12's iB axis tops out at 12/11/10 for the partitioned
	// configurations).
	if maxIB := ctlMaxIB(mem.Org); ctl.InterleaveBit > maxIB {
		ctl.InterleaveBit = maxIB
	}
	mapper, err := addr.NewMapperHashed(mem.Org, ctl.InterleaveBit, ctl.XORBankHash)
	if err != nil {
		panic(fmt.Sprintf("memctrl: %v", err))
	}
	ch := dram.NewChannel(mem)
	c := &Controller{
		eng:    eng,
		ch:     ch,
		mapper: mapper,
		cfg:    ctl,
		banks:  make([]bankCtl, ch.NumBanks()),
		pred:   newPagePredictor(ch.NumBanks(), threads),
	}
	c.kickCb = func(e *sim.Engine) {
		c.evalScheduled = false
		c.eval(e.Now())
	}
	c.wakeCb = func(e *sim.Engine) {
		c.wake = sim.Event{}
		c.eval(e.Now())
	}
	return c
}

// Mapper exposes the controller's address mapper.
func (c *Controller) Mapper() *addr.Mapper { return c.mapper }

// Channel exposes the underlying DRAM channel (read-only use).
func (c *Controller) Channel() *dram.Channel { return c.ch }

// QueueLen returns the number of queued (unserviced) requests.
func (c *Controller) QueueLen() int { return len(c.queue) }

// SetTracer threads a DRAM command tracer through to the channel;
// events are labelled with the given channel index. It replaces any
// tracer already attached; use AddTracer to fan out instead.
func (c *Controller) SetTracer(t obs.Tracer, channel int) {
	c.ch.SetTracer(t, channel)
}

// AddTracer attaches one more DRAM command tracer alongside any tracer
// already threaded through (obs.MultiTracer fan-out), so Chrome tracing
// and the protocol checker can observe the same run.
func (c *Controller) AddTracer(t obs.Tracer, channel int) {
	c.ch.AddTracer(t, channel)
}

// BankOccupancy summarizes how queued requests spread over banks:
// busy is the number of distinct banks with at least one queued
// request, maxQ the deepest per-bank backlog. The scratch slice is
// lazily allocated, so unobserved runs never pay for it.
func (c *Controller) BankOccupancy() (busy, maxQ int) {
	if len(c.queue) == 0 {
		return 0, 0
	}
	if c.bankOccScratch == nil {
		c.bankOccScratch = make([]uint16, len(c.banks))
	}
	occ := c.bankOccScratch
	for i := range occ {
		occ[i] = 0
	}
	for _, r := range c.queue {
		occ[r.bank]++
	}
	for _, n := range occ {
		if n > 0 {
			busy++
		}
		if int(n) > maxQ {
			maxQ = int(n)
		}
	}
	return busy, maxQ
}

// Stats returns a snapshot including DRAM energy so far.
func (c *Controller) Stats() Stats {
	s := c.stats
	s.Energy = c.ch.Energy()
	s.PredDecisions = c.pred.Decisions
	s.PredRight = c.pred.Correct
	return s
}

// Enqueue accepts a request at the current simulation time. The
// request queue is modeled as unbounded with a scheduling window of
// cfg.QueueDepth entries (occupancy statistics reflect true occupancy);
// callers bound outstanding requests through cache MSHRs.
func (c *Controller) Enqueue(r *Request) {
	now := c.eng.Now()
	c.accountOcc(now)
	r.arrive = now
	r.loc = c.mapper.Map(r.Addr)
	r.bank = c.mapper.LocalBank(r.loc)
	r.seq = c.seq
	c.seq++
	c.resolveDecision(r.bank, r.loc.Row, now)
	c.queue = append(c.queue, r)
	c.ch.CountRowOutcome(r.bank, r.loc.Row)
	c.kick()
}

// resolveDecision trains the predictor when a bank with a pending
// speculative decision sees its next request, and applies retroactive
// precharge semantics for the perfect policy.
func (c *Controller) resolveDecision(bank int, row uint32, now sim.Time) {
	b := &c.banks[bank]
	if !b.dec.pending {
		return
	}
	openWasRight := row == b.dec.row
	if c.cfg.PagePolicy == config.PredPerfect {
		// The oracle "predicted" whatever turned out right.
		c.pred.train(bank, b.dec.thread, openWasRight, openWasRight)
		// It would have closed the row iff the next access misses.
		// Retroactively issue the precharge at the earliest legal
		// instant; the bank has been idle since the decision.
		if open, cur := c.ch.Open(bank); open && cur == b.dec.row && !openWasRight {
			c.ch.IssuePRE(bank, b.dec.preReady)
		}
		b.dec.pending = false
		return
	}
	c.pred.train(bank, b.dec.thread, b.dec.predictedOpen, openWasRight)
	if !b.dec.predictedOpen && !openWasRight {
		// A close prediction that proved right: ensure the close
		// actually happens even if no conflicting request forces it.
		c.markClose(bank)
	}
	b.dec.pending = false
}

func (c *Controller) accountOcc(now sim.Time) {
	dt := float64(now - c.lastOccCheck)
	c.stats.QueueOccIntegral += dt * float64(len(c.queue))
	c.lastOccCheck = now
}

// kick schedules an evaluation pass at the current instant (priority 2,
// after same-instant arrivals).
func (c *Controller) kick() {
	if c.evalScheduled {
		return
	}
	c.evalScheduled = true
	c.eng.ScheduleP(c.eng.Now(), 2, c.kickCb)
}

// window returns the scheduling window (oldest QueueDepth requests).
func (c *Controller) window() []*Request {
	if len(c.queue) <= c.cfg.QueueDepth {
		return c.queue
	}
	return c.queue[:c.cfg.QueueDepth]
}

// candidate describes the next command needed by one bank.
type candidate struct {
	req      *Request // nil for policy-driven precharges
	bank     int
	cmd      dram.Cmd
	earliest sim.Time
	rowHit   bool
	marked   bool
	rank     int // PAR-BS thread rank (lower = higher priority)
}

// eval issues every command that can issue now, then schedules a wakeup
// at the earliest future candidate.
func (c *Controller) eval(now sim.Time) {
	c.eng.Cancel(c.wake)
	c.wake = sim.Event{}
	for {
		// Catch up any overdue refreshes (cheap no-op when none due).
		for c.ch.MaybeRefresh(now) {
		}
		if c.cfg.Scheduler == config.SchedPARBS {
			c.formBatch()
		}
		cand, ok := c.best(now)
		if !ok {
			break
		}
		if cand.earliest > now {
			c.scheduleWake(cand.earliest)
			break
		}
		c.issue(cand, now)
	}
	// A due-but-blocked refresh only needs polling while work is
	// pending; when idle it is caught up lazily at the next enqueue.
	if len(c.queue) > 0 && c.ch.RefreshDue(now) {
		c.scheduleWake(now + sim.Nanosecond)
	}
}

func (c *Controller) scheduleWake(at sim.Time) {
	if at <= c.eng.Now() {
		at = c.eng.Now() + 1
	}
	if c.wake.Pending() && c.wake.When() <= at {
		return
	}
	c.eng.Cancel(c.wake)
	c.wake = c.eng.ScheduleP(at, 2, c.wakeCb)
}

// formBatch marks a new PAR-BS batch when the previous one drained:
// the oldest BatchCap requests per (thread, bank) are marked.
func (c *Controller) formBatch() {
	if c.batchLive > 0 {
		return
	}
	type tb struct{ thread, bank int }
	counts := map[tb]int{}
	for _, r := range c.window() {
		k := tb{r.Thread, r.bank}
		if counts[k] < c.cfg.BatchCap {
			counts[k]++
			r.marked = true
			c.batchLive++
		}
	}
}

// threadLoad returns, per thread, the number of marked queued requests
// (PAR-BS "shortest job first" ranking input).
func (c *Controller) threadLoad() map[int]int {
	load := map[int]int{}
	for _, r := range c.window() {
		if r.marked {
			load[r.Thread]++
		}
	}
	return load
}

// best selects the highest-priority issuable candidate.
func (c *Controller) best(now sim.Time) (candidate, bool) {
	win := c.window()
	var load map[int]int
	if c.cfg.Scheduler == config.SchedPARBS {
		load = c.threadLoad()
	}
	// Highest-priority request per bank decides that bank's command.
	perBank := map[int]*Request{}
	order := func(a, b *Request) bool { // true if a beats b
		switch c.cfg.Scheduler {
		case config.SchedFCFS:
			return a.seq < b.seq
		case config.SchedPARBS:
			if a.marked != b.marked {
				return a.marked
			}
			ah, bh := c.isRowHit(a), c.isRowHit(b)
			if ah != bh {
				return ah
			}
			if a.marked && b.marked && load[a.Thread] != load[b.Thread] {
				return load[a.Thread] < load[b.Thread]
			}
			return a.seq < b.seq
		default: // FR-FCFS
			ah, bh := c.isRowHit(a), c.isRowHit(b)
			if ah != bh {
				return ah
			}
			return a.seq < b.seq
		}
	}
	for _, r := range win {
		if cur, ok := perBank[r.bank]; !ok || order(r, cur) {
			perBank[r.bank] = r
		}
	}
	var bestC candidate
	found := false
	consider := func(cd candidate) {
		if !found {
			bestC, found = cd, true
			return
		}
		// Prefer issuable-now; then scheduler priority; then earliest.
		cdNow, bestNow := cd.earliest <= now, bestC.earliest <= now
		if cdNow != bestNow {
			if cdNow {
				bestC = cd
			}
			return
		}
		if cdNow {
			if cd.marked != bestC.marked {
				if cd.marked {
					bestC = cd
				}
				return
			}
			if cd.rowHit != bestC.rowHit {
				if cd.rowHit {
					bestC = cd
				}
				return
			}
			if cd.req != nil && bestC.req != nil && cd.req.seq < bestC.req.seq {
				bestC = cd
			}
			return
		}
		if cd.earliest < bestC.earliest {
			bestC = cd
		}
	}
	// Iterate in window order (not map order) for determinism.
	seen := map[int]bool{}
	for _, r := range win {
		if seen[r.bank] {
			continue
		}
		seen[r.bank] = true
		cd := c.commandFor(r.bank, perBank[r.bank], now)
		consider(cd)
	}
	// Policy-driven precharges for banks without queued requests,
	// compacting stale entries as we go.
	kept := c.closePending[:0]
	for _, bank := range c.closePending {
		b := &c.banks[bank]
		if !b.wantClose {
			continue
		}
		if open, _ := c.ch.Open(bank); !open {
			b.wantClose = false
			continue
		}
		kept = append(kept, bank)
		if _, has := perBank[bank]; has {
			continue
		}
		consider(candidate{bank: bank, cmd: dram.CmdPRE, earliest: c.ch.EarliestPRE(bank, now)})
	}
	c.closePending = kept
	return bestC, found
}

func (c *Controller) isRowHit(r *Request) bool {
	open, row := c.ch.Open(r.bank)
	return open && row == r.loc.Row
}

// commandFor computes the next command the bank needs to serve r.
func (c *Controller) commandFor(bank int, r *Request, now sim.Time) candidate {
	open, row := c.ch.Open(bank)
	cd := candidate{req: r, bank: bank, marked: r.marked}
	switch {
	case open && row == r.loc.Row:
		cd.cmd = dram.CmdRD
		if r.Write {
			cd.cmd = dram.CmdWR
		}
		cd.rowHit = true
		cd.earliest = c.ch.EarliestCol(bank, r.Write, now)
	case open:
		cd.cmd = dram.CmdPRE
		cd.earliest = c.ch.EarliestPRE(bank, now)
	default:
		cd.cmd = dram.CmdACT
		cd.earliest = c.ch.EarliestACT(bank, now)
	}
	return cd
}

// issue applies one candidate command at time now.
func (c *Controller) issue(cd candidate, now sim.Time) {
	b := &c.banks[cd.bank]
	switch cd.cmd {
	case dram.CmdACT:
		c.ch.IssueACT(cd.bank, cd.req.loc.Row, now)
		c.stats.RowOpens++
		cd.req.ownMiss = true
		b.wantClose = false
		c.cancelMinimalist(cd.bank)
	case dram.CmdPRE:
		c.ch.IssuePRE(cd.bank, now)
		b.wantClose = false
		c.cancelMinimalist(cd.bank)
		if cd.req != nil {
			c.stats.RowConflictPres++
			cd.req.ownMiss = true
		}
	case dram.CmdRD, dram.CmdWR:
		c.serviceColumn(cd, now)
	}
}

// serviceColumn issues the column access for cd.req, retires it, and
// runs the page-management decision.
func (c *Controller) serviceColumn(cd candidate, now sim.Time) {
	r := cd.req
	b := &c.banks[cd.bank]
	// Defensive: a pending speculative decision on this bank is
	// resolved by this very access (normally impossible after the
	// whole-queue scan in pageDecision, but kept as a safety net).
	if b.dec.pending {
		c.resolveDecision(cd.bank, r.loc.Row, now)
	}
	var doneAt sim.Time
	if r.Write {
		doneAt = c.ch.IssueWR(cd.bank, now)
		c.stats.Writes++
	} else {
		doneAt = c.ch.IssueRD(cd.bank, now)
		c.stats.Reads++
		c.stats.ReadLatencyIntegralPS += float64(doneAt - r.arrive)
	}
	if !r.ownMiss {
		c.stats.RowHits++
	}
	c.removeRequest(r)
	c.stats.Retired++
	if r.marked {
		c.batchLive--
		r.marked = false
	}
	b.lastUse = now
	if r.Done != nil {
		done := r.Done
		c.eng.Schedule(doneAt, func(*sim.Engine) { done(doneAt) })
	}
	c.pageDecision(cd.bank, r, now)
}

// removeRequest deletes r from the queue, preserving order.
func (c *Controller) removeRequest(r *Request) {
	c.accountOcc(c.eng.Now())
	for i, q := range c.queue {
		if q == r {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			return
		}
	}
	panic("memctrl: retiring request not in queue")
}

// pageDecision decides, after a column access to bank, whether to keep
// the row open. With pending same-bank work the queue dictates the
// choice (§V); otherwise the configured policy predicts.
func (c *Controller) pageDecision(bank int, r *Request, now sim.Time) {
	b := &c.banks[bank]
	_, row := c.ch.Open(bank)
	// Queue knowledge first: any same-bank request pending? Scan the
	// WHOLE queue, not just the scheduling window — a same-bank request
	// beyond the window would otherwise be serviced while a speculative
	// decision is pending, invalidating its recorded precharge point.
	var sameBank, sameRow bool
	for _, q := range c.queue {
		if q.bank == bank {
			sameBank = true
			if q.loc.Row == row {
				sameRow = true
				break
			}
		}
	}
	if sameRow {
		return // keep open: a queued hit will use it
	}
	if sameBank {
		// Queued conflict: close as soon as legal (the conflicting
		// request's own PRE candidate handles it; mark intent anyway).
		c.markClose(bank)
		return
	}
	// Speculative decision territory.
	var predictOpen bool
	switch c.cfg.PagePolicy {
	case config.OpenPage:
		predictOpen = true
	case config.ClosePage:
		predictOpen = false
	case config.MinimalistOpen:
		// Keep open for ~tRC, then close. Model as open prediction with
		// a timed close.
		predictOpen = true
		c.armMinimalist(bank, now)
	case config.PredLocal:
		predictOpen = c.pred.local[bank].predictOpen()
	case config.PredGlobal:
		predictOpen = c.pred.global[r.Thread].predictOpen()
	case config.PredTournament:
		predictOpen = c.pred.predictTournament(bank, r.Thread)
	case config.PredPerfect:
		// Defer: resolveDecision applies the oracle retroactively.
		predictOpen = true
	}
	b.dec = decision{
		pending:       true,
		predictedOpen: predictOpen,
		row:           row,
		thread:        r.Thread,
		at:            now,
		preReady:      c.ch.EarliestPRE(bank, now),
	}
	if !predictOpen && c.cfg.PagePolicy != config.PredPerfect {
		c.markClose(bank)
	}
}

func (c *Controller) armMinimalist(bank int, now sim.Time) {
	c.cancelMinimalist(bank)
	b := &c.banks[bank]
	trc := c.ch.Config().Timing.TRC()
	b.minEvent = c.eng.Schedule(now+trc, func(e *sim.Engine) {
		b.minEvent = sim.Event{}
		if open, _ := c.ch.Open(bank); open && b.lastUse <= e.Now()-trc {
			c.markClose(bank)
			c.kick()
		}
	})
}

// markClose flags a bank for a policy-driven precharge.
func (c *Controller) markClose(bank int) {
	b := &c.banks[bank]
	if !b.wantClose {
		b.wantClose = true
		c.closePending = append(c.closePending, bank)
	}
}

func (c *Controller) cancelMinimalist(bank int) {
	b := &c.banks[bank]
	c.eng.Cancel(b.minEvent)
	b.minEvent = sim.Event{}
}

// Drained reports whether no requests remain queued.
func (c *Controller) Drained() bool { return len(c.queue) == 0 }

// ctlMaxIB returns the largest legal interleave base bit: the byte
// width of one μbank row.
func ctlMaxIB(o config.Org) int {
	b := 0
	for v := o.MicroRowBytes(); v > 1; v >>= 1 {
		b++
	}
	return b
}
