package memctrl

import (
	"math/rand"
	"testing"
	"testing/quick"

	"microbank/internal/config"
	"microbank/internal/sim"
)

const ns = sim.Nanosecond

func testMem(nW, nB int) config.Mem {
	m := config.MemPreset(config.LPDDRTSI, nW, nB)
	m.Org.Channels = 1
	m.Timing.TREFI = 0
	m.Timing.TRFC = 0
	return m
}

func testCtl(policy config.PagePolicy) config.Ctrl {
	c := config.DefaultCtrl()
	c.PagePolicy = policy
	return c
}

// run builds a controller, runs fn to enqueue work, then drains.
func run(t *testing.T, mem config.Mem, ctl config.Ctrl, fn func(*sim.Engine, *Controller)) *Controller {
	t.Helper()
	eng := sim.NewEngine()
	c := New(eng, mem, ctl, 64)
	fn(eng, c)
	eng.Run()
	if !c.Drained() {
		t.Fatalf("controller did not drain: %d left", c.QueueLen())
	}
	return c
}

func TestSingleReadLatency(t *testing.T) {
	mem := testMem(1, 1)
	var doneAt sim.Time
	run(t, mem, testCtl(config.OpenPage), func(eng *sim.Engine, c *Controller) {
		eng.Schedule(0, func(*sim.Engine) {
			c.Enqueue(&Request{Addr: 0, Done: func(at sim.Time) { doneAt = at }})
		})
	})
	// Closed bank: ACT at 0, RD at tRCD, data at tRCD+tAA+tBL = 30 ns.
	want := mem.Timing.TRCD + mem.Timing.TAA + mem.Timing.TBL
	if doneAt != want {
		t.Fatalf("read done at %d, want %d", doneAt, want)
	}
}

func TestRowHitLatency(t *testing.T) {
	mem := testMem(1, 1)
	var first, second sim.Time
	run(t, mem, testCtl(config.OpenPage), func(eng *sim.Engine, c *Controller) {
		eng.Schedule(0, func(*sim.Engine) {
			c.Enqueue(&Request{Addr: 0, Done: func(at sim.Time) { first = at }})
		})
		// Arrives long after the first completed; row still open.
		eng.Schedule(100*ns, func(*sim.Engine) {
			c.Enqueue(&Request{Addr: 64, Done: func(at sim.Time) { second = at }})
		})
	})
	if first != 30*ns {
		t.Fatalf("first done at %d", first)
	}
	// Row hit: RD at 100ns, data at +tAA+tBL = 16 ns later.
	want := 100*ns + mem.Timing.TAA + mem.Timing.TBL
	if second != want {
		t.Fatalf("row hit done at %d, want %d", second, want)
	}
	st := run(t, mem, testCtl(config.OpenPage), func(eng *sim.Engine, c *Controller) {
		eng.Schedule(0, func(*sim.Engine) { c.Enqueue(&Request{Addr: 0}) })
		eng.Schedule(100*ns, func(*sim.Engine) { c.Enqueue(&Request{Addr: 64}) })
	}).Stats()
	if st.RowHits != 1 || st.Reads != 2 {
		t.Fatalf("stats = %+v, want 1 hit of 2 reads", st)
	}
}

// rowAddr returns an address mapping to (bank row col) on channel 0 by
// construction through the mapper.
func rowAddr(c *Controller, bankLocal int, row uint32, col uint32) uint64 {
	m := c.Mapper()
	org := m.Org()
	per := org.NW * org.NB
	loc := c.mapper.Map(0)
	loc.Rank = bankLocal / (org.BanksPerRank * per)
	rem := bankLocal % (org.BanksPerRank * per)
	loc.Bank = rem / per
	loc.Micro = rem % per
	loc.Row = row
	loc.Col = col
	loc.Channel = 0
	return m.Unmap(loc)
}

func TestClosePolicyClosesIdleRow(t *testing.T) {
	mem := testMem(1, 1)
	c := run(t, mem, testCtl(config.ClosePage), func(eng *sim.Engine, ctl *Controller) {
		eng.Schedule(0, func(*sim.Engine) { ctl.Enqueue(&Request{Addr: 0}) })
	})
	if open, _ := c.Channel().Open(0); open {
		t.Fatal("close-page left the row open")
	}
	// Open policy leaves it open.
	c2 := run(t, mem, testCtl(config.OpenPage), func(eng *sim.Engine, ctl *Controller) {
		eng.Schedule(0, func(*sim.Engine) { ctl.Enqueue(&Request{Addr: 0}) })
	})
	if open, _ := c2.Channel().Open(0); !open {
		t.Fatal("open-page closed the row")
	}
}

func TestCloseBeatsOpenOnConflicts(t *testing.T) {
	// Alternating rows to one bank, spaced out so each decision is
	// speculative: close-page should finish each access sooner.
	mem := testMem(1, 1)
	gap := 200 * ns
	lat := func(policy config.PagePolicy) (total sim.Time) {
		run(t, mem, testCtl(policy), func(eng *sim.Engine, c *Controller) {
			for i := 0; i < 10; i++ {
				i := i
				at := sim.Time(i) * gap
				eng.Schedule(at, func(*sim.Engine) {
					c.Enqueue(&Request{
						Addr: rowAddr(c, 0, uint32(i%2)*7, 0),
						Done: func(d sim.Time) { total += d - at },
					})
				})
			}
		})
		return total
	}
	open, closed := lat(config.OpenPage), lat(config.ClosePage)
	if closed >= open {
		t.Fatalf("close-page (%d) not faster than open-page (%d) on conflict stream", closed, open)
	}
}

func TestOpenBeatsCloseOnHits(t *testing.T) {
	mem := testMem(1, 1)
	gap := 200 * ns
	lat := func(policy config.PagePolicy) (total sim.Time) {
		run(t, mem, testCtl(policy), func(eng *sim.Engine, c *Controller) {
			for i := 0; i < 10; i++ {
				at := sim.Time(i) * gap
				col := uint32(i % 8)
				eng.Schedule(at, func(*sim.Engine) {
					c.Enqueue(&Request{
						Addr: rowAddr(c, 0, 3, col),
						Done: func(d sim.Time) { total += d - at },
					})
				})
			}
		})
		return total
	}
	open, closed := lat(config.OpenPage), lat(config.ClosePage)
	if open >= closed {
		t.Fatalf("open-page (%d) not faster than close-page (%d) on hit stream", open, closed)
	}
}

func TestPerfectPolicyMatchesBestStatic(t *testing.T) {
	mem := testMem(1, 1)
	gap := 200 * ns
	seqLat := func(policy config.PagePolicy, rows []uint32) (total sim.Time) {
		run(t, mem, testCtl(policy), func(eng *sim.Engine, c *Controller) {
			for i, row := range rows {
				row := row
				at := sim.Time(i) * gap
				eng.Schedule(at, func(*sim.Engine) {
					c.Enqueue(&Request{
						Addr: rowAddr(c, 0, row, 0),
						Done: func(d sim.Time) { total += d - at },
					})
				})
			}
		})
		return total
	}
	hitStream := []uint32{1, 1, 1, 1, 1, 1, 1, 1}
	confStream := []uint32{1, 2, 3, 4, 5, 6, 7, 8}
	// On a pure hit stream the oracle equals open-page.
	if p, o := seqLat(config.PredPerfect, hitStream), seqLat(config.OpenPage, hitStream); p != o {
		t.Fatalf("perfect %d != open %d on hit stream", p, o)
	}
	// On a pure conflict stream the oracle equals close-page.
	if p, cl := seqLat(config.PredPerfect, confStream), seqLat(config.ClosePage, confStream); p != cl {
		t.Fatalf("perfect %d != close %d on conflict stream", p, cl)
	}
	// And the oracle is never worse than either static policy on a mix.
	mix := []uint32{1, 1, 2, 2, 3, 1, 1, 4, 4, 1}
	p := seqLat(config.PredPerfect, mix)
	if o := seqLat(config.OpenPage, mix); p > o {
		t.Fatalf("perfect %d worse than open %d", p, o)
	}
	if cl := seqLat(config.ClosePage, mix); p > cl {
		t.Fatalf("perfect %d worse than close %d", p, cl)
	}
}

func TestPerfectPredictorHitRateIsOne(t *testing.T) {
	mem := testMem(1, 1)
	c := run(t, mem, testCtl(config.PredPerfect), func(eng *sim.Engine, ctl *Controller) {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 50; i++ {
			row := uint32(rng.Intn(4))
			at := sim.Time(i) * 200 * ns
			eng.Schedule(at, func(*sim.Engine) {
				ctl.Enqueue(&Request{Addr: rowAddr(ctl, 0, row, 0)})
			})
		}
	})
	st := c.Stats()
	if st.PredDecisions == 0 {
		t.Fatal("no decisions resolved")
	}
	if st.PredictorHitRate() != 1.0 {
		t.Fatalf("oracle hit rate = %v, want 1", st.PredictorHitRate())
	}
}

func TestLocalPredictorLearnsConflictStream(t *testing.T) {
	mem := testMem(1, 1)
	c := run(t, mem, testCtl(config.PredLocal), func(eng *sim.Engine, ctl *Controller) {
		for i := 0; i < 40; i++ {
			i := i
			at := sim.Time(i) * 200 * ns
			eng.Schedule(at, func(*sim.Engine) {
				ctl.Enqueue(&Request{Addr: rowAddr(ctl, 0, uint32(i), 0)})
			})
		}
	})
	st := c.Stats()
	// After warm-up the local predictor should predict close and be
	// mostly right on an all-conflict stream.
	if st.PredictorHitRate() < 0.9 {
		t.Fatalf("local predictor hit rate = %v on conflict stream, want > 0.9", st.PredictorHitRate())
	}
}

func TestGlobalAndTournamentRun(t *testing.T) {
	mem := testMem(2, 2)
	for _, pol := range []config.PagePolicy{config.PredGlobal, config.PredTournament, config.MinimalistOpen} {
		c := run(t, mem, testCtl(pol), func(eng *sim.Engine, ctl *Controller) {
			rng := rand.New(rand.NewSource(9))
			for i := 0; i < 60; i++ {
				at := sim.Time(i) * 150 * ns
				addrv := rowAddr(ctl, rng.Intn(8), uint32(rng.Intn(4)), uint32(rng.Intn(4)))
				thr := rng.Intn(4)
				eng.Schedule(at, func(*sim.Engine) {
					ctl.Enqueue(&Request{Addr: addrv, Thread: thr})
				})
			}
		})
		st := c.Stats()
		if st.Reads != 60 {
			t.Fatalf("%v: reads = %d, want 60", pol, st.Reads)
		}
	}
}

func TestTournamentTracksBestComponent(t *testing.T) {
	// Hit-heavy stream: tournament should converge to ~open behavior.
	mem := testMem(1, 1)
	hr := func(policy config.PagePolicy) float64 {
		c := run(t, mem, testCtl(policy), func(eng *sim.Engine, ctl *Controller) {
			for i := 0; i < 60; i++ {
				i := i
				at := sim.Time(i) * 200 * ns
				row := uint32(0)
				if i%8 == 7 {
					row = uint32(i)
				}
				eng.Schedule(at, func(*sim.Engine) {
					ctl.Enqueue(&Request{Addr: rowAddr(ctl, 0, row, uint32(i%4))})
				})
			}
		})
		return c.Stats().PredictorHitRate()
	}
	tour, closeHR := hr(config.PredTournament), hr(config.ClosePage)
	if tour <= closeHR {
		t.Fatalf("tournament hit rate %v not above close %v on hit-heavy stream", tour, closeHR)
	}
}

func TestMinimalistClosesAfterInterval(t *testing.T) {
	mem := testMem(1, 1)
	eng := sim.NewEngine()
	c := New(eng, mem, testCtl(config.MinimalistOpen), 4)
	eng.Schedule(0, func(*sim.Engine) { c.Enqueue(&Request{Addr: 0}) })
	eng.Run()
	if open, _ := c.Channel().Open(0); open {
		t.Fatal("minimalist-open never closed the idle row")
	}
}

func TestWritePosted(t *testing.T) {
	mem := testMem(1, 1)
	var doneAt sim.Time
	c := run(t, mem, testCtl(config.OpenPage), func(eng *sim.Engine, ctl *Controller) {
		eng.Schedule(0, func(*sim.Engine) {
			ctl.Enqueue(&Request{Addr: 0, Write: true, Done: func(at sim.Time) { doneAt = at }})
		})
	})
	if doneAt == 0 {
		t.Fatal("write never completed")
	}
	if st := c.Stats(); st.Writes != 1 || st.Reads != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFRFCFSReordersRowHits(t *testing.T) {
	// Enqueue conflict then hit at the same instant: FR-FCFS services
	// the hit first; FCFS services in order.
	mem := testMem(1, 1)
	order := func(sched config.Scheduler) (first string) {
		ctl := testCtl(config.OpenPage)
		ctl.Scheduler = sched
		run(t, mem, ctl, func(eng *sim.Engine, c *Controller) {
			eng.Schedule(0, func(*sim.Engine) { c.Enqueue(&Request{Addr: rowAddr(c, 0, 1, 0)}) })
			// After row 1 is open, enqueue conflict (row 2) then hit (row 1).
			eng.Schedule(50*ns, func(*sim.Engine) {
				c.Enqueue(&Request{Addr: rowAddr(c, 0, 2, 0), Done: func(sim.Time) {
					if first == "" {
						first = "conflict"
					}
				}})
				c.Enqueue(&Request{Addr: rowAddr(c, 0, 1, 1), Done: func(sim.Time) {
					if first == "" {
						first = "hit"
					}
				}})
			})
		})
		return first
	}
	if got := order(config.SchedFRFCFS); got != "hit" {
		t.Fatalf("FR-FCFS serviced %q first, want hit", got)
	}
	if got := order(config.SchedFCFS); got != "conflict" {
		t.Fatalf("FCFS serviced %q first, want conflict (arrival order)", got)
	}
}

func TestPARBSBoundsInterference(t *testing.T) {
	// Thread 0 floods one bank with hits; thread 1 has one conflict
	// request. PAR-BS's batch cap must let thread 1 through sooner than
	// plain FR-FCFS.
	mem := testMem(1, 1)
	victim := func(sched config.Scheduler) (done sim.Time) {
		ctl := testCtl(config.OpenPage)
		ctl.Scheduler = sched
		run(t, mem, ctl, func(eng *sim.Engine, c *Controller) {
			eng.Schedule(0, func(*sim.Engine) {
				for i := 0; i < 24; i++ {
					c.Enqueue(&Request{Addr: rowAddr(c, 0, 1, uint32(i)), Thread: 0})
				}
				c.Enqueue(&Request{Addr: rowAddr(c, 0, 9, 0), Thread: 1,
					Done: func(at sim.Time) { done = at }})
			})
		})
		return done
	}
	frfcfs := victim(config.SchedFRFCFS)
	parbs := victim(config.SchedPARBS)
	if parbs >= frfcfs {
		t.Fatalf("PAR-BS victim latency %d not below FR-FCFS %d", parbs, frfcfs)
	}
}

func TestRefreshProgress(t *testing.T) {
	mem := config.MemPreset(config.LPDDRTSI, 1, 1) // refresh enabled
	mem.Org.Channels = 1
	count := 0
	c := run(t, mem, testCtl(config.OpenPage), func(eng *sim.Engine, ctl *Controller) {
		// Sparse requests spanning several tREFI periods.
		for i := 0; i < 5; i++ {
			at := sim.Time(i) * 4 * mem.Timing.TREFI
			eng.Schedule(at, func(*sim.Engine) {
				ctl.Enqueue(&Request{Addr: 0, Done: func(sim.Time) { count++ }})
			})
		}
	})
	if count != 5 {
		t.Fatalf("completed %d of 5 requests with refresh enabled", count)
	}
	if c.Channel().Energy().Refreshes == 0 {
		t.Fatal("no refreshes performed")
	}
}

func TestQueueOccupancyAccounting(t *testing.T) {
	mem := testMem(1, 1)
	c := run(t, mem, testCtl(config.OpenPage), func(eng *sim.Engine, ctl *Controller) {
		eng.Schedule(0, func(*sim.Engine) {
			for i := 0; i < 8; i++ {
				ctl.Enqueue(&Request{Addr: uint64(i) * 64})
			}
		})
	})
	if c.Stats().QueueOccIntegral <= 0 {
		t.Fatal("queue occupancy integral not accumulated")
	}
}

// Property: any random request set completes exactly once per request,
// for every policy and scheduler combination.
func TestAllPoliciesDrainProperty(t *testing.T) {
	policies := []config.PagePolicy{
		config.OpenPage, config.ClosePage, config.MinimalistOpen,
		config.PredLocal, config.PredGlobal, config.PredTournament, config.PredPerfect,
	}
	scheds := []config.Scheduler{config.SchedFCFS, config.SchedFRFCFS, config.SchedPARBS}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pol := policies[rng.Intn(len(policies))]
		sch := scheds[rng.Intn(len(scheds))]
		mem := testMem(2, 2)
		ctl := testCtl(pol)
		ctl.Scheduler = sch
		eng := sim.NewEngine()
		c := New(eng, mem, ctl, 8)
		n := 100
		completions := 0
		for i := 0; i < n; i++ {
			at := sim.Time(rng.Intn(2000)) * ns
			addrv := (rng.Uint64() % (1 << 26)) &^ 63
			wr := rng.Intn(4) == 0
			thr := rng.Intn(8)
			eng.Schedule(at, func(*sim.Engine) {
				c.Enqueue(&Request{Addr: addrv, Write: wr, Thread: thr,
					Done: func(sim.Time) { completions++ }})
			})
		}
		eng.Run()
		return completions == n && c.Drained()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsDerived(t *testing.T) {
	var s Stats
	if s.RowHitRate() != 0 || s.AvgReadLatencyNS() != 0 || s.PredictorHitRate() != 0 {
		t.Fatal("zero stats not zero")
	}
	s.Reads, s.RowHits, s.ReadLatencyIntegralPS = 4, 2, 120000
	s.PredDecisions, s.PredRight = 10, 7
	if s.RowHitRate() != 0.5 {
		t.Fatal("RowHitRate")
	}
	if s.AvgReadLatencyNS() != 30 {
		t.Fatal("AvgReadLatencyNS")
	}
	if s.PredictorHitRate() != 0.7 {
		t.Fatal("PredictorHitRate")
	}
}

func TestPerBankRefreshProgress(t *testing.T) {
	mem := config.MemPreset(config.LPDDRTSI, 2, 2)
	mem.Org.Channels = 1
	mem.Timing.PerBankRefresh = true
	count := 0
	c := run(t, mem, testCtl(config.OpenPage), func(eng *sim.Engine, ctl *Controller) {
		for i := 0; i < 12; i++ {
			at := sim.Time(i) * mem.Timing.TREFI / 2
			eng.Schedule(at, func(*sim.Engine) {
				ctl.Enqueue(&Request{Addr: uint64(i) * 64, Done: func(sim.Time) { count++ }})
			})
		}
	})
	if count != 12 {
		t.Fatalf("completed %d of 12 with per-bank refresh", count)
	}
	if c.Channel().Energy().Refreshes == 0 {
		t.Fatal("no per-bank refreshes performed")
	}
}
