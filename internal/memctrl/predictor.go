package memctrl

// This file implements the prediction-based page-management machinery
// of §V: 2-bit bimodal open/close predictors (local, keyed by bank;
// global, keyed by requesting thread), a tournament chooser over
// {open, close, local, global}, and the bookkeeping shared by the
// static policies so their "prediction hit rate" can be reported the
// way Fig. 13 does.

// bimodal is the paper's 2-bit predictor: states 00 strongly-open,
// 01 open, 10 close, 11 strongly-close.
type bimodal uint8

const (
	stronglyOpen bimodal = iota
	weaklyOpen
	weaklyClose
	stronglyClose
)

// predictOpen returns true when the state predicts "keep the row open".
func (b bimodal) predictOpen() bool { return b <= weaklyOpen }

// update trains toward the observed outcome (openWasRight = the next
// access to the bank hit the same row).
func (b bimodal) update(openWasRight bool) bimodal {
	if openWasRight {
		if b > stronglyOpen {
			return b - 1
		}
		return b
	}
	if b < stronglyClose {
		return b + 1
	}
	return b
}

// component identifies a tournament candidate.
type component int

const (
	compOpen component = iota
	compClose
	compLocal
	compGlobal
	numComponents
)

// pagePredictor bundles all predictor state for one memory controller.
type pagePredictor struct {
	local  []bimodal // per local bank
	global []bimodal // per thread

	// chooser holds per-bank saturating scores (0..7) per component;
	// the tournament picks the highest-scoring component ("a bimodal
	// scheme to pick one out of the open, close, local, and global
	// predictors", §V).
	chooser [][numComponents]uint8

	// Decision-quality statistics (Fig. 13's "prediction hit rate").
	Decisions uint64
	Correct   uint64
}

func newPagePredictor(banks, threads int) *pagePredictor {
	p := &pagePredictor{
		local:   make([]bimodal, banks),
		global:  make([]bimodal, threads),
		chooser: make([][numComponents]uint8, banks),
	}
	for i := range p.chooser {
		// Start every component mid-scale.
		for c := range p.chooser[i] {
			p.chooser[i][c] = 4
		}
	}
	return p
}

// predictComponent returns a single component's open/close prediction.
func (p *pagePredictor) predictComponent(c component, bank, thread int) bool {
	switch c {
	case compOpen:
		return true
	case compClose:
		return false
	case compLocal:
		return p.local[bank].predictOpen()
	default:
		return p.global[thread].predictOpen()
	}
}

// tournamentPick returns the currently winning component for the bank.
// Ties resolve in the fixed order local > open > close > global, which
// keeps the chooser stable and favors the adaptive per-bank history the
// paper found strongest.
func (p *pagePredictor) tournamentPick(bank int) component {
	order := []component{compLocal, compOpen, compClose, compGlobal}
	best := order[0]
	for _, c := range order[1:] {
		if p.chooser[bank][c] > p.chooser[bank][best] {
			best = c
		}
	}
	return best
}

// predictTournament returns the tournament's open/close prediction.
func (p *pagePredictor) predictTournament(bank, thread int) bool {
	return p.predictComponent(p.tournamentPick(bank), bank, thread)
}

// train updates all adaptive structures with the resolved outcome of a
// decision made for (bank, thread). predictedOpen is what the active
// policy chose; openWasRight is the oracle outcome.
func (p *pagePredictor) train(bank, thread int, predictedOpen, openWasRight bool) {
	p.Decisions++
	if predictedOpen == openWasRight {
		p.Correct++
	}
	// Component predictions *before* training, for chooser scoring.
	for c := component(0); c < numComponents; c++ {
		was := p.predictComponent(c, bank, thread)
		sc := &p.chooser[bank][c]
		if was == openWasRight {
			if *sc < 7 {
				*sc++
			}
		} else if *sc > 0 {
			*sc--
		}
	}
	p.local[bank] = p.local[bank].update(openWasRight)
	p.global[thread] = p.global[thread].update(openWasRight)
}

// HitRate returns the fraction of resolved decisions the active policy
// got right.
func (p *pagePredictor) HitRate() float64 {
	if p.Decisions == 0 {
		return 0
	}
	return float64(p.Correct) / float64(p.Decisions)
}
