package memctrl

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBimodalStates(t *testing.T) {
	b := stronglyOpen
	if !b.predictOpen() {
		t.Fatal("strongly-open should predict open")
	}
	b = b.update(false) // wrong once → weakly open
	if b != weaklyOpen || !b.predictOpen() {
		t.Fatalf("state = %d, want weakly open", b)
	}
	b = b.update(false)
	if b != weaklyClose || b.predictOpen() {
		t.Fatalf("state = %d, want weakly close", b)
	}
	b = b.update(false)
	if b != stronglyClose {
		t.Fatalf("state = %d, want strongly close", b)
	}
	// Saturation.
	if b.update(false) != stronglyClose {
		t.Fatal("strongly close did not saturate")
	}
	if stronglyOpen.update(true) != stronglyOpen {
		t.Fatal("strongly open did not saturate")
	}
}

// Property: after two consecutive identical outcomes the bimodal
// predictor always predicts that outcome (classic 2-bit hysteresis).
func TestBimodalConvergesProperty(t *testing.T) {
	f := func(start uint8, outcome bool) bool {
		b := bimodal(start % 4)
		b = b.update(outcome).update(outcome)
		return b.predictOpen() == outcome
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPagePredictorLocalIndependence(t *testing.T) {
	p := newPagePredictor(4, 2)
	// Train bank 0 toward close, bank 1 toward open.
	for i := 0; i < 4; i++ {
		p.train(0, 0, true, false)
		p.train(1, 1, true, true)
	}
	if p.local[0].predictOpen() {
		t.Error("bank 0 should predict close")
	}
	if !p.local[1].predictOpen() {
		t.Error("bank 1 should predict open")
	}
}

func TestPagePredictorGlobalKeyedByThread(t *testing.T) {
	p := newPagePredictor(2, 2)
	for i := 0; i < 4; i++ {
		p.train(0, 0, true, false) // thread 0 sees closes
		p.train(1, 1, true, true)  // thread 1 sees opens
	}
	if p.global[0].predictOpen() {
		t.Error("thread 0 global should predict close")
	}
	if !p.global[1].predictOpen() {
		t.Error("thread 1 global should predict open")
	}
}

func TestTournamentPicksBestComponent(t *testing.T) {
	p := newPagePredictor(1, 1)
	// Outcome stream where close is always right: the close component
	// (and trained local) climb; open drops.
	for i := 0; i < 20; i++ {
		p.train(0, 0, p.predictTournament(0, 0), false)
	}
	if p.predictTournament(0, 0) {
		t.Fatal("tournament still predicts open on all-close stream")
	}
	if p.chooser[0][compOpen] >= p.chooser[0][compClose] {
		t.Fatalf("chooser scores open=%d close=%d", p.chooser[0][compOpen], p.chooser[0][compClose])
	}
}

func TestTournamentAdaptsToPhaseChange(t *testing.T) {
	p := newPagePredictor(1, 1)
	for i := 0; i < 20; i++ {
		p.train(0, 0, p.predictTournament(0, 0), false)
	}
	for i := 0; i < 20; i++ {
		p.train(0, 0, p.predictTournament(0, 0), true)
	}
	if !p.predictTournament(0, 0) {
		t.Fatal("tournament failed to flip back to open after phase change")
	}
}

func TestHitRateAccounting(t *testing.T) {
	p := newPagePredictor(1, 1)
	if p.HitRate() != 0 {
		t.Fatal("empty hit rate not 0")
	}
	p.train(0, 0, true, true)
	p.train(0, 0, true, false)
	if p.Decisions != 2 || p.Correct != 1 {
		t.Fatalf("decisions/correct = %d/%d", p.Decisions, p.Correct)
	}
	if p.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", p.HitRate())
	}
}

// Property: on a stationary random outcome stream with bias q, the
// local predictor's accuracy is at least max(q, 1-q) - 12% — i.e. it
// never does much worse than the better static policy.
func TestLocalPredictorAccuracyProperty(t *testing.T) {
	f := func(seed int64, biasRaw uint8) bool {
		bias := 0.1 + 0.8*float64(biasRaw)/255.0
		rng := rand.New(rand.NewSource(seed))
		p := newPagePredictor(1, 1)
		correct, n := 0, 600
		for i := 0; i < n; i++ {
			pred := p.local[0].predictOpen()
			outcome := rng.Float64() < bias
			if pred == outcome {
				correct++
			}
			p.train(0, 0, pred, outcome)
		}
		acc := float64(correct) / float64(n)
		static := bias
		if 1-bias > static {
			static = 1 - bias
		}
		return acc >= static-0.15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

func TestChooserScoresSaturate(t *testing.T) {
	p := newPagePredictor(1, 1)
	for i := 0; i < 50; i++ {
		p.train(0, 0, true, true)
	}
	for c := component(0); c < numComponents; c++ {
		if p.chooser[0][c] > 7 {
			t.Fatalf("chooser score %d overflowed: %d", c, p.chooser[0][c])
		}
	}
	for i := 0; i < 100; i++ {
		p.train(0, 0, true, i%2 == 0) // alternating: scores bounce but stay in range
	}
	for c := component(0); c < numComponents; c++ {
		if p.chooser[0][c] > 7 {
			t.Fatalf("score out of range after alternation")
		}
	}
}
