//go:build race

package memctrl

// raceEnabled reports whether the race detector instruments this test
// binary (its shadow-memory hooks allocate, breaking alloc guards).
const raceEnabled = true
