package memctrl

// Map-based reference implementations of the controller's candidate
// selection and PAR-BS batch formation — the shapes the production code
// used before the dense-array rewrite — kept as executable
// documentation of the scheduling policies and cross-checked against
// the fast path on live controller state by
// TestSchedulerMatchesMapReference. The production hooks
// (schedHookBest/schedHookBatch) fire on every selection pass and every
// batch formation, so a fuzzed run compares the two implementations on
// thousands of organically reached queue/bank states per scheduler.

import (
	"math/rand"
	"testing"

	"microbank/internal/config"
	"microbank/internal/dram"
	"microbank/internal/sim"
)

// referenceThreadLoad rebuilds the per-thread marked-request count the
// old code computed with a map over the scheduling window each pass.
func referenceThreadLoad(c *Controller) map[int]int {
	load := make(map[int]int)
	for _, r := range c.window() {
		if r.marked {
			load[r.Thread]++
		}
	}
	return load
}

// referenceBest replicates the original map-based selection pass:
// per-bank winners in a map keyed by bank, row-hit status recomputed
// per comparison, thread load from referenceThreadLoad, and the same
// issuable-now/marked/row-hit/age candidate comparison.
func referenceBest(c *Controller, now sim.Time) (candidate, bool) {
	load := referenceThreadLoad(c)
	order := func(a, b *Request) bool {
		switch c.cfg.Scheduler {
		case config.SchedFCFS:
			return a.seq < b.seq
		case config.SchedPARBS:
			if a.marked != b.marked {
				return a.marked
			}
			ah, bh := c.isRowHit(a), c.isRowHit(b)
			if ah != bh {
				return ah
			}
			if a.marked && b.marked {
				la, lb := load[a.Thread], load[b.Thread]
				if la != lb {
					return la < lb
				}
			}
			return a.seq < b.seq
		default: // FR-FCFS
			ah, bh := c.isRowHit(a), c.isRowHit(b)
			if ah != bh {
				return ah
			}
			return a.seq < b.seq
		}
	}
	winners := make(map[int]*Request)
	var banks []int
	for _, r := range c.window() {
		// Regulator admission mirrors the fast path: a request whose
		// thread is over budget for its bank sits the pass out.
		if c.regOn && c.regUsed[r.Thread*len(c.banks)+r.bank] >= c.regBudget {
			continue
		}
		cur, ok := winners[r.bank]
		switch {
		case !ok:
			winners[r.bank] = r
			banks = append(banks, r.bank)
		case order(r, cur):
			winners[r.bank] = r
		}
	}
	var bestC candidate
	found := false
	consider := func(cd candidate) {
		if !found {
			bestC, found = cd, true
			return
		}
		cdNow, bestNow := cd.earliest <= now, bestC.earliest <= now
		if cdNow != bestNow {
			if cdNow {
				bestC = cd
			}
			return
		}
		if cdNow {
			if cd.marked != bestC.marked {
				if cd.marked {
					bestC = cd
				}
				return
			}
			if cd.rowHit != bestC.rowHit {
				if cd.rowHit {
					bestC = cd
				}
				return
			}
			if cd.req != nil && bestC.req != nil && cd.req.seq < bestC.req.seq {
				bestC = cd
			}
			return
		}
		if cd.earliest < bestC.earliest {
			bestC = cd
		}
	}
	for _, bank := range banks {
		consider(c.commandFor(bank, winners[bank], now))
	}
	for _, bank := range c.closePending {
		b := &c.banks[bank]
		if !b.wantClose {
			continue
		}
		if open, _ := c.ch.Open(bank); !open {
			continue
		}
		if _, ok := winners[bank]; ok {
			continue
		}
		consider(candidate{bank: bank, cmd: dram.CmdPRE, earliest: c.ch.EarliestPRE(bank, now)})
	}
	return bestC, found
}

// referenceBatchMarks computes the request set the original
// struct-keyed-map formBatch would mark: the oldest BatchCap window
// requests per (thread, bank). Valid only immediately after a batch
// formed (the pre-state had no marked requests — formBatch only runs
// when batchLive is zero).
func referenceBatchMarks(c *Controller) map[*Request]bool {
	cnt := make(map[[2]int]int)
	marks := make(map[*Request]bool)
	for _, r := range c.window() {
		k := [2]int{r.Thread, r.bank}
		if cnt[k] < c.cfg.BatchCap {
			cnt[k]++
			marks[r] = true
		}
	}
	return marks
}

// TestSchedulerMatchesMapReference fuzzes request queues through a live
// controller under each scheduler and asserts, at every selection pass,
// that the dense-array fast path picks exactly the candidate the
// map-based reference picks — which by induction makes the issued
// command sequences identical — and, at every PAR-BS batch formation,
// that the marked set, batchLive, and markedPerThread tallies match the
// reference marking.
func TestSchedulerMatchesMapReference(t *testing.T) {
	variants := []struct {
		name   string
		subs   int // SALP subarrays per bank (0 = off)
		budget int // regulator per-(thread,bank) budget (0 = off)
	}{
		{"base", 0, 0},
		{"regulated", 0, 2},
		{"salp4", 4, 0},
		{"salp4-regulated", 4, 2},
	}
	for _, sc := range []struct {
		name string
		s    config.Scheduler
	}{{"FCFS", config.SchedFCFS}, {"FRFCFS", config.SchedFRFCFS}, {"PARBS", config.SchedPARBS}} {
		for _, va := range variants {
			sc, va := sc, va
			t.Run(sc.name+"/"+va.name, func(t *testing.T) {
				defer func() { schedHookBest, schedHookBatch = nil, nil }()
				var bestChecks, batchChecks int
				schedHookBest = func(c *Controller, now sim.Time, chosen candidate, found bool) {
					refC, refFound := referenceBest(c, now)
					if refFound != found {
						t.Fatalf("pass %d at %d: fast path found=%v, reference found=%v",
							bestChecks, now, found, refFound)
					}
					if found && refC != chosen {
						t.Fatalf("pass %d at %d: fast path chose %+v, reference chose %+v",
							bestChecks, now, chosen, refC)
					}
					bestChecks++
				}
				schedHookBatch = func(c *Controller) {
					marks := referenceBatchMarks(c)
					live := 0
					perThread := make(map[int]int)
					for _, r := range c.window() {
						if r.marked != marks[r] {
							t.Fatalf("batch %d: request seq %d marked=%v, reference=%v",
								batchChecks, r.seq, r.marked, marks[r])
						}
						if r.marked {
							live++
							perThread[r.Thread]++
						}
					}
					if c.batchLive != live {
						t.Fatalf("batch %d: batchLive=%d, reference=%d", batchChecks, c.batchLive, live)
					}
					for thread, n := range perThread {
						if c.markedPerThread[thread] != n {
							t.Fatalf("batch %d: markedPerThread[%d]=%d, reference=%d",
								batchChecks, thread, c.markedPerThread[thread], n)
						}
					}
					batchChecks++
				}

				rng := rand.New(rand.NewSource(31 + int64(sc.s)))
				mem := config.MemPreset(config.LPDDRTSI, 2, 8)
				mem.Org.Channels = 1
				mem.Org.SubarraysPerBank = va.subs
				mem.Timing.TREFI = 0
				mem.Timing.TRFC = 0
				ctl := config.DefaultCtrl()
				ctl.Scheduler = sc.s
				ctl.BankBudget = va.budget
				ctl.RegEpoch = 2000 * sim.Nanosecond
				eng := sim.NewEngine()
				c := New(eng, mem, ctl, 8)
				done, total := 0, 0
				at := sim.Time(0)
				for burst := 0; burst < 40; burst++ {
					at += sim.Time(rng.Intn(500)) * sim.Nanosecond
					n := 1 + rng.Intn(12)
					for i := 0; i < n; i++ {
						r := &Request{
							// A small address range concentrates traffic so
							// row conflicts, bank contention, and deep
							// windows all occur.
							Addr:   (rng.Uint64() % (1 << 22)) &^ 63,
							Write:  rng.Intn(4) == 0,
							Thread: rng.Intn(8),
							Done:   func(sim.Time) { done++ },
						}
						total++
						eng.Schedule(at, func(*sim.Engine) { c.Enqueue(r) })
					}
				}
				eng.Run()
				if done != total {
					t.Fatalf("%d of %d requests completed", done, total)
				}
				if bestChecks == 0 {
					t.Fatal("best hook never fired")
				}
				if sc.s == config.SchedPARBS && batchChecks == 0 {
					t.Fatal("batch hook never fired")
				}
				t.Logf("%d selection passes, %d batch formations cross-checked", bestChecks, batchChecks)
			})
		}
	}
}
