package memctrl

import (
	"testing"

	"microbank/internal/config"
	"microbank/internal/obs"
	"microbank/internal/sim"
)

// recTracer records traced commands for assertions.
type recTracer struct {
	events []recEvent
}

type recEvent struct {
	channel, bank   int
	kind            obs.CmdKind
	row             uint32
	issue, complete sim.Time
}

func (r *recTracer) TraceCmd(channel, bank int, kind obs.CmdKind, row uint32, issue, complete sim.Time) {
	r.events = append(r.events, recEvent{channel, bank, kind, row, issue, complete})
}

func (r *recTracer) count(k obs.CmdKind) int {
	n := 0
	for _, e := range r.events {
		if e.kind == k {
			n++
		}
	}
	return n
}

// TestTracerSeesEveryCommand drives a row conflict through the
// controller and checks the tracer's event stream matches the channel's
// own command counters exactly.
func TestTracerSeesEveryCommand(t *testing.T) {
	mem := testMem(1, 1)
	tr := &recTracer{}
	rowBytes := uint64(mem.Org.RowBytes)
	c := run(t, mem, testCtl(config.OpenPage), func(eng *sim.Engine, c *Controller) {
		c.SetTracer(tr, 3)
		eng.Schedule(0, func(*sim.Engine) {
			c.Enqueue(&Request{Addr: 0})                // ACT + RD
			c.Enqueue(&Request{Addr: 64})               // RD (same row)
			c.Enqueue(&Request{Addr: 16 * rowBytes})    // PRE + ACT + RD (conflict)
			c.Enqueue(&Request{Addr: 128, Write: true}) // PRE + ACT + WR
		})
	})
	e := c.Channel().Energy()
	if got, want := tr.count(obs.CmdACT), int(e.Acts); got != want {
		t.Fatalf("traced ACTs = %d, channel counted %d", got, want)
	}
	if got, want := tr.count(obs.CmdRD), int(e.Reads); got != want {
		t.Fatalf("traced RDs = %d, channel counted %d", got, want)
	}
	if got, want := tr.count(obs.CmdWR), int(e.Writes); got != want {
		t.Fatalf("traced WRs = %d, channel counted %d", got, want)
	}
	if got, want := tr.count(obs.CmdPRE), int(e.Pres); got != want {
		t.Fatalf("traced PREs = %d, channel counted %d", got, want)
	}
	if tr.count(obs.CmdRD) != 3 || tr.count(obs.CmdWR) != 1 {
		t.Fatalf("expected 3 RD + 1 WR, got %d/%d", tr.count(obs.CmdRD), tr.count(obs.CmdWR))
	}
	for _, e := range tr.events {
		if e.channel != 3 {
			t.Fatalf("event channel = %d, want 3", e.channel)
		}
		if e.complete < e.issue {
			t.Fatalf("event completes before issue: %+v", e)
		}
	}
	// Timestamps must be non-decreasing in issue order per bank (all
	// events hit bank 0 here, so globally).
	for i := 1; i < len(tr.events); i++ {
		if tr.events[i].issue < tr.events[i-1].issue {
			t.Fatalf("trace out of order at %d: %+v then %+v", i, tr.events[i-1], tr.events[i])
		}
	}
}

// TestBankOccupancy checks the queued-request spread accessor.
func TestBankOccupancy(t *testing.T) {
	mem := testMem(1, 4)
	eng := sim.NewEngine()
	c := New(eng, mem, testCtl(config.OpenPage), 4)
	if busy, maxQ := c.BankOccupancy(); busy != 0 || maxQ != 0 {
		t.Fatalf("empty queue occupancy = %d/%d", busy, maxQ)
	}
	// Three requests to one bank, one to another (before any service).
	base := uint64(0)
	other := uint64(mem.Org.CacheLineBytes) * 1 // next bank under line interleave
	eng.Schedule(0, func(*sim.Engine) {
		c.Enqueue(&Request{Addr: base})
		c.Enqueue(&Request{Addr: base + 16*uint64(mem.Org.RowBytes)})
		c.Enqueue(&Request{Addr: base + 32*uint64(mem.Org.RowBytes)})
		c.Enqueue(&Request{Addr: other})
		busy, maxQ := c.BankOccupancy()
		if busy < 1 || maxQ < 1 || busy > 4 {
			t.Fatalf("occupancy = %d/%d", busy, maxQ)
		}
		if busy*maxQ < 4 && busy+maxQ < 4 {
			t.Fatalf("occupancy does not cover 4 queued requests: busy=%d maxQ=%d", busy, maxQ)
		}
	})
	eng.Run()
}
