package memctrl

// Regression audit for the kick/scheduleWake cancel-reschedule cycle:
// repeated same-instant kicks while a future wake is parked must not
// grow the pending-event population (a leak would appear as one extra
// event per kick) and must not double-fire request completions.

import (
	"testing"

	"microbank/internal/config"
	"microbank/internal/sim"
)

func TestScheduleWakeKickCycleNoLeak(t *testing.T) {
	eng, c, _ := benchController(config.SchedFRFCFS, 0)
	doneCount := make(map[int]int)
	// Two same-bank row-conflict requests: after the first's column
	// access the second needs PRE→ACT gated by tRAS/tRP, so eval parks
	// a future wake — exactly the state the kick cycle exercises.
	base := c.mapper.Map(0)
	bank0 := c.mapper.LocalBank(base)
	var conflict uint64
	for a := uint64(64); ; a += 64 {
		loc := c.mapper.Map(a)
		if c.mapper.LocalBank(loc) == bank0 && loc.Row != base.Row {
			conflict = a
			break
		}
	}
	r1 := &Request{Addr: 0, Thread: 0, Done: func(sim.Time) { doneCount[1]++ }}
	r2 := &Request{Addr: conflict, Thread: 0, Done: func(sim.Time) { doneCount[2]++ }}
	eng.Schedule(0, func(*sim.Engine) {
		c.Enqueue(r1)
		c.Enqueue(r2)
	})
	// Advance until the first request completes; the second is now
	// blocked behind bank timing with a wake event pending.
	for doneCount[1] == 0 {
		if !eng.Step() {
			t.Fatal("engine drained before the first request completed")
		}
	}

	// Settle one kick, then assert the pending population is a fixed
	// point under repeated same-instant kick+eval+re-wake cycles.
	c.kick()
	eng.RunUntil(eng.Now())
	settled := eng.Pending()
	for i := 0; i < 200; i++ {
		c.kick()
		eng.RunUntil(eng.Now())
		if p := eng.Pending(); p != settled {
			t.Fatalf("kick cycle %d: %d events pending, want %d (leak or lost wake)",
				i, p, settled)
		}
	}

	eng.Run()
	if doneCount[1] != 1 || doneCount[2] != 1 {
		t.Fatalf("completion counts = %v, want each exactly 1", doneCount)
	}
	if eng.Pending() != 0 {
		t.Fatalf("%d events still pending after drain", eng.Pending())
	}
}
