// Package noc models the on-chip interconnect of the 64-core CMP
// (Fig. 7): a 2D mesh of routers (one per 4-core cluster) with
// dimension-ordered XY routing, per-hop router+link latency, and
// per-link serialization so heavy traffic experiences contention.
//
// The model is a link-reservation network: a packet claims each link on
// its path in order; a link busy with an earlier packet delays it. This
// captures the queueing behaviour that matters for memory traffic
// without simulating individual flits.
package noc

import (
	"fmt"

	"microbank/internal/sim"
)

// Mesh is a dim×dim mesh interconnect.
type Mesh struct {
	eng      *sim.Engine
	dim      int
	hop      sim.Time // per-hop router pipeline + link traversal latency
	linkBWps float64  // bytes per picosecond per link

	// linkFree[i] is the earliest time link i is available.
	linkFree []sim.Time

	// Stats.
	Packets   uint64
	TotalHops uint64
	BytesSent uint64
}

// New creates a dim×dim mesh. hop is the per-hop latency; linkGBs the
// per-link bandwidth in GB/s.
func New(eng *sim.Engine, dim int, hop sim.Time, linkGBs float64) *Mesh {
	if dim <= 0 {
		panic("noc: non-positive mesh dimension")
	}
	if linkGBs <= 0 {
		panic("noc: non-positive link bandwidth")
	}
	// Each node has up to 4 outgoing links; index links by
	// (node, direction).
	return &Mesh{
		eng:      eng,
		dim:      dim,
		hop:      hop,
		linkBWps: linkGBs / 1000.0, // GB/s == bytes/ns == 1e-3 bytes/ps
		linkFree: make([]sim.Time, dim*dim*4),
	}
}

// Nodes returns the number of mesh nodes.
func (m *Mesh) Nodes() int { return m.dim * m.dim }

func (m *Mesh) coord(node int) (x, y int) { return node % m.dim, node / m.dim }

func (m *Mesh) node(x, y int) int { return y*m.dim + x }

// direction codes for link indexing.
const (
	dirEast = iota
	dirWest
	dirNorth
	dirSouth
)

func (m *Mesh) linkIndex(node, dir int) int { return node*4 + dir }

// Path returns the XY route from src to dst as a sequence of
// (node, direction) link hops. An empty path means src == dst.
func (m *Mesh) Path(src, dst int) [](int) {
	m.check(src)
	m.check(dst)
	var links []int
	x, y := m.coord(src)
	dx, dy := m.coord(dst)
	for x != dx {
		if x < dx {
			links = append(links, m.linkIndex(m.node(x, y), dirEast))
			x++
		} else {
			links = append(links, m.linkIndex(m.node(x, y), dirWest))
			x--
		}
	}
	for y != dy {
		if y < dy {
			links = append(links, m.linkIndex(m.node(x, y), dirSouth))
			y++
		} else {
			links = append(links, m.linkIndex(m.node(x, y), dirNorth))
			y--
		}
	}
	return links
}

// Hops returns the Manhattan distance between two nodes.
func (m *Mesh) Hops(src, dst int) int {
	m.check(src)
	m.check(dst)
	x, y := m.coord(src)
	dx, dy := m.coord(dst)
	h := x - dx
	if h < 0 {
		h = -h
	}
	v := y - dy
	if v < 0 {
		v = -v
	}
	return h + v
}

// deliverCb invokes a delivery callback carried as a ScheduleArg
// payload; func values convert to `any` without boxing, so deliveries
// allocate no closure.
var deliverCb = func(e *sim.Engine, arg any) { arg.(func(at sim.Time))(e.Now()) }

// claimLink reserves link for a packet departing no earlier than t with
// the given serialization time, returning the packet's time after the
// hop.
func (m *Mesh) claimLink(link int, t, ser sim.Time) sim.Time {
	depart := t
	if m.linkFree[link] > depart {
		depart = m.linkFree[link]
	}
	m.linkFree[link] = depart + ser
	return depart + m.hop
}

// Send routes a packet of the given size and schedules deliver at the
// arrival time (contention included). Local delivery (src == dst) still
// pays one hop of router latency. The XY walk claims links in place
// rather than materializing a Path slice, so sending allocates nothing.
func (m *Mesh) Send(src, dst, bytes int, deliver func(at sim.Time)) {
	t := m.RouteAt(m.eng.Now(), src, dst, bytes)
	m.eng.ScheduleArg(t, deliverCb, deliver)
}

// RouteAt advances counters and link reservations for a packet sent at
// the given instant and returns its delivery time, scheduling nothing.
// It is Send minus the delivery event: the windowed parallel runner
// replays deferred sends through it at barriers, in the exact order
// the sequential engine would have issued them, so link contention and
// the mesh statistics evolve identically. Callers must present sends
// in nondecreasing claim order (sequential Send does so trivially).
func (m *Mesh) RouteAt(now sim.Time, src, dst, bytes int) sim.Time {
	m.check(src)
	m.check(dst)
	m.Packets++
	m.BytesSent += uint64(bytes)
	ser := sim.Time(float64(bytes)/m.linkBWps + 0.5)
	t := now
	x, y := m.coord(src)
	dx, dy := m.coord(dst)
	hops := uint64(0)
	for x != dx {
		if x < dx {
			t = m.claimLink(m.linkIndex(m.node(x, y), dirEast), t, ser)
			x++
		} else {
			t = m.claimLink(m.linkIndex(m.node(x, y), dirWest), t, ser)
			x--
		}
		hops++
	}
	for y != dy {
		if y < dy {
			t = m.claimLink(m.linkIndex(m.node(x, y), dirSouth), t, ser)
			y++
		} else {
			t = m.claimLink(m.linkIndex(m.node(x, y), dirNorth), t, ser)
			y--
		}
		hops++
	}
	m.TotalHops += hops
	if hops == 0 {
		t = now + m.hop
	}
	return t
}

// Latency returns the uncongested latency for a packet between two
// nodes (hops × hop latency, minimum one hop).
func (m *Mesh) Latency(src, dst int) sim.Time {
	h := m.Hops(src, dst)
	if h == 0 {
		h = 1
	}
	return sim.Time(h) * m.hop
}

// AvgHops returns mean hops per packet so far.
func (m *Mesh) AvgHops() float64 {
	if m.Packets == 0 {
		return 0
	}
	return float64(m.TotalHops) / float64(m.Packets)
}

func (m *Mesh) check(node int) {
	if node < 0 || node >= m.Nodes() {
		panic(fmt.Sprintf("noc: node %d out of range [0,%d)", node, m.Nodes()))
	}
}
