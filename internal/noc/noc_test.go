package noc

import (
	"testing"
	"testing/quick"

	"microbank/internal/sim"
)

const ns = sim.Nanosecond

func mesh(eng *sim.Engine) *Mesh { return New(eng, 4, 2*ns, 32) }

func TestHopsManhattan(t *testing.T) {
	eng := sim.NewEngine()
	m := mesh(eng)
	cases := []struct{ src, dst, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 3, 3}, {0, 4, 1}, {0, 15, 6}, {5, 10, 2},
	}
	for _, c := range cases {
		if got := m.Hops(c.src, c.dst); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
}

func TestPathLengthMatchesHops(t *testing.T) {
	eng := sim.NewEngine()
	m := mesh(eng)
	for src := 0; src < m.Nodes(); src++ {
		for dst := 0; dst < m.Nodes(); dst++ {
			if got := len(m.Path(src, dst)); got != m.Hops(src, dst) {
				t.Fatalf("path(%d,%d) has %d links, want %d", src, dst, got, m.Hops(src, dst))
			}
		}
	}
}

func TestUncongestedLatency(t *testing.T) {
	eng := sim.NewEngine()
	m := mesh(eng)
	var at sim.Time
	eng.Schedule(0, func(*sim.Engine) {
		m.Send(0, 15, 64, func(a sim.Time) { at = a })
	})
	eng.Run()
	if want := 6 * 2 * ns; at != want {
		t.Fatalf("delivery at %d, want %d", at, want)
	}
	// Local delivery pays one hop.
	var local sim.Time
	eng.Schedule(eng.Now(), func(*sim.Engine) {
		m.Send(3, 3, 64, func(a sim.Time) { local = a })
	})
	eng.Run()
	if local-eng.Now() != 0 && local < eng.Now() {
		t.Fatalf("local delivery at %d", local)
	}
}

func TestLinkContention(t *testing.T) {
	eng := sim.NewEngine()
	m := mesh(eng)
	var first, second sim.Time
	eng.Schedule(0, func(*sim.Engine) {
		m.Send(0, 1, 64, func(a sim.Time) { first = a })
		m.Send(0, 1, 64, func(a sim.Time) { second = a })
	})
	eng.Run()
	// 64 B at 32 GB/s = 2 ns serialization on the shared link.
	if second <= first {
		t.Fatalf("no contention: first %d, second %d", first, second)
	}
	if want := first + 2*ns; second != want {
		t.Fatalf("second at %d, want %d", second, want)
	}
}

func TestDisjointPathsDontContend(t *testing.T) {
	eng := sim.NewEngine()
	m := mesh(eng)
	var a, b sim.Time
	eng.Schedule(0, func(*sim.Engine) {
		m.Send(0, 1, 64, func(at sim.Time) { a = at })
		m.Send(4, 5, 64, func(at sim.Time) { b = at })
	})
	eng.Run()
	if a != b {
		t.Fatalf("disjoint transfers finish at %d and %d, want equal", a, b)
	}
}

func TestStats(t *testing.T) {
	eng := sim.NewEngine()
	m := mesh(eng)
	eng.Schedule(0, func(*sim.Engine) {
		m.Send(0, 15, 64, func(sim.Time) {})
		m.Send(0, 0, 8, func(sim.Time) {})
	})
	eng.Run()
	if m.Packets != 2 || m.BytesSent != 72 {
		t.Fatalf("packets/bytes = %d/%d", m.Packets, m.BytesSent)
	}
	if m.AvgHops() != 3 {
		t.Fatalf("AvgHops = %v, want 3", m.AvgHops())
	}
}

func TestValidation(t *testing.T) {
	eng := sim.NewEngine()
	for _, f := range []func(){
		func() { New(eng, 0, ns, 1) },
		func() { New(eng, 4, ns, 0) },
		func() { mesh(eng).Hops(-1, 0) },
		func() { mesh(eng).Hops(0, 16) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: delivery time is always >= uncongested latency, and
// serialized same-link packets never violate link bandwidth.
func TestSendLatencyLowerBoundProperty(t *testing.T) {
	f := func(srcRaw, dstRaw uint8, n uint8) bool {
		eng := sim.NewEngine()
		m := mesh(eng)
		src := int(srcRaw) % 16
		dst := int(dstRaw) % 16
		count := 1 + int(n%8)
		times := make([]sim.Time, 0, count)
		eng.Schedule(0, func(*sim.Engine) {
			for i := 0; i < count; i++ {
				m.Send(src, dst, 64, func(at sim.Time) { times = append(times, at) })
			}
		})
		eng.Run()
		min := m.Latency(src, dst)
		for i, at := range times {
			if at < min {
				return false
			}
			if i > 0 && times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
