package obs

// The campaign aggregator: the concurrency-safe read-side bridge
// between single-threaded per-run registries and the live observability
// plane (internal/obs/serve). Each sweep cell keeps its own lock-free
// Registry; the aggregator ingests an immutable snapshot of that
// registry at the cell boundary (and optional live epoch rows while the
// cell is in flight), merges series across cells by summation, tracks
// sweep progress / failure taxonomy / retries, and fans change events
// out to SSE subscribers. Everything here is observational — the
// aggregator never feeds back into simulation state, so a served
// campaign produces byte-identical results to an unserved one.

import (
	"encoding/json"
	"sort"
	"sync"
	"time"
)

// CellFailure is one failed sweep cell as the aggregator records it —
// the obs-layer mirror of the experiment report's failure record (obs
// cannot depend on the experiments package).
type CellFailure struct {
	Sweep    int    `json:"sweep"`
	Cell     int    `json:"cell"`
	Kind     string `json:"kind"`
	Error    string `json:"error,omitempty"`
	Digest   string `json:"digest,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	Diag     any    `json:"diag,omitempty"`
}

// Event is one server-sent event: a type tag and a pre-marshalled JSON
// payload, rendered once at publish time so a slow subscriber costs the
// publisher nothing but a dropped send.
type Event struct {
	Type string
	Data []byte
}

// cellKey addresses one sweep cell of a campaign.
type cellKey struct{ sweep, cell int }

// liveCell is the latest epoch snapshot of an in-flight cell.
type liveCell struct {
	names []string
	row   []float64
}

// sweepState tracks one sweep's progress.
type sweepState struct {
	Total  int `json:"total"`
	Done   int `json:"done"`
	Failed int `json:"failed"`
}

// Aggregator merges per-cell metric snapshots and campaign progress
// into one servable view. All methods are safe for concurrent use.
type Aggregator struct {
	mu         sync.Mutex
	experiment string
	started    time.Time

	sweeps   []sweepState
	inflight map[cellKey]struct{}
	live     map[cellKey]liveCell

	order []string // merged series, first-seen order
	sums  map[string]float64

	failures []CellFailure
	byKind   map[string]int
	retries  int

	state  string // "running", "done", "aborted"
	errMsg string

	diag   any
	diagAt time.Time

	// storeStats, when set, reads the result store's counters (hit/miss/
	// quarantine) for /metrics and /status. It must be cheap and safe to
	// call concurrently (the store's counters are atomics).
	storeStats func() (hits, misses, quarantined uint64)

	subs map[int]chan Event
	next int
}

// NewAggregator returns an empty aggregator for the named experiment.
func NewAggregator(experiment string) *Aggregator {
	return &Aggregator{
		experiment: experiment,
		started:    time.Now(),
		inflight:   map[cellKey]struct{}{},
		live:       map[cellKey]liveCell{},
		sums:       map[string]float64{},
		byKind:     map[string]int{},
		state:      "running",
		subs:       map[int]chan Event{},
	}
}

// ownSeries are the aggregator's campaign-level series, emitted ahead
// of merged cell series; cell series with these exact names are skipped
// during merge so the campaign view wins a collision.
var ownSeries = [...]string{
	"sweep.done", "sweep.total", "sweep.inflight",
	"sweep.failures", "sweep.retries",
	"store.hits", "store.misses", "store.quarantined",
}

// SetStoreStats attaches the result-store counter reader; nil detaches
// it (the store.* series disappear from Gather and /status).
func (a *Aggregator) SetStoreStats(fn func() (hits, misses, quarantined uint64)) {
	a.mu.Lock()
	a.storeStats = fn
	a.mu.Unlock()
}

// BeginSweep registers a sweep of total cells and returns its index.
// Sweeps begin serially in the experiment layer, so indices match the
// resilience journal's sweep numbering.
func (a *Aggregator) BeginSweep(total int) int {
	a.mu.Lock()
	a.sweeps = append(a.sweeps, sweepState{Total: total})
	id := len(a.sweeps) - 1
	a.mu.Unlock()
	a.publish("sweep", map[string]int{"sweep": id, "total": total})
	return id
}

// CellStarted marks a cell in flight.
func (a *Aggregator) CellStarted(sweep, cell int) {
	a.mu.Lock()
	a.inflight[cellKey{sweep, cell}] = struct{}{}
	a.mu.Unlock()
	a.publish("cell", map[string]any{"sweep": sweep, "cell": cell, "state": "start"})
	a.publishProgress()
}

// CellDone ingests a completed cell's final registry snapshot (from
// Registry.Gather on the worker goroutine, after the run finished).
func (a *Aggregator) CellDone(sweep, cell int, samples []Sample) {
	a.mu.Lock()
	k := cellKey{sweep, cell}
	delete(a.inflight, k)
	delete(a.live, k)
	a.sweeps[sweep].Done++
	for _, s := range samples {
		if a.ownName(s.Name) {
			continue
		}
		if _, seen := a.sums[s.Name]; !seen {
			a.order = append(a.order, s.Name)
		}
		a.sums[s.Name] += s.Value
	}
	a.mu.Unlock()
	a.publish("cell", map[string]any{"sweep": sweep, "cell": cell, "state": "done"})
	a.publishProgress()
}

// CellReplayed marks a cell satisfied from the resilience journal: it
// counts as done but contributes no metric snapshot (the run that
// produced it was a previous process).
func (a *Aggregator) CellReplayed(sweep, cell int) {
	a.mu.Lock()
	delete(a.inflight, cellKey{sweep, cell})
	a.sweeps[sweep].Done++
	a.mu.Unlock()
	a.publish("cell", map[string]any{"sweep": sweep, "cell": cell, "state": "replayed"})
	a.publishProgress()
}

// CellFailed records a cell's final (post-retry) failure.
func (a *Aggregator) CellFailed(f CellFailure) {
	a.mu.Lock()
	k := cellKey{f.Sweep, f.Cell}
	delete(a.inflight, k)
	delete(a.live, k)
	if f.Sweep >= 0 && f.Sweep < len(a.sweeps) {
		a.sweeps[f.Sweep].Failed++
	}
	a.failures = append(a.failures, f)
	a.byKind[f.Kind]++
	a.mu.Unlock()
	a.publish("fail", f)
	a.publishProgress()
}

// NoteRetry counts one retry of a failed cell attempt.
func (a *Aggregator) NoteRetry() {
	a.mu.Lock()
	a.retries++
	a.mu.Unlock()
	a.publishProgress()
}

// PublishEpoch records an in-flight cell's latest epoch sample row
// (from Sampler.OnSample) and streams it to subscribers. names and row
// are retained; callers pass rows the sampler will not mutate.
func (a *Aggregator) PublishEpoch(sweep, cell int, atPS uint64, names []string, row []float64) {
	a.mu.Lock()
	a.live[cellKey{sweep, cell}] = liveCell{names: names, row: row}
	a.mu.Unlock()
	series := make(map[string]float64, len(names))
	for i, n := range names {
		if i < len(row) {
			series[n] = row[i]
		}
	}
	a.publish("epoch", map[string]any{
		"sweep": sweep, "cell": cell, "t_ps": atPS, "series": series,
	})
}

// SetDiag records the latest watchdog diagnostic snapshot (surfaced on
// /status and streamed as a "diag" event).
func (a *Aggregator) SetDiag(d any) {
	a.mu.Lock()
	a.diag, a.diagAt = d, time.Now()
	a.mu.Unlock()
	a.publish("diag", d)
}

// Finish marks the campaign complete ("done") or aborted (err != nil).
func (a *Aggregator) Finish(err error) {
	a.mu.Lock()
	if err != nil {
		a.state, a.errMsg = "aborted", err.Error()
	} else {
		a.state = "done"
	}
	state, msg := a.state, a.errMsg
	a.mu.Unlock()
	a.publish("done", map[string]string{"state": state, "error": msg})
}

func (a *Aggregator) ownName(name string) bool {
	for _, n := range ownSeries {
		if n == name {
			return true
		}
	}
	return false
}

// Gather returns the campaign-level series followed by every merged
// cell series (completed-cell sums plus the latest live rows of
// in-flight cells) in first-seen order.
func (a *Aggregator) Gather() []Sample {
	a.mu.Lock()
	defer a.mu.Unlock()
	var done, total int
	for _, s := range a.sweeps {
		done += s.Done + s.Failed
		total += s.Total
	}
	out := make([]Sample, 0, len(ownSeries)+len(a.byKind)+len(a.order))
	out = append(out,
		Sample{"sweep.done", float64(done)},
		Sample{"sweep.total", float64(total)},
		Sample{"sweep.inflight", float64(len(a.inflight))},
		Sample{"sweep.failures", float64(len(a.failures))},
		Sample{"sweep.retries", float64(a.retries)})
	if a.storeStats != nil {
		hits, misses, quarantined := a.storeStats()
		out = append(out,
			Sample{"store.hits", float64(hits)},
			Sample{"store.misses", float64(misses)},
			Sample{"store.quarantined", float64(quarantined)})
	}
	kinds := make([]string, 0, len(a.byKind))
	for k := range a.byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		out = append(out, Sample{fullName("sweep.failures", []Label{{Key: "kind", Value: k}}), float64(a.byKind[k])})
	}
	merged := a.sums
	if len(a.live) > 0 {
		merged = make(map[string]float64, len(a.sums))
		for k, v := range a.sums {
			merged[k] = v
		}
		order := a.order
		for _, lc := range a.live {
			for i, n := range lc.names {
				if i >= len(lc.row) || a.ownName(n) {
					continue
				}
				if _, seen := merged[n]; !seen {
					order = append(order, n)
				}
				merged[n] += lc.row[i]
			}
		}
		for _, n := range order {
			out = append(out, Sample{n, merged[n]})
		}
		return out
	}
	for _, n := range a.order {
		out = append(out, Sample{n, merged[n]})
	}
	return out
}

// Status is the /status JSON schema.
type Status struct {
	Experiment string `json:"experiment"`
	State      string `json:"state"`
	Error      string `json:"error,omitempty"`
	StartedAt  string `json:"started_at"`
	Cells      struct {
		Total    int `json:"total"`
		Done     int `json:"done"`
		Failed   int `json:"failed"`
		Inflight int `json:"inflight"`
	} `json:"cells"`
	Retries      int            `json:"retries"`
	Sweeps       []sweepState   `json:"sweeps"`
	FailureKinds map[string]int `json:"failure_kinds,omitempty"`
	Failures     []CellFailure  `json:"failures,omitempty"`
	// Store carries the result store's counters when one is attached.
	Store  *StoreStatus `json:"store,omitempty"`
	Diag   any          `json:"diag,omitempty"`
	DiagAt string       `json:"diag_at,omitempty"`
}

// StoreStatus is the /status view of the result store's counters.
type StoreStatus struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Quarantined uint64 `json:"quarantined"`
}

// StatusJSON renders the campaign report-so-far as compact JSON (one
// line, so the document can double as an SSE data payload).
func (a *Aggregator) StatusJSON() ([]byte, error) {
	a.mu.Lock()
	st := Status{
		Experiment: a.experiment,
		State:      a.state,
		Error:      a.errMsg,
		StartedAt:  a.started.UTC().Format(time.RFC3339),
		Retries:    a.retries,
		Sweeps:     append([]sweepState(nil), a.sweeps...),
		Failures:   append([]CellFailure(nil), a.failures...),
		Diag:       a.diag,
	}
	for _, s := range a.sweeps {
		st.Cells.Total += s.Total
		st.Cells.Done += s.Done
		st.Cells.Failed += s.Failed
	}
	st.Cells.Inflight = len(a.inflight)
	if len(a.byKind) > 0 {
		st.FailureKinds = make(map[string]int, len(a.byKind))
		for k, v := range a.byKind {
			st.FailureKinds[k] = v
		}
	}
	if a.storeStats != nil {
		h, m, q := a.storeStats()
		st.Store = &StoreStatus{Hits: h, Misses: m, Quarantined: q}
	}
	if !a.diagAt.IsZero() {
		st.DiagAt = a.diagAt.UTC().Format(time.RFC3339)
	}
	a.mu.Unlock()
	return json.Marshal(st)
}

// Subscribe registers an event subscriber with the given channel
// buffer. Events that arrive while the buffer is full are dropped for
// that subscriber (the stream is a live view, not a durable log). The
// returned cancel function unregisters and closes the channel.
func (a *Aggregator) Subscribe(buffer int) (<-chan Event, func()) {
	if buffer <= 0 {
		buffer = 64
	}
	ch := make(chan Event, buffer)
	a.mu.Lock()
	id := a.next
	a.next++
	a.subs[id] = ch
	a.mu.Unlock()
	return ch, func() {
		a.mu.Lock()
		if c, ok := a.subs[id]; ok {
			delete(a.subs, id)
			close(c)
		}
		a.mu.Unlock()
	}
}

// publish marshals and fans one event out to all subscribers.
func (a *Aggregator) publish(typ string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		data = []byte(`{}`)
	}
	ev := Event{Type: typ, Data: data}
	a.mu.Lock()
	for _, ch := range a.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop, never block the campaign
		}
	}
	a.mu.Unlock()
}

// publishProgress emits the current done/total/failed/retry counters.
func (a *Aggregator) publishProgress() {
	a.mu.Lock()
	var done, total, failed int
	for _, s := range a.sweeps {
		done += s.Done + s.Failed
		total += s.Total
		failed += s.Failed
	}
	p := map[string]int{
		"done": done, "total": total, "failed": failed,
		"inflight": len(a.inflight), "retries": a.retries,
	}
	a.mu.Unlock()
	a.publish("progress", p)
}
