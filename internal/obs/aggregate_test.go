package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func findSample(t *testing.T, samples []Sample, name string) float64 {
	t.Helper()
	for _, s := range samples {
		if s.Name == name {
			return s.Value
		}
	}
	t.Fatalf("sample %q not gathered (have %v)", name, samples)
	return 0
}

func TestAggregatorLifecycle(t *testing.T) {
	a := NewAggregator("headline")
	sweep := a.BeginSweep(3)
	if sweep != 0 {
		t.Fatalf("first sweep index = %d, want 0", sweep)
	}

	a.CellStarted(sweep, 0)
	a.CellStarted(sweep, 1)
	g := a.Gather()
	if v := findSample(t, g, "sweep.inflight"); v != 2 {
		t.Fatalf("inflight = %v, want 2", v)
	}

	a.CellDone(sweep, 0, []Sample{{"noc.packets", 10}, {"cpu.instr_retired", 100}})
	a.CellDone(sweep, 1, []Sample{{"noc.packets", 5}})
	a.NoteRetry()
	a.CellFailed(CellFailure{Sweep: sweep, Cell: 2, Kind: "deadline", Error: "boom", Attempts: 2})

	g = a.Gather()
	if v := findSample(t, g, "sweep.done"); v != 3 { // 2 done + 1 failed = progress 3/3
		t.Fatalf("done = %v, want 3", v)
	}
	if v := findSample(t, g, "sweep.failures"); v != 1 {
		t.Fatalf("failures = %v, want 1", v)
	}
	if v := findSample(t, g, "sweep.failures{kind=deadline}"); v != 1 {
		t.Fatalf("failures by kind = %v, want 1", v)
	}
	if v := findSample(t, g, "sweep.retries"); v != 1 {
		t.Fatalf("retries = %v, want 1", v)
	}
	if v := findSample(t, g, "noc.packets"); v != 15 {
		t.Fatalf("merged noc.packets = %v, want 15", v)
	}

	a.Finish(nil)
	var st Status
	b, err := a.StatusJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.Cells.Done != 2 || st.Cells.Failed != 1 || st.Retries != 1 {
		t.Fatalf("status = %+v", st)
	}
	if st.FailureKinds["deadline"] != 1 || len(st.Failures) != 1 || st.Failures[0].Error != "boom" {
		t.Fatalf("failure taxonomy = %+v", st)
	}
}

// TestAggregatorLiveView checks that an in-flight cell's latest epoch
// row rides the gather until the cell completes, at which point the
// final snapshot replaces it.
func TestAggregatorLiveView(t *testing.T) {
	a := NewAggregator("run")
	s := a.BeginSweep(1)
	a.CellStarted(s, 0)
	a.PublishEpoch(s, 0, 1000, []string{"cpu.commit_ipc"}, []float64{0.5})
	if v := findSample(t, a.Gather(), "cpu.commit_ipc"); v != 0.5 {
		t.Fatalf("live sample = %v, want 0.5", v)
	}
	a.PublishEpoch(s, 0, 2000, []string{"cpu.commit_ipc"}, []float64{0.75})
	if v := findSample(t, a.Gather(), "cpu.commit_ipc"); v != 0.75 {
		t.Fatalf("live sample = %v, want latest 0.75", v)
	}
	a.CellDone(s, 0, []Sample{{"cpu.commit_ipc", 0.6}})
	if v := findSample(t, a.Gather(), "cpu.commit_ipc"); v != 0.6 {
		t.Fatalf("final sample = %v, want 0.6 (live row retired)", v)
	}
}

// TestAggregatorOwnSeriesCollision: cell registries that registered the
// campaign-level sweep.* gauges (Resilience.RegisterMetrics) must not
// double-count into the aggregator's own series.
func TestAggregatorOwnSeriesCollision(t *testing.T) {
	a := NewAggregator("x")
	s := a.BeginSweep(1)
	a.CellStarted(s, 0)
	a.CellDone(s, 0, []Sample{{"sweep.failures", 9}, {"noc.packets", 1}})
	if v := findSample(t, a.Gather(), "sweep.failures"); v != 0 {
		t.Fatalf("own series overwritten by cell snapshot: %v", v)
	}
}

func TestAggregatorEvents(t *testing.T) {
	a := NewAggregator("run")
	ch, cancel := a.Subscribe(16)
	defer cancel()

	s := a.BeginSweep(1)
	a.CellStarted(s, 0)
	a.PublishEpoch(s, 0, 42, []string{"m"}, []float64{1})
	a.SetDiag(map[string]int{"events": 7})
	a.CellDone(s, 0, nil)
	a.Finish(nil)

	var types []string
	for len(types) == 0 || types[len(types)-1] != "done" {
		ev, ok := <-ch
		if !ok {
			t.Fatalf("channel closed before done event; saw %v", types)
		}
		if !json.Valid(ev.Data) {
			t.Fatalf("event %s carries invalid JSON: %s", ev.Type, ev.Data)
		}
		if strings.ContainsAny(string(ev.Data), "\n") {
			t.Fatalf("event %s payload is not single-line: %s", ev.Type, ev.Data)
		}
		types = append(types, ev.Type)
	}
	joined := strings.Join(types, " ")
	for _, want := range []string{"sweep", "cell", "progress", "epoch", "diag", "done"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing %q event in %v", want, types)
		}
	}

	// A cancelled subscriber's channel closes and later publishes do not
	// panic or block.
	cancel()
	a.NoteRetry()
	if _, ok := <-ch; ok {
		// Drain any buffered events until close.
		for range ch {
		}
	}
}

// TestAggregatorConcurrent exercises the aggregator from many
// goroutines at once (the -j sweep case) under the race detector.
func TestAggregatorConcurrent(t *testing.T) {
	a := NewAggregator("sweep")
	const cells = 32
	s := a.BeginSweep(cells)
	ch, cancel := a.Subscribe(4) // deliberately small: drops must be safe
	defer cancel()
	go func() {
		for range ch {
		}
	}()

	var wg sync.WaitGroup
	for c := 0; c < cells; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			a.CellStarted(s, c)
			a.PublishEpoch(s, c, uint64(c), []string{"m"}, []float64{1})
			if c%5 == 0 {
				a.CellFailed(CellFailure{Sweep: s, Cell: c, Kind: "panic", Error: "x", Attempts: 1})
				return
			}
			a.CellDone(s, c, []Sample{{"m", 2}})
		}(c)
	}
	wg.Wait()
	g := a.Gather()
	done := findSample(t, g, "sweep.done")
	if done != cells {
		t.Fatalf("done = %v, want %d", done, cells)
	}
	if v := findSample(t, g, "sweep.inflight"); v != 0 {
		t.Fatalf("inflight = %v, want 0", v)
	}
}
