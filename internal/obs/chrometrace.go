package obs

// ChromeTracer records DRAM command events and serializes them in the
// Chrome trace-event format (the JSON Array/Object format consumed by
// Perfetto and chrome://tracing): one complete ("X") event per command
// with pid = channel, tid = bank, ts/dur in microseconds, and the DRAM
// row in args. Events are buffered as compact records and rendered only
// at write time.

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"microbank/internal/sim"
)

// defaultMaxTraceEvents bounds tracer memory (~32 bytes/event). Runs
// longer than the cap keep the earliest events and count the rest in
// Dropped.
const defaultMaxTraceEvents = 4 << 20

// spanPidBase keeps parallel-window span pids clear of DRAM channel
// pids in the rendered trace (channels are small non-negative ints).
const spanPidBase = int32(1000)

// cmdRec is one buffered command event.
type cmdRec struct {
	issue    uint64
	complete uint64
	row      uint32
	channel  int32
	bank     int32
	kind     CmdKind
}

// spanRec is one buffered parallel-engine span: a window's work on one
// domain (kind spanWindow: a = events fired in the window) or the
// barrier that closed a window (kind spanBarrier: a = cross-domain
// messages spliced, b = host nanoseconds the coordinator waited).
type spanRec struct {
	start, end uint64 // sim ps
	window     uint64
	a, b       uint64
	pid        int32
	kind       uint8
}

// Span kinds.
const (
	spanWindow uint8 = iota
	spanBarrier
)

// ChromeTracer implements Tracer by buffering events in memory.
type ChromeTracer struct {
	// MaxEvents bounds the buffer; zero means defaultMaxTraceEvents.
	MaxEvents int
	// Aborted, when non-empty, marks the trace as coming from an
	// aborted run: the message lands in otherData.aborted so consumers
	// of a partially-flushed trace can tell it from a completed one.
	Aborted string

	events  []cmdRec
	spans   []spanRec
	dropped uint64
}

// NewChromeTracer returns a tracer with the default event cap.
func NewChromeTracer() *ChromeTracer {
	return &ChromeTracer{MaxEvents: defaultMaxTraceEvents}
}

// TraceCmd implements Tracer.
func (t *ChromeTracer) TraceCmd(channel, bank int, kind CmdKind, row uint32, issue, complete sim.Time) {
	max := t.MaxEvents
	if max == 0 {
		max = defaultMaxTraceEvents
	}
	if len(t.events) >= max {
		t.dropped++
		return
	}
	t.events = append(t.events, cmdRec{
		issue:    uint64(issue),
		complete: uint64(complete),
		row:      row,
		channel:  int32(channel),
		bank:     int32(bank),
		kind:     kind,
	})
}

// WindowSpan records one domain's work within one parallel-engine
// window: the window's sim-time bounds, its index, and the number of
// events the domain fired inside it. Called serially at barriers by the
// windowed engine's coordinator, never from the model hot path.
func (t *ChromeTracer) WindowSpan(domain int32, start, end sim.Time, window, fired uint64) {
	t.span(spanRec{start: uint64(start), end: uint64(end), window: window,
		a: fired, pid: domain, kind: spanWindow})
}

// BarrierSpan records one window barrier: cross-domain messages spliced
// at the boundary and the host nanoseconds the coordinator spent
// waiting for the slowest worker.
func (t *ChromeTracer) BarrierSpan(start, end sim.Time, window, msgs, waitNS uint64) {
	t.span(spanRec{start: uint64(start), end: uint64(end), window: window,
		a: msgs, b: waitNS, pid: -1, kind: spanBarrier})
}

// span buffers one span, sharing the command buffer's event cap.
func (t *ChromeTracer) span(s spanRec) {
	max := t.MaxEvents
	if max == 0 {
		max = defaultMaxTraceEvents
	}
	if len(t.events)+len(t.spans) >= max {
		t.dropped++
		return
	}
	t.spans = append(t.spans, s)
}

// Len returns the number of buffered events (commands plus spans).
func (t *ChromeTracer) Len() int { return len(t.events) + len(t.spans) }

// Dropped returns the number of events discarded after MaxEvents.
func (t *ChromeTracer) Dropped() uint64 { return t.dropped }

// WriteTo serializes the trace as Chrome trace-event JSON. It emits
// process_name metadata for every channel seen, then one "X" (complete)
// event per command. Timestamps convert from picoseconds to the
// format's microseconds with sub-nanosecond precision retained.
func (t *ChromeTracer) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	write := func(format string, args ...any) {
		if cw.err == nil {
			fmt.Fprintf(cw, format, args...)
		}
	}
	if t.Aborted != "" {
		write(`{"displayTimeUnit":"ns","otherData":{"tool":"microbank","dropped_events":%d,"aborted":%q},"traceEvents":[`, t.dropped, t.Aborted)
	} else {
		write(`{"displayTimeUnit":"ns","otherData":{"tool":"microbank","dropped_events":%d},"traceEvents":[`, t.dropped)
	}

	chans := map[int32]bool{}
	for _, e := range t.events {
		chans[e.channel] = true
	}
	ordered := make([]int32, 0, len(chans))
	for c := range chans {
		ordered = append(ordered, c)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	first := true
	for _, c := range ordered {
		if !first {
			write(",")
		}
		first = false
		write(`{"name":"process_name","ph":"M","pid":%d,"args":{"name":"DRAM channel %d"}}`, c, c)
	}
	for _, e := range t.events {
		if !first {
			write(",")
		}
		first = false
		dur := float64(e.complete-e.issue) / 1e6
		write(`{"name":%q,"cat":"dram","ph":"X","ts":%.6f,"dur":%.6f,"pid":%d,"tid":%d,"args":{"row":%d}}`,
			e.kind.String(), float64(e.issue)/1e6, dur, e.channel, e.bank, e.row)
	}
	// Parallel-engine spans live on their own pid range (spanPidBase +
	// domain; barriers on spanPidBase-1) so they never collide with DRAM
	// channel pids in a mixed trace.
	if len(t.spans) > 0 {
		doms := map[int32]bool{}
		barriers := false
		for _, s := range t.spans {
			if s.kind == spanBarrier {
				barriers = true
				continue
			}
			doms[s.pid] = true
		}
		orderedDoms := make([]int32, 0, len(doms))
		for d := range doms {
			orderedDoms = append(orderedDoms, d)
		}
		sort.Slice(orderedDoms, func(i, j int) bool { return orderedDoms[i] < orderedDoms[j] })
		for _, d := range orderedDoms {
			if !first {
				write(",")
			}
			first = false
			write(`{"name":"process_name","ph":"M","pid":%d,"args":{"name":"window domain %d"}}`,
				spanPidBase+d, d)
		}
		if barriers {
			if !first {
				write(",")
			}
			first = false
			write(`{"name":"process_name","ph":"M","pid":%d,"args":{"name":"window barrier"}}`,
				spanPidBase-1)
		}
		for _, s := range t.spans {
			if !first {
				write(",")
			}
			first = false
			dur := float64(s.end-s.start) / 1e6
			ts := float64(s.start) / 1e6
			if s.kind == spanBarrier {
				write(`{"name":"barrier","cat":"parwin","ph":"X","ts":%.6f,"dur":%.6f,"pid":%d,"tid":0,"args":{"window":%d,"crossdomain_msgs":%d,"wait_ns":%d}}`,
					ts, dur, spanPidBase-1, s.window, s.a, s.b)
				continue
			}
			write(`{"name":"window %d","cat":"parwin","ph":"X","ts":%.6f,"dur":%.6f,"pid":%d,"tid":0,"args":{"window":%d,"fired":%d}}`,
				s.window, ts, dur, spanPidBase+s.pid, s.window, s.a)
		}
	}
	write("]}\n")
	if cw.err == nil {
		cw.err = cw.w.(*bufio.Writer).Flush()
	}
	return cw.n, cw.err
}

// countingWriter tracks bytes written and the first error.
type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}
