package obs

// ChromeTracer records DRAM command events and serializes them in the
// Chrome trace-event format (the JSON Array/Object format consumed by
// Perfetto and chrome://tracing): one complete ("X") event per command
// with pid = channel, tid = bank, ts/dur in microseconds, and the DRAM
// row in args. Events are buffered as compact records and rendered only
// at write time.

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"microbank/internal/sim"
)

// defaultMaxTraceEvents bounds tracer memory (~32 bytes/event). Runs
// longer than the cap keep the earliest events and count the rest in
// Dropped.
const defaultMaxTraceEvents = 4 << 20

// cmdRec is one buffered command event.
type cmdRec struct {
	issue    uint64
	complete uint64
	row      uint32
	channel  int32
	bank     int32
	kind     CmdKind
}

// ChromeTracer implements Tracer by buffering events in memory.
type ChromeTracer struct {
	// MaxEvents bounds the buffer; zero means defaultMaxTraceEvents.
	MaxEvents int

	events  []cmdRec
	dropped uint64
}

// NewChromeTracer returns a tracer with the default event cap.
func NewChromeTracer() *ChromeTracer {
	return &ChromeTracer{MaxEvents: defaultMaxTraceEvents}
}

// TraceCmd implements Tracer.
func (t *ChromeTracer) TraceCmd(channel, bank int, kind CmdKind, row uint32, issue, complete sim.Time) {
	max := t.MaxEvents
	if max == 0 {
		max = defaultMaxTraceEvents
	}
	if len(t.events) >= max {
		t.dropped++
		return
	}
	t.events = append(t.events, cmdRec{
		issue:    uint64(issue),
		complete: uint64(complete),
		row:      row,
		channel:  int32(channel),
		bank:     int32(bank),
		kind:     kind,
	})
}

// Len returns the number of buffered events.
func (t *ChromeTracer) Len() int { return len(t.events) }

// Dropped returns the number of events discarded after MaxEvents.
func (t *ChromeTracer) Dropped() uint64 { return t.dropped }

// WriteTo serializes the trace as Chrome trace-event JSON. It emits
// process_name metadata for every channel seen, then one "X" (complete)
// event per command. Timestamps convert from picoseconds to the
// format's microseconds with sub-nanosecond precision retained.
func (t *ChromeTracer) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	write := func(format string, args ...any) {
		if cw.err == nil {
			fmt.Fprintf(cw, format, args...)
		}
	}
	write(`{"displayTimeUnit":"ns","otherData":{"tool":"microbank","dropped_events":%d},"traceEvents":[`, t.dropped)

	chans := map[int32]bool{}
	for _, e := range t.events {
		chans[e.channel] = true
	}
	ordered := make([]int32, 0, len(chans))
	for c := range chans {
		ordered = append(ordered, c)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	first := true
	for _, c := range ordered {
		if !first {
			write(",")
		}
		first = false
		write(`{"name":"process_name","ph":"M","pid":%d,"args":{"name":"DRAM channel %d"}}`, c, c)
	}
	for _, e := range t.events {
		if !first {
			write(",")
		}
		first = false
		dur := float64(e.complete-e.issue) / 1e6
		write(`{"name":%q,"cat":"dram","ph":"X","ts":%.6f,"dur":%.6f,"pid":%d,"tid":%d,"args":{"row":%d}}`,
			e.kind.String(), float64(e.issue)/1e6, dur, e.channel, e.bank, e.row)
	}
	write("]}\n")
	if cw.err == nil {
		cw.err = cw.w.(*bufio.Writer).Flush()
	}
	return cw.n, cw.err
}

// countingWriter tracks bytes written and the first error.
type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}
