package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"microbank/internal/sim"
)

// chromeDoc mirrors the trace-event JSON schema Perfetto consumes.
type chromeDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	OtherData       struct {
		Tool          string `json:"tool"`
		DroppedEvents uint64 `json:"dropped_events"`
	} `json:"otherData"`
	TraceEvents []chromeEvent `json:"traceEvents"`
}

type chromeEvent struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat"`
	Ph   string          `json:"ph"`
	Ts   float64         `json:"ts"`
	Dur  float64         `json:"dur"`
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	Args json.RawMessage `json:"args"`
}

// TestChromeTraceGolden pins the exact serialization of a small trace
// (the schema is an external interface: Perfetto must keep loading it).
func TestChromeTraceGolden(t *testing.T) {
	tr := NewChromeTracer()
	tr.TraceCmd(0, 3, CmdACT, 17, 1_000_000, 1_013_750)
	tr.TraceCmd(0, 3, CmdRD, 17, 2_000_000, 2_028_750)
	var b bytes.Buffer
	if _, err := tr.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	const golden = `{"displayTimeUnit":"ns","otherData":{"tool":"microbank","dropped_events":0},"traceEvents":[` +
		`{"name":"process_name","ph":"M","pid":0,"args":{"name":"DRAM channel 0"}},` +
		`{"name":"ACT","cat":"dram","ph":"X","ts":1.000000,"dur":0.013750,"pid":0,"tid":3,"args":{"row":17}},` +
		`{"name":"RD","cat":"dram","ph":"X","ts":2.000000,"dur":0.028750,"pid":0,"tid":3,"args":{"row":17}}]}` + "\n"
	if b.String() != golden {
		t.Fatalf("trace JSON drifted from golden:\n got: %s\nwant: %s", b.String(), golden)
	}
}

// TestChromeTraceSchema checks that an arbitrary trace parses back into
// the trace-event schema with well-formed fields.
func TestChromeTraceSchema(t *testing.T) {
	tr := NewChromeTracer()
	tr.TraceCmd(1, 0, CmdACT, 5, 100, 200)
	tr.TraceCmd(0, 2, CmdWR, 5, 300, 450)
	tr.TraceCmd(0, -1, CmdREF, 0, 500, 900)
	tr.TraceCmd(1, 7, CmdPRE, 5, 600, 615)
	var b bytes.Buffer
	if _, err := tr.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, b.String())
	}
	if doc.DisplayTimeUnit != "ns" || doc.OtherData.Tool != "microbank" {
		t.Fatalf("header fields wrong: %+v", doc)
	}
	var meta, cmds int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			cmds++
			if e.Cat != "dram" {
				t.Fatalf("command event category = %q", e.Cat)
			}
			if e.Ts < 0 || e.Dur < 0 {
				t.Fatalf("negative ts/dur: %+v", e)
			}
			switch e.Name {
			case "ACT", "RD", "WR", "PRE", "REF":
			default:
				t.Fatalf("unknown command name %q", e.Name)
			}
			if !strings.Contains(string(e.Args), "row") {
				t.Fatalf("args missing row: %s", e.Args)
			}
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	if cmds != 4 {
		t.Fatalf("command events = %d, want 4", cmds)
	}
	if meta != 2 { // channels 0 and 1
		t.Fatalf("metadata events = %d, want 2", meta)
	}
}

func TestChromeTraceCap(t *testing.T) {
	tr := &ChromeTracer{MaxEvents: 3}
	for i := 0; i < 5; i++ {
		tr.TraceCmd(0, i, CmdACT, 0, sim.Time(i), sim.Time(i+1))
	}
	if tr.Len() != 3 || tr.Dropped() != 2 {
		t.Fatalf("len/dropped = %d/%d, want 3/2", tr.Len(), tr.Dropped())
	}
	var b bytes.Buffer
	if _, err := tr.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"dropped_events":2`) {
		t.Fatalf("dropped count not recorded: %s", b.String())
	}
}

// TestChromeTraceSpans checks the parallel-window span section: span
// events land on their own pid range with metadata names, valid JSON,
// and a DRAM-only trace (the common case) stays byte-identical to the
// pre-span serialization — TestChromeTraceGolden pins that.
func TestChromeTraceSpans(t *testing.T) {
	tr := NewChromeTracer()
	tr.TraceCmd(0, 1, CmdACT, 9, 1_000_000, 1_013_750)
	tr.WindowSpan(0, 2_000_000, 2_099_999, 4, 120)
	tr.WindowSpan(1, 2_000_000, 2_099_999, 4, 80)
	tr.BarrierSpan(2_000_000, 2_099_999, 4, 3, 1500)
	var b bytes.Buffer
	if _, err := tr.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("span trace is not valid JSON: %v\n%s", err, b.String())
	}
	var windows, barriers int
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			var meta struct {
				Name string `json:"name"`
			}
			if err := json.Unmarshal(e.Args, &meta); err != nil {
				t.Fatal(err)
			}
			names[meta.Name] = true
			continue
		}
		if e.Cat != "parwin" {
			continue
		}
		if e.Name == "barrier" {
			barriers++
			if e.Pid != int(spanPidBase)-1 {
				t.Fatalf("barrier pid = %d", e.Pid)
			}
			if !strings.Contains(string(e.Args), `"crossdomain_msgs":3`) ||
				!strings.Contains(string(e.Args), `"wait_ns":1500`) {
				t.Fatalf("barrier args = %s", e.Args)
			}
			continue
		}
		windows++
		if e.Pid < int(spanPidBase) {
			t.Fatalf("window span pid %d collides with DRAM channel range", e.Pid)
		}
		if !strings.Contains(string(e.Args), `"window":4`) {
			t.Fatalf("window args = %s", e.Args)
		}
	}
	if windows != 2 || barriers != 1 {
		t.Fatalf("spans = %d windows, %d barriers; want 2, 1", windows, barriers)
	}
	for _, want := range []string{"DRAM channel 0", "window domain 0", "window domain 1", "window barrier"} {
		if !names[want] {
			t.Fatalf("missing process_name %q (have %v)", want, names)
		}
	}
}

// TestChromeTraceAborted: a partially-flushed trace from a killed run
// is still valid JSON and carries the aborted marker in otherData.
func TestChromeTraceAborted(t *testing.T) {
	tr := NewChromeTracer()
	tr.TraceCmd(0, 1, CmdACT, 9, 100, 200)
	tr.Aborted = `event budget "exhausted"` + "\nmid-run"
	var b bytes.Buffer
	if _, err := tr.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		OtherData struct {
			Aborted string `json:"aborted"`
		} `json:"otherData"`
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("aborted trace is not valid JSON: %v\n%s", err, b.String())
	}
	if doc.OtherData.Aborted != tr.Aborted {
		t.Fatalf("aborted marker = %q, want %q", doc.OtherData.Aborted, tr.Aborted)
	}
	if len(doc.TraceEvents) != 2 { // metadata + the one flushed command
		t.Fatalf("trace events = %d, want 2", len(doc.TraceEvents))
	}
}

// TestChromeTraceSpanCap: spans share the command buffer's cap.
func TestChromeTraceSpanCap(t *testing.T) {
	tr := &ChromeTracer{MaxEvents: 2}
	tr.TraceCmd(0, 0, CmdACT, 0, 1, 2)
	tr.WindowSpan(0, 10, 20, 0, 1)
	tr.BarrierSpan(10, 20, 0, 0, 0)
	if tr.Len() != 2 || tr.Dropped() != 1 {
		t.Fatalf("len/dropped = %d/%d, want 2/1", tr.Len(), tr.Dropped())
	}
}
