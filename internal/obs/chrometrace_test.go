package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"microbank/internal/sim"
)

// chromeDoc mirrors the trace-event JSON schema Perfetto consumes.
type chromeDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	OtherData       struct {
		Tool          string `json:"tool"`
		DroppedEvents uint64 `json:"dropped_events"`
	} `json:"otherData"`
	TraceEvents []chromeEvent `json:"traceEvents"`
}

type chromeEvent struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat"`
	Ph   string          `json:"ph"`
	Ts   float64         `json:"ts"`
	Dur  float64         `json:"dur"`
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	Args json.RawMessage `json:"args"`
}

// TestChromeTraceGolden pins the exact serialization of a small trace
// (the schema is an external interface: Perfetto must keep loading it).
func TestChromeTraceGolden(t *testing.T) {
	tr := NewChromeTracer()
	tr.TraceCmd(0, 3, CmdACT, 17, 1_000_000, 1_013_750)
	tr.TraceCmd(0, 3, CmdRD, 17, 2_000_000, 2_028_750)
	var b bytes.Buffer
	if _, err := tr.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	const golden = `{"displayTimeUnit":"ns","otherData":{"tool":"microbank","dropped_events":0},"traceEvents":[` +
		`{"name":"process_name","ph":"M","pid":0,"args":{"name":"DRAM channel 0"}},` +
		`{"name":"ACT","cat":"dram","ph":"X","ts":1.000000,"dur":0.013750,"pid":0,"tid":3,"args":{"row":17}},` +
		`{"name":"RD","cat":"dram","ph":"X","ts":2.000000,"dur":0.028750,"pid":0,"tid":3,"args":{"row":17}}]}` + "\n"
	if b.String() != golden {
		t.Fatalf("trace JSON drifted from golden:\n got: %s\nwant: %s", b.String(), golden)
	}
}

// TestChromeTraceSchema checks that an arbitrary trace parses back into
// the trace-event schema with well-formed fields.
func TestChromeTraceSchema(t *testing.T) {
	tr := NewChromeTracer()
	tr.TraceCmd(1, 0, CmdACT, 5, 100, 200)
	tr.TraceCmd(0, 2, CmdWR, 5, 300, 450)
	tr.TraceCmd(0, -1, CmdREF, 0, 500, 900)
	tr.TraceCmd(1, 7, CmdPRE, 5, 600, 615)
	var b bytes.Buffer
	if _, err := tr.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, b.String())
	}
	if doc.DisplayTimeUnit != "ns" || doc.OtherData.Tool != "microbank" {
		t.Fatalf("header fields wrong: %+v", doc)
	}
	var meta, cmds int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			cmds++
			if e.Cat != "dram" {
				t.Fatalf("command event category = %q", e.Cat)
			}
			if e.Ts < 0 || e.Dur < 0 {
				t.Fatalf("negative ts/dur: %+v", e)
			}
			switch e.Name {
			case "ACT", "RD", "WR", "PRE", "REF":
			default:
				t.Fatalf("unknown command name %q", e.Name)
			}
			if !strings.Contains(string(e.Args), "row") {
				t.Fatalf("args missing row: %s", e.Args)
			}
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	if cmds != 4 {
		t.Fatalf("command events = %d, want 4", cmds)
	}
	if meta != 2 { // channels 0 and 1
		t.Fatalf("metadata events = %d, want 2", meta)
	}
}

func TestChromeTraceCap(t *testing.T) {
	tr := &ChromeTracer{MaxEvents: 3}
	for i := 0; i < 5; i++ {
		tr.TraceCmd(0, i, CmdACT, 0, sim.Time(i), sim.Time(i+1))
	}
	if tr.Len() != 3 || tr.Dropped() != 2 {
		t.Fatalf("len/dropped = %d/%d, want 3/2", tr.Len(), tr.Dropped())
	}
	var b bytes.Buffer
	if _, err := tr.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"dropped_events":2`) {
		t.Fatalf("dropped count not recorded: %s", b.String())
	}
}
