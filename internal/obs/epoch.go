package obs

// The epoch sampler: a self-rescheduling simulation event that gathers
// every registered series each epoch into an in-memory time series,
// exportable as CSV or JSON. The sampler stops rescheduling itself as
// soon as it is the only pending event, so a run's event queue still
// drains and sim.Engine.Run terminates exactly as it would without
// observability.

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"microbank/internal/sim"
)

// samplerPriority orders the sampler after every same-instant model
// event (controller evals run at priority 2), so an epoch snapshot sees
// the settled state of its boundary instant.
const samplerPriority = 1 << 20

// Sampler records an epoch-indexed time series of every series in a
// Registry. Construct with NewSampler and attach to an engine with
// Start.
type Sampler struct {
	reg   *Registry
	every sim.Time

	// OnSample, when non-nil, observes each recorded epoch row right
	// after it is gathered (live streaming to the campaign aggregator).
	// The callback runs on the simulation goroutine and must not block
	// or mutate names/row; both stay owned by the sampler.
	OnSample func(at sim.Time, names []string, row []float64)

	names []string
	times []sim.Time
	rows  [][]float64

	tick func(*sim.Engine)
}

// NewSampler builds a sampler over reg with the given epoch length.
func NewSampler(reg *Registry, every sim.Time) *Sampler {
	if every == 0 {
		panic("obs: zero epoch length")
	}
	return &Sampler{reg: reg, every: every}
}

// Every returns the epoch length.
func (s *Sampler) Every() sim.Time { return s.every }

// Start schedules the first epoch tick. Metric registration must be
// complete before the first tick fires; the column set is frozen then.
func (s *Sampler) Start(eng *sim.Engine) {
	s.tick = func(e *sim.Engine) {
		s.sample(e.Now())
		// Reschedule only while the model still has pending work: when
		// this tick is the queue's sole inhabitant nothing can ever
		// happen again, and rescheduling would keep Run from returning.
		if e.Pending() > 0 {
			e.ScheduleP(e.Now()+s.every, samplerPriority, s.tick)
		}
	}
	eng.ScheduleP(eng.Now()+s.every, samplerPriority, s.tick)
}

// sample gathers one epoch row at time at.
func (s *Sampler) sample(at sim.Time) {
	if s.names == nil {
		s.names = s.reg.SeriesNames()
	}
	samples := s.reg.Gather()
	row := make([]float64, len(samples))
	for i, sm := range samples {
		row[i] = sm.Value
	}
	s.times = append(s.times, at)
	s.rows = append(s.rows, row)
	if s.OnSample != nil {
		s.OnSample(at, s.names, row)
	}
}

// Epochs returns the number of recorded epochs.
func (s *Sampler) Epochs() int { return len(s.rows) }

// Names returns the recorded series names (nil before the first epoch).
func (s *Sampler) Names() []string { return s.names }

// Value returns the recorded value of series name at epoch i.
func (s *Sampler) Value(i int, name string) (float64, bool) {
	for j, n := range s.names {
		if n == name {
			return s.rows[i][j], true
		}
	}
	return 0, false
}

// CSV renders the time series with a time_ps column followed by one
// column per series.
func (s *Sampler) CSV() string {
	var b strings.Builder
	b.WriteString("time_ps")
	for _, n := range s.names {
		b.WriteByte(',')
		b.WriteString(n)
	}
	b.WriteByte('\n')
	for i, row := range s.rows {
		b.WriteString(strconv.FormatUint(uint64(s.times[i]), 10))
		for _, v := range row {
			b.WriteByte(',')
			b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// seriesJSON is the JSON export schema.
type seriesJSON struct {
	EpochPS uint64               `json:"epoch_ps"`
	TimesPS []uint64             `json:"times_ps"`
	Series  map[string][]float64 `json:"series"`
	Order   []string             `json:"order"`
}

// JSON renders the time series as one JSON document: epoch length,
// epoch timestamps, and a map from series name to per-epoch values
// (Order preserves registration order for consumers that care).
func (s *Sampler) JSON() ([]byte, error) {
	out := seriesJSON{
		EpochPS: uint64(s.every),
		TimesPS: make([]uint64, len(s.times)),
		Series:  make(map[string][]float64, len(s.names)),
		Order:   s.names,
	}
	for i, t := range s.times {
		out.TimesPS[i] = uint64(t)
	}
	for j, n := range s.names {
		col := make([]float64, len(s.rows))
		for i, row := range s.rows {
			col[i] = row[j]
		}
		out.Series[n] = col
	}
	return json.MarshalIndent(out, "", " ")
}

// String summarizes the sampler for diagnostics.
func (s *Sampler) String() string {
	return fmt.Sprintf("obs.Sampler{epoch=%dps, series=%d, epochs=%d}",
		s.every, len(s.names), len(s.rows))
}
