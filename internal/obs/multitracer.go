package obs

import "microbank/internal/sim"

// MultiTracer fans every traced command out to several tracers, so the
// Chrome tracer and the protocol sanitizer (internal/check) can observe
// the same run. Dispatch is a plain slice walk with no per-event
// allocation, keeping the observed path cheap; the disabled path stays
// a single nil check because CombineTracers never wraps fewer than two
// real tracers.

// MultiTracer is a Tracer that forwards each event to every element,
// in order.
type MultiTracer []Tracer

// TraceCmd implements Tracer by fanning out to every element.
func (m MultiTracer) TraceCmd(channel, bank int, kind CmdKind, row uint32, issue, complete sim.Time) {
	for _, t := range m {
		t.TraceCmd(channel, bank, kind, row, issue, complete)
	}
}

// CombineTracers merges tracers into one. Nil entries are dropped and
// nested MultiTracers are flattened; the result is nil when nothing
// remains, the tracer itself when exactly one remains (so a single
// tracer never pays fan-out dispatch), and a MultiTracer otherwise.
func CombineTracers(ts ...Tracer) Tracer {
	var flat MultiTracer
	for _, t := range ts {
		switch tt := t.(type) {
		case nil:
			continue
		case MultiTracer:
			flat = append(flat, tt...)
		default:
			flat = append(flat, t)
		}
	}
	switch len(flat) {
	case 0:
		return nil
	case 1:
		return flat[0]
	default:
		return flat
	}
}

// AddTracer attaches one more tracer to the observer, fanning out with
// any tracer already present (Chrome trace + sanitizer, for example).
func (o *Observer) AddTracer(t Tracer) {
	o.Tracer = CombineTracers(o.Tracer, t)
}
