package obs_test

import (
	"testing"

	"microbank/internal/obs"
	"microbank/internal/sim"
)

// countTracer records how many events it saw and the last event's shape.
type countTracer struct {
	n             int
	channel, bank int
	kind          obs.CmdKind
	issue         sim.Time
}

func (c *countTracer) TraceCmd(channel, bank int, kind obs.CmdKind, row uint32, issue, complete sim.Time) {
	c.n++
	c.channel, c.bank, c.kind, c.issue = channel, bank, kind, issue
}

func TestCombineTracersNilSafety(t *testing.T) {
	if got := obs.CombineTracers(); got != nil {
		t.Errorf("CombineTracers() = %v, want nil", got)
	}
	if got := obs.CombineTracers(nil, nil); got != nil {
		t.Errorf("CombineTracers(nil, nil) = %v, want nil", got)
	}
	var typedNil obs.Tracer
	if got := obs.CombineTracers(typedNil); got != nil {
		t.Errorf("CombineTracers(typed nil) = %v, want nil", got)
	}
}

func TestCombineTracersSingleIsIdentity(t *testing.T) {
	c := &countTracer{}
	got := obs.CombineTracers(nil, c, nil)
	if got != obs.Tracer(c) {
		t.Fatalf("single tracer must come back unwrapped, got %T", got)
	}
}

func TestCombineTracersFlattens(t *testing.T) {
	a, b, c := &countTracer{}, &countTracer{}, &countTracer{}
	inner := obs.CombineTracers(a, b)
	outer := obs.CombineTracers(inner, nil, c)
	m, ok := outer.(obs.MultiTracer)
	if !ok {
		t.Fatalf("combined tracer is %T, want MultiTracer", outer)
	}
	if len(m) != 3 {
		t.Fatalf("nested MultiTracer not flattened: len = %d, want 3", len(m))
	}
	m.TraceCmd(1, 2, obs.CmdACT, 7, 100, 200)
	for i, ct := range []*countTracer{a, b, c} {
		if ct.n != 1 || ct.channel != 1 || ct.bank != 2 || ct.kind != obs.CmdACT || ct.issue != 100 {
			t.Errorf("tracer %d saw n=%d channel=%d bank=%d kind=%v issue=%d",
				i, ct.n, ct.channel, ct.bank, ct.kind, ct.issue)
		}
	}
}

func TestObserverAddTracerAccumulates(t *testing.T) {
	a, b := &countTracer{}, &countTracer{}
	o := obs.NewObserver()
	if o.Tracer != nil {
		t.Fatalf("fresh observer has tracer %T", o.Tracer)
	}
	o.AddTracer(a)
	if o.Tracer != obs.Tracer(a) {
		t.Fatalf("first AddTracer wrapped the tracer: %T", o.Tracer)
	}
	o.AddTracer(b)
	o.Tracer.TraceCmd(0, 0, obs.CmdRD, 0, 1, 2)
	if a.n != 1 || b.n != 1 {
		t.Fatalf("fan-out after second AddTracer: a=%d b=%d, want 1/1", a.n, b.n)
	}
}

// TestMultiTracerZeroAlloc pins the fan-out dispatch at zero
// allocations per event, so attaching the sanitizer alongside the
// Chrome tracer cannot add GC pressure to the command path.
func TestMultiTracerZeroAlloc(t *testing.T) {
	m := obs.CombineTracers(&countTracer{}, &countTracer{}, &countTracer{})
	allocs := testing.AllocsPerRun(1000, func() {
		m.TraceCmd(0, 3, obs.CmdWR, 11, 500, 600)
	})
	if allocs != 0 {
		t.Fatalf("MultiTracer.TraceCmd allocates %v per event, want 0", allocs)
	}
}
