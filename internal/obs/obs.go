// Package obs is the simulator's observability layer: a typed metrics
// registry (counters, gauges, histograms with stable names and labels
// such as channel/bank/thread), an epoch sampler that snapshots every
// registered series on a fixed simulated-time cadence, and a DRAM
// command tracer that records ACT/RD/WR/PRE/REF events as Chrome
// trace-event JSON viewable in Perfetto.
//
// The layer is strictly opt-in: a nil Tracer and an absent Sampler cost
// the model nothing beyond a nil check on each command issue, so the
// engine's zero-allocation hot path is preserved when observability is
// off (guarded by TestScheduleStepZeroAllocGuard in internal/sim).
// Sampling and tracing only read model state — they never schedule
// model events or mutate component state — so an observed run produces
// bit-identical simulation results to an unobserved one.
package obs

import (
	"fmt"
	"strings"

	"microbank/internal/sim"
)

// CmdKind enumerates the traced DRAM command kinds. The values mirror
// package dram's command order (ACT, RD, WR, PRE, REF); obs redeclares
// them so the dependency points from the model to the observability
// layer, never back.
type CmdKind uint8

// Traced DRAM command kinds.
const (
	CmdACT CmdKind = iota
	CmdRD
	CmdWR
	CmdPRE
	CmdREF
)

// String returns the conventional mnemonic.
func (k CmdKind) String() string {
	switch k {
	case CmdACT:
		return "ACT"
	case CmdRD:
		return "RD"
	case CmdWR:
		return "WR"
	case CmdPRE:
		return "PRE"
	case CmdREF:
		return "REF"
	default:
		return fmt.Sprintf("CmdKind(%d)", int(k))
	}
}

// Tracer receives one callback per issued DRAM command. issue is the
// command's issue instant; complete is when its effect lands (ACT:
// row open at issue+tRCD, RD/WR: data transferred, PRE: bank ready at
// issue+tRP, REF: channel or bank released). bank is -1 for commands
// that address the whole channel (all-bank refresh). Implementations
// must not mutate simulation state.
type Tracer interface {
	TraceCmd(channel, bank int, kind CmdKind, row uint32, issue, complete sim.Time)
}

// Observer bundles one run's observability configuration: a registry
// that components publish metrics into, an optional epoch sampler, and
// an optional DRAM command tracer. A nil *Observer means "observability
// off" throughout the simulator.
type Observer struct {
	Registry *Registry
	Sampler  *Sampler
	Tracer   Tracer
}

// NewObserver returns an observer with an empty registry and no
// sampling or tracing enabled.
func NewObserver() *Observer {
	return &Observer{Registry: NewRegistry()}
}

// EnableSampling attaches an epoch sampler with the given epoch length
// (simulated time between snapshots) and returns it.
func (o *Observer) EnableSampling(every sim.Time) *Sampler {
	o.Sampler = NewSampler(o.Registry, every)
	return o.Sampler
}

// EnableChromeTrace attaches a Chrome trace-event tracer and returns
// it. Any tracer already attached (e.g. a protocol checker) keeps
// receiving events through a MultiTracer fan-out.
func (o *Observer) EnableChromeTrace() *ChromeTracer {
	t := NewChromeTracer()
	o.AddTracer(t)
	return t
}

// Label is one name dimension of a metric, e.g. {"ch", "0"}.
type Label struct {
	Key   string
	Value string
}

// L builds a label, formatting the value with %v.
func L(key string, value any) Label {
	return Label{Key: key, Value: fmt.Sprint(value)}
}

// fullName renders "name{k1=v1,k2=v2}" (or bare name without labels).
// Labels keep their given order so names stay stable across runs.
func fullName(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}
