package obs

import (
	"strings"
	"testing"

	"microbank/internal/sim"
)

func TestLabelFormatting(t *testing.T) {
	if got := fullName("mem.reads", nil); got != "mem.reads" {
		t.Fatalf("bare name = %q", got)
	}
	got := fullName("mem.reads", []Label{L("ch", 0), L("bank", 13)})
	if got != "mem.reads{ch=0,bank=13}" {
		t.Fatalf("labelled name = %q", got)
	}
}

func TestRegistryKindsAndOrder(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count", L("ch", 1))
	r.GaugeFunc("b.gauge", func() float64 { return 2.5 })
	h := r.Histogram("c.hist")
	c.Add(7)
	h.Observe(4)
	h.Observe(8)

	names := r.SeriesNames()
	want := []string{"a.count{ch=1}", "b.gauge",
		"c.hist.count", "c.hist.mean", "c.hist.p50", "c.hist.p99", "c.hist.max"}
	if len(names) != len(want) {
		t.Fatalf("series = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("series[%d] = %q, want %q", i, names[i], want[i])
		}
	}
	samples := r.Gather()
	if len(samples) != len(want) {
		t.Fatalf("gathered %d samples, want %d", len(samples), len(want))
	}
	if samples[0].Value != 7 || samples[1].Value != 2.5 {
		t.Fatalf("counter/gauge values = %v / %v", samples[0].Value, samples[1].Value)
	}
	if samples[2].Value != 2 || samples[3].Value != 6 {
		t.Fatalf("hist count/mean = %v / %v", samples[2].Value, samples[3].Value)
	}
	// Re-registration returns the same instance.
	if r.Counter("a.count", L("ch", 1)) != c {
		t.Fatal("counter re-registration returned a new instance")
	}
	if r.Histogram("c.hist") != h {
		t.Fatal("histogram re-registration returned a new instance")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("dup", func() float64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate gauge registration did not panic")
		}
	}()
	r.GaugeFunc("dup", func() float64 { return 1 })
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Histogram("m")
}

// TestSamplerRecordsEpochsAndTerminates drives a model that stays busy
// for a while, then drains; the sampler must record epochs while the
// model runs and must not keep the engine alive afterwards.
func TestSamplerRecordsEpochsAndTerminates(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRegistry()
	var ticks float64
	r.GaugeFunc("model.ticks", func() float64 { return ticks })

	// Model: one event per 10ps for 100 events (ends at 1000ps).
	var step func(*sim.Engine)
	step = func(e *sim.Engine) {
		ticks++
		if ticks < 100 {
			e.After(10, step)
		}
	}
	eng.After(10, step)

	s := NewSampler(r, 250)
	s.Start(eng)
	eng.Run()

	if eng.Pending() != 0 {
		t.Fatalf("engine not drained: %d pending", eng.Pending())
	}
	// Epochs at 250, 500, 750, 1000 — the 1000ps tick fires after the
	// model's last event (priority order) and sees no other pending
	// events, so it samples and stops.
	if s.Epochs() < 3 || s.Epochs() > 5 {
		t.Fatalf("epochs = %d, want ~4", s.Epochs())
	}
	v, ok := s.Value(s.Epochs()-1, "model.ticks")
	if !ok {
		t.Fatal("series model.ticks missing")
	}
	if v != 100 {
		t.Fatalf("final sampled ticks = %v, want 100", v)
	}
}

func TestSamplerCSVAndJSON(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRegistry()
	n := 0.0
	r.GaugeFunc("g.one", func() float64 { n++; return n })
	r.GaugeFunc("g.two", func() float64 { return 2 }, L("ch", 0))
	eng.After(300, func(*sim.Engine) {})
	s := NewSampler(r, 100)
	s.Start(eng)
	eng.Run()

	csv := s.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "time_ps,g.one,g.two{ch=0}" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if len(lines) != 1+s.Epochs() {
		t.Fatalf("csv rows = %d, epochs = %d", len(lines)-1, s.Epochs())
	}
	if !strings.HasPrefix(lines[1], "100,1,2") {
		t.Fatalf("csv first row = %q", lines[1])
	}

	js, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"epoch_ps": 100`, `"g.one"`, `"g.two{ch=0}"`, `"times_ps"`} {
		if !strings.Contains(string(js), want) {
			t.Fatalf("JSON missing %s:\n%s", want, js)
		}
	}
}

func TestSamplerZeroEpochPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero epoch did not panic")
		}
	}()
	NewSampler(NewRegistry(), 0)
}
