package obs

// OpenMetrics rendering of gathered samples. Registry series names use
// the internal "name{k=v,...}.suffix" convention; this file translates
// them into the OpenMetrics/Prometheus text exposition format served at
// /metrics: dots and other invalid characters become underscores, the
// histogram suffix folds into the metric family name, and label values
// are quoted and escaped. Families are grouped (all samples of one
// family are contiguous, as the format requires) in first-seen order,
// so output is deterministic for a deterministic sample order.

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// splitSeries decomposes a registry series name into the OpenMetrics
// family name and its labels. "mem.read_bw{ch=0}.count" becomes family
// "mem_read_bw_count" with labels [{ch 0}].
func splitSeries(series string) (family string, labels []Label) {
	open := strings.IndexByte(series, '{')
	if open < 0 {
		return sanitizeName(series), nil
	}
	close := strings.LastIndexByte(series, '}')
	if close < open {
		return sanitizeName(series), nil
	}
	family = sanitizeName(series[:open] + series[close+1:])
	for _, kv := range strings.Split(series[open+1:close], ",") {
		eq := strings.IndexByte(kv, '=')
		if eq < 0 {
			labels = append(labels, Label{Key: sanitizeName(kv)})
			continue
		}
		labels = append(labels, Label{Key: sanitizeName(kv[:eq]), Value: kv[eq+1:]})
	}
	return family, labels
}

// sanitizeName maps a registry name onto the OpenMetrics name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(v string) string {
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// WriteOpenMetrics renders samples as OpenMetrics text (one gauge
// family per metric name, `# TYPE` headers, terminating `# EOF`). All
// registry series are exposed as gauges: counters are monotone but the
// exposition snapshots a finished or in-flight aggregate, not a live
// counter stream, and gauges carry no created-timestamp obligations.
func WriteOpenMetrics(w io.Writer, samples []Sample) error {
	bw := bufio.NewWriter(w)
	type line struct {
		labels []Label
		value  float64
	}
	families := map[string][]line{}
	var order []string
	for _, s := range samples {
		fam, labels := splitSeries(s.Name)
		if _, seen := families[fam]; !seen {
			order = append(order, fam)
		}
		families[fam] = append(families[fam], line{labels, s.Value})
	}
	for _, fam := range order {
		bw.WriteString("# TYPE ")
		bw.WriteString(fam)
		bw.WriteString(" gauge\n")
		for _, l := range families[fam] {
			bw.WriteString(fam)
			if len(l.labels) > 0 {
				bw.WriteByte('{')
				for i, lb := range l.labels {
					if i > 0 {
						bw.WriteByte(',')
					}
					bw.WriteString(lb.Key)
					bw.WriteString(`="`)
					bw.WriteString(escapeLabelValue(lb.Value))
					bw.WriteString(`"`)
				}
				bw.WriteByte('}')
			}
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatFloat(l.value, 'g', -1, 64))
			bw.WriteByte('\n')
		}
	}
	bw.WriteString("# EOF\n")
	return bw.Flush()
}
