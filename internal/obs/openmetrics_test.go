package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestSplitSeries(t *testing.T) {
	cases := []struct {
		series string
		family string
		labels []Label
	}{
		{"sim.windows", "sim_windows", nil},
		{"mem.read_bw{ch=0}", "mem_read_bw", []Label{{"ch", "0"}}},
		{"lat{ch=0,bank=3}.p99", "lat_p99", []Label{{"ch", "0"}, {"bank", "3"}}},
		{"sweep.failures{kind=event-budget}", "sweep_failures", []Label{{"kind", "event-budget"}}},
		{"9weird name", "_9weird_name", nil},
	}
	for _, c := range cases {
		fam, labels := splitSeries(c.series)
		if fam != c.family {
			t.Errorf("splitSeries(%q) family = %q, want %q", c.series, fam, c.family)
		}
		if len(labels) != len(c.labels) {
			t.Errorf("splitSeries(%q) labels = %v, want %v", c.series, labels, c.labels)
			continue
		}
		for i := range labels {
			if labels[i] != c.labels[i] {
				t.Errorf("splitSeries(%q) label %d = %v, want %v", c.series, i, labels[i], c.labels[i])
			}
		}
	}
}

// TestWriteOpenMetricsGolden pins the exposition of a representative
// sample set: family grouping with contiguous samples, TYPE headers in
// first-seen order, label quoting, and the EOF terminator.
func TestWriteOpenMetricsGolden(t *testing.T) {
	samples := []Sample{
		{"sweep.done", 3},
		{"mem.read_bw{ch=0}", 1.5},
		{"sim.windows", 42},
		{"mem.read_bw{ch=1}", 2.25},
		{"lat{ch=0}.p99", 120},
	}
	var b bytes.Buffer
	if err := WriteOpenMetrics(&b, samples); err != nil {
		t.Fatal(err)
	}
	const want = `# TYPE sweep_done gauge
sweep_done 3
# TYPE mem_read_bw gauge
mem_read_bw{ch="0"} 1.5
mem_read_bw{ch="1"} 2.25
# TYPE sim_windows gauge
sim_windows 42
# TYPE lat_p99 gauge
lat_p99{ch="0"} 120
# EOF
`
	if b.String() != want {
		t.Fatalf("exposition drifted:\n got:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestWriteOpenMetricsParses runs a light structural parse over the
// output of a real registry gather: every non-comment line must be
// `name[{labels}] value`, every family must appear contiguously after
// its own TYPE header, and the document must end with # EOF.
func TestWriteOpenMetricsParses(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("events.total")
	c.Add(7)
	reg.GaugeFunc("queue", func() float64 { return 3 }, L("ch", 0))
	h := reg.Histogram("lat", L("ch", 0))
	h.Observe(10)
	h.Observe(20)

	var b bytes.Buffer
	if err := WriteOpenMetrics(&b, reg.Gather()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("missing # EOF terminator:\n%s", out)
	}
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	var curFam string
	closed := map[string]bool{} // families whose block has ended
	for _, ln := range lines {
		if ln == "# EOF" {
			continue
		}
		if rest, ok := strings.CutPrefix(ln, "# TYPE "); ok {
			fam, typ, ok := strings.Cut(rest, " ")
			if !ok || typ != "gauge" {
				t.Fatalf("malformed TYPE line %q", ln)
			}
			if closed[fam] {
				t.Fatalf("family %q not contiguous:\n%s", fam, out)
			}
			if curFam != "" {
				closed[curFam] = true
			}
			curFam = fam
			continue
		}
		name := ln
		if i := strings.IndexByte(ln, '{'); i >= 0 {
			name = ln[:i]
			if !strings.Contains(ln, `"}`) && !strings.Contains(ln, `"`) {
				t.Fatalf("unquoted label value in %q", ln)
			}
		} else if i := strings.IndexByte(ln, ' '); i >= 0 {
			name = ln[:i]
		}
		if name != curFam {
			t.Fatalf("sample %q outside its family block (current %q)", ln, curFam)
		}
		for _, r := range name {
			if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_' || r == ':') {
				t.Fatalf("invalid character %q in metric name %q", r, name)
			}
		}
	}
}

func TestEscapeLabelValue(t *testing.T) {
	if got := escapeLabelValue("a\\b\"c\nd"); got != `a\\b\"c\nd` {
		t.Fatalf("escapeLabelValue = %q", got)
	}
}
