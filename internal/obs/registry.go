package obs

// The metrics registry. Components register counters, gauge functions,
// and histograms under stable labelled names; the epoch sampler (and
// any other consumer) gathers every series in registration order, which
// is deterministic because wiring happens single-threaded at build
// time. The registry is not safe for concurrent use — one Observer
// belongs to exactly one simulation run.

import (
	"fmt"

	"microbank/internal/stats"
)

// Kind discriminates registered metric types.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// Sample is one gathered (series name, value) pair.
type Sample struct {
	Name  string
	Value float64
}

type entry struct {
	name    string
	kind    Kind
	counter *stats.Counter
	gauge   func() float64
	hist    *stats.Histogram
}

// Registry holds all metrics of one simulation run.
type Registry struct {
	entries []entry
	index   map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: map[string]int{}}
}

// register adds an entry, panicking on a duplicate name: metric names
// are part of the tool's stable interface, and a collision is a wiring
// bug, not a runtime condition.
func (r *Registry) register(e entry) int {
	if _, dup := r.index[e.name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", e.name))
	}
	r.index[e.name] = len(r.entries)
	r.entries = append(r.entries, e)
	return len(r.entries) - 1
}

// Counter registers (or returns the existing) named counter.
func (r *Registry) Counter(name string, labels ...Label) *stats.Counter {
	fn := fullName(name, labels)
	if i, ok := r.index[fn]; ok {
		e := r.entries[i]
		if e.kind != KindCounter {
			panic(fmt.Sprintf("obs: metric %q re-registered as counter (was kind %d)", fn, e.kind))
		}
		return e.counter
	}
	c := &stats.Counter{}
	r.register(entry{name: fn, kind: KindCounter, counter: c})
	return c
}

// GaugeFunc registers a gauge whose value is computed on demand. The
// function is invoked exactly once per Gather, in registration order —
// stateful gauges (epoch-delta rates) may rely on that.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	r.register(entry{name: fullName(name, labels), kind: KindGauge, gauge: fn})
}

// Histogram registers (or returns the existing) named histogram. A
// histogram expands to five gathered series: .count, .mean, .p50, .p99,
// and .max.
func (r *Registry) Histogram(name string, labels ...Label) *stats.Histogram {
	fn := fullName(name, labels)
	if i, ok := r.index[fn]; ok {
		e := r.entries[i]
		if e.kind != KindHistogram {
			panic(fmt.Sprintf("obs: metric %q re-registered as histogram (was kind %d)", fn, e.kind))
		}
		return e.hist
	}
	h := &stats.Histogram{}
	r.register(entry{name: fn, kind: KindHistogram, hist: h})
	return h
}

// NumMetrics returns the number of registered metrics (histograms count
// once, not per expanded series).
func (r *Registry) NumMetrics() int { return len(r.entries) }

// histSuffixes are the expanded series of one histogram.
var histSuffixes = [...]string{".count", ".mean", ".p50", ".p99", ".max"}

// SeriesNames returns every gathered series name in registration order.
func (r *Registry) SeriesNames() []string {
	var out []string
	for _, e := range r.entries {
		if e.kind == KindHistogram {
			for _, s := range histSuffixes {
				out = append(out, e.name+s)
			}
			continue
		}
		out = append(out, e.name)
	}
	return out
}

// Gather evaluates every metric and returns one sample per series, in
// the same order as SeriesNames.
func (r *Registry) Gather() []Sample {
	out := make([]Sample, 0, len(r.entries))
	for _, e := range r.entries {
		switch e.kind {
		case KindCounter:
			out = append(out, Sample{e.name, float64(e.counter.Value())})
		case KindGauge:
			out = append(out, Sample{e.name, e.gauge()})
		case KindHistogram:
			h := e.hist
			out = append(out,
				Sample{e.name + ".count", float64(h.Count())},
				Sample{e.name + ".mean", h.Mean()},
				Sample{e.name + ".p50", float64(h.Quantile(0.5))},
				Sample{e.name + ".p99", float64(h.Quantile(0.99))},
				Sample{e.name + ".max", float64(h.Max())})
		}
	}
	return out
}
