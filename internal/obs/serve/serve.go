// Package serve exposes a running campaign's observability plane over
// HTTP: the merged metric registry in OpenMetrics text at /metrics,
// live epoch samples and sweep progress as server-sent events at
// /events, the campaign report-so-far as JSON at /status, and the
// standard net/http/pprof profiling mux at /debug/pprof/. Everything is
// read-side only, fed by an obs.Aggregator; the server never touches
// simulation state, so serving a run cannot perturb its results.
package serve

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"microbank/internal/obs"
)

// Server is one live observability endpoint.
type Server struct {
	agg *obs.Aggregator
	ln  net.Listener
	srv *http.Server
}

// New binds addr (e.g. "127.0.0.1:8080" or ":0") and starts serving
// the aggregator in a background goroutine. Binding happens before New
// returns, so the caller knows the endpoint is reachable (and can read
// the resolved port from Addr when addr used port 0).
func New(addr string, agg *obs.Aggregator) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s := &Server{agg: agg, ln: ln}
	s.srv = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // Close's ErrServerClosed is the normal exit
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server immediately (in-flight SSE streams are cut).
func (s *Server) Close() error { return s.srv.Close() }

// Handler returns the read-only observability mux (also used directly
// by tests via httptest).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.metrics)
	mux.HandleFunc("/status", s.status)
	mux.HandleFunc("/events", s.events)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	obs.WriteOpenMetrics(w, s.agg.Gather()) //nolint:errcheck // client went away
}

func (s *Server) status(w http.ResponseWriter, _ *http.Request) {
	body, err := s.agg.StatusJSON()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body) //nolint:errcheck // client went away
	w.Write([]byte("\n"))
}

// events streams aggregator events as server-sent events. Each event
// is `event: <type>` + `data: <json>`; the stream opens with a
// "status" event carrying the current campaign snapshot so a consumer
// needs no separate /status fetch to initialize.
func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	ch, cancel := s.agg.Subscribe(256)
	defer cancel()
	if snap, err := s.agg.StatusJSON(); err == nil {
		writeSSE(w, obs.Event{Type: "status", Data: snap})
		fl.Flush()
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if err := writeSSE(w, ev); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// writeSSE renders one event in text/event-stream framing. Payloads
// are JSON (no raw newlines), so a single data: line suffices.
func writeSSE(w http.ResponseWriter, ev obs.Event) error {
	_, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, ev.Data)
	return err
}
