package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"microbank/internal/obs"
)

func testAgg() *obs.Aggregator {
	a := obs.NewAggregator("test")
	s := a.BeginSweep(2)
	a.CellStarted(s, 0)
	a.CellDone(s, 0, []obs.Sample{{Name: "sim.windows", Value: 12}})
	a.CellFailed(obs.CellFailure{Sweep: s, Cell: 1, Kind: "deadline", Error: "slow", Attempts: 1})
	return a
}

func TestMetricsEndpoint(t *testing.T) {
	a := testAgg()
	srv := httptest.NewServer((&Server{agg: a}).Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Fatalf("content type = %q", ct)
	}
	out := string(body)
	for _, want := range []string{"# TYPE sim_windows gauge", "sim_windows 12",
		"sweep_failures 1", `sweep_failures{kind="deadline"} 1`, "# EOF\n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, out)
		}
	}
}

func TestStatusEndpoint(t *testing.T) {
	a := testAgg()
	srv := httptest.NewServer((&Server{agg: a}).Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st obs.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Experiment != "test" || st.Cells.Done != 1 || st.Cells.Failed != 1 {
		t.Fatalf("status = %+v", st)
	}
}

// TestEventsEndpoint reads the SSE stream: the initial status event,
// then a live event published after the subscription opened.
func TestEventsEndpoint(t *testing.T) {
	a := testAgg()
	srv := httptest.NewServer((&Server{agg: a}).Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	r := bufio.NewReader(resp.Body)
	readEvent := func() (typ, data string) {
		t.Helper()
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				t.Fatalf("stream ended early: %v (typ=%q data=%q)", err, typ, data)
			}
			line = strings.TrimSuffix(line, "\n")
			switch {
			case line == "" && typ != "":
				return typ, data
			case strings.HasPrefix(line, "event: "):
				typ = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				data = strings.TrimPrefix(line, "data: ")
			}
		}
	}

	typ, data := readEvent()
	if typ != "status" || !json.Valid([]byte(data)) {
		t.Fatalf("first event = %q %q, want valid status JSON", typ, data)
	}

	a.PublishEpoch(0, 0, 777, []string{"m"}, []float64{3})
	for {
		typ, data = readEvent()
		if typ != "epoch" {
			continue // progress/cell events may be interleaved
		}
		var ev struct {
			TPS    uint64             `json:"t_ps"`
			Series map[string]float64 `json:"series"`
		}
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.TPS != 777 || ev.Series["m"] != 3 {
			t.Fatalf("epoch event = %+v", ev)
		}
		return
	}
}

func TestPprofEndpoint(t *testing.T) {
	a := testAgg()
	srv := httptest.NewServer((&Server{agg: a}).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index: status %d, body %.80s", resp.StatusCode, body)
	}
}

// TestNewBindsBeforeReturn checks the real listener path: New returns
// with the port bound and Addr scrape-able, and Close shuts it down.
func TestNewBindsBeforeReturn(t *testing.T) {
	a := testAgg()
	s, err := New("127.0.0.1:0", a)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr() + "/status")
	if err != nil {
		t.Fatalf("endpoint not reachable right after New: %v", err)
	}
	resp.Body.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + s.Addr() + "/status"); err == nil {
		t.Fatal("server still reachable after Close")
	}
}
