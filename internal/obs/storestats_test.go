package obs

import (
	"encoding/json"
	"testing"
)

// TestAggregatorStoreStats: with a store-counter reader attached, the
// aggregator exports store.hits/misses/quarantined in Gather (ahead of
// merged cell series, collision-proof) and a store block in /status;
// without one, neither appears.
func TestAggregatorStoreStats(t *testing.T) {
	a := NewAggregator("headline")
	find := func(samples []Sample, name string) (float64, bool) {
		for _, s := range samples {
			if s.Name == name {
				return s.Value, true
			}
		}
		return 0, false
	}
	if _, ok := find(a.Gather(), "store.hits"); ok {
		t.Fatal("store.* series present with no store attached")
	}

	var hits, misses, quarantined uint64 = 5, 2, 1
	a.SetStoreStats(func() (uint64, uint64, uint64) { return hits, misses, quarantined })
	// A cell series colliding with the store names must lose to the
	// campaign view, like the sweep.* series do.
	sw := a.BeginSweep(1)
	a.CellStarted(sw, 0)
	a.CellDone(sw, 0, []Sample{{"store.hits", 999}, {"cell.metric", 7}})

	g := a.Gather()
	for name, want := range map[string]float64{
		"store.hits": 5, "store.misses": 2, "store.quarantined": 1, "cell.metric": 7,
	} {
		if v, ok := find(g, name); !ok || v != want {
			t.Fatalf("%s = %v (present=%v), want %v", name, v, ok, want)
		}
	}

	data, err := a.StatusJSON()
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if st.Store == nil || st.Store.Hits != 5 || st.Store.Misses != 2 || st.Store.Quarantined != 1 {
		t.Fatalf("status store block = %+v, want {5 2 1}", st.Store)
	}

	a.SetStoreStats(nil)
	if _, ok := find(a.Gather(), "store.misses"); ok {
		t.Fatal("store.* series survived detaching the reader")
	}
}
