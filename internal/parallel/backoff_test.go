package parallel

// Direct coverage for MapPolicy's retry backoff: the doubling schedule
// with its cap, the wall-clock lower bound a retried item must pay,
// and the determinism of per-item retry ordering under concurrency
// (this file is part of the -race CI sweep).

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestBackoffDoublingSeries pins the full doubling schedule from the
// base to the cap: backoffFor(base, n) = base << (n-1), saturating at
// maxBackoff, for every attempt index on the way up.
func TestBackoffDoublingSeries(t *testing.T) {
	base := 10 * time.Millisecond
	want := base
	for attempt := 1; attempt <= 16; attempt++ {
		got := backoffFor(base, attempt)
		if want > maxBackoff {
			if got != maxBackoff {
				t.Fatalf("attempt %d: backoff = %v, want cap %v", attempt, got, maxBackoff)
			}
		} else if got != want {
			t.Fatalf("attempt %d: backoff = %v, want %v", attempt, got, want)
		}
		want *= 2
	}
	// A shift past the word width must still saturate, not wrap to a
	// negative or tiny sleep.
	for _, attempt := range []int{40, 63, 64, 100} {
		if got := backoffFor(base, attempt); got != maxBackoff {
			t.Fatalf("attempt %d: backoff = %v, want cap %v", attempt, got, maxBackoff)
		}
	}
}

// TestMapPolicyRetryOrderingDeterministic runs a sweep where several
// items fail transiently a known number of times, under width > 1 and
// -race: every item's OnRetry sequence must be exactly 1, 2, ..., k in
// order (attempts of one item never interleave out of order, whatever
// the scheduler does), each item must succeed on the attempt after its
// last transient failure, and the total elapsed time must cover the
// doubling backoff every retried item paid.
func TestMapPolicyRetryOrderingDeterministic(t *testing.T) {
	const (
		n        = 8
		failures = 3 // transient failures per flaky item
		base     = 2 * time.Millisecond
	)
	transient := errors.New("transient")
	var (
		mu       sync.Mutex
		attempts = map[int][]int{} // item -> OnRetry attempt sequence
	)
	var counters [n]int
	pol := Policy{
		Mode:      FailDegrade,
		Retries:   failures,
		Backoff:   base,
		Retryable: func(err error) bool { return errors.Is(err, transient) },
		OnRetry: func(i, attempt int, err error) {
			if !errors.Is(err, transient) {
				t.Errorf("OnRetry item %d saw unexpected error %v", i, err)
			}
			mu.Lock()
			attempts[i] = append(attempts[i], attempt)
			mu.Unlock()
		},
	}
	items := make([]int, n)
	for i := range items {
		items[i] = i
	}
	start := time.Now()
	results, fails, err := MapPolicy(context.Background(), 4, items, pol,
		func(_ context.Context, i int) (int, error) {
			counters[i]++ // safe: attempts of one item are sequential
			if i%2 == 0 && counters[i] <= failures {
				return 0, transient
			}
			return i * 10, nil
		})
	elapsed := time.Since(start)
	if err != nil || len(fails) != 0 {
		t.Fatalf("sweep failed: err=%v fails=%v", err, fails)
	}
	for i, r := range results {
		if r != i*10 {
			t.Fatalf("result[%d] = %d, want %d", i, r, i*10)
		}
	}
	for i := 0; i < n; i++ {
		got := attempts[i]
		if i%2 != 0 {
			if len(got) != 0 {
				t.Fatalf("healthy item %d was retried: %v", i, got)
			}
			continue
		}
		if len(got) != failures {
			t.Fatalf("item %d retried %d times, want %d: %v", i, len(got), failures, got)
		}
		for k, a := range got {
			if a != k+1 {
				t.Fatalf("item %d attempt sequence out of order: %v", i, got)
			}
		}
		if counters[i] != failures+1 {
			t.Fatalf("item %d ran %d times, want %d", i, counters[i], failures+1)
		}
	}
	// Each flaky item slept base + 2·base + 4·base; with 4 workers and 4
	// flaky items, at least one worker paid the full series.
	if min := base * (1<<failures - 1); elapsed < min {
		t.Fatalf("sweep finished in %v, below the minimum backoff %v", elapsed, min)
	}
}

// TestMapPolicyExhaustionAttemptCount pins the attempt accounting when
// the retry budget runs out: Attempts on the TaskError is the first try
// plus every retry, and OnRetry fired exactly Retries times.
func TestMapPolicyExhaustionAttemptCount(t *testing.T) {
	transient := errors.New("still transient")
	var retries []int
	pol := Policy{
		Mode:      FailDegrade,
		Retries:   2,
		Retryable: func(err error) bool { return errors.Is(err, transient) },
		Digest:    func(i int) string { return fmt.Sprintf("cell %d", i) },
		OnRetry:   func(_, attempt int, _ error) { retries = append(retries, attempt) },
	}
	_, fails, err := MapPolicy(context.Background(), 1, []int{0}, pol,
		func(context.Context, int) (int, error) { return 0, transient })
	if err != nil {
		t.Fatalf("degrade sweep returned error: %v", err)
	}
	if len(fails) != 1 || fails[0].Attempts != 3 {
		t.Fatalf("fails = %+v, want one failure with Attempts=3", fails)
	}
	if len(retries) != 2 || retries[0] != 1 || retries[1] != 2 {
		t.Fatalf("OnRetry sequence = %v, want [1 2]", retries)
	}
	if fails[0].Digest != "cell 0" || !errors.Is(fails[0], transient) {
		t.Fatalf("failure lost its digest or cause: %+v", fails[0])
	}
}
