package parallel

// Shared intra-run worker budget. A simulation run on the windowed
// parallel engine (system.Spec.IntraParallelism) borrows extra worker
// tokens from a process-wide pool sized to the machine, so a sweep
// whose Map workers each request intra-run parallelism cannot
// oversubscribe the host: tokens granted to one run are unavailable to
// its siblings until released. Acquisition is non-blocking and partial
// — a run proceeds with whatever it gets (possibly zero extra workers)
// because its results are width-independent by construction.

import (
	"runtime"
	"sync/atomic"
)

// intraOut counts extra-worker tokens currently on loan; availability
// is GOMAXPROCS-1 minus the loans, evaluated at acquire time so the
// pool tracks runtime.GOMAXPROCS changes.
var intraOut atomic.Int64

// AcquireIntra takes up to n extra-worker tokens from the shared pool
// and returns how many it got, in [0, n]. Never blocks.
func AcquireIntra(n int) int {
	if n <= 0 {
		return 0
	}
	for {
		out := intraOut.Load()
		avail := int64(runtime.GOMAXPROCS(0)) - 1 - out
		if avail <= 0 {
			return 0
		}
		take := int64(n)
		if take > avail {
			take = avail
		}
		if intraOut.CompareAndSwap(out, out+take) {
			return int(take)
		}
	}
}

// ReleaseIntra returns tokens obtained from AcquireIntra to the pool.
func ReleaseIntra(n int) {
	if n > 0 {
		intraOut.Add(-int64(n))
	}
}
