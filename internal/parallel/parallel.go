// Package parallel provides the bounded worker-pool primitives the
// experiment layer fans independent simulations out with. Results are
// assembled in input order, so a parallel sweep produces output
// byte-identical to the serial loop it replaces; each simulation takes
// an explicit seed, so runs stay reproducible under any schedule.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Width returns the effective worker count for a requested width n:
// n itself when positive, otherwise runtime.GOMAXPROCS(0).
func Width(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// WorkerPanic is the value Map re-panics with in the caller's
// goroutine when a worker panicked: the original panic value plus the
// item index and the worker's stack at the point of the panic (the
// re-raise would otherwise show only Map's own frames).
type WorkerPanic struct {
	Index int
	Value any
	Stack string
}

// Error renders the panic; WorkerPanic satisfies error so recovered
// values compose with errors.As in callers that convert panics.
func (p *WorkerPanic) Error() string {
	return fmt.Sprintf("parallel: item %d panicked: %v", p.Index, p.Value)
}

// guard runs f on one item, converting a panic into (value, stack,
// true) instead of unwinding the worker goroutine.
func guard[T, R any](ctx context.Context, item T,
	f func(context.Context, T) (R, error)) (r R, err error, pv any, stack string, panicked bool) {
	defer func() {
		if v := recover(); v != nil {
			pv, stack, panicked = v, string(debug.Stack()), true
		}
	}()
	r, err = f(ctx, item)
	return
}

// Map applies f to every element of items using at most Width(width)
// concurrent workers and returns the results in input order. The first
// error cancels the derived context and stops workers from starting
// further items; when several items fail, the error of the
// lowest-index failure is returned (matching what a serial loop would
// have reported). On error the partial results are discarded.
//
// Worker panics are never swallowed: every in-flight item runs under a
// recover, the workers drain, and the panic is then re-raised in the
// caller's goroutine as a *WorkerPanic. The lowest-index guarantee
// holds for the panic path too — when several items panic, the
// lowest-index panic is the one re-raised — and a panic outranks any
// error or cancellation (including a context cancelled while the
// panicking item was still in flight): a panic marks a bug, so it must
// surface even when a lower-index error or the parent context has
// already cancelled the sweep. For panic-isolating semantics (panics
// reported as values instead of re-raised) use MapPolicy.
func Map[T, R any](ctx context.Context, width int, items []T,
	f func(context.Context, T) (R, error)) ([]R, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(items)
	results := make([]R, n)
	if n == 0 {
		return results, ctx.Err()
	}
	w := Width(width)
	if w > n {
		w = n
	}
	if w == 1 {
		// Serial fast path: no goroutines, exact serial error order;
		// panics unwind to the caller directly with their own stack.
		for i := range items {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := f(ctx, items[i])
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		errIdx   = -1
		firstPan *WorkerPanic
	)
	fail := func(i int, err error) {
		mu.Lock()
		if errIdx < 0 || i < errIdx {
			errIdx, firstErr = i, err
		}
		mu.Unlock()
		cancel()
	}
	recordPanic := func(p *WorkerPanic) {
		mu.Lock()
		if firstPan == nil || p.Index < firstPan.Index {
			firstPan = p
		}
		mu.Unlock()
		cancel()
	}
	wg.Add(w)
	for range w {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || wctx.Err() != nil {
					return
				}
				r, err, pv, stack, panicked := guard(wctx, items[i], f)
				if panicked {
					recordPanic(&WorkerPanic{Index: i, Value: pv, Stack: stack})
					return
				}
				if err != nil {
					fail(i, err)
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	if firstPan != nil {
		panic(firstPan)
	}
	if errIdx >= 0 {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// Sweep runs f(i) for every i in [0, n) using at most Width(width)
// concurrent workers. It is Map over an index range for sweeps whose
// stages write into caller-owned storage.
func Sweep(ctx context.Context, width, n int, f func(ctx context.Context, i int) error) error {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	_, err := Map(ctx, width, idx, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, f(ctx, i)
	})
	return err
}
