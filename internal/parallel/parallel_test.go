package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWidthClamping(t *testing.T) {
	if got := Width(4); got != 4 {
		t.Fatalf("Width(4) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Width(0); got != want {
		t.Fatalf("Width(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Width(-3); got != want {
		t.Fatalf("Width(-3) = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestMapOrderedResults(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, width := range []int{1, 2, 8, 200} {
		got, err := Map(context.Background(), width, items,
			func(_ context.Context, v int) (int, error) { return v * v, nil })
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		for i, r := range got {
			if r != i*i {
				t.Fatalf("width %d: result[%d] = %d, want %d", width, i, r, i*i)
			}
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const width = 3
	var cur, peak atomic.Int64
	_, err := Map(context.Background(), width, make([]struct{}, 50),
		func(context.Context, struct{}) (struct{}, error) {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return struct{}{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > width {
		t.Fatalf("peak concurrency %d exceeds width %d", p, width)
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(context.Background(), 8, nil,
		func(context.Context, int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("empty map: %v %v", got, err)
	}
}

func TestMapErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for _, width := range []int{1, 4} {
		got, err := Map(context.Background(), width, items,
			func(_ context.Context, v int) (int, error) {
				if v == 3 || v == 6 {
					return 0, fmt.Errorf("item %d: %w", v, boom)
				}
				return v, nil
			})
		if !errors.Is(err, boom) {
			t.Fatalf("width %d: err = %v, want wrapped boom", width, err)
		}
		if got != nil {
			t.Fatalf("width %d: partial results not discarded", width)
		}
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	// Item 0 fails slowly, item 5 fails fast; the error reported must
	// still be item 0's (the one a serial loop would have hit first).
	var release sync.WaitGroup
	release.Add(1)
	_, err := Map(context.Background(), 8, []int{0, 1, 2, 3, 4, 5},
		func(_ context.Context, v int) (int, error) {
			switch v {
			case 0:
				release.Wait()
				return 0, errors.New("slow failure at 0")
			case 5:
				defer release.Done()
				return 0, errors.New("fast failure at 5")
			}
			return v, nil
		})
	if err == nil || err.Error() != "slow failure at 0" {
		t.Fatalf("err = %v, want the index-0 failure", err)
	}
}

func TestMapErrorStopsNewWork(t *testing.T) {
	var started atomic.Int64
	_, err := Map(context.Background(), 2, make([]int, 1000),
		func(context.Context, int) (int, error) {
			if started.Add(1) == 1 {
				return 0, errors.New("first item fails")
			}
			time.Sleep(100 * time.Microsecond)
			return 0, nil
		})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := started.Load(); n == 1000 {
		t.Fatal("error did not stop the sweep early")
	}
}

func TestMapContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := Map(ctx, 2, make([]int, 1000),
			func(ctx context.Context, _ int) (int, error) {
				if started.Add(1) == 1 {
					cancel()
				}
				return 0, nil
			})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not stop the map")
	}
	if n := started.Load(); n == 1000 {
		t.Fatal("cancellation did not stop new work")
	}
}

func TestMapPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, width := range []int{1, 4} {
		_, err := Map(ctx, width, []int{1, 2, 3},
			func(context.Context, int) (int, error) { return 0, nil })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("width %d: err = %v, want context.Canceled", width, err)
		}
	}
}

func TestSweep(t *testing.T) {
	out := make([]int, 64)
	err := Sweep(context.Background(), 8, len(out), func(_ context.Context, i int) error {
		out[i] = i + 1
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	boom := errors.New("boom")
	err = Sweep(context.Background(), 4, 16, func(_ context.Context, i int) error {
		if i == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("sweep err = %v", err)
	}
}
