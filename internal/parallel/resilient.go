package parallel

// Resilient sweep execution: MapPolicy is Map with per-item panic
// isolation, a bounded-retry policy for transient failures, and a
// configurable failure mode, so a multi-hour campaign survives one
// pathological cell instead of tearing down atomically. Failures come
// back as structured TaskErrors (item index, config digest, attempt
// count, elapsed time, panic stack) that the experiment layer turns
// into report entries and metrics.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FailMode selects how a resilient sweep reacts to a failed work item.
type FailMode int

const (
	// FailFast cancels the sweep at the first failure; the error of the
	// lowest-index failure is returned, like Map.
	FailFast FailMode = iota
	// FailCollect runs every item to completion and reports all
	// failures together as one *SweepError; healthy results are still
	// returned.
	FailCollect
	// FailDegrade runs every item and returns the healthy results with
	// the failures listed separately; the sweep itself succeeds, so
	// callers can produce a partial grid with failed cells marked.
	FailDegrade
)

// String names the mode as accepted by the CLI -fail-mode flag.
func (m FailMode) String() string {
	switch m {
	case FailFast:
		return "fail-fast"
	case FailCollect:
		return "collect"
	case FailDegrade:
		return "degrade"
	default:
		return fmt.Sprintf("FailMode(%d)", int(m))
	}
}

// ParseFailMode maps a CLI flag value onto a FailMode.
func ParseFailMode(s string) (FailMode, error) {
	switch s {
	case "fail-fast":
		return FailFast, nil
	case "collect":
		return FailCollect, nil
	case "degrade":
		return FailDegrade, nil
	default:
		return FailFast, fmt.Errorf("unknown fail mode %q (fail-fast | collect | degrade)", s)
	}
}

// TaskError describes one failed work item: which item, how it failed
// (error or recovered panic), how many attempts were made, and how
// long the item ran in total. Digest carries the caller's description
// of the item's configuration so a failure in a multi-hour sweep names
// its cell without cross-referencing the job list.
type TaskError struct {
	Index    int
	Digest   string
	Attempts int
	Elapsed  time.Duration
	Panicked bool
	// Stack is the raw panic stack (debug.Stack) of the final attempt;
	// empty unless Panicked. CleanStack strips its nondeterministic
	// parts for report embedding.
	Stack string
	Err   error
}

// Error renders the failure.
func (e *TaskError) Error() string {
	what := fmt.Sprintf("task %d", e.Index)
	if e.Digest != "" {
		what += " (" + e.Digest + ")"
	}
	verb := "failed"
	if e.Panicked {
		verb = "panicked"
	}
	if e.Attempts > 1 {
		return fmt.Sprintf("%s %s after %d attempts: %v", what, verb, e.Attempts, e.Err)
	}
	return fmt.Sprintf("%s %s: %v", what, verb, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *TaskError) Unwrap() error { return e.Err }

// CleanStack returns the panic stack with its nondeterministic content
// removed, suitable for byte-stable reports.
func (e *TaskError) CleanStack() string { return CleanStack(e.Stack) }

// CleanStack strips the parts of a runtime stack trace that vary
// between otherwise identical runs of the same binary — goroutine ids,
// hexadecimal argument values, and instruction offsets — keeping only
// function names and file:line locations. Two runs that fail on the
// same code path therefore produce byte-identical cleaned stacks,
// which is what lets a resumed campaign reproduce its report exactly.
func CleanStack(s string) string {
	var out []string
	for _, ln := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		switch {
		case strings.HasPrefix(ln, "goroutine "):
			continue
		case strings.HasPrefix(ln, "\t"):
			// Location line: "\t/path/file.go:123 +0x5e".
			if i := strings.LastIndex(ln, " +0x"); i >= 0 {
				ln = ln[:i]
			}
		default:
			// Function line: strip the trailing argument list (the last
			// parenthesized group) and "in goroutine N" suffixes.
			if i := strings.Index(ln, " in goroutine "); i >= 0 {
				ln = ln[:i]
			}
			if strings.HasSuffix(ln, ")") {
				if i := strings.LastIndex(ln, "("); i >= 0 {
					ln = ln[:i]
				}
			}
		}
		if ln != "" {
			out = append(out, ln)
		}
	}
	return strings.Join(out, "\n")
}

// SweepError aggregates every failure of a FailCollect sweep.
type SweepError struct {
	Total    int // items in the sweep
	Failures []*TaskError
}

// Error summarizes the failures, spelling out the first few.
func (e *SweepError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d of %d tasks failed", len(e.Failures), e.Total)
	for i, f := range e.Failures {
		if i == 3 {
			fmt.Fprintf(&b, "; and %d more", len(e.Failures)-3)
			break
		}
		fmt.Fprintf(&b, "; %v", f)
	}
	return b.String()
}

// Unwrap exposes the lowest-index failure, so errors.Is/As see the
// same error a FailFast sweep would have returned.
func (e *SweepError) Unwrap() error {
	if len(e.Failures) == 0 {
		return nil
	}
	return e.Failures[0]
}

// Policy configures MapPolicy.
type Policy struct {
	Mode FailMode
	// Retries is the per-item retry budget beyond the first attempt.
	// Only errors Retryable reports true for are retried; panics never
	// are (a deterministic simulation panics the same way every time).
	Retries int
	// Backoff is the sleep before the first retry, doubling with each
	// further attempt (capped at 30s). Zero retries immediately.
	Backoff time.Duration
	// Retryable classifies an error as transient. Nil disables retries.
	Retryable func(error) bool
	// Digest, when non-nil, labels item i in failures — conventionally
	// a human-readable config digest of the sweep cell.
	Digest func(i int) string
	// OnRetry, when non-nil, observes each retry before its backoff
	// (feeds the sweep retry counters). Called from worker goroutines.
	OnRetry func(i, attempt int, err error)
}

// maxBackoff caps the exponential retry backoff.
const maxBackoff = 30 * time.Second

// backoffFor returns the sleep preceding retry number attempt (1-based
// count of completed attempts).
func backoffFor(base time.Duration, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base << (attempt - 1)
	if d <= 0 || d > maxBackoff {
		return maxBackoff
	}
	return d
}

// sleepCtx sleeps for d unless the context is cancelled first; it
// reports whether the full sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// MapPolicy applies f to every element of items like Map, with the
// sweep-survival semantics of pol: each item runs under a recover so a
// panicking cell becomes a *TaskError instead of tearing down the
// process, transient errors are retried with exponential backoff, and
// the failure mode decides whether one bad cell cancels the sweep
// (FailFast), fails it after running everything (FailCollect), or
// degrades it to a partial result set (FailDegrade).
//
// Results are assembled in input order and healthy cells are
// byte-identical to a serial run at any width. Failures are returned
// sorted by item index; failed cells hold the zero R. The returned
// error is the lowest-index *TaskError (FailFast), a *SweepError
// (FailCollect with failures), the context's error if the sweep was
// interrupted, or nil (FailDegrade, or no failures).
func MapPolicy[T, R any](ctx context.Context, width int, items []T, pol Policy,
	f func(context.Context, T) (R, error)) ([]R, []*TaskError, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(items)
	results := make([]R, n)
	if n == 0 {
		return results, nil, ctx.Err()
	}
	w := Width(width)
	if w > n {
		w = n
	}
	wctx := ctx
	cancel := func() {}
	if pol.Mode == FailFast {
		wctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		failures []*TaskError
	)
	record := func(te *TaskError) {
		mu.Lock()
		failures = append(failures, te)
		mu.Unlock()
		if pol.Mode == FailFast {
			cancel()
		}
	}
	runItem := func(i int) {
		start := time.Now()
		for attempt := 1; ; attempt++ {
			r, err, pv, stack, panicked := guard(wctx, items[i], f)
			if !panicked && err == nil {
				results[i] = r
				return
			}
			te := &TaskError{Index: i, Attempts: attempt, Panicked: panicked, Err: err}
			if pol.Digest != nil {
				te.Digest = pol.Digest(i)
			}
			if panicked {
				te.Stack = stack
				if perr, ok := pv.(error); ok {
					te.Err = perr
				} else {
					te.Err = fmt.Errorf("panic: %v", pv)
				}
			}
			retry := !panicked && attempt <= pol.Retries &&
				pol.Retryable != nil && pol.Retryable(te.Err) && wctx.Err() == nil
			if !retry {
				te.Elapsed = time.Since(start)
				record(te)
				return
			}
			if pol.OnRetry != nil {
				pol.OnRetry(i, attempt, te.Err)
			}
			if !sleepCtx(wctx, backoffFor(pol.Backoff, attempt)) {
				// Cancelled mid-backoff: report the last failure rather
				// than silently dropping the cell.
				te.Elapsed = time.Since(start)
				record(te)
				return
			}
		}
	}
	wg.Add(w)
	for range w {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || wctx.Err() != nil {
					return
				}
				runItem(i)
				if pol.Mode == FailFast && wctx.Err() != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	sort.Slice(failures, func(a, b int) bool { return failures[a].Index < failures[b].Index })

	if pol.Mode == FailFast {
		if len(failures) > 0 {
			return nil, failures, failures[0]
		}
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		return results, nil, nil
	}
	// Collect / degrade: an interrupted sweep is a campaign-level
	// failure regardless of mode — the caller must not mistake the
	// partial results for a degraded-but-complete grid.
	if err := ctx.Err(); err != nil {
		return nil, failures, err
	}
	if len(failures) == 0 {
		return results, nil, nil
	}
	if pol.Mode == FailCollect {
		return results, failures, &SweepError{Total: n, Failures: failures}
	}
	return results, failures, nil
}
