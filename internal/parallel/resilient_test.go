package parallel

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapPanicRacingCancellation drives a panic that lands while the
// derived context is already cancelled (a lower-index error cancelled
// the sweep first). The panic must still surface: it marks a bug, and
// swallowing it because of the race would hide that bug behind a
// routine error.
func TestMapPanicRacingCancellation(t *testing.T) {
	for round := 0; round < 20; round++ {
		var oneInFlight, zeroFailed sync.WaitGroup
		oneInFlight.Add(1)
		zeroFailed.Add(1)
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("round %d: panic swallowed after cancellation", round)
				}
				wp, ok := r.(*WorkerPanic)
				if !ok {
					t.Fatalf("round %d: recovered %T, want *WorkerPanic", round, r)
				}
				if wp.Index != 1 || wp.Value != "late panic" {
					t.Fatalf("round %d: got panic %+v", round, wp)
				}
				if !strings.Contains(wp.Stack, "resilient_test.go") {
					t.Fatalf("round %d: stack does not point at the panic site:\n%s", round, wp.Stack)
				}
			}()
			_, _ = Map(context.Background(), 2, []int{0, 1},
				func(ctx context.Context, v int) (int, error) {
					if v == 0 {
						// Error only once item 1 is in flight, so the
						// cancellation this error triggers races item 1's
						// panic rather than preventing item 1 from starting.
						oneInFlight.Wait()
						defer zeroFailed.Done()
						return 0, errors.New("early error at 0")
					}
					oneInFlight.Done()
					zeroFailed.Wait()
					for ctx.Err() == nil {
						time.Sleep(10 * time.Microsecond)
					}
					panic("late panic")
				})
			t.Fatalf("round %d: Map returned instead of panicking", round)
		}()
	}
}

// TestMapPanicRacingParentCancellation: same race, but the
// cancellation comes from the caller's own context rather than an
// erroring sibling. The panic still outranks context.Canceled.
func TestMapPanicRacingParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var oneInFlight sync.WaitGroup
	oneInFlight.Add(1)
	defer func() {
		r := recover()
		wp, ok := r.(*WorkerPanic)
		if !ok || wp.Value != "post-cancel panic" {
			t.Fatalf("recovered %v, want the worker panic", r)
		}
	}()
	_, _ = Map(ctx, 2, []int{0, 1},
		func(ctx context.Context, v int) (int, error) {
			if v == 0 {
				oneInFlight.Wait()
				cancel()
				return 0, nil
			}
			oneInFlight.Done()
			<-ctx.Done()
			panic("post-cancel panic")
		})
	t.Fatal("Map returned instead of panicking")
}

// TestMapLowestIndexPanic: when several items panic, the re-raised
// panic is the lowest-index one — the same guarantee Map documents for
// errors.
func TestMapLowestIndexPanic(t *testing.T) {
	var release sync.WaitGroup
	release.Add(1)
	defer func() {
		r := recover()
		wp, ok := r.(*WorkerPanic)
		if !ok {
			t.Fatalf("recovered %T, want *WorkerPanic", r)
		}
		if wp.Index != 0 {
			t.Fatalf("re-raised panic from item %d, want item 0", wp.Index)
		}
	}()
	_, _ = Map(context.Background(), 8, []int{0, 1, 2, 3},
		func(_ context.Context, v int) (int, error) {
			switch v {
			case 0:
				release.Wait() // panic last...
				panic("slow panic at 0")
			case 3:
				defer release.Done()
				panic("fast panic at 3") // ...after item 3 already panicked
			}
			return v, nil
		})
	t.Fatal("Map returned instead of panicking")
}

// TestMapSerialPathPanics: width 1 takes the no-goroutine fast path;
// the panic unwinds to the caller directly rather than as WorkerPanic.
func TestMapSerialPathPanics(t *testing.T) {
	defer func() {
		if r := recover(); r != "serial panic" {
			t.Fatalf("recovered %v, want the raw panic value", r)
		}
	}()
	_, _ = Map(context.Background(), 1, []int{0},
		func(context.Context, int) (int, error) { panic("serial panic") })
	t.Fatal("Map returned instead of panicking")
}

func TestParseFailMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FailMode
	}{{"fail-fast", FailFast}, {"collect", FailCollect}, {"degrade", FailDegrade}} {
		got, err := ParseFailMode(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseFailMode(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("FailMode round-trip: %q -> %q", tc.in, got.String())
		}
	}
	if _, err := ParseFailMode("explode"); err == nil {
		t.Fatal("ParseFailMode accepted garbage")
	}
}

// TestMapPolicyDegrade: a panicking cell and an erroring cell in
// degrade mode leave the sweep healthy — full-length results with the
// failed cells zeroed, failures reported structurally, nil error.
func TestMapPolicyDegrade(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5}
	for _, width := range []int{1, 3} {
		res, fails, err := MapPolicy(context.Background(), width, items,
			Policy{Mode: FailDegrade, Digest: func(i int) string { return fmt.Sprintf("cell%d", i) }},
			func(_ context.Context, v int) (int, error) {
				switch v {
				case 2:
					panic("bad cell")
				case 4:
					return 0, errors.New("sim diverged")
				}
				return v * 10, nil
			})
		if err != nil {
			t.Fatalf("width %d: degrade sweep errored: %v", width, err)
		}
		want := []int{0, 10, 0, 30, 0, 50}
		for i := range want {
			if res[i] != want[i] {
				t.Fatalf("width %d: res[%d] = %d, want %d", width, i, res[i], want[i])
			}
		}
		if len(fails) != 2 || fails[0].Index != 2 || fails[1].Index != 4 {
			t.Fatalf("width %d: failures = %+v", width, fails)
		}
		if !fails[0].Panicked || fails[0].Stack == "" || fails[0].Digest != "cell2" {
			t.Fatalf("width %d: panic failure not fully described: %+v", width, fails[0])
		}
		if fails[1].Panicked || fails[1].Err.Error() != "sim diverged" {
			t.Fatalf("width %d: error failure mislabelled: %+v", width, fails[1])
		}
	}
}

// TestMapPolicyCollect: everything runs, all failures aggregate into
// one SweepError whose Unwrap chain reaches the lowest-index failure.
func TestMapPolicyCollect(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("boom")
	_, fails, err := MapPolicy(context.Background(), 4, make([]int, 20),
		Policy{Mode: FailCollect},
		func(_ context.Context, _ int) (int, error) {
			if n := ran.Add(1); n%5 == 0 {
				return 0, boom
			}
			return 1, nil
		})
	if ran.Load() != 20 {
		t.Fatalf("collect mode ran only %d/20 items", ran.Load())
	}
	var se *SweepError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *SweepError", err)
	}
	if len(se.Failures) != len(fails) || se.Total != 20 {
		t.Fatalf("SweepError = %+v vs fails %d", se, len(fails))
	}
	if !errors.Is(err, boom) {
		t.Fatalf("SweepError does not unwrap to the underlying failure: %v", err)
	}
}

// TestMapPolicyFailFast: the sweep cancels early and returns the
// lowest-index TaskError; a panic becomes an error value, not a panic.
func TestMapPolicyFailFast(t *testing.T) {
	var started atomic.Int64
	_, fails, err := MapPolicy(context.Background(), 2, make([]int, 1000),
		Policy{Mode: FailFast},
		func(_ context.Context, _ int) (int, error) {
			if started.Add(1) == 1 {
				panic("first cell explodes")
			}
			time.Sleep(100 * time.Microsecond)
			return 0, nil
		})
	var te *TaskError
	if !errors.As(err, &te) || !te.Panicked {
		t.Fatalf("err = %v, want a panicked *TaskError", err)
	}
	if len(fails) == 0 || fails[0] != te {
		t.Fatalf("returned error is not the lowest-index failure")
	}
	if n := started.Load(); n == 1000 {
		t.Fatal("fail-fast did not stop the sweep early")
	}
}

// TestMapPolicyRetries: a transiently failing item succeeds within its
// retry budget; attempts are counted and OnRetry observes each one.
func TestMapPolicyRetries(t *testing.T) {
	var attempts atomic.Int64
	var retries atomic.Int64
	transient := errors.New("transient")
	res, fails, err := MapPolicy(context.Background(), 1, []int{0},
		Policy{
			Mode:      FailDegrade,
			Retries:   3,
			Retryable: func(err error) bool { return errors.Is(err, transient) },
			OnRetry:   func(i, attempt int, err error) { retries.Add(1) },
		},
		func(_ context.Context, _ int) (int, error) {
			if attempts.Add(1) < 3 {
				return 0, transient
			}
			return 42, nil
		})
	if err != nil || len(fails) != 0 || res[0] != 42 {
		t.Fatalf("retry sweep: res=%v fails=%v err=%v", res, fails, err)
	}
	if attempts.Load() != 3 || retries.Load() != 2 {
		t.Fatalf("attempts=%d retries=%d, want 3 and 2", attempts.Load(), retries.Load())
	}
}

// TestMapPolicyRetryBudgetExhausted: a persistently failing item
// reports the full attempt count in its TaskError.
func TestMapPolicyRetryBudgetExhausted(t *testing.T) {
	stubborn := errors.New("stubborn")
	_, fails, err := MapPolicy(context.Background(), 1, []int{0},
		Policy{Mode: FailDegrade, Retries: 2, Retryable: func(error) bool { return true }},
		func(_ context.Context, _ int) (int, error) { return 0, stubborn })
	if err != nil || len(fails) != 1 {
		t.Fatalf("fails=%v err=%v", fails, err)
	}
	if fails[0].Attempts != 3 || !errors.Is(fails[0], stubborn) {
		t.Fatalf("failure = %+v, want 3 attempts wrapping stubborn", fails[0])
	}
}

// TestMapPolicyPanicsNeverRetried: the simulator is deterministic, so
// a panicking cell panics identically on every attempt — retrying it
// only burns time.
func TestMapPolicyPanicsNeverRetried(t *testing.T) {
	var attempts atomic.Int64
	_, fails, _ := MapPolicy(context.Background(), 1, []int{0},
		Policy{Mode: FailDegrade, Retries: 5, Retryable: func(error) bool { return true }},
		func(_ context.Context, _ int) (int, error) {
			attempts.Add(1)
			panic("deterministic panic")
		})
	if attempts.Load() != 1 {
		t.Fatalf("panicking cell attempted %d times, want 1", attempts.Load())
	}
	if len(fails) != 1 || fails[0].Attempts != 1 {
		t.Fatalf("fails = %+v", fails)
	}
}

// TestMapPolicyParentCancellation: caller-level cancellation is an
// interruption, not a degraded completion — even degrade mode must
// return the context error so partial results aren't mistaken for a
// finished grid.
func TestMapPolicyParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	_, _, err := MapPolicy(ctx, 2, make([]int, 1000),
		Policy{Mode: FailDegrade},
		func(context.Context, int) (int, error) {
			if started.Add(1) == 3 {
				cancel()
			}
			return 0, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestTaskErrorRendering(t *testing.T) {
	te := &TaskError{Index: 7, Digest: "nW=4 nB=8", Attempts: 3, Err: errors.New("boom")}
	if got := te.Error(); got != "task 7 (nW=4 nB=8) failed after 3 attempts: boom" {
		t.Fatalf("Error() = %q", got)
	}
	te = &TaskError{Index: 2, Panicked: true, Attempts: 1, Err: errors.New("panic: bad")}
	if got := te.Error(); got != "task 2 panicked: panic: bad" {
		t.Fatalf("Error() = %q", got)
	}
}

// TestCleanStackDeterministic: two panics on the same code path clean
// to byte-identical stacks — goroutine ids, argument hex, and +0x
// offsets are the only parts that differ run to run.
func TestCleanStackDeterministic(t *testing.T) {
	grab := func() string {
		_, fails, _ := MapPolicy(context.Background(), 2, []int{0, 1},
			Policy{Mode: FailDegrade},
			func(_ context.Context, v int) (int, error) {
				if v == 1 {
					panic("same path")
				}
				return v, nil
			})
		if len(fails) != 1 {
			t.Fatalf("fails = %v", fails)
		}
		return fails[0].CleanStack()
	}
	a, b := grab(), grab()
	if a != b {
		t.Fatalf("cleaned stacks differ:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	if a == "" || strings.Contains(a, "goroutine ") || strings.Contains(a, "+0x") {
		t.Fatalf("stack not cleaned:\n%s", a)
	}
	if !strings.Contains(a, "resilient_test.go") {
		t.Fatalf("cleaned stack lost the panic site:\n%s", a)
	}
}

func TestBackoffFor(t *testing.T) {
	base := 10 * time.Millisecond
	if d := backoffFor(base, 1); d != base {
		t.Fatalf("first backoff = %v", d)
	}
	if d := backoffFor(base, 3); d != 40*time.Millisecond {
		t.Fatalf("third backoff = %v", d)
	}
	if d := backoffFor(base, 60); d != maxBackoff {
		t.Fatalf("overflowed backoff = %v, want cap %v", d, maxBackoff)
	}
	if d := backoffFor(0, 5); d != 0 {
		t.Fatalf("zero base backoff = %v", d)
	}
}
