// Package qos derives an analytic per-request worst-case interference
// bound for a memory configuration under the controller's bandwidth
// regulator, in the spirit of Yun et al., "Parallelism-Aware Memory
// Interference Delay Analysis for COTS Multicore Systems" (2014; see
// PAPERS.md). The bound is deliberately conservative — it composes
// closed-form capacities rather than simulating — and exists to be
// asserted against: a property test drives the simulator with random
// co-runner mixes and checks that no serviced request's latency ever
// exceeds Analyze's bound (internal/qos tests, CI qos-matrix job).
//
// The analysis is epoch-capacity based. With a per-(thread, bank)
// budget of B column accesses per replenishment epoch E, an epoch can
// carry at most C = threads × banks × B services, each occupying the
// shared column/data bus for at most one "column gap". If E exceeds
// that capacity plus one worst-case bank conflict path plus the
// refresh blackouts the epoch may contain, then every epoch in which
// any admitted request is pending retires at least one request; a
// budget-blocked queue costs at most one extra epoch before
// replenishment. A request therefore waits at most (heads + 2) such
// epochs, doubled for admit/blocked alternation, where heads bounds
// how many services the scheduler may order before it.
//
// The reordering depth depends on the scheduler:
//
//   - FCFS: per-bank service is in arrival order and every competitor
//     holds at most its outstanding quota, so heads = W, the total
//     outstanding window (threads × per-thread outstanding).
//   - PAR-BS: a request may stay unmarked while older same-(thread,
//     bank) requests fill the per-batch cap, then its own batch must
//     drain; heads = (ceil((K−1)/BatchCap) + 1) × W for per-thread
//     outstanding K.
//   - FR-FCFS: row-hit preference can reorder an unbounded stream of
//     younger hits ahead of an older miss — even the regulator cannot
//     stop a thread's own younger hits from consuming its budget ahead
//     of its older miss. The analysis reports Unbounded.
//
// Without the regulator every scheduler here is Unbounded: cross-bank
// arbitration prefers row hits, so a hit stream can starve a miss
// indefinitely.
package qos

import (
	"fmt"

	"microbank/internal/config"
	"microbank/internal/sim"
)

// Harness describes the closed-loop co-runner mix the bound must hold
// for: Threads generators, each keeping MaxOutstanding requests in
// flight. The analysis requires Threads×MaxOutstanding to fit in the
// controller's scheduling window (otherwise a request can sit beyond
// the window indefinitely and no bound exists).
type Harness struct {
	Threads        int
	MaxOutstanding int
}

// Window returns the total outstanding-request window W.
func (h Harness) Window() int { return h.Threads * h.MaxOutstanding }

// Analysis is the outcome of Analyze: either a finite worst-case
// request latency (BoundPS) or Unbounded with the starvation Reason.
// The component fields document how the bound was composed.
type Analysis struct {
	BoundPS   sim.Time
	Unbounded bool
	Reason    string

	// Window is W = Threads × MaxOutstanding; Heads the scheduler
	// reordering depth (services that may be ordered before a request).
	Window int
	Heads  int
	// EpochPS is the regulator epoch; SlotPS the worst-case bank
	// conflict path; ForeignPS the epoch's regulated bus capacity;
	// RefreshPS the blackout time an epoch may contain.
	EpochPS   sim.Time
	SlotPS    sim.Time
	ForeignPS sim.Time
	RefreshPS sim.Time
}

// Check asserts an observed maximum request latency against the bound.
// It returns an error when the analysis is unbounded (nothing can be
// asserted) or when the observation exceeds the bound — the latter
// means either the analysis or the simulator is wrong, which is
// exactly what the property test exists to catch.
func (a Analysis) Check(maxObservedPS sim.Time) error {
	if a.Unbounded {
		return fmt.Errorf("qos: no finite bound: %s", a.Reason)
	}
	if maxObservedPS > a.BoundPS {
		return fmt.Errorf("qos: observed max latency %d ps exceeds analytic worst case %d ps (W=%d heads=%d epoch=%d slot=%d foreign=%d refresh=%d)",
			uint64(maxObservedPS), uint64(a.BoundPS), a.Window, a.Heads,
			uint64(a.EpochPS), uint64(a.SlotPS), uint64(a.ForeignPS), uint64(a.RefreshPS))
	}
	return nil
}

// unbounded builds an Unbounded analysis with the given reason.
func unbounded(h Harness, reason string) Analysis {
	return Analysis{Unbounded: true, Reason: reason, Window: h.Window()}
}

// Analyze computes the worst-case per-request latency for one channel
// of the given memory configuration under controller configuration ctl
// and the closed-loop harness h. See the package comment for the
// model; every composition step rounds against the requester.
func Analyze(mem config.Mem, ctl config.Ctrl, h Harness) Analysis {
	if h.Threads <= 0 || h.MaxOutstanding <= 0 {
		return unbounded(h, "empty harness")
	}
	w := h.Window()
	if w > ctl.QueueDepth {
		return unbounded(h, fmt.Sprintf("outstanding window %d exceeds scheduling window %d: requests beyond the window cannot be scheduled", w, ctl.QueueDepth))
	}
	if ctl.BankBudget <= 0 {
		return unbounded(h, "bandwidth regulator off: row-hit streams can starve older misses indefinitely")
	}
	if ctl.Scheduler == config.SchedFRFCFS {
		return unbounded(h, "FR-FCFS has no row-hit streak cap: younger hits reorder ahead of an older miss without limit")
	}

	tm := mem.Timing
	o := mem.Org
	nbanks := o.RanksPerChan * o.BanksPerRank * o.NW * o.NB * o.Subarrays()

	epoch := ctl.RegEpoch
	if epoch <= 0 {
		epoch = config.DefaultRegEpoch
	}

	// Worst-case shared-bus occupancy per column access: command
	// spacing, the burst itself, and the worst turnaround (write-to-
	// read, rank switch, or the fixed read-to-write gap).
	turn := tm.TWTR
	if t := tm.TRTRS + tm.TCCD; t > turn {
		turn = t
	}
	if t := 2 * sim.Nanosecond; t > turn {
		turn = t
	}
	colGap := tm.TCCD + tm.TBL + turn

	// Worst-case conflict path to service one bank-head request on a
	// quiet bus: wait out the previous access's recovery (row restore,
	// write recovery, or read-to-precharge), precharge, activate
	// (possibly stalled a full four-activate window), then the column
	// access and burst.
	recover := tm.TRAS
	if t := tm.TRCD + tm.TAA + tm.TBL + tm.TWR; t > recover {
		recover = t
	}
	if t := tm.TRCD + tm.TRTP; t > recover {
		recover = t
	}
	slot := recover + tm.TRP + tm.TRCD + tm.TAA + tm.TBL + tm.TFAW

	// Per-epoch regulated capacity: every (thread, bank) pair may
	// consume its full budget, each service costing one column gap.
	foreign := sim.Time(h.Threads*nbanks*ctl.BankBudget) * colGap

	// Refresh blackout an epoch may contain. Per-bank refresh shortens
	// the blackout but runs banks× as often; all-bank stalls the whole
	// channel for tRFC per tREFI. Either way, bound the blackout time
	// inside one epoch.
	var refresh sim.Time
	if tm.TREFI > 0 {
		n := int64(epoch/tm.TREFI) + 1
		per := tm.TRFC
		if tm.PerBankRefresh {
			// REFpb: blackouts are tRFC/banks long but tREFI/banks apart;
			// the per-epoch total is the same to first order.
			nb := int64(o.BanksPerRank * o.RanksPerChan)
			n = int64(epoch/(tm.TREFI/sim.Time(nb))) + 1
			per = tm.TRFC / sim.Time(nb)
			if per < sim.Nanosecond {
				per = sim.Nanosecond
			}
		}
		refresh = sim.Time(n) * per
	}

	if epoch < foreign+slot+refresh {
		return unbounded(h, fmt.Sprintf("regulator epoch %d ps saturated: regulated traffic %d + conflict path %d + refresh %d ps can fill it, so no per-epoch progress is guaranteed", uint64(epoch), uint64(foreign), uint64(slot), uint64(refresh)))
	}

	// Scheduler reordering depth.
	heads := w
	if ctl.Scheduler == config.SchedPARBS {
		bcap := ctl.BatchCap
		if bcap <= 0 {
			bcap = 1
		}
		batches := (h.MaxOutstanding-1+bcap-1)/bcap + 1
		heads = batches * w
	}

	// Each head costs at most one progress epoch; doubled because a
	// fully budget-blocked queue spends an idle epoch awaiting
	// replenishment; +2 epochs for arrival mid-epoch and the request's
	// own service epoch.
	bound := sim.Time(2*(heads+2)) * epoch
	return Analysis{
		BoundPS:   bound,
		Window:    w,
		Heads:     heads,
		EpochPS:   epoch,
		SlotPS:    slot,
		ForeignPS: foreign,
		RefreshPS: refresh,
	}
}
