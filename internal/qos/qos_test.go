package qos

// The analytic bound is only worth having if the simulator is held to
// it: the property test below drives the real controller with
// randomized closed-loop co-runner mixes (streaming and random threads,
// mixed read/write) under the bandwidth regulator and asserts that no
// serviced request's latency ever exceeds Analyze's worst case — for
// FCFS and PAR-BS, with and without SALP subarrays. The seeded
// violation test then proves the checker has teeth: an analysis fed an
// understated replenishment epoch must reject the same simulation.

import (
	"math/rand"
	"testing"

	"microbank/internal/config"
	"microbank/internal/memctrl"
	"microbank/internal/sim"
)

// runClosedLoop drives one controller with h.Threads generators, each
// keeping h.MaxOutstanding requests in flight until it has retired
// perThread requests, and returns the maximum observed request latency
// (enqueue to data completion). Threads get randomized personalities
// from seed: streaming (row-friendly strides) or uniform-random
// addressing, with a randomized write fraction.
func runClosedLoop(mem config.Mem, ctl config.Ctrl, h Harness, seed int64, perThread int) sim.Time {
	eng := sim.NewEngine()
	c := memctrl.New(eng, mem, ctl, h.Threads)
	rng := rand.New(rand.NewSource(seed))
	var maxLat sim.Time

	type gen struct {
		remaining int
		stream    bool
		next      uint64
		writePct  int
	}
	gens := make([]*gen, h.Threads)
	for t := range gens {
		gens[t] = &gen{
			remaining: perThread,
			stream:    rng.Intn(2) == 0,
			next:      rng.Uint64() % (1 << 26),
			writePct:  rng.Intn(40),
		}
	}
	var launch func(th int)
	launch = func(th int) {
		g := gens[th]
		if g.remaining <= 0 {
			return
		}
		g.remaining--
		var a uint64
		if g.stream {
			a = g.next
			g.next += 64
		} else {
			a = rng.Uint64() % (1 << 26)
		}
		r := &memctrl.Request{
			Addr:   a &^ 63,
			Write:  rng.Intn(100) < g.writePct,
			Thread: th,
		}
		start := eng.Now()
		r.Done = func(at sim.Time) {
			if lat := at - start; lat > maxLat {
				maxLat = lat
			}
			launch(th)
		}
		c.Enqueue(r)
	}
	for th := 0; th < h.Threads; th++ {
		for k := 0; k < h.MaxOutstanding; k++ {
			launch(th)
		}
	}
	eng.Run()
	return maxLat
}

// qosMem returns the single-channel memory configuration the property
// runs use, with the requested SALP subarray count.
func qosMem(subs int) config.Mem {
	mem := config.MemPreset(config.LPDDRTSI, 1, 1)
	mem.Org.Channels = 1
	mem.Org.SubarraysPerBank = subs
	return mem
}

// TestAnalyticBoundProperty is the tentpole assertion: across
// schedulers, SALP settings, and seeds, the simulated worst-case
// latency under the regulator stays below the analytic bound.
func TestAnalyticBoundProperty(t *testing.T) {
	h := Harness{Threads: 4, MaxOutstanding: 4}
	cases := []struct {
		name   string
		sched  config.Scheduler
		subs   int
		budget int
		epoch  sim.Time
	}{
		{"fcfs", config.SchedFCFS, 0, 2, 4000 * sim.Nanosecond},
		{"parbs", config.SchedPARBS, 0, 2, 4000 * sim.Nanosecond},
		{"fcfs-salp4", config.SchedFCFS, 4, 1, 8000 * sim.Nanosecond},
		{"parbs-salp4", config.SchedPARBS, 4, 1, 8000 * sim.Nanosecond},
	}
	perThread := 300
	seeds := []int64{11, 23, 47}
	if testing.Short() {
		perThread = 120
		seeds = seeds[:1]
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			mem := qosMem(tc.subs)
			ctl := config.DefaultCtrl()
			ctl.Scheduler = tc.sched
			ctl.BankBudget = tc.budget
			ctl.RegEpoch = tc.epoch
			a := Analyze(mem, ctl, h)
			if a.Unbounded {
				t.Fatalf("expected a finite bound, got unbounded: %s", a.Reason)
			}
			for _, seed := range seeds {
				maxLat := runClosedLoop(mem, ctl, h, seed, perThread)
				if maxLat == 0 {
					t.Fatalf("seed %d: no requests serviced", seed)
				}
				if err := a.Check(maxLat); err != nil {
					t.Errorf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

// TestSeededViolation proves the checker trips: the simulation runs
// with a 50 μs replenishment epoch (single-bank traffic, budget 1, so
// deferred requests genuinely wait epochs out), while the analysis is
// fed a config claiming 2 μs replenishment. The observed latency must
// exceed the understated bound and Check must reject it.
func TestSeededViolation(t *testing.T) {
	h := Harness{Threads: 4, MaxOutstanding: 4}
	mem := qosMem(0)
	ctl := config.DefaultCtrl()
	ctl.Scheduler = config.SchedFCFS
	ctl.BankBudget = 1
	ctl.RegEpoch = 50000 * sim.Nanosecond

	// All threads hammer one row of one bank: per epoch each thread is
	// granted one access there, so with 16 outstanding the tail request
	// waits several 50 μs epochs.
	eng := sim.NewEngine()
	c := memctrl.New(eng, mem, ctl, h.Threads)
	var maxLat sim.Time
	perThread := 20
	remaining := make([]int, h.Threads)
	line := uint64(0)
	var launch func(th int)
	launch = func(th int) {
		if remaining[th] <= 0 {
			return
		}
		remaining[th]--
		r := &memctrl.Request{Addr: (line * 64) % 2048, Thread: th}
		line++
		start := eng.Now()
		r.Done = func(at sim.Time) {
			if lat := at - start; lat > maxLat {
				maxLat = lat
			}
			launch(th)
		}
		c.Enqueue(r)
	}
	for th := 0; th < h.Threads; th++ {
		remaining[th] = perThread
		for k := 0; k < h.MaxOutstanding; k++ {
			launch(th)
		}
	}
	eng.Run()

	lied := ctl
	lied.RegEpoch = 2000 * sim.Nanosecond
	a := Analyze(mem, lied, h)
	if a.Unbounded {
		t.Fatalf("understated analysis should still be bounded, got: %s", a.Reason)
	}
	if maxLat <= a.BoundPS {
		t.Fatalf("harness did not produce an over-bound latency: max %d ps vs bound %d ps", uint64(maxLat), uint64(a.BoundPS))
	}
	if err := a.Check(maxLat); err == nil {
		t.Fatalf("checker failed to trip on over-budget config: max %d ps, bound %d ps", uint64(maxLat), uint64(a.BoundPS))
	}
}

// TestAnalyzeUnboundedCases pins the starvation taxonomy: FR-FCFS,
// unregulated controllers, and over-window harnesses have no bound.
func TestAnalyzeUnboundedCases(t *testing.T) {
	mem := qosMem(0)
	h := Harness{Threads: 4, MaxOutstanding: 4}

	ctl := config.DefaultCtrl()
	ctl.Scheduler = config.SchedFRFCFS
	ctl.BankBudget = 2
	if a := Analyze(mem, ctl, h); !a.Unbounded {
		t.Errorf("FR-FCFS must be unbounded, got bound %d", a.BoundPS)
	}

	ctl = config.DefaultCtrl()
	ctl.Scheduler = config.SchedFCFS
	if a := Analyze(mem, ctl, h); !a.Unbounded {
		t.Errorf("unregulated FCFS must be unbounded, got bound %d", a.BoundPS)
	}

	ctl.BankBudget = 2
	big := Harness{Threads: 16, MaxOutstanding: 4} // W=64 > QueueDepth 32
	if a := Analyze(mem, ctl, big); !a.Unbounded {
		t.Errorf("over-window harness must be unbounded, got bound %d", a.BoundPS)
	}

	// A saturated epoch (huge budget, tiny epoch) guarantees nothing.
	ctl.BankBudget = 1000
	ctl.RegEpoch = 100 * sim.Nanosecond
	if a := Analyze(mem, ctl, h); !a.Unbounded {
		t.Errorf("saturated epoch must be unbounded, got bound %d", a.BoundPS)
	}
}

// TestAnalyzeComposition sanity-checks the bound's structure: PAR-BS
// reorders deeper than FCFS, and SALP's extra pseudo-banks raise the
// per-epoch regulated capacity.
func TestAnalyzeComposition(t *testing.T) {
	h := Harness{Threads: 4, MaxOutstanding: 4}
	ctl := config.DefaultCtrl()
	ctl.Scheduler = config.SchedFCFS
	ctl.BankBudget = 1
	ctl.RegEpoch = 8000 * sim.Nanosecond

	fcfs := Analyze(qosMem(0), ctl, h)
	if fcfs.Unbounded {
		t.Fatalf("fcfs: %s", fcfs.Reason)
	}
	ctl.Scheduler = config.SchedPARBS
	parbs := Analyze(qosMem(0), ctl, h)
	if parbs.Unbounded {
		t.Fatalf("parbs: %s", parbs.Reason)
	}
	if parbs.Heads <= fcfs.Heads || parbs.BoundPS <= fcfs.BoundPS {
		t.Errorf("PAR-BS must reorder deeper than FCFS: heads %d vs %d, bound %d vs %d",
			parbs.Heads, fcfs.Heads, parbs.BoundPS, fcfs.BoundPS)
	}
	ctl.Scheduler = config.SchedFCFS
	salp := Analyze(qosMem(4), ctl, h)
	if salp.Unbounded {
		t.Fatalf("salp: %s", salp.Reason)
	}
	if salp.ForeignPS <= fcfs.ForeignPS {
		t.Errorf("SALP must raise regulated capacity: %d vs %d", salp.ForeignPS, fcfs.ForeignPS)
	}
}
