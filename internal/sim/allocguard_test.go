package sim

import "testing"

// TestScheduleStepZeroAllocGuard is the benchmark guard behind the
// observability layer's "disabled means free" contract: with no tracer
// or sampler attached, the engine's steady-state schedule/fire and
// schedule/cancel paths must not allocate. A regression here (a new
// per-event allocation, an interface box on the hot path) fails this
// test rather than silently shifting the benchmark baselines.
//
// Skipped under the race detector, whose instrumentation allocates.
func TestScheduleStepZeroAllocGuard(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is not meaningful under -race")
	}
	e := NewEngine()
	fn := func(*Engine) {}
	// Warm the event free list past several block grants so the
	// measured window recycles records instead of growing the arena.
	for i := 0; i < 4*eventBlock; i++ {
		e.Schedule(e.Now()+1, fn)
	}
	e.Run()

	if avg := testing.AllocsPerRun(1000, func() {
		e.Schedule(e.Now()+1, fn)
		e.Step()
	}); avg != 0 {
		t.Errorf("schedule+step allocates %.2f allocs/op, want 0", avg)
	}

	if avg := testing.AllocsPerRun(1000, func() {
		ev := e.Schedule(e.Now()+1, fn)
		e.Cancel(ev)
	}); avg != 0 {
		t.Errorf("schedule+cancel allocates %.2f allocs/op, want 0", avg)
	}

	// The payload-carrying form must be equally free when arg is a
	// pointer (interface conversion of a pointer does not box).
	afn := func(*Engine, any) {}
	arg := &struct{ n int }{}
	if avg := testing.AllocsPerRun(1000, func() {
		e.ScheduleArg(e.Now()+1, afn, arg)
		e.Step()
	}); avg != 0 {
		t.Errorf("ScheduleArg+step allocates %.2f allocs/op, want 0", avg)
	}
}
