package sim

// Lockstep batch driver: advances B independent member engines — one
// per sweep variant — in shared epochs, so a sweep becomes one
// cache-friendly pass over B machines instead of B sequential runs.
// Each member keeps its own virtual clock; an epoch picks the earliest
// pending instant across live members (the horizon) and lets every
// member with due work run up to horizon+epoch via RunUntil. Interleaving
// members at epoch granularity keeps each variant's working set (its
// slab, heap, bank-state rows) resident while the batch sweeps time
// forward together, which is where the cache locality of the batched
// engine comes from.
//
// Correctness does not depend on the epoch length: members never
// exchange events, each fires its own queue in its own deterministic
// (when, priority, seq) order, and RunUntil's clock advance to the
// window deadline is invisible to the model (callbacks only observe
// Now() at event instants, which batching does not move). Every member
// therefore produces exactly the event sequence of its standalone run.

// DefaultBatchEpoch is the lockstep window used when the caller passes
// zero: 1 µs of simulated time is a few thousand events for a loaded
// headline-class machine — long enough to amortize the member switch,
// short enough that members stay within one another's cache footprint.
const DefaultBatchEpoch = Microsecond

// RunBatch drives the member engines in lockstep epochs until each has
// drained its queue, halted, or been stopped by its control hook. The
// returned slice holds each member's stop cause (nil for a normal
// drain or plain Halt). Nil members are skipped, so callers that
// pre-filter ineligible variants can keep slot indices stable.
func RunBatch(engs []*Engine, epoch Time) []error {
	if epoch == 0 {
		epoch = DefaultBatchEpoch
	}
	errs := make([]error, len(engs))
	done := make([]bool, len(engs))
	for i, e := range engs {
		if e == nil {
			done[i] = true
		}
	}
	for {
		// Horizon: earliest pending instant across live members. Members
		// with empty queues are finished (their machines schedule every
		// future obligation as an event).
		horizon := Never
		for i, e := range engs {
			if done[i] {
				continue
			}
			t, ok := e.NextTime()
			if !ok {
				done[i] = true
				continue
			}
			if t < horizon {
				horizon = t
			}
		}
		if horizon == Never {
			return errs
		}
		deadline := horizon + epoch
		for i, e := range engs {
			if done[i] {
				continue
			}
			if t, ok := e.NextTime(); !ok || t > deadline {
				// Nothing due this window; the member keeps its clock and
				// rejoins when the horizon reaches its next event.
				continue
			}
			fin, err := BatchAdvance(e, deadline)
			if err != nil {
				errs[i] = err
			}
			if fin {
				done[i] = true
			}
		}
	}
}

// BatchAdvance runs one member's lockstep window for an external batch
// driver (system.RunBatch wraps it with per-member panic isolation). It
// reports whether the member is finished — control-hook stop (err is
// the stop cause), Halt, or a drained queue — after which the driver
// must not advance it again, which also keeps StopCause readable.
func BatchAdvance(e *Engine, deadline Time) (finished bool, err error) {
	e.RunUntil(deadline)
	if e.stopCause != nil {
		return true, e.stopCause
	}
	return e.halted || len(e.queue) == 0, nil
}
