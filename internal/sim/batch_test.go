package sim

import (
	"errors"
	"testing"
)

// TestRunBatchLockstep: members fire their own queues in their own
// order, chained scheduling works across epoch boundaries, and the
// driver returns once every member drains.
func TestRunBatchLockstep(t *testing.T) {
	const n = 3
	engs := make([]*Engine, n)
	var order [n][]Time
	for i := range engs {
		engs[i] = NewEngine()
		i := i
		// Chain far past one epoch so every member crosses several
		// lockstep windows.
		var step func(e *Engine)
		step = func(e *Engine) {
			order[i] = append(order[i], e.Now())
			if len(order[i]) < 5 {
				e.Schedule(e.Now()+Time(i+1)*DefaultBatchEpoch/2+1, step)
			}
		}
		engs[i].Schedule(Time(i)*7+1, step)
	}
	errs := RunBatch(engs, 0)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
		if len(order[i]) != 5 {
			t.Fatalf("member %d fired %d events, want 5", i, len(order[i]))
		}
		for k := 1; k < len(order[i]); k++ {
			if order[i][k] <= order[i][k-1] {
				t.Fatalf("member %d fired out of order: %v", i, order[i])
			}
		}
	}
}

// TestRunBatchStopCause: a control-hook stop retires only that member
// and surfaces as its error; the other member runs to completion.
func TestRunBatchStopCause(t *testing.T) {
	limit := errors.New("budget")
	a, b := NewEngine(), NewEngine()
	var tick func(e *Engine)
	tick = func(e *Engine) { e.Schedule(e.Now()+1, tick) }
	a.Schedule(1, tick)
	a.SetControl(10, func(*Engine) error { return limit })

	fired := 0
	b.Schedule(1, func(*Engine) { fired++ })
	b.Schedule(2*DefaultBatchEpoch, func(*Engine) { fired++ })

	errs := RunBatch([]*Engine{a, nil, b}, 0)
	if !errors.Is(errs[0], limit) {
		t.Fatalf("member 0 err = %v, want control-hook stop", errs[0])
	}
	if a.StopCause() == nil {
		t.Fatal("StopCause cleared after member retirement")
	}
	if errs[1] != nil || errs[2] != nil {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if fired != 2 {
		t.Fatalf("member 2 fired %d events, want 2", fired)
	}
}

// TestResetPoolSemantics: Reset must restore post-NewEngine behavior —
// zeroed clock/counters, recycled slab with invalidated handles, and a
// disarmed control hook.
func TestResetPoolSemantics(t *testing.T) {
	e := NewEngine()
	calls := 0
	e.SetControl(1, func(*Engine) error { calls++; return nil })
	ev := e.Schedule(5, func(*Engine) {})
	e.ScheduleArg(7, func(*Engine, any) {}, 99)
	e.Run()
	if calls == 0 {
		t.Fatal("control hook never ran before reset")
	}
	e.Reset()
	if e.Now() != 0 || e.Fired() != 0 || e.Pending() != 0 || e.StopCause() != nil {
		t.Fatalf("reset state: now=%d fired=%d pending=%d cause=%v",
			e.Now(), e.Fired(), e.Pending(), e.StopCause())
	}
	if ev.Pending() || !ev.Cancelled() {
		t.Fatal("pre-reset handle still live")
	}
	hookCalls := calls
	ran := false
	e.Schedule(3, func(*Engine) { ran = true })
	e.Run()
	if !ran {
		t.Fatal("post-reset event did not fire")
	}
	if calls != hookCalls {
		t.Fatal("control hook survived Reset")
	}
	// Reset with events still queued: handles invalidate, slab recycles.
	ev2 := e.Schedule(50, func(*Engine) { t.Fatal("stale event fired") })
	e.Reset()
	if ev2.Pending() {
		t.Fatal("queued handle survived Reset")
	}
	e.Run()
}
