package sim

import "testing"

// BenchmarkEngineScheduleStep measures the schedule-then-fire churn of
// a single in-flight event, the engine's steady-state hot path.
func BenchmarkEngineScheduleStep(b *testing.B) {
	e := NewEngine()
	fn := func(*Engine) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+1, fn)
		e.Step()
	}
}

// BenchmarkEngineScheduleCancel measures the schedule-then-cancel path
// (the controller's wake-event reprogramming pattern).
func BenchmarkEngineScheduleCancel(b *testing.B) {
	e := NewEngine()
	fn := func(*Engine) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.Schedule(e.Now()+1, fn)
		e.Cancel(ev)
	}
}

// BenchmarkEngineChurn mixes the two realistic event lifecycles — a
// fired timer and a cancelled-and-reprogrammed wake — against a
// moderately deep pending population, approximating the controller's
// per-command event traffic in a multicore run.
func BenchmarkEngineChurn(b *testing.B) {
	const depth = 256
	e := NewEngine()
	fn := func(*Engine) {}
	for i := 0; i < depth; i++ {
		e.Schedule(Time(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.Schedule(e.Now()+depth/2, fn) // speculative wake
		e.Schedule(e.Now()+depth, fn)         // command completion
		e.Cancel(ev)                          // wake reprogrammed away
		e.Step()
	}
}

// BenchmarkEngineDeepQueue keeps a deep pending population (as a busy
// multicore run does) so heap reheapification dominates.
func BenchmarkEngineDeepQueue(b *testing.B) {
	const depth = 1024
	e := NewEngine()
	fn := func(*Engine) {}
	for i := 0; i < depth; i++ {
		e.Schedule(Time(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+depth, fn)
		e.Step()
	}
}
