package sim

import (
	"errors"
	"testing"
)

// reschedule keeps a self-perpetuating event stream alive so the run
// loops only stop when something external (hook, halt) stops them.
func reschedule(e *Engine) {
	e.Schedule(e.Now()+1, reschedule)
}

func TestControlHookStopsRun(t *testing.T) {
	e := NewEngine()
	e.Schedule(1, reschedule)
	stop := errors.New("budget exceeded")
	var calls int
	e.SetControl(10, func(eng *Engine) error {
		calls++
		if eng.Fired() >= 50 {
			return stop
		}
		return nil
	})
	e.Run()
	if !errors.Is(e.StopCause(), stop) {
		t.Fatalf("StopCause = %v, want the hook's error", e.StopCause())
	}
	if e.Fired() != 50 {
		t.Fatalf("stopped after %d events, want exactly 50 (hook interval 10)", e.Fired())
	}
	if calls != 5 {
		t.Fatalf("hook ran %d times over 50 events at interval 10, want 5", calls)
	}
	// The stream is still pending; a fresh Run clears the old cause and
	// keeps consulting the hook from where the count left off.
	fired := e.Fired()
	e.SetControl(10, func(eng *Engine) error {
		if eng.Fired() >= fired+20 {
			return stop
		}
		return nil
	})
	e.Run()
	if e.StopCause() == nil || e.Fired() != fired+20 {
		t.Fatalf("second run: fired %d cause %v", e.Fired(), e.StopCause())
	}
}

func TestControlHookDisarm(t *testing.T) {
	e := NewEngine()
	for i := Time(1); i <= 100; i++ {
		e.Schedule(i, func(*Engine) {})
	}
	var calls int
	e.SetControl(7, func(*Engine) error { calls++; return nil })
	e.SetControl(0, nil)
	e.Run()
	if calls != 0 {
		t.Fatalf("disarmed hook ran %d times", calls)
	}
	if e.StopCause() != nil {
		t.Fatalf("StopCause = %v after a clean drain", e.StopCause())
	}
	if e.Fired() != 100 {
		t.Fatalf("fired %d, want 100", e.Fired())
	}
}

func TestControlHookHaltKeepsNilCause(t *testing.T) {
	// A hook that calls Halt directly (rather than returning an error)
	// stops the run without a cause — same contract as a model halt.
	e := NewEngine()
	e.Schedule(1, reschedule)
	e.SetControl(5, func(eng *Engine) error {
		if eng.Fired() >= 25 {
			eng.Halt()
		}
		return nil
	})
	e.Run()
	if e.StopCause() != nil {
		t.Fatalf("StopCause = %v, want nil for a Halt stop", e.StopCause())
	}
	if e.Fired() != 25 {
		t.Fatalf("fired %d, want 25", e.Fired())
	}
}

func TestControlRunUntil(t *testing.T) {
	e := NewEngine()
	e.Schedule(1, reschedule)
	stop := errors.New("deadline")
	e.SetControl(10, func(eng *Engine) error {
		if eng.Fired() >= 30 {
			return stop
		}
		return nil
	})
	n := e.RunUntil(1000)
	if n != 30 || !errors.Is(e.StopCause(), stop) {
		t.Fatalf("RunUntil fired %d (cause %v), want 30 with the hook error", n, e.StopCause())
	}
	// A hook stop must not advance the clock to the deadline: the run
	// was interrupted, and Now is part of the interruption diagnostic.
	if e.Now() != 30 {
		t.Fatalf("Now = %d after hook stop, want the last event time 30", e.Now())
	}
	// Without the hook tripping, RunUntil still advances to the deadline.
	e.SetControl(0, nil)
	e.RunUntil(2000)
	if e.Now() != 2000 || e.StopCause() != nil {
		t.Fatalf("clean RunUntil: now %d cause %v", e.Now(), e.StopCause())
	}
}

// TestControlZeroAllocGuard extends the engine's zero-alloc contract to
// the watchdog: an armed control hook must add 0 allocs/op to the
// schedule/fire path (the hook itself is the caller's business, but
// the dispatch around it is the engine's).
func TestControlZeroAllocGuard(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is not meaningful under -race")
	}
	e := NewEngine()
	fn := func(*Engine) {}
	for i := 0; i < 4*eventBlock; i++ {
		e.Schedule(e.Now()+1, fn)
	}
	e.Run()
	e.SetControl(64, func(*Engine) error { return nil })
	if avg := testing.AllocsPerRun(1000, func() {
		e.Schedule(e.Now()+1, fn)
		e.Schedule(e.Now()+1, fn)
		e.Run()
	}); avg != 0 {
		t.Errorf("run with armed control hook allocates %.2f allocs/op, want 0", avg)
	}
}
