package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// TestHeapOrderProperty drives the specialized sift-up/sift-down heap
// with a randomized schedule/cancel workload and asserts events fire in
// exactly (when, priority, seq) order — the same total order the
// container/heap implementation guaranteed.
func TestHeapOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		e := NewEngine()
		type rec struct {
			when     Time
			priority int
			seq      int
		}
		var want []rec
		var got []rec
		var handles []Event
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			r := rec{when: Time(rng.Intn(50)), priority: rng.Intn(3) - 1, seq: i}
			handles = append(handles, e.ScheduleP(r.when, r.priority, func(*Engine) {
				got = append(got, r)
			}))
			want = append(want, r)
		}
		// Cancel a random subset before running.
		cancelled := map[int]bool{}
		for i := 0; i < n/4; i++ {
			k := rng.Intn(n)
			e.Cancel(handles[k])
			cancelled[k] = true
		}
		var kept []rec
		for _, r := range want {
			if !cancelled[r.seq] {
				kept = append(kept, r)
			}
		}
		sort.Slice(kept, func(i, j int) bool {
			if kept[i].when != kept[j].when {
				return kept[i].when < kept[j].when
			}
			if kept[i].priority != kept[j].priority {
				return kept[i].priority < kept[j].priority
			}
			return kept[i].seq < kept[j].seq
		})
		e.Run()
		if len(got) != len(kept) {
			t.Fatalf("trial %d: fired %d events, want %d", trial, len(got), len(kept))
		}
		for i := range got {
			if got[i] != kept[i] {
				t.Fatalf("trial %d: event %d fired as %+v, want %+v", trial, i, got[i], kept[i])
			}
		}
	}
}

// TestHeapCancelMiddle removes interior heap elements and checks the
// heap property survives (remove's down-then-up restoration).
func TestHeapCancelMiddle(t *testing.T) {
	e := NewEngine()
	var hs []Event
	for i := 0; i < 64; i++ {
		hs = append(hs, e.Schedule(Time(64-i), func(*Engine) {}))
	}
	// Cancel every third event, including the current root's children.
	for i := 0; i < len(hs); i += 3 {
		e.Cancel(hs[i])
	}
	var last Time
	for e.Step() {
		if e.Now() < last {
			t.Fatalf("time went backwards: %d after %d", e.Now(), last)
		}
		last = e.Now()
	}
	if e.Pending() != 0 {
		t.Fatalf("%d events left pending", e.Pending())
	}
}

// TestScheduleArg covers the payload-carrying callback form: the arg
// round-trips, fire time is the scheduled instant, cancellation works,
// and records recycle cleanly back into the closure form.
func TestScheduleArg(t *testing.T) {
	e := NewEngine()
	type payload struct{ hits int }
	p := &payload{}
	fn := func(eng *Engine, arg any) {
		if eng.Now() != 5 {
			t.Errorf("fired at %d, want 5", eng.Now())
		}
		arg.(*payload).hits++
	}
	ev := e.ScheduleArg(5, fn, p)
	if !ev.Pending() || ev.When() != 5 {
		t.Fatalf("handle not pending at 5: %v %v", ev.Pending(), ev.When())
	}
	e.Run()
	if p.hits != 1 {
		t.Fatalf("arg callback hits = %d, want 1", p.hits)
	}

	// Cancelled arg events never fire and their records recycle.
	ev = e.ScheduleArg(e.Now()+1, fn, p)
	e.Cancel(ev)
	// The recycled record must not leak the old argFn into a plain
	// Schedule reuse.
	ran := false
	e.Schedule(e.Now()+1, func(*Engine) { ran = true })
	e.Run()
	if p.hits != 1 || !ran {
		t.Fatalf("recycled record misbehaved: hits=%d ran=%v", p.hits, ran)
	}

	// Priority ordering applies to arg events too.
	var order []int
	e.ScheduleArgP(e.Now()+1, 1, func(_ *Engine, a any) { order = append(order, a.(int)) }, 1)
	e.ScheduleArgP(e.Now()+1, 0, func(_ *Engine, a any) { order = append(order, a.(int)) }, 0)
	e.Run()
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("priority order = %v, want [0 1]", order)
	}
}

func TestScheduleArgPanics(t *testing.T) {
	e := NewEngine()
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	e.Schedule(10, func(*Engine) {})
	e.Run()
	mustPanic("past", func() { e.ScheduleArg(e.Now()-1, func(*Engine, any) {}, nil) })
	mustPanic("nil fn", func() { e.ScheduleArg(e.Now()+1, nil, nil) })
}
