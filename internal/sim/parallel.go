package sim

// Windowed conservative parallel discrete-event execution.
//
// A Windowed run partitions the model into domains, each owning a
// private Engine (slab + 4-ary heap) and a disjoint slice of mutable
// state. Domains advance concurrently through synchronization windows
// of fixed width W, the minimum cross-domain latency: every
// cross-domain interaction is deferred during a window and applied
// serially at the barrier, and because any such interaction scheduled
// at time t takes effect no earlier than t+W, deferral never reorders
// an interaction past an event that could observe it.
//
// Bit-exactness. The sequential engine breaks same-instant ties by
// (priority, seq), seq being the global order of Schedule calls. A
// parallel run reproduces that order exactly without sharing a
// counter:
//
//   - Every fired event receives a global rank R at the window
//     barrier: the barrier merges the domains' execution logs in
//     (when, key) order and numbers events monotonically. R equals the
//     event's position in the sequential execution order, because
//     events of one window never observe each other across domains.
//   - An event scheduled by parent P as its i-th schedule call gets
//     the committed key (prio, R(P), i). Since sequential seq order of
//     two events is exactly (execution order of their parents, call
//     index within parent), comparing committed keys reproduces the
//     sequential tiebreak.
//   - R(P) is unknown while P is still executing, so children are
//     first keyed "fresh": (prio, class=1, P's domain-local fire
//     index, i). Fresh keys compare correctly inside their own domain
//     (local fire order is the restriction of the global order), and
//     the class bit makes every fresh key sort after every committed
//     key at the same (when, prio) — correct, because committed events
//     at that instant were scheduled in earlier windows, hence before
//     any of this window's calls. A fresh-keyed event with a fire time
//     inside the current window fires before the barrier, so any fresh
//     key that survives to the barrier belongs to an event past the
//     deadline; those events wait in a per-domain side buffer instead
//     of the heap, and the barrier rewrites exactly that set to
//     committed form and inserts it — no queue walk, no key ever
//     rewritten in place. Cross-domain injections (which carry
//     committed keys) only happen at barriers, after the rewrite, so a
//     fresh key is never compared against a key from another domain.
//
// Events scheduled before the run starts (machine construction) get
// committed keys with the reserved rank 0 and a shared program-order
// call counter, matching the sequential engine's build-time seq order.
//
// The barrier itself (rank merge, rekey, user hook) is serial; worker
// threads synchronize through two atomic counters with spin-yield
// waits, because a window is typically a few microseconds of work and
// a blocking barrier would dominate it.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Parallel-mode key layout (64 bits):
//
//	prio(2) | class(1) | rank-or-fireIdx(41) | callIdx(20)
//
// class 0 = committed (rank), class 1 = fresh (domain-local fire
// index). Committed keys are globally unique: rank is unique per
// parent and callIdx per call, so nodeLess stays a strict total order.
const (
	parCallBits   = 20
	parRankBits   = 41
	parClassShift = parCallBits + parRankBits // bit 61
	parPrioShift  = parClassShift + 1         // bits 62..63
	parFresh      = uint64(1) << parClassShift
	parMaxCall    = uint64(1) << parCallBits
	parMaxRank    = uint64(1) << parRankBits
	parRankMask   = (parMaxRank - 1) << parCallBits
)

// winEntry is one fired event in a domain's window log.
type winEntry struct {
	when Time
	key  uint64
}

// segRank is one run of the rank assignment: log entries start, start+1,
// ... (up to the next segment's start) carry ranks base, base+1, ...
// Storing runs instead of a dense per-event rank array keeps the serial
// merge's write traffic proportional to the number of same-instant runs;
// only a handful of ranks are ever queried per window (side-buffer
// commits, deferred sends, warm-up events), via binary search.
type segRank struct {
	start uint64 // window-local log index the run begins at
	base  uint64 // global rank of that entry
}

// parCtx is the per-domain parallel context attached to an Engine.
type parCtx struct {
	dom      int
	log      []winEntry // events fired this window, in fire order
	seg      []segRank  // rank runs over log (built at barrier)
	fireBase uint64     // absolute fire index of log[0]
	fireIdx  uint64     // absolute index of the currently firing event
	callIdx  uint32     // schedule calls made by the current event
	running  bool       // inside runWindow (vs build time)
	buildSeq *uint64    // shared pre-run program-order counter
	deadline Time       // current window deadline (side-buffer routing)
	side     []int32    // fresh-keyed events scheduled past the deadline
	sideMin  Time       // earliest side-buffered fire time, Never when empty
	// onFire, when non-nil, runs before each event dispatch (the
	// warm-up journaling hook). The nil check is the only per-event
	// cost when unused.
	onFire func()
}

// packKey returns the parallel-mode same-instant key for the current
// schedule call, consuming one call slot of the firing event (or of
// the shared build counter before the run starts).
func (p *parCtx) packKey(priority int) uint64 {
	if priority < 0 || priority >= 4 {
		panic(fmt.Sprintf("sim: parallel mode supports priorities [0,4), got %d", priority))
	}
	if p.running {
		ci := uint64(p.callIdx)
		p.callIdx++
		if ci >= parMaxCall {
			panic("sim: parallel call index space exhausted")
		}
		return uint64(priority)<<parPrioShift | parFresh | p.fireIdx<<parCallBits | ci
	}
	ci := *p.buildSeq
	*p.buildSeq++
	if ci >= parMaxCall {
		panic("sim: parallel build sequence space exhausted")
	}
	return uint64(priority)<<parPrioShift | ci // committed, rank 0
}

// ParCall consumes one schedule-call slot of the currently firing
// event without scheduling anything, returning the event's
// domain-local fire index and the consumed call index. Deferred
// cross-domain operations use this so their eventual injection carries
// the key the sequential engine would have assigned at this call site.
func (e *Engine) ParCall() (fireIdx uint64, callIdx uint32) {
	p := e.par
	if p == nil || !p.running {
		panic("sim: ParCall outside a parallel window")
	}
	ci := p.callIdx
	p.callIdx++
	if uint64(ci) >= parMaxCall {
		panic("sim: parallel call index space exhausted")
	}
	return p.fireIdx, ci
}

// ParMark returns the currently firing event's domain-local fire index
// and the number of schedule calls it has made so far, without
// consuming anything. Mid-event cut points (warm-up snapshots) are
// located with it.
func (e *Engine) ParMark() (fireIdx uint64, calls uint32) {
	p := e.par
	if p == nil || !p.running {
		panic("sim: ParMark outside a parallel window")
	}
	return p.fireIdx, p.callIdx
}

// scheduleKeyed enqueues a callback with an explicit pre-committed
// same-instant key (barrier injection path; packKey is bypassed).
func (e *Engine) scheduleKeyed(at Time, key uint64, fn func(*Engine, any), arg any) {
	if at < e.now {
		panic(fmt.Sprintf("sim: keyed schedule at %d before now %d", at, e.now))
	}
	id := e.alloc()
	rec := &e.records[id]
	rec.when, rec.key, rec.argFn, rec.arg = at, key, fn, arg
	e.queue.push(rec, id)
}

// runWindow fires every pending event with when <= deadline, logging
// each fire, then advances the clock to the deadline. The control hook
// is not consulted; parallel runs enforce limits at barriers.
func (e *Engine) runWindow(deadline Time) {
	p := e.par
	p.running = true
	p.deadline = deadline
	for len(e.queue) > 0 && e.queue[0].when <= deadline {
		id := e.queue.pop()
		rec := &e.records[id]
		if rec.when < e.now {
			panic("sim: event heap corrupted (time went backwards)")
		}
		e.now = rec.when
		p.fireIdx = p.fireBase + uint64(len(p.log))
		p.log = append(p.log, winEntry{rec.when, rec.key})
		p.callIdx = 0
		if p.onFire != nil {
			p.onFire()
		}
		fn, argFn, arg := rec.fn, rec.argFn, rec.arg
		e.recycle(id)
		e.fired++
		if argFn != nil {
			argFn(e, arg)
		} else {
			fn(e)
		}
	}
	p.running = false
	if e.now < deadline {
		e.now = deadline
	}
}

// Windowed coordinates a conservative parallel run over a set of
// domain engines.
type Windowed struct {
	engs    []*Engine
	window  Time
	workers int

	buildSeq uint64
	nextRank uint64

	// Round synchronization: main publishes deadline and the due list
	// then bumps round; workers claim due domains through claim and
	// report through done. All cross-thread engine access is ordered by
	// these atomics.
	deadline Time
	due      []int32 // domains with an event due this window
	round    atomic.Uint32
	claim    atomic.Int32
	done     atomic.Int32
	stop     atomic.Bool
	wg       sync.WaitGroup
	spawned  int

	act  []mergeHead // rank-merge scratch: heads of domains with log entries left
	scan []mergeHead // start-scan scratch: earliest pending instant per domain

	// Counters for observability.
	Windows       uint64 // synchronization windows executed
	MultiInstants uint64 // instants with fires in more than one domain

	// MeasureBarrier, when set before Run, timestamps the coordinator's
	// wait for the slowest worker at each barrier (LastBarrierWaitNS).
	// Off by default: the measurement is two clock reads per window of
	// host time, which observed-run tracing wants and bit-exactness
	// benchmarks do not.
	MeasureBarrier bool
	barrierWaitNS  uint64
}

// NewWindowed attaches parallel contexts to the given engines and
// returns a coordinator advancing them in windows of the given width.
// The width must not exceed the minimum latency of any cross-domain
// interaction. workers is the number of OS threads advancing domains
// concurrently; results are independent of it.
func NewWindowed(window Time, engs []*Engine, workers int) *Windowed {
	if window == 0 {
		panic("sim: zero window width")
	}
	if len(engs) == 0 {
		panic("sim: windowed run with no domains")
	}
	w := &Windowed{
		engs:     engs,
		window:   window,
		workers:  workers,
		nextRank: 1, // rank 0 is reserved for build-time events
		act:      make([]mergeHead, 0, len(engs)),
		scan:     make([]mergeHead, 0, len(engs)),
		due:      make([]int32, 0, len(engs)),
	}
	for i, e := range engs {
		if e.par != nil {
			panic("sim: engine already part of a windowed run")
		}
		e.par = &parCtx{dom: i, buildSeq: &w.buildSeq, sideMin: Never}
	}
	return w
}

// Window returns the synchronization window width in picoseconds.
func (w *Windowed) Window() Time { return w.window }

// Workers returns the number of threads advancing domains.
func (w *Windowed) Workers() int { return w.workers }

// WindowBounds returns the just-finished window's sim-time span,
// valid at the barrier (inside Run's hook).
func (w *Windowed) WindowBounds() (start, end Time) {
	return w.deadline - w.window + 1, w.deadline
}

// LastBarrierWaitNS returns the host nanoseconds the coordinator spent
// waiting on the latest barrier (zero unless MeasureBarrier is set).
func (w *Windowed) LastBarrierWaitNS() uint64 { return w.barrierWaitNS }

// rankOf resolves a window-local log index to its global rank through
// the segment table: the covering run is the last one starting at or
// before the index.
func (p *parCtx) rankOf(i uint64) uint64 {
	s := p.seg
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid].start <= i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	sg := &s[lo-1]
	return sg.base + (i - sg.start)
}

// Rank returns the global rank of a domain's fired event, valid at the
// barrier for events of the just-finished window.
func (w *Windowed) Rank(dom int, fireIdx uint64) uint64 {
	p := w.engs[dom].par
	return p.rankOf(fireIdx - p.fireBase)
}

// Inject schedules a callback into a domain with the committed key
// (prio, rank, call) — the key the sequential engine assigned at the
// deferred call site. Only valid at a barrier, for instants at or
// after the next window start.
func (w *Windowed) Inject(dom int, at Time, prio int, rank uint64, call uint32, fn func(*Engine, any), arg any) {
	key := uint64(prio)<<parPrioShift | rank<<parCallBits | uint64(call)
	w.engs[dom].scheduleKeyed(at, key, fn, arg)
}

// SetFireHook installs (or clears, with nil) a per-event hook on one
// domain, run before each dispatch with the engine's ParMark valid.
func (w *Windowed) SetFireHook(dom int, fn func()) {
	w.engs[dom].par.onFire = fn
}

// DomainFired returns the per-domain fired-event counts (imbalance
// observability).
func (w *Windowed) DomainFired() []uint64 {
	out := make([]uint64, len(w.engs))
	for i, e := range w.engs {
		out[i] = e.fired
	}
	return out
}

// worker is the persistent loop of one extra thread.
func (w *Windowed) worker() {
	defer w.wg.Done()
	last := uint32(0)
	for {
		for {
			r := w.round.Load()
			if r != last {
				last = r
				break
			}
			runtime.Gosched()
		}
		if w.stop.Load() {
			return
		}
		w.runClaimed()
		w.done.Add(1)
	}
}

// runClaimed processes dynamically claimed due domains through the
// current window round. Claiming is atomic, so the assignment of
// domains to threads varies between runs — results do not, because
// domains are independent within a window. Domains with no event due
// this window are not on the due list and are never touched.
func (w *Windowed) runClaimed() {
	d := w.deadline
	n := int32(len(w.due))
	for {
		i := w.claim.Add(1) - 1
		if i >= n {
			return
		}
		w.engs[w.due[i]].windowRound(d)
	}
}

// windowRound is one domain's work for one window: commit the previous
// window's surviving fresh keys (their ranks are still valid — the
// merge that would invalidate them runs after this round), retire the
// previous window's log, then advance through the window. Deferring
// the commit and the log retirement here moves both off the serial
// barrier and onto the claiming workers.
func (e *Engine) windowRound(deadline Time) {
	p := e.par
	if len(p.side) > 0 {
		e.rekeyDomain()
	}
	p.fireBase += uint64(len(p.log))
	p.log = p.log[:0]
	e.runWindow(deadline)
}

// Run advances all domains to completion. hook runs serially at every
// window barrier after ranks are assigned and pending keys committed;
// it applies the model's deferred cross-domain work (and may Inject
// new events). A non-nil hook error stops the run and is returned.
// The run ends when every domain's queue is empty.
func (w *Windowed) Run(hook func() error) error {
	extra := w.workers - 1
	if extra > len(w.engs)-1 {
		extra = len(w.engs) - 1
	}
	for i := 0; i < extra; i++ {
		w.wg.Add(1)
		go w.worker()
	}
	w.spawned = extra
	defer func() {
		w.stop.Store(true)
		w.round.Add(1)
		w.wg.Wait()
	}()
	for {
		// A domain's earliest pending event is its heap head or, right
		// after its window, a side-buffered child awaiting commit. One
		// pass collects per-domain heads and the global minimum; the due
		// filter then runs over the compact scratch instead of touching
		// every engine again.
		start := Never
		scan := w.scan[:0]
		for i, e := range w.engs {
			t := e.par.sideMin
			if len(e.queue) > 0 && e.queue[0].when < t {
				t = e.queue[0].when
			}
			if t == Never {
				continue
			}
			scan = append(scan, mergeHead{when: t, dom: int32(i)})
			if t < start {
				start = t
			}
		}
		w.scan = scan
		if start == Never {
			return nil
		}
		w.deadline = start + w.window - 1
		w.due = w.due[:0]
		for j := range scan {
			if scan[j].when <= w.deadline {
				w.due = append(w.due, scan[j].dom)
			}
		}
		w.claim.Store(0)
		w.done.Store(0)
		w.round.Add(1)
		w.runClaimed()
		if w.MeasureBarrier {
			t0 := time.Now()
			for w.done.Load() < int32(extra) {
				runtime.Gosched()
			}
			w.barrierWaitNS = uint64(time.Since(t0))
		} else {
			for w.done.Load() < int32(extra) {
				runtime.Gosched()
			}
		}
		w.Windows++
		w.assignRanks()
		if hook != nil {
			if err := hook(); err != nil {
				return err
			}
		}
	}
}

// mergeHead is one active cursor of the rank merge: the next unranked
// log entry of a domain, with its fire instant cached so the min-scan
// never touches the log slices. key caches the entry's resolved key
// during a multi-domain instant; advancing one domain leaves the other
// cursors' keys valid (a fresh key resolves through its own domain's
// already-assigned ranks only), so each event costs one key
// resolution, not one per active cursor.
type mergeHead struct {
	when Time
	key  uint64
	dom  int32
	idx  int32
}

// assignRanks merges the window's execution logs in global event order
// and numbers them monotonically. The merge keeps a compact list of
// active cursors — only domains with unranked entries left — so the
// per-instant min-scan costs the number of still-active domains, not
// the domain count. Instants fired by a single domain — the
// overwhelmingly common case — are bulk-assigned; instants shared by
// several domains are fine-merged by resolved key, which reproduces
// the sequential same-instant order (see the package comment's
// argument).
func (w *Windowed) assignRanks() {
	R := w.nextRank
	act := w.act[:0]
	for _, di := range w.due {
		p := w.engs[di].par
		p.seg = p.seg[:0]
		if len(p.log) > 0 {
			act = append(act, mergeHead{when: p.log[0].when, dom: di})
		}
	}
	for len(act) > 0 {
		mi, multi := 0, false
		for j := 1; j < len(act); j++ {
			if act[j].when < act[mi].when {
				mi, multi = j, false
			} else if act[j].when == act[mi].when {
				multi = true
			}
		}
		minW := act[mi].when
		if !multi {
			p := w.engs[act[mi].dom].par
			log := p.log
			h := int(act[mi].idx)
			p.seg = append(p.seg, segRank{start: uint64(h), base: R})
			for h < len(log) && log[h].when == minW {
				h++
			}
			R += uint64(h) - uint64(act[mi].idx)
			if h == len(log) {
				act[mi] = act[len(act)-1]
				act = act[:len(act)-1]
			} else {
				act[mi].idx, act[mi].when = int32(h), log[h].when
			}
			continue
		}
		w.MultiInstants++
		for j := range act {
			if act[j].when == minW {
				act[j].key = resolveKey(w.engs[act[j].dom].par, int(act[j].idx))
			}
		}
		for {
			best := -1
			var bestKey uint64
			for j := range act {
				if act[j].when != minW {
					continue
				}
				if k := act[j].key; best < 0 || k < bestKey {
					best, bestKey = j, k
				}
			}
			if best < 0 {
				break
			}
			p := w.engs[act[best].dom].par
			h := int(act[best].idx)
			p.seg = append(p.seg, segRank{start: uint64(h), base: R})
			R++
			h++
			if h == len(p.log) {
				act[best] = act[len(act)-1]
				act = act[:len(act)-1]
			} else {
				act[best].idx, act[best].when = int32(h), p.log[h].when
				if act[best].when == minW {
					act[best].key = resolveKey(p, h)
				}
			}
		}
	}
	if R >= parMaxRank {
		panic("sim: parallel rank space exhausted")
	}
	w.nextRank = R
	w.act = act
}

// resolveKey returns log entry i's key in committed form. A fresh
// entry's parent fired earlier in the same domain and window, so its
// rank is already assigned when the merge reaches the entry.
func resolveKey(p *parCtx, i int) uint64 {
	k := p.log[i].key
	if k&parFresh == 0 {
		return k
	}
	parent := (k & parRankMask) >> parCallBits
	return k&^(parFresh|parRankMask) | p.rankOf(parent-p.fireBase)<<parCallBits
}

// rekeyDomain commits one domain's surviving fresh keys. Every
// fresh-keyed event still pending at the barrier sits in the domain's
// side buffer (a fresh event at or before the deadline fired inside
// the window), so the rewrite visits exactly those events and inserts
// them into the heap under their committed (rank, call) key, instead
// of scanning the whole pending queue for fresh bits. It touches only
// the domain's own heap and segment table, so the rekey round runs one
// domain per worker with no coordination.
func (e *Engine) rekeyDomain() {
	p := e.par
	for _, id := range p.side {
		rec := &e.records[id]
		parent := (rec.key & parRankMask) >> parCallBits
		rec.key = rec.key&^(parFresh|parRankMask) | p.rankOf(parent-p.fireBase)<<parCallBits
		e.queue.push(rec, id)
	}
	p.side = p.side[:0]
	p.sideMin = Never
}

// rekey runs rekeyDomain over every domain serially (test hook; Run
// dispatches the same work through the claiming round).
func (w *Windowed) rekey() {
	for _, e := range w.engs {
		e.rekeyDomain()
	}
}
