package sim

import (
	"sort"
	"testing"
	"time"
)

// toyDom is one domain of the toy model: a self-perpetuating event
// chain that folds every fire instant into a hash and occasionally
// defers a cross-domain message, exercising the full windowed protocol
// (fresh keys, rank merge, rekey, barrier injection).
type toyDom struct {
	i    int
	n    int
	hash uint64
}

type toyMsg struct {
	dom  int
	fire uint64
	call uint32
	when Time
	tgt  int
	rkey uint64
}

// runToy drives the toy model to completion with the given worker
// count and returns the per-domain hashes of the fire sequences.
func runToy(t *testing.T, workers int) ([]uint64, *Windowed) {
	t.Helper()
	const (
		N      = 4
		window = Time(10)
		events = 400
	)
	engs := make([]*Engine, N)
	for i := range engs {
		engs[i] = NewEngine()
	}
	win := NewWindowed(window, engs, workers)
	doms := make([]*toyDom, N)
	pend := make([][]toyMsg, N)

	var fire func(e *Engine, arg any)
	fire = func(e *Engine, arg any) {
		d := arg.(*toyDom)
		d.hash = d.hash*1000003 + uint64(e.Now())
		if d.n >= events {
			return
		}
		d.n++
		e.ScheduleArg(e.Now()+Time(1+d.hash%9), fire, d)
		if d.hash%3 == 0 {
			f, c := e.ParCall()
			pend[d.i] = append(pend[d.i], toyMsg{
				dom: d.i, fire: f, call: c, when: e.Now(), tgt: (d.i + 1) % N,
			})
		}
	}
	for i := range doms {
		doms[i] = &toyDom{i: i}
		engs[i].ScheduleArg(Time(i+1), fire, doms[i])
	}
	var replay []toyMsg
	err := win.Run(func() error {
		replay = replay[:0]
		for d := range pend {
			for _, m := range pend[d] {
				m.rkey = win.Rank(m.dom, m.fire)<<parCallBits | uint64(m.call)
				replay = append(replay, m)
			}
			pend[d] = pend[d][:0]
		}
		sort.Slice(replay, func(i, j int) bool { return replay[i].rkey < replay[j].rkey })
		for _, m := range replay {
			win.Inject(m.tgt, m.when+window, 0, m.rkey>>parCallBits,
				uint32(m.rkey&(parMaxCall-1)), fire, doms[m.tgt])
		}
		return nil
	})
	if err != nil {
		t.Fatalf("windowed run: %v", err)
	}
	out := make([]uint64, N)
	for i, d := range doms {
		out[i] = d.hash
	}
	return out, win
}

// TestWindowedDeterministicAcrossWorkers asserts the core contract:
// the fire sequence of every domain is identical at any worker count.
func TestWindowedDeterministicAcrossWorkers(t *testing.T) {
	want, win := runToy(t, 1)
	if win.Windows == 0 {
		t.Fatal("toy model executed zero windows")
	}
	for _, workers := range []int{2, 4, 8} {
		got, _ := runToy(t, workers)
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("workers=%d domain %d hash %#x, want %#x", workers, i, got[i], want[i])
			}
		}
	}
}

// TestWindowedBuildKeysOrdered checks that pre-run (build-time) events
// at one instant fire in program order across schedule calls, matching
// the sequential engine's global seq order.
func TestWindowedBuildKeysOrdered(t *testing.T) {
	e := NewEngine()
	NewWindowed(5, []*Engine{e}, 1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(3, func(*Engine) { order = append(order, i) })
	}
	e.runWindow(5)
	for i, v := range order {
		if v != i {
			t.Fatalf("build-time fire order %v, want ascending", order)
		}
	}
}

// TestCancelSideBufferedMaintainsSideMin pins the side-buffer minimum
// against cancellation: Windowed.Run's start scan trusts sideMin, so a
// Cancel that removed the earliest (or only) side entry but left the
// old finite value in place would make the domain look perpetually
// pending at a stale instant.
func TestCancelSideBufferedMaintainsSideMin(t *testing.T) {
	e := NewEngine()
	NewWindowed(10, []*Engine{e}, 1)
	p := e.par
	nop := func(*Engine) {}
	var a, b, c Event
	e.Schedule(1, func(eng *Engine) {
		a = eng.After(100, nop) // when 101
		b = eng.After(200, nop) // when 201
		c = eng.After(300, nop) // when 301
	})
	e.runWindow(10)
	if len(p.side) != 3 || p.sideMin != 101 {
		t.Fatalf("after window: %d side events, sideMin %d; want 3 and 101", len(p.side), p.sideMin)
	}
	e.Cancel(b) // not the minimum: value untouched
	if p.sideMin != 101 {
		t.Fatalf("sideMin %d after cancelling a non-min entry, want 101", p.sideMin)
	}
	e.Cancel(a) // the minimum: recomputed over the survivors
	if p.sideMin != 301 {
		t.Fatalf("sideMin %d after cancelling the min entry, want 301", p.sideMin)
	}
	e.Cancel(c) // last entry: back to Never
	if p.sideMin != Never {
		t.Fatalf("sideMin %d after emptying the side buffer, want Never", p.sideMin)
	}
}

// TestWindowedCancelledTimeoutTerminates drives the memctrl wake
// pattern through a windowed run: every event schedules a far-future
// timeout (side-buffered, past the window deadline) and cancels the
// previous one, and the final event cancels the last timeout leaving
// the side buffer empty. The run must then drain and return — with a
// stale sideMin it would spin on an eternally-pending domain, so the
// test fails by watchdog timeout rather than hanging the suite.
func TestWindowedCancelledTimeoutTerminates(t *testing.T) {
	e := NewEngine()
	win := NewWindowed(10, []*Engine{e}, 1)
	var timeout Event
	n := 0
	var step func(*Engine)
	step = func(eng *Engine) {
		eng.Cancel(timeout)
		n++
		if n >= 50 {
			return
		}
		timeout = eng.After(1000, func(*Engine) {
			t.Error("cancelled timeout fired")
		})
		eng.After(2, step)
	}
	e.Schedule(1, step)
	done := make(chan error, 1)
	go func() { done <- win.Run(nil) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("windowed run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("windowed run hung after the last side-buffered event was cancelled (stale sideMin)")
	}
	if n != 50 {
		t.Fatalf("chain fired %d events, want 50", n)
	}
}

// TestWindowedZeroAllocGuard pins the windowed engine's steady state —
// schedule, fire-with-log, rank assignment, rekey, log recycle — at
// zero allocations per event, the same contract the sequential engine
// keeps.
func TestWindowedZeroAllocGuard(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is not meaningful under -race")
	}
	e := NewEngine()
	w := NewWindowed(8, []*Engine{e}, 1)
	afn := func(*Engine, any) {}
	arg := &struct{ n int }{}
	// Warm: grow the free list, window log, and rank scratch.
	w.due = append(w.due[:0], 0)
	for i := 0; i < 4*eventBlock; i++ {
		e.ScheduleArg(e.Now()+1, afn, arg)
	}
	e.windowRound(e.Now() + 1)
	w.assignRanks()

	if avg := testing.AllocsPerRun(1000, func() {
		e.ScheduleArg(e.Now()+1, afn, arg)
		e.windowRound(e.Now() + 1)
		w.assignRanks()
	}); avg != 0 {
		t.Errorf("windowed schedule+fire+barrier allocates %.2f allocs/op, want 0", avg)
	}
}
