package sim

import (
	"sort"
	"testing"
)

// toyDom is one domain of the toy model: a self-perpetuating event
// chain that folds every fire instant into a hash and occasionally
// defers a cross-domain message, exercising the full windowed protocol
// (fresh keys, rank merge, rekey, barrier injection).
type toyDom struct {
	i    int
	n    int
	hash uint64
}

type toyMsg struct {
	dom  int
	fire uint64
	call uint32
	when Time
	tgt  int
	rkey uint64
}

// runToy drives the toy model to completion with the given worker
// count and returns the per-domain hashes of the fire sequences.
func runToy(t *testing.T, workers int) ([]uint64, *Windowed) {
	t.Helper()
	const (
		N      = 4
		window = Time(10)
		events = 400
	)
	engs := make([]*Engine, N)
	for i := range engs {
		engs[i] = NewEngine()
	}
	win := NewWindowed(window, engs, workers)
	doms := make([]*toyDom, N)
	pend := make([][]toyMsg, N)

	var fire func(e *Engine, arg any)
	fire = func(e *Engine, arg any) {
		d := arg.(*toyDom)
		d.hash = d.hash*1000003 + uint64(e.Now())
		if d.n >= events {
			return
		}
		d.n++
		e.ScheduleArg(e.Now()+Time(1+d.hash%9), fire, d)
		if d.hash%3 == 0 {
			f, c := e.ParCall()
			pend[d.i] = append(pend[d.i], toyMsg{
				dom: d.i, fire: f, call: c, when: e.Now(), tgt: (d.i + 1) % N,
			})
		}
	}
	for i := range doms {
		doms[i] = &toyDom{i: i}
		engs[i].ScheduleArg(Time(i+1), fire, doms[i])
	}
	var replay []toyMsg
	err := win.Run(func() error {
		replay = replay[:0]
		for d := range pend {
			for _, m := range pend[d] {
				m.rkey = win.Rank(m.dom, m.fire)<<parCallBits | uint64(m.call)
				replay = append(replay, m)
			}
			pend[d] = pend[d][:0]
		}
		sort.Slice(replay, func(i, j int) bool { return replay[i].rkey < replay[j].rkey })
		for _, m := range replay {
			win.Inject(m.tgt, m.when+window, 0, m.rkey>>parCallBits,
				uint32(m.rkey&(parMaxCall-1)), fire, doms[m.tgt])
		}
		return nil
	})
	if err != nil {
		t.Fatalf("windowed run: %v", err)
	}
	out := make([]uint64, N)
	for i, d := range doms {
		out[i] = d.hash
	}
	return out, win
}

// TestWindowedDeterministicAcrossWorkers asserts the core contract:
// the fire sequence of every domain is identical at any worker count.
func TestWindowedDeterministicAcrossWorkers(t *testing.T) {
	want, win := runToy(t, 1)
	if win.Windows == 0 {
		t.Fatal("toy model executed zero windows")
	}
	for _, workers := range []int{2, 4, 8} {
		got, _ := runToy(t, workers)
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("workers=%d domain %d hash %#x, want %#x", workers, i, got[i], want[i])
			}
		}
	}
}

// TestWindowedBuildKeysOrdered checks that pre-run (build-time) events
// at one instant fire in program order across schedule calls, matching
// the sequential engine's global seq order.
func TestWindowedBuildKeysOrdered(t *testing.T) {
	e := NewEngine()
	NewWindowed(5, []*Engine{e}, 1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(3, func(*Engine) { order = append(order, i) })
	}
	e.runWindow(5)
	for i, v := range order {
		if v != i {
			t.Fatalf("build-time fire order %v, want ascending", order)
		}
	}
}

// TestWindowedZeroAllocGuard pins the windowed engine's steady state —
// schedule, fire-with-log, rank assignment, rekey, log recycle — at
// zero allocations per event, the same contract the sequential engine
// keeps.
func TestWindowedZeroAllocGuard(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is not meaningful under -race")
	}
	e := NewEngine()
	w := NewWindowed(8, []*Engine{e}, 1)
	afn := func(*Engine, any) {}
	arg := &struct{ n int }{}
	// Warm: grow the free list, window log, and rank scratch.
	w.due = append(w.due[:0], 0)
	for i := 0; i < 4*eventBlock; i++ {
		e.ScheduleArg(e.Now()+1, afn, arg)
	}
	e.windowRound(e.Now() + 1)
	w.assignRanks()

	if avg := testing.AllocsPerRun(1000, func() {
		e.ScheduleArg(e.Now()+1, afn, arg)
		e.windowRound(e.Now() + 1)
		w.assignRanks()
	}); avg != 0 {
		t.Errorf("windowed schedule+fire+barrier allocates %.2f allocs/op, want 0", avg)
	}
}
