// Package sim provides a small deterministic discrete-event simulation
// kernel used by every timed component in the microbank simulator.
//
// Time is measured in picoseconds (type Time) so that the 2 GHz core
// domain (500 ps), the 250 MHz DRAM mat domain (4000 ps), and arbitrary
// interface clocks can coexist without rounding. Events scheduled for
// the same instant fire in the order of their (priority, sequence)
// pair, making runs bit-for-bit reproducible.
//
// The engine recycles event records through an internal free list
// (fired and cancelled events are reused by later Schedule calls), so
// steady-state scheduling does not allocate. Event handles carry a
// generation number, which makes operations on already-fired or
// already-cancelled handles safe no-ops even after the record has been
// reused.
package sim

import "fmt"

// Time is a simulation timestamp in picoseconds.
type Time uint64

// Common time units, expressed in Time (picoseconds).
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * 1000
	Millisecond Time = 1000 * 1000 * 1000
)

// Never is a sentinel timestamp that compares after every reachable
// simulation instant. It marks idle resources.
const Never Time = ^Time(0)

// event is the engine-owned record of a scheduled callback. Records
// live by value in the engine's slab and are addressed by index —
// never by pointer, so the slab can grow and the heap nodes stay
// pointer-free (a pointer per node would drag a GC write barrier into
// every sift move). Records are recycled: gen increments every time
// the record is retired, which invalidates any Event handles still
// naming it.
type event struct {
	when Time
	key  uint64 // packed (priority, seq) same-instant tiebreak
	gen  uint64
	fn   func(*Engine)
	// argFn/arg are the payload-carrying callback form (ScheduleArg):
	// a shared, pre-allocated function pointer plus a per-event value,
	// so hot paths that would otherwise close over per-event state
	// (e.g. one retirement callback per memory request) schedule
	// without a fresh closure allocation.
	argFn func(*Engine, any)
	arg   any
}

// Event is a handle to a scheduled callback, returned by Schedule and
// friends. The zero Event is a valid "no event" handle: Cancel on it
// is a no-op and Pending reports false.
type Event struct {
	eng *Engine
	id  int32
	gen uint64
}

// Pending reports whether the event is still scheduled to fire.
func (ev Event) Pending() bool { return ev.eng != nil && ev.gen == ev.eng.records[ev.id].gen }

// When returns the instant the event is scheduled to fire, or Never if
// the event already fired, was cancelled, or is the zero handle.
func (ev Event) When() Time {
	if !ev.Pending() {
		return Never
	}
	return ev.eng.records[ev.id].when
}

// Cancelled reports whether the event was retired (fired or removed)
// after being scheduled. The zero handle reports false.
func (ev Event) Cancelled() bool { return ev.eng != nil && ev.gen != ev.eng.records[ev.id].gen }

// seqBits splits the packed same-instant key: the low bits hold the
// schedule sequence number and the high bits the biased priority, so
// the (priority, seq) tiebreak is a single integer compare. 2^40
// events per engine and 2^24 priority levels are both far beyond any
// run; packKey enforces the limits with panics rather than silently
// misordering.
const (
	seqBits      = 40
	priorityBias = 1 << 23 // maps priority [-2^23, 2^23) onto 24 unsigned bits
	maxSeq       = uint64(1) << seqBits
)

// heapNode is one slot of the event queue: the full sort key inlined
// next to the record's slab index, so sift compares read the heap
// array sequentially instead of dereferencing two event records per
// comparison (the pointer chase dominated pop-heavy runs), and node
// moves are barrier-free because the node holds no pointer.
type heapNode struct {
	when Time
	key  uint64 // priority<<seqBits | seq
	id   int32
}

// nodeLess is the total event order; seq is unique per engine, so the
// order is strict and pop order is deterministic.
func nodeLess(a, b *heapNode) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.key < b.key
}

// eventHeap is a 4-ary min-heap over (when, priority, seq), specialized
// to the concrete node type: sift-up/sift-down hold the moving node in
// a local and shift the others, so each step is one node copy plus one
// index write, and nothing passes through an interface (container/heap
// boxes every Push/Pop operand and dispatches Less/Swap dynamically,
// which showed up as a measurable fraction of event-bound runs). The
// 4-ary shape halves the tree depth of the pop-heavy sift-down path;
// because seq is unique, the event order is a strict total order and
// pop order is identical for any min-heap arity.
type eventHeap []heapNode

// up restores the heap property from index i toward the root.
func (h eventHeap) up(i int) {
	node := h[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !nodeLess(&node, &h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = node
}

// down restores the heap property from index i toward the leaves,
// reporting whether the element moved.
func (h eventHeap) down(i int) bool {
	node, start, n := h[i], i, len(h)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		least := first
		end := first + 4
		if end > n {
			end = n
		}
		for j := first + 1; j < end; j++ {
			if nodeLess(&h[j], &h[least]) {
				least = j
			}
		}
		if !nodeLess(&h[least], &node) {
			break
		}
		h[i] = h[least]
		i = least
	}
	h[i] = node
	return i > start
}

// push appends the record's node and sifts it into position.
func (h *eventHeap) push(rec *event, id int32) {
	*h = append(*h, heapNode{rec.when, rec.key, id})
	h.up(len(*h) - 1)
}

// pop removes and returns the slab index of the earliest event.
func (h *eventHeap) pop() int32 {
	old := *h
	n := len(old) - 1
	id := old[0].id
	if n > 0 {
		old[0] = old[n]
	}
	*h = old[:n]
	if n > 0 {
		(*h).down(0)
	}
	return id
}

// remove deletes the event at heap index i (Cancel's path).
func (h *eventHeap) remove(i int) {
	old := *h
	n := len(old) - 1
	if i != n {
		old[i] = old[n]
	}
	*h = old[:n]
	if i != n {
		if !(*h).down(i) {
			(*h).up(i)
		}
	}
}

// initialHeapCap pre-sizes the event queue so a run reaches its
// steady-state pending-event count without regrowing the heap slice.
const initialHeapCap = 512

// eventBlock pre-sizes the record slab; the slab then grows by
// amortized appends, so allocs/op stays near zero even while the
// pending-event population is still growing.
const eventBlock = 128

// Engine is a discrete-event simulation engine. The zero value is not
// usable; construct one with NewEngine.
type Engine struct {
	now     Time
	queue   eventHeap
	records []event // record slab; Event handles and heap nodes hold indices
	free    []int32 // retired record indices awaiting reuse
	seq     uint64
	fired   uint64
	halted  bool
	// Control hook (SetControl): ctrlNext is the fired count at which
	// the hook runs next, kept at noControl when the hook is disarmed so
	// the run loops pay exactly one always-false integer compare per
	// event — no nil check, no extra branch.
	ctrlNext  uint64
	ctrlEvery uint64
	ctrlFn    func(*Engine) error
	stopCause error
	// par, when non-nil, marks this engine as one domain of a Windowed
	// parallel run (see parallel.go): packKey derives same-instant keys
	// from the domain's execution log instead of the sequential counter.
	// Sequential engines pay exactly one predictable nil check here.
	par *parCtx
}

// noControl parks ctrlNext beyond any reachable fired count.
const noControl = ^uint64(0)

// NewEngine returns an engine with time set to zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{
		queue:    make(eventHeap, 0, initialHeapCap),
		records:  make([]event, 0, eventBlock),
		ctrlNext: noControl,
	}
}

// alloc returns the slab index of a fresh or recycled event record.
func (e *Engine) alloc() int32 {
	if n := len(e.free); n > 0 {
		id := e.free[n-1]
		e.free = e.free[:n-1]
		return id
	}
	e.records = append(e.records, event{})
	return int32(len(e.records) - 1)
}

// recycle retires a record onto the free list, invalidating every
// outstanding handle to it. The callback fields are deliberately NOT
// cleared here: Schedule/ScheduleArg overwrite them at reuse (ScheduleP
// clears argFn so dispatch cannot see a stale payload callback), which
// halves the GC write-barrier traffic on the fire path. The stale
// references keep at most one retired callback per slab slot alive —
// bounded, and far cheaper than three barrier-ed nil stores per event.
func (e *Engine) recycle(id int32) {
	e.records[id].gen++
	e.free = append(e.free, id)
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.queue) }

// PendingAll is Pending plus, in parallel mode, the domain's
// side-buffered events (fresh keys past the window deadline) — the full
// count of scheduled-but-unfired work. Diagnostics should prefer it;
// for a sequential engine it equals Pending.
func (e *Engine) PendingAll() int {
	n := len(e.queue)
	if e.par != nil {
		n += len(e.par.side)
	}
	return n
}

// NextTime returns the instant of the earliest pending event, or false
// if the queue is empty.
func (e *Engine) NextTime() (Time, bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].when, true
}

// Schedule enqueues fn to run at the given absolute time with priority
// zero. Scheduling in the past panics: that is always a model bug.
func (e *Engine) Schedule(at Time, fn func(*Engine)) Event {
	return e.ScheduleP(at, 0, fn)
}

// ScheduleP enqueues fn at the given absolute time with an explicit
// priority. Lower priorities fire first among same-instant events.
// Priority must fit in [-2^23, 2^23).
func (e *Engine) ScheduleP(at Time, priority int, fn func(*Engine)) Event {
	if fn == nil {
		panic("sim: schedule with nil callback")
	}
	id := e.alloc()
	rec := &e.records[id]
	rec.when, rec.key, rec.fn = at, e.packKey(at, priority), fn
	rec.argFn = nil // recycle leaves the previous use's fields in place
	e.enqueue(rec, id)
	return Event{eng: e, id: id, gen: rec.gen}
}

// enqueue routes a freshly scheduled record into the event heap — or,
// inside a parallel window, into the domain's side buffer when the
// event cannot fire before the barrier anyway (fresh key, past the
// window deadline). Side-buffered events rejoin the heap at the
// barrier under committed keys, so the barrier rewrites exactly the
// keys that need it instead of walking the whole queue (parallel.go).
// Sequential engines pay one predictable nil check.
func (e *Engine) enqueue(rec *event, id int32) {
	if p := e.par; p != nil && rec.key&parFresh != 0 && rec.when > p.deadline {
		p.side = append(p.side, id)
		if rec.when < p.sideMin {
			p.sideMin = rec.when
		}
		return
	}
	e.queue.push(rec, id)
}

// packKey validates the schedule arguments and returns the packed
// (priority, seq) tiebreak, consuming one sequence number.
func (e *Engine) packKey(at Time, priority int) uint64 {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", at, e.now))
	}
	if e.par != nil {
		return e.par.packKey(priority)
	}
	if priority < -priorityBias || priority >= priorityBias {
		panic(fmt.Sprintf("sim: priority %d outside [%d, %d)", priority, -priorityBias, priorityBias))
	}
	if e.seq >= maxSeq {
		panic("sim: event sequence space exhausted")
	}
	key := uint64(priority+priorityBias)<<seqBits | e.seq
	e.seq++
	return key
}

// ScheduleArg enqueues fn to run at the given absolute time with
// priority zero, passing arg back at fire time. Because fn can be a
// shared package-level function and arg a pointer to existing state,
// this form schedules per-item callbacks (request retirement, per-bank
// timeouts) without allocating a closure per event.
func (e *Engine) ScheduleArg(at Time, fn func(*Engine, any), arg any) Event {
	return e.ScheduleArgP(at, 0, fn, arg)
}

// ScheduleArgP is ScheduleArg with an explicit same-instant priority.
// Priority must fit in [-2^23, 2^23).
func (e *Engine) ScheduleArgP(at Time, priority int, fn func(*Engine, any), arg any) Event {
	if fn == nil {
		panic("sim: schedule with nil callback")
	}
	id := e.alloc()
	rec := &e.records[id]
	rec.when, rec.key, rec.argFn, rec.arg = at, e.packKey(at, priority), fn, arg
	// rec.fn may be stale from a prior use; dispatch checks argFn first.
	e.enqueue(rec, id)
	return Event{eng: e, id: id, gen: rec.gen}
}

// After enqueues fn to run delay picoseconds from now.
func (e *Engine) After(delay Time, fn func(*Engine)) Event {
	return e.Schedule(e.now+delay, fn)
}

// Cancel removes a scheduled event. Cancelling an already-fired,
// already-cancelled, or zero-handle event is a no-op.
func (e *Engine) Cancel(ev Event) {
	if !ev.Pending() {
		return
	}
	// A pending record has exactly one queue node; find it by scanning.
	// The pending population is small (tens of events in steady state),
	// so the scan is cheaper than maintaining a per-record heap index,
	// which would put a slab store into every sift move of the far
	// hotter pop path.
	for i := range e.queue {
		if e.queue[i].id == ev.id {
			e.queue.remove(i)
			e.recycle(ev.id)
			return
		}
	}
	// Inside a parallel window, the record may instead sit in the
	// domain's side buffer (fresh key past the deadline; see enqueue).
	if p := e.par; p != nil {
		for i, id := range p.side {
			if id == ev.id {
				p.side[i] = p.side[len(p.side)-1]
				p.side = p.side[:len(p.side)-1]
				// sideMin feeds the coordinator's start scan; a stale
				// finite value would make the domain look perpetually
				// pending and spin Windowed.Run forever, so recompute it
				// whenever the removed event could have been the minimum.
				if e.records[ev.id].when == p.sideMin {
					p.sideMin = Never
					for _, sid := range p.side {
						if w := e.records[sid].when; w < p.sideMin {
							p.sideMin = w
						}
					}
				}
				break
			}
		}
	}
	e.recycle(ev.id)
}

// Halt stops Run/RunUntil after the in-flight event returns.
func (e *Engine) Halt() { e.halted = true }

// SetControl arms a control hook that Run/RunUntil invoke every
// `every` fired events. A non-nil return stops the run (like Halt) and
// becomes StopCause. The hook is where callers enforce wall-clock
// deadlines, event budgets, context cancellation, and livelock
// detection without touching the per-event hot path: when disarmed
// (nil fn or zero interval) the run loops pay a single always-false
// integer compare per event, and when armed the hook itself runs only
// once per interval.
func (e *Engine) SetControl(every uint64, fn func(*Engine) error) {
	if fn == nil || every == 0 {
		e.ctrlFn, e.ctrlEvery, e.ctrlNext = nil, 0, noControl
		return
	}
	e.ctrlFn, e.ctrlEvery = fn, every
	e.ctrlNext = e.fired + every
}

// StopCause returns the error that stopped the most recent Run or
// RunUntil via the control hook, or nil if the run ended normally
// (queue drained, deadline reached, or plain Halt).
func (e *Engine) StopCause() error { return e.stopCause }

// runControl fires the armed control hook and schedules its next
// invocation. Kept out of the run loops so their bodies stay small
// enough to inline the common path around.
func (e *Engine) runControl() {
	e.ctrlNext = e.fired + e.ctrlEvery
	if err := e.ctrlFn(e); err != nil {
		e.stopCause = err
		e.halted = true
	}
}

// Step executes the single earliest pending event. It reports false if
// the queue was empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	id := e.queue.pop()
	rec := &e.records[id]
	if rec.when < e.now {
		panic("sim: event heap corrupted (time went backwards)")
	}
	e.now = rec.when
	fn, argFn, arg := rec.fn, rec.argFn, rec.arg
	e.recycle(id)
	e.fired++
	if argFn != nil {
		argFn(e, arg)
	} else {
		fn(e)
	}
	return true
}

// Run executes events until the queue drains, Halt is called, or the
// control hook (SetControl) stops the run — in which case StopCause
// reports why.
func (e *Engine) Run() {
	e.halted = false
	e.stopCause = nil
	for !e.halted && e.Step() {
		if e.fired >= e.ctrlNext {
			e.runControl()
		}
	}
}

// RunUntil executes events with timestamps <= deadline, then advances
// the clock to the deadline (if it is later than the last event). It
// returns the number of events fired during this call. The control
// hook applies here too; a hook stop leaves the clock at the last
// fired event rather than advancing it to the deadline.
func (e *Engine) RunUntil(deadline Time) uint64 {
	e.halted = false
	e.stopCause = nil
	start := e.fired
	for !e.halted {
		if len(e.queue) == 0 || e.queue[0].when > deadline {
			break
		}
		e.Step()
		if e.fired >= e.ctrlNext {
			e.runControl()
		}
	}
	if e.stopCause == nil && e.now < deadline {
		e.now = deadline
	}
	return e.fired - start
}

// Reset returns the engine to its post-NewEngine state while keeping
// the slab, heap, and free-list storage warm, so a pooled engine can be
// reused across runs without re-growing its arenas (the slab and heap
// reach steady-state size within one run; reallocating them per sweep
// cell is a measurable fraction of short Quick-fidelity cells). Every
// record's generation is bumped — handles held by the previous machine
// become permanent no-ops, exactly as if their events had fired — and
// the callback fields are cleared so the retired machine's object graph
// is not kept alive across runs. Reset on a parallel-domain engine
// panics: Windowed owns those engines' lifecycle.
func (e *Engine) Reset() {
	if e.par != nil {
		panic("sim: Reset on a parallel-domain engine")
	}
	e.queue = e.queue[:0]
	for i := range e.records {
		rec := &e.records[i]
		rec.gen++
		rec.fn, rec.argFn, rec.arg = nil, nil, nil
	}
	// Rebuild the free list so alloc hands out ids 0,1,2,... like a
	// fresh engine (ids never affect event order, but keeping the
	// pattern identical makes slab layouts comparable across runs).
	if cap(e.free) < len(e.records) {
		e.free = make([]int32, len(e.records))
	}
	e.free = e.free[:len(e.records)]
	for i := range e.free {
		e.free[i] = int32(len(e.records) - 1 - i)
	}
	e.now, e.seq, e.fired = 0, 0, 0
	e.halted = false
	e.stopCause = nil
	e.ctrlFn, e.ctrlEvery, e.ctrlNext = nil, 0, noControl
}

// Clock converts between a fixed-period clock domain and absolute time.
type Clock struct {
	period Time
}

// NewClock returns a clock with the given period. A zero period panics.
func NewClock(period Time) Clock {
	if period == 0 {
		panic("sim: zero clock period")
	}
	return Clock{period: period}
}

// Period returns the clock period in picoseconds.
func (c Clock) Period() Time { return c.period }

// FreqMHz returns the clock frequency in megahertz.
func (c Clock) FreqMHz() float64 {
	return 1e6 / float64(c.period)
}

// Cycles converts a duration to whole cycles, rounding up.
func (c Clock) Cycles(d Time) uint64 {
	return uint64((d + c.period - 1) / c.period)
}

// Duration converts a cycle count to a duration.
func (c Clock) Duration(cycles uint64) Time {
	return Time(cycles) * c.period
}

// NextEdge returns the first clock edge at or after t.
func (c Clock) NextEdge(t Time) Time {
	rem := t % c.period
	if rem == 0 {
		return t
	}
	return t + c.period - rem
}
