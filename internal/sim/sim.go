// Package sim provides a small deterministic discrete-event simulation
// kernel used by every timed component in the microbank simulator.
//
// Time is measured in picoseconds (type Time) so that the 2 GHz core
// domain (500 ps), the 250 MHz DRAM mat domain (4000 ps), and arbitrary
// interface clocks can coexist without rounding. Events scheduled for
// the same instant fire in the order of their (priority, sequence)
// pair, making runs bit-for-bit reproducible.
//
// The engine recycles event records through an internal free list
// (fired and cancelled events are reused by later Schedule calls), so
// steady-state scheduling does not allocate. Event handles carry a
// generation number, which makes operations on already-fired or
// already-cancelled handles safe no-ops even after the record has been
// reused.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulation timestamp in picoseconds.
type Time uint64

// Common time units, expressed in Time (picoseconds).
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * 1000
	Millisecond Time = 1000 * 1000 * 1000
)

// Never is a sentinel timestamp that compares after every reachable
// simulation instant. It marks idle resources.
const Never Time = ^Time(0)

// event is the engine-owned record of a scheduled callback. Records
// are recycled: gen increments every time the record is retired, which
// invalidates any Event handles still pointing at it.
type event struct {
	when     Time
	priority int
	seq      uint64
	gen      uint64
	fn       func(*Engine)
	index    int // heap index, -1 once popped or cancelled
}

// Event is a handle to a scheduled callback, returned by Schedule and
// friends. The zero Event is a valid "no event" handle: Cancel on it
// is a no-op and Pending reports false.
type Event struct {
	e   *event
	gen uint64
}

// Pending reports whether the event is still scheduled to fire.
func (ev Event) Pending() bool { return ev.e != nil && ev.gen == ev.e.gen }

// When returns the instant the event is scheduled to fire, or Never if
// the event already fired, was cancelled, or is the zero handle.
func (ev Event) When() Time {
	if !ev.Pending() {
		return Never
	}
	return ev.e.when
}

// Cancelled reports whether the event was retired (fired or removed)
// after being scheduled. The zero handle reports false.
func (ev Event) Cancelled() bool { return ev.e != nil && ev.gen != ev.e.gen }

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	if h[i].priority != h[j].priority {
		return h[i].priority < h[j].priority
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// initialHeapCap pre-sizes the event queue so a run reaches its
// steady-state pending-event count without regrowing the heap slice.
const initialHeapCap = 512

// eventBlock is how many event records one free-list refill allocates;
// amortizing record allocation over blocks keeps allocs/op near zero
// even while the pending-event population is still growing.
const eventBlock = 128

// Engine is a discrete-event simulation engine. The zero value is not
// usable; construct one with NewEngine.
type Engine struct {
	now    Time
	queue  eventHeap
	free   []*event // retired records awaiting reuse
	seq    uint64
	fired  uint64
	halted bool
}

// NewEngine returns an engine with time set to zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{queue: make(eventHeap, 0, initialHeapCap)}
}

// alloc returns a fresh or recycled event record.
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	block := make([]event, eventBlock)
	for i := range block[1:] {
		e.free = append(e.free, &block[1+i])
	}
	return &block[0]
}

// recycle retires a record onto the free list, invalidating every
// outstanding handle to it.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	e.free = append(e.free, ev)
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule enqueues fn to run at the given absolute time with priority
// zero. Scheduling in the past panics: that is always a model bug.
func (e *Engine) Schedule(at Time, fn func(*Engine)) Event {
	return e.ScheduleP(at, 0, fn)
}

// ScheduleP enqueues fn at the given absolute time with an explicit
// priority. Lower priorities fire first among same-instant events.
func (e *Engine) ScheduleP(at Time, priority int, fn func(*Engine)) Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule with nil callback")
	}
	ev := e.alloc()
	ev.when, ev.priority, ev.seq, ev.fn = at, priority, e.seq, fn
	e.seq++
	heap.Push(&e.queue, ev)
	return Event{e: ev, gen: ev.gen}
}

// After enqueues fn to run delay picoseconds from now.
func (e *Engine) After(delay Time, fn func(*Engine)) Event {
	return e.Schedule(e.now+delay, fn)
}

// Cancel removes a scheduled event. Cancelling an already-fired,
// already-cancelled, or zero-handle event is a no-op.
func (e *Engine) Cancel(ev Event) {
	if !ev.Pending() {
		return
	}
	heap.Remove(&e.queue, ev.e.index)
	e.recycle(ev.e)
}

// Halt stops Run/RunUntil after the in-flight event returns.
func (e *Engine) Halt() { e.halted = true }

// Step executes the single earliest pending event. It reports false if
// the queue was empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	if ev.when < e.now {
		panic("sim: event heap corrupted (time went backwards)")
	}
	e.now = ev.when
	fn := ev.fn
	e.recycle(ev)
	e.fired++
	fn(e)
	return true
}

// Run executes events until the queue drains or Halt is called.
func (e *Engine) Run() {
	e.halted = false
	for !e.halted && e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances
// the clock to the deadline (if it is later than the last event). It
// returns the number of events fired during this call.
func (e *Engine) RunUntil(deadline Time) uint64 {
	e.halted = false
	start := e.fired
	for !e.halted {
		if len(e.queue) == 0 || e.queue[0].when > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.fired - start
}

// Clock converts between a fixed-period clock domain and absolute time.
type Clock struct {
	period Time
}

// NewClock returns a clock with the given period. A zero period panics.
func NewClock(period Time) Clock {
	if period == 0 {
		panic("sim: zero clock period")
	}
	return Clock{period: period}
}

// Period returns the clock period in picoseconds.
func (c Clock) Period() Time { return c.period }

// FreqMHz returns the clock frequency in megahertz.
func (c Clock) FreqMHz() float64 {
	return 1e6 / float64(c.period)
}

// Cycles converts a duration to whole cycles, rounding up.
func (c Clock) Cycles(d Time) uint64 {
	return uint64((d + c.period - 1) / c.period)
}

// Duration converts a cycle count to a duration.
func (c Clock) Duration(cycles uint64) Time {
	return Time(cycles) * c.period
}

// NextEdge returns the first clock edge at or after t.
func (c Clock) NextEdge(t Time) Time {
	rem := t % c.period
	if rem == 0 {
		return t
	}
	return t + c.period - rem
}
