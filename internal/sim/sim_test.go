package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30, func(*Engine) { got = append(got, 3) })
	e.Schedule(10, func(*Engine) { got = append(got, 1) })
	e.Schedule(20, func(*Engine) { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %d, want 30", e.Now())
	}
}

func TestEngineSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func(*Engine) { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant order = %v, want ascending", got)
		}
	}
}

func TestEnginePriority(t *testing.T) {
	e := NewEngine()
	var got []string
	e.ScheduleP(5, 1, func(*Engine) { got = append(got, "low") })
	e.ScheduleP(5, -1, func(*Engine) { got = append(got, "high") })
	e.Run()
	if got[0] != "high" || got[1] != "low" {
		t.Fatalf("priority order = %v", got)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func(*Engine) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(5, func(*Engine) {})
}

func TestEngineNilCallbackPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("nil callback did not panic")
		}
	}()
	e.Schedule(5, nil)
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(10, func(*Engine) { fired = true })
	if !ev.Pending() || ev.When() != 10 {
		t.Fatalf("scheduled event not pending at 10: %v %v", ev.Pending(), ev.When())
	}
	e.Cancel(ev)
	e.Cancel(ev)      // double-cancel is a no-op
	e.Cancel(Event{}) // zero handle is a no-op
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() || ev.Pending() {
		t.Fatal("event does not report cancelled")
	}
	if ev.When() != Never {
		t.Fatal("cancelled event still reports a fire time")
	}
}

func TestEngineRecyclesEvents(t *testing.T) {
	// Fired and cancelled records are reused by later Schedule calls; a
	// stale handle must not be able to touch the record's new tenant.
	e := NewEngine()
	first := e.Schedule(1, func(*Engine) {})
	e.Run()
	if first.Pending() || !first.Cancelled() {
		t.Fatal("fired event still pending")
	}
	fired := false
	second := e.Schedule(2, func(*Engine) { fired = true })
	e.Cancel(first) // stale handle: must not cancel the recycled record
	if !second.Pending() {
		t.Fatal("stale Cancel removed the recycled event")
	}
	e.Run()
	if !fired {
		t.Fatal("recycled event did not fire")
	}
}

func TestEngineSteadyStateDoesNotAllocate(t *testing.T) {
	e := NewEngine()
	fn := func(*Engine) {}
	// Warm the free list past the first block.
	for i := 0; i < 4; i++ {
		e.Schedule(e.Now()+1, fn)
		e.Step()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		e.Schedule(e.Now()+1, fn)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule+step allocates %.1f/op, want 0", allocs)
	}
}

func TestEngineAfterAndChaining(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.After(10, func(e *Engine) {
		times = append(times, e.Now())
		e.After(15, func(e *Engine) {
			times = append(times, e.Now())
		})
	})
	e.Run()
	if len(times) != 2 || times[0] != 10 || times[1] != 25 {
		t.Fatalf("times = %v, want [10 25]", times)
	}
}

func TestEngineHalt(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := Time(1); i <= 10; i++ {
		e.Schedule(i, func(e *Engine) {
			count++
			if count == 3 {
				e.Halt()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", e.Pending())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := Time(10); i <= 100; i += 10 {
		e.Schedule(i, func(*Engine) { count++ })
	}
	n := e.RunUntil(45)
	if n != 4 || count != 4 {
		t.Fatalf("fired %d events (count %d), want 4", n, count)
	}
	if e.Now() != 45 {
		t.Fatalf("Now = %d, want 45", e.Now())
	}
	e.RunUntil(200)
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	if e.Now() != 200 {
		t.Fatalf("Now = %d, want 200", e.Now())
	}
}

func TestEngineStepEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

// TestEngineRandomOrder checks, property-style, that random schedules
// always fire in nondecreasing time order and fire exactly once.
func TestEngineRandomOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		e := NewEngine()
		n := 200
		var fireTimes []Time
		want := make([]Time, 0, n)
		for i := 0; i < n; i++ {
			at := Time(rng.Intn(1000))
			want = append(want, at)
			e.Schedule(at, func(e *Engine) { fireTimes = append(fireTimes, e.Now()) })
		}
		e.Run()
		if len(fireTimes) != n {
			t.Fatalf("fired %d, want %d", len(fireTimes), n)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fireTimes[i] != want[i] {
				t.Fatalf("trial %d: fire order mismatch at %d: got %d want %d",
					trial, i, fireTimes[i], want[i])
			}
		}
	}
}

func TestClockBasics(t *testing.T) {
	c := NewClock(500) // 2 GHz
	if c.Period() != 500 {
		t.Fatalf("period = %d", c.Period())
	}
	if got := c.FreqMHz(); got != 2000 {
		t.Fatalf("freq = %v MHz, want 2000", got)
	}
	if c.Cycles(1400) != 3 {
		t.Fatalf("Cycles(1400) = %d, want 3 (round up)", c.Cycles(1400))
	}
	if c.Cycles(1500) != 3 {
		t.Fatalf("Cycles(1500) = %d, want 3", c.Cycles(1500))
	}
	if c.Duration(4) != 2000 {
		t.Fatalf("Duration(4) = %d, want 2000", c.Duration(4))
	}
}

func TestClockNextEdge(t *testing.T) {
	c := NewClock(4000)
	cases := []struct{ in, want Time }{
		{0, 0}, {1, 4000}, {3999, 4000}, {4000, 4000}, {4001, 8000},
	}
	for _, tc := range cases {
		if got := c.NextEdge(tc.in); got != tc.want {
			t.Errorf("NextEdge(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestClockZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero period did not panic")
		}
	}()
	NewClock(0)
}

// Property: NextEdge output is always >= input, aligned, and less than
// one period beyond the input.
func TestClockNextEdgeProperty(t *testing.T) {
	f := func(tRaw uint32, pRaw uint16) bool {
		p := Time(pRaw%10000) + 1
		c := NewClock(p)
		in := Time(tRaw)
		out := c.NextEdge(in)
		return out >= in && out%p == 0 && out-in < p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Cycles/Duration round-trip: Duration(Cycles(d)) >= d and
// within one period.
func TestClockCyclesDurationProperty(t *testing.T) {
	f := func(dRaw uint32, pRaw uint16) bool {
		p := Time(pRaw%10000) + 1
		c := NewClock(p)
		d := Time(dRaw)
		rt := c.Duration(c.Cycles(d))
		return rt >= d && rt-d < p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
