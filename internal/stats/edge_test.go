package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestHistogramHugeValues is the regression test for the top-bucket
// overflow: values with bit 63 set used to compute bucket index 64 and
// panic on the 64-entry bucket array.
func TestHistogramHugeValues(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{math.MaxUint64, 1 << 63, 1<<63 + 12345, 1<<62 - 1, 7} {
		h.Observe(v) // must not panic
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Max() != math.MaxUint64 {
		t.Fatalf("max = %d, want MaxUint64", h.Max())
	}
	if h.Min() != 7 {
		t.Fatalf("min = %d, want 7", h.Min())
	}
	// The p100 bound must equal the observed maximum, not a wrapped or
	// truncated bucket edge.
	if q := h.Quantile(1.0); q != math.MaxUint64 {
		t.Fatalf("Quantile(1.0) = %d, want MaxUint64", q)
	}
}

// TestHistogramQuantileCappedAtMax: every quantile is bounded by the
// observed maximum, even when the bucket's power-of-two upper edge
// lies above it.
func TestHistogramQuantileCappedAtMax(t *testing.T) {
	var h Histogram
	h.Observe(1000) // bucket edge 1023
	for _, q := range []float64{0.01, 0.5, 0.99, 1.0} {
		if v := h.Quantile(q); v != 1000 {
			t.Fatalf("Quantile(%v) = %d, want capped at max 1000", q, v)
		}
	}
}

// TestHistogramQuantileMonotoneHuge extends the monotonicity property
// to samples spanning the full uint64 range, including top-bucket
// values.
func TestHistogramQuantileMonotoneHuge(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var h Histogram
		for i := 0; i < 100; i++ {
			v := rng.Uint64() >> uint(rng.Intn(64))
			h.Observe(v)
		}
		h.Observe(math.MaxUint64)
		prev := uint64(0)
		for q := 0.05; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev || v > h.Max() {
				return false
			}
			prev = v
		}
		return h.Quantile(1.0) == h.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestTableRowsWiderThanHeader: extra cells beyond the header render
// under empty header text instead of panicking.
func TestTableRowsWiderThanHeader(t *testing.T) {
	tb := NewTable("wide", "A")
	tb.AddRow("x", "extra1", "extra2")
	tb.AddRow("y")
	out := tb.String() // must not panic
	if !strings.Contains(out, "extra2") {
		t.Fatalf("wide cell missing from render:\n%s", out)
	}
	if tb.Cell(0, 2) != "extra2" {
		t.Fatalf("Cell(0,2) = %q", tb.Cell(0, 2))
	}
}

// TestTableSeparatorEdges: a separator before any rows is suppressed;
// one after the last row draws a closing rule.
func TestTableSeparatorEdges(t *testing.T) {
	tb := NewTable("", "A")
	tb.AddSeparator() // before row 0: suppressed
	tb.AddRow("x")
	tb.AddRow("y")
	tb.AddSeparator() // after last row: closing rule
	out := tb.String()
	// Exactly two rules: the one under the header plus the closing one.
	if got := strings.Count(out, "-"); got == 0 {
		t.Fatalf("no rules rendered:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	rules := 0
	for _, l := range lines {
		if strings.Trim(l, "-") == "" && l != "" {
			rules++
		}
	}
	if rules != 2 {
		t.Fatalf("rule count = %d, want 2 (header + closing):\n%s", rules, out)
	}
	if !strings.HasSuffix(strings.TrimRight(out, "\n"), "-") {
		t.Fatalf("closing rule missing:\n%s", out)
	}
}

// TestTableEmpty: a table with no header and no rows renders without
// panicking.
func TestTableEmpty(t *testing.T) {
	tb := NewTable("")
	_ = tb.String() // must not panic
}

// TestSetSortedOrder pins the documented iteration order: sorted by
// name, independent of insertion order.
func TestSetSortedOrder(t *testing.T) {
	s := NewSet()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		s.Counter(n).Inc()
	}
	names := s.Names()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
	out := s.String()
	if strings.Index(out, "alpha") > strings.Index(out, "zeta") {
		t.Fatalf("String() not in sorted order:\n%s", out)
	}
}
