package stats

// Property tests for the QoS metrics: randomized sample streams check
// the invariants the tail-latency plumbing relies on — quantiles are
// monotone in q and bracketed by [Min, Max], merging histograms is
// exactly equivalent to observing the union, MaxSlowdown is at least 1
// whenever it is finite, and Jain's index stays in (0, 1] and hits 1
// exactly under even service.

import (
	"math"
	"math/rand"
	"testing"
)

// randHist builds a histogram of n samples drawn with a randomized
// magnitude spread, so bucket occupancy varies from spiky to wide.
func randHist(rng *rand.Rand, n int) Histogram {
	var h Histogram
	shift := uint(rng.Intn(40))
	for i := 0; i < n; i++ {
		h.Observe(rng.Uint64() >> shift)
	}
	return h
}

func TestQuantileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		h := randHist(rng, 1+rng.Intn(500))
		prev := uint64(0)
		for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1} {
			v := h.Quantile(q)
			if v < prev {
				t.Fatalf("trial %d: Quantile(%g)=%d below previous %d", trial, q, v, prev)
			}
			if v > h.Max() {
				t.Fatalf("trial %d: Quantile(%g)=%d exceeds Max %d", trial, q, v, h.Max())
			}
			prev = v
		}
		if q1 := h.Quantile(1); q1 != h.Max() {
			t.Fatalf("trial %d: Quantile(1)=%d, want Max %d", trial, q1, h.Max())
		}
	}
}

// TestMergeEquivalenceProperty: merging histograms of two streams is
// exactly the histogram of the concatenated stream — bucket counts,
// count, sum, min, and max all included. Histogram is a comparable
// value type, so plain == checks every field.
func TestMergeEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		var parts [3]Histogram
		var whole Histogram
		for p := range parts {
			shift := uint(rng.Intn(40))
			for i, n := 0, rng.Intn(200); i < n; i++ {
				v := rng.Uint64() >> shift
				parts[p].Observe(v)
				whole.Observe(v)
			}
		}
		var merged Histogram
		for p := range parts {
			merged.Merge(&parts[p])
		}
		if merged != whole {
			t.Fatalf("trial %d: merge of parts differs from histogram of union: %+v vs %+v",
				trial, merged, whole)
		}
	}
}

func TestMaxSlowdownProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		hists := make([]Histogram, 1+rng.Intn(8))
		for i := range hists {
			hists[i] = randHist(rng, rng.Intn(100))
		}
		s := MaxSlowdown(hists)
		if math.IsInf(s, 1) {
			continue // a zero-mean thread alongside a nonzero one
		}
		any := false
		for i := range hists {
			if hists[i].Count() > 0 {
				any = true
			}
		}
		if !any {
			if s != 0 {
				t.Fatalf("trial %d: no samples but MaxSlowdown=%g", trial, s)
			}
			continue
		}
		if s < 1 {
			t.Fatalf("trial %d: MaxSlowdown=%g < 1", trial, s)
		}
	}
}

func TestFairnessIndexProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		hists := make([]Histogram, 1+rng.Intn(8))
		for i := range hists {
			hists[i] = randHist(rng, 1+rng.Intn(100))
		}
		f := FairnessIndex(hists)
		if f <= 0 || f > 1+1e-12 {
			t.Fatalf("trial %d: FairnessIndex=%g outside (0,1]", trial, f)
		}
	}
	// Identical per-thread service is perfectly fair.
	even := make([]Histogram, 4)
	for i := range even {
		even[i].Observe(100)
		even[i].Observe(300)
	}
	if f := FairnessIndex(even); math.Abs(f-1) > 1e-12 {
		t.Fatalf("even service: FairnessIndex=%g, want 1", f)
	}
}
