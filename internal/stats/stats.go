// Package stats provides the lightweight instrumentation primitives
// used throughout the simulator: named counters, ratio helpers,
// latency histograms, and fixed-width table rendering for the
// experiment harnesses.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	n uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Ratio returns a/b, or 0 when b is zero.
func Ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Histogram is a power-of-two bucketed latency histogram. The zero
// value is ready to use.
type Histogram struct {
	buckets [64]uint64
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
}

// Observe records one sample. Values at or above 2^62 share the top
// bucket (a 64-bit bit-length would otherwise index one past the
// array for values with bit 63 set).
func (h *Histogram) Observe(v uint64) {
	idx := 0
	for b := v; b > 0; b >>= 1 {
		idx++
	}
	if idx >= len(h.buckets) {
		idx = len(h.buckets) - 1
	}
	h.buckets[idx]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the sample mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the smallest sample (0 if empty).
func (h *Histogram) Min() uint64 { return h.min }

// Max returns the largest sample.
func (h *Histogram) Max() uint64 { return h.max }

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) using
// bucket upper edges capped at the observed maximum; it is exact to
// within a factor of two and never exceeds Max. The result is
// non-decreasing in q.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	var cum uint64
	for i, b := range h.buckets {
		cum += b
		if cum >= target {
			if i == 0 {
				return 0
			}
			// The top bucket is open-ended (it absorbs everything at
			// or above 2^62), and in any bucket the true largest
			// sample may sit below the power-of-two edge — cap at the
			// observed maximum. Since bucket edges and Max are both
			// non-decreasing, the capped result stays monotone in q.
			edge := uint64(1)<<uint(i) - 1
			if i == len(h.buckets)-1 || edge > h.max {
				return h.max
			}
			return edge
		}
	}
	return h.max
}

// Merge adds all samples of other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.count == 0 {
		return
	}
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
}

// MaxSlowdown returns the largest per-thread mean latency over the
// smallest, across histograms with at least one sample — the standard
// max-slowdown metric with the best-served thread standing in for the
// run-alone baseline (the simulator has no solo run to compare
// against). It is >= 1 whenever any thread has samples: 1 means
// perfectly even service, larger means the worst-served thread is
// that many times slower than the best. Returns 0 with no samples,
// +Inf when a thread's mean is zero while another's is not.
func MaxSlowdown(hists []Histogram) float64 {
	var minM, maxM float64
	seen := false
	for i := range hists {
		h := &hists[i]
		if h.Count() == 0 {
			continue
		}
		m := h.Mean()
		if !seen || m < minM {
			minM = m
		}
		if m > maxM {
			maxM = m
		}
		seen = true
	}
	switch {
	case !seen:
		return 0
	case minM > 0:
		return maxM / minM
	case maxM == 0:
		return 1
	default:
		return math.Inf(1)
	}
}

// FairnessIndex returns Jain's fairness index over per-thread mean
// latencies: (Σm)²/(n·Σm²) across the n threads with samples. It is 1
// when every thread sees the same mean latency and approaches 1/n
// under maximal skew; 0 with no samples.
func FairnessIndex(hists []Histogram) float64 {
	var sum, sumSq float64
	n := 0
	for i := range hists {
		h := &hists[i]
		if h.Count() == 0 {
			continue
		}
		m := h.Mean()
		sum += m
		sumSq += m * m
		n++
	}
	if n == 0 {
		return 0
	}
	if sumSq == 0 {
		return 1 // every mean is zero: identical service
	}
	return sum * sum / (float64(n) * sumSq)
}

// Set is a string-keyed collection of counters used for per-run
// summaries. Iteration (Names, String) is in sorted name order,
// independent of insertion order.
type Set struct {
	names []string
	vals  map[string]*Counter
}

// NewSet returns an empty counter set.
func NewSet() *Set {
	return &Set{vals: map[string]*Counter{}}
}

// Counter returns (creating if needed) the named counter.
func (s *Set) Counter(name string) *Counter {
	if c, ok := s.vals[name]; ok {
		return c
	}
	c := &Counter{}
	s.vals[name] = c
	s.names = append(s.names, name)
	return c
}

// Get returns the value of the named counter (0 if absent).
func (s *Set) Get(name string) uint64 {
	if c, ok := s.vals[name]; ok {
		return c.Value()
	}
	return 0
}

// Names returns the counter names in sorted order.
func (s *Set) Names() []string {
	out := append([]string(nil), s.names...)
	sort.Strings(out)
	return out
}

// String renders the set one counter per line.
func (s *Set) String() string {
	var b strings.Builder
	for _, n := range s.Names() {
		fmt.Fprintf(&b, "%-32s %12d\n", n, s.vals[n].Value())
	}
	return b.String()
}

// Table renders experiment output as a fixed-width text table matching
// the row/column structure of the paper's figures.
type Table struct {
	Title   string
	Header  []string
	rows    [][]string
	rowSeps map[int]bool
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header, rowSeps: map[int]bool{}}
}

// AddRow appends a row; values are formatted with %v, floats with 3
// decimal places (the paper's precision in Figs. 6, 8, 9).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// AddSeparator draws a rule after the last added row.
func (t *Table) AddSeparator() {
	t.rowSeps[len(t.rows)] = true
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// Cell returns the formatted cell (row, col); it panics if out of range.
func (t *Table) Cell(row, col int) string { return t.rows[row][col] }

// Row returns a copy of the formatted cells of one data row; it panics
// if the row is out of range.
func (t *Table) Row(row int) []string {
	return append([]string(nil), t.rows[row]...)
}

// String renders the table. Rows may carry more cells than the header
// (the extra columns get empty header text); a separator added before
// any rows is suppressed, one added after the last row is drawn as a
// closing rule.
func (t *Table) String() string {
	cols := len(t.Header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if total < 2 {
		total = 2 // empty header and no rows: keep the rule non-negative
	}
	rule := strings.Repeat("-", total-2)
	b.WriteString(rule)
	b.WriteByte('\n')
	for i, r := range t.rows {
		line(r)
		if t.rowSeps[i+1] {
			b.WriteString(rule)
			b.WriteByte('\n')
		}
	}
	return b.String()
}
