package stats

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("Reset left %d", c.Value())
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 2) != 0.5 {
		t.Error("Ratio(1,2) != 0.5")
	}
	if Ratio(1, 0) != 0 {
		t.Error("Ratio by zero should be 0")
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram not zero")
	}
	for _, v := range []uint64{1, 2, 3, 4, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	if got := h.Mean(); got != 22 {
		t.Fatalf("mean = %v, want 22", got)
	}
	if q := h.Quantile(0.5); q < 2 || q > 4 {
		t.Fatalf("median bound = %d, want within [2,4]", q)
	}
	if h.Quantile(1.0) < 64 {
		t.Fatalf("p100 bound = %d, want >= 64", h.Quantile(1.0))
	}
	if h.Quantile(2.0) != h.Quantile(1.0) {
		t.Fatal("q>1 not clamped")
	}
}

func TestHistogramZeroSample(t *testing.T) {
	var h Histogram
	h.Observe(0)
	if h.Count() != 1 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("zero sample mishandled: %+v", h)
	}
	if h.Quantile(0.5) != 0 {
		t.Fatalf("quantile of all-zero = %d", h.Quantile(0.5))
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := uint64(1); i <= 10; i++ {
		a.Observe(i)
	}
	for i := uint64(100); i <= 109; i++ {
		b.Observe(i)
	}
	a.Merge(&b)
	if a.Count() != 20 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != 1 || a.Max() != 109 {
		t.Fatalf("merged min/max = %d/%d", a.Min(), a.Max())
	}
	var empty Histogram
	a.Merge(&empty) // no-op
	if a.Count() != 20 {
		t.Fatal("merging empty changed count")
	}
	empty.Merge(&a)
	if empty.Count() != 20 || empty.Min() != 1 {
		t.Fatal("merge into empty lost state")
	}
}

// Property: quantile bound is monotone in q and never below min/above
// max-rounded-up.
func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var h Histogram
		for i := 0; i < 200; i++ {
			h.Observe(uint64(rng.Intn(100000)))
		}
		prev := uint64(0)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSet(t *testing.T) {
	s := NewSet()
	s.Counter("reads").Add(3)
	s.Counter("writes").Inc()
	s.Counter("reads").Inc()
	if s.Get("reads") != 4 || s.Get("writes") != 1 {
		t.Fatalf("set values wrong: %v", s)
	}
	if s.Get("absent") != 0 {
		t.Fatal("absent counter nonzero")
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "reads" || names[1] != "writes" {
		t.Fatalf("Names = %v", names)
	}
	out := s.String()
	if !strings.Contains(out, "reads") || !strings.Contains(out, "4") {
		t.Fatalf("String() = %q", out)
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("Fig. X", "nW", "nB", "IPC")
	tb.AddRow(1, 1, 1.0)
	tb.AddSeparator()
	tb.AddRow(16, 16, 1.548)
	out := tb.String()
	if !strings.Contains(out, "Fig. X") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "1.548") {
		t.Errorf("float not rendered to 3 places: %q", out)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
	if tb.Cell(1, 2) != "1.548" {
		t.Errorf("Cell(1,2) = %q", tb.Cell(1, 2))
	}
	if strings.Count(out, "----") < 2 {
		t.Errorf("separator rule missing:\n%s", out)
	}
	// float32 path
	tb2 := NewTable("", "v")
	tb2.AddRow(float32(2.5))
	if tb2.Cell(0, 0) != "2.500" {
		t.Errorf("float32 cell = %q", tb2.Cell(0, 0))
	}
}
