package store

// ErrFS: the injectable filesystem fault layer. Tests (and the
// durability smokes) wrap a real FS in an ErrFS and arm Faults —
// short writes, ENOSPC, EIO, fsync failures, failed renames — that
// fire deterministically on the Nth matching operation. The store and
// journal must degrade (quarantine, disable, warn) under every one of
// these, never panic or return a silently wrong result; the fault
// layer is what makes that claim testable.

import (
	"errors"
	"os"
	"strings"
	"sync"
)

// Synthetic disk errors. Defined here rather than as raw syscall
// errnos so fault-injection tests stay portable; the store only ever
// inspects errors with errors.Is(err, os.ErrNotExist), so the exact
// identity of an injected failure is irrelevant to the code under
// test.
var (
	ErrNoSpace   = errors.New("injected: no space left on device")
	ErrIO        = errors.New("injected: input/output error")
	ErrShortSync = errors.New("injected: fsync failed")
)

// Op names an FS operation an injected fault can target.
type Op string

// Fault targets.
const (
	OpOpen    Op = "open"
	OpWrite   Op = "write"
	OpSync    Op = "sync"
	OpClose   Op = "close"
	OpRead    Op = "read"
	OpRename  Op = "rename"
	OpRemove  Op = "remove"
	OpMkdir   Op = "mkdir"
	OpReadDir Op = "readdir"
	OpSyncDir Op = "syncdir"
)

// Fault is one armed failure: the Nth (Skip-th, 0-based) operation of
// kind Op whose path contains Match fails with Err. For OpWrite,
// Short > 0 makes the failing write a torn one — Short bytes reach the
// file before the error returns, modeling a partial sector write.
// Count bounds how many matching operations fail (0 means exactly
// one).
type Fault struct {
	Op    Op
	Match string // substring of the operation's path ("" matches all)
	Skip  int    // matching operations to let through first
	Count int    // matching operations to fail (0 = 1)
	Err   error  // error to return (nil defaults to ErrIO)
	Short int    // OpWrite: bytes written before the failure
}

// ErrFS wraps an FS with deterministic fault injection. Safe for
// concurrent use.
type ErrFS struct {
	base FS

	mu     sync.Mutex
	faults []*armedFault
	log    []string // operation log, for test assertions
}

type armedFault struct {
	Fault
	seen  int // matching operations observed so far
	fired int // failures delivered so far
}

// NewErrFS wraps base (OS when nil) with an empty fault set.
func NewErrFS(base FS) *ErrFS {
	if base == nil {
		base = OS
	}
	return &ErrFS{base: base}
}

// Inject arms a fault. Faults are independent; the first armed fault
// that matches an operation decides it.
func (e *ErrFS) Inject(f Fault) {
	if f.Err == nil {
		f.Err = ErrIO
	}
	if f.Count == 0 {
		f.Count = 1
	}
	e.mu.Lock()
	e.faults = append(e.faults, &armedFault{Fault: f})
	e.mu.Unlock()
}

// Ops returns the logged operations (op + path), for assertions about
// what the code under test actually touched.
func (e *ErrFS) Ops() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.log...)
}

// check logs the operation and returns the armed fault that claims it,
// if any.
func (e *ErrFS) check(op Op, path string) *Fault {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.log = append(e.log, string(op)+" "+path)
	for _, f := range e.faults {
		if f.Op != op || !strings.Contains(path, f.Match) || f.fired >= f.Count {
			continue
		}
		if f.seen < f.Skip {
			f.seen++
			continue
		}
		f.seen++
		f.fired++
		return &f.Fault
	}
	return nil
}

func (e *ErrFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if f := e.check(OpOpen, name); f != nil {
		return nil, f.Err
	}
	file, err := e.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &errFile{fs: e, name: name, f: file}, nil
}

func (e *ErrFS) ReadFile(name string) ([]byte, error) {
	if f := e.check(OpRead, name); f != nil {
		return nil, f.Err
	}
	return e.base.ReadFile(name)
}

func (e *ErrFS) Rename(oldpath, newpath string) error {
	if f := e.check(OpRename, newpath); f != nil {
		return f.Err
	}
	return e.base.Rename(oldpath, newpath)
}

func (e *ErrFS) Remove(name string) error {
	if f := e.check(OpRemove, name); f != nil {
		return f.Err
	}
	return e.base.Remove(name)
}

func (e *ErrFS) MkdirAll(name string, perm os.FileMode) error {
	if f := e.check(OpMkdir, name); f != nil {
		return f.Err
	}
	return e.base.MkdirAll(name, perm)
}

func (e *ErrFS) ReadDir(name string) ([]os.DirEntry, error) {
	if f := e.check(OpReadDir, name); f != nil {
		return nil, f.Err
	}
	return e.base.ReadDir(name)
}

func (e *ErrFS) SyncDir(name string) error {
	if f := e.check(OpSyncDir, name); f != nil {
		return f.Err
	}
	return e.base.SyncDir(name)
}

// errFile threads write/sync/close faults through to an open handle.
type errFile struct {
	fs   *ErrFS
	name string
	f    File
}

func (f *errFile) Write(p []byte) (int, error) {
	if fl := f.fs.check(OpWrite, f.name); fl != nil {
		n := fl.Short
		if n > len(p) {
			n = len(p)
		}
		if n > 0 {
			// Torn write: part of the payload reaches the file before
			// the failure surfaces.
			if wn, werr := f.f.Write(p[:n]); werr != nil {
				return wn, fl.Err
			}
		}
		return n, fl.Err
	}
	return f.f.Write(p)
}

func (f *errFile) Sync() error {
	if fl := f.fs.check(OpSync, f.name); fl != nil {
		return fl.Err
	}
	return f.f.Sync()
}

func (f *errFile) Close() error {
	if fl := f.fs.check(OpClose, f.name); fl != nil {
		f.f.Close() // release the real handle regardless
		return fl.Err
	}
	return f.f.Close()
}
