package store

// The filesystem seam. Every disk operation the store (and the sweep
// journal) performs goes through the FS interface, so durability logic
// can be tested against an injectable fault layer (ErrFS) without
// touching the real disk error paths: short writes, ENOSPC, EIO,
// fsync failures, and rename races all become deterministic test
// inputs instead of hardware lottery tickets.

import (
	"io"
	"os"
)

// File is the writable handle FS.OpenFile returns: sequential writes,
// an explicit durability barrier (Sync), and Close.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS is the narrow filesystem surface the persistence layer needs.
// Implementations must return errors compatible with errors.Is /
// os.IsNotExist for missing files.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics (flag is the usual
	// os.O_* bitmask).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadFile returns the full content of name.
	ReadFile(name string) ([]byte, error)
	// Rename atomically moves oldpath over newpath (POSIX semantics:
	// an existing newpath is replaced).
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// MkdirAll creates name and any missing parents.
	MkdirAll(name string, perm os.FileMode) error
	// ReadDir lists name.
	ReadDir(name string) ([]os.DirEntry, error)
	// SyncDir fsyncs the directory itself, making a preceding rename
	// durable against power loss.
	SyncDir(name string) error
}

// OS is the real-filesystem FS.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) MkdirAll(name string, perm os.FileMode) error { return os.MkdirAll(name, perm) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }

// SyncDir opens the directory read-only and fsyncs it. Filesystems
// that do not support directory fsync (some network mounts) report
// EINVAL; that is surfaced to the caller, which degrades gracefully.
func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
