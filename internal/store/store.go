// Package store is a crash-safe, content-addressed result store: the
// persistence substrate under the experiment layer's sweep campaigns.
// Each entry holds one completed sweep cell's serialized result, keyed
// by the SHA-256 digest of (campaign key, cell address) — so re-running
// any campaign against the same store directory, from the same or a
// different process, replays completed cells instead of re-simulating
// them, and identical cells are never simulated twice across users.
//
// Durability discipline:
//
//   - Every entry is checksummed (CRC32-Castagnoli over the payload)
//     and self-describing: a metadata line binds the entry to its
//     campaign and cell, so a renamed, truncated, or bit-flipped file
//     is detected, not trusted.
//   - Writes are atomic: payloads land in a tmp/ staging file, are
//     fsynced, and only then renamed over the final name; the directory
//     is fsynced after the rename. A crash at any instant leaves either
//     the old state or the new entry, never a torn one in place.
//   - Reads verify: every Get re-validates magic, version, key binding,
//     length, and checksum. A corrupt or torn entry is quarantined
//     (moved to quarantine/, preserved for forensics) and reported as a
//     miss, so the caller re-simulates — degrade, never abort, never a
//     silently wrong result.
//   - Recovery is automatic: Open clears staging debris from an
//     interrupted writer and scrubs existing entries, quarantining any
//     that fail validation.
//   - Write failures (disk full, I/O errors, failed renames or fsyncs)
//     disable further writes with a sticky error the caller surfaces
//     once; reads — and the campaign — continue.
//
// Only files matching the store's own naming scheme (64 hex digits +
// ".res") and its tmp/ staging area are ever touched; pointing a
// campaign at a directory with foreign files is safe.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

const (
	// Magic identifies an entry file as this store's.
	Magic = "microbank-result-store"
	// Version bumps when the entry layout changes incompatibly.
	Version = 1

	entryExt      = ".res"
	tmpDirName    = "tmp"
	quarDirName   = "quarantine"
	keyHexLen     = sha256.Size * 2
	entryNameLen  = keyHexLen + len(entryExt)
	maxEntryBytes = 64 << 20 // sanity bound on a metadata-declared payload
)

// castagnoli is the CRC32C table; CRC32C has hardware support on every
// target this runs on, so checksumming is effectively free next to the
// JSON encode.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// stagingSeq uniquifies staging names process-wide: together with the
// pid in the name, two writers — whether two goroutines, two Store
// handles, or two processes sharing the directory — can never collide
// on a staging file.
var stagingSeq atomic.Uint64

// Key returns the content address of a cell: hex SHA-256 over the
// campaign key and the cell address, NUL-separated so the pair is
// unambiguous.
func Key(campaign, cell string) string {
	h := sha256.New()
	h.Write([]byte(campaign))
	h.Write([]byte{0})
	h.Write([]byte(cell))
	return hex.EncodeToString(h.Sum(nil))
}

// meta is the first line of an entry file.
type meta struct {
	Store    string `json:"store"`
	Version  int    `json:"version"`
	Campaign string `json:"campaign"`
	Cell     string `json:"cell"`
	Len      int    `json:"len"`
	CRC32C   uint32 `json:"crc32c"`
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	Hits        uint64 // Gets served from a validated entry
	Misses      uint64 // Gets with no (valid) entry
	Quarantined uint64 // corrupt/torn entries detected and set aside
	Puts        uint64 // entries durably written this session
}

// Store is one on-disk result store. All methods are safe for
// concurrent use, including by multiple processes sharing the
// directory (writes are atomic renames; last writer of an identical
// key wins with identical content).
type Store struct {
	dir string
	fs  FS

	hits, misses, quarantined, puts atomic.Uint64
	entries                         atomic.Int64 // valid entries known (open scrub + this session's puts)

	mu       sync.Mutex
	disabled error // sticky write-side failure; reads continue
}

// Open opens (creating if needed) the store at dir using fsys (OS when
// nil) and runs the recovery pass: staging debris from interrupted
// writers is removed and every existing entry is validated, with
// corrupt or torn ones quarantined rather than trusted or fatal. The
// quarantined count of the recovery pass is readable via Stats.
func Open(dir string, fsys FS) (*Store, error) {
	if fsys == nil {
		fsys = OS
	}
	s := &Store{dir: dir, fs: fsys}
	for _, d := range []string{dir, s.tmpDir(), s.quarDir()} {
		if err := fsys.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Store) tmpDir() string  { return filepath.Join(s.dir, tmpDirName) }
func (s *Store) quarDir() string { return filepath.Join(s.dir, quarDirName) }

// recover clears tmp/ (an interrupted writer's staging files are
// garbage by construction — anything durable was already renamed out)
// and scrubs every entry, quarantining failures.
func (s *Store) recover() error {
	if tmps, err := s.fs.ReadDir(s.tmpDir()); err == nil {
		for _, de := range tmps {
			// Best effort: a leftover that cannot be removed is inert.
			s.fs.Remove(filepath.Join(s.tmpDir(), de.Name())) //nolint:errcheck
		}
	}
	des, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || filepath.Ext(name) != entryExt {
			continue // foreign files and our own subdirs are not ours to judge
		}
		if !validEntryName(name) {
			s.quarantine(name)
			continue
		}
		data, rerr := s.fs.ReadFile(filepath.Join(s.dir, name))
		if rerr != nil {
			s.quarantine(name)
			continue
		}
		if _, _, verr := parseEntry(data, name); verr != nil {
			s.quarantine(name)
			continue
		}
		s.entries.Add(1)
	}
	return nil
}

// validEntryName reports whether name is `<64 hex>.res`.
func validEntryName(name string) bool {
	if len(name) != entryNameLen || name[keyHexLen:] != entryExt {
		return false
	}
	for _, c := range name[:keyHexLen] {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// parseEntry validates an entry file against its own metadata and its
// filename, returning the metadata and payload.
func parseEntry(data []byte, name string) (meta, []byte, error) {
	var m meta
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return m, nil, fmt.Errorf("no metadata line")
	}
	if err := json.Unmarshal(data[:nl], &m); err != nil {
		return m, nil, fmt.Errorf("metadata: %w", err)
	}
	if m.Store != Magic {
		return m, nil, fmt.Errorf("not a store entry")
	}
	if m.Version != Version {
		return m, nil, fmt.Errorf("entry version %d, this build reads %d", m.Version, Version)
	}
	if m.Len < 0 || m.Len > maxEntryBytes {
		return m, nil, fmt.Errorf("implausible payload length %d", m.Len)
	}
	rest := data[nl+1:]
	// The writer appends exactly payload + '\n'; anything shorter is a
	// torn write, anything longer is corruption.
	if len(rest) != m.Len+1 || rest[m.Len] != '\n' {
		return m, nil, fmt.Errorf("torn payload: have %d bytes, metadata declares %d", len(rest), m.Len)
	}
	payload := rest[:m.Len]
	if crc := crc32.Checksum(payload, castagnoli); crc != m.CRC32C {
		return m, nil, fmt.Errorf("checksum mismatch: payload %08x, metadata %08x", crc, m.CRC32C)
	}
	if want := Key(m.Campaign, m.Cell) + entryExt; name != want {
		return m, nil, fmt.Errorf("key binding mismatch: file %s holds entry for %s", name, want)
	}
	return m, payload, nil
}

// quarantine moves a bad entry aside (preserving it for forensics) and
// counts it. A failed move is still counted — the detection is the
// datum; the file will be re-detected next open.
func (s *Store) quarantine(name string) {
	s.quarantined.Add(1)
	s.fs.Rename(filepath.Join(s.dir, name), filepath.Join(s.quarDir(), name)) //nolint:errcheck
}

// Get returns the validated payload stored for (campaign, cell), or
// ok=false when the entry is absent, unreadable, or fails validation —
// invalid entries are quarantined on the way out, so the caller's
// re-simulation heals the store.
func (s *Store) Get(campaign, cell string) ([]byte, bool) {
	name := Key(campaign, cell) + entryExt
	data, err := s.fs.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		if !os.IsNotExist(err) {
			// Readable-in-name-only (EIO and friends): set it aside so the
			// rewrite after re-simulation starts from a clean slot.
			s.quarantine(name)
			s.entries.Add(-1)
		}
		s.misses.Add(1)
		return nil, false
	}
	m, payload, err := parseEntry(data, name)
	if err != nil {
		s.quarantine(name)
		s.entries.Add(-1)
		s.misses.Add(1)
		return nil, false
	}
	if m.Campaign != campaign || m.Cell != cell {
		// A full SHA-256 preimage collision is not a thing; this is a
		// copied/planted file. Quarantine it.
		s.quarantine(name)
		s.entries.Add(-1)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return append([]byte(nil), payload...), true
}

// Has reports whether an entry file exists for (campaign, cell),
// without validating it and without touching the hit/miss counters —
// the cheap pre-check journal migration uses to skip cells already
// shared.
func (s *Store) Has(campaign, cell string) bool {
	_, err := s.fs.ReadFile(filepath.Join(s.dir, Key(campaign, cell)+entryExt))
	return err == nil
}

// Put durably stores payload for (campaign, cell): staged write,
// fsync, atomic rename, directory fsync. On any write-path failure the
// store disables further writes (sticky — the error keeps being
// returned so the caller can warn once and move on) while reads keep
// working; the campaign itself must never fail because its cache
// cannot persist.
func (s *Store) Put(campaign, cell string, payload []byte) error {
	s.mu.Lock()
	if s.disabled != nil {
		err := s.disabled
		s.mu.Unlock()
		return err
	}
	s.mu.Unlock()

	m := meta{
		Store:    Magic,
		Version:  Version,
		Campaign: campaign,
		Cell:     cell,
		Len:      len(payload),
		CRC32C:   crc32.Checksum(payload, castagnoli),
	}
	hdr, err := json.Marshal(m)
	if err != nil {
		return s.disable(err)
	}
	buf := make([]byte, 0, len(hdr)+len(payload)+2)
	buf = append(buf, hdr...)
	buf = append(buf, '\n')
	buf = append(buf, payload...)
	buf = append(buf, '\n')

	name := Key(campaign, cell) + entryExt
	tmp := filepath.Join(s.tmpDir(), fmt.Sprintf("%s.%d.%d", name, os.Getpid(), stagingSeq.Add(1)))
	f, err := s.fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return s.disable(err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()        //nolint:errcheck
		s.fs.Remove(tmp) //nolint:errcheck
		return s.disable(err)
	}
	if err := f.Sync(); err != nil {
		f.Close()        //nolint:errcheck
		s.fs.Remove(tmp) //nolint:errcheck
		return s.disable(err)
	}
	if err := f.Close(); err != nil {
		s.fs.Remove(tmp) //nolint:errcheck
		return s.disable(err)
	}
	if err := s.fs.Rename(tmp, filepath.Join(s.dir, name)); err != nil {
		s.fs.Remove(tmp) //nolint:errcheck
		return s.disable(err)
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		// The entry itself is valid and visible; only its durability
		// against power loss is in doubt. Disable further writes and
		// surface that once.
		return s.disable(err)
	}
	s.puts.Add(1)
	s.entries.Add(1)
	return nil
}

// disable records the first write-path failure and returns the sticky
// degraded-state error.
func (s *Store) disable(cause error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.disabled == nil {
		s.disabled = fmt.Errorf("store: %w (store writes disabled for this process; reads continue)", cause)
	}
	return s.disabled
}

// WriteErr returns the sticky write-path failure, nil while healthy.
func (s *Store) WriteErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.disabled
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Quarantined: s.quarantined.Load(),
		Puts:        s.puts.Load(),
	}
}

// Entries returns the number of valid entries known to this handle
// (validated at open, plus this session's puts, minus quarantines).
func (s *Store) Entries() int {
	n := s.entries.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }
