package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

const (
	tCampaign = "fig8|schema=1|quick=true|instr=6000|cores=16|seed=42"
	tCell     = "sweep 0 cell 3"
)

func openT(t *testing.T, dir string, fsys FS) *Store {
	t.Helper()
	s, err := Open(dir, fsys)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func mustPut(t *testing.T, s *Store, campaign, cell string, payload []byte) {
	t.Helper()
	if err := s.Put(campaign, cell, payload); err != nil {
		t.Fatalf("Put(%q): %v", cell, err)
	}
}

func entryPath(dir, campaign, cell string) string {
	return filepath.Join(dir, Key(campaign, cell)+entryExt)
}

func TestKeyBinding(t *testing.T) {
	a := Key("campaign-a", "cell-1")
	if len(a) != keyHexLen {
		t.Fatalf("key length %d, want %d", len(a), keyHexLen)
	}
	if a == Key("campaign-a", "cell-2") || a == Key("campaign-b", "cell-1") {
		t.Fatal("distinct (campaign, cell) pairs collided")
	}
	// The NUL separator keeps ambiguous concatenations apart.
	if Key("ab", "c") == Key("a", "bc") {
		t.Fatal("key is ambiguous under concatenation")
	}
	if a != Key("campaign-a", "cell-1") {
		t.Fatal("key not deterministic")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, nil)
	payload := []byte(`{"ipc":1.2345678901234567}`)
	mustPut(t, s, tCampaign, tCell, payload)
	got, ok := s.Get(tCampaign, tCell)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want the stored payload", got, ok)
	}
	if _, ok := s.Get(tCampaign, "sweep 0 cell 4"); ok {
		t.Fatal("Get of an unstored cell hit")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Quarantined != 0 {
		t.Fatalf("stats = %+v", st)
	}

	// A second handle (a later campaign, or another process) sees the
	// entry after its own recovery pass.
	s2 := openT(t, dir, nil)
	if s2.Entries() != 1 {
		t.Fatalf("reopened store knows %d entries, want 1", s2.Entries())
	}
	if got, ok := s2.Get(tCampaign, tCell); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("reopened Get = %q, %v", got, ok)
	}
}

func TestPutOverwriteIsAtomicAndLastWins(t *testing.T) {
	s := openT(t, t.TempDir(), nil)
	mustPut(t, s, tCampaign, tCell, []byte(`{"v":1}`))
	mustPut(t, s, tCampaign, tCell, []byte(`{"v":2}`))
	got, ok := s.Get(tCampaign, tCell)
	if !ok || string(got) != `{"v":2}` {
		t.Fatalf("Get after overwrite = %q, %v", got, ok)
	}
}

// TestConcurrentPuts hammers one key and several distinct keys from
// concurrent goroutines (run under -race in CI): every rename is
// atomic, so the surviving entries must all validate.
func TestConcurrentPuts(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				// Every writer of the shared key writes identical bytes —
				// the content-addressed contract.
				if err := s.Put(tCampaign, "shared", []byte(`{"shared":true}`)); err != nil {
					t.Errorf("Put shared: %v", err)
				}
				cell := fmt.Sprintf("goroutine %d cell %d", g, i)
				if err := s.Put(tCampaign, cell, []byte(`{"g":`+fmt.Sprint(g)+`}`)); err != nil {
					t.Errorf("Put %s: %v", cell, err)
				}
			}
		}(g)
	}
	wg.Wait()
	if got, ok := s.Get(tCampaign, "shared"); !ok || string(got) != `{"shared":true}` {
		t.Fatalf("shared entry = %q, %v", got, ok)
	}
	// Reopen: the recovery scrub must validate every surviving entry.
	s2 := openT(t, dir, nil)
	if q := s2.Stats().Quarantined; q != 0 {
		t.Fatalf("recovery quarantined %d entries of a clean concurrent run", q)
	}
	if s2.Entries() != 8*20+1 {
		t.Fatalf("entries = %d, want %d", s2.Entries(), 8*20+1)
	}
}

// corruptByte flips one payload byte of an existing entry in place.
func corruptByte(t *testing.T, path string, fromEnd int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	i := len(data) - fromEnd
	data[i] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestFlippedByteQuarantinedOnGet(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, nil)
	mustPut(t, s, tCampaign, tCell, []byte(`{"ipc":1.5}`))
	corruptByte(t, entryPath(dir, tCampaign, tCell), 3)

	if _, ok := s.Get(tCampaign, tCell); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	st := s.Stats()
	if st.Quarantined != 1 || st.Misses != 1 {
		t.Fatalf("stats after corrupt Get = %+v", st)
	}
	// The bad file moved to quarantine/ and the slot is writable again.
	if _, err := os.Stat(entryPath(dir, tCampaign, tCell)); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry still in place: %v", err)
	}
	quar, err := os.ReadDir(filepath.Join(dir, quarDirName))
	if err != nil || len(quar) != 1 {
		t.Fatalf("quarantine holds %d files (%v), want 1", len(quar), err)
	}
	mustPut(t, s, tCampaign, tCell, []byte(`{"ipc":1.5}`))
	if _, ok := s.Get(tCampaign, tCell); !ok {
		t.Fatal("re-simulated entry did not heal the store")
	}
}

func TestRecoveryQuarantinesTornAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, nil)
	mustPut(t, s, tCampaign, "cell torn", []byte(`{"a":1}`))
	mustPut(t, s, tCampaign, "cell flipped", []byte(`{"b":2}`))
	mustPut(t, s, tCampaign, "cell healthy", []byte(`{"c":3}`))

	// Tear one entry (simulating a partial write that somehow reached
	// the final name), flip a byte in another.
	torn := entryPath(dir, tCampaign, "cell torn")
	data, err := os.ReadFile(torn)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(torn, data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	corruptByte(t, entryPath(dir, tCampaign, "cell flipped"), 2)
	// Plus staging debris and a foreign file.
	if err := os.WriteFile(filepath.Join(dir, tmpDirName, "leftover.res.123.4"), []byte("zz"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "NOTES.txt"), []byte("mine"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir, nil)
	if st := s2.Stats(); st.Quarantined != 2 {
		t.Fatalf("recovery quarantined %d, want 2: %+v", st.Quarantined, st)
	}
	if s2.Entries() != 1 {
		t.Fatalf("entries after recovery = %d, want 1", s2.Entries())
	}
	if _, ok := s2.Get(tCampaign, "cell healthy"); !ok {
		t.Fatal("healthy entry lost in recovery")
	}
	if _, ok := s2.Get(tCampaign, "cell torn"); ok {
		t.Fatal("torn entry survived recovery")
	}
	// Foreign files are untouched; staging debris is gone.
	if _, err := os.Stat(filepath.Join(dir, "NOTES.txt")); err != nil {
		t.Fatalf("foreign file touched: %v", err)
	}
	tmps, err := os.ReadDir(filepath.Join(dir, tmpDirName))
	if err != nil || len(tmps) != 0 {
		t.Fatalf("staging debris not cleared: %d files, %v", len(tmps), err)
	}
}

func TestKeyBindingMismatchQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, nil)
	mustPut(t, s, tCampaign, tCell, []byte(`{"x":1}`))
	// Plant the (internally consistent) entry under a different key —
	// a copied or renamed file must not be served for the wrong cell.
	other := entryPath(dir, tCampaign, "some other cell")
	if err := os.Rename(entryPath(dir, tCampaign, tCell), other); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(tCampaign, "some other cell"); ok {
		t.Fatal("renamed entry served under the wrong key")
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats = %+v, want 1 quarantined", st)
	}
}

// TestWriteFaultTaxonomy: every injected write-path fault must leave
// no (invalid) entry behind, disable further writes with a sticky
// error, and keep reads working. This is the acceptance matrix of the
// durability harness.
func TestWriteFaultTaxonomy(t *testing.T) {
	cases := []struct {
		name  string
		fault Fault
	}{
		{"short-write", Fault{Op: OpWrite, Match: tmpDirName, Err: ErrNoSpace, Short: 7}},
		{"enospc", Fault{Op: OpWrite, Match: tmpDirName, Err: ErrNoSpace}},
		{"eio-write", Fault{Op: OpWrite, Match: tmpDirName, Err: ErrIO}},
		{"fsync", Fault{Op: OpSync, Match: tmpDirName, Err: ErrShortSync}},
		{"close", Fault{Op: OpClose, Match: tmpDirName, Err: ErrIO}},
		{"rename", Fault{Op: OpRename, Match: entryExt, Err: ErrIO}},
		{"open", Fault{Op: OpOpen, Match: tmpDirName, Err: ErrNoSpace}},
		{"dir-fsync", Fault{Op: OpSyncDir, Err: ErrShortSync}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			efs := NewErrFS(nil)
			s := openT(t, dir, efs)
			mustPut(t, s, tCampaign, "healthy pre-fault", []byte(`{"ok":1}`))

			efs.Inject(tc.fault)
			err := s.Put(tCampaign, tCell, []byte(`{"doomed":1}`))
			if err == nil {
				t.Fatal("faulted Put succeeded")
			}
			if !errors.Is(err, tc.fault.Err) {
				t.Fatalf("Put error = %v, want wrapped %v", err, tc.fault.Err)
			}
			// Sticky: the next Put reports the same degraded state without
			// touching the disk again.
			if err2 := s.Put(tCampaign, "next", []byte(`{"n":1}`)); err2 == nil ||
				!strings.Contains(err2.Error(), "disabled") {
				t.Fatalf("second Put after fault = %v, want sticky disabled error", err2)
			}
			if s.WriteErr() == nil {
				t.Fatal("WriteErr nil after write fault")
			}
			// Reads still work.
			if _, ok := s.Get(tCampaign, "healthy pre-fault"); !ok {
				t.Fatal("read path broken after write fault")
			}
			// Whatever survived on disk must validate or be quarantined —
			// never a torn entry served as truth.
			s2 := openT(t, dir, nil)
			if got, ok := s2.Get(tCampaign, tCell); ok {
				// Only the dir-fsync case legitimately leaves the entry
				// (it is valid; only power-loss durability was in doubt).
				if tc.name != "dir-fsync" {
					t.Fatalf("faulted entry visible after reopen: %q", got)
				}
			}
		})
	}
}

func TestReadFaultDegradesToMiss(t *testing.T) {
	dir := t.TempDir()
	efs := NewErrFS(nil)
	s := openT(t, dir, efs)
	mustPut(t, s, tCampaign, tCell, []byte(`{"x":1}`))
	efs.Inject(Fault{Op: OpRead, Match: entryExt, Err: ErrIO})
	if _, ok := s.Get(tCampaign, tCell); ok {
		t.Fatal("EIO read served a hit")
	}
	st := s.Stats()
	if st.Misses != 1 || st.Quarantined != 1 {
		t.Fatalf("stats after EIO read = %+v", st)
	}
	// The fault was one-shot; the quarantine moved the entry, so the
	// next read is an honest miss and a rewrite heals it.
	mustPut(t, s, tCampaign, tCell, []byte(`{"x":1}`))
	if _, ok := s.Get(tCampaign, tCell); !ok {
		t.Fatal("store did not heal after read fault")
	}
}

func TestRenameRaceLastWriterWins(t *testing.T) {
	// Two stores on the same directory (two campaign processes) racing
	// Puts of the same key: both must succeed, and the surviving entry
	// must validate.
	dir := t.TempDir()
	a := openT(t, dir, nil)
	b := openT(t, dir, nil)
	payload := []byte(`{"same":"content"}`)
	var wg sync.WaitGroup
	for _, s := range []*Store{a, b} {
		wg.Add(1)
		go func(s *Store) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := s.Put(tCampaign, tCell, payload); err != nil {
					t.Errorf("racing Put: %v", err)
				}
			}
		}(s)
	}
	wg.Wait()
	got, ok := openT(t, dir, nil).Get(tCampaign, tCell)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("post-race entry = %q, %v", got, ok)
	}
}

func TestOpenRejectsUnusableDir(t *testing.T) {
	efs := NewErrFS(nil)
	efs.Inject(Fault{Op: OpMkdir, Err: ErrIO})
	if _, err := Open(filepath.Join(t.TempDir(), "s"), efs); err == nil {
		t.Fatal("Open with failing MkdirAll succeeded")
	}
}

func TestBadEntryNameQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, nil)
	mustPut(t, s, tCampaign, tCell, []byte(`{"x":1}`))
	if err := os.WriteFile(filepath.Join(dir, "nothex.res"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, nil)
	if st := s2.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats = %+v, want the misnamed .res quarantined", st)
	}
	if s2.Entries() != 1 {
		t.Fatalf("entries = %d, want 1", s2.Entries())
	}
}
