package system

// Variant-batched simulation: RunBatch drives B sweep cells that share
// one workload definition as a single lockstep pass. Each member is a
// complete sequential machine (its own engine, caches, controllers),
// but the batch shares the two things that are provably
// timing-independent and allocation-heavy:
//
//   - the workload front-end: per-thread request streams are generated
//     once per batch (workload.StreamSet) and replayed to every member
//     through cursors, because Synthetic draws only from stream-local
//     randomness — no timing feedback reaches the generator. Per-core
//     dependence draws (cpu) ARE timing-coupled and stay per-member.
//   - the bank-state backing store: every member's DRAM and controller
//     bank arrays are carved variant-major out of one contiguous arena
//     (dram.Arena / memctrl.Arena), so the lockstep epochs sweep
//     adjacent memory instead of B scattered heaps.
//
// Member engines come from a Reset-based pool, so a sweep's steady
// state stops paying slab/heap/arena regrowth per cell.
//
// Every member produces the exact event sequence of its standalone
// sequential run — same engine, same build order, same streams — so
// results are byte-identical (TestBatchMatchesSequentialRandom and the
// golden batched-width fixtures assert it). Specs the sharing cannot
// cover (custom generators, per-run observers, intra-parallel-eligible
// runs, or members incompatible with the batch head) fall back to
// standalone Run, mirroring PR 6's sequential fallback.

import (
	"runtime"
	"sync"

	"fmt"

	"microbank/internal/dram"
	"microbank/internal/memctrl"
	"microbank/internal/sim"
	"microbank/internal/workload"
)

// batchEpoch is the system-level lockstep epoch (see runLockstep for
// the rationale; any epoch is bit-exact, this one is just fast).
const batchEpoch = 256 * sim.Microsecond

// batchEnv carries the resources a batched build shares across variant
// machines: the pooled engine and the bank-state arena. Mutually
// exclusive with a parallel (par) build.
type batchEnv struct {
	eng   *sim.Engine
	arena *memctrl.Arena
}

// ctlArena is nil-safe so build's sequential path stays a plain
// memctrl.New.
func (e *batchEnv) ctlArena() *memctrl.Arena {
	if e == nil {
		return nil
	}
	return e.arena
}

// enginePool recycles engines across runs: Reset keeps the slab, heap,
// and free list warm, which short Quick-fidelity sweep cells otherwise
// re-grow from scratch every run.
var enginePool = sync.Pool{New: func() any { return sim.NewEngine() }}

func getEngine() *sim.Engine { return enginePool.Get().(*sim.Engine) }

func putEngine(e *sim.Engine) {
	e.Reset()
	enginePool.Put(e)
}

// BatchResult is one member's outcome from RunBatch: exactly what
// standalone Run would have returned, plus a recovered panic value when
// the member's model panicked mid-run (Res/Err are meaningless then;
// the caller decides where to re-raise it so sweep-cell attribution is
// preserved).
type BatchResult struct {
	Res   Result
	Err   error
	Panic any
}

// batchable reports whether a spec can join a lockstep batch at all:
// the shared front-end requires the default synthetic generators, no
// per-run observers (the obs wiring is per-cell in sweeps and its
// lifecycle assumes one run per observer), and a spec that would take
// the intra-parallel path keeps it via the standalone fallback.
func batchable(s *Spec) bool {
	return s.GeneratorFor == nil && s.Obs == nil && s.WinTrace == nil && !s.intraEligible()
}

// BatchCompatible reports whether two specs can share one workload
// front-end: identical core count, per-core profiles, seed, and
// instruction budgets. Everything else — memory organization, timing,
// controller policy, interleaving — may differ freely; that is the
// sweep axis batching accelerates.
func BatchCompatible(a, b Spec) bool {
	if a.Sys.Cores != b.Sys.Cores || len(a.Profiles) != len(b.Profiles) {
		return false
	}
	for i := range a.Profiles {
		if a.Profiles[i] != b.Profiles[i] {
			return false
		}
	}
	return a.Seed == b.Seed &&
		a.InstrPerCore == b.InstrPerCore &&
		a.WarmupInstr == b.WarmupInstr
}

// RunBatch runs the specs as one variant batch: eligible, mutually
// compatible members advance in lockstep epochs over shared streams and
// arenas; every other spec falls back to standalone Run in place. The
// result slice is indexed like specs.
func RunBatch(specs []Spec) []BatchResult {
	out := make([]BatchResult, len(specs))
	members := make([]int, 0, len(specs))
	var head *Spec
	for i := range specs {
		if err := specs[i].validate(); err != nil {
			out[i].Err = err
			continue
		}
		if !batchable(&specs[i]) || (head != nil && !BatchCompatible(*head, specs[i])) {
			out[i].Res, out[i].Err = Run(specs[i])
			continue
		}
		if head == nil {
			head = &specs[i]
		}
		members = append(members, i)
	}
	switch len(members) {
	case 0:
		return out
	case 1:
		i := members[0]
		out[i].Res, out[i].Err = Run(specs[i])
		return out
	}
	runLockstep(specs, members, out)
	return out
}

// runLockstep builds every member machine over the shared front-end and
// arena, then advances them in lockstep epochs until each drains, trips
// its watchdog, or panics (panics are isolated per member: the others
// keep running, exactly as independent sweep cells would).
func runLockstep(specs []Spec, members []int, out []BatchResult) {
	head := specs[members[0]]
	streams := workload.NewStreamSet(head.Profiles, head.Seed)

	slots := 0
	for _, i := range members {
		slots += specs[i].Sys.Mem.Org.Channels * dram.BanksPerChannel(specs[i].Sys.Mem)
	}
	arena := memctrl.NewArena(slots)

	machines := make([]*machine, len(members))
	engs := make([]*sim.Engine, len(members))
	done := make([]bool, len(members))
	for k, i := range members {
		sp := specs[i]
		sp.GeneratorFor = func(core int) workload.Generator { return streams.Cursor(core) }
		eng := getEngine()
		m := build(sp, nil, &batchEnv{eng: eng, arena: arena})
		if sp.Limits.armed() {
			m.armWatchdog(sp.Limits)
		}
		for _, c := range m.cores {
			c.Start()
		}
		machines[k], engs[k] = m, eng
	}

	// Lockstep epochs (see sim.RunBatch for the pure-kernel twin): each
	// round advances every member with due work up to the earliest
	// pending instant plus one epoch.
	//
	// The epoch here is much coarser than the kernel default. Members
	// share only read-mostly state (the stream recordings; arena slots
	// are private), so fine interleaving buys no sharing — it only
	// cycles B cache-sized machine working sets through the same L1/L2.
	// Measured on the sweep benchmarks, 1 µs epochs cost ~10% over
	// sequential; at 256 µs a quick- or full-fidelity cell (~10–150 µs
	// of simulated time) completes in one round while very long runs
	// still interleave with bounded per-member rounds.
	for {
		horizon := sim.Never
		for k, e := range engs {
			if done[k] {
				continue
			}
			t, ok := e.NextTime()
			if !ok {
				done[k] = true
				continue
			}
			if t < horizon {
				horizon = t
			}
		}
		if horizon == sim.Never {
			break
		}
		deadline := horizon + batchEpoch
		for k, e := range engs {
			if done[k] {
				continue
			}
			if t, ok := e.NextTime(); !ok || t > deadline {
				continue
			}
			fin, _, pv := advanceMember(e, deadline)
			if pv != nil {
				out[members[k]].Panic = pv
				done[k] = true
				continue
			}
			if fin {
				done[k] = true
			}
		}
	}

	// Per-member epilogue, mirroring Run's exactly.
	for k, i := range members {
		if out[i].Panic != nil {
			continue // engine state unknown; do not recycle
		}
		m := machines[k]
		switch {
		case engs[k].StopCause() != nil:
			out[i].Err = engs[k].StopCause()
		case m.finished != len(m.cores):
			out[i].Err = &LimitError{Kind: LimitStall,
				Msg:  fmt.Sprintf("stalled with %d/%d cores finished (events drained)", m.finished, len(m.cores)),
				Diag: m.diag()}
		default:
			out[i].Res = m.collect()
		}
		putEngine(engs[k])
	}
}

// advanceMember is sim.BatchAdvance under a recover: a panicking member
// (model bug, injected fault) must not take the rest of the batch down.
func advanceMember(e *sim.Engine, deadline sim.Time) (finished bool, err error, pv any) {
	defer func() {
		if r := recover(); r != nil {
			finished, pv = true, r
		}
	}()
	finished, err = sim.BatchAdvance(e, deadline)
	return
}

// IntraAuto as Spec.IntraParallelism requests automatic intra-run width
// selection: Run estimates the events-per-window each domain would
// carry and falls back to the sequential engine when the windowed
// engine cannot win (see autoIntraWidth).
const IntraAuto = -1

// autoIntraMinEventsPerWindow is the break-even estimate for the
// windowed engine: PR 6 measured its width-1 barrier/merge overhead at
// ~47% of a headline window's work with only a handful of events per
// domain per window, so windows need a couple hundred events per domain
// before parallel execution can amortize the barrier. The headline
// machine (16 cores @ 500 ps, 2 ns hop window, 8 domains) estimates at
// ~16 — firmly sequential.
const autoIntraMinEventsPerWindow = 256

// autoIntraWidth resolves IntraAuto at partition time: sequential when
// the host has no spare workers or the per-domain window occupancy is
// below the barrier amortization threshold, else the domain count
// clamped to GOMAXPROCS (the shared worker-token budget does the final
// clamp at run time).
func autoIntraWidth(spec *Spec) int {
	procs := runtime.GOMAXPROCS(0)
	if procs < 2 {
		return 1
	}
	sys := spec.Sys
	clusters := (sys.Cores + sys.CoresPerL2 - 1) / sys.CoresPerL2
	doms := clusters + sys.Mem.Org.Channels
	if doms < 2 {
		return 1
	}
	// Events per window per domain, estimated at one event per core
	// cycle spread over the domains — an upper bound on how much work a
	// NoCHopPS-wide window can hold.
	perDom := float64(sys.Cores) * float64(sys.NoCHopPS) /
		float64(sys.CoreClock().Period()) / float64(doms)
	if perDom < autoIntraMinEventsPerWindow {
		return 1
	}
	if doms < procs {
		return doms
	}
	return procs
}
