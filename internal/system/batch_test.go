package system

import (
	"math/rand"
	"reflect"
	"testing"

	"microbank/internal/config"
	"microbank/internal/sim"
	"microbank/internal/workload"
)

// TestBatchMatchesSequentialRandom is the tentpole proof obligation:
// across random memory organizations × schedulers × batch widths, every
// batched member's Result must equal its standalone sequential run
// exactly (reflect.DeepEqual covers every metric down to the per-thread
// latency histogram buckets). CI runs this under -race.
func TestBatchMatchesSequentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	names := []string{"429.mcf", "470.lbm", "TPC-H", "433.milc", "462.libquantum"}
	dims := []int{1, 2, 4, 8, 16}
	scheds := []config.Scheduler{config.SchedFCFS, config.SchedFRFCFS, config.SchedPARBS}

	for round := 0; round < 4; round++ {
		for _, B := range []int{2, 4, 8} {
			name := names[rng.Intn(len(names))]
			seed := int64(1 + rng.Intn(500))
			multicore := rng.Intn(2) == 1

			specs := make([]Spec, B)
			for j := range specs {
				mem := config.MemPreset(config.LPDDRTSI, dims[rng.Intn(len(dims))], dims[rng.Intn(len(dims))])
				var sys config.System
				if multicore {
					sys = config.DefaultSystem(mem)
					sys.Cores = 4
				} else {
					sys = config.SingleCore(mem)
				}
				sys.Ctrl.Scheduler = scheds[rng.Intn(len(scheds))]
				if rng.Intn(3) == 0 {
					sys.Ctrl.XORBankHash = !sys.Ctrl.XORBankHash
				}
				if rng.Intn(4) == 0 {
					sys.Mem.Org.SubarraysPerBank = 4
				}
				if rng.Intn(4) == 0 {
					sys.Ctrl.BankBudget = 4
				}
				prof := workload.MustGet(name)
				profs := make([]workload.Profile, sys.Cores)
				for c := range profs {
					profs[c] = prof
				}
				specs[j] = Spec{Sys: sys, Profiles: profs,
					InstrPerCore: 3000, WarmupInstr: 1000, Seed: seed}
			}

			batched := RunBatch(append([]Spec(nil), specs...))
			for j := range specs {
				want, wantErr := Run(specs[j])
				got := batched[j]
				if got.Panic != nil {
					t.Fatalf("B=%d member %d: batched run panicked: %v", B, j, got.Panic)
				}
				if (got.Err == nil) != (wantErr == nil) {
					t.Fatalf("B=%d member %d: err %v vs sequential %v", B, j, got.Err, wantErr)
				}
				if !reflect.DeepEqual(got.Res, want) {
					t.Errorf("B=%d member %d (%s seed %d): batched Result differs from sequential\nbatched:    %+v\nsequential: %+v",
						B, j, name, seed, got.Res, want)
				}
			}
		}
	}
}

// TestBatchFallbacks: members the shared front-end cannot cover fall
// back to standalone runs with identical results, and invalid specs
// report the same validation error as Run.
func TestBatchFallbacks(t *testing.T) {
	mkSpec := func(name string, seed int64) Spec {
		sys := config.SingleCore(config.MemPreset(config.LPDDRTSI, 2, 8))
		return Spec{Sys: sys, Profiles: []workload.Profile{workload.MustGet(name)},
			InstrPerCore: 2000, WarmupInstr: 500, Seed: seed}
	}
	specs := []Spec{
		mkSpec("429.mcf", 42),
		mkSpec("429.mcf", 42),
		mkSpec("470.lbm", 42), // different profile: incompatible with head
		mkSpec("429.mcf", 7),  // different seed: incompatible with head
		{},                    // invalid: fails validation
	}
	got := RunBatch(append([]Spec(nil), specs...))
	for i := 0; i < 4; i++ {
		want, err := Run(specs[i])
		if err != nil {
			t.Fatalf("sequential run %d: %v", i, err)
		}
		if got[i].Err != nil || got[i].Panic != nil {
			t.Fatalf("member %d: err=%v panic=%v", i, got[i].Err, got[i].Panic)
		}
		if !reflect.DeepEqual(got[i].Res, want) {
			t.Errorf("member %d: batched result differs from sequential", i)
		}
	}
	if got[4].Err == nil {
		t.Errorf("invalid member: expected validation error, got none")
	}
}

// TestBatchSingleMemberAndEmpty covers the degenerate widths.
func TestBatchSingleMemberAndEmpty(t *testing.T) {
	if res := RunBatch(nil); len(res) != 0 {
		t.Fatalf("empty batch returned %d results", len(res))
	}
	sys := config.SingleCore(config.MemPreset(config.DDR3PCB, 1, 1))
	spec := Spec{Sys: sys, Profiles: []workload.Profile{workload.MustGet("429.mcf")},
		InstrPerCore: 2000, WarmupInstr: 500, Seed: 3}
	want, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	got := RunBatch([]Spec{spec})
	if got[0].Err != nil || !reflect.DeepEqual(got[0].Res, want) {
		t.Fatalf("single-member batch differs from sequential (err=%v)", got[0].Err)
	}
}

// TestEngineResetReuse: a pooled, Reset engine must behave exactly like
// a fresh one — stale handles are no-ops, counters restart, and a
// second run over the same spec is byte-identical.
func TestEngineResetReuse(t *testing.T) {
	eng := sim.NewEngine()
	fired := 0
	ev := eng.Schedule(10, func(*sim.Engine) { fired++ })
	eng.Schedule(20, func(*sim.Engine) { fired++ })
	eng.Run()
	if fired != 2 {
		t.Fatalf("fired %d before reset", fired)
	}
	eng.Reset()
	if eng.Now() != 0 || eng.Pending() != 0 || eng.Fired() != 0 {
		t.Fatalf("reset left now=%d pending=%d fired=%d", eng.Now(), eng.Pending(), eng.Fired())
	}
	if ev.Pending() {
		t.Fatal("stale handle pending after reset")
	}
	eng.Cancel(ev) // must be a no-op, not a corruption
	eng.Schedule(5, func(*sim.Engine) { fired++ })
	eng.Run()
	if fired != 3 {
		t.Fatalf("fired %d after reset", fired)
	}

	// End-to-end: run the same spec twice through the batch path (which
	// recycles engines through the pool) and once sequentially.
	sys := config.SingleCore(config.MemPreset(config.LPDDRTSI, 2, 8))
	spec := Spec{Sys: sys, Profiles: []workload.Profile{workload.MustGet("429.mcf")},
		InstrPerCore: 2000, WarmupInstr: 500, Seed: 9}
	want, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		got := RunBatch([]Spec{spec, spec})
		for j := range got {
			if got[j].Err != nil || !reflect.DeepEqual(got[j].Res, want) {
				t.Fatalf("round %d member %d differs (err=%v)", round, j, got[j].Err)
			}
		}
	}
}
