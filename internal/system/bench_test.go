package system

import (
	"testing"

	"microbank/internal/config"
	"microbank/internal/workload"
)

// BenchmarkRunSingleCore measures one single-core μbank run end to end
// (the unit of work every experiment sweep fans out).
func BenchmarkRunSingleCore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(singleSpec("429.mcf", 2, 8, 20000)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunMulticore measures an 8-core multiprogrammed run with the
// full channel population.
func BenchmarkRunMulticore(b *testing.B) {
	mix := workload.MixHigh()
	for i := 0; i < b.N; i++ {
		sys := config.DefaultSystem(config.MemPreset(config.LPDDRTSI, 2, 8))
		sys.Cores = 8
		profs := make([]workload.Profile, sys.Cores)
		for c := range profs {
			profs[c] = mix.ForCore(c)
		}
		spec := Spec{Sys: sys, Profiles: profs, InstrPerCore: 8000,
			WarmupInstr: 4000, Seed: 42}
		if _, err := Run(spec); err != nil {
			b.Fatal(err)
		}
	}
}
