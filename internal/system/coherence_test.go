package system

import (
	"testing"

	"microbank/internal/config"
	"microbank/internal/sim"
	"microbank/internal/workload"
)

// sharedTrace builds a per-core generator where every core hammers the
// same few shared lines, forcing directory traffic between cluster L2s.
func sharedTrace(lines int) func(core int) workload.Generator {
	return func(core int) workload.Generator {
		accs := make([]workload.Access, 0, 2*lines)
		base := uint64(63) * (512 << 20) // the shared region
		for i := 0; i < lines; i++ {
			accs = append(accs,
				workload.Access{Addr: base + uint64(i)*64},              // read
				workload.Access{Addr: base + uint64(i)*64, Write: true}, // then write
			)
		}
		return &workload.Fixed{Gap: 6, Accs: accs}
	}
}

func TestCoherenceSharedLines(t *testing.T) {
	sys := config.DefaultSystem(config.MemPreset(config.LPDDRTSI, 1, 1))
	sys.Cores = 8 // two clusters
	sys.Mem.Org.Channels = 2
	prof := workload.MustGet("canneal")
	profs := make([]workload.Profile, sys.Cores)
	for i := range profs {
		profs[i] = prof
	}
	spec := Spec{
		Sys: sys, Profiles: profs, InstrPerCore: 8000, Seed: 3,
		GeneratorFor: sharedTrace(64),
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 {
		t.Fatal("no progress under full sharing")
	}
	// With two clusters writing the same lines, the directory must have
	// produced invalidations and (often) dirty forwards; that traffic is
	// visible as a memory-access rate far below the raw store rate.
	if res.Mem.Reads == 0 {
		t.Fatal("no memory traffic at all")
	}
}

func TestCoherenceDirectoryGlue(t *testing.T) {
	// Directly exercise the machine's directory glue: build a 2-cluster
	// machine, fill the same block from both clusters, then write from
	// one; the directory must record the invalidation and the dirty
	// owner must forward on the next remote read.
	sys := config.DefaultSystem(config.MemPreset(config.LPDDRTSI, 1, 1))
	sys.Cores = 8
	sys.Mem.Org.Channels = 1
	prof := workload.MustGet("canneal")
	profs := make([]workload.Profile, sys.Cores)
	for i := range profs {
		profs[i] = prof
	}
	m := build(Spec{Sys: sys, Profiles: profs, InstrPerCore: 1000, Seed: 1}, nil, nil)

	block := uint64(0x40000)
	fills := 0
	fill := func(cl int, write bool) {
		m.l2Miss(cl, block, write, 0, func(at sim.Time) { fills++ })
		m.eng.Run()
	}
	fill(0, false) // cluster 0 reads: E owner
	fill(1, false) // cluster 1 reads: downgrade + forward
	if got := m.dirs[0].Sharers(block); got != 2 {
		t.Fatalf("sharers after two reads = %d, want 2", got)
	}
	fill(1, true) // cluster 1 writes: invalidate cluster 0
	if got := m.dirs[0].Sharers(block); got != 1 {
		t.Fatalf("sharers after write = %d, want 1", got)
	}
	st := m.dirs[0].Stats()
	if st.Invalidations == 0 {
		t.Fatal("no invalidations recorded")
	}
	if st.Forwards == 0 {
		t.Fatal("no cache-to-cache forwards recorded")
	}
	if fills != 3 {
		t.Fatalf("fills completed = %d, want 3", fills)
	}
}
