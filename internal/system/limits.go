package system

// Run limits and the progress watchdog: a Spec may carry Limits, which
// arm the sim engine's control hook (sim.Engine.SetControl) so a run
// is checked every CheckEvents events against a wall-clock deadline,
// an event budget, caller cancellation, and a no-progress livelock
// detector. A tripped limit stops the run and surfaces as a typed
// *LimitError carrying a diagnostic snapshot of the machine, so a
// sweep supervisor can record exactly where the run was stuck instead
// of hanging a worker forever or tearing the campaign down.

import (
	"context"
	"fmt"
	"strings"
	"time"

	"microbank/internal/sim"
)

// Limit-error kinds, also the failure taxonomy the experiment layer
// reports.
const (
	LimitDeadline    = "deadline"     // wall-clock deadline exceeded
	LimitEventBudget = "event-budget" // fired-event budget exhausted
	LimitLivelock    = "livelock"     // events firing but sim clock frozen
	LimitCancelled   = "cancelled"    // caller's context cancelled
	LimitStall       = "stall"        // event queue drained with cores unfinished
)

// defaultCheckEvents spaces watchdog checks far enough apart that the
// armed hook costs well under a percent of headline-run time.
const defaultCheckEvents = 1 << 14

// defaultStallWindows is how many consecutive watchdog windows the sim
// clock may stay frozen before the run is declared livelocked. At the
// default check interval that is ~64k events at one instant — far past
// any legitimate same-cycle burst.
const defaultStallWindows = 4

// Limits bounds one simulation run. The zero value (or a nil *Limits)
// disarms every check and leaves the engine's hot path untouched.
type Limits struct {
	// Ctx, when non-nil, cancels the run when the context is done.
	Ctx context.Context
	// WallClock, when positive, aborts the run after this much host
	// time. The check happens at watchdog granularity, so enforcement
	// is approximate by up to one CheckEvents window.
	WallClock time.Duration
	// EventBudget, when positive, aborts the run once the engine has
	// fired this many events.
	EventBudget uint64
	// CheckEvents is the watchdog period in fired events (default
	// defaultCheckEvents).
	CheckEvents uint64
	// StallWindows is the livelock threshold in consecutive watchdog
	// windows with a frozen sim clock (default defaultStallWindows).
	StallWindows int
	// OnDiag, when non-nil, receives a fresh machine diagnostic snapshot
	// at every watchdog check (the live-observability feed behind
	// /status). It runs on the simulation goroutine and must not block
	// or mutate anything. OnDiag alone arms only the reporting cadence:
	// it never trips a limit, so a run bounded by nothing else cannot
	// fail because it is being watched.
	OnDiag func(Diag)
}

// armed reports whether the watchdog hook must run (any enforced check,
// or diagnostic reporting).
func (l *Limits) armed() bool {
	return l.enforced() || (l != nil && l.OnDiag != nil)
}

// enforced reports whether any limit can actually trip. The livelock
// detector counts as enforcement support: it is active exactly when
// some limit is, so an OnDiag-only watchdog adds no failure modes.
func (l *Limits) enforced() bool {
	return l != nil && (l.Ctx != nil || l.WallClock > 0 || l.EventBudget > 0 || l.StallWindows > 0)
}

// Diag is a snapshot of the machine at the moment a limit tripped —
// the livelock/deadline diagnostic the error carries. Everything in it
// derives from simulation state, so for a deterministic trip (event
// budget, injected deadline) the snapshot is bit-identical across runs.
type Diag struct {
	NowPS         sim.Time `json:"now_ps"`
	Events        uint64   `json:"events"`
	QueueDepth    int      `json:"queue_depth"`
	CoresFinished int      `json:"cores_finished"`
	Cores         int      `json:"cores"`
	// CtrlQueueLens is the outstanding-request count per controller.
	CtrlQueueLens []int `json:"ctrl_queue_lens"`
	// CoreRetired is the per-core retired-instruction count.
	CoreRetired []uint64 `json:"core_retired"`
}

// String renders the snapshot compactly for error text and logs.
func (d Diag) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim=%dps events=%d queue=%d cores=%d/%d ctrlq=%v",
		d.NowPS, d.Events, d.QueueDepth, d.CoresFinished, d.Cores, d.CtrlQueueLens)
	var min, max uint64
	for i, r := range d.CoreRetired {
		if i == 0 || r < min {
			min = r
		}
		if r > max {
			max = r
		}
	}
	fmt.Fprintf(&b, " retired=[%d..%d]", min, max)
	return b.String()
}

// LimitError is the typed failure of a bounded run: which limit
// tripped, a human-readable cause, and the machine snapshot at the
// trip. It deliberately contains no host-time measurements — the
// message and diagnostic depend only on configuration and simulation
// state, so identical runs fail with identical errors.
type LimitError struct {
	Kind string `json:"kind"`
	Msg  string `json:"msg"`
	Diag Diag   `json:"diag"`
}

// Error renders the failure with its diagnostic snapshot.
func (e *LimitError) Error() string {
	return fmt.Sprintf("system: %s (%s)", e.Msg, e.Diag)
}

// Is makes errors.Is(err, context.Canceled) work for cancelled runs.
func (e *LimitError) Is(target error) bool {
	return e.Kind == LimitCancelled &&
		(target == context.Canceled || target == context.DeadlineExceeded)
}

// diag snapshots the machine for a limit error.
func (m *machine) diag() Diag {
	d := Diag{
		NowPS:         m.eng.Now(),
		Events:        m.eng.Fired(),
		QueueDepth:    m.eng.Pending(),
		CoresFinished: m.finished,
		Cores:         len(m.cores),
	}
	if p := m.par; p != nil {
		d.NowPS, d.Events, d.QueueDepth = 0, 0, 0
		for _, e := range p.engs {
			if e.Now() > d.NowPS {
				d.NowPS = e.Now()
			}
			d.Events += e.Fired()
			// PendingAll, not Pending: right after a window, fresh events
			// past the deadline sit in the domain's side buffer rather
			// than the heap, and they are pending work all the same.
			d.QueueDepth += e.PendingAll()
		}
		d.CoresFinished = 0
		for _, f := range p.finished {
			d.CoresFinished += f
		}
	}
	for _, ctl := range m.ctrls {
		d.CtrlQueueLens = append(d.CtrlQueueLens, ctl.QueueLen())
	}
	for _, c := range m.cores {
		d.CoreRetired = append(d.CoreRetired, c.Stats().Instructions)
	}
	return d
}

// armWatchdog wires the spec's limits into the engine's control hook.
// The hook runs once per CheckEvents fired events; between checks the
// engine pays only its single-compare control test, so the hot path
// stays allocation-free and within noise of an unbounded run (the
// BenchmarkHeadlineRunLimits comparison guards this).
func (m *machine) armWatchdog(l *Limits) {
	check := l.CheckEvents
	if check == 0 {
		check = defaultCheckEvents
	}
	windows := l.StallWindows
	if windows <= 0 {
		windows = defaultStallWindows
	}
	var deadline time.Time
	if l.WallClock > 0 {
		deadline = time.Now().Add(l.WallClock)
	}
	enforce := l.enforced()
	var lastNow sim.Time
	frozen := 0
	m.eng.SetControl(check, func(e *sim.Engine) error {
		m.wdChecks++
		if l.OnDiag != nil {
			l.OnDiag(m.diag())
		}
		if l.Ctx != nil {
			if err := l.Ctx.Err(); err != nil {
				return &LimitError{Kind: LimitCancelled,
					Msg: "run cancelled: " + err.Error(), Diag: m.diag()}
			}
		}
		if l.EventBudget > 0 && e.Fired() >= l.EventBudget {
			return &LimitError{Kind: LimitEventBudget,
				Msg:  fmt.Sprintf("event budget %d exhausted", l.EventBudget),
				Diag: m.diag()}
		}
		if l.WallClock > 0 && time.Now().After(deadline) {
			// No elapsed time in the message: the configured deadline is
			// deterministic, the measurement is not.
			return &LimitError{Kind: LimitDeadline,
				Msg:  fmt.Sprintf("wall-clock deadline %s exceeded", l.WallClock),
				Diag: m.diag()}
		}
		if !enforce {
			return nil
		}
		if now := e.Now(); now != lastNow {
			lastNow, frozen = now, 0
		} else if frozen++; frozen >= windows {
			return &LimitError{Kind: LimitLivelock,
				Msg: fmt.Sprintf("livelock: sim clock frozen across %d watchdog windows (%d events)",
					frozen, uint64(frozen)*check),
				Diag: m.diag()}
		}
		return nil
	})
	if m.spec.Obs != nil && enforce {
		// Registered only when a limit is enforced, so unbounded runs'
		// metric streams are byte-identical to builds without the
		// watchdog — including runs watched through OnDiag alone.
		m.spec.Obs.Registry.GaugeFunc("sys.watchdog_checks", func() float64 {
			return float64(m.wdChecks)
		})
	}
}
