package system

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"
)

func limitErr(t *testing.T, err error, kind string) *LimitError {
	t.Helper()
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v (%T), want *LimitError", err, err)
	}
	if le.Kind != kind {
		t.Fatalf("limit kind = %q, want %q: %v", le.Kind, kind, le)
	}
	return le
}

func TestEventBudgetTripsDeterministically(t *testing.T) {
	run := func() *LimitError {
		spec := singleSpec("429.mcf", 1, 1, 20000)
		spec.Limits = &Limits{EventBudget: 5000, CheckEvents: 256}
		_, err := Run(spec)
		return limitErr(t, err, LimitEventBudget)
	}
	a, b := run(), run()
	// The budget trips at a watchdog check, so the snapshot is pure
	// simulation state — identical across runs, which is what lets a
	// budget failure be journaled and replayed byte-for-byte.
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatalf("budget-trip errors differ:\n%s\n%s", aj, bj)
	}
	if a.Diag.Events < 5000 || a.Diag.Events >= 5000+256 {
		t.Fatalf("tripped at %d events, want within one 256-event window past 5000", a.Diag.Events)
	}
	if a.Diag.Cores != 1 || a.Diag.CoresFinished != 0 || len(a.Diag.CtrlQueueLens) == 0 {
		t.Fatalf("diagnostic snapshot incomplete: %+v", a.Diag)
	}
	if len(a.Diag.CoreRetired) != 1 {
		t.Fatalf("per-core retired counts missing: %+v", a.Diag)
	}
}

func TestWallClockDeadlineTrips(t *testing.T) {
	spec := singleSpec("429.mcf", 1, 1, 20000)
	// A 1ns deadline is already past at the first check, so the trip
	// point (and therefore the whole error) is deterministic.
	spec.Limits = &Limits{WallClock: time.Nanosecond, CheckEvents: 256}
	_, err := Run(spec)
	le := limitErr(t, err, LimitDeadline)
	if le.Diag.Events != 256 {
		t.Fatalf("deadline tripped at %d events, want the first check at 256", le.Diag.Events)
	}
	if le.Msg != "wall-clock deadline 1ns exceeded" {
		t.Fatalf("nondeterministic or unexpected message: %q", le.Msg)
	}
}

func TestContextCancellationStopsRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := singleSpec("429.mcf", 1, 1, 20000)
	spec.Limits = &Limits{Ctx: ctx, CheckEvents: 256}
	_, err := Run(spec)
	limitErr(t, err, LimitCancelled)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled LimitError does not match context.Canceled: %v", err)
	}
}

// TestIntraCancellationChecksEveryBarrier pins the parallel watchdog's
// host-side checks to barrier granularity: with a check interval far
// larger than the whole run, the fired-event cadence never comes due,
// yet cancellation (and the wall-clock deadline) must still be able to
// stop the run — otherwise a barrier loop making no event progress
// could never be rescued.
func TestIntraCancellationChecksEveryBarrier(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := intraSpecs(t)["single-core"]
	spec.IntraParallelism = 4
	spec.Limits = &Limits{Ctx: ctx, CheckEvents: 1 << 40}
	_, err := Run(spec)
	limitErr(t, err, LimitCancelled)
}

func TestLimitsDoNotPerturbResults(t *testing.T) {
	spec := singleSpec("429.mcf", 1, 1, 8000)
	base, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Generous limits that never trip: the run must complete with
	// bit-identical results (the watchdog only observes).
	bounded := singleSpec("429.mcf", 1, 1, 8000)
	bounded.Limits = &Limits{
		Ctx:         context.Background(),
		WallClock:   time.Hour,
		EventBudget: 1 << 40,
		CheckEvents: 1024,
	}
	got, err := Run(bounded)
	if err != nil {
		t.Fatal(err)
	}
	bj, _ := json.Marshal(base)
	gj, _ := json.Marshal(got)
	if string(bj) != string(gj) {
		t.Fatalf("limits perturbed the run:\nbase %s\nwith %s", bj, gj)
	}
}

func TestLivelockDetectorIgnoresProgress(t *testing.T) {
	// A healthy run advances its clock constantly; the livelock
	// detector armed alone must never trip on it.
	spec := singleSpec("429.mcf", 1, 1, 8000)
	spec.Limits = &Limits{StallWindows: 2, CheckEvents: 64}
	if _, err := Run(spec); err != nil {
		t.Fatalf("livelock detector tripped on a healthy run: %v", err)
	}
}

func TestLimitErrorRendering(t *testing.T) {
	le := &LimitError{Kind: LimitEventBudget, Msg: "event budget 100 exhausted",
		Diag: Diag{NowPS: 1234, Events: 128, QueueDepth: 7, CoresFinished: 0, Cores: 4,
			CtrlQueueLens: []int{3, 0}, CoreRetired: []uint64{10, 20, 15, 12}}}
	want := "system: event budget 100 exhausted (sim=1234ps events=128 queue=7 cores=0/4 ctrlq=[3 0] retired=[10..20])"
	if got := le.Error(); got != want {
		t.Fatalf("Error() = %q\nwant      %q", got, want)
	}
}
