package system

// Observability wiring: when a run carries an obs.Observer, the
// machine registers every component's metrics into the observer's
// registry (subsuming the ad-hoc stats structs of memctrl, cpu, cache,
// and noc under stable labelled names) and threads the DRAM command
// tracer through each memory controller. Gauges only read component
// state; delta gauges keep their previous snapshot in closure state and
// rely on the registry's documented in-order, once-per-gather
// evaluation.

import (
	"microbank/internal/memctrl"
	"microbank/internal/obs"
	"microbank/internal/stats"
)

// wireObs registers all metric sources and attaches the tracer.
func (m *machine) wireObs(o *obs.Observer) {
	reg := o.Registry
	// Epoch length in picoseconds, for rate gauges. Without a sampler
	// the gauges are never evaluated; 1 keeps the math well-defined.
	epochPS := 1.0
	if o.Sampler != nil {
		epochPS = float64(o.Sampler.Every())
	}
	lineBytes := float64(m.spec.Sys.Mem.Org.CacheLineBytes)

	for ch, ctl := range m.ctrls {
		ctl := ctl
		if o.Tracer != nil {
			ctl.SetTracer(o.Tracer, ch)
		}
		lch := obs.L("ch", ch)
		reg.GaugeFunc("mem.queue_depth", func() float64 {
			return float64(ctl.QueueLen())
		}, lch)
		reg.GaugeFunc("mem.banks_open", func() float64 {
			return float64(ctl.Channel().OpenBanks())
		}, lch)
		reg.GaugeFunc("mem.busy_banks", func() float64 {
			busy, _ := ctl.BankOccupancy()
			return float64(busy)
		}, lch)
		reg.GaugeFunc("mem.max_bank_queue", func() float64 {
			_, maxQ := ctl.BankOccupancy()
			return float64(maxQ)
		}, lch)
		// Per-epoch rates. The first gauge snapshots the controller and
		// computes every delta; the rest read the shared result (gauges
		// evaluate once per gather, in registration order).
		var prev memctrl.Stats
		var cur struct{ writeBW, rowHit, pred float64 }
		reg.GaugeFunc("mem.read_bw_gbps", func() float64 {
			s := ctl.Stats()
			dr := s.Reads - prev.Reads
			dw := s.Writes - prev.Writes
			dh := s.RowHits - prev.RowHits
			cur.writeBW = float64(dw) * lineBytes * 1000 / epochPS
			cur.rowHit = stats.Ratio(dh, dr+dw)
			cur.pred = stats.Ratio(s.PredRight-prev.PredRight, s.PredDecisions-prev.PredDecisions)
			prev = s
			return float64(dr) * lineBytes * 1000 / epochPS
		}, lch)
		reg.GaugeFunc("mem.write_bw_gbps", func() float64 { return cur.writeBW }, lch)
		reg.GaugeFunc("mem.row_hit_rate", func() float64 { return cur.rowHit }, lch)
		reg.GaugeFunc("mem.pred_accuracy", func() float64 { return cur.pred }, lch)
		// QoS plane: whole-run p99 request latency across threads and the
		// bandwidth-regulator deferral count (0 with the regulator off).
		reg.GaugeFunc("mem.lat_p99_ns", func() float64 {
			var all stats.Histogram
			lats := ctl.ThreadLatencies()
			for t := range lats {
				all.Merge(&lats[t])
			}
			return float64(all.Quantile(0.99)) / 1000
		}, lch)
		reg.GaugeFunc("mem.reg_deferred", func() float64 {
			return float64(ctl.Stats().RegDeferred)
		}, lch)
	}

	reg.GaugeFunc("cpu.instr_retired", func() float64 {
		var n uint64
		for _, c := range m.cores {
			n += c.Stats().Instructions
		}
		return float64(n)
	})
	{
		var prevInstr uint64
		corePeriod := float64(m.spec.Sys.CoreClock().Period())
		cores := float64(len(m.cores))
		reg.GaugeFunc("cpu.commit_ipc", func() float64 {
			var n uint64
			for _, c := range m.cores {
				n += c.Stats().Instructions
			}
			d := n - prevInstr
			prevInstr = n
			cycles := epochPS / corePeriod * cores
			if cycles == 0 {
				return 0
			}
			return float64(d) / cycles
		})
	}

	{
		var prevA, prevH uint64
		reg.GaugeFunc("cache.l1_hit_rate", func() float64 {
			var a, h uint64
			for _, c := range m.l1s {
				s := c.Stats()
				a += s.Accesses
				h += s.Hits
			}
			r := stats.Ratio(h-prevH, a-prevA)
			prevA, prevH = a, h
			return r
		})
	}
	{
		var prevA, prevH uint64
		reg.GaugeFunc("cache.l2_hit_rate", func() float64 {
			var a, h uint64
			for _, c := range m.l2s {
				s := c.Stats()
				a += s.Accesses
				h += s.Hits
			}
			r := stats.Ratio(h-prevH, a-prevA)
			prevA, prevH = a, h
			return r
		})
	}
	reg.GaugeFunc("noc.packets", func() float64 { return float64(m.mesh.Packets) })
	reg.GaugeFunc("noc.avg_hops", func() float64 { return m.mesh.AvgHops() })

	if p := m.par; p != nil {
		// Windowed-engine health: read-only, evaluated at gather time
		// (for parallel-eligible runs that means after the run — the
		// sampler is sequential-only).
		reg.GaugeFunc("sim.windows", func() float64 { return float64(p.win.Windows) })
		reg.GaugeFunc("sim.window_ns", func() float64 { return float64(p.win.Window()) / 1000 })
		reg.GaugeFunc("sim.crossdomain_msgs", func() float64 { return float64(p.crossMsgs) })
		reg.GaugeFunc("sim.domain_imbalance", func() float64 { return p.imbalance() })
		// Per-window skew: max/mean fired events over each window's
		// active domains, scaled by 1000 (1000 = perfectly balanced).
		// Observed serially at barriers by observeWindow.
		p.winImb = reg.Histogram("sim.window_imbalance")
	}
}
