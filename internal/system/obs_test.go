package system

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"microbank/internal/obs"
)

// TestObservabilityDoesNotPerturbSimulation is the determinism
// invariant of the observability layer: a run with epoch sampling AND
// command tracing enabled must produce a Result identical, field for
// field, to the same run with observability off.
func TestObservabilityDoesNotPerturbSimulation(t *testing.T) {
	base, err := Run(singleSpec("429.mcf", 2, 8, 20000))
	if err != nil {
		t.Fatal(err)
	}

	spec := singleSpec("429.mcf", 2, 8, 20000)
	o := obs.NewObserver()
	sampler := o.EnableSampling(500 * 1000) // 500 ns epochs
	tracer := o.EnableChromeTrace()
	spec.Obs = o
	observed, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(base, observed) {
		t.Errorf("observability perturbed the simulation:\nbase:     %+v\nobserved: %+v", base, observed)
	}
	if sampler.Epochs() == 0 {
		t.Error("sampler recorded no epochs")
	}
	if tracer.Len() == 0 {
		t.Error("tracer recorded no commands")
	}
	if len(sampler.Names()) < 5 {
		t.Errorf("sampler recorded %d series, want >= 5: %v", len(sampler.Names()), sampler.Names())
	}

	// The epoch CSV must carry the headline series.
	csv := sampler.CSV()
	for _, want := range []string{"mem.read_bw_gbps{ch=0}", "mem.queue_depth{ch=0}",
		"mem.row_hit_rate{ch=0}", "mem.pred_accuracy{ch=0}", "mem.banks_open{ch=0}"} {
		if !strings.Contains(csv, want) {
			t.Errorf("epoch CSV missing series %s", want)
		}
	}

	// And the trace must serialize to loadable JSON.
	var buf bytes.Buffer
	if _, err := tracer.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents":[`) {
		t.Error("trace serialization missing traceEvents")
	}
}

// TestObservedRunRepeatable: two observed runs are identical to each
// other, including the recorded series (sampling itself is
// deterministic).
func TestObservedRunRepeatable(t *testing.T) {
	runOnce := func() (Result, string, int) {
		spec := singleSpec("450.soplex", 2, 2, 10000)
		o := obs.NewObserver()
		s := o.EnableSampling(1000 * 1000)
		tr := o.EnableChromeTrace()
		spec.Obs = o
		res, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		return res, s.CSV(), tr.Len()
	}
	r1, csv1, n1 := runOnce()
	r2, csv2, n2 := runOnce()
	if !reflect.DeepEqual(r1, r2) {
		t.Error("observed runs differ in Result")
	}
	if csv1 != csv2 {
		t.Error("observed runs differ in epoch CSV")
	}
	if n1 != n2 {
		t.Errorf("observed runs differ in trace length: %d vs %d", n1, n2)
	}
}
