package system

// The observability/parallelism interaction contract. An epoch sampler
// or DRAM command tracer must observe events in global simulated-time
// order, which the windowed engine's per-domain execution cannot give
// it, so attaching either forces the sequential fallback — silently and
// deterministically. The tests here pin that contract: the fallback
// triggers exactly when Obs carries a Sampler or Tracer, an observed
// run's gauges byte-match the same observed run at -j-intra 1 (they are
// the same sequential execution), results stay bit-identical to the
// parallel run, and the two observation paths that deliberately do NOT
// force the fallback — Spec.WinTrace and Limits.OnDiag — leave both
// eligibility and the metric stream untouched.

import (
	"reflect"
	"testing"

	"microbank/internal/obs"
	"microbank/internal/sim"
)

// gatherNames flattens a registry snapshot into name->value for
// presence checks.
func gatherNames(snap []obs.Sample) map[string]float64 {
	m := make(map[string]float64, len(snap))
	for _, s := range snap {
		m[s.Name] = s.Value
	}
	return m
}

func TestSamplerForcesSequentialFallback(t *testing.T) {
	spec := intraSpecs(t)["single-core"]
	spec.IntraParallelism = 4

	spec.Obs = &obs.Observer{Registry: obs.NewRegistry()}
	if !spec.intraEligible() {
		t.Fatal("registry-only observation must keep intra eligibility")
	}
	spec.Obs.EnableSampling(50_000_000)
	if spec.intraEligible() {
		t.Fatal("sampler must force the sequential fallback")
	}
	spec.Obs = obs.NewObserver()
	spec.Obs.EnableChromeTrace()
	if spec.intraEligible() {
		t.Fatal("command tracer must force the sequential fallback")
	}
}

// TestSampledGaugesMatchParallel runs the same sampled spec at
// -j-intra 4 (which falls back) and -j-intra 1 (sequential by
// request): every gauge, every epoch row, and the Result must be
// byte-identical, and the fallback run's registry must not contain the
// windowed engine's sim.* gauges — proof the parallel engine never ran.
// The Result must also equal a genuinely parallel run of the same spec
// with registry-only observation (observation never perturbs results).
func TestSampledGaugesMatchParallel(t *testing.T) {
	base := intraSpecs(t)["single-core"]
	const epoch = sim.Time(50_000_000)

	sampled := func(intra int) ([]obs.Sample, string, Result) {
		spec := base
		spec.IntraParallelism = intra
		spec.Obs = obs.NewObserver()
		s := spec.Obs.EnableSampling(epoch)
		res, err := Run(spec)
		if err != nil {
			t.Fatalf("sampled run (intra=%d): %v", intra, err)
		}
		return spec.Obs.Registry.Gather(), s.CSV(), res
	}

	snapFB, csvFB, resFB := sampled(4) // requests parallel, falls back
	snapSeq, csvSeq, resSeq := sampled(1)

	if !reflect.DeepEqual(snapFB, snapSeq) {
		t.Errorf("fallback gauges diverged from sequential:\n got: %v\nwant: %v", snapFB, snapSeq)
	}
	if csvFB != csvSeq {
		t.Errorf("fallback epoch samples diverged from sequential")
	}
	if !reflect.DeepEqual(resFB, resSeq) {
		t.Errorf("fallback result diverged from sequential:\n got: %+v\nwant: %+v", resFB, resSeq)
	}
	if _, ok := gatherNames(snapFB)["sim.windows"]; ok {
		t.Error("sampled run registered sim.windows: the windowed engine ran despite the sampler")
	}

	par := base
	par.IntraParallelism = 4
	par.Obs = &obs.Observer{Registry: obs.NewRegistry()}
	resPar, err := Run(par)
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if _, ok := gatherNames(par.Obs.Registry.Gather())["sim.windows"]; !ok {
		t.Fatal("registry-only parallel run did not use the windowed engine")
	}
	if !reflect.DeepEqual(resFB, resPar) {
		t.Errorf("sampled result diverged from parallel result:\n got: %+v\nwant: %+v", resFB, resPar)
	}
}

// TestWinTraceKeepsParallel: Spec.WinTrace records window/barrier spans
// without touching eligibility or results — it is the parallel-safe
// counterpart to the DRAM command tracer.
func TestWinTraceKeepsParallel(t *testing.T) {
	spec := intraSpecs(t)["single-core"]
	want, err := Run(spec)
	if err != nil {
		t.Fatalf("sequential run: %v", err)
	}

	spec.IntraParallelism = 4
	spec.Obs = &obs.Observer{Registry: obs.NewRegistry()}
	spec.WinTrace = obs.NewChromeTracer()
	if !spec.intraEligible() {
		t.Fatal("WinTrace must not affect intra eligibility")
	}
	got, err := Run(spec)
	if err != nil {
		t.Fatalf("win-traced run: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("win-traced result diverged\n got: %+v\nwant: %+v", got, want)
	}
	if spec.WinTrace.Len() == 0 {
		t.Error("WinTrace recorded no spans on a parallel run")
	}
	names := gatherNames(spec.Obs.Registry.Gather())
	if names["sim.windows"] <= 0 {
		t.Error("sim.windows missing: windowed engine did not run")
	}
	if _, ok := names["sim.window_imbalance.count"]; !ok {
		t.Error("sim.window_imbalance histogram not registered on parallel run")
	}
}

// TestOnDiagOnlyLeavesMetricsAlone: arming only Limits.OnDiag (the
// -serve diagnostic feed) must not register the watchdog's own gauge or
// change any gathered value — the metric stream with -serve on is
// byte-identical to without.
func TestOnDiagOnlyLeavesMetricsAlone(t *testing.T) {
	for _, intra := range []int{1, 4} {
		base := intraSpecs(t)["single-core"]
		base.IntraParallelism = intra

		plain := base
		plain.Obs = &obs.Observer{Registry: obs.NewRegistry()}
		resPlain, err := Run(plain)
		if err != nil {
			t.Fatalf("plain run (intra=%d): %v", intra, err)
		}
		snapPlain := plain.Obs.Registry.Gather()

		diags := 0
		watched := base
		watched.Obs = &obs.Observer{Registry: obs.NewRegistry()}
		// The short test run fires fewer events than the default check
		// cadence, so tighten it; CheckEvents alone never trips a limit.
		watched.Limits = &Limits{CheckEvents: 1024, OnDiag: func(Diag) { diags++ }}
		resWatched, err := Run(watched)
		if err != nil {
			t.Fatalf("watched run (intra=%d): %v", intra, err)
		}
		if diags == 0 {
			t.Errorf("intra=%d: OnDiag never invoked", intra)
		}
		if !reflect.DeepEqual(resWatched, resPlain) {
			t.Errorf("intra=%d: OnDiag-only run diverged\n got: %+v\nwant: %+v", intra, resWatched, resPlain)
		}
		snapWatched := watched.Obs.Registry.Gather()
		if !reflect.DeepEqual(snapWatched, snapPlain) {
			t.Errorf("intra=%d: OnDiag-only metric stream diverged\n got: %v\nwant: %v", intra, snapWatched, snapPlain)
		}
		if _, ok := gatherNames(snapWatched)["sys.watchdog_checks"]; ok {
			t.Errorf("intra=%d: OnDiag-only run registered sys.watchdog_checks", intra)
		}
	}
}
