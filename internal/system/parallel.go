package system

// Intra-run parallelism: the machine partitioned into sim.Windowed
// domains — one per L2 cluster (cores, L1s, L2, its directory shards,
// its transaction pool) and one per memory channel (controller + DRAM
// device). All domain-crossing interactions ride the mesh, whose
// minimum latency is one hop (NoCHopPS), so the synchronization window
// is exactly one hop wide: mesh sends are deferred during a window and
// replayed serially at the barrier in the sequential engine's exact
// issue order (global parent rank, then call index), claiming links,
// advancing mesh statistics, and injecting delivery events with their
// sequential same-instant keys. Results are byte-identical to the
// sequential engine at any worker count; `internal/check/golden`
// asserts this against the committed fixtures.
//
// Eligibility. The decomposition requires that no cache block is
// touched by two clusters (directory state is sharded per cluster):
// synthetic workloads guarantee it structurally when every profile has
// SharedFrac == 0, because each thread's address stream stays inside
// its private slot. Runs with shared-memory profiles, custom
// generators, or per-event observers (Sampler/Tracer) fall back to the
// sequential engine. A violated assumption panics rather than
// silently diverging.
//
// Warm-up cut. The sequential engine snapshots all counters mid-event,
// inside the last core's warm-up crossing. The parallel run reproduces
// that cut exactly: the hosting cluster snapshots its own cache
// counters synchronously; every other domain journals per-event
// counter pre-images while warm-up is pending, and the barrier locates
// the cut by global rank; mesh counters are cut during send replay at
// the crossing's (rank, call) position.

import (
	"fmt"
	"sort"
	"time"

	"microbank/internal/cache"
	"microbank/internal/memctrl"
	"microbank/internal/obs"
	"microbank/internal/parallel"
	"microbank/internal/sim"
	"microbank/internal/stats"
)

// intraEligible reports whether the spec can run on the windowed
// parallel engine with bit-identical results.
func (s *Spec) intraEligible() bool {
	if s.IntraParallelism <= 1 || s.GeneratorFor != nil {
		return false
	}
	for _, p := range s.Profiles {
		if p.SharedFrac > 0 {
			return false
		}
	}
	if s.Obs != nil && (s.Obs.Sampler != nil || s.Obs.Tracer != nil) {
		return false
	}
	return true
}

// parDeliver invokes a deferred mesh delivery carried as a ScheduleArg
// payload (the parallel twin of noc's deliverCb).
var parDeliver = func(e *sim.Engine, arg any) { arg.(func(at sim.Time))(e.Now()) }

// parSend is one deferred mesh send: the call site's identity (domain,
// parent fire index, call index) plus the routing parameters. rkey is
// the resolved global issue order, filled at the barrier.
type parSend struct {
	dom     int
	fire    uint64
	call    uint32
	when    sim.Time
	src     int
	dst     int
	bytes   int
	deliver func(at sim.Time)
	tgt     int // target domain of the delivery event
	rkey    uint64
}

const sendCallBits = 20 // matches the engine's parallel key layout

// clPre / chPre are per-event counter pre-images journaled while the
// warm-up cut is pending.
type clPre struct {
	fire               uint64
	l1a, l1h, l2a, l2h uint64
}
type chPre struct {
	fire  uint64
	stats memctrl.Stats
}

// warmEvt records one core's warm-up crossing: its cut position and
// the hosting cluster's cache counters at that exact mid-event point.
type warmEvt struct {
	cl                 int
	fire               uint64
	call               uint32
	at                 sim.Time
	l1a, l1h, l2a, l2h uint64
}

// parRun is the parallel-mode state of one machine.
type parRun struct {
	m        *machine
	win      *sim.Windowed
	engs     []*sim.Engine
	clusters int
	channels int

	// Per-source-domain deferred mesh sends, merged and replayed at
	// each barrier; replay is the merge target, sorter its persistent
	// sort.Interface (no per-window boxing).
	sends  [][]parSend
	replay []parSend
	sorter sort.Interface

	// Per-cluster transaction pools; posted writes retire inside
	// channel domains and park on chanFree until the barrier splices
	// them back to their owning cluster.
	pools    [][]*memTxn
	chanFree [][]*memTxn

	// dirs[ch][cl] shards each channel's directory by cluster; disjoint
	// address streams make the shards exact.
	dirs [][]*cache.Directory

	// Per-cluster completion state (summed/maxed after the run).
	finished []int
	lastEnd  []sim.Time

	// Warm-up cut state.
	warmPending bool
	warmSeen    int
	warmEvts    [][]warmEvt // per cluster, current window
	clJournal   [][]clPre   // per cluster, current window
	chJournal   [][]chPre   // per channel, current window
	cutPend     bool
	cutKey      uint64 // rank<<sendCallBits | call of the crossing
	pendSnap    *rawCounters

	crossMsgs uint64

	// Per-window observability (nil/zero unless the run carries an
	// observer or a window trace): observeWindow runs serially at each
	// barrier, diffing per-domain fired counts against prevFired to
	// attribute work to the just-finished window.
	trace     *obs.ChromeTracer
	winImb    *stats.Histogram
	prevFired []uint64
	prevMsgs  uint64
	winIdx    uint64
}

func (p *parRun) clDom(cl int) int { return cl }
func (p *parRun) chDom(ch int) int { return p.clusters + ch }

// send defers a mesh send issued by the event currently firing in dom,
// consuming one of its schedule-call slots exactly where the
// sequential engine would have consumed a sequence number.
func (p *parRun) send(dom, src, dst, bytes int, deliver func(at sim.Time), tgt int) {
	e := p.engs[dom]
	fire, call := e.ParCall()
	p.sends[dom] = append(p.sends[dom], parSend{
		dom: dom, fire: fire, call: call, when: e.Now(),
		src: src, dst: dst, bytes: bytes, deliver: deliver, tgt: tgt,
	})
}

type sendSorter struct{ s *[]parSend }

func (ss *sendSorter) Len() int           { return len(*ss.s) }
func (ss *sendSorter) Less(i, j int) bool { return (*ss.s)[i].rkey < (*ss.s)[j].rkey }
func (ss *sendSorter) Swap(i, j int)      { (*ss.s)[i], (*ss.s)[j] = (*ss.s)[j], (*ss.s)[i] }

// replaySends applies the window's deferred mesh sends in the
// sequential engine's issue order: resolved global rank of the issuing
// event, then call index within it. Link reservations, mesh counters,
// and delivery keys therefore evolve exactly as in a sequential run.
func (p *parRun) replaySends() {
	p.replay = p.replay[:0]
	for d := range p.sends {
		for i := range p.sends[d] {
			s := p.sends[d][i]
			s.rkey = p.win.Rank(s.dom, s.fire)<<sendCallBits | uint64(s.call)
			p.replay = append(p.replay, s)
		}
		p.sends[d] = p.sends[d][:0]
	}
	sort.Sort(p.sorter)
	for i := range p.replay {
		s := &p.replay[i]
		if p.cutPend && s.rkey > p.cutKey {
			p.takeMeshCut()
		}
		t := p.m.mesh.RouteAt(s.when, s.src, s.dst, s.bytes)
		p.win.Inject(s.tgt, t, 0, s.rkey>>sendCallBits, uint32(s.rkey&(1<<sendCallBits-1)), parDeliver, s.deliver)
		p.crossMsgs++
	}
	if p.cutPend {
		p.takeMeshCut()
	}
}

// takeMeshCut completes a pending warm-up snapshot with the mesh
// counters at the cut position and publishes it.
func (p *parRun) takeMeshCut() {
	p.pendSnap.nocPackets = p.m.mesh.Packets
	p.pendSnap.nocHops = p.m.mesh.TotalHops
	p.m.warmSnap = p.pendSnap
	p.cutPend = false
	p.pendSnap = nil
}

// splice returns channel-retired transaction records to their owning
// clusters' pools, in channel then retirement order — deterministic,
// and semantically neutral because reused records are fully reset.
func (p *parRun) splice() {
	for ch := range p.chanFree {
		for _, t := range p.chanFree[ch] {
			p.pools[t.cl] = append(p.pools[t.cl], t)
		}
		p.chanFree[ch] = p.chanFree[ch][:0]
	}
}

// armWarm installs the per-event journaling hooks that make the
// mid-event warm-up cut reconstructible at barriers.
func (p *parRun) armWarm() {
	p.warmPending = true
	p.warmEvts = make([][]warmEvt, p.clusters)
	p.clJournal = make([][]clPre, p.clusters)
	p.chJournal = make([][]chPre, p.channels)
	for cl := 0; cl < p.clusters; cl++ {
		cl := cl
		p.win.SetFireHook(p.clDom(cl), func() {
			fire, _ := p.engs[p.clDom(cl)].ParMark()
			a1, h1, a2, h2 := p.clusterCacheSums(cl)
			p.clJournal[cl] = append(p.clJournal[cl], clPre{fire, a1, h1, a2, h2})
		})
	}
	for ch := 0; ch < p.channels; ch++ {
		ch := ch
		ctl := p.m.ctrls[ch]
		p.win.SetFireHook(p.chDom(ch), func() {
			fire, _ := p.engs[p.chDom(ch)].ParMark()
			p.chJournal[ch] = append(p.chJournal[ch], chPre{fire, ctl.Stats()})
		})
	}
}

// clusterCacheSums sums a cluster's L1 and L2 access/hit counters.
func (p *parRun) clusterCacheSums(cl int) (l1a, l1h, l2a, l2h uint64) {
	m := p.m
	lo := cl * m.spec.Sys.CoresPerL2
	hi := lo + m.spec.Sys.CoresPerL2
	if hi > len(m.l1s) {
		hi = len(m.l1s)
	}
	for i := lo; i < hi; i++ {
		s := m.l1s[i].Stats()
		l1a += s.Accesses
		l1h += s.Hits
	}
	s := m.l2s[cl].Stats()
	return l1a, l1h, s.Accesses, s.Hits
}

// coreWarm records one core's warm-up crossing synchronously inside
// the crossing event: its (fire, call) cut position and the hosting
// cluster's exact mid-event cache counters.
func (p *parRun) coreWarm(cl int) {
	e := p.engs[p.clDom(cl)]
	fire, call := e.ParMark()
	w := warmEvt{cl: cl, fire: fire, call: call, at: e.Now()}
	w.l1a, w.l1h, w.l2a, w.l2h = p.clusterCacheSums(cl)
	p.warmEvts[cl] = append(p.warmEvts[cl], w)
}

// resolveWarm processes the window's warm-up crossings in global event
// order. When the last core crosses, it assembles the counter snapshot
// at that exact cut: the hosting cluster from the crossing's
// synchronous capture, every other domain from its journal (the first
// entry ranked after the cut holds the pre-image; if none, the
// domain's whole window precedes the cut).
func (p *parRun) resolveWarm() {
	if !p.warmPending {
		return
	}
	var evts []warmEvt
	var ranks []uint64
	for cl := range p.warmEvts {
		for _, w := range p.warmEvts[cl] {
			evts = append(evts, w)
			ranks = append(ranks, p.win.Rank(p.clDom(w.cl), w.fire))
		}
	}
	sort.Sort(&warmSorter{evts, ranks})
	for i, w := range evts {
		p.warmSeen++
		if p.warmSeen < len(p.m.cores) {
			continue
		}
		R := ranks[i]
		p.cutPend = true
		p.cutKey = R<<sendCallBits | uint64(w.call)
		p.m.warmTime = w.at
		rc := &rawCounters{}
		for cl := 0; cl < p.clusters; cl++ {
			var a1, h1, a2, h2 uint64
			if cl == w.cl {
				a1, h1, a2, h2 = w.l1a, w.l1h, w.l2a, w.l2h
			} else {
				a1, h1, a2, h2 = p.clCut(cl, R)
			}
			rc.l1a += a1
			rc.l1h += h1
			rc.l2a += a2
			rc.l2h += h2
		}
		for ch := 0; ch < p.channels; ch++ {
			rc.mem = addStats(rc.mem, p.chCut(ch, R))
		}
		p.pendSnap = rc // noc fields filled during send replay
		p.warmPending = false
		for dom := range p.engs {
			p.win.SetFireHook(dom, nil)
		}
		break
	}
	for cl := range p.warmEvts {
		p.warmEvts[cl] = p.warmEvts[cl][:0]
		p.clJournal[cl] = p.clJournal[cl][:0]
	}
	for ch := range p.chJournal {
		p.chJournal[ch] = p.chJournal[ch][:0]
	}
}

type warmSorter struct {
	evts  []warmEvt
	ranks []uint64
}

func (w *warmSorter) Len() int           { return len(w.evts) }
func (w *warmSorter) Less(i, j int) bool { return w.ranks[i] < w.ranks[j] }
func (w *warmSorter) Swap(i, j int) {
	w.evts[i], w.evts[j] = w.evts[j], w.evts[i]
	w.ranks[i], w.ranks[j] = w.ranks[j], w.ranks[i]
}

// clCut returns cluster cl's cache counters as of the cut rank.
func (p *parRun) clCut(cl int, R uint64) (l1a, l1h, l2a, l2h uint64) {
	for _, j := range p.clJournal[cl] {
		if p.win.Rank(p.clDom(cl), j.fire) > R {
			return j.l1a, j.l1h, j.l2a, j.l2h
		}
	}
	return p.clusterCacheSums(cl)
}

// chCut returns channel ch's controller statistics as of the cut rank.
func (p *parRun) chCut(ch int, R uint64) memctrl.Stats {
	for _, j := range p.chJournal[ch] {
		if p.win.Rank(p.chDom(ch), j.fire) > R {
			return j.stats
		}
	}
	return p.m.ctrls[ch].Stats()
}

// addStats returns a + b field-wise (the inverse of subStats).
func addStats(a, b memctrl.Stats) memctrl.Stats {
	a.Reads += b.Reads
	a.Writes += b.Writes
	a.RowHits += b.RowHits
	a.RowOpens += b.RowOpens
	a.RowConflictPres += b.RowConflictPres
	a.Retired += b.Retired
	a.QueueOccIntegral += b.QueueOccIntegral
	a.ReadLatencyIntegralPS += b.ReadLatencyIntegralPS
	a.PredDecisions += b.PredDecisions
	a.PredRight += b.PredRight
	a.RegDeferred += b.RegDeferred
	a.Energy.ActPrePJ += b.Energy.ActPrePJ
	a.Energy.RdWrPJ += b.Energy.RdWrPJ
	a.Energy.IOPJ += b.Energy.IOPJ
	a.Energy.RefreshPJ += b.Energy.RefreshPJ
	a.Energy.LatchPJ += b.Energy.LatchPJ
	a.Energy.Acts += b.Energy.Acts
	a.Energy.Reads += b.Energy.Reads
	a.Energy.Writes += b.Energy.Writes
	a.Energy.Pres += b.Energy.Pres
	a.Energy.Refreshes += b.Energy.Refreshes
	return a
}

// imbalance is max/mean fired events across domains (1.0 = perfectly
// balanced).
func (p *parRun) imbalance() float64 {
	fired := p.win.DomainFired()
	var sum, max uint64
	for _, f := range fired {
		sum += f
		if f > max {
			max = f
		}
	}
	if sum == 0 {
		return 0
	}
	return float64(max) * float64(len(fired)) / float64(sum)
}

// observeWindow attributes the just-finished window's work to spans
// and the imbalance histogram. It runs serially at the barrier on
// coordinator state only (fired counters, cross-message count, window
// bounds), so emitting it cannot perturb simulation results.
func (p *parRun) observeWindow() {
	if p.prevFired == nil {
		p.prevFired = make([]uint64, len(p.engs))
	}
	start, end := p.win.WindowBounds()
	var sum, maxd uint64
	active := 0
	for d, e := range p.engs {
		delta := e.Fired() - p.prevFired[d]
		p.prevFired[d] = e.Fired()
		if delta == 0 {
			continue
		}
		active++
		sum += delta
		if delta > maxd {
			maxd = delta
		}
		if p.trace != nil {
			p.trace.WindowSpan(int32(d), start, end, p.winIdx, delta)
		}
	}
	if active > 0 && p.winImb != nil {
		// max/mean fired events over the window's active domains,
		// scaled by 1000 (integer-valued histogram): 1000 = balanced.
		p.winImb.Observe(maxd * 1000 * uint64(active) / sum)
	}
	if p.trace != nil {
		p.trace.BarrierSpan(start, end, p.winIdx, p.crossMsgs-p.prevMsgs,
			p.win.LastBarrierWaitNS())
		p.prevMsgs = p.crossMsgs
	}
	p.winIdx++
}

// parWatchdog enforces run limits at window barriers. The
// deterministic limits (event budget, clock-frozen livelock) run once
// per CheckEvents fired events (aggregated over domains), so their
// trips are window-granular: a bounded parallel run trips
// deterministically at the same barrier for any worker count, though
// not necessarily at the same event as the sequential engine
// (documented in EXPERIMENTS.md; unbounded runs are byte-identical).
// The host-side limits (context cancellation, wall-clock deadline) are
// checked unconditionally at every barrier — they must stay able to
// rescue a run whose barriers stop making event progress — and
// consecutive zero-progress barriers trip the livelock detector.
type parWatchdog struct {
	p         *parRun
	l         *Limits
	check     uint64
	windows   int
	enforce   bool
	deadline  time.Time
	lastCheck uint64
	lastNow   sim.Time
	frozen    int
	lastFired uint64
	idle      int
}

func (p *parRun) armWatchdog(l *Limits) *parWatchdog {
	w := &parWatchdog{p: p, l: l, check: l.CheckEvents, windows: l.StallWindows,
		enforce: l.enforced()}
	if w.check == 0 {
		w.check = defaultCheckEvents
	}
	if w.windows <= 0 {
		w.windows = defaultStallWindows
	}
	if l.WallClock > 0 {
		w.deadline = time.Now().Add(l.WallClock)
	}
	if p.m.spec.Obs != nil && w.enforce {
		// Mirrors the sequential watchdog: the gauge exists only when a
		// limit can trip, so OnDiag-only observation leaves the metric
		// stream untouched.
		m := p.m
		p.m.spec.Obs.Registry.GaugeFunc("sys.watchdog_checks", func() float64 {
			return float64(m.wdChecks)
		})
	}
	return w
}

// barrier runs the due watchdog checks for the current barrier.
func (w *parWatchdog) barrier() error {
	var fired uint64
	var now sim.Time
	for _, e := range w.p.engs {
		fired += e.Fired()
		if e.Now() > now {
			now = e.Now()
		}
	}
	m, l := w.p.m, w.l
	// Host-side limits are checked unconditionally once per barrier: a
	// barrier iteration that fired no events makes no fired-count
	// progress, so gating these on the event cadence would leave such a
	// run unrescuable by cancellation or the wall-clock deadline. Both
	// are nondeterministic trips anyway, and barrier granularity keeps
	// the cost negligible.
	if l.Ctx != nil {
		if err := l.Ctx.Err(); err != nil {
			return &LimitError{Kind: LimitCancelled,
				Msg: "run cancelled: " + err.Error(), Diag: m.diag()}
		}
	}
	if l.WallClock > 0 && time.Now().After(w.deadline) {
		return &LimitError{Kind: LimitDeadline,
			Msg:  fmt.Sprintf("wall-clock deadline %s exceeded", l.WallClock),
			Diag: m.diag()}
	}
	// A healthy window always fires at least one event (the due list is
	// built from domains with work inside the window), so consecutive
	// zero-progress barriers mean the coordinator is spinning on state
	// that can never drain — treat that as livelock rather than looping
	// until some other limit trips. Only when some limit is enforced:
	// an OnDiag-only watchdog must never add a failure mode.
	if fired == w.lastFired && w.enforce {
		if w.idle++; w.idle >= w.windows {
			return &LimitError{Kind: LimitLivelock,
				Msg: fmt.Sprintf("livelock: %d consecutive window barriers fired no events",
					w.idle),
				Diag: m.diag()}
		}
	} else {
		w.lastFired, w.idle = fired, 0
	}
	// Deterministic limits stay on the fired-event cadence so a bounded
	// run trips at the same barrier for any worker count.
	for fired-w.lastCheck >= w.check {
		w.lastCheck += w.check
		m.wdChecks++
		if l.OnDiag != nil {
			l.OnDiag(m.diag())
		}
		if !w.enforce {
			continue
		}
		if l.EventBudget > 0 && fired >= l.EventBudget {
			return &LimitError{Kind: LimitEventBudget,
				Msg:  fmt.Sprintf("event budget %d exhausted", l.EventBudget),
				Diag: m.diag()}
		}
		if now != w.lastNow {
			w.lastNow, w.frozen = now, 0
		} else if w.frozen++; w.frozen >= w.windows {
			return &LimitError{Kind: LimitLivelock,
				Msg: fmt.Sprintf("livelock: sim clock frozen across %d watchdog windows (%d events)",
					w.frozen, uint64(w.frozen)*w.check),
				Diag: m.diag()}
		}
	}
	return nil
}

// runIntra executes an eligible spec on the windowed parallel engine.
func runIntra(spec Spec) (Result, error) {
	sys := spec.Sys
	clusters := (sys.Cores + sys.CoresPerL2 - 1) / sys.CoresPerL2
	channels := sys.Mem.Org.Channels
	doms := clusters + channels
	width := spec.IntraParallelism
	if width > doms {
		width = doms
	}
	// One worker is this goroutine; extras come from the shared
	// intra-parallelism budget so sweeps don't oversubscribe. The
	// grant affects wall-clock only — results are width-independent.
	extra := parallel.AcquireIntra(width - 1)
	defer parallel.ReleaseIntra(extra)

	engs := make([]*sim.Engine, doms)
	for i := range engs {
		engs[i] = sim.NewEngine()
	}
	win := sim.NewWindowed(sys.NoCHopPS, engs, 1+extra)
	p := &parRun{
		win: win, engs: engs, clusters: clusters, channels: channels,
		sends:    make([][]parSend, doms),
		pools:    make([][]*memTxn, clusters),
		chanFree: make([][]*memTxn, channels),
		finished: make([]int, clusters),
		lastEnd:  make([]sim.Time, clusters),
		dirs:     make([][]*cache.Directory, channels),
	}
	p.sorter = &sendSorter{&p.replay}
	m := build(spec, p, nil)
	p.m = m
	if spec.WarmupInstr > 0 {
		p.armWarm()
	}
	if spec.Obs != nil {
		m.wireObs(spec.Obs)
	}
	if spec.WinTrace != nil {
		p.trace = spec.WinTrace
		win.MeasureBarrier = true
	}
	var wd *parWatchdog
	if spec.Limits.armed() {
		wd = p.armWatchdog(spec.Limits)
	}
	obsWin := p.trace != nil || p.winImb != nil
	for _, c := range m.cores {
		c.Start()
	}
	err := win.Run(func() error {
		p.resolveWarm()
		p.replaySends()
		p.splice()
		if obsWin {
			p.observeWindow()
		}
		if wd != nil {
			return wd.barrier()
		}
		return nil
	})
	for _, f := range p.finished {
		m.finished += f
	}
	for _, t := range p.lastEnd {
		if t > m.lastEnd {
			m.lastEnd = t
		}
	}
	if err != nil {
		return Result{}, err
	}
	if m.finished != len(m.cores) {
		return Result{}, &LimitError{Kind: LimitStall,
			Msg:  fmt.Sprintf("stalled with %d/%d cores finished (events drained)", m.finished, len(m.cores)),
			Diag: m.diag()}
	}
	return m.collect(), nil
}
