package system

import (
	"os"
	"reflect"
	"runtime"
	"testing"

	"microbank/internal/config"
	"microbank/internal/obs"
	"microbank/internal/workload"
)

// TestMain widens GOMAXPROCS so the intra-parallel tests exercise real
// worker goroutines (and the race detector sees them) even on a
// single-CPU test host; results are width-independent by design.
func TestMain(m *testing.M) {
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
	os.Exit(m.Run())
}

// intraSpecs returns the specs the exactness tests sweep: the golden
// single-core shape and a multi-core multiprogrammed mix, both with the
// mid-run warm-up cut armed (the hardest state to reproduce exactly).
func intraSpecs(t *testing.T) map[string]Spec {
	t.Helper()
	single := config.SingleCore(config.MemPreset(config.LPDDRTSI, 2, 8))
	specs := map[string]Spec{
		"single-core": UniformSpec(single, workload.MustGet("429.mcf"), 4000, 42),
	}
	multi := config.DefaultSystem(config.MemPreset(config.LPDDRTSI, 2, 8))
	multi.Cores = 16
	mix := workload.Mix{Name: "intra-test", Members: []string{
		"429.mcf", "470.lbm", "433.milc", "462.libquantum",
	}}
	specs["16-core-mix"] = MixSpec(multi, mix, 3000, 42)
	for name, s := range specs {
		s.WarmupInstr = s.InstrPerCore / 2
		specs[name] = s
	}
	return specs
}

// TestIntraMatchesSequential is the local bit-exactness gate: the
// windowed parallel engine must produce a Result deeply equal to the
// sequential engine's, including every float, at several widths.
func TestIntraMatchesSequential(t *testing.T) {
	for name, spec := range intraSpecs(t) {
		spec := spec
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			want, err := Run(spec)
			if err != nil {
				t.Fatalf("sequential run: %v", err)
			}
			for _, width := range []int{2, 4, runtime.NumCPU()} {
				ps := spec
				ps.IntraParallelism = width
				got, err := Run(ps)
				if err != nil {
					t.Fatalf("intra width %d: %v", width, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("intra width %d: result diverged from sequential\n got: %+v\nwant: %+v",
						width, got, want)
				}
			}
		})
	}
}

// TestIntraNoWarmup covers the no-warm-up path (no cut machinery).
func TestIntraNoWarmup(t *testing.T) {
	spec := intraSpecs(t)["16-core-mix"]
	spec.WarmupInstr = 0
	want, err := Run(spec)
	if err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	spec.IntraParallelism = 4
	got, err := Run(spec)
	if err != nil {
		t.Fatalf("intra run: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("no-warmup result diverged\n got: %+v\nwant: %+v", got, want)
	}
}

// TestIntraRegistryObs checks that a registry-only observer (no
// sampler/tracer) stays on the parallel path and gathers the windowed-
// engine gauges.
func TestIntraRegistryObs(t *testing.T) {
	spec := intraSpecs(t)["single-core"]
	want, err := Run(spec)
	if err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	spec.IntraParallelism = 4
	spec.Obs = &obs.Observer{Registry: obs.NewRegistry()}
	got, err := Run(spec)
	if err != nil {
		t.Fatalf("observed intra run: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("observed intra result diverged\n got: %+v\nwant: %+v", got, want)
	}
	snap := spec.Obs.Registry.Gather()
	var windows float64
	found := false
	for _, mp := range snap {
		if mp.Name == "sim.windows" {
			windows, found = mp.Value, true
		}
	}
	if !found || windows <= 0 {
		t.Errorf("sim.windows gauge missing or zero (found=%v val=%v)", found, windows)
	}
}

// TestIntraFallback checks that ineligible specs silently use the
// sequential engine rather than failing.
func TestIntraFallback(t *testing.T) {
	spec := intraSpecs(t)["single-core"]
	spec.IntraParallelism = 4
	spec.Profiles = []workload.Profile{workload.MustGet("canneal")} // SharedFrac > 0
	if spec.intraEligible() {
		t.Fatal("shared-memory profile should not be intra-eligible")
	}
	if _, err := Run(spec); err != nil {
		t.Fatalf("fallback run: %v", err)
	}
}
