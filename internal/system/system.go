// Package system assembles the full simulated machine of §VI-A: cores
// (package cpu) with private L1 data caches, a shared L2 per 4-core
// cluster, a MESI reverse directory per memory controller, a mesh NoC
// (package noc) between clusters and controllers, and one memory
// controller per channel (package memctrl) over the DRAM device model
// (package dram). Run executes a workload assignment to completion and
// returns the paper's metrics: IPC, power breakdown, EDP inputs,
// row-buffer and predictor statistics.
//
// Modeling notes (deviations from the paper's McSimA+ setup, see
// DESIGN.md): instruction fetch is assumed to hit the L1I (the studied
// workloads are data-bound); cache bank conflicts are not modeled; L2
// miss coherence latency is charged as directory-outcome hops times the
// requester↔controller mesh latency.
package system

import (
	"fmt"

	"microbank/internal/cache"
	"microbank/internal/config"
	"microbank/internal/cpu"
	"microbank/internal/energy"
	"microbank/internal/memctrl"
	"microbank/internal/noc"
	"microbank/internal/obs"
	"microbank/internal/sim"
	"microbank/internal/stats"
	"microbank/internal/workload"
)

// Spec describes one simulation run.
type Spec struct {
	Sys config.System
	// Profiles assigns a workload to each populated core; its length
	// must equal Sys.Cores.
	Profiles     []workload.Profile
	InstrPerCore uint64
	// WarmupInstr excludes each core's first WarmupInstr instructions
	// from every reported metric (cache/row-buffer warm-up), the
	// SimPoint-style measured-region convention. Must be less than
	// InstrPerCore.
	WarmupInstr uint64
	Seed        int64
	// GeneratorFor, when non-nil, overrides the synthetic generator for
	// each core (trace replay via workload.Trace, custom generators,
	// ...). Profiles[core] still supplies DepFrac for the core model.
	GeneratorFor func(core int) workload.Generator
	// Obs, when non-nil, enables observability for the run: component
	// metrics register into Obs.Registry, Obs.Sampler (if set) snapshots
	// them every epoch, and Obs.Tracer (if set) records every DRAM
	// command. Observation is read-only — results are bit-identical with
	// or without it.
	Obs *obs.Observer
	// WinTrace, when non-nil, receives per-window and per-barrier spans
	// from the windowed parallel engine (window index, events fired per
	// domain, cross-domain messages, barrier wait). Unlike Obs.Tracer it
	// does not affect intra-parallel eligibility: spans are emitted
	// serially by the coordinator at barriers, never from model events,
	// so results stay bit-identical. Sequential runs ignore it.
	WinTrace *obs.ChromeTracer
	// Limits, when non-nil and armed, bounds the run (wall-clock
	// deadline, event budget, context cancellation, livelock watchdog);
	// a tripped limit returns a *LimitError. Nil runs unbounded with an
	// untouched hot path.
	Limits *Limits
	// IntraParallelism > 1 requests the windowed conservative parallel
	// engine (one event domain per L2 cluster and per memory channel),
	// bit-identical to the sequential engine at any width. Runs that the
	// decomposition cannot cover exactly — custom generators, shared-
	// memory profiles, per-event observers — fall back to the sequential
	// path; see Spec.intraEligible. Watchdog limits are honored at
	// window granularity. 0 or 1 selects the sequential engine.
	IntraParallelism int
}

// Result carries every metric the experiments report.
type Result struct {
	// IPC is the sum of per-core IPCs (identical to single-core IPC
	// when one core is populated).
	IPC       float64
	PerCore   []cpu.Stats
	RuntimePS sim.Time

	Mem       memctrl.Stats // aggregated over controllers
	Breakdown energy.Breakdown

	// MAPKI is measured main-memory accesses per kilo-instruction.
	MAPKI float64
	// RowHitRate is the serviced-from-open-row fraction.
	RowHitRate float64
	// PredHitRate is the page-decision accuracy (Fig. 13).
	PredHitRate float64
	// AvgReadLatencyNS is the mean controller read latency.
	AvgReadLatencyNS float64
	// L1HitRate / L2HitRate summarize the hierarchy.
	L1HitRate float64
	L2HitRate float64
	// NoCAvgHops is mean hops per NoC packet.
	NoCAvgHops float64

	// QoS tail-latency and fairness metrics, computed from the
	// per-thread request-latency histograms the controllers keep
	// (arrival to data completion, reads and writes). Histograms
	// cannot be warm-subtracted, so unlike the averages above these
	// cover the WHOLE run including warm-up.
	//
	// LatP50NS..LatMaxNS are quantiles of the all-thread merged
	// histogram; MaxSlowdown is worst-thread mean over best-thread
	// mean (>= 1); FairnessIndex is Jain's index over per-thread
	// means (1 = perfectly even service).
	LatP50NS      float64
	LatP95NS      float64
	LatP99NS      float64
	LatMaxNS      float64
	MaxSlowdown   float64
	FairnessIndex float64
	// ThreadLat holds the merged-across-channels per-thread latency
	// histograms the metrics above were computed from (indexed by
	// hardware thread; threads with no requests have zero counts).
	ThreadLat []stats.Histogram
}

// machine is the assembled hardware for one run.
type machine struct {
	eng    *sim.Engine
	spec   Spec
	mesh   *noc.Mesh
	ctrls  []*memctrl.Controller
	dirs   []*cache.Directory
	l2s    []*cache.Cache
	l1s    []*cache.Cache
	cores  []*cpu.Core
	l2Wait [][]func() bool // stalled L1 fills per L2

	// txnFree pools retired memTxn records so the steady-state miss and
	// writeback paths allocate neither closures nor request records.
	txnFree []*memTxn

	finished int
	lastEnd  sim.Time

	warmCount int
	warmTime  sim.Time
	warmSnap  *rawCounters

	// wdChecks counts watchdog hook invocations (exported through obs
	// as sys.watchdog_checks when limits are armed).
	wdChecks uint64

	// par is non-nil when the machine runs on the windowed parallel
	// engine; branch sites below defer mesh sends and shard per-cluster
	// state through it. Sequential runs pay one nil check per site.
	par *parRun
}

// memTxn is a pooled memory-transaction record: one L2 miss (DRAM fill
// or cache-to-cache transfer) or one dirty writeback. Every leg's
// callback is wired once when the record is first allocated, so reuse
// through the pool makes the whole transaction closure-free.
type memTxn struct {
	m     *machine
	ch    int // home memory channel
	cl    int // requesting cluster (parallel mode: owning domain/pool)
	src   int // requester mesh node
	dst   int // controller mesh node
	extra sim.Time
	done  func(at sim.Time)
	req   memctrl.Request

	// reqArrived fires when the request leg lands at the controller
	// node: enqueue the embedded DRAM request (read fill or posted
	// write).
	reqArrived func(at sim.Time)
	// sendReply launches the data-bearing reply leg. It serves both as
	// the cache-to-cache forward (deliver callback of the request leg)
	// and as the DRAM read's Done callback; both ignore their time
	// argument, exactly as the closures they replace did.
	sendReply func(at sim.Time)
	// replyDone fires when the reply lands back at the requester:
	// complete the miss and recycle the record.
	replyDone func(at sim.Time)
}

// allocTxn returns a pooled or freshly wired transaction record for a
// request issued by the given cluster. Parallel runs pool per cluster
// (each pool is touched only by its owning domain); pool order is
// semantically neutral because every reuse fully resets the record.
func (m *machine) allocTxn(cl int) *memTxn {
	if p := m.par; p != nil {
		pool := p.pools[cl]
		if n := len(pool); n > 0 {
			t := pool[n-1]
			pool[n-1] = nil
			p.pools[cl] = pool[:n-1]
			t.cl = cl
			return t
		}
		t := m.newTxn()
		t.cl = cl
		return t
	}
	if n := len(m.txnFree); n > 0 {
		t := m.txnFree[n-1]
		m.txnFree[n-1] = nil
		m.txnFree = m.txnFree[:n-1]
		t.cl = cl
		return t
	}
	t := m.newTxn()
	t.cl = cl
	return t
}

// newTxn wires a fresh transaction record's callback legs once.
func (m *machine) newTxn() *memTxn {
	t := &memTxn{m: m}
	t.reqArrived = func(sim.Time) { t.m.ctrls[t.ch].Enqueue(&t.req) }
	t.sendReply = func(sim.Time) {
		if p := t.m.par; p != nil {
			// Fires inside channel t.ch's domain for both the DRAM Done
			// and cache-to-cache forward paths; the reply lands in the
			// requesting cluster's domain.
			p.send(p.chDom(t.ch), t.dst, t.src, 16+64, t.replyDone, p.clDom(t.cl))
			return
		}
		t.m.mesh.Send(t.dst, t.src, 16+64, t.replyDone)
	}
	t.replyDone = func(at sim.Time) {
		d, extra := t.done, t.extra
		t.m.recycleTxn(t)
		d(at + extra)
	}
	return t
}

// recycleTxn returns a finished record to the pool, dropping callback
// references so pooled records don't pin caller state. Fires in the
// requesting cluster's domain (the reply leg).
func (m *machine) recycleTxn(t *memTxn) {
	t.done = nil
	t.req.Done = nil
	t.req.Owner = nil
	if p := m.par; p != nil {
		p.pools[t.cl] = append(p.pools[t.cl], t)
		return
	}
	m.txnFree = append(m.txnFree, t)
}

// reqRetired is the controllers' OnRetire hook. Posted writes have no
// Done/reply leg, so retirement is their completion: recycle the record
// here. Read fills recycle on the reply leg instead (their Done event
// may still be in flight at retirement). In parallel mode retirement
// fires inside the channel's domain, so the record parks on the
// channel's free list until the barrier splices it home.
func (m *machine) reqRetired(r *memctrl.Request) {
	if r.Done != nil {
		return
	}
	if t, ok := r.Owner.(*memTxn); ok {
		if p := m.par; p != nil {
			t.done = nil
			t.req.Done = nil
			t.req.Owner = nil
			p.chanFree[t.ch] = append(p.chanFree[t.ch], t)
			return
		}
		m.recycleTxn(t)
	}
}

// rawCounters is a monotone snapshot used to subtract warm-up activity.
type rawCounters struct {
	mem        memctrl.Stats
	l1a, l1h   uint64
	l2a, l2h   uint64
	nocPackets uint64
	nocHops    uint64
}

func (m *machine) snapshotCounters() *rawCounters {
	rc := &rawCounters{mem: m.memAgg()}
	for _, c := range m.l1s {
		s := c.Stats()
		rc.l1a += s.Accesses
		rc.l1h += s.Hits
	}
	for _, c := range m.l2s {
		s := c.Stats()
		rc.l2a += s.Accesses
		rc.l2h += s.Hits
	}
	rc.nocPackets = m.mesh.Packets
	rc.nocHops = m.mesh.TotalHops
	return rc
}

// memAgg sums controller statistics.
func (m *machine) memAgg() memctrl.Stats {
	var mem memctrl.Stats
	for _, ctl := range m.ctrls {
		s := ctl.Stats()
		mem.Reads += s.Reads
		mem.Writes += s.Writes
		mem.RowHits += s.RowHits
		mem.RowOpens += s.RowOpens
		mem.RowConflictPres += s.RowConflictPres
		mem.Retired += s.Retired
		mem.QueueOccIntegral += s.QueueOccIntegral
		mem.ReadLatencyIntegralPS += s.ReadLatencyIntegralPS
		mem.PredDecisions += s.PredDecisions
		mem.PredRight += s.PredRight
		mem.RegDeferred += s.RegDeferred
		mem.Energy.ActPrePJ += s.Energy.ActPrePJ
		mem.Energy.RdWrPJ += s.Energy.RdWrPJ
		mem.Energy.IOPJ += s.Energy.IOPJ
		mem.Energy.RefreshPJ += s.Energy.RefreshPJ
		mem.Energy.LatchPJ += s.Energy.LatchPJ
		mem.Energy.Acts += s.Energy.Acts
		mem.Energy.Reads += s.Energy.Reads
		mem.Energy.Writes += s.Energy.Writes
		mem.Energy.Pres += s.Energy.Pres
		mem.Energy.Refreshes += s.Energy.Refreshes
	}
	return mem
}

// subStats returns a - b field-wise.
func subStats(a, b memctrl.Stats) memctrl.Stats {
	a.Reads -= b.Reads
	a.Writes -= b.Writes
	a.RowHits -= b.RowHits
	a.RowOpens -= b.RowOpens
	a.RowConflictPres -= b.RowConflictPres
	a.Retired -= b.Retired
	a.QueueOccIntegral -= b.QueueOccIntegral
	a.ReadLatencyIntegralPS -= b.ReadLatencyIntegralPS
	a.PredDecisions -= b.PredDecisions
	a.PredRight -= b.PredRight
	a.RegDeferred -= b.RegDeferred
	a.Energy.ActPrePJ -= b.Energy.ActPrePJ
	a.Energy.RdWrPJ -= b.Energy.RdWrPJ
	a.Energy.IOPJ -= b.Energy.IOPJ
	a.Energy.RefreshPJ -= b.Energy.RefreshPJ
	a.Energy.LatchPJ -= b.Energy.LatchPJ
	a.Energy.Acts -= b.Energy.Acts
	a.Energy.Reads -= b.Energy.Reads
	a.Energy.Writes -= b.Energy.Writes
	a.Energy.Pres -= b.Energy.Pres
	a.Energy.Refreshes -= b.Energy.Refreshes
	return a
}

// Run builds the machine and simulates until every core has committed
// its instruction budget. It returns an error if the simulation stops
// making progress before completion (a model bug, not a user error).
func Run(spec Spec) (Result, error) {
	if err := spec.validate(); err != nil {
		return Result{}, err
	}
	if spec.IntraParallelism == IntraAuto {
		spec.IntraParallelism = autoIntraWidth(&spec)
	}
	if spec.intraEligible() {
		return runIntra(spec)
	}
	m := build(spec, nil, nil)
	if spec.Obs != nil {
		m.wireObs(spec.Obs)
		if spec.Obs.Sampler != nil {
			spec.Obs.Sampler.Start(m.eng)
		}
	}
	if spec.Limits.armed() {
		m.armWatchdog(spec.Limits)
	}
	for _, c := range m.cores {
		c.Start()
	}
	m.eng.Run()
	if err := m.eng.StopCause(); err != nil {
		return Result{}, err
	}
	if m.finished != len(m.cores) {
		return Result{}, &LimitError{Kind: LimitStall,
			Msg:  fmt.Sprintf("stalled with %d/%d cores finished (events drained)", m.finished, len(m.cores)),
			Diag: m.diag()}
	}
	return m.collect(), nil
}

// validate is Run's prologue check, shared with RunBatch so batched
// members reject exactly the specs a standalone run would.
func (s *Spec) validate() error {
	if err := s.Sys.Validate(); err != nil {
		return fmt.Errorf("system: %w", err)
	}
	if len(s.Profiles) != s.Sys.Cores {
		return fmt.Errorf("system: %d profiles for %d cores", len(s.Profiles), s.Sys.Cores)
	}
	if s.InstrPerCore == 0 {
		return fmt.Errorf("system: zero instruction budget")
	}
	if s.WarmupInstr >= s.InstrPerCore {
		return fmt.Errorf("system: warm-up %d >= budget %d", s.WarmupInstr, s.InstrPerCore)
	}
	return nil
}

// build assembles the machine. A non-nil par places each component on
// its domain's engine (clusters and channels in the same index order as
// runIntra) but otherwise constructs in the exact sequential order, so
// build-time events carry identical keys. A non-nil env (batched
// builds; mutually exclusive with par) supplies the pooled engine and
// the structure-of-arrays bank-state arena shared by the batch.
func build(spec Spec, par *parRun, env *batchEnv) *machine {
	sys := spec.Sys
	clusters := (sys.Cores + sys.CoresPerL2 - 1) / sys.CoresPerL2
	channels := sys.Mem.Org.Channels
	var eng *sim.Engine
	switch {
	case par != nil:
		eng = par.engs[0]
	case env != nil:
		eng = env.eng
	default:
		eng = sim.NewEngine()
	}
	clEng := func(cl int) *sim.Engine {
		if par == nil {
			return eng
		}
		return par.engs[par.clDom(cl)]
	}
	chEng := func(ch int) *sim.Engine {
		if par == nil {
			return eng
		}
		return par.engs[par.chDom(ch)]
	}

	// Mesh must cover both clusters and controllers.
	dim := sys.MeshDim
	for dim*dim < clusters || dim*dim < channels {
		dim++
	}
	if clusters == 1 && channels == 1 {
		dim = 1
	}
	m := &machine{
		eng:  eng,
		spec: spec,
		par:  par,
		mesh: noc.New(eng, dim, sys.NoCHopPS, 64),
	}

	corePeriod := sys.CoreClock().Period()

	retire := m.reqRetired
	for ch := 0; ch < channels; ch++ {
		ctl := memctrl.NewWith(chEng(ch), sys.Mem, sys.Ctrl, sys.Cores, env.ctlArena())
		ctl.OnRetire = retire
		m.ctrls = append(m.ctrls, ctl)
		if par != nil {
			shards := make([]*cache.Directory, clusters)
			for cl := range shards {
				shards[cl] = cache.NewDirectory(max(clusters, 1))
			}
			par.dirs[ch] = shards
		}
		m.dirs = append(m.dirs, cache.NewDirectory(max(clusters, 1)))
	}

	m.l2Wait = make([][]func() bool, clusters)
	for cl := 0; cl < clusters; cl++ {
		cl := cl
		l2 := cache.New(clEng(cl), sys.L2, corePeriod,
			func(block uint64, write bool, thread int, done func(at sim.Time)) {
				m.l2Miss(cl, block, write, thread, done)
			},
			func(block uint64, thread int) {
				m.memWrite(cl, block, thread)
			})
		l2.OnEvict = func(block uint64) { m.l2Evicted(cl, block) }
		l2.OnMSHRFree = func() { m.drainL2Waiters(cl) }
		m.l2s = append(m.l2s, l2)
	}

	for core := 0; core < sys.Cores; core++ {
		core := core
		cl := core / sys.CoresPerL2
		l1 := cache.New(clEng(cl), sys.L1D, corePeriod,
			func(block uint64, write bool, thread int, done func(at sim.Time)) {
				m.l1Miss(cl, block, write, thread, done)
			},
			func(block uint64, thread int) {
				// L1 dirty victim: update the shared L2 (posted).
				if !m.l2s[cl].Access(block, true, core, nil) {
					m.l2Wait[cl] = append(m.l2Wait[cl], func() bool {
						return m.l2s[cl].Access(block, true, core, nil)
					})
				}
			})
		m.l1s = append(m.l1s, l1)

		prof := spec.Profiles[core]
		var gen workload.Generator
		if spec.GeneratorFor != nil {
			gen = spec.GeneratorFor(core)
		} else {
			gen = workload.NewSynthetic(prof, core%63, spec.Seed)
		}
		params := cpu.Params{
			ID:          core,
			FreqMHz:     sys.Core.FreqMHz,
			IssueWidth:  sys.Core.IssueWidth,
			CommitWidth: sys.Core.CommitWidth,
			ROB:         sys.Core.ROBEntries,
			DepFrac:     prof.DepFrac,
			Budget:      spec.InstrPerCore,
			Warmup:      spec.WarmupInstr,
			Seed:        spec.Seed + int64(core)*131,
		}
		var cc *cpu.Core
		cc = cpu.New(clEng(cl), params, gen,
			func(addrV uint64, write bool, done func(at sim.Time)) bool {
				return l1.Access(addrV, write, core, done)
			},
			func(st cpu.Stats) {
				if par != nil {
					par.finished[cl]++
					if st.FinishAt > par.lastEnd[cl] {
						par.lastEnd[cl] = st.FinishAt
					}
					return
				}
				m.finished++
				if st.FinishAt > m.lastEnd {
					m.lastEnd = st.FinishAt
				}
			})
		l1.OnMSHRFree = cc.Kick
		if spec.WarmupInstr > 0 {
			if par != nil {
				cc.OnWarm = func() { par.coreWarm(cl) }
			} else {
				cc.OnWarm = m.coreWarmed
			}
		}
		m.cores = append(m.cores, cc)
	}
	return m
}

// l1Miss forwards an L1 fill to the cluster's L2, with retry when the
// L2's MSHRs are busy.
func (m *machine) l1Miss(cluster int, block uint64, write bool, thread int, done func(at sim.Time)) {
	if m.l2s[cluster].Access(block, write, thread, done) {
		return
	}
	m.l2Wait[cluster] = append(m.l2Wait[cluster], func() bool {
		return m.l2s[cluster].Access(block, write, thread, done)
	})
}

func (m *machine) drainL2Waiters(cluster int) {
	w := m.l2Wait[cluster]
	m.l2Wait[cluster] = m.l2Wait[cluster][:0]
	for i, try := range w {
		if !try() {
			// Still full: requeue the remainder in order.
			m.l2Wait[cluster] = append(m.l2Wait[cluster], w[i:]...)
			return
		}
	}
}

// clusterNode maps a cluster to its mesh node; ctrlNode a channel.
func (m *machine) clusterNode(cl int) int { return cl % m.mesh.Nodes() }
func (m *machine) ctrlNode(ch int) int    { return ch % m.mesh.Nodes() }

// homeChannel returns the memory channel owning a block.
func (m *machine) homeChannel(block uint64) int {
	return m.ctrls[0].Mapper().Map(block).Channel
}

// l2Miss implements the L2 fill path: directory lookup, coherence
// actions, NoC transfer, and (usually) a main-memory access.
func (m *machine) l2Miss(cluster int, block uint64, write bool, thread int, done func(at sim.Time)) {
	ch := m.homeChannel(block)
	var out cache.Outcome
	if p := m.par; p != nil {
		// Disjoint per-cluster address streams (the eligibility gate)
		// let each cluster own a private directory shard; coherence
		// actions against other clusters cannot occur.
		out = p.dirs[ch][cluster].Fill(block, cluster, write)
		if len(out.Invalidate) != 0 || len(out.Downgrade) != 0 {
			panic("system: cross-cluster sharing in intra-parallel run")
		}
	} else {
		out = m.dirs[ch].Fill(block, cluster, write)
	}
	src := m.clusterNode(cluster)
	dst := m.ctrlNode(ch)

	// Apply coherence actions to the victim caches now; their latency
	// is charged to the requester as extra hops below.
	for _, node := range out.Invalidate {
		m.l2s[node].Invalidate(block)
	}
	for _, node := range out.Downgrade {
		m.l2s[node].Downgrade(block)
	}
	extra := sim.Time(out.ExtraHops) * m.mesh.Latency(src, dst)

	t := m.allocTxn(cluster)
	t.ch, t.src, t.dst, t.extra, t.done = ch, src, dst, extra, done
	if !out.NeedMem {
		// Cache-to-cache transfer: request + forwarded line, no DRAM.
		if p := m.par; p != nil {
			p.send(p.clDom(cluster), src, dst, 16, t.sendReply, p.chDom(ch))
			return
		}
		m.mesh.Send(src, dst, 16, t.sendReply)
		return
	}
	t.req = memctrl.Request{
		Addr:   block,
		Write:  false, // fills read the line; dirtiness lives in the L2
		Thread: thread,
		Done:   t.sendReply,
		Owner:  t,
	}
	if p := m.par; p != nil {
		p.send(p.clDom(cluster), src, dst, 16, t.reqArrived, p.chDom(ch))
		return
	}
	m.mesh.Send(src, dst, 16, t.reqArrived)
}

// l2Evicted handles an L2 victim: notify the directory and back-
// invalidate the cluster's L1s (inclusive hierarchy).
func (m *machine) l2Evicted(cluster int, block uint64) {
	ch := m.homeChannel(block)
	if p := m.par; p != nil {
		p.dirs[ch][cluster].Evict(block, cluster)
	} else {
		m.dirs[ch].Evict(block, cluster)
	}
	lo := cluster * m.spec.Sys.CoresPerL2
	hi := lo + m.spec.Sys.CoresPerL2
	if hi > len(m.l1s) {
		hi = len(m.l1s)
	}
	for i := lo; i < hi; i++ {
		m.l1s[i].Invalidate(block)
	}
}

// memWrite sends an L2 dirty victim to memory (posted). The write's
// transaction record is recycled by the controller's OnRetire hook.
func (m *machine) memWrite(cluster int, block uint64, thread int) {
	ch := m.homeChannel(block)
	t := m.allocTxn(cluster)
	t.ch, t.src, t.dst, t.extra, t.done = ch, m.clusterNode(cluster), m.ctrlNode(ch), 0, nil
	t.req = memctrl.Request{Addr: block, Write: true, Thread: thread, Owner: t}
	if p := m.par; p != nil {
		p.send(p.clDom(cluster), t.src, t.dst, 16+64, t.reqArrived, p.chDom(ch))
		return
	}
	m.mesh.Send(t.src, t.dst, 16+64, t.reqArrived)
}

// coreWarmed snapshots all counters once every core has crossed its
// warm-up boundary.
func (m *machine) coreWarmed() {
	m.warmCount++
	if m.warmCount == len(m.cores) {
		m.warmSnap = m.snapshotCounters()
		m.warmTime = m.eng.Now()
	}
}

// collect aggregates the run's statistics.
func (m *machine) collect() Result {
	sys := m.spec.Sys
	var res Result
	res.RuntimePS = m.lastEnd
	period := sys.CoreClock().Period()

	var instr uint64
	for _, c := range m.cores {
		st := c.Stats()
		res.PerCore = append(res.PerCore, st)
		res.IPC += st.IPC(period)
		instr += st.Instructions - st.WarmInstr
	}

	end := m.snapshotCounters()
	warm := m.warmSnap
	if warm == nil {
		warm = &rawCounters{}
	} else {
		res.RuntimePS = m.lastEnd - m.warmTime
	}
	mem := subStats(end.mem, warm.mem)
	res.Mem = mem
	res.RowHitRate = mem.RowHitRate()
	res.PredHitRate = mem.PredictorHitRate()
	res.AvgReadLatencyNS = mem.AvgReadLatencyNS()
	res.MAPKI = float64(mem.Reads+mem.Writes) / (float64(instr) / 1000.0)

	staticMW := sys.Mem.Energy.StaticMWPerRank * float64(sys.Mem.Org.Channels*sys.Mem.Org.RanksPerChan)
	res.Breakdown = energy.Compute(instr, sys.CoreEnergyPJPerOp, mem.Energy, staticMW, res.RuntimePS)

	if a := end.l1a - warm.l1a; a > 0 {
		res.L1HitRate = float64(end.l1h-warm.l1h) / float64(a)
	}
	if p := end.nocPackets - warm.nocPackets; p > 0 {
		res.NoCAvgHops = float64(end.nocHops-warm.nocHops) / float64(p)
	}
	if a := end.l2a - warm.l2a; a > 0 {
		res.L2HitRate = float64(end.l2h-warm.l2h) / float64(a)
	}
	m.collectQoS(&res)
	return res
}

// collectQoS merges the controllers' per-thread latency histograms and
// derives the tail-latency/fairness metrics. Histograms are whole-run
// (no warm subtraction is possible); see the Result field docs.
func (m *machine) collectQoS(res *Result) {
	threads := 0
	for _, ctl := range m.ctrls {
		if n := len(ctl.ThreadLatencies()); n > threads {
			threads = n
		}
	}
	if threads == 0 {
		return
	}
	res.ThreadLat = make([]stats.Histogram, threads)
	for _, ctl := range m.ctrls {
		for t, h := range ctl.ThreadLatencies() {
			hh := h
			res.ThreadLat[t].Merge(&hh)
		}
	}
	var all stats.Histogram
	for t := range res.ThreadLat {
		all.Merge(&res.ThreadLat[t])
	}
	if all.Count() == 0 {
		return
	}
	res.LatP50NS = float64(all.Quantile(0.50)) / 1000.0
	res.LatP95NS = float64(all.Quantile(0.95)) / 1000.0
	res.LatP99NS = float64(all.Quantile(0.99)) / 1000.0
	res.LatMaxNS = float64(all.Max()) / 1000.0
	res.MaxSlowdown = stats.MaxSlowdown(res.ThreadLat)
	res.FairnessIndex = stats.FairnessIndex(res.ThreadLat)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// UniformSpec builds a Spec running the same profile on every core.
func UniformSpec(sys config.System, prof workload.Profile, instr uint64, seed int64) Spec {
	profs := make([]workload.Profile, sys.Cores)
	for i := range profs {
		profs[i] = prof
	}
	return Spec{Sys: sys, Profiles: profs, InstrPerCore: instr, Seed: seed}
}

// MixSpec builds a Spec assigning a multiprogrammed mix round-robin.
func MixSpec(sys config.System, mix workload.Mix, instr uint64, seed int64) Spec {
	profs := make([]workload.Profile, sys.Cores)
	for i := range profs {
		profs[i] = mix.ForCore(i)
	}
	return Spec{Sys: sys, Profiles: profs, InstrPerCore: instr, Seed: seed}
}
