package system

import (
	"testing"

	"microbank/internal/config"
	"microbank/internal/workload"
)

func singleSpec(name string, nW, nB int, instr uint64) Spec {
	sys := config.SingleCore(config.MemPreset(config.LPDDRTSI, nW, nB))
	spec := UniformSpec(sys, workload.MustGet(name), instr, 42)
	spec.WarmupInstr = instr / 3
	return spec
}

func TestRunSingleCoreCompletes(t *testing.T) {
	res, err := Run(singleSpec("429.mcf", 1, 1, 20000))
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 || res.IPC > 2 {
		t.Fatalf("IPC = %v", res.IPC)
	}
	if res.RuntimePS == 0 {
		t.Fatal("zero runtime")
	}
	if res.Mem.Reads == 0 {
		t.Fatal("no memory reads reached DRAM")
	}
	if res.MAPKI <= 0 {
		t.Fatal("MAPKI not measured")
	}
	if res.L1HitRate <= 0 || res.L1HitRate >= 1 {
		t.Fatalf("L1 hit rate = %v", res.L1HitRate)
	}
	if res.Breakdown.TotalPJ() <= 0 {
		t.Fatal("no energy accounted")
	}
}

func TestRunValidation(t *testing.T) {
	spec := singleSpec("429.mcf", 1, 1, 1000)
	bad := spec
	bad.InstrPerCore = 0
	if _, err := Run(bad); err == nil {
		t.Error("zero budget accepted")
	}
	bad = spec
	bad.Profiles = bad.Profiles[:0]
	if _, err := Run(bad); err == nil {
		t.Error("profile/core mismatch accepted")
	}
	bad = spec
	bad.Sys.Mem.Org.NW = 3
	if _, err := Run(bad); err == nil {
		t.Error("invalid org accepted")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(singleSpec("450.soplex", 2, 2, 10000))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(singleSpec("450.soplex", 2, 2, 10000))
	if err != nil {
		t.Fatal(err)
	}
	if a.IPC != b.IPC || a.RuntimePS != b.RuntimePS || a.Mem.Reads != b.Mem.Reads {
		t.Fatalf("nondeterministic: %+v vs %+v", a.IPC, b.IPC)
	}
}

func TestMicrobanksImproveMcf(t *testing.T) {
	base, err := Run(singleSpec("429.mcf", 1, 1, 30000))
	if err != nil {
		t.Fatal(err)
	}
	ub, err := Run(singleSpec("429.mcf", 16, 16, 30000))
	if err != nil {
		t.Fatal(err)
	}
	if ub.IPC <= base.IPC {
		t.Fatalf("μbanks did not help mcf: %v vs %v", ub.IPC, base.IPC)
	}
	// Energy must also fall (smaller activations).
	if ub.Breakdown.ActPrePJ >= base.Breakdown.ActPrePJ {
		t.Fatalf("ACT/PRE energy did not fall: %v vs %v",
			ub.Breakdown.ActPrePJ, base.Breakdown.ActPrePJ)
	}
}

func TestSpecLowInsensitiveToMemory(t *testing.T) {
	base, err := Run(singleSpec("453.povray", 1, 1, 60000))
	if err != nil {
		t.Fatal(err)
	}
	ub, err := Run(singleSpec("453.povray", 8, 8, 60000))
	if err != nil {
		t.Fatal(err)
	}
	// Cache-resident workload: μbanks move IPC by only a few percent.
	ratio := ub.IPC / base.IPC
	if ratio < 0.95 || ratio > 1.1 {
		t.Fatalf("spec-low IPC ratio = %v, want ~1", ratio)
	}
	if base.MAPKI > 8 {
		t.Fatalf("spec-low MAPKI = %v, want < 8 (cache-resident)", base.MAPKI)
	}
}

func TestMultiCoreCluster(t *testing.T) {
	sys := config.DefaultSystem(config.MemPreset(config.LPDDRTSI, 2, 2))
	sys.Cores = 8 // two clusters, keep the test fast
	sys.Mem.Org.Channels = 4
	spec := MixSpec(sys, workload.MixHigh(), 5000, 7)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCore) != 8 {
		t.Fatalf("per-core stats = %d", len(res.PerCore))
	}
	if res.IPC <= 0 {
		t.Fatal("no aggregate IPC")
	}
	if res.NoCAvgHops <= 0 {
		t.Fatal("NoC unused in multi-cluster run")
	}
}

func TestSharedWorkloadExercisesCoherence(t *testing.T) {
	sys := config.DefaultSystem(config.MemPreset(config.LPDDRTSI, 1, 1))
	sys.Cores = 8
	sys.Mem.Org.Channels = 2
	spec := UniformSpec(sys, workload.MustGet("RADIX"), 5000, 3)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mem.Reads == 0 {
		t.Fatal("no memory traffic")
	}
}

func TestInterfacesOrdering(t *testing.T) {
	// DDR3-TSI > DDR3-PCB in IPC for bandwidth-bound multicore load
	// (Fig. 14's headline ordering): TSI removes the pin limit, doubling
	// channels (16 vs 8) and trimming tAA. Uses the presets' own channel
	// counts — that asymmetry IS the comparison.
	ipcFor := func(iface config.Interface) float64 {
		mem := config.MemPreset(iface, 1, 1)
		sys := config.DefaultSystem(mem)
		sys.Cores = 32 // enough demand that the PCB's 8 channels queue up
		spec := UniformSpec(sys, workload.MustGet("470.lbm"), 9000, 9)
		spec.WarmupInstr = 3000
		res, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		return res.IPC
	}
	pcb := ipcFor(config.DDR3PCB)
	tsi := ipcFor(config.DDR3TSI)
	if tsi <= pcb {
		t.Fatalf("DDR3-TSI IPC %v not above DDR3-PCB %v", tsi, pcb)
	}
}

func TestPagePolicySweepRuns(t *testing.T) {
	for _, pol := range []config.PagePolicy{config.OpenPage, config.ClosePage, config.PredLocal, config.PredTournament, config.PredPerfect} {
		spec := singleSpec("429.mcf", 2, 8, 8000)
		spec.Sys.Ctrl.PagePolicy = pol
		res, err := Run(spec)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if res.IPC <= 0 {
			t.Fatalf("%v: IPC %v", pol, res.IPC)
		}
		if pol == config.PredPerfect && res.PredHitRate != 1 && res.Mem.PredDecisions > 0 {
			t.Fatalf("perfect policy hit rate = %v", res.PredHitRate)
		}
	}
}

func TestInterleaveSweepRuns(t *testing.T) {
	for _, iB := range []int{6, 8, 10, 13} {
		spec := singleSpec("470.lbm", 1, 1, 8000)
		spec.Sys.Ctrl.InterleaveBit = iB
		if _, err := Run(spec); err != nil {
			t.Fatalf("iB=%d: %v", iB, err)
		}
	}
}
