package system

import (
	"bytes"
	"testing"

	"microbank/internal/config"
	"microbank/internal/workload"
)

// TestTraceReplayMatchesLiveGenerator records a synthetic workload to
// the portable trace format, replays it through the full system via
// Spec.GeneratorFor, and checks the run is identical to driving the
// generator live.
func TestTraceReplayMatchesLiveGenerator(t *testing.T) {
	prof := workload.MustGet("450.soplex")
	const instr = 15000

	live := singleSpec("450.soplex", 2, 2, instr)
	liveRes, err := Run(live)
	if err != nil {
		t.Fatal(err)
	}

	// Record enough accesses to cover the instruction budget.
	var buf bytes.Buffer
	gen := workload.NewSynthetic(prof, 0, 42)
	if err := workload.Record(&buf, gen, instr); err != nil {
		t.Fatal(err)
	}
	tr, err := workload.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	replay := singleSpec("450.soplex", 2, 2, instr)
	replay.GeneratorFor = func(core int) workload.Generator { return tr }
	repRes, err := Run(replay)
	if err != nil {
		t.Fatal(err)
	}
	if repRes.IPC != liveRes.IPC || repRes.Mem.Reads != liveRes.Mem.Reads {
		t.Fatalf("trace replay diverged: IPC %v vs %v, reads %d vs %d",
			repRes.IPC, liveRes.IPC, repRes.Mem.Reads, liveRes.Mem.Reads)
	}
}

func TestMulticoreDeterminism(t *testing.T) {
	run := func() Result {
		sys := config.DefaultSystem(config.MemPreset(config.LPDDRTSI, 2, 2))
		sys.Cores = 8
		spec := MixSpec(sys, workload.MixHigh(), 6000, 5)
		spec.WarmupInstr = 2000
		res, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.IPC != b.IPC || a.RuntimePS != b.RuntimePS ||
		a.Mem.Reads != b.Mem.Reads || a.Mem.RowHits != b.Mem.RowHits ||
		a.Breakdown.TotalPJ() != b.Breakdown.TotalPJ() {
		t.Fatalf("multicore run not deterministic:\n%+v\n%+v", a.Mem, b.Mem)
	}
}

func TestWarmupExcludesColdMisses(t *testing.T) {
	// povray's working set warms during the warm-up region, so its
	// measured MAPKI must be far below the no-warm-up measurement.
	cold := singleSpec("453.povray", 1, 1, 60000)
	cold.WarmupInstr = 0
	coldRes, err := Run(cold)
	if err != nil {
		t.Fatal(err)
	}
	warm := singleSpec("453.povray", 1, 1, 60000)
	warm.WarmupInstr = 40000
	warmRes, err := Run(warm)
	if err != nil {
		t.Fatal(err)
	}
	if warmRes.MAPKI >= coldRes.MAPKI {
		t.Fatalf("warm-up did not reduce measured MAPKI: %v vs %v",
			warmRes.MAPKI, coldRes.MAPKI)
	}
}

func TestWarmupValidation(t *testing.T) {
	spec := singleSpec("429.mcf", 1, 1, 1000)
	spec.WarmupInstr = 1000 // == budget
	if _, err := Run(spec); err == nil {
		t.Fatal("warm-up >= budget accepted")
	}
}

func TestPerfectPolicyFullQueuePressure(t *testing.T) {
	// Regression for the window-vs-queue decision bug: drive the
	// perfect policy with far more outstanding requests than the
	// 32-entry scheduling window on few banks.
	spec := singleSpec("TPC-H", 1, 1, 40000)
	spec.Sys.Ctrl.PagePolicy = config.PredPerfect
	spec.Sys.Ctrl.QueueDepth = 4 // tiny window, deep queue
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mem.PredDecisions > 0 && res.PredHitRate != 1 {
		t.Fatalf("oracle hit rate = %v", res.PredHitRate)
	}
}

func TestTinyResources(t *testing.T) {
	// Failure-injection: pathologically small structures must still
	// drain (no deadlock) and produce sane results.
	spec := singleSpec("470.lbm", 2, 2, 10000)
	spec.Sys.L1D.MSHRs = 1
	spec.Sys.L2.MSHRs = 2
	spec.Sys.Ctrl.QueueDepth = 1
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 {
		t.Fatalf("IPC = %v", res.IPC)
	}
}
