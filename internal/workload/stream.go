package workload

// StreamSet is the shared deterministic workload front-end for batched
// sweeps: each core's synthetic stream is generated once, in stream
// order, and replayed to every variant machine through per-variant
// Cursors. Sharing is sound because Synthetic.Next draws only from the
// stream's own rng — no timing feedback reaches the generator — so the
// sequence a standalone run would draw is identical for every variant.
// (Per-core dependence draws live in the CPU model, which each variant
// still simulates privately: those ARE timing-coupled.)
//
// The recording is lazily extended: whichever cursor first reads past
// the recorded tail generates forward from the owned Synthetic, so
// variants that consume different prefix lengths (they retire the same
// instruction budget at different speeds and the fastest cell stops
// first) never diverge — later reads of the same index replay the same
// (gap, Access).
//
// A StreamSet is NOT safe for concurrent use; the batch driver advances
// all member machines on one goroutine.
type StreamSet struct {
	streams []*sharedStream
}

type sharedStream struct {
	src  *Synthetic
	gaps []int
	accs []Access
}

// NewStreamSet builds one recorded stream per core, constructed exactly
// as a standalone run would (NewSynthetic(p, core%63, seed)).
func NewStreamSet(profiles []Profile, seed int64) *StreamSet {
	ss := &StreamSet{streams: make([]*sharedStream, len(profiles))}
	for core, p := range profiles {
		ss.streams[core] = &sharedStream{src: NewSynthetic(p, core%63, seed)}
	}
	return ss
}

// Cores returns the number of per-core streams in the set.
func (ss *StreamSet) Cores() int { return len(ss.streams) }

// Cursor returns a fresh replay Generator over core's recorded stream.
// Each variant machine gets its own cursor per core.
func (ss *StreamSet) Cursor(core int) *Cursor {
	return &Cursor{s: ss.streams[core]}
}

func (st *sharedStream) at(i int) (int, Access) {
	for len(st.gaps) <= i {
		g, a := st.src.Next()
		st.gaps = append(st.gaps, g)
		st.accs = append(st.accs, a)
	}
	return st.gaps[i], st.accs[i]
}

// Cursor replays one core's recorded stream; it implements Generator.
type Cursor struct {
	s   *sharedStream
	pos int
}

// Next implements Generator by replay (extending the recording on
// first touch of an index).
func (c *Cursor) Next() (int, Access) {
	g, a := c.s.at(c.pos)
	c.pos++
	return g, a
}
