package workload

import "testing"

// TestStreamSetReplay: every cursor over a shared stream must see
// exactly the sequence a standalone Synthetic would produce, regardless
// of how reads from different cursors interleave or how far each one
// gets.
func TestStreamSetReplay(t *testing.T) {
	const seed = 42
	profiles := []Profile{MustGet("429.mcf"), MustGet("TPC-H")}
	ss := NewStreamSet(profiles, seed)
	if ss.Cores() != 2 {
		t.Fatalf("Cores() = %d", ss.Cores())
	}

	// References: standalone generators constructed the way build() does.
	refs := make([]*Synthetic, len(profiles))
	for core, p := range profiles {
		refs[core] = NewSynthetic(p, core%63, seed)
	}
	type rec struct {
		gap int
		acc Access
	}
	want := make([][]rec, len(profiles))
	for core, r := range refs {
		for i := 0; i < 500; i++ {
			g, a := r.Next()
			want[core] = append(want[core], rec{g, a})
		}
	}

	// Three cursors per core, advanced with skewed interleaving: cursor
	// 0 leads (extends the recording), 1 trails, 2 reads in bursts.
	curs := make([][]*Cursor, len(profiles))
	for core := range profiles {
		curs[core] = []*Cursor{ss.Cursor(core), ss.Cursor(core), ss.Cursor(core)}
	}
	pos := make([][]int, len(profiles))
	for core := range pos {
		pos[core] = make([]int, 3)
	}
	check := func(core, variant int) {
		i := pos[core][variant]
		g, a := curs[core][variant].Next()
		if w := want[core][i]; g != w.gap || a != w.acc {
			t.Fatalf("core %d variant %d item %d: got (%d,%+v) want (%d,%+v)",
				core, variant, i, g, a, w.gap, w.acc)
		}
		pos[core][variant] = i + 1
	}
	for i := 0; i < 400; i++ {
		check(0, 0)
		check(1, 0)
		if i%2 == 0 {
			check(0, 1)
		}
		if i%4 == 3 {
			for k := 0; k < 4; k++ {
				check(0, 2)
				check(1, 2)
			}
		}
	}
	// Trailers catch up past the leader's tail: lazy extension must keep
	// serving the same recorded sequence.
	for pos[0][1] < 450 {
		check(0, 1)
	}
}
