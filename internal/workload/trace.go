package workload

// Trace capture and replay. The paper drives its simulator from
// SimPoint-selected Pin traces; this file provides the equivalent
// plumbing for this repository: any Generator's output can be recorded
// to a portable text format and replayed later (or brought in from an
// external tool that emits the same format).
//
// Format: one access per line,
//
//	<gap> <hex address> <R|W>
//
// e.g. "3 1f4a40 R" means three non-memory instructions, then a read
// of 0x1f4a40. Lines starting with '#' and blank lines are ignored.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Record captures n accesses from gen into w.
func Record(w io.Writer, gen Generator, n int) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# microbank trace: %d accesses\n", n); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		gap, acc := gen.Next()
		rw := 'R'
		if acc.Write {
			rw = 'W'
		}
		if _, err := fmt.Fprintf(bw, "%d %x %c\n", gap, acc.Addr, rw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Trace is a fully-loaded access trace that implements Generator by
// replaying (and wrapping around at the end, like Fixed).
type Trace struct {
	Gaps []int
	Accs []Access
	pos  int
}

// Len returns the number of recorded accesses.
func (t *Trace) Len() int { return len(t.Accs) }

// Next implements Generator.
func (t *Trace) Next() (int, Access) {
	if len(t.Accs) == 0 {
		panic("workload: empty trace")
	}
	g, a := t.Gaps[t.pos], t.Accs[t.pos]
	t.pos = (t.pos + 1) % len(t.Accs)
	return g, a
}

// Reset rewinds the trace to the beginning.
func (t *Trace) Reset() { t.pos = 0 }

// Load parses a trace from r. Malformed lines abort with a positional
// error.
func Load(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("trace line %d: want 3 fields, got %d", lineNo, len(fields))
		}
		gap, err := strconv.Atoi(fields[0])
		if err != nil || gap < 0 {
			return nil, fmt.Errorf("trace line %d: bad gap %q", lineNo, fields[0])
		}
		addr, err := strconv.ParseUint(fields[1], 16, 64)
		if err != nil {
			return nil, fmt.Errorf("trace line %d: bad address %q", lineNo, fields[1])
		}
		var write bool
		switch fields[2] {
		case "R", "r":
			write = false
		case "W", "w":
			write = true
		default:
			return nil, fmt.Errorf("trace line %d: bad op %q", lineNo, fields[2])
		}
		t.Gaps = append(t.Gaps, gap)
		t.Accs = append(t.Accs, Access{Addr: addr, Write: write})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(t.Accs) == 0 {
		return nil, fmt.Errorf("trace: no accesses")
	}
	return t, nil
}
