package workload

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestRecordLoadRoundTrip(t *testing.T) {
	gen := NewSynthetic(MustGet("450.soplex"), 0, 99)
	var buf bytes.Buffer
	if err := Record(&buf, gen, 500); err != nil {
		t.Fatal(err)
	}
	tr, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 500 {
		t.Fatalf("trace length = %d", tr.Len())
	}
	// Replay must match a fresh generator with the same seed.
	ref := NewSynthetic(MustGet("450.soplex"), 0, 99)
	for i := 0; i < 500; i++ {
		g1, a1 := ref.Next()
		g2, a2 := tr.Next()
		if g1 != g2 || a1 != a2 {
			t.Fatalf("replay diverged at %d: (%d %+v) vs (%d %+v)", i, g1, a1, g2, a2)
		}
	}
	// Wrap-around: next access equals the first.
	tr.Reset()
	_, first := tr.Next()
	for i := 1; i < 500; i++ {
		tr.Next()
	}
	_, wrapped := tr.Next()
	if first != wrapped {
		t.Fatal("wrap-around mismatch")
	}
}

func TestLoadCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n3 1f40 R\n  \n0 80 W\n"
	tr, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("len = %d", tr.Len())
	}
	g, a := tr.Next()
	if g != 3 || a.Addr != 0x1f40 || a.Write {
		t.Fatalf("first = %d %+v", g, a)
	}
	_, a2 := tr.Next()
	if !a2.Write || a2.Addr != 0x80 {
		t.Fatalf("second = %+v", a2)
	}
}

func TestLoadRejectsMalformed(t *testing.T) {
	bad := []string{
		"",               // empty
		"1 2\n",          // 2 fields
		"x 40 R\n",       // bad gap
		"-1 40 R\n",      // negative gap
		"1 zz R\n",       // bad hex
		"1 40 X\n",       // bad op
		"1 40 R extra\n", // 4 fields
	}
	for i, in := range bad {
		if _, err := Load(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted: %q", i, in)
		}
	}
}

func TestEmptyTracePanics(t *testing.T) {
	tr := &Trace{}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	tr.Next()
}

// Property: round-trip is lossless for arbitrary access streams.
func TestTraceRoundTripProperty(t *testing.T) {
	f := func(gaps []uint16, addrs []uint32, writes []bool) bool {
		n := len(gaps)
		if len(addrs) < n {
			n = len(addrs)
		}
		if len(writes) < n {
			n = len(writes)
		}
		if n == 0 {
			return true
		}
		src := &Trace{}
		for i := 0; i < n; i++ {
			src.Gaps = append(src.Gaps, int(gaps[i]))
			src.Accs = append(src.Accs, Access{Addr: uint64(addrs[i]), Write: writes[i]})
		}
		var buf bytes.Buffer
		if err := Record(&buf, src, n); err != nil {
			return false
		}
		got, err := Load(&buf)
		if err != nil || got.Len() != n {
			return false
		}
		for i := 0; i < n; i++ {
			if got.Gaps[i] != src.Gaps[i] || got.Accs[i] != src.Accs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
