// Package workload synthesizes per-thread instruction/memory-access
// streams standing in for the paper's trace-driven workloads (SPEC
// CPU2006 SimPoint slices, SPLASH-2, PARSEC, TPC-C/H).
//
// Each named benchmark is a Profile: a small set of statistical
// parameters — raw access rate, write fraction, cache-resident "hot"
// fraction, sequential-stream fraction and stream count, and total
// footprint — that reproduce the benchmark's qualitative memory
// behaviour (MAPKI class, row-buffer spatial locality, bank-level
// parallelism). The relative IPC/EDP effects the paper reports are
// driven by exactly these statistics, so a calibrated profile exercises
// the same architecture mechanisms as the original trace (see
// DESIGN.md's substitution table).
package workload

import (
	"fmt"
	"math/rand"
	"sort"
)

// Access is one memory operation of a thread's instruction stream.
type Access struct {
	Addr  uint64
	Write bool
}

// Generator produces the memory side of one thread's instruction
// stream: Next returns how many non-memory instructions precede the
// next access, then the access itself.
type Generator interface {
	Next() (gap int, acc Access)
}

// Profile parameterizes a synthetic benchmark.
type Profile struct {
	Name string
	// APKI is raw loads+stores per kilo-instruction (pre-cache).
	APKI float64
	// WriteFrac is the store fraction of memory accesses.
	WriteFrac float64
	// StackFrac of accesses go to a tiny StackBytes region modeling
	// stack/hot locals — L1-resident after warm-up.
	StackFrac  float64
	StackBytes uint64
	// HotFrac of accesses go to a HotBytes-sized region that fits the
	// L2 but not the L1.
	HotFrac  float64
	HotBytes uint64
	// StreamFrac of accesses continue one of Streams sequential walks
	// with StreamStride bytes between successive accesses. Streams
	// sets the workload's intrinsic bank-level parallelism.
	StreamFrac   float64
	Streams      int
	StreamStride uint64
	// Remaining accesses are uniform random lines in FootprintBytes.
	FootprintBytes uint64
	// SharedFrac of non-hot accesses target the process-shared region
	// (multithreaded workloads only; exercises the MESI directory).
	SharedFrac float64
	// DepFrac is the probability a load depends on the previous load
	// (pointer chasing); it throttles the core's memory-level
	// parallelism the way 429.mcf's dependent chains do.
	DepFrac float64
}

// Validate checks profile consistency.
func (p Profile) Validate() error {
	if p.APKI <= 0 || p.APKI > 1000 {
		return fmt.Errorf("workload %q: APKI %v out of (0,1000]", p.Name, p.APKI)
	}
	for _, f := range []float64{p.WriteFrac, p.StackFrac, p.HotFrac, p.StreamFrac, p.SharedFrac} {
		if f < 0 || f > 1 {
			return fmt.Errorf("workload %q: fraction %v out of [0,1]", p.Name, f)
		}
	}
	if p.StackFrac+p.HotFrac+p.StreamFrac > 1 {
		return fmt.Errorf("workload %q: stack+hot+stream fractions exceed 1", p.Name)
	}
	if p.DepFrac < 0 || p.DepFrac > 1 {
		return fmt.Errorf("workload %q: DepFrac %v out of [0,1]", p.Name, p.DepFrac)
	}
	if p.Streams <= 0 || p.StreamStride == 0 || p.FootprintBytes == 0 || p.HotBytes == 0 {
		return fmt.Errorf("workload %q: zero structural parameter", p.Name)
	}
	if p.StackFrac > 0 && p.StackBytes == 0 {
		return fmt.Errorf("workload %q: StackFrac without StackBytes", p.Name)
	}
	return nil
}

// Address-space layout: 64 GB capacity; each thread owns a 512 MB
// private slot; the last slot is the shared region.
const (
	threadSlotBytes = 512 << 20
	sharedBase      = uint64(63) * threadSlotBytes
	lineBytes       = 64
)

// Synthetic is the stochastic Generator for a Profile. Construct with
// NewSynthetic; all randomness derives from the explicit seed.
type Synthetic struct {
	p       Profile
	rng     *rand.Rand
	base    uint64
	streams []uint64 // current address per stream
	gapErr  float64  // fractional-gap accumulator
}

// NewSynthetic builds a generator for one thread of the profile.
func NewSynthetic(p Profile, thread int, seed int64) *Synthetic {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if thread < 0 || thread >= 63 {
		panic(fmt.Sprintf("workload: thread %d out of [0,63)", thread))
	}
	if p.FootprintBytes > threadSlotBytes {
		p.FootprintBytes = threadSlotBytes
	}
	if p.HotBytes > p.FootprintBytes {
		p.HotBytes = p.FootprintBytes
	}
	s := &Synthetic{
		p:    p,
		rng:  rand.New(rand.NewSource(seed ^ (int64(thread)+1)*0x9e3779b97f4a7c)),
		base: uint64(thread) * threadSlotBytes,
	}
	s.streams = make([]uint64, p.Streams)
	span := p.FootprintBytes / uint64(p.Streams)
	for i := range s.streams {
		// Spread streams across the footprint with a random intra-span
		// offset: exact power-of-two spacing would alias every stream
		// onto the same DRAM bank under row interleaving.
		jitter := span / 2
		if jitter > 8<<20 {
			jitter = 8 << 20
		}
		off := uint64(0)
		if jitter >= 64 {
			off = (s.rng.Uint64() % jitter) &^ 63
		}
		s.streams[i] = s.base + uint64(i)*span + off
	}
	return s
}

// Profile returns the generator's profile.
func (s *Synthetic) Profile() Profile { return s.p }

// Next implements Generator.
func (s *Synthetic) Next() (int, Access) {
	// Non-memory instructions between accesses: the access itself is
	// one instruction, so the mean gap is 1000/APKI - 1, jittered ±50%
	// to avoid lockstep artifacts across threads.
	mean := 1000.0/s.p.APKI - 1
	if mean < 0 {
		mean = 0
	}
	g := mean * (0.5 + s.rng.Float64())
	g += s.gapErr
	gap := int(g)
	s.gapErr = g - float64(gap)

	r := s.rng.Float64()
	var a uint64
	switch {
	case r < s.p.StackFrac:
		// Stack tier: L1-resident, line-aligned draw from a tiny region.
		a = (s.base + s.rng.Uint64()%s.p.StackBytes) &^ (lineBytes - 1)
	case r < s.p.StackFrac+s.p.HotFrac:
		// L2 tier, two-level: 90% of draws reuse the head eighth of the
		// region (strong temporal locality, warms quickly); 10% touch
		// the full tier. This keeps the steady-state cold-miss tail
		// small the way real working sets do.
		span := s.p.HotBytes
		if s.rng.Float64() < 0.9 {
			span = s.p.HotBytes / 8
			if span < lineBytes {
				span = lineBytes
			}
		}
		a = (s.base + s.rng.Uint64()%span) &^ (lineBytes - 1)
	case r < s.p.StackFrac+s.p.HotFrac+s.p.StreamFrac:
		i := s.rng.Intn(len(s.streams))
		a = s.streams[i]
		span := s.p.FootprintBytes / uint64(len(s.streams))
		next := s.streams[i] + s.p.StreamStride
		lo := s.base + uint64(i)*span
		if next >= lo+span {
			next = lo
		}
		s.streams[i] = next
	default:
		a = (s.base + s.rng.Uint64()%s.p.FootprintBytes) &^ (lineBytes - 1)
	}
	// Redirect a slice of non-local traffic to the shared region.
	if s.p.SharedFrac > 0 && r >= s.p.StackFrac+s.p.HotFrac && s.rng.Float64() < s.p.SharedFrac {
		a = sharedBase + a%s.p.HotBytes
	}
	return gap, Access{Addr: a, Write: s.rng.Float64() < s.p.WriteFrac}
}

// Fixed replays an explicit access list with a constant gap — used in
// tests and micro-experiments.
type Fixed struct {
	Gap  int
	Accs []Access
	pos  int
}

// Next implements Generator; it wraps around at the end of the list.
func (f *Fixed) Next() (int, Access) {
	if len(f.Accs) == 0 {
		panic("workload: empty Fixed trace")
	}
	a := f.Accs[f.pos]
	f.pos = (f.pos + 1) % len(f.Accs)
	return f.Gap, a
}

// MAPKIClass is the paper's Table II grouping.
type MAPKIClass int

// Table II classes.
const (
	SpecHigh MAPKIClass = iota
	SpecMed
	SpecLow
)

// String names the class as in Table II.
func (c MAPKIClass) String() string {
	switch c {
	case SpecHigh:
		return "spec-high"
	case SpecMed:
		return "spec-med"
	case SpecLow:
		return "spec-low"
	default:
		return fmt.Sprintf("MAPKIClass(%d)", int(c))
	}
}

const (
	kb = uint64(1) << 10
	mb = uint64(1) << 20
)

// profiles is the named benchmark table. The parameters encode each
// benchmark's published memory character: 429.mcf is pointer-chasing
// with very low spatial locality; canneal has high spatial locality;
// TPC-H runs many concurrent scan streams (nB-hungry); RADIX streams
// write-heavily with high row locality; spec-low is cache-resident.
var profiles = map[string]Profile{
	// SPEC CPU2006, spec-high group (Table II). Main-memory MAPKI
	// targets ~25-50 (mcf highest, lowest spatial locality).
	"429.mcf": {
		Name: "429.mcf", APKI: 350, WriteFrac: 0.25,
		StackFrac: 0.55, StackBytes: 4 * kb,
		HotFrac: 0.30, HotBytes: 256 * kb,
		StreamFrac: 0.03, Streams: 2, StreamStride: 64,
		FootprintBytes: 256 * mb, DepFrac: 0.50,
	},
	"433.milc": {
		Name: "433.milc", APKI: 300, WriteFrac: 0.30,
		StackFrac: 0.45, StackBytes: 4 * kb,
		HotFrac: 0.15, HotBytes: 256 * kb,
		StreamFrac: 0.36, Streams: 4, StreamStride: 8,
		FootprintBytes: 192 * mb, DepFrac: 0.15,
	},
	"437.leslie3d": {
		Name: "437.leslie3d", APKI: 320, WriteFrac: 0.30,
		StackFrac: 0.45, StackBytes: 4 * kb,
		HotFrac: 0.17, HotBytes: 256 * kb,
		StreamFrac: 0.35, Streams: 6, StreamStride: 8,
		FootprintBytes: 128 * mb, DepFrac: 0.12,
	},
	"450.soplex": {
		Name: "450.soplex", APKI: 300, WriteFrac: 0.20,
		StackFrac: 0.45, StackBytes: 4 * kb,
		HotFrac: 0.22, HotBytes: 256 * kb,
		StreamFrac: 0.28, Streams: 3, StreamStride: 8,
		FootprintBytes: 192 * mb, DepFrac: 0.30,
	},
	"459.GemsFDTD": {
		Name: "459.GemsFDTD", APKI: 310, WriteFrac: 0.30,
		StackFrac: 0.42, StackBytes: 4 * kb,
		HotFrac: 0.15, HotBytes: 256 * kb,
		StreamFrac: 0.40, Streams: 6, StreamStride: 8,
		FootprintBytes: 256 * mb, DepFrac: 0.12,
	},
	"462.libquantum": {
		Name: "462.libquantum", APKI: 280, WriteFrac: 0.25,
		StackFrac: 0.40, StackBytes: 4 * kb,
		HotFrac: 0.05, HotBytes: 128 * kb,
		StreamFrac: 0.53, Streams: 2, StreamStride: 8,
		FootprintBytes: 64 * mb, DepFrac: 0.08,
	},
	"470.lbm": {
		Name: "470.lbm", APKI: 330, WriteFrac: 0.40,
		StackFrac: 0.40, StackBytes: 4 * kb,
		HotFrac: 0.07, HotBytes: 256 * kb,
		StreamFrac: 0.48, Streams: 8, StreamStride: 8,
		FootprintBytes: 384 * mb, DepFrac: 0.08,
	},
	"471.omnetpp": {
		Name: "471.omnetpp", APKI: 330, WriteFrac: 0.30,
		StackFrac: 0.50, StackBytes: 4 * kb,
		HotFrac: 0.35, HotBytes: 256 * kb,
		StreamFrac: 0.05, Streams: 2, StreamStride: 64,
		FootprintBytes: 160 * mb, DepFrac: 0.45,
	},
	"482.sphinx3": {
		Name: "482.sphinx3", APKI: 290, WriteFrac: 0.15,
		StackFrac: 0.47, StackBytes: 4 * kb,
		HotFrac: 0.20, HotBytes: 256 * kb,
		StreamFrac: 0.28, Streams: 4, StreamStride: 8,
		FootprintBytes: 128 * mb, DepFrac: 0.20,
	},

	// spec-med representatives (MAPKI ~4-9).
	"403.gcc": {
		Name: "403.gcc", APKI: 280, WriteFrac: 0.30,
		StackFrac: 0.60, StackBytes: 8 * kb,
		HotFrac: 0.36, HotBytes: 256 * kb,
		StreamFrac: 0.02, Streams: 2, StreamStride: 8,
		FootprintBytes: 64 * mb, DepFrac: 0.35,
	},
	"434.zeusmp": {
		Name: "434.zeusmp", APKI: 300, WriteFrac: 0.30,
		StackFrac: 0.55, StackBytes: 8 * kb,
		HotFrac: 0.38, HotBytes: 256 * kb,
		StreamFrac: 0.05, Streams: 4, StreamStride: 8,
		FootprintBytes: 96 * mb, DepFrac: 0.15,
	},
	"473.astar": {
		Name: "473.astar", APKI: 310, WriteFrac: 0.25,
		StackFrac: 0.60, StackBytes: 8 * kb,
		HotFrac: 0.37, HotBytes: 256 * kb,
		StreamFrac: 0.01, Streams: 2, StreamStride: 64,
		FootprintBytes: 64 * mb, DepFrac: 0.50,
	},

	// spec-low representatives (cache resident, MAPKI < 1).
	"400.perlbench": {
		Name: "400.perlbench", APKI: 300, WriteFrac: 0.35,
		StackFrac: 0.70, StackBytes: 8 * kb,
		HotFrac: 0.297, HotBytes: 128 * kb,
		StreamFrac: 0.002, Streams: 1, StreamStride: 64,
		FootprintBytes: 16 * mb, DepFrac: 0.35,
	},
	"444.namd": {
		Name: "444.namd", APKI: 250, WriteFrac: 0.25,
		StackFrac: 0.70, StackBytes: 8 * kb,
		HotFrac: 0.296, HotBytes: 96 * kb,
		StreamFrac: 0.003, Streams: 2, StreamStride: 8,
		FootprintBytes: 16 * mb, DepFrac: 0.20,
	},
	"453.povray": {
		Name: "453.povray", APKI: 260, WriteFrac: 0.30,
		StackFrac: 0.72, StackBytes: 8 * kb,
		HotFrac: 0.2790, HotBytes: 64 * kb,
		StreamFrac: 0.0005, Streams: 1, StreamStride: 64,
		FootprintBytes: 8 * mb, DepFrac: 0.25,
	},

	"410.bwaves": {
		Name: "410.bwaves", APKI: 310, WriteFrac: 0.25,
		StackFrac: 0.50, StackBytes: 8 * kb,
		HotFrac: 0.38, HotBytes: 384 * kb,
		StreamFrac: 0.09, Streams: 6, StreamStride: 8,
		FootprintBytes: 128 * mb, DepFrac: 0.10,
	},
	"436.cactusADM": {
		Name: "436.cactusADM", APKI: 320, WriteFrac: 0.35,
		StackFrac: 0.52, StackBytes: 8 * kb,
		HotFrac: 0.38, HotBytes: 384 * kb,
		StreamFrac: 0.07, Streams: 4, StreamStride: 8,
		FootprintBytes: 96 * mb, DepFrac: 0.12,
	},
	"458.sjeng": {
		Name: "458.sjeng", APKI: 260, WriteFrac: 0.25,
		StackFrac: 0.62, StackBytes: 8 * kb,
		HotFrac: 0.355, HotBytes: 256 * kb,
		StreamFrac: 0.005, Streams: 1, StreamStride: 64,
		FootprintBytes: 96 * mb, DepFrac: 0.45,
	},
	"464.h264ref": {
		Name: "464.h264ref", APKI: 300, WriteFrac: 0.30,
		StackFrac: 0.58, StackBytes: 8 * kb,
		HotFrac: 0.38, HotBytes: 320 * kb,
		StreamFrac: 0.025, Streams: 2, StreamStride: 8,
		FootprintBytes: 48 * mb, DepFrac: 0.25,
	},
	"465.tonto": {
		Name: "465.tonto", APKI: 280, WriteFrac: 0.30,
		StackFrac: 0.60, StackBytes: 8 * kb,
		HotFrac: 0.375, HotBytes: 256 * kb,
		StreamFrac: 0.015, Streams: 2, StreamStride: 8,
		FootprintBytes: 48 * mb, DepFrac: 0.25,
	},
	"481.wrf": {
		Name: "481.wrf", APKI: 300, WriteFrac: 0.30,
		StackFrac: 0.55, StackBytes: 8 * kb,
		HotFrac: 0.38, HotBytes: 384 * kb,
		StreamFrac: 0.05, Streams: 4, StreamStride: 8,
		FootprintBytes: 96 * mb, DepFrac: 0.15,
	},
	"483.xalancbmk": {
		Name: "483.xalancbmk", APKI: 320, WriteFrac: 0.30,
		StackFrac: 0.58, StackBytes: 8 * kb,
		HotFrac: 0.385, HotBytes: 320 * kb,
		StreamFrac: 0.005, Streams: 1, StreamStride: 64,
		FootprintBytes: 64 * mb, DepFrac: 0.55,
	},

	// Remaining spec-low members (cache resident, MAPKI < 2).
	"401.bzip2": {
		Name: "401.bzip2", APKI: 290, WriteFrac: 0.35,
		StackFrac: 0.68, StackBytes: 8 * kb,
		HotFrac: 0.315, HotBytes: 192 * kb,
		StreamFrac: 0.003, Streams: 1, StreamStride: 8,
		FootprintBytes: 32 * mb, DepFrac: 0.25,
	},
	"416.gamess": {
		Name: "416.gamess", APKI: 270, WriteFrac: 0.30,
		StackFrac: 0.72, StackBytes: 8 * kb,
		HotFrac: 0.279, HotBytes: 96 * kb,
		StreamFrac: 0.0005, Streams: 1, StreamStride: 64,
		FootprintBytes: 8 * mb, DepFrac: 0.25,
	},
	"435.gromacs": {
		Name: "435.gromacs", APKI: 270, WriteFrac: 0.28,
		StackFrac: 0.70, StackBytes: 8 * kb,
		HotFrac: 0.297, HotBytes: 128 * kb,
		StreamFrac: 0.002, Streams: 2, StreamStride: 8,
		FootprintBytes: 16 * mb, DepFrac: 0.20,
	},
	"445.gobmk": {
		Name: "445.gobmk", APKI: 270, WriteFrac: 0.30,
		StackFrac: 0.70, StackBytes: 8 * kb,
		HotFrac: 0.297, HotBytes: 160 * kb,
		StreamFrac: 0.002, Streams: 1, StreamStride: 64,
		FootprintBytes: 16 * mb, DepFrac: 0.40,
	},
	"447.dealII": {
		Name: "447.dealII", APKI: 290, WriteFrac: 0.30,
		StackFrac: 0.70, StackBytes: 8 * kb,
		HotFrac: 0.297, HotBytes: 160 * kb,
		StreamFrac: 0.002, Streams: 2, StreamStride: 8,
		FootprintBytes: 16 * mb, DepFrac: 0.30,
	},
	"454.calculix": {
		Name: "454.calculix", APKI: 280, WriteFrac: 0.30,
		StackFrac: 0.71, StackBytes: 8 * kb,
		HotFrac: 0.287, HotBytes: 128 * kb,
		StreamFrac: 0.002, Streams: 2, StreamStride: 8,
		FootprintBytes: 16 * mb, DepFrac: 0.20,
	},
	"456.hmmer": {
		Name: "456.hmmer", APKI: 300, WriteFrac: 0.35,
		StackFrac: 0.70, StackBytes: 8 * kb,
		HotFrac: 0.298, HotBytes: 96 * kb,
		StreamFrac: 0.001, Streams: 1, StreamStride: 8,
		FootprintBytes: 8 * mb, DepFrac: 0.15,
	},

	// Multithreaded workloads.
	"canneal": { // PARSEC: high spatial locality (§VI-C)
		Name: "canneal", APKI: 300, WriteFrac: 0.20,
		StackFrac: 0.45, StackBytes: 4 * kb,
		HotFrac: 0.11, HotBytes: 256 * kb,
		StreamFrac: 0.42, Streams: 2, StreamStride: 8,
		FootprintBytes: 256 * mb, SharedFrac: 0.05, DepFrac: 0.30,
	},
	"RADIX": { // SPLASH-2: high MAPKI and row-hit rates (§VI-B)
		Name: "RADIX", APKI: 340, WriteFrac: 0.45,
		StackFrac: 0.35, StackBytes: 4 * kb,
		HotFrac: 0.08, HotBytes: 256 * kb,
		StreamFrac: 0.52, Streams: 8, StreamStride: 8,
		FootprintBytes: 256 * mb, SharedFrac: 0.04, DepFrac: 0.06,
	},
	"FFT": { // SPLASH-2: strided transpose phases
		Name: "FFT", APKI: 300, WriteFrac: 0.35,
		StackFrac: 0.55, StackBytes: 4 * kb,
		HotFrac: 0.33, HotBytes: 256 * kb,
		StreamFrac: 0.10, Streams: 6, StreamStride: 128,
		FootprintBytes: 192 * mb, SharedFrac: 0.04, DepFrac: 0.10,
	},

	// Database workloads (PostgreSQL TPC-C/H in the paper).
	"TPC-C": {
		Name: "TPC-C", APKI: 320, WriteFrac: 0.35,
		StackFrac: 0.50, StackBytes: 8 * kb,
		HotFrac: 0.26, HotBytes: 2 * mb,
		StreamFrac: 0.18, Streams: 12, StreamStride: 8,
		FootprintBytes: 384 * mb, SharedFrac: 0.06, DepFrac: 0.30,
	},
	"TPC-H": { // scan/join heavy: many concurrent streams, nB-hungry
		Name: "TPC-H", APKI: 330, WriteFrac: 0.15,
		StackFrac: 0.44, StackBytes: 8 * kb,
		HotFrac: 0.14, HotBytes: 256 * kb,
		StreamFrac: 0.40, Streams: 24, StreamStride: 8,
		FootprintBytes: 448 * mb, SharedFrac: 0.04, DepFrac: 0.15,
	},
}

// Get returns the named profile.
func Get(name string) (Profile, error) {
	p, ok := profiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return p, nil
}

// MustGet is Get that panics on unknown names.
func MustGet(name string) Profile {
	p, err := Get(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Names returns all defined benchmark names, sorted.
func Names() []string {
	out := make([]string, 0, len(profiles))
	for n := range profiles {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Table II membership (§VI-A): the paper's full 29-application table,
// every member backed by a calibrated profile.
var groups = map[MAPKIClass][]string{
	SpecHigh: {"429.mcf", "433.milc", "437.leslie3d", "450.soplex", "459.GemsFDTD", "462.libquantum", "470.lbm", "471.omnetpp", "482.sphinx3"},
	SpecMed:  {"403.gcc", "410.bwaves", "434.zeusmp", "436.cactusADM", "458.sjeng", "464.h264ref", "465.tonto", "473.astar", "481.wrf", "483.xalancbmk"},
	SpecLow:  {"400.perlbench", "401.bzip2", "416.gamess", "435.gromacs", "444.namd", "445.gobmk", "447.dealII", "453.povray", "454.calculix", "456.hmmer"},
}

// Group returns the modeled benchmark names of a Table II class.
func Group(c MAPKIClass) []string {
	return append([]string(nil), groups[c]...)
}

// SpecAll returns every modeled single-threaded SPEC benchmark.
func SpecAll() []string {
	var out []string
	for _, c := range []MAPKIClass{SpecHigh, SpecMed, SpecLow} {
		out = append(out, groups[c]...)
	}
	return out
}

// Mix describes a multiprogrammed mixture: benchmark names are assigned
// round-robin to cores.
type Mix struct {
	Name    string
	Members []string
}

// MixHigh is the paper's mix-high (spec-high applications).
func MixHigh() Mix { return Mix{Name: "mix-high", Members: Group(SpecHigh)} }

// MixBlend is the paper's mix-blend (all three groups).
func MixBlend() Mix { return Mix{Name: "mix-blend", Members: SpecAll()} }

// ForCore returns the profile the mix assigns to a core index.
func (m Mix) ForCore(core int) Profile {
	return MustGet(m.Members[core%len(m.Members)])
}
