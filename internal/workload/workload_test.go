package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAllProfilesValid(t *testing.T) {
	for _, name := range Names() {
		p := MustGet(name)
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if p.Name != name {
			t.Errorf("profile %q has Name %q", name, p.Name)
		}
	}
	if len(Names()) < 15 {
		t.Fatalf("only %d profiles defined", len(Names()))
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("no-such-benchmark"); err == nil {
		t.Fatal("unknown name accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet did not panic")
		}
	}()
	MustGet("no-such-benchmark")
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	base := MustGet("429.mcf")
	mut := func(f func(*Profile)) Profile { p := base; f(&p); return p }
	bad := []Profile{
		mut(func(p *Profile) { p.APKI = 0 }),
		mut(func(p *Profile) { p.APKI = 2000 }),
		mut(func(p *Profile) { p.WriteFrac = 1.5 }),
		mut(func(p *Profile) { p.HotFrac = 0.8; p.StreamFrac = 0.4 }),
		mut(func(p *Profile) { p.Streams = 0 }),
		mut(func(p *Profile) { p.FootprintBytes = 0 }),
		mut(func(p *Profile) { p.StreamStride = 0 }),
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	p := MustGet("429.mcf")
	a := NewSynthetic(p, 0, 42)
	b := NewSynthetic(p, 0, 42)
	for i := 0; i < 1000; i++ {
		ga, aa := a.Next()
		gb, ab := b.Next()
		if ga != gb || aa != ab {
			t.Fatalf("divergence at %d: (%d,%+v) vs (%d,%+v)", i, ga, aa, gb, ab)
		}
	}
	c := NewSynthetic(p, 0, 43)
	same := 0
	for i := 0; i < 100; i++ {
		_, aa := a.Next()
		_, ac := c.Next()
		if aa == ac {
			same++
		}
	}
	if same > 50 {
		t.Fatal("different seeds produce near-identical streams")
	}
}

func TestSyntheticAddressesLineAlignedAndInSlot(t *testing.T) {
	for _, name := range []string{"429.mcf", "TPC-H", "RADIX"} {
		p := MustGet(name)
		for _, thread := range []int{0, 5, 62} {
			g := NewSynthetic(p, thread, 7)
			lo := uint64(thread) * threadSlotBytes
			hi := lo + threadSlotBytes
			for i := 0; i < 2000; i++ {
				_, a := g.Next()
				inPrivate := a.Addr >= lo && a.Addr < hi
				inShared := a.Addr >= sharedBase && a.Addr < sharedBase+threadSlotBytes
				if !inPrivate && !inShared {
					t.Fatalf("%s thread %d: address %#x outside slot and shared region", name, thread, a.Addr)
				}
			}
		}
	}
}

func TestSyntheticGapMatchesAPKI(t *testing.T) {
	p := MustGet("450.soplex")
	g := NewSynthetic(p, 0, 1)
	totalGap, n := 0, 20000
	for i := 0; i < n; i++ {
		gap, _ := g.Next()
		totalGap += gap + 1 // +1 for the access itself
	}
	gotAPKI := float64(n) / float64(totalGap) * 1000
	if math.Abs(gotAPKI-p.APKI)/p.APKI > 0.1 {
		t.Fatalf("measured APKI %v, profile %v", gotAPKI, p.APKI)
	}
}

func TestWriteFractionRealized(t *testing.T) {
	p := MustGet("470.lbm")
	g := NewSynthetic(p, 0, 3)
	writes, n := 0, 20000
	for i := 0; i < n; i++ {
		_, a := g.Next()
		if a.Write {
			writes++
		}
	}
	got := float64(writes) / float64(n)
	if math.Abs(got-p.WriteFrac) > 0.03 {
		t.Fatalf("write fraction %v, want ~%v", got, p.WriteFrac)
	}
}

// consecutiveFrac is a spatial-locality proxy: the fraction of accesses
// landing within one cache line of the previous access to the same
// region class (streams advance by small strides; pointer chasers jump).
func consecutiveFrac(name string, n int) float64 {
	g := NewSynthetic(MustGet(name), 0, 11)
	seen := map[uint64]bool{}
	local := 0
	for i := 0; i < n; i++ {
		_, a := g.Next()
		line := a.Addr &^ 63
		if seen[line] || seen[line-64] {
			local++
		}
		seen[line] = true
	}
	return float64(local) / float64(n)
}

func TestSpatialLocalityOrdering(t *testing.T) {
	mcf := consecutiveFrac("429.mcf", 20000)
	canneal := consecutiveFrac("canneal", 20000)
	if canneal <= mcf {
		t.Fatalf("canneal locality (%v) must exceed mcf (%v) per §VI-C", canneal, mcf)
	}
}

func TestHotFractionKeepsFootprintSmall(t *testing.T) {
	// spec-low profiles should touch few distinct lines.
	seen := func(name string, n int) int {
		g := NewSynthetic(MustGet(name), 0, 13)
		lines := map[uint64]bool{}
		for i := 0; i < n; i++ {
			_, a := g.Next()
			lines[a.Addr] = true
		}
		return len(lines)
	}
	// Enough samples to saturate the hot set: spec-low's distinct-line
	// count is bounded by its hot region, spec-high's keeps growing.
	low := seen("453.povray", 50000)
	high := seen("429.mcf", 50000)
	if low*2 > high {
		t.Fatalf("spec-low touches %d lines vs spec-high %d; want much smaller", low, high)
	}
}

func TestFixedGenerator(t *testing.T) {
	f := &Fixed{Gap: 3, Accs: []Access{{Addr: 0}, {Addr: 64, Write: true}}}
	g1, a1 := f.Next()
	_, a2 := f.Next()
	_, a3 := f.Next()
	if g1 != 3 || a1.Addr != 0 || a2.Addr != 64 || !a2.Write || a3.Addr != 0 {
		t.Fatalf("fixed trace wrong: %v %v %v", a1, a2, a3)
	}
	empty := &Fixed{}
	defer func() {
		if recover() == nil {
			t.Fatal("empty Fixed did not panic")
		}
	}()
	empty.Next()
}

func TestGroupsAndMixes(t *testing.T) {
	if len(Group(SpecHigh)) != 9 {
		t.Fatalf("spec-high has %d members", len(Group(SpecHigh)))
	}
	for _, c := range []MAPKIClass{SpecHigh, SpecMed, SpecLow} {
		for _, n := range Group(c) {
			if _, err := Get(n); err != nil {
				t.Errorf("group %v member %s: %v", c, n, err)
			}
		}
		if c.String() == "" {
			t.Error("empty class name")
		}
	}
	if MAPKIClass(9).String() != "MAPKIClass(9)" {
		t.Error("unknown class string")
	}
	mh := MixHigh()
	if mh.Name != "mix-high" || len(mh.Members) != 9 {
		t.Fatalf("mix-high = %+v", mh)
	}
	mb := MixBlend()
	if len(mb.Members) != len(SpecAll()) {
		t.Fatal("mix-blend missing members")
	}
	// Round-robin assignment covers all members.
	seen := map[string]bool{}
	for core := 0; core < 64; core++ {
		seen[mh.ForCore(core).Name] = true
	}
	if len(seen) != 9 {
		t.Fatalf("mix assignment covered %d members", len(seen))
	}
}

func TestThreadRangePanics(t *testing.T) {
	p := MustGet("429.mcf")
	for _, th := range []int{-1, 63, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("thread %d accepted", th)
				}
			}()
			NewSynthetic(p, th, 1)
		}()
	}
}

// Property: for any profile and seed, gaps are nonnegative and bounded,
// and addresses never collide across distinct private threads.
func TestGeneratorSanityProperty(t *testing.T) {
	names := Names()
	f := func(seed int64, pi uint8, t1Raw, t2Raw uint8) bool {
		p := MustGet(names[int(pi)%len(names)])
		t1 := int(t1Raw) % 62
		t2 := t1 + 1
		g1 := NewSynthetic(p, t1, seed)
		g2 := NewSynthetic(p, t2, seed)
		for i := 0; i < 200; i++ {
			gap, a1 := g1.Next()
			_, a2 := g2.Next()
			if gap < 0 || gap > 100000 {
				return false
			}
			// Private regions must not overlap (shared region excluded).
			if a1.Addr < sharedBase && a2.Addr < sharedBase {
				if a1.Addr/threadSlotBytes == a2.Addr/threadSlotBytes {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
