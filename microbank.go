// Package microbank is a simulation library reproducing "Microbank:
// Architecting Through-Silicon Interposer-Based Main Memory Systems"
// (Son et al., SC 2014).
//
// The paper proposes μbank: partitioning every DRAM bank nW ways along
// wordlines and nB ways along bitlines into independently operating
// micro-banks, each with its own row buffer. On a TSI-based memory
// system this simultaneously multiplies bank-level parallelism and
// divides activate/precharge energy, and it makes simple open-page
// policies competitive with prediction-based page management.
//
// This package is the public facade over the full simulation stack:
//
//   - Config* re-export the DRAM/system configuration presets
//     (Table I timing/energy, DDR3-PCB / DDR3-TSI / LPDDR-TSI).
//   - Workload* expose the synthetic benchmark models standing in for
//     SPEC CPU2006 / SPLASH-2 / PARSEC / TPC workloads.
//   - Run executes a full-system simulation (cores, caches, MESI
//     directory, NoC, memory controllers, DRAM) and returns IPC,
//     power breakdown, and row-buffer/predictor statistics.
//   - RelativeArea / EnergyPerRead expose the analytic μbank die
//     area and energy model (Fig. 6).
//   - Experiment helpers regenerate every table and figure of the
//     paper's evaluation; see the experiments aliases below and
//     cmd/microbank for the command-line driver.
//
// Quick start:
//
//	mem := microbank.MemPreset(microbank.LPDDRTSI, 2, 8) // (nW,nB)=(2,8)
//	sys := microbank.SingleCore(mem)
//	spec := microbank.UniformSpec(sys, microbank.Workload("429.mcf"), 200_000, 42)
//	spec.WarmupInstr = 100_000
//	res, err := microbank.Run(spec)
//	if err != nil { ... }
//	fmt.Println(res.IPC, res.RowHitRate, res.Breakdown.EDPJs())
package microbank

import (
	"microbank/internal/config"
	"microbank/internal/dramarea"
	"microbank/internal/experiments"
	"microbank/internal/system"
	"microbank/internal/workload"
)

// Interface identifies a processor-memory interface technology.
type Interface = config.Interface

// Processor-memory interfaces (§III, §VI-D).
const (
	DDR3PCB   = config.DDR3PCB
	DDR3TSI   = config.DDR3TSI
	LPDDRTSI  = config.LPDDRTSI
	HMCSerial = config.HMCSerial
)

// PagePolicy selects the controller's page-management scheme (§V).
type PagePolicy = config.PagePolicy

// Page-management policies.
const (
	OpenPage       = config.OpenPage
	ClosePage      = config.ClosePage
	MinimalistOpen = config.MinimalistOpen
	PredLocal      = config.PredLocal
	PredGlobal     = config.PredGlobal
	PredTournament = config.PredTournament
	PredPerfect    = config.PredPerfect
)

// Configuration types.
type (
	// MemConfig describes one main-memory configuration (organization,
	// timing, energy).
	MemConfig = config.Mem
	// SystemConfig describes the whole simulated machine.
	SystemConfig = config.System
	// Profile parameterizes a synthetic workload.
	Profile = workload.Profile
	// Spec describes one simulation run.
	Spec = system.Spec
	// Result carries a run's metrics.
	Result = system.Result
	// ExperimentOptions tunes the figure-regeneration harnesses.
	ExperimentOptions = experiments.Options
	// Grid holds a figure's (nW,nB)-grid data.
	Grid = experiments.GridData
)

// MemPreset returns the paper's memory configuration for an interface
// with (nW, nB) μbank partitioning.
func MemPreset(iface Interface, nW, nB int) MemConfig { return config.MemPreset(iface, nW, nB) }

// DefaultSystem returns the paper's 64-core CMP over the given memory.
func DefaultSystem(mem MemConfig) SystemConfig { return config.DefaultSystem(mem) }

// SingleCore returns the single-core, single-controller system used
// for single-threaded workloads (§VI-A).
func SingleCore(mem MemConfig) SystemConfig { return config.SingleCore(mem) }

// Workload returns a named benchmark profile (see WorkloadNames).
// It panics on unknown names; use workload.Get for error handling.
func Workload(name string) Profile { return workload.MustGet(name) }

// WorkloadNames lists all modeled benchmarks.
func WorkloadNames() []string { return workload.Names() }

// UniformSpec builds a run of the same profile on every core.
func UniformSpec(sys SystemConfig, prof Profile, instrPerCore uint64, seed int64) Spec {
	return system.UniformSpec(sys, prof, instrPerCore, seed)
}

// Run simulates a Spec to completion.
func Run(spec Spec) (Result, error) { return system.Run(spec) }

// RelativeArea returns the DRAM die area of an (nW, nB) configuration
// relative to the unpartitioned baseline (Fig. 6a).
func RelativeArea(nW, nB int) float64 { return dramarea.RelativeArea(nW, nB) }

// EnergyPerRead returns the absolute energy (pJ) of one 64 B read for
// an (nW, nB) configuration at activate ratio beta, using the paper's
// LPDDR-TSI Table I parameters (Fig. 6b).
func EnergyPerRead(nW, nB int, beta float64) float64 {
	return dramarea.DefaultEnergyParams().EnergyPerReadPJ(nW, nB, beta)
}

// Experiment entry points (each regenerates one paper table/figure).
var (
	Fig1        = experiments.Fig1
	Table1      = experiments.Table1
	Table2      = experiments.Table2
	Fig6a       = experiments.Fig6a
	Fig6b       = experiments.Fig6b
	Fig8        = experiments.Fig8
	Fig9        = experiments.Fig9
	Fig8And9    = experiments.Fig8And9
	Fig10       = experiments.Fig10
	Fig11       = experiments.Fig11
	Fig12       = experiments.Fig12
	Fig13       = experiments.Fig13
	Fig14       = experiments.Fig14
	Headline    = experiments.Headline
	Ablations   = experiments.Ablations
	RelatedWork = experiments.RelatedWork
)
