package microbank_test

import (
	"testing"

	"microbank"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	mem := microbank.MemPreset(microbank.LPDDRTSI, 2, 8)
	if mem.Org.MicrobanksPerBank() != 16 {
		t.Fatalf("μbanks per bank = %d", mem.Org.MicrobanksPerBank())
	}
	sys := microbank.SingleCore(mem)
	sys.Ctrl.PagePolicy = microbank.OpenPage
	spec := microbank.UniformSpec(sys, microbank.Workload("429.mcf"), 20000, 42)
	spec.WarmupInstr = 5000
	res, err := microbank.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 || res.IPC > 2 {
		t.Fatalf("IPC = %v", res.IPC)
	}
	if res.Breakdown.EDPJs() <= 0 {
		t.Fatal("no EDP")
	}
}

func TestPublicAPIModels(t *testing.T) {
	if microbank.RelativeArea(1, 1) != 1.0 {
		t.Fatal("area baseline")
	}
	if microbank.RelativeArea(16, 16) <= 1.2 {
		t.Fatal("area (16,16)")
	}
	e1 := microbank.EnergyPerRead(1, 1, 1.0)
	e16 := microbank.EnergyPerRead(16, 1, 1.0)
	if e16 >= e1 {
		t.Fatalf("energy did not fall with nW: %v vs %v", e16, e1)
	}
	if len(microbank.WorkloadNames()) < 15 {
		t.Fatal("workload table")
	}
	if microbank.Table1().NumRows() == 0 || microbank.Fig11().NumRows() == 0 {
		t.Fatal("analytic experiments broken")
	}
	if microbank.Fig6a().At(1, 1) != 1.0 {
		t.Fatal("Fig6a via facade")
	}
}
