#!/usr/bin/env sh
# Durability smoke for the content-addressed result store: prove that a
# campaign killed with SIGKILL mid-sweep resumes from the store to a
# byte-identical report, that a SIGINT/SIGTERM interrupt checkpoints and
# flushes valid aborted artifacts, and that flipped bytes in a committed
# entry are quarantined and re-simulated instead of crashing the run or
# poisoning the result. Run via `make crash-smoke`.
set -eu

OUT="$(mktemp -d)"
PID=""
trap 'kill -9 "$PID" 2>/dev/null || true; rm -rf "$OUT"' EXIT INT TERM

# One flag set for every run: the report embeds parallelism, so -j must
# not vary between the runs being byte-compared.
EXP=fig8
FLAGS="-exp $EXP -quick -instr 20000 -j 2"

go build -o "$OUT/microbank" ./cmd/microbank
run() { "$OUT/microbank" $FLAGS "$@"; }
entries() { ls "$1"/*.res 2>/dev/null | wc -l | tr -d ' '; }

# --- Phase 1: store on/off byte-identity + cross-run sharing ----------
run -report "$OUT/ref.json" >/dev/null
run -store "$OUT/store1" -report "$OUT/first.json" >/dev/null 2>"$OUT/first.err"
cmp "$OUT/ref.json" "$OUT/first.json" || {
    echo "crash smoke: store-backed report differs from plain run" >&2; exit 1; }
TOTAL="$(entries "$OUT/store1")"
[ "$TOTAL" -gt 0 ] || { echo "crash smoke: store committed no entries" >&2; exit 1; }

run -store "$OUT/store1" -report "$OUT/replay.json" >/dev/null 2>"$OUT/replay.err"
cmp "$OUT/ref.json" "$OUT/replay.json" || {
    echo "crash smoke: replayed report differs from plain run" >&2; exit 1; }
grep -q 'store: .* 0 miss(es), 0 new' "$OUT/replay.err" || {
    echo "crash smoke: replay run still simulated cells:" >&2
    cat "$OUT/replay.err" >&2; exit 1; }
echo "crash smoke: phase 1 ok ($TOTAL entries, store on/off byte-identical, full replay)"

# --- Phase 2: SIGKILL mid-campaign, resume byte-identically -----------
# Retry if the run ever outpaces the kill (a faster machine); the kill
# must land while the store is still partial for the phase to prove
# anything.
attempt=1
while :; do
    rm -rf "$OUT/store2"
    # Background the binary directly (not via the run() function): $!
    # must be the simulator's own PID for the signals to land on it.
    "$OUT/microbank" $FLAGS -store "$OUT/store2" -report "$OUT/crash.json" \
        >"$OUT/crash.out" 2>"$OUT/crash.err" &
    PID=$!
    i=0
    while [ "$(entries "$OUT/store2")" -lt 5 ] && kill -0 "$PID" 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -ge 600 ]; then
            echo "crash smoke: crash run never committed 5 entries" >&2
            cat "$OUT/crash.err" >&2; exit 1
        fi
        sleep 0.05
    done
    kill -9 "$PID" 2>/dev/null || true
    wait "$PID" 2>/dev/null || true
    PID=""
    GOT="$(entries "$OUT/store2")"
    if [ "$GOT" -lt "$TOTAL" ]; then
        break
    fi
    if [ "$attempt" -ge 3 ]; then
        echo "crash smoke: run completed before SIGKILL on every attempt" >&2
        exit 1
    fi
    attempt=$((attempt + 1))
done

run -store "$OUT/store2" -resume -report "$OUT/resume.json" \
    >/dev/null 2>"$OUT/resume.err"
cmp "$OUT/ref.json" "$OUT/resume.json" || {
    echo "crash smoke: resumed-after-SIGKILL report differs from plain run" >&2
    exit 1; }
grep -q 'store: [1-9][0-9]* hit(s)' "$OUT/resume.err" || {
    echo "crash smoke: resume run replayed nothing from the store:" >&2
    cat "$OUT/resume.err" >&2; exit 1; }
echo "crash smoke: phase 2 ok (SIGKILL at $GOT/$TOTAL entries, resume byte-identical)"

# --- Phase 3: graceful SIGTERM flushes valid aborted artifacts --------
rm -rf "$OUT/store3"
"$OUT/microbank" $FLAGS -store "$OUT/store3" -report "$OUT/abort.json" \
    >"$OUT/abort.out" 2>"$OUT/abort.err" &
PID=$!
i=0
while [ "$(entries "$OUT/store3")" -lt 3 ] && kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -ge 600 ]; then
        echo "crash smoke: abort run never committed 3 entries" >&2
        cat "$OUT/abort.err" >&2; exit 1
    fi
    sleep 0.05
done
kill -TERM "$PID" 2>/dev/null || true
rc=0
wait "$PID" || rc=$?
PID=""
[ "$rc" -ne 0 ] || {
    # The sweep may have finished before the signal landed; that run is
    # a complete campaign, not an abort, so only the slow path asserts.
    echo "crash smoke: phase 3 skipped (run finished before SIGTERM landed)"
    rc=-1; }
if [ "$rc" -ge 0 ]; then
    grep -q 'checkpointing and flushing aborted artifacts' "$OUT/abort.err" || {
        echo "crash smoke: SIGTERM handler banner missing:" >&2
        cat "$OUT/abort.err" >&2; exit 1; }
    grep -q '"aborted":' "$OUT/abort.json" || {
        echo "crash smoke: aborted report lacks the aborted marker" >&2
        cat "$OUT/abort.json" >&2; exit 1; }
    echo "crash smoke: phase 3 ok (SIGTERM -> exit $rc, aborted report flushed)"
fi

# --- Phase 4: corruption quarantines and re-simulates -----------------
F="$(ls "$OUT/store1"/*.res | head -n 1)"
SIZE="$(wc -c <"$F")"
# Flip the tail of the payload (the closing '}' of the JSON result):
# the CRC no longer matches and the entry must be quarantined.
printf 'X' | dd of="$F" bs=1 seek="$((SIZE - 2))" conv=notrunc 2>/dev/null
run -store "$OUT/store1" -report "$OUT/heal.json" >/dev/null 2>"$OUT/heal.err"
cmp "$OUT/ref.json" "$OUT/heal.json" || {
    echo "crash smoke: post-corruption report differs from plain run" >&2
    exit 1; }
grep -q 'store: .* [1-9][0-9]* quarantined' "$OUT/heal.err" || {
    echo "crash smoke: corrupt entry was not quarantined:" >&2
    cat "$OUT/heal.err" >&2; exit 1; }
[ "$(ls "$OUT/store1/quarantine" | wc -l)" -gt 0 ] || {
    echo "crash smoke: quarantine directory is empty" >&2; exit 1; }
echo "crash smoke: phase 4 ok (flipped byte quarantined, cell re-simulated, report byte-identical)"

echo "crash smoke: store survives SIGKILL, SIGTERM, and corruption with byte-identical results"
