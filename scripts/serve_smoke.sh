#!/usr/bin/env sh
# Live-observability smoke: start a headline sweep with -serve active
# (-j 4 across cells, -j-intra 2 inside each eligible cell), then
# scrape every endpoint and assert the exposition is well-formed —
# OpenMetrics text that terminates in # EOF and carries the windowed
# engine's sim_windows series and the campaign's sweep_failures series,
# /status JSON with the cell counters, an SSE stream that frames
# events, and a live pprof index. Run via `make serve-smoke`.
set -eu

# Port-collision hardening: by default ask the kernel for an ephemeral
# port (bind :0) and read the resolved address back from the serve
# banner, so parallel CI jobs on one runner can never race on a fixed
# port. SERVE_SMOKE_ADDR still overrides for manual debugging.
ADDR_REQ="${SERVE_SMOKE_ADDR:-127.0.0.1:0}"
OUT="$(mktemp -d)"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$OUT"' EXIT INT TERM

go build -o "$OUT/microbank" ./cmd/microbank
"$OUT/microbank" -exp headline -quick -instr 4000 -j 4 -j-intra 2 \
    -serve "$ADDR_REQ" -serve-linger 120s >"$OUT/stdout" 2>"$OUT/stderr" &
PID=$!

# Resolve the actual bound address from the stderr banner (the server
# binds before the run starts, so this is quick).
ADDR=""
i=0
while [ -z "$ADDR" ]; do
    ADDR="$(sed -n 's#^microbank: serving observability on http://\([^ ]*\) .*#\1#p' "$OUT/stderr" | head -n 1)"
    [ -n "$ADDR" ] && break
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "serve smoke: serve banner never appeared" >&2
        cat "$OUT/stderr" >&2
        exit 1
    fi
    sleep 0.2
done

i=0
until curl -sf "http://$ADDR/status" >"$OUT/status.json" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "serve smoke: endpoint never came up" >&2
        cat "$OUT/stderr" >&2
        exit 1
    fi
    sleep 0.2
done

# Let the sweep finish so the merged campaign view carries every series.
i=0
until grep -q '"state":"done"' "$OUT/status.json"; do
    i=$((i + 1))
    if [ "$i" -ge 150 ]; then
        echo "serve smoke: sweep did not finish" >&2
        cat "$OUT/status.json" >&2
        exit 1
    fi
    sleep 0.2
    curl -sf "http://$ADDR/status" >"$OUT/status.json"
done

curl -sf "http://$ADDR/metrics" >"$OUT/metrics.txt"

# OpenMetrics shape: TYPE headers, a terminating # EOF, and every line
# either a comment or `name[{labels}] value`.
grep -q '^# TYPE sim_windows gauge$' "$OUT/metrics.txt"
grep -q '^sim_windows ' "$OUT/metrics.txt"
grep -q '^sweep_failures ' "$OUT/metrics.txt"
tail -n 1 "$OUT/metrics.txt" | grep -qx '# EOF'
if grep -vE '^(# (TYPE [a-zA-Z_:][a-zA-Z0-9_:]* gauge|EOF)$|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9a-zA-Z.+-]+$)' "$OUT/metrics.txt"; then
    echo "serve smoke: malformed exposition line(s) above" >&2
    exit 1
fi

# /status carries the campaign report-so-far.
grep -q '"cells":{' "$OUT/status.json"
grep -q '"experiment":"headline"' "$OUT/status.json"

# /events opens with a framed status event.
curl -sf -m 2 "http://$ADDR/events" >"$OUT/events.txt" || true
grep -q '^event: status$' "$OUT/events.txt"
grep -q '^data: {' "$OUT/events.txt"

# pprof mux is mounted.
curl -sf "http://$ADDR/debug/pprof/" | grep -q goroutine

kill "$PID"
wait "$PID" 2>/dev/null || true
echo "serve smoke: /metrics /status /events /debug/pprof/ all healthy"
